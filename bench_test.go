// Package placeless benchmarks regenerate every quantitative exhibit:
// BenchmarkTable1 corresponds to the paper's Table 1; the remaining
// benchmarks correspond to extension experiments E1–E6 from DESIGN.md
// plus micro-benchmarks of the core cache operations. Each experiment
// benchmark reports the paper-relevant quantities as custom metrics
// (simulated milliseconds, ratios), since wall-clock ns/op measures
// only harness overhead on a virtual clock.
//
// Run with: go test -bench=. -benchmem
package placeless

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/experiment"
	"placeless/internal/obs"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// simMS converts a simulated duration to a float metric in
// milliseconds.
func simMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkTable1 regenerates Table 1 (T1): no-cache / miss / hit
// access times for the paper's three sources. Metrics are reported per
// source as sim-ms.
func BenchmarkTable1(b *testing.B) {
	var res experiment.Table1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunTable1(1, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		src := strings.ReplaceAll(row.Source, " ", "-")
		b.ReportMetric(simMS(row.NoCache), src+"_nocache_sim-ms")
		b.ReportMetric(simMS(row.Miss), src+"_miss_sim-ms")
		b.ReportMetric(simMS(row.Hit), src+"_hit_sim-ms")
	}
}

// BenchmarkNotifierVsVerifier regenerates experiment E1: the
// consistency-mechanism tradeoff.
func BenchmarkNotifierVsVerifier(b *testing.B) {
	var res experiment.NVResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunNotifierVerifier(experiment.DefaultNVConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(simMS(row.MeanHit), row.Mode.String()+"_hit_sim-ms")
		b.ReportMetric(float64(row.StaleReads), row.Mode.String()+"_stale")
	}
}

// BenchmarkReplacement regenerates experiment E2: the replacement
// policy ablation (GDS vs baselines).
func BenchmarkReplacement(b *testing.B) {
	var res experiment.ReplacementResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunReplacement(experiment.DefaultReplacementConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.HitRatio, row.Policy+"_hit-ratio")
		b.ReportMetric(simMS(row.MeanRead), row.Policy+"_read_sim-ms")
	}
}

// BenchmarkSharing regenerates experiment E3: signature-based storage
// sharing across users.
func BenchmarkSharing(b *testing.B) {
	var res experiment.SharingResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunSharing(experiment.DefaultSharingConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Saved, fmt.Sprintf("saved_at_%.0f%%", row.PersonalizedFrac*100))
	}
}

// BenchmarkCacheability regenerates experiment E4: the cacheability
// indicator mix.
func BenchmarkCacheability(b *testing.B) {
	var res experiment.CacheabilityResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunCacheability(experiment.DefaultCacheabilityConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.HitRatio, "hit-ratio_"+row.Mix)
	}
}

// BenchmarkPropertyChain regenerates experiment E5: latency vs chain
// length, cached and uncached.
func BenchmarkPropertyChain(b *testing.B) {
	var res experiment.ChainsResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunChains(experiment.DefaultChainsConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	b.ReportMetric(simMS(first.NoCache), "chain0_nocache_sim-ms")
	b.ReportMetric(simMS(last.NoCache), "chain8_nocache_sim-ms")
	b.ReportMetric(simMS(first.Hit), "chain0_hit_sim-ms")
	b.ReportMetric(simMS(last.Hit), "chain8_hit_sim-ms")
}

// BenchmarkQoS regenerates experiment E6: QoS-driven replacement-cost
// inflation.
func BenchmarkQoS(b *testing.B) {
	var res experiment.QoSResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunQoS(experiment.DefaultQoSConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.QoSHitRatio, row.Config+"_hit-ratio")
		b.ReportMetric(simMS(row.QoSWorstRead), row.Config+"_worst_sim-ms")
	}
}

// BenchmarkCollection regenerates experiment E8: related-document
// prefetching via the collection property.
func BenchmarkCollection(b *testing.B) {
	var res experiment.CollectionResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunCollection(experiment.DefaultCollectionConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(simMS(row.MeanSubsequent), row.Config+"_later_sim-ms")
		b.ReportMetric(simMS(row.TotalWalk), row.Config+"_walk_sim-ms")
	}
}

// BenchmarkCostAblation regenerates experiment E9: the value of
// property-supplied replacement costs inside GDS.
func BenchmarkCostAblation(b *testing.B) {
	var res experiment.CostAblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunCostAblation(experiment.DefaultReplacementConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(simMS(row.MeanRead), row.Config+"-cost_read_sim-ms")
	}
}

// BenchmarkPlacement regenerates experiment E10: application-side vs
// server-side cache placement.
func BenchmarkPlacement(b *testing.B) {
	var res experiment.PlacementResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunPlacement(experiment.DefaultPlacementConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(simMS(row.MeanRead), row.Placement+"_read_sim-ms")
	}
}

// benchWorld builds a minimal world for the micro-benchmarks: one
// local document behind a cache, no simulated latency so ns/op
// reflects real code cost.
func benchWorld(b *testing.B, opts core.Options) (*core.Cache, *docspace.Space) {
	b.Helper()
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC))
	src := repo.NewMem("m", clk, simnet.NewPath("free", 1))
	space := docspace.New(clk, nil)
	src.Store("/d", experiment.Content("d", 4096))
	if _, err := space.CreateDocument("d", "u", &property.RepoBitProvider{Repo: src, Path: "/d"}); err != nil {
		b.Fatal(err)
	}
	return core.New(space, opts), space
}

// BenchmarkCacheHit measures the real (wall-clock) cost of a cache hit
// including mtime verifier execution.
func BenchmarkCacheHit(b *testing.B) {
	cache, _ := benchWorld(b, core.Options{})
	if _, err := cache.Read("d", "u"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Read("d", "u"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheMiss measures the full read-path execution plus entry
// installation (each iteration invalidates first).
func BenchmarkCacheMiss(b *testing.B) {
	cache, _ := benchWorld(b, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Invalidate("d", "u")
		if _, err := cache.Read("d", "u"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadPathDirect measures the middleware read path with no
// cache.
func BenchmarkReadPathDirect(b *testing.B) {
	_, space := benchWorld(b, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := space.ReadDocument("d", "u"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadPathWithChain measures the read path with a five-stage
// transform chain (real transform work, zero simulated cost).
func BenchmarkReadPathWithChain(b *testing.B) {
	_, space := benchWorld(b, core.Options{})
	for i := 0; i < 5; i++ {
		p := property.NewUppercaser(0)
		p.PropName = fmt.Sprintf("upper-%d", i)
		if err := space.Attach("d", "u", docspace.Personal, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := space.ReadDocument("d", "u"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteThrough measures a write-through update including
// notifier dispatch.
func BenchmarkWriteThrough(b *testing.B) {
	cache, _ := benchWorld(b, core.Options{})
	data := experiment.Content("w", 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cache.Write("d", "u", data); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParallelWorld builds a cache over many pre-warmed documents on a
// zero-latency source. shards selects the index layout: 0 =
// auto-sharded, 1 = single-stripe. hitCost > 0 (with the real clock)
// reproduces the paper's per-hit access time as an actual sleep, which
// is where the seed's lock discipline and the sharded core diverge
// observably: the seed slept while holding its global mutex.
func benchParallelWorld(b *testing.B, shards, docs int, hitCost time.Duration, o *obs.Observer) *core.Cache {
	b.Helper()
	var clk docspace.TimerClock = clock.NewVirtual(time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC))
	if hitCost > 0 {
		clk = clock.Real{} // real sleeps, so overlap (or its absence) is measurable
	}
	src := repo.NewMem("m", clk, simnet.NewPath("free", 1))
	space := docspace.New(clk, nil)
	cache := core.New(space, core.Options{Shards: shards, HitCost: hitCost, Observer: o})
	for i := 0; i < docs; i++ {
		id := fmt.Sprintf("d%d", i)
		src.Store("/"+id, experiment.Content(id, 4096))
		if _, err := space.CreateDocument(id, "u", &property.RepoBitProvider{Repo: src, Path: "/" + id}); err != nil {
			b.Fatal(err)
		}
		if _, err := cache.Read(id, "u"); err != nil {
			b.Fatal(err)
		}
	}
	return cache
}

// seedMutexCache reproduces the seed cache's concurrency discipline
// for baseline comparison: one global mutex held across the entire
// read, including the simulated per-hit access cost — exactly what the
// pre-sharding implementation did with its single sync.Mutex.
type seedMutexCache struct {
	mu sync.Mutex
	c  *core.Cache
}

func (s *seedMutexCache) Read(doc, user string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Read(doc, user)
}

// BenchmarkParallelHitThroughput measures aggregate hit throughput
// with b.RunParallel (8× GOMAXPROCS goroutines) across a working set
// of warm documents, with the paper's 200µs hit cost applied on the
// real clock. Three configurations:
//
//   - sharded: the auto-sharded core; goroutines' hit costs overlap.
//   - globalLock: single-stripe index, i.e. every key contends on one
//     stripe mutex, but costs still run outside the lock.
//   - seedMutex: the seed's discipline — a global mutex held across
//     the whole read including the hit-cost sleep, serializing all
//     goroutines end to end.
//   - observed: sharded with an obs.Observer attached, so the E13
//     acceptance criterion (instrumentation overhead < 5% vs sharded)
//     is measurable directly from go test -bench.
//
// The acceptance ratio (sharded vs seedMutex ns/op at the same
// goroutine count) is recorded in EXPERIMENTS.md.
func BenchmarkParallelHitThroughput(b *testing.B) {
	const docs = 64
	hitCost := 200 * time.Microsecond // experiment.DefaultCacheOptions.HitCost
	read := func(cache *core.Cache, _ *seedMutexCache) func(string, string) ([]byte, error) {
		return cache.Read
	}
	seedRead := func(cache *core.Cache, s *seedMutexCache) func(string, string) ([]byte, error) {
		s.c = cache
		return s.Read
	}
	for _, cfg := range []struct {
		name     string
		shards   int
		observed bool
		reader   func(*core.Cache, *seedMutexCache) func(string, string) ([]byte, error)
	}{
		{"sharded", 0, false, read},
		{"globalLock", 1, false, read},
		{"seedMutex", 1, false, seedRead},
		{"observed", 0, true, read},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var o *obs.Observer
			if cfg.observed {
				o = obs.NewObserver() // fresh per trial: an Observer serves one cache
			}
			cache := benchParallelWorld(b, cfg.shards, docs, hitCost, o)
			readFn := cfg.reader(cache, &seedMutexCache{})
			var next atomic.Int64
			b.SetParallelism(8) // 8× GOMAXPROCS goroutines: contention is the point
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := next.Add(1) // per-goroutine stride offset
				for pb.Next() {
					id := fmt.Sprintf("d%d", int(i)%docs)
					i++
					if _, err := readFn(id, "u"); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// benchMemoWorld builds the shared-universal-stage scenario: one 64 KiB
// document with a heavy, memoizable universal chain (spell correct,
// translate, line number — real byte work, zero simulated cost) and a
// cheap personal watermark per user. Every user's read shares the
// universal prefix; only the watermark differs.
func benchMemoWorld(b *testing.B, users []string, memoize bool) *core.Cache {
	b.Helper()
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC))
	src := repo.NewMem("m", clk, simnet.NewPath("free", 1))
	space := docspace.New(clk, nil)
	content := []byte(strings.Repeat("teh quick document will recieve a seperate update\n", 1340))[:64<<10]
	src.Store("/d", content)
	if _, err := space.CreateDocument("d", users[0], &property.RepoBitProvider{Repo: src, Path: "/d"}); err != nil {
		b.Fatal(err)
	}
	for _, p := range []*property.Transformer{
		property.NewSpellCorrector(0),
		property.NewTranslator(0),
		property.NewLineNumberer(0),
	} {
		if err := space.Attach("d", "", docspace.Universal, p); err != nil {
			b.Fatal(err)
		}
	}
	for i, u := range users {
		if i > 0 {
			if _, err := space.AddReference("d", u); err != nil {
				b.Fatal(err)
			}
		}
		if err := space.Attach("d", u, docspace.Personal, property.NewWatermarker(u, 0)); err != nil {
			b.Fatal(err)
		}
	}
	return core.New(space, core.Options{Memoize: memoize})
}

// BenchmarkSharedUniversalStage is the acceptance benchmark for the
// intermediate memo store: 8 users repeatedly miss on one document
// whose universal chain dominates the read cost. Per-user invalidation
// before each read forces the personal suffix to re-run every time —
// exactly the fan-out the paper's universal/personal split predicts is
// redundant. memo=off re-executes the whole chain per user; memo=on
// executes the universal stage once per (content, chain) key and
// serves the other reads from the intermediate. The metrics prove the
// accounting: universal_runs stays at 1 under memo=on while
// intermediate_hits grows with N.
func BenchmarkSharedUniversalStage(b *testing.B) {
	users := make([]string, 8)
	for i := range users {
		users[i] = fmt.Sprintf("user%02d", i)
	}
	for _, memo := range []bool{false, true} {
		name := "memo=off"
		if memo {
			name = "memo=on"
		}
		b.Run(name, func(b *testing.B) {
			cache := benchMemoWorld(b, users, memo)
			b.SetBytes(int64(len(users)) * 64 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, u := range users {
					cache.Invalidate("d", u)
					if _, err := cache.Read("d", u); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			st := cache.Stats()
			b.ReportMetric(float64(st.UniversalStageRuns), "universal_runs")
			b.ReportMetric(float64(st.IntermediateHits), "intermediate_hits")
			b.ReportMetric(float64(st.BytesRecomputedSaved)/1e6, "saved_MB")
			if memo && st.UniversalStageRuns != 1 {
				b.Fatalf("UniversalStageRuns = %d, want 1 (one run per (content, chain) key)", st.UniversalStageRuns)
			}
		})
	}
}

// BenchmarkParallelMixedThroughput stresses the sharded cache with a
// read-heavy mix that includes invalidations (the notifier path takes
// shard + policy locks only), approximating concurrent application
// reads racing server-pushed invalidations.
func BenchmarkParallelMixedThroughput(b *testing.B) {
	const docs = 64
	cache := benchParallelWorld(b, 0, docs, 0, nil)
	var next atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := next.Add(1)
		for pb.Next() {
			id := fmt.Sprintf("d%d", int(i)%docs)
			if i%64 == 0 {
				cache.Invalidate(id, "u")
			} else if _, err := cache.Read(id, "u"); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
