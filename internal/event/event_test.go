package event

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		GetInputStream:    "getInputStream",
		GetOutputStream:   "getOutputStream",
		SetProperty:       "setProperty",
		ModifyProperty:    "modifyProperty",
		RemoveProperty:    "removeProperty",
		ReorderProperties: "reorderProperties",
		Timer:             "timer",
		ContentWritten:    "contentWritten",
		ExternalChange:    "externalChange",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if s := Kind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind string = %q", s)
	}
}

func TestKindsEnumeration(t *testing.T) {
	ks := Kinds()
	if len(ks) != int(numKinds) {
		t.Fatalf("Kinds() returned %d kinds, want %d", len(ks), int(numKinds))
	}
	for i, k := range ks {
		if int(k) != i {
			t.Fatalf("Kinds()[%d] = %d", i, int(k))
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: SetProperty, Doc: "d1", User: "eyal", Property: "spell", Detail: "v2"}
	s := e.String()
	for _, want := range []string{"setProperty", "d1", "eyal", "spell", "v2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q missing %q", s, want)
		}
	}
}

func TestDispatchOrder(t *testing.T) {
	r := NewRegistry()
	var got []int
	for i := 0; i < 4; i++ {
		i := i
		r.Subscribe(GetInputStream, func(Event) { got = append(got, i) })
	}
	r.Dispatch(Event{Kind: GetInputStream})
	for i, g := range got {
		if g != i {
			t.Fatalf("dispatch order %v, want registration order", got)
		}
	}
}

func TestDispatchOnlyMatchingKind(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.Subscribe(GetOutputStream, func(Event) { calls++ })
	r.Dispatch(Event{Kind: GetInputStream})
	if calls != 0 {
		t.Fatal("handler invoked for non-matching kind")
	}
	r.Dispatch(Event{Kind: GetOutputStream})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestUnsubscribe(t *testing.T) {
	r := NewRegistry()
	calls := 0
	id := r.Subscribe(Timer, func(Event) { calls++ })
	r.Subscribe(Timer, func(Event) { calls += 10 })
	r.Unsubscribe(id)
	r.Unsubscribe(9999) // unknown id: no-op
	r.Dispatch(Event{Kind: Timer})
	if calls != 10 {
		t.Fatalf("calls = %d, want 10 (first handler removed)", calls)
	}
	if n := r.Subscribers(Timer); n != 1 {
		t.Fatalf("Subscribers = %d, want 1", n)
	}
}

func TestSubscribeDuringDispatch(t *testing.T) {
	r := NewRegistry()
	added := false
	r.Subscribe(SetProperty, func(Event) {
		if !added {
			added = true
			r.Subscribe(SetProperty, func(Event) {})
		}
	})
	r.Dispatch(Event{Kind: SetProperty}) // must not deadlock or loop
	if n := r.Subscribers(SetProperty); n != 2 {
		t.Fatalf("Subscribers = %d, want 2", n)
	}
}

func TestUnsubscribeSelfDuringDispatch(t *testing.T) {
	r := NewRegistry()
	calls := 0
	var id uint64
	id = r.Subscribe(ContentWritten, func(Event) {
		calls++
		r.Unsubscribe(id)
	})
	r.Dispatch(Event{Kind: ContentWritten})
	r.Dispatch(Event{Kind: ContentWritten})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (handler removed itself)", calls)
	}
}

func TestSubscribeUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegistry().Subscribe(Kind(1000), func(Event) {})
}

func TestDispatchUnknownKindIgnored(t *testing.T) {
	NewRegistry().Dispatch(Event{Kind: Kind(1000)}) // must not panic
}

func TestConcurrentSubscribeDispatch(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				id := r.Subscribe(Timer, func(Event) {
					mu.Lock()
					total++
					mu.Unlock()
				})
				r.Dispatch(Event{Kind: Timer})
				r.Unsubscribe(id)
			}
		}()
	}
	wg.Wait()
	if total == 0 {
		t.Fatal("no handler invocations observed")
	}
}

// Property: after subscribing n handlers to a kind and unsubscribing k
// of them, exactly n-k run on dispatch.
func TestSubscribeUnsubscribeCountProperty(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n%20) + 1
		kk := int(k) % nn
		r := NewRegistry()
		ids := make([]uint64, nn)
		calls := 0
		for i := 0; i < nn; i++ {
			ids[i] = r.Subscribe(GetInputStream, func(Event) { calls++ })
		}
		for i := 0; i < kk; i++ {
			r.Unsubscribe(ids[i])
		}
		r.Dispatch(Event{Kind: GetInputStream})
		return calls == nn-kk && r.Subscribers(GetInputStream) == nn-kk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
