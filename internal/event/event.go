// Package event defines the document events that drive active
// properties in the Placeless system.
//
// Active properties are event driven (paper §2): they register for the
// events that can occur on a document — getInputStream,
// getOutputStream, property mutations, timers — and are invoked, in
// attachment order, whenever a registered event fires on that
// document. This package provides the event vocabulary and a small
// ordered registry used by both base documents and document
// references.
package event

import (
	"fmt"
	"sync"
	"time"
)

// Kind identifies a class of document event.
type Kind int

// The event kinds named by the paper, plus property-removal which the
// consistency discussion (§3, invalidation cause 2) requires.
const (
	// GetInputStream fires when a document is opened for reading.
	GetInputStream Kind = iota
	// GetOutputStream fires when a document is opened for writing.
	GetOutputStream
	// SetProperty fires when a property is attached to a document.
	SetProperty
	// ModifyProperty fires when an attached property's definition or
	// configuration changes (e.g. a spell corrector upgrade).
	ModifyProperty
	// RemoveProperty fires when a property is detached.
	RemoveProperty
	// ReorderProperties fires when the execution order of a
	// document's properties changes (invalidation cause 3).
	ReorderProperties
	// Timer fires at a property-requested simulated time (e.g. the
	// end-of-day replication property).
	Timer
	// ContentWritten fires after a write stream is closed, i.e. the
	// document content changed through the Placeless system.
	ContentWritten
	// ExternalChange fires when information outside Placeless
	// control that a property depends on changes (invalidation
	// cause 4); it is synthesized by the property that tracks the
	// external source.
	ExternalChange
	numKinds
)

var kindNames = [...]string{
	GetInputStream:    "getInputStream",
	GetOutputStream:   "getOutputStream",
	SetProperty:       "setProperty",
	ModifyProperty:    "modifyProperty",
	RemoveProperty:    "removeProperty",
	ReorderProperties: "reorderProperties",
	Timer:             "timer",
	ContentWritten:    "contentWritten",
	ExternalChange:    "externalChange",
}

// String returns the paper's camel-case name for the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds returns all defined event kinds, in declaration order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Event carries the context of a single occurrence delivered to
// registered handlers.
type Event struct {
	// Kind is the event class.
	Kind Kind
	// Doc is the identifier of the base document involved.
	Doc string
	// User is the owner of the document reference through which the
	// operation arrived; empty for base-level events with no user
	// context (e.g. repository-side changes).
	User string
	// Property names the property involved in property-mutation
	// events; empty otherwise.
	Property string
	// Time is the simulated time at which the event fired.
	Time time.Time
	// Detail carries event-specific context (e.g. the external
	// source name for ExternalChange).
	Detail string
}

// String renders the event for traces.
func (e Event) String() string {
	s := fmt.Sprintf("%s doc=%s", e.Kind, e.Doc)
	if e.User != "" {
		s += " user=" + e.User
	}
	if e.Property != "" {
		s += " prop=" + e.Property
	}
	if e.Detail != "" {
		s += " detail=" + e.Detail
	}
	return s
}

// Handler consumes an event. Handlers run synchronously on the
// dispatching goroutine, in registration order.
type Handler func(Event)

// registration pairs a handler with its subscription id for removal.
type registration struct {
	id uint64
	h  Handler
}

// Registry is an ordered, concurrency-safe event subscription table.
// Dispatch order is registration order within each kind, matching the
// paper's "all registered properties on that document are invoked"
// semantics where attachment order determines execution order.
type Registry struct {
	mu     sync.Mutex
	nextID uint64
	subs   [numKinds][]registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Subscribe registers h for events of kind k and returns a
// subscription id usable with Unsubscribe.
func (r *Registry) Subscribe(k Kind, h Handler) uint64 {
	if k < 0 || k >= numKinds {
		panic(fmt.Sprintf("event: subscribe to unknown kind %d", int(k)))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	r.subs[k] = append(r.subs[k], registration{id: r.nextID, h: h})
	return r.nextID
}

// Unsubscribe removes the subscription with the given id from every
// kind it appears under. Unknown ids are ignored.
func (r *Registry) Unsubscribe(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.subs {
		regs := r.subs[k]
		for i, reg := range regs {
			if reg.id == id {
				r.subs[k] = append(regs[:i:i], regs[i+1:]...)
				break
			}
		}
	}
}

// Dispatch delivers e to every handler registered for e.Kind, in
// registration order. The handler list is snapshotted before delivery,
// so handlers may subscribe or unsubscribe during dispatch without
// affecting the current delivery.
func (r *Registry) Dispatch(e Event) {
	if e.Kind < 0 || e.Kind >= numKinds {
		return
	}
	r.mu.Lock()
	regs := make([]registration, len(r.subs[e.Kind]))
	copy(regs, r.subs[e.Kind])
	r.mu.Unlock()
	for _, reg := range regs {
		reg.h(e)
	}
}

// Subscribers reports how many handlers are registered for kind k.
func (r *Registry) Subscribers(k Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k < 0 || k >= numKinds {
		return 0
	}
	return len(r.subs[k])
}
