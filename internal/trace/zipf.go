package trace

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks from [0, n) with probability proportional to
// 1/(rank+1)^s via inverse-CDF lookup over the cumulative weights.
//
// The standard library's rand.NewZipf requires s > 1, which excludes
// the s ≈ 0.8–1.0 range real web and document traces sit in (the
// Generate workload nudges such exponents to 1.0001 as a workaround).
// This sampler accepts any s > 0, supports exactly [0, n), and takes
// the *rand.Rand explicitly so callers own the random stream — the
// convention the swarm generator's determinism golden depends on.
type Zipf struct {
	cum []float64 // cum[i] = sum of weights for ranks 0..i
}

// NewZipf builds a sampler over n ranks with exponent s. Exponents
// at or below zero are treated as 0 (uniform). n must be positive.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	if s < 0 {
		s = 0
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	return &Zipf{cum: cum}
}

// N is the support size: samples land in [0, N()).
func (z *Zipf) N() int { return len(z.cum) }

// Weight returns rank's unnormalized probability mass.
func (z *Zipf) Weight(rank int) float64 {
	if rank < 0 || rank >= len(z.cum) {
		return 0
	}
	if rank == 0 {
		return z.cum[0]
	}
	return z.cum[rank] - z.cum[rank-1]
}

// Boosted returns a new sampler identical to z except rank's weight is
// multiplied by factor — how a flash crowd spikes one document's
// popularity without disturbing the rest of the distribution.
func (z *Zipf) Boosted(rank int, factor float64) *Zipf {
	if rank < 0 || rank >= len(z.cum) || factor <= 0 {
		return z
	}
	cum := make([]float64, len(z.cum))
	total := 0.0
	for i := range cum {
		w := z.Weight(i)
		if i == rank {
			w *= factor
		}
		total += w
		cum[i] = total
	}
	return &Zipf{cum: cum}
}

// Sample draws one rank using rng. rng.Float64() is in [0, 1), so the
// target mass is strictly below the total and the result is always a
// valid rank.
func (z *Zipf) Sample(rng *rand.Rand) int {
	target := rng.Float64() * z.cum[len(z.cum)-1]
	// First index whose cumulative mass exceeds the target.
	return sort.Search(len(z.cum), func(i int) bool { return z.cum[i] > target })
}
