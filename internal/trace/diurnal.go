package trace

import (
	"math/rand"
	"sort"
	"time"
)

// officeRatePoints is the piecewise-linear office intensity curve over
// one 24-hour day, as (hour, relative rate) knots: near-quiet
// overnight, a morning ramp to the pre-lunch peak, a lunch dip, an
// afternoon plateau, and an evening falloff. Rates are relative to the
// peak (1.0).
var officeRatePoints = [][2]float64{
	{0, 0.05}, {6, 0.05}, {8, 0.45}, {10, 1.0}, {12, 0.9},
	{13, 0.55}, {14, 0.85}, {16, 0.95}, {18, 0.5}, {20, 0.15},
	{22, 0.05}, {24, 0.05},
}

// OfficeRate returns the relative operation intensity at time-of-day
// tod, a pure deterministic function in [0.05, 1.0]. Times outside
// [0, 24h) wrap around the day.
func OfficeRate(tod time.Duration) float64 {
	const day = 24 * time.Hour
	tod %= day
	if tod < 0 {
		tod += day
	}
	h := tod.Hours()
	for i := 1; i < len(officeRatePoints); i++ {
		lo, hi := officeRatePoints[i-1], officeRatePoints[i]
		if h <= hi[0] {
			frac := (h - lo[0]) / (hi[0] - lo[0])
			return lo[1] + frac*(hi[1]-lo[1])
		}
	}
	return officeRatePoints[len(officeRatePoints)-1][1]
}

// DiurnalTimes draws n sorted timestamps over one virtual day of the
// given length, distributed with the OfficeRate intensity curve (an
// inhomogeneous Poisson profile sampled by inverting the cumulative
// rate at minute resolution). Deterministic in the rng stream.
func DiurnalTimes(rng *rand.Rand, n int, day time.Duration) []time.Duration {
	if n <= 0 {
		return nil
	}
	if day <= 0 {
		day = 24 * time.Hour
	}
	// Cumulative intensity at minute resolution over the scaled day.
	const steps = 24 * 60
	cum := make([]float64, steps)
	total := 0.0
	for i := 0; i < steps; i++ {
		tod := 24 * time.Hour * time.Duration(i) / steps
		total += OfficeRate(tod)
		cum[i] = total
	}
	out := make([]time.Duration, n)
	for i := range out {
		target := rng.Float64() * total
		step := sort.Search(steps, func(j int) bool { return cum[j] > target })
		// Uniform within the minute bucket, scaled onto the virtual day.
		frac := (float64(step) + rng.Float64()) / steps
		out[i] = time.Duration(frac * float64(day))
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
