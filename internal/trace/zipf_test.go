package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestZipfSupport pins the support contract: every sample from any
// (n, s) sampler lands in exactly [0, n).
func TestZipfSupport(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8, seed int64) bool {
		n := 1 + int(nRaw)%64
		s := float64(sRaw) / 32 // 0 .. ~8
		z := NewZipf(n, s)
		if z.N() != n {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			if r := z.Sample(rng); r < 0 || r >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestZipfMonotoneWeights pins that the configured mass is monotone
// non-increasing by rank, and that a large empirical sample respects
// the same ordering on the well-separated head ranks.
func TestZipfMonotoneWeights(t *testing.T) {
	z := NewZipf(50, 1.0)
	for r := 1; r < z.N(); r++ {
		if z.Weight(r) > z.Weight(r-1) {
			t.Fatalf("weight(%d)=%g > weight(%d)=%g", r, z.Weight(r), r-1, z.Weight(r-1))
		}
	}
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, z.N())
	const samples = 400000
	for i := 0; i < samples; i++ {
		counts[z.Sample(rng)]++
	}
	// Adjacent ranks in the tail differ by tiny mass; only require the
	// empirical ordering where the configured masses are far apart.
	for r := 1; r < 8; r++ {
		if counts[r] > counts[r-1] {
			t.Fatalf("empirical frequency inverted at head rank %d: %d > %d", r, counts[r], counts[r-1])
		}
	}
	if counts[0] == 0 || counts[z.N()-1] == 0 {
		t.Fatalf("400k samples left support endpoints untouched: head=%d tail=%d", counts[0], counts[z.N()-1])
	}
}

// TestZipfRankFrequencySlope fits the empirical log(frequency) vs
// log(rank+1) slope and requires it within tolerance of -s for
// exponents both below and above 1 (the range rand.NewZipf cannot
// cover is the point of this sampler).
func TestZipfRankFrequencySlope(t *testing.T) {
	for _, s := range []float64{0.6, 0.8, 1.0, 1.3} {
		z := NewZipf(200, s)
		rng := rand.New(rand.NewSource(11))
		counts := make([]float64, z.N())
		const samples = 600000
		for i := 0; i < samples; i++ {
			counts[z.Sample(rng)]++
		}
		// Least-squares slope over the head (the tail's counts are too
		// small for a stable log).
		var sx, sy, sxx, sxy float64
		n := 0.0
		for r := 0; r < 40; r++ {
			if counts[r] == 0 {
				continue
			}
			x, y := math.Log(float64(r+1)), math.Log(counts[r])
			sx, sy, sxx, sxy = sx+x, sy+y, sxx+x*x, sxy+x*y
			n++
		}
		slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
		if math.Abs(slope+s) > 0.1 {
			t.Fatalf("s=%.2f: fitted rank-frequency slope %.3f, want %.3f ± 0.1", s, slope, -s)
		}
	}
}

// TestZipfBoosted pins the flash-crowd mechanism: boosting one rank
// multiplies exactly its weight, leaving every other rank's mass (and
// the sampler it was derived from) untouched.
func TestZipfBoosted(t *testing.T) {
	base := NewZipf(20, 0.9)
	boosted := base.Boosted(7, 100)
	for r := 0; r < base.N(); r++ {
		want := base.Weight(r)
		if r == 7 {
			want *= 100
		}
		if got := boosted.Weight(r); math.Abs(got-want) > 1e-9 {
			t.Fatalf("boosted weight(%d) = %g, want %g", r, got, want)
		}
	}
	rng := rand.New(rand.NewSource(3))
	hot := 0
	const samples = 20000
	for i := 0; i < samples; i++ {
		if boosted.Sample(rng) == 7 {
			hot++
		}
	}
	if frac := float64(hot) / samples; frac < 0.5 {
		t.Fatalf("rank 7 boosted 100x drew only %.1f%% of samples", frac*100)
	}
	// Out-of-range or non-positive boosts are identity.
	if base.Boosted(-1, 100) != base || base.Boosted(0, 0) != base {
		t.Fatal("invalid boost must return the receiver unchanged")
	}
}

// TestOfficeRateShape pins the diurnal curve: peak working hours beat
// the overnight floor by an order of magnitude, lunch dips below the
// surrounding peaks, and the curve wraps cleanly at midnight.
func TestOfficeRateShape(t *testing.T) {
	at := func(h float64) float64 {
		return OfficeRate(time.Duration(h * float64(time.Hour)))
	}
	if night, peak := at(3), at(10); peak < 10*night {
		t.Fatalf("peak %.2f not ≫ overnight %.2f", peak, night)
	}
	if lunch := at(13); lunch >= at(11) || lunch >= at(15) {
		t.Fatalf("lunch dip %.2f not below surrounding peaks %.2f/%.2f", lunch, at(11), at(15))
	}
	if OfficeRate(0) != OfficeRate(24*time.Hour) {
		t.Fatal("rate must wrap at midnight")
	}
	if OfficeRate(-time.Hour) != OfficeRate(23*time.Hour) {
		t.Fatal("negative times must wrap into the day")
	}
}

// TestDiurnalTimes pins the timestamp sampler: sorted output, support
// within the virtual day, deterministic in the rng stream, and more
// mass in working hours than overnight.
func TestDiurnalTimes(t *testing.T) {
	day := 2 * time.Hour // compressed virtual day
	a := DiurnalTimes(rand.New(rand.NewSource(5)), 5000, day)
	b := DiurnalTimes(rand.New(rand.NewSource(5)), 5000, day)
	work, night := 0, 0
	for i, ts := range a {
		if ts != b[i] {
			t.Fatalf("timestamp %d differs across identical streams", i)
		}
		if ts < 0 || ts >= day {
			t.Fatalf("timestamp %v outside the %v day", ts, day)
		}
		if i > 0 && ts < a[i-1] {
			t.Fatalf("timestamps not sorted at %d", i)
		}
		// Hours 9–17 vs 0–6 of the scaled day.
		frac := float64(ts) / float64(day) * 24
		switch {
		case frac >= 9 && frac < 17:
			work++
		case frac < 6:
			night++
		}
	}
	if work < 5*night {
		t.Fatalf("working hours drew %d timestamps vs %d overnight, want ≥ 5x", work, night)
	}
}
