package trace

import (
	"math/rand"
	"time"
)

// OpKind enumerates operations in an office workload, which — unlike
// the read-mostly web trace — includes the property mutations that make
// Placeless cache consistency interesting.
type OpKind int

const (
	// OpRead reads a document through the cache.
	OpRead OpKind = iota
	// OpWrite updates content through the Placeless write path.
	OpWrite
	// OpDirectUpdate mutates the repository out-of-band.
	OpDirectUpdate
	// OpAttach attaches a personal transform property.
	OpAttach
	// OpDetach removes a previously attached property.
	OpDetach
	// OpReorder permutes the user's property chain.
	OpReorder
)

// String names the op.
func (k OpKind) String() string {
	names := [...]string{"read", "write", "directUpdate", "attach", "detach", "reorder"}
	if int(k) < len(names) {
		return names[k]
	}
	return "unknown"
}

// OfficeOp is one operation of an office workload.
type OfficeOp struct {
	// Kind is the operation class.
	Kind OpKind
	// Doc and User identify the target.
	Doc, User string
	// Arg selects a property (for attach/detach) or carries write
	// content discrimination.
	Arg int
	// Think is idle time before the operation.
	Think time.Duration
}

// OfficeConfig parameterizes a collaboration workload.
type OfficeConfig struct {
	// Docs and Users are the population sizes.
	Docs, Users int
	// Length is the number of operations.
	Length int
	// WriteFrac, DirectFrac, PropFrac are the fractions of writes,
	// out-of-band updates, and property mutations; the rest are
	// reads.
	WriteFrac, DirectFrac, PropFrac float64
	// MeanThink is the mean think time (exponential); zero disables.
	MeanThink time.Duration
	// Seed fixes the generator.
	Seed int64
}

// DefaultOfficeConfig returns a workload resembling a small workgroup:
// read-dominated with a steady trickle of edits and personalization
// churn.
func DefaultOfficeConfig() OfficeConfig {
	return OfficeConfig{
		Docs: 12, Users: 4, Length: 1000,
		WriteFrac: 0.08, DirectFrac: 0.04, PropFrac: 0.08,
		Seed: 1,
	}
}

// GenerateOffice produces a deterministic office workload, seeding a
// fresh generator from cfg.Seed. Property operations alternate
// attach/detach/reorder pressure; documents are Zipf-popular like the
// web trace.
func GenerateOffice(cfg OfficeConfig) []OfficeOp {
	return GenerateOfficeWith(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// GenerateOfficeWith produces the office workload drawing every random
// choice from rng (see GenerateWith for why the stream is explicit).
func GenerateOfficeWith(rng *rand.Rand, cfg OfficeConfig) []OfficeOp {
	if cfg.Docs <= 0 || cfg.Users <= 0 || cfg.Length <= 0 {
		return nil
	}
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(cfg.Docs-1))
	out := make([]OfficeOp, 0, cfg.Length)
	for i := 0; i < cfg.Length; i++ {
		op := OfficeOp{
			Doc:  DocID(int(zipf.Uint64())),
			User: UserID(rng.Intn(cfg.Users)),
			Arg:  rng.Intn(1 << 16),
		}
		r := rng.Float64()
		switch {
		case r < cfg.WriteFrac:
			op.Kind = OpWrite
		case r < cfg.WriteFrac+cfg.DirectFrac:
			op.Kind = OpDirectUpdate
		case r < cfg.WriteFrac+cfg.DirectFrac+cfg.PropFrac:
			// Rotate through the property mutation kinds.
			op.Kind = OpAttach + OpKind(rng.Intn(3))
		default:
			op.Kind = OpRead
		}
		if cfg.MeanThink > 0 {
			op.Think = time.Duration(rng.ExpFloat64() * float64(cfg.MeanThink))
		}
		out = append(out, op)
	}
	return out
}
