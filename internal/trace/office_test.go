package trace

import (
	"testing"
	"time"
)

func TestGenerateOfficeDeterministic(t *testing.T) {
	cfg := DefaultOfficeConfig()
	a := GenerateOffice(cfg)
	b := GenerateOffice(cfg)
	if len(a) != cfg.Length {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestGenerateOfficeMix(t *testing.T) {
	cfg := OfficeConfig{
		Docs: 10, Users: 3, Length: 5000,
		WriteFrac: 0.1, DirectFrac: 0.05, PropFrac: 0.1, Seed: 2,
	}
	counts := map[OpKind]int{}
	for _, op := range GenerateOffice(cfg) {
		counts[op.Kind]++
	}
	total := float64(cfg.Length)
	if f := float64(counts[OpWrite]) / total; f < 0.07 || f > 0.13 {
		t.Fatalf("write frac = %v", f)
	}
	if f := float64(counts[OpDirectUpdate]) / total; f < 0.03 || f > 0.08 {
		t.Fatalf("direct frac = %v", f)
	}
	props := counts[OpAttach] + counts[OpDetach] + counts[OpReorder]
	if f := float64(props) / total; f < 0.07 || f > 0.13 {
		t.Fatalf("prop frac = %v", f)
	}
	if counts[OpRead] == 0 {
		t.Fatal("no reads generated")
	}
}

func TestGenerateOfficeDegenerate(t *testing.T) {
	if GenerateOffice(OfficeConfig{}) != nil {
		t.Fatal("empty config should yield nil")
	}
}

func TestGenerateOfficeThink(t *testing.T) {
	cfg := DefaultOfficeConfig()
	cfg.MeanThink = 5 * time.Millisecond
	var sum time.Duration
	ops := GenerateOffice(cfg)
	for _, op := range ops {
		sum += op.Think
	}
	mean := sum / time.Duration(len(ops))
	if mean < 2*time.Millisecond || mean > 10*time.Millisecond {
		t.Fatalf("mean think = %v", mean)
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpRead: "read", OpWrite: "write", OpDirectUpdate: "directUpdate",
		OpAttach: "attach", OpDetach: "detach", OpReorder: "reorder",
		OpKind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}
