// Package trace generates synthetic document-access workloads for the
// experiment harness.
//
// The paper reports no trace-driven evaluation (its Table 1 uses three
// hand-picked documents), but its future-work questions — replacement
// tradeoffs, notifier-vs-verifier costs, sharing — need workloads to
// be answerable. This package produces the standard web-caching
// workload shape of the era: Zipf-distributed document popularity
// [Cao & Irani 1997] over a heavy-tailed size distribution, with
// configurable user population, per-user personalization, and write
// mix. Everything is seeded and deterministic.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Access is one operation in a workload.
type Access struct {
	// Doc is the document id.
	Doc string
	// User is the accessing user.
	User string
	// Write marks update operations; others are reads.
	Write bool
	// Think is the simulated idle time before the access.
	Think time.Duration
}

// Config parameterizes a workload.
type Config struct {
	// Docs is the document population size.
	Docs int
	// Users is the user population size.
	Users int
	// Length is the number of accesses to generate.
	Length int
	// Alpha is the Zipf skew (s parameter); typical web traces are
	// near 0.8–1.0. Must be > 1 for rand.Zipf, so values <= 1 are
	// nudged to 1.0001.
	Alpha float64
	// WriteFrac is the fraction of accesses that are writes.
	WriteFrac float64
	// MeanThink is the mean think time between accesses (exponential);
	// zero disables think time.
	MeanThink time.Duration
	// Seed fixes the generator.
	Seed int64
}

// DocID names document i consistently across the harness.
func DocID(i int) string { return fmt.Sprintf("doc-%04d", i) }

// UserID names user i consistently across the harness.
func UserID(i int) string { return fmt.Sprintf("user-%02d", i) }

// Generate produces a deterministic access sequence for cfg, seeding
// a fresh generator from cfg.Seed.
func Generate(cfg Config) []Access {
	return GenerateWith(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// GenerateWith produces the access sequence for cfg drawing every
// random choice from rng — callers that compose several generators
// thread one explicit stream instead of relying on per-call seeding,
// so the whole composition is a pure function of one seed.
func GenerateWith(rng *rand.Rand, cfg Config) []Access {
	if cfg.Docs <= 0 || cfg.Users <= 0 || cfg.Length <= 0 {
		return nil
	}
	alpha := cfg.Alpha
	if alpha <= 1 {
		alpha = 1.0001
	}
	zipf := rand.NewZipf(rng, alpha, 1, uint64(cfg.Docs-1))
	out := make([]Access, 0, cfg.Length)
	for i := 0; i < cfg.Length; i++ {
		a := Access{
			Doc:   DocID(int(zipf.Uint64())),
			User:  UserID(rng.Intn(cfg.Users)),
			Write: rng.Float64() < cfg.WriteFrac,
		}
		if cfg.MeanThink > 0 {
			a.Think = time.Duration(rng.ExpFloat64() * float64(cfg.MeanThink))
		}
		out = append(out, a)
	}
	return out
}

// Sizes draws a heavy-tailed (log-normal-ish) size in bytes for each
// document, deterministic in the seed. Sizes land roughly in
// [minSize, minSize·~200] with a median a few times minSize, matching
// the small-documents-dominate shape of 1990s web content.
func Sizes(docs int, minSize int64, seed int64) map[string]int64 {
	return SizesWith(rand.New(rand.NewSource(seed)), docs, minSize)
}

// SizesWith draws the size distribution from an explicit rng stream.
func SizesWith(rng *rand.Rand, docs int, minSize int64) map[string]int64 {
	out := make(map[string]int64, docs)
	for i := 0; i < docs; i++ {
		// Log-normal via exp of a normal sample, clamped to
		// [minSize, ~200·minSize].
		factor := rng.NormFloat64() + 1.0 // mean 1, sd 1 in log space
		if factor > 5.3 {
			factor = 5.3
		}
		if factor < 0 {
			factor = 0
		}
		out[DocID(i)] = int64(float64(minSize) * math.Exp(factor))
	}
	return out
}

// Popularity returns the expected access counts per document for a
// generated trace, useful for assertions about skew.
func Popularity(accesses []Access) map[string]int {
	out := make(map[string]int)
	for _, a := range accesses {
		out[a.Doc]++
	}
	return out
}
