package trace

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Docs: 50, Users: 5, Length: 200, Alpha: 1.1, WriteFrac: 0.1, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateRespectsPopulations(t *testing.T) {
	cfg := Config{Docs: 10, Users: 3, Length: 500, Alpha: 1.2, Seed: 1}
	for _, a := range Generate(cfg) {
		var d, u int
		if _, err := fmt.Sscanf(a.Doc, "doc-%04d", &d); err != nil || d < 0 || d >= 10 {
			t.Fatalf("doc out of range: %q", a.Doc)
		}
		if _, err := fmt.Sscanf(a.User, "user-%02d", &u); err != nil || u < 0 || u >= 3 {
			t.Fatalf("user out of range: %q", a.User)
		}
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	cfg := Config{Docs: 100, Users: 1, Length: 10000, Alpha: 1.2, Seed: 42}
	pop := Popularity(Generate(cfg))
	// The most popular document must dominate a mid-tail document.
	if pop[DocID(0)] < 5*pop[DocID(50)]+1 {
		t.Fatalf("no skew: doc0=%d doc50=%d", pop[DocID(0)], pop[DocID(50)])
	}
}

func TestGenerateWriteFraction(t *testing.T) {
	cfg := Config{Docs: 10, Users: 2, Length: 5000, Alpha: 1.1, WriteFrac: 0.2, Seed: 3}
	writes := 0
	for _, a := range Generate(cfg) {
		if a.Write {
			writes++
		}
	}
	frac := float64(writes) / 5000
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("write fraction = %v, want ≈0.2", frac)
	}
}

func TestGenerateThinkTimes(t *testing.T) {
	cfg := Config{Docs: 5, Users: 1, Length: 1000, Alpha: 1.1, MeanThink: 10 * time.Millisecond, Seed: 9}
	var sum time.Duration
	for _, a := range Generate(cfg) {
		sum += a.Think
	}
	mean := sum / 1000
	if mean < 5*time.Millisecond || mean > 20*time.Millisecond {
		t.Fatalf("mean think = %v, want ≈10ms", mean)
	}
	noThink := Generate(Config{Docs: 5, Users: 1, Length: 10, Alpha: 1.1, Seed: 9})
	for _, a := range noThink {
		if a.Think != 0 {
			t.Fatal("think time generated when disabled")
		}
	}
}

func TestGenerateDegenerateConfigs(t *testing.T) {
	if Generate(Config{}) != nil {
		t.Fatal("empty config should produce nil")
	}
	if got := Generate(Config{Docs: 1, Users: 1, Length: 5, Alpha: 0.5, Seed: 1}); len(got) != 5 {
		t.Fatalf("alpha<=1 config broke generation: %d", len(got))
	}
}

func TestSizesBoundsAndDeterminism(t *testing.T) {
	a := Sizes(100, 1000, 5)
	b := Sizes(100, 1000, 5)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for id, sz := range a {
		if sz < 1000 || sz > 1000*210 {
			t.Fatalf("size %d out of bounds for %s", sz, id)
		}
		if b[id] != sz {
			t.Fatal("sizes not deterministic")
		}
	}
}

func TestSizesVary(t *testing.T) {
	s := Sizes(50, 1000, 11)
	distinct := map[int64]bool{}
	for _, v := range s {
		distinct[v] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("only %d distinct sizes", len(distinct))
	}
}

// Property: every generated access names a document and user within
// the configured populations, for arbitrary small configs.
func TestGenerateWellFormedProperty(t *testing.T) {
	f := func(docs, users, length uint8, seed int64) bool {
		cfg := Config{
			Docs:   int(docs%20) + 1,
			Users:  int(users%5) + 1,
			Length: int(length%50) + 1,
			Alpha:  1.1,
			Seed:   seed,
		}
		accesses := Generate(cfg)
		if len(accesses) != cfg.Length {
			return false
		}
		valid := map[string]bool{}
		for i := 0; i < cfg.Docs; i++ {
			valid[DocID(i)] = true
		}
		validUser := map[string]bool{}
		for i := 0; i < cfg.Users; i++ {
			validUser[UserID(i)] = true
		}
		for _, a := range accesses {
			if !valid[a.Doc] || !validUser[a.User] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
