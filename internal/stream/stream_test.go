package stream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func upper(b []byte) []byte { return bytes.ToUpper(b) }

func suffix(s string) Transform {
	return func(b []byte) []byte { return append(append([]byte{}, b...), []byte(s)...) }
}

func TestBytesReaderRoundTrip(t *testing.T) {
	got, err := ReadAllAndClose(BytesReader([]byte("hello")))
	if err != nil || string(got) != "hello" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestWholeInputTransforms(t *testing.T) {
	r := ChainInput(BytesReader([]byte("abc")), WholeInput(upper))
	got, err := ReadAllAndClose(r)
	if err != nil || string(got) != "ABC" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestChainInputOrder(t *testing.T) {
	// First wrapper is closest to the base: with suffix transforms
	// the innermost suffix is appended first.
	r := ChainInput(BytesReader([]byte("x")), WholeInput(suffix("-base")), WholeInput(suffix("-ref")))
	got, _ := ReadAllAndClose(r)
	if string(got) != "x-base-ref" {
		t.Fatalf("got %q, want base transform applied before reference transform", got)
	}
}

func TestChainInputSkipsNil(t *testing.T) {
	r := ChainInput(BytesReader([]byte("a")), nil, WholeInput(upper), nil)
	got, _ := ReadAllAndClose(r)
	if string(got) != "A" {
		t.Fatalf("got %q", got)
	}
}

func TestChainOutputOrder(t *testing.T) {
	// First wrapper is outermost: application bytes hit it first, so
	// its suffix lands before the later wrappers' suffixes... no:
	// outermost transform runs first, producing x-ref, then the
	// inner (base-side) transform sees that and appends -base.
	var sink BufferCloser
	w := ChainOutput(&sink, WholeOutput(suffix("-ref")), WholeOutput(suffix("-base")))
	io.WriteString(w, "x")
	w.Close()
	if got := sink.String(); got != "x-ref-base" {
		t.Fatalf("got %q, want reference transform applied before base transform", got)
	}
	if !sink.Closed {
		t.Fatal("chain did not propagate Close to the sink")
	}
}

func TestWholeOutputWriteAfterClose(t *testing.T) {
	var sink BufferCloser
	w := ChainOutput(&sink, WholeOutput(upper))
	w.Close()
	if _, err := w.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("Write after Close: err = %v, want ErrClosedPipe", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestChunkInputStreaming(t *testing.T) {
	src := strings.NewReader(strings.Repeat("ab", 5000))
	r := ChainInput(NopReadCloser(src), ChunkInput(upper))
	got, err := ReadAllAndClose(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != strings.Repeat("AB", 5000) {
		t.Fatalf("chunk transform mangled data (len=%d)", len(got))
	}
}

func TestChunkInputSmallReads(t *testing.T) {
	r := ChainInput(BytesReader([]byte("hello world")), ChunkInput(upper))
	var out []byte
	buf := make([]byte, 3)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if string(out) != "HELLO WORLD" {
		t.Fatalf("got %q", out)
	}
}

func TestChunkOutputStreaming(t *testing.T) {
	var sink BufferCloser
	w := ChainOutput(&sink, ChunkOutput(upper))
	for _, part := range []string{"ab", "cd", "ef"} {
		n, err := io.WriteString(w, part)
		if err != nil || n != 2 {
			t.Fatalf("write: %d, %v", n, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.String() != "ABCDEF" || !sink.Closed {
		t.Fatalf("sink = %q closed=%v", sink.String(), sink.Closed)
	}
}

func TestTapInputObservesWithoutModifying(t *testing.T) {
	var seen bytes.Buffer
	var closedTotal int64 = -1
	r := ChainInput(BytesReader([]byte("audit me")), TapInput(ObserverFuncs{
		OnData:  func(p []byte) { seen.Write(p) },
		OnClose: func(n int64) { closedTotal = n },
	}))
	got, err := ReadAllAndClose(r)
	if err != nil || string(got) != "audit me" {
		t.Fatalf("data modified: %q, %v", got, err)
	}
	if seen.String() != "audit me" {
		t.Fatalf("observer saw %q", seen.String())
	}
	if closedTotal != int64(len("audit me")) {
		t.Fatalf("OnClose total = %d", closedTotal)
	}
}

func TestTapOutputObserves(t *testing.T) {
	var sink BufferCloser
	var total int64
	w := ChainOutput(&sink, TapOutput(ObserverFuncs{OnClose: func(n int64) { total = n }}))
	io.WriteString(w, "12345")
	w.Close()
	w.Close() // OnClose must fire once
	if total != 5 || sink.String() != "12345" {
		t.Fatalf("total=%d sink=%q", total, sink.String())
	}
}

func TestTapNilCallbacks(t *testing.T) {
	r := ChainInput(BytesReader([]byte("x")), TapInput(ObserverFuncs{}))
	if got, err := ReadAllAndClose(r); err != nil || string(got) != "x" {
		t.Fatalf("got %q, %v", got, err)
	}
	var sink BufferCloser
	w := ChainOutput(&sink, TapOutput(ObserverFuncs{}))
	w.Write([]byte("y"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

type failReader struct{ closed bool }

func (f *failReader) Read([]byte) (int, error) { return 0, errors.New("boom") }
func (f *failReader) Close() error             { f.closed = true; return nil }

func TestWholeInputPropagatesError(t *testing.T) {
	fr := &failReader{}
	r := ChainInput(fr, WholeInput(upper))
	if _, err := io.ReadAll(r); err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	// Error is sticky.
	if _, err := r.Read(make([]byte, 1)); err == nil {
		t.Fatal("second read did not return the stored error")
	}
	r.Close()
	if !fr.closed {
		t.Fatal("Close not propagated to source")
	}
}

func TestBufferCloserOnClose(t *testing.T) {
	var got []byte
	b := &BufferCloser{OnClose: func(d []byte) { got = append([]byte{}, d...) }}
	io.WriteString(b, "final")
	b.Close()
	b.Close()
	if string(got) != "final" {
		t.Fatalf("OnClose data = %q", got)
	}
}

// Property: for any content and any pair of whole transforms f, g,
// reading through ChainInput(base, Whole(f), Whole(g)) equals g(f(content)).
func TestChainCompositionProperty(t *testing.T) {
	fn := func(content []byte, s1, s2 string) bool {
		if len(s1) > 20 {
			s1 = s1[:20]
		}
		if len(s2) > 20 {
			s2 = s2[:20]
		}
		f, g := suffix(s1), suffix(s2)
		r := ChainInput(BytesReader(content), WholeInput(f), WholeInput(g))
		got, err := ReadAllAndClose(r)
		return err == nil && bytes.Equal(got, g(f(content)))
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: write path and read path produce the same composed result
// for matching chains (reference-then-base on write mirrors
// base-then-reference on read for the same logical ordering).
func TestWriteReadSymmetryProperty(t *testing.T) {
	fn := func(content []byte) bool {
		var sink BufferCloser
		w := ChainOutput(&sink, WholeOutput(upper))
		w.Write(content)
		w.Close()
		r := ChainInput(BytesReader(content), WholeInput(upper))
		got, err := ReadAllAndClose(r)
		return err == nil && bytes.Equal(got, sink.Bytes())
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a tap never alters the bytes, for any content.
func TestTapTransparencyProperty(t *testing.T) {
	fn := func(content []byte) bool {
		r := ChainInput(BytesReader(content), TapInput(ObserverFuncs{OnData: func([]byte) {}}))
		got, err := ReadAllAndClose(r)
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}
