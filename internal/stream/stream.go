// Package stream implements the custom input/output stream mechanism
// that active properties use to intercept document content.
//
// Per the paper (§2), an active property interested in content
// interposes a custom stream when the getInputStream or
// getOutputStream event is dispatched: it wraps the stream produced by
// the previous element in the calling chain and hands the wrapped
// stream to the next, so properties that modify content form a chain
// of custom streams, each operating on the bytes that flow through.
//
// This package provides the chain plumbing plus the transform
// primitives the standard property library is built from: whole-content
// transforms (translation, summarization), streaming chunk transforms
// (case mapping, watermarking), and observation taps (audit trails).
package stream

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
)

// bufPool recycles scratch buffers for whole-content staging on the
// miss path (drain-then-transform readers, whole-content writers,
// ReadAllAndClose). Buffers that grew past poolBufMax are dropped
// instead of pooled so one huge document can't pin memory.
var bufPool = sync.Pool{New: func() any { poolNews.Add(1); return new(bytes.Buffer) }}

// poolBufMax caps the capacity of buffers returned to bufPool.
const poolBufMax = 1 << 20

// Pool activity counters, exported through PoolStats so the
// observability registry can tell whether the staging pool is actually
// recycling (gets far above news) or thrashing on oversized documents
// (drops climbing).
var poolGets, poolNews, poolDrops atomic.Int64

// PoolStats reports cumulative scratch-pool activity: buffers fetched,
// buffers newly allocated because the pool was empty, and oversized
// buffers dropped instead of returned. The counters are process-wide,
// like the pool itself.
func PoolStats() (gets, news, drops int64) {
	return poolGets.Load(), poolNews.Load(), poolDrops.Load()
}

// getBuf fetches an empty scratch buffer from the pool.
func getBuf() *bytes.Buffer {
	poolGets.Add(1)
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// putBuf returns a scratch buffer to the pool unless it is oversized.
// Callers must not retain any slice aliasing the buffer's storage.
func putBuf(b *bytes.Buffer) {
	if b.Cap() > poolBufMax {
		poolDrops.Add(1)
		return
	}
	bufPool.Put(b)
}

// chunkPool recycles fixed-size copy chunks for CopyPooled — the same
// recycling discipline as the staging pool, extended to the disk→wire
// copy path. Chunks are fixed-size, so nothing ever needs dropping.
var chunkPool = sync.Pool{New: func() any {
	poolNews.Add(1)
	b := make([]byte, copyChunkSize)
	return &b
}}

// copyChunkSize is the unit CopyPooled moves bytes in: large enough to
// amortize syscalls on a segment-file → socket pump, small enough that
// an idle pool pins little memory.
const copyChunkSize = 64 << 10

// CopyPooled copies src to dst through a pooled fixed-size chunk,
// counting pool activity in PoolStats. It is io.CopyBuffer with the
// buffer's lifetime managed here — the copy path analogue of
// drainToOwned, used by the durable store's blob streaming. dst is
// shielded from io.CopyBuffer's ReaderFrom delegation so the pooled
// chunk is actually used (the delegation would fall back to an
// internal allocation for a non-file src anyway).
func CopyPooled(dst io.Writer, src io.Reader) (int64, error) {
	poolGets.Add(1)
	bp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bp)
	return io.CopyBuffer(writerOnly{dst}, src, *bp)
}

// writerOnly hides any ReadFrom/WriteTo fast paths dst may have, so
// io.CopyBuffer keeps control of the copy buffer.
type writerOnly struct{ io.Writer }

// drainToOwned drains r into a pooled scratch buffer and returns an
// exact-size copy the caller owns outright; the scratch storage goes
// back to the pool. This trades one copy for eliminating io.ReadAll's
// growth reallocations on every miss.
func drainToOwned(r io.Reader) ([]byte, error) {
	buf := getBuf()
	defer putBuf(buf)
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// Transform rewrites a complete document body. Implementations must
// not retain or mutate the input slice.
type Transform func([]byte) []byte

// InputWrapper wraps a read stream; it is the unit of composition on
// the read path. A property contributes one InputWrapper per
// getInputStream dispatch.
type InputWrapper func(io.ReadCloser) io.ReadCloser

// OutputWrapper wraps a write stream; it is the unit of composition on
// the write path.
type OutputWrapper func(io.WriteCloser) io.WriteCloser

// ChainInput applies wrappers to base in order: the first wrapper is
// closest to the base stream (executes first on the data), matching
// the paper's rule that on the read path base-document properties run
// before reference properties.
func ChainInput(base io.ReadCloser, wrappers ...InputWrapper) io.ReadCloser {
	r := base
	for _, w := range wrappers {
		if w != nil {
			r = w(r)
		}
	}
	return r
}

// ChainOutput applies wrappers to base in order: the first wrapper is
// outermost (sees application bytes first), matching the paper's rule
// that on the write path reference properties run before base
// properties.
func ChainOutput(base io.WriteCloser, wrappers ...OutputWrapper) io.WriteCloser {
	w := base
	for i := len(wrappers) - 1; i >= 0; i-- {
		if wrappers[i] != nil {
			w = wrappers[i](w)
		}
	}
	return w
}

// nopReadCloser adapts a Reader to ReadCloser.
type nopReadCloser struct{ io.Reader }

func (nopReadCloser) Close() error { return nil }

// NopReadCloser wraps r with a no-op Close.
func NopReadCloser(r io.Reader) io.ReadCloser { return nopReadCloser{r} }

// BytesReader serves b as a read stream.
func BytesReader(b []byte) io.ReadCloser { return NopReadCloser(bytes.NewReader(b)) }

// wholeReader lazily drains its source, applies a Transform once, and
// serves the result.
type wholeReader struct {
	src io.ReadCloser
	f   Transform
	buf *bytes.Reader
	err error
}

// WholeInput returns an InputWrapper applying f to the complete
// content read from the wrapped stream. The source is drained on the
// first Read, so chains of WholeInput wrappers apply their transforms
// innermost-first.
func WholeInput(f Transform) InputWrapper {
	return func(src io.ReadCloser) io.ReadCloser {
		return &wholeReader{src: src, f: f}
	}
}

func (w *wholeReader) Read(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.buf == nil {
		// The drained copy is owned, so the transform receives bytes
		// it may return as-is without aliasing pooled storage.
		data, err := drainToOwned(w.src)
		if err != nil {
			w.err = err
			return 0, err
		}
		w.buf = bytes.NewReader(w.f(data))
	}
	return w.buf.Read(p)
}

func (w *wholeReader) Close() error { return w.src.Close() }

// wholeWriter buffers all writes in a pooled buffer and applies a
// Transform when closed.
type wholeWriter struct {
	dst    io.WriteCloser
	f      Transform
	buf    *bytes.Buffer
	closed bool
}

// WholeOutput returns an OutputWrapper that buffers everything written
// and, on Close, applies f and forwards the result to the wrapped
// stream before closing it.
func WholeOutput(f Transform) OutputWrapper {
	return func(dst io.WriteCloser) io.WriteCloser {
		return &wholeWriter{dst: dst, f: f, buf: getBuf()}
	}
}

func (w *wholeWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, io.ErrClosedPipe
	}
	return w.buf.Write(p)
}

func (w *wholeWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	// The transform must not retain its input, and dst.Write must not
	// retain p (io.Writer contract), so the buffer can be pooled once
	// the write returns. The transform's *output* may alias its input,
	// so the Write must complete before putBuf.
	out := w.f(w.buf.Bytes())
	if _, err := w.dst.Write(out); err != nil {
		putBuf(w.buf)
		w.dst.Close()
		return err
	}
	putBuf(w.buf)
	return w.dst.Close()
}

// chunkReader applies a transform to each chunk as it flows through.
// Only safe for transforms that are byte-local (len-preserving not
// required, but the transform must not depend on chunk boundaries).
type chunkReader struct {
	src     io.ReadCloser
	f       Transform
	pending []byte
	// scratch is reused across Reads. The transform may return its
	// input slice (identity), making pending alias scratch — safe
	// because scratch is only refilled after pending fully drains,
	// and per-reader ownership keeps it out of any shared pool.
	scratch []byte
}

// ChunkInput returns an InputWrapper applying f independently to each
// chunk read from the source. Use for stateless byte-local transforms
// such as case mapping; use WholeInput when the transform needs the
// entire document.
func ChunkInput(f Transform) InputWrapper {
	return func(src io.ReadCloser) io.ReadCloser {
		return &chunkReader{src: src, f: f}
	}
}

func (c *chunkReader) Read(p []byte) (int, error) {
	for len(c.pending) == 0 {
		if c.scratch == nil {
			c.scratch = make([]byte, 4096)
		}
		n, err := c.src.Read(c.scratch)
		if n > 0 {
			c.pending = c.f(c.scratch[:n])
			break
		}
		if err != nil {
			return 0, err
		}
	}
	n := copy(p, c.pending)
	c.pending = c.pending[n:]
	return n, nil
}

func (c *chunkReader) Close() error { return c.src.Close() }

// chunkWriter applies a transform to each chunk as it is written.
type chunkWriter struct {
	dst io.WriteCloser
	f   Transform
}

// ChunkOutput returns an OutputWrapper applying f independently to
// each chunk written; the write-path analogue of ChunkInput, for
// stateless byte-local transforms.
func ChunkOutput(f Transform) OutputWrapper {
	return func(dst io.WriteCloser) io.WriteCloser {
		return &chunkWriter{dst: dst, f: f}
	}
}

func (c *chunkWriter) Write(p []byte) (int, error) {
	out := c.f(p)
	if _, err := c.dst.Write(out); err != nil {
		return 0, err
	}
	// Report the consumed input length, per io.Writer contract.
	return len(p), nil
}

func (c *chunkWriter) Close() error { return c.dst.Close() }

// ObserverFuncs are callbacks for observation taps on a stream.
type ObserverFuncs struct {
	// OnData receives each chunk flowing through (may be nil). The
	// slice is only valid for the duration of the call.
	OnData func(p []byte)
	// OnClose runs once when the stream is closed, with the total
	// byte count that flowed through (may be nil).
	OnClose func(total int64)
}

// tapReader forwards reads while invoking observer callbacks. It never
// modifies the data — the mechanism for properties that "intercept
// operations only to invoke a service but do nothing with the content
// itself" (paper §3), such as read-audit trails.
type tapReader struct {
	src    io.ReadCloser
	obs    ObserverFuncs
	total  int64
	closed bool
}

// TapInput returns an InputWrapper that observes but never modifies
// data on the read path.
func TapInput(obs ObserverFuncs) InputWrapper {
	return func(src io.ReadCloser) io.ReadCloser {
		return &tapReader{src: src, obs: obs}
	}
}

func (t *tapReader) Read(p []byte) (int, error) {
	n, err := t.src.Read(p)
	if n > 0 {
		t.total += int64(n)
		if t.obs.OnData != nil {
			t.obs.OnData(p[:n])
		}
	}
	return n, err
}

func (t *tapReader) Close() error {
	err := t.src.Close()
	if !t.closed {
		t.closed = true
		if t.obs.OnClose != nil {
			t.obs.OnClose(t.total)
		}
	}
	return err
}

// tapWriter is the write-path analogue of tapReader.
type tapWriter struct {
	dst    io.WriteCloser
	obs    ObserverFuncs
	total  int64
	closed bool
}

// TapOutput returns an OutputWrapper that observes but never modifies
// data on the write path.
func TapOutput(obs ObserverFuncs) OutputWrapper {
	return func(dst io.WriteCloser) io.WriteCloser {
		return &tapWriter{dst: dst, obs: obs}
	}
}

func (t *tapWriter) Write(p []byte) (int, error) {
	n, err := t.dst.Write(p)
	if n > 0 {
		t.total += int64(n)
		if t.obs.OnData != nil {
			t.obs.OnData(p[:n])
		}
	}
	return n, err
}

func (t *tapWriter) Close() error {
	err := t.dst.Close()
	if !t.closed {
		t.closed = true
		if t.obs.OnClose != nil {
			t.obs.OnClose(t.total)
		}
	}
	return err
}

// BufferCloser is an in-memory WriteCloser that records whether Close
// was called; the write-path terminal used by repositories and tests.
type BufferCloser struct {
	bytes.Buffer
	// Closed reports whether Close has been called.
	Closed bool
	// OnClose, if non-nil, runs once with the final contents when
	// the stream is closed.
	OnClose func(data []byte)
}

// Close implements io.Closer.
func (b *BufferCloser) Close() error {
	if !b.Closed {
		b.Closed = true
		if b.OnClose != nil {
			b.OnClose(b.Bytes())
		}
	}
	return nil
}

// ReadAllAndClose drains r, closes it, and returns the content. The
// drain stages through a pooled buffer, so the returned slice is an
// exact-size allocation owned by the caller.
func ReadAllAndClose(r io.ReadCloser) ([]byte, error) {
	data, err := drainToOwned(r)
	cerr := r.Close()
	if err == nil {
		err = cerr
	}
	return data, err
}
