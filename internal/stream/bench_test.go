package stream

import (
	"bytes"
	"io"
	"testing"
)

// benchContent is a 64 KiB body.
var benchContent = bytes.Repeat([]byte("the placeless documents system transforms content "), 1285)

func BenchmarkWholeInputChain(b *testing.B) {
	for _, depth := range []int{1, 4, 8} {
		b.Run(itoa(depth), func(b *testing.B) {
			wrappers := make([]InputWrapper, depth)
			for i := range wrappers {
				wrappers[i] = WholeInput(bytes.ToUpper)
			}
			b.SetBytes(int64(len(benchContent)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := ChainInput(BytesReader(benchContent), wrappers...)
				if _, err := io.Copy(io.Discard, r); err != nil {
					b.Fatal(err)
				}
				r.Close()
			}
		})
	}
}

func BenchmarkChunkInput(b *testing.B) {
	b.SetBytes(int64(len(benchContent)))
	for i := 0; i < b.N; i++ {
		r := ChainInput(BytesReader(benchContent), ChunkInput(bytes.ToUpper))
		if _, err := io.Copy(io.Discard, r); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

func BenchmarkTapInput(b *testing.B) {
	b.SetBytes(int64(len(benchContent)))
	var total int64
	for i := 0; i < b.N; i++ {
		r := ChainInput(BytesReader(benchContent), TapInput(ObserverFuncs{
			OnData: func(p []byte) { total += int64(len(p)) },
		}))
		if _, err := io.Copy(io.Discard, r); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
	_ = total
}

func BenchmarkWholeOutputChain(b *testing.B) {
	b.SetBytes(int64(len(benchContent)))
	for i := 0; i < b.N; i++ {
		var sink BufferCloser
		w := ChainOutput(&sink, WholeOutput(bytes.ToUpper), WholeOutput(bytes.ToLower))
		if _, err := w.Write(benchContent); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// itoa avoids strconv for this tiny use.
func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}
