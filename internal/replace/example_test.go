package replace_test

import (
	"fmt"
	"time"

	"placeless/internal/replace"
)

// Example shows Greedy-Dual-Size preferring to evict cheap-per-byte
// content: a huge cheap page loses to a small document that is
// expensive to rebuild.
func Example() {
	p := replace.NewGDS()
	p.Insert("cheap-big-page", 100_000, 5*time.Millisecond)
	p.Insert("costly-translated-report", 2_000, 500*time.Millisecond)

	victim, _ := p.Victim()
	fmt.Println("evict first:", victim)
	// Output:
	// evict first: cheap-big-page
}
