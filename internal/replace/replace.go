// Package replace implements cache replacement policies.
//
// The paper's prototype uses "a version of the Greedy-Dual-Size
// algorithm [Cao & Irani 1997], based on the replacement cost supplied
// by the properties and bit-provider, as well as on the size of the
// document and the access frequency of the document at that cache"
// (§4). GDS and its frequency-aware variant GDSF are implemented here,
// together with LRU, LFU, FIFO and SIZE baselines for the ablation
// experiment (E2 in DESIGN.md).
//
// A Policy tracks entry metadata and answers "which entry should be
// evicted next"; the cache owns the actual content.
package replace

import (
	"container/heap"
	"container/list"
	"time"
)

// Policy is a replacement strategy.
//
// Thread-safety contract: implementations are NOT concurrency-safe and
// perform no locking of their own. The owning cache must serialize all
// calls — including Victim, which MUTATES internal state in the
// Greedy-Dual policies (it advances the aging value L) and therefore
// cannot be treated as a read-only query. The sharded cache core keeps
// one policy instance behind a single dedicated mutex (policyMu):
// replacement stays globally cost-aware across shards, while the policy
// itself remains a simple single-threaded structure. The policy mutex
// is a leaf lock — a holder must not acquire shard locks, call into the
// document space, or invoke any Policy method re-entrantly.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Insert registers a new entry with its size in bytes and its
	// replacement cost (retrieval + property execution time).
	Insert(key string, size int64, cost time.Duration)
	// Access records a hit on an existing entry; unknown keys are
	// ignored.
	Access(key string)
	// Remove forgets an entry (eviction or invalidation); unknown
	// keys are ignored.
	Remove(key string)
	// Victim returns the entry the policy would evict next, without
	// removing it. ok is false when the policy tracks nothing.
	Victim() (key string, ok bool)
	// Len reports how many entries the policy tracks.
	Len() int
}

// Factory constructs a fresh policy instance; experiment harnesses use
// factories to run identical traces against each policy.
type Factory func() Policy

// costUnits converts a replacement cost into the float used in
// priority formulas (milliseconds).
func costUnits(cost time.Duration) float64 {
	ms := float64(cost) / float64(time.Millisecond)
	if ms <= 0 {
		ms = 0.001 // cost-free entries still need a positive priority
	}
	return ms
}

// pqEntry is a priority-queue element shared by the heap-based
// policies. Lower priority = better eviction candidate.
type pqEntry struct {
	key      string
	size     int64
	cost     time.Duration
	freq     float64
	priority float64
	seq      uint64 // FIFO tie-break
	index    int
}

// pq is a min-heap of pqEntries by priority (ties broken by insertion
// order, oldest first).
type pq []*pqEntry

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].priority == p[j].priority {
		return p[i].seq < p[j].seq
	}
	return p[i].priority < p[j].priority
}
func (p pq) Swap(i, j int) {
	p[i], p[j] = p[j], p[i]
	p[i].index = i
	p[j].index = j
}
func (p *pq) Push(x interface{}) {
	e := x.(*pqEntry)
	e.index = len(*p)
	*p = append(*p, e)
}
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*p = old[:n-1]
	return e
}

// heapPolicy is the shared machinery for GDS, GDSF, LFU and SIZE: a
// priority function over entry state plus an aging mechanism.
type heapPolicy struct {
	name     string
	entries  map[string]*pqEntry
	heap     pq
	seq      uint64
	inflate  float64 // GDS aging value L
	useL     bool    // whether priority includes L
	priority func(h *heapPolicy, e *pqEntry) float64
}

func (h *heapPolicy) Name() string { return h.name }
func (h *heapPolicy) Len() int     { return len(h.entries) }

func (h *heapPolicy) Insert(key string, size int64, cost time.Duration) {
	if old, ok := h.entries[key]; ok {
		heap.Remove(&h.heap, old.index)
		delete(h.entries, key)
	}
	h.seq++
	e := &pqEntry{key: key, size: size, cost: cost, freq: 1, seq: h.seq}
	e.priority = h.priority(h, e)
	h.entries[key] = e
	heap.Push(&h.heap, e)
}

func (h *heapPolicy) Access(key string) {
	e, ok := h.entries[key]
	if !ok {
		return
	}
	e.freq++
	e.priority = h.priority(h, e)
	heap.Fix(&h.heap, e.index)
}

func (h *heapPolicy) Remove(key string) {
	e, ok := h.entries[key]
	if !ok {
		return
	}
	heap.Remove(&h.heap, e.index)
	delete(h.entries, key)
}

func (h *heapPolicy) Victim() (string, bool) {
	if len(h.heap) == 0 {
		return "", false
	}
	v := h.heap[0]
	if h.useL {
		// Greedy-Dual aging: when an entry is (about to be) evicted,
		// the inflation value L rises to its priority, so future
		// entries start ahead of long-resident ones.
		h.inflate = v.priority
	}
	return v.key, true
}

// NewGDS returns the paper's Greedy-Dual-Size policy: priority
// H = L + cost/size, evict the minimum. Documents that are expensive
// to rebuild (slow sources, many or slow active properties) are kept
// preferentially, per byte of cache they occupy.
func NewGDS() Policy {
	return &heapPolicy{
		name:    "gds",
		entries: make(map[string]*pqEntry),
		useL:    true,
		priority: func(h *heapPolicy, e *pqEntry) float64 {
			size := float64(e.size)
			if size <= 0 {
				size = 1
			}
			return h.inflate + costUnits(e.cost)/size
		},
	}
}

// NewGDSF returns Greedy-Dual-Size-Frequency: H = L + freq·cost/size,
// folding in the access frequency the paper says its implementation
// also uses.
func NewGDSF() Policy {
	return &heapPolicy{
		name:    "gdsf",
		entries: make(map[string]*pqEntry),
		useL:    true,
		priority: func(h *heapPolicy, e *pqEntry) float64 {
			size := float64(e.size)
			if size <= 0 {
				size = 1
			}
			return h.inflate + e.freq*costUnits(e.cost)/size
		},
	}
}

// NewLFU returns least-frequently-used (ties: oldest first).
func NewLFU() Policy {
	return &heapPolicy{
		name:    "lfu",
		entries: make(map[string]*pqEntry),
		priority: func(_ *heapPolicy, e *pqEntry) float64 {
			return e.freq
		},
	}
}

// NewSize returns the SIZE policy: evict the largest document first.
func NewSize() Policy {
	return &heapPolicy{
		name:    "size",
		entries: make(map[string]*pqEntry),
		priority: func(_ *heapPolicy, e *pqEntry) float64 {
			return -float64(e.size)
		},
	}
}

// lruPolicy evicts the least recently used entry.
type lruPolicy struct {
	order   *list.List // front = most recent
	entries map[string]*list.Element
}

// NewLRU returns least-recently-used.
func NewLRU() Policy {
	return &lruPolicy{order: list.New(), entries: make(map[string]*list.Element)}
}

func (l *lruPolicy) Name() string { return "lru" }
func (l *lruPolicy) Len() int     { return len(l.entries) }

func (l *lruPolicy) Insert(key string, _ int64, _ time.Duration) {
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		return
	}
	l.entries[key] = l.order.PushFront(key)
}

func (l *lruPolicy) Access(key string) {
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
	}
}

func (l *lruPolicy) Remove(key string) {
	if el, ok := l.entries[key]; ok {
		l.order.Remove(el)
		delete(l.entries, key)
	}
}

func (l *lruPolicy) Victim() (string, bool) {
	back := l.order.Back()
	if back == nil {
		return "", false
	}
	return back.Value.(string), true
}

// fifoPolicy evicts in insertion order, ignoring accesses.
type fifoPolicy struct {
	order   *list.List // front = oldest
	entries map[string]*list.Element
}

// NewFIFO returns first-in-first-out.
func NewFIFO() Policy {
	return &fifoPolicy{order: list.New(), entries: make(map[string]*list.Element)}
}

func (f *fifoPolicy) Name() string { return "fifo" }
func (f *fifoPolicy) Len() int     { return len(f.entries) }

func (f *fifoPolicy) Insert(key string, _ int64, _ time.Duration) {
	if _, ok := f.entries[key]; ok {
		return
	}
	f.entries[key] = f.order.PushBack(key)
}

func (f *fifoPolicy) Access(string) {}

func (f *fifoPolicy) Remove(key string) {
	if el, ok := f.entries[key]; ok {
		f.order.Remove(el)
		delete(f.entries, key)
	}
}

func (f *fifoPolicy) Victim() (string, bool) {
	front := f.order.Front()
	if front == nil {
		return "", false
	}
	return front.Value.(string), true
}

// All returns factories for every policy, GDS (the paper's choice)
// first.
func All() []Factory {
	return []Factory{NewGDS, NewGDSF, NewLRU, NewLFU, NewFIFO, NewSize}
}
