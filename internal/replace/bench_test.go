package replace

import (
	"fmt"
	"testing"
	"time"
)

// populate inserts n entries with varied sizes and costs.
func populate(p Policy, n int) {
	for i := 0; i < n; i++ {
		p.Insert(fmt.Sprintf("k%06d", i), int64(512+i%4096), time.Duration(1+i%200)*time.Millisecond)
	}
}

func benchPolicy(b *testing.B, mk Factory) {
	const n = 10000
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := mk()
			populate(p, n)
		}
	})
	b.Run("access", func(b *testing.B) {
		p := mk()
		populate(p, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Access(fmt.Sprintf("k%06d", i%n))
		}
	})
	b.Run("victim-evict", func(b *testing.B) {
		p := mk()
		populate(p, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, ok := p.Victim()
			if !ok {
				b.StopTimer()
				populate(p, n)
				b.StartTimer()
				continue
			}
			p.Remove(v)
		}
	})
}

func BenchmarkGDSPolicy(b *testing.B)  { benchPolicy(b, NewGDS) }
func BenchmarkGDSFPolicy(b *testing.B) { benchPolicy(b, NewGDSF) }
func BenchmarkLRUPolicy(b *testing.B)  { benchPolicy(b, NewLRU) }
func BenchmarkLFUPolicy(b *testing.B)  { benchPolicy(b, NewLFU) }
