package replace

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestAllPoliciesBasicContract(t *testing.T) {
	for _, mk := range All() {
		p := mk()
		t.Run(p.Name(), func(t *testing.T) {
			if _, ok := p.Victim(); ok {
				t.Fatal("empty policy produced a victim")
			}
			p.Access("ghost") // unknown keys ignored
			p.Remove("ghost")

			p.Insert("a", 100, ms(10))
			p.Insert("b", 100, ms(10))
			if p.Len() != 2 {
				t.Fatalf("Len = %d", p.Len())
			}
			v, ok := p.Victim()
			if !ok || (v != "a" && v != "b") {
				t.Fatalf("Victim = %q, %v", v, ok)
			}
			p.Remove("a")
			p.Remove("b")
			if p.Len() != 0 {
				t.Fatalf("Len after removes = %d", p.Len())
			}
			if _, ok := p.Victim(); ok {
				t.Fatal("drained policy produced a victim")
			}
		})
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	p := NewLRU()
	p.Insert("a", 1, 0)
	p.Insert("b", 1, 0)
	p.Insert("c", 1, 0)
	p.Access("a") // a becomes most recent; b is now oldest
	if v, _ := p.Victim(); v != "b" {
		t.Fatalf("victim = %q, want b", v)
	}
}

func TestFIFOIgnoresAccess(t *testing.T) {
	p := NewFIFO()
	p.Insert("a", 1, 0)
	p.Insert("b", 1, 0)
	p.Access("a")
	p.Access("a")
	if v, _ := p.Victim(); v != "a" {
		t.Fatalf("victim = %q, want a (FIFO ignores recency)", v)
	}
	p.Insert("a", 1, 0) // re-insert of existing key keeps position
	if v, _ := p.Victim(); v != "a" {
		t.Fatal("duplicate insert moved FIFO position")
	}
}

func TestLFUEvictsColdest(t *testing.T) {
	p := NewLFU()
	p.Insert("hot", 1, 0)
	p.Insert("cold", 1, 0)
	p.Access("hot")
	p.Access("hot")
	if v, _ := p.Victim(); v != "cold" {
		t.Fatalf("victim = %q, want cold", v)
	}
}

func TestSizeEvictsLargest(t *testing.T) {
	p := NewSize()
	p.Insert("small", 10, ms(100))
	p.Insert("big", 10000, ms(1))
	if v, _ := p.Victim(); v != "big" {
		t.Fatalf("victim = %q, want big", v)
	}
}

func TestGDSPrefersCheapLargeVictims(t *testing.T) {
	p := NewGDS()
	// Expensive-per-byte document vs cheap-per-byte document.
	p.Insert("precious", 1000, ms(500)) // 0.5 ms/B
	p.Insert("junk", 100000, ms(5))     // 0.00005 ms/B
	if v, _ := p.Victim(); v != "junk" {
		t.Fatalf("victim = %q, want junk (low cost/size)", v)
	}
}

func TestGDSAgingAllowsEventualEviction(t *testing.T) {
	// After evictions raise L, an old high-priority entry that is
	// never touched again must eventually become the victim against
	// fresh moderate entries.
	p := NewGDS()
	p.Insert("resident", 1000, ms(50)) // priority 0.05
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("new%d", i)
		p.Insert(key, 1000, ms(10)) // 0.01 + L
		v, ok := p.Victim()
		if !ok {
			t.Fatal("no victim")
		}
		p.Remove(v)
		if v == "resident" {
			return // aged out, as required
		}
	}
	t.Fatal("GDS aging never evicted the stale resident")
}

func TestGDSFFrequencyProtectsHotEntries(t *testing.T) {
	p := NewGDSF()
	p.Insert("hot", 1000, ms(10))
	p.Insert("cold", 1000, ms(10))
	for i := 0; i < 5; i++ {
		p.Access("hot")
	}
	if v, _ := p.Victim(); v != "cold" {
		t.Fatalf("victim = %q, want cold", v)
	}
	// Plain GDS does not distinguish them by frequency: the victim is
	// just the first inserted.
	g := NewGDS()
	g.Insert("hot", 1000, ms(10))
	g.Insert("cold", 1000, ms(10))
	for i := 0; i < 5; i++ {
		g.Access("hot")
	}
	if v, _ := g.Victim(); v != "hot" {
		t.Fatalf("GDS victim = %q, want hot (insertion order tie-break)", v)
	}
}

func TestHeapPolicyReinsertReplaces(t *testing.T) {
	p := NewGDS()
	p.Insert("k", 1000, ms(1))
	p.Insert("k", 10, ms(1000)) // updated metadata
	if p.Len() != 1 {
		t.Fatalf("Len = %d after reinsert", p.Len())
	}
	p.Insert("junk", 100000, ms(1))
	if v, _ := p.Victim(); v != "junk" {
		t.Fatalf("victim = %q; reinsert did not update cost/size", v)
	}
}

func TestZeroCostAndZeroSizeEntries(t *testing.T) {
	for _, mk := range []Factory{NewGDS, NewGDSF} {
		p := mk()
		p.Insert("zero", 0, 0)
		p.Insert("norm", 100, ms(10))
		if v, ok := p.Victim(); !ok || v != "zero" {
			t.Fatalf("%s: victim = %q, %v", p.Name(), v, ok)
		}
	}
}

func TestVictimIsStableWithoutMutation(t *testing.T) {
	// Victim must not remove; two calls in a row agree (GDS updates
	// its aging value but the minimum entry is unchanged).
	for _, mk := range All() {
		p := mk()
		p.Insert("a", 100, ms(1))
		p.Insert("b", 200, ms(2))
		v1, _ := p.Victim()
		v2, _ := p.Victim()
		if v1 != v2 {
			t.Fatalf("%s: Victim not stable: %q then %q", p.Name(), v1, v2)
		}
		if p.Len() != 2 {
			t.Fatalf("%s: Victim mutated the set", p.Name())
		}
	}
}

// Property: for every policy, inserting n distinct keys then
// repeatedly evicting the victim drains exactly those n keys with no
// duplicates.
func TestDrainProperty(t *testing.T) {
	for _, mk := range All() {
		p := mk()
		f := func(sizes []uint16) bool {
			p := mk()
			n := len(sizes) % 50
			want := map[string]bool{}
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("k%d", i)
				p.Insert(key, int64(sizes[i])+1, ms(i+1))
				want[key] = true
			}
			seen := map[string]bool{}
			for {
				v, ok := p.Victim()
				if !ok {
					break
				}
				if seen[v] || !want[v] {
					return false
				}
				seen[v] = true
				p.Remove(v)
			}
			return len(seen) == n
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

// Property: GDS priorities are monotone in cost — with equal sizes and
// no accesses, the cheaper entry is evicted first.
func TestGDSCostMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		if a == b {
			return true
		}
		p := NewGDS()
		p.Insert("a", 1000, ms(int(a)+1))
		p.Insert("b", 1000, ms(int(b)+1))
		v, _ := p.Victim()
		if a < b {
			return v == "a"
		}
		return v == "b"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVictimMutatesGreedyDualAging pins the reason the thread-safety
// contract calls Victim a mutating operation: in the Greedy-Dual
// policies, Victim advances the aging value L to the head priority, so
// entries inserted after a Victim call start with inflated priority.
// Treating Victim as a read-only query (e.g. calling it outside the
// cache's policy lock) would race on L.
func TestVictimMutatesGreedyDualAging(t *testing.T) {
	for _, mk := range []Factory{NewGDS, NewGDSF} {
		p := mk().(*heapPolicy)
		p.Insert("a", 1, ms(10))
		before := p.inflate
		if _, ok := p.Victim(); !ok {
			t.Fatalf("%s: no victim", p.name)
		}
		if p.inflate == before {
			t.Fatalf("%s: Victim did not advance the aging value L", p.name)
		}
	}
}

// TestPolicySerializedConcurrentUse exercises the documented contract:
// a Policy shared by many goroutines is safe iff every call — Victim
// included — runs under one external mutex. Run under -race this
// verifies the cache's policyMu discipline is sufficient; the final
// drain checks no internal state was corrupted.
func TestPolicySerializedConcurrentUse(t *testing.T) {
	for _, mk := range All() {
		p := mk()
		var mu sync.Mutex
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					k := fmt.Sprintf("k%d", (g*31+i)%64)
					mu.Lock()
					switch i % 5 {
					case 0:
						p.Insert(k, int64(i%7+1), ms(i%9))
					case 1:
						p.Access(k)
					case 2:
						p.Remove(k)
					case 3:
						p.Victim()
					default:
						p.Len()
					}
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		seen := map[string]bool{}
		for {
			v, ok := p.Victim()
			if !ok {
				break
			}
			if seen[v] {
				t.Fatalf("%s: duplicate victim %q after concurrent use", p.Name(), v)
			}
			seen[v] = true
			p.Remove(v)
		}
		if p.Len() != 0 {
			t.Fatalf("%s: Len=%d after drain", p.Name(), p.Len())
		}
	}
}
