package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"placeless/internal/property"
)

// ErrClientClosed is returned by calls on a client that was closed
// locally via Close.
var ErrClientClosed = errors.New("server: client closed")

// ErrTimeout is returned when a call's deadline expires before the
// server responds — including the wedged-connection case where the
// server accepted the request but never answers. The connection is
// considered broken afterwards (a response that never comes means the
// demultiplexer behind it cannot be trusted), so the reconnect
// machinery takes over.
var ErrTimeout = errors.New("server: call deadline exceeded")

// ErrDisconnected is returned by calls issued while the connection to
// the server is down. With reconnection enabled the client is dialing
// in the background; callers decide between failing fast and retrying
// (the remote cache's degraded-mode policy).
var ErrDisconnected = errors.New("server: connection down")

// ConnState is the client's connection lifecycle state.
type ConnState int32

const (
	// StateConnected means the wire is up and calls flow.
	StateConnected ConnState = iota
	// StateDisconnected means the wire is down; with reconnection
	// enabled a background dialer is running backoff attempts.
	StateDisconnected
	// StateClosed means Close was called; the client is dead for good.
	StateClosed
)

// String names the state ("connected"/"disconnected"/"closed").
func (s ConnState) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateDisconnected:
		return "disconnected"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Dialer establishes the client's underlying connection. The default
// dials TCP; simulations inject an in-process transport (simnet.Net).
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)

func tcpDialer(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// dialConfig collects the per-client resilience knobs.
type dialConfig struct {
	callTimeout     time.Duration
	dialTimeout     time.Duration
	writeTimeout    time.Duration
	readIdleTimeout time.Duration
	reconnect       bool
	backoffBase     time.Duration
	backoffMax      time.Duration
	maxAttempts     int
	dialer          Dialer
	jitterSeed      int64
	jitterSeeded    bool
	protocol        int // ProtoAuto, ProtoV1, or ProtoV2
}

func defaultDialConfig() dialConfig {
	return dialConfig{
		dialTimeout:  5 * time.Second,
		writeTimeout: 10 * time.Second,
		backoffBase:  50 * time.Millisecond,
		backoffMax:   5 * time.Second,
		dialer:       tcpDialer,
	}
}

// DialOption configures a Client at Dial time.
type DialOption func(*dialConfig)

// WithCallTimeout bounds every request/response round trip. When the
// deadline expires the call returns ErrTimeout and the connection is
// reset (a server that accepts requests but never answers is
// indistinguishable from a dead one). Zero disables the bound.
func WithCallTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.callTimeout = d }
}

// WithDialTimeout bounds each TCP dial, both the initial one and every
// reconnection attempt. Default 5s.
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.dialTimeout = d }
}

// WithWriteTimeout sets the per-frame write deadline on the
// connection, so a peer that stops draining its socket fails the
// sender instead of wedging it. Default 10s; zero disables.
func WithWriteTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.writeTimeout = d }
}

// WithReadIdleTimeout sets a read deadline on the connection: if no
// frame (response or invalidation push) arrives for d, the connection
// is treated as dead. Only enable this against servers that push
// regularly — an idle but healthy subscription stream would otherwise
// be torn down and redialed. Zero (the default) disables it.
func WithReadIdleTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.readIdleTimeout = d }
}

// WithReconnect enables automatic reconnection with exponential
// backoff plus jitter: after a connection failure the client redials
// in the background, starting at base and doubling up to max per
// attempt. Each successful reconnect increments the connection epoch
// (see Epoch) and fires the OnReconnect hooks, which is how the remote
// cache resubscribes and flushes entries cached under the old epoch.
func WithReconnect(base, max time.Duration) DialOption {
	return func(c *dialConfig) {
		c.reconnect = true
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithMaxReconnectAttempts bounds how many consecutive failed dials
// the background reconnector tries before giving up (the client then
// stays disconnected until Close). Zero means retry forever.
func WithMaxReconnectAttempts(n int) DialOption {
	return func(c *dialConfig) { c.maxAttempts = n }
}

// WithDialer replaces the transport used for the initial connection
// and every reconnect attempt. The simulation harness injects an
// in-process network here so the whole wire protocol runs under
// deterministic fault schedules; production code keeps the TCP
// default.
func WithDialer(d Dialer) DialOption {
	return func(c *dialConfig) {
		if d != nil {
			c.dialer = d
		}
	}
}

// WithProtocolVersion pins the wire protocol generation: ProtoV1
// forces the legacy gob framing, ProtoV2 requires the binary protocol
// (dialing a server without v2 support fails instead of downgrading),
// and ProtoAuto — the default — negotiates v2 with automatic fallback
// to v1. Negotiation runs on every connection, including each
// background reconnect.
func WithProtocolVersion(v int) DialOption {
	return func(c *dialConfig) { c.protocol = v }
}

// WithJitterSeed fixes the PRNG behind reconnect backoff jitter so a
// simulation run is reproducible from a single seed. Without it the
// jitter is seeded from the wall clock, which is what a production
// fleet wants (clients spread out) and exactly what a deterministic
// replay cannot tolerate.
func WithJitterSeed(seed int64) DialOption {
	return func(c *dialConfig) {
		c.jitterSeed = seed
		c.jitterSeeded = true
	}
}

// ReadMeta is the cache-facing metadata a remote read returns.
type ReadMeta struct {
	// Cacheability is the aggregated read-path vote.
	Cacheability property.Cacheability
	// Cost is the replacement cost the read path accumulated.
	Cost time.Duration
	// Expiry is the earliest TTL deadline of the content (zero when
	// no TTL applies).
	Expiry time.Time
}

// pendingCall is one in-flight request. On success the response is
// delivered on ch; on connection failure err is set (typed) and ch is
// closed.
type pendingCall struct {
	ch  chan *Response
	err error

	// dst, when non-nil, is a caller-supplied buffer for the read body
	// (ReadInto). The v2 read loop claims it under the client lock
	// before decoding the body off the socket, recording the claiming
	// connection in claimed. Once claimed, only that connection's read
	// loop may complete or fail the call (deliver the response, or
	// flush it when the loop exits): any other goroutine waking the
	// caller early would hand the buffer back while the decoder is
	// still writing into it. The timeout path therefore waits for
	// delivery instead of abandoning a claimed call, and the generic
	// pending flushes skip claimed calls.
	dst     []byte
	claimed wireConn
}

// inval is one queued invalidation push.
type inval struct{ doc, user string }

// wireConn abstracts the two protocol generations on the client side:
// the read loop, call path, and reconnect machinery are version-blind.
type wireConn interface {
	sendRequest(req *Request, writeTimeout time.Duration) error
	readResponse() (*Response, error)
	setReadDeadline(t time.Time) error
	close() error
}

// wireV1 speaks the legacy gob framing.
type wireV1 struct{ fc *frameConn }

func (w wireV1) sendRequest(req *Request, d time.Duration) error { return w.fc.send(req, d) }

func (w wireV1) readResponse() (*Response, error) {
	var resp Response
	if err := w.fc.dec.Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (w wireV1) setReadDeadline(t time.Time) error { return w.fc.c.SetReadDeadline(t) }
func (w wireV1) close() error                      { return w.fc.close() }

// wireV2 speaks the binary protocol: encoded frames go through the
// connection's single writer goroutine (which batches concurrent small
// frames into one writev), responses decode off a buffered reader.
type wireV2 struct {
	c  net.Conn
	br *bufio.Reader
	fw *frameWriter

	// claim asks the call layer for a caller-registered read-body
	// destination (ReadInto) before the body is decoded off the socket.
	claim func(id uint64, n int) []byte

	closeOnce sync.Once
	closeErr  error
}

func (w *wireV2) sendRequest(req *Request, _ time.Duration) error {
	// The write deadline is armed by the writer goroutine per batch.
	f, err := encodeRequestFrame(req)
	if err != nil {
		return err
	}
	return w.fw.enqueue(f)
}

func (w *wireV2) readResponse() (*Response, error) { return readResponseFrameInto(w.br, w.claim) }
func (w *wireV2) setReadDeadline(t time.Time) error { return w.c.SetReadDeadline(t) }

func (w *wireV2) close() error {
	w.closeOnce.Do(func() {
		w.fw.close()
		w.closeErr = w.c.Close()
	})
	return w.closeErr
}

// Client is a connection to a Placeless server mirroring the local
// Space API. Safe for concurrent use.
//
// Failure model: when the connection breaks, every pending call fails
// with ErrDisconnected and — with WithReconnect — a background dialer
// re-establishes the wire. Each new connection bumps the epoch;
// consumers that depend on the server-push invalidation stream (the
// remote cache) must treat everything learned under an older epoch as
// suspect, because pushes may have been lost while disconnected.
type Client struct {
	addr string
	cfg  dialConfig
	rng  *rand.Rand // backoff jitter; only touched by the single reconnect loop

	framesBatched atomic.Int64 // frames coalesced into multi-frame writevs

	mu           sync.Mutex
	wc           wireConn // nil while disconnected
	proto        int      // negotiated version of the current connection
	state        ConnState
	epoch        uint64
	nextID       uint64
	pending      map[uint64]*pendingCall
	closed       bool
	reconnecting bool
	reconnects   int64
	timeouts     int64
	downSince    time.Time
	readErr      error
	onInval      func(doc, user string)
	onReconnect  []func(epoch uint64)
	onState      []func(ConnState)

	// Invalidation dispatch queue: pushes are decoupled from the read
	// loop so a slow handler cannot stall RPC responses (see
	// dispatchInvals for the ordering guarantee).
	invalMu   sync.Mutex
	invalCond *sync.Cond
	invals    []inval
	invalStop bool
}

// Dial connects to a Placeless server at addr. With no options the
// client behaves conservatively: no call deadline, no reconnection —
// the first connection failure leaves it disconnected for good.
// Production callers should enable WithCallTimeout and WithReconnect.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	cfg := defaultDialConfig()
	for _, o := range opts {
		o(&cfg)
	}
	jitterSeed := cfg.jitterSeed
	if !cfg.jitterSeeded {
		jitterSeed = time.Now().UnixNano()
	}
	c := &Client{
		addr:    addr,
		cfg:     cfg,
		state:   StateConnected,
		epoch:   1,
		pending: make(map[uint64]*pendingCall),
		rng:     rand.New(rand.NewSource(jitterSeed)),
	}
	wc, proto, err := c.connect()
	if err != nil {
		return nil, err
	}
	c.wc = wc
	c.proto = proto
	c.invalCond = sync.NewCond(&c.invalMu)
	go c.dispatchInvals()
	go c.readLoop(wc)
	return c, nil
}

// connect dials and negotiates the protocol version, returning the
// established wire and the version it speaks.
func (c *Client) connect() (wireConn, int, error) {
	conn, err := c.cfg.dialer(c.addr, c.cfg.dialTimeout)
	if err != nil {
		return nil, 0, err
	}
	if c.cfg.protocol == ProtoV1 {
		return wireV1{fc: newFrameConn(conn)}, ProtoV1, nil
	}
	wc, herr := c.handshakeV2(conn)
	if herr == nil {
		return wc, ProtoV2, nil
	}
	conn.Close()
	if c.cfg.protocol == ProtoV2 {
		return nil, 0, fmt.Errorf("server: v2 handshake failed: %w", herr)
	}
	// Downgrade path. The magic preamble has already poisoned a legacy
	// server's gob stream (that is how the refusal manifests), so v1
	// needs a fresh connection rather than reusing this one.
	conn, err = c.cfg.dialer(c.addr, c.cfg.dialTimeout)
	if err != nil {
		return nil, 0, err
	}
	return wireV1{fc: newFrameConn(conn)}, ProtoV1, nil
}

// handshakeV2 sends the v2 magic and waits (bounded by the dial
// timeout) for the server's ack. Any failure — a legacy server closing
// the connection after a gob decode error, or silence until the
// deadline — means "the server does not speak v2".
func (c *Client) handshakeV2(conn net.Conn) (*wireV2, error) {
	if c.cfg.dialTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.cfg.dialTimeout))
	}
	if _, err := conn.Write(helloMagic[:]); err != nil {
		return nil, err
	}
	var ack [len(helloAck)]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return nil, err
	}
	if ack != helloAck {
		return nil, errors.New("unexpected handshake ack")
	}
	_ = conn.SetDeadline(time.Time{})
	// 8 KiB: headers and small frames decode from the buffered window,
	// while blob bodies larger than the buffer take bufio's large-read
	// bypass straight into the response allocation — no staging copy.
	w := &wireV2{c: conn, br: bufio.NewReaderSize(conn, 8<<10)}
	w.claim = func(id uint64, n int) []byte { return c.claimReadDst(w, id, n) }
	w.fw = newFrameWriter(conn, c.cfg.writeTimeout, &c.framesBatched, nil,
		func(err error) { c.connFailed(w, err) })
	return w, nil
}

// ProtocolVersion reports the negotiated protocol generation of the
// current connection (ProtoV1 or ProtoV2); after a reconnect it
// reflects the fresh negotiation.
func (c *Client) ProtocolVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.proto
}

// FramesBatched returns how many outbound frames were coalesced into
// multi-frame writev batches by the v2 writer (0 on v1 connections) —
// the pipelining win made visible for metrics and benchmarks.
func (c *Client) FramesBatched() int64 { return c.framesBatched.Load() }

// OnInvalidate registers the handler for server-pushed invalidations.
// user == "" means every user's version of doc is affected. The
// handler runs on a dedicated dispatch goroutine (never on the read
// loop), so it may block or re-enter the client without stalling RPC
// responses.
func (c *Client) OnInvalidate(fn func(doc, user string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onInval = fn
}

// OnReconnect registers fn to run after every successful automatic
// reconnection, with the new connection epoch. Hooks run on the
// reconnect goroutine, after the new read loop is live, so they can
// issue calls (e.g. re-Subscribe) on the fresh connection.
func (c *Client) OnReconnect(fn func(epoch uint64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onReconnect = append(c.onReconnect, fn)
}

// OnStateChange registers fn to run on every connection state
// transition (connected → disconnected → connected …, and finally
// closed). Hooks must not block for long; they run outside the client
// lock.
func (c *Client) OnStateChange(fn func(ConnState)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onState = append(c.onState, fn)
}

// State reports the current connection state.
func (c *Client) State() ConnState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Epoch returns the connection epoch: 1 for the initial connection,
// incremented by every successful reconnect.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Reconnects returns how many times the client successfully
// re-established the connection.
func (c *Client) Reconnects() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Timeouts returns how many calls failed with ErrTimeout.
func (c *Client) Timeouts() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timeouts
}

// DownSince returns when the current disconnection began (zero time
// while connected or closed-before-ever-disconnecting).
func (c *Client) DownSince() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateDisconnected {
		return c.downSince
	}
	return time.Time{}
}

// PendingInvalidations reports how many server pushes are queued but
// not yet delivered to the OnInvalidate handler. Simulations drain
// this to zero (together with the network's in-flight count) before
// trusting a consistency check; operators can poll it to see whether
// a slow handler is falling behind the push stream.
func (c *Client) PendingInvalidations() int {
	c.invalMu.Lock()
	defer c.invalMu.Unlock()
	return len(c.invals)
}

// enqueueInval appends one push to the dispatch queue. The queue is
// unbounded: invalidations must never be dropped (a lost push is
// unbounded staleness), and per (doc, user) they are idempotent, so
// memory is bounded by the working set even under a stuck handler.
func (c *Client) enqueueInval(doc, user string) {
	c.invalMu.Lock()
	c.invals = append(c.invals, inval{doc: doc, user: user})
	c.invalMu.Unlock()
	c.invalCond.Signal()
}

// dispatchInvals delivers invalidation pushes to the OnInvalidate
// handler on a dedicated goroutine. Ordering guarantee: pushes are
// delivered one at a time, in wire arrival order; delivery is
// asynchronous with respect to RPC responses, which are never blocked
// by a slow or re-entrant handler.
func (c *Client) dispatchInvals() {
	c.invalMu.Lock()
	for {
		for len(c.invals) == 0 && !c.invalStop {
			c.invalCond.Wait()
		}
		if len(c.invals) == 0 && c.invalStop {
			c.invalMu.Unlock()
			return
		}
		iv := c.invals[0]
		c.invals = c.invals[1:]
		c.invalMu.Unlock()

		c.mu.Lock()
		fn := c.onInval
		c.mu.Unlock()
		if fn != nil {
			fn(iv.doc, iv.user)
		}

		c.invalMu.Lock()
	}
}

// readLoop demultiplexes responses and notifications for one
// connection; it exits (via connFailed) when the connection dies.
func (c *Client) readLoop(wc wireConn) {
	for {
		if c.cfg.readIdleTimeout > 0 {
			_ = wc.setReadDeadline(time.Now().Add(c.cfg.readIdleTimeout))
		}
		resp, err := wc.readResponse()
		if err != nil {
			c.connFailed(wc, err)
			// connFailed skips calls claimed by this connection's
			// decoder (their buffers were being written until
			// readResponse returned just above); fail them here, where
			// the decoder is provably done.
			c.flushClaimed(wc)
			return
		}
		if resp.ID == 0 {
			c.enqueueInval(resp.NotifyDoc, resp.NotifyUser)
			continue
		}
		c.mu.Lock()
		pc := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if pc != nil {
			pc.ch <- resp
		}
	}
}

// connFailed retires a broken connection: pending calls fail with a
// typed error, the state flips to disconnected, and (when enabled) the
// background reconnector starts. Safe to call from multiple goroutines
// and multiple times; only the first caller for a given connection
// does the work.
func (c *Client) connFailed(wc wireConn, err error) {
	c.mu.Lock()
	if c.wc != wc {
		c.mu.Unlock()
		wc.close()
		return
	}
	c.wc = nil
	c.readErr = err
	failErr := error(ErrDisconnected)
	newState := StateDisconnected
	if c.closed {
		failErr = ErrClientClosed
		newState = StateClosed
	}
	for id, pc := range c.pending {
		if pc.claimed != nil {
			// A read-loop decoder owns this call's buffer; that loop
			// fails it via flushClaimed once its decode returns.
			continue
		}
		pc.err = failErr
		close(pc.ch)
		delete(c.pending, id)
	}
	var stateFns []func(ConnState)
	if c.state != newState {
		c.state = newState
		c.downSince = time.Now()
		stateFns = append(stateFns, c.onState...)
	}
	startReconnect := !c.closed && c.cfg.reconnect && !c.reconnecting
	if startReconnect {
		c.reconnecting = true
	}
	c.mu.Unlock()
	wc.close()
	for _, fn := range stateFns {
		fn(newState)
	}
	if startReconnect {
		go c.reconnectLoop()
	}
}

// reconnectLoop redials with exponential backoff plus jitter until a
// connection is established, the attempt budget is exhausted, or the
// client is closed.
func (c *Client) reconnectLoop() {
	backoff := c.cfg.backoffBase
	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.reconnecting = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		wc, proto, err := c.connect()
		if err == nil {
			c.mu.Lock()
			if c.closed {
				c.reconnecting = false
				c.mu.Unlock()
				wc.close()
				return
			}
			c.wc = wc
			c.proto = proto
			c.epoch++
			epoch := c.epoch
			c.state = StateConnected
			c.reconnects++
			c.reconnecting = false
			reconFns := append([]func(uint64){}, c.onReconnect...)
			stateFns := append([]func(ConnState){}, c.onState...)
			c.mu.Unlock()
			go c.readLoop(wc)
			for _, fn := range stateFns {
				fn(StateConnected)
			}
			for _, fn := range reconFns {
				fn(epoch)
			}
			return
		}

		if c.cfg.maxAttempts > 0 && attempt >= c.cfg.maxAttempts {
			c.mu.Lock()
			c.reconnecting = false
			c.mu.Unlock()
			return
		}
		// Full jitter on top of the exponential base spreads a fleet
		// of clients reconnecting to a restarted server over time.
		sleep := backoff + time.Duration(c.rng.Int63n(int64(backoff)+1))
		time.Sleep(sleep)
		backoff *= 2
		if backoff > c.cfg.backoffMax {
			backoff = c.cfg.backoffMax
		}
	}
}

// claimReadDst is the v2 read loop's destination hook: if the call id
// has a registered ReadInto buffer with capacity for an n-byte body,
// mark it claimed and hand it over sized to n. Claiming and the
// timeout path are serialized on c.mu, so the buffer is never handed
// to the decoder after its owner has abandoned the call and taken the
// buffer back.
func (c *Client) claimReadDst(wc wireConn, id uint64, n int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	pc := c.pending[id]
	if pc == nil || pc.dst == nil || cap(pc.dst) < n {
		return nil
	}
	pc.claimed = wc
	return pc.dst[:n]
}

// flushClaimed fails every pending call claimed by wc. It runs on
// wc's read loop goroutine after the loop has exited, which is the
// only point where a claimed destination buffer is provably no longer
// being written by the decoder.
func (c *Client) flushClaimed(wc wireConn) {
	c.mu.Lock()
	failErr := error(ErrDisconnected)
	if c.closed {
		failErr = ErrClientClosed
	}
	for id, pc := range c.pending {
		if pc.claimed == wc {
			pc.err = failErr
			close(pc.ch)
			delete(c.pending, id)
		}
	}
	c.mu.Unlock()
}

// call performs one request/response round trip, honoring the
// configured call deadline even when the connection is wedged (the
// server accepted the request but will never answer).
func (c *Client) call(req *Request) (*Response, error) {
	return c.callDst(req, nil)
}

// callDst is call with an optional caller-owned destination buffer
// for the read body (see ReadInto).
func (c *Client) callDst(req *Request, dst []byte) (*Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	wc := c.wc
	if wc == nil {
		c.mu.Unlock()
		return nil, ErrDisconnected
	}
	c.nextID++
	req.ID = c.nextID
	pc := &pendingCall{ch: make(chan *Response, 1), dst: dst}
	c.pending[req.ID] = pc
	c.mu.Unlock()

	if err := wc.sendRequest(req, c.cfg.writeTimeout); err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		closed := c.closed
		c.mu.Unlock()
		c.connFailed(wc, err)
		if closed {
			return nil, ErrClientClosed
		}
		return nil, fmt.Errorf("%w: %v", ErrDisconnected, err)
	}

	var timeout <-chan time.Time
	if c.cfg.callTimeout > 0 {
		t := time.NewTimer(c.cfg.callTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case resp, ok := <-pc.ch:
		if !ok {
			if pc.err != nil {
				return nil, pc.err
			}
			return nil, ErrClientClosed
		}
		if resp.Err != "" {
			return resp, fmt.Errorf("server: %s", resp.Err)
		}
		return resp, nil
	case <-timeout:
		c.mu.Lock()
		if pc.claimed != nil {
			// The read loop is already decoding the body into the
			// caller's buffer; abandoning now would hand a buffer the
			// decoder is writing back to the caller. Delivery (or a
			// connection failure that flushes pending calls) is at most
			// one body read away, so wait it out.
			c.mu.Unlock()
			resp, ok := <-pc.ch
			if !ok {
				if pc.err != nil {
					return nil, pc.err
				}
				return nil, ErrClientClosed
			}
			if resp.Err != "" {
				return resp, fmt.Errorf("server: %s", resp.Err)
			}
			return resp, nil
		}
		delete(c.pending, req.ID)
		c.timeouts++
		c.mu.Unlock()
		// A response that never arrives means the connection cannot
		// be trusted (responses and invalidation pushes share it):
		// reset it so the reconnect path takes over instead of
		// leaving a zombie link up.
		c.connFailed(wc, ErrTimeout)
		return nil, ErrTimeout
	}
}

// Close tears down the connection and stops the background machinery.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.state = StateClosed
	wc := c.wc
	c.wc = nil
	for id, pc := range c.pending {
		if pc.claimed != nil {
			// The connection teardown below errors the decoder out;
			// its read loop then fails this call via flushClaimed.
			continue
		}
		pc.err = ErrClientClosed
		close(pc.ch)
		delete(c.pending, id)
	}
	stateFns := append([]func(ConnState){}, c.onState...)
	c.mu.Unlock()

	c.invalMu.Lock()
	c.invalStop = true
	c.invalMu.Unlock()
	c.invalCond.Broadcast()

	var err error
	if wc != nil {
		err = wc.close()
	}
	for _, fn := range stateFns {
		fn(StateClosed)
	}
	return err
}

// Read executes the remote read path.
func (c *Client) Read(doc, user string) ([]byte, ReadMeta, error) {
	resp, err := c.call(&Request{Op: OpRead, Doc: doc, User: user})
	if err != nil {
		return nil, ReadMeta{}, err
	}
	meta := ReadMeta{
		Cacheability: property.Cacheability(resp.Cacheability),
		Cost:         time.Duration(resp.CostNanos),
	}
	if resp.ExpiryUnixNanos != 0 {
		meta.Expiry = time.Unix(0, resp.ExpiryUnixNanos)
	}
	return resp.Body, meta, nil
}

// ReadInto is Read with a caller-supplied body buffer, the client
// half of the zero-copy blob path. On a v2 connection, when buf has
// capacity for the body, the read loop decodes the body from the
// socket directly into buf — no per-read body allocation — and the
// returned slice aliases buf. When buf is too small, or the
// connection speaks v1 (gob decides its own allocations), the body
// lands in a fresh allocation and buf is unused; callers must
// therefore use the returned slice, not buf. buf must not be read,
// written, or handed to another ReadInto until the call returns; on
// error its contents are undefined.
func (c *Client) ReadInto(doc, user string, buf []byte) ([]byte, ReadMeta, error) {
	resp, err := c.callDst(&Request{Op: OpRead, Doc: doc, User: user}, buf)
	if err != nil {
		return nil, ReadMeta{}, err
	}
	meta := ReadMeta{
		Cacheability: property.Cacheability(resp.Cacheability),
		Cost:         time.Duration(resp.CostNanos),
	}
	if resp.ExpiryUnixNanos != 0 {
		meta.Expiry = time.Unix(0, resp.ExpiryUnixNanos)
	}
	return resp.Body, meta, nil
}

// Write executes the remote write path.
func (c *Client) Write(doc, user string, data []byte) error {
	_, err := c.call(&Request{Op: OpWrite, Doc: doc, User: user, Body: data})
	return err
}

// CreateDocument registers a document with initial content, owned by
// owner, on the server's backing repository.
func (c *Client) CreateDocument(doc, owner string, content []byte) error {
	_, err := c.call(&Request{Op: OpCreateDocument, Doc: doc, User: owner, Body: content})
	return err
}

// AddReference gives user a reference to doc.
func (c *Client) AddReference(doc, user string) error {
	_, err := c.call(&Request{Op: OpAddReference, Doc: doc, User: user})
	return err
}

// Attach attaches a standard property by spec (see ParsePropertySpec);
// personal selects the reference level.
func (c *Client) Attach(doc, user string, personal bool, spec string) error {
	_, err := c.call(&Request{Op: OpAttach, Doc: doc, User: user, Personal: personal, Property: spec})
	return err
}

// Detach removes the named property.
func (c *Client) Detach(doc, user string, personal bool, name string) error {
	_, err := c.call(&Request{Op: OpDetach, Doc: doc, User: user, Personal: personal, Property: name})
	return err
}

// AttachStatic attaches a static label.
func (c *Client) AttachStatic(doc, user string, personal bool, key, value string) error {
	_, err := c.call(&Request{Op: OpAttachStatic, Doc: doc, User: user, Personal: personal, Property: key, Value: value})
	return err
}

// Subscribe registers for invalidation pushes for (doc, user).
// Subscriptions are per connection: after a reconnect they must be
// replayed (the remote cache does this from its OnReconnect hook).
func (c *Client) Subscribe(doc, user string) error {
	_, err := c.call(&Request{Op: OpSubscribe, Doc: doc, User: user})
	return err
}

// ForwardEvent redelivers an operation event by kind name (e.g.
// "getInputStream").
func (c *Client) ForwardEvent(doc, user, kind string) error {
	_, err := c.call(&Request{Op: OpForwardEvent, Doc: doc, User: user, Value: kind})
	return err
}

// ListActives lists active property names at a node.
func (c *Client) ListActives(doc, user string, personal bool) ([]string, error) {
	resp, err := c.call(&Request{Op: OpListActives, Doc: doc, User: user, Personal: personal})
	if err != nil {
		return nil, err
	}
	return resp.Actives, nil
}

// Describe returns a rendered configuration summary of a document.
func (c *Client) Describe(doc string) (string, error) {
	resp, err := c.call(&Request{Op: OpDescribe, Doc: doc})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// Find lists documents visible to user carrying the static property
// key (and value, when non-empty) — Placeless's property-based
// document organization over the wire. Matches travel as struct
// fields, so values containing tabs or newlines round-trip intact.
func (c *Client) Find(user, key, value string) ([]Match, error) {
	resp, err := c.call(&Request{Op: OpFind, User: user, Property: key, Value: value})
	if err != nil {
		return nil, err
	}
	return resp.Matches, nil
}

// Stats returns server counters.
func (c *Client) Stats() (map[string]int64, error) {
	resp, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}
