package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"placeless/internal/property"
)

// ErrClientClosed is returned by calls on a closed client.
var ErrClientClosed = errors.New("server: client closed")

// ReadMeta is the cache-facing metadata a remote read returns.
type ReadMeta struct {
	// Cacheability is the aggregated read-path vote.
	Cacheability property.Cacheability
	// Cost is the replacement cost the read path accumulated.
	Cost time.Duration
	// Expiry is the earliest TTL deadline of the content (zero when
	// no TTL applies).
	Expiry time.Time
}

// Client is a connection to a Placeless server mirroring the local
// Space API. Safe for concurrent use.
type Client struct {
	fc *frameConn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Response
	closed  bool
	onInval func(doc, user string)
	readErr error
}

// Dial connects to a Placeless server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{fc: newFrameConn(conn), pending: make(map[uint64]chan *Response)}
	go c.readLoop()
	return c, nil
}

// OnInvalidate registers the handler for server-pushed invalidations.
// user == "" means every user's version of doc is affected.
func (c *Client) OnInvalidate(fn func(doc, user string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onInval = fn
}

// readLoop demultiplexes responses and notifications.
func (c *Client) readLoop() {
	for {
		var resp Response
		if err := c.fc.dec.Decode(&resp); err != nil {
			c.mu.Lock()
			c.readErr = err
			c.closed = true
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		if resp.ID == 0 {
			c.mu.Lock()
			fn := c.onInval
			c.mu.Unlock()
			if fn != nil {
				fn(resp.NotifyDoc, resp.NotifyUser)
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			r := resp
			ch <- &r
		}
	}
}

// call performs one request/response round trip.
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextID++
	req.ID = c.nextID
	ch := make(chan *Response, 1)
	c.pending[req.ID] = ch
	c.mu.Unlock()

	if err := c.fc.send(req); err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, ErrClientClosed
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("server: %s", resp.Err)
	}
	return resp, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.fc.close()
}

// Read executes the remote read path.
func (c *Client) Read(doc, user string) ([]byte, ReadMeta, error) {
	resp, err := c.call(&Request{Op: OpRead, Doc: doc, User: user})
	if err != nil {
		return nil, ReadMeta{}, err
	}
	meta := ReadMeta{
		Cacheability: property.Cacheability(resp.Cacheability),
		Cost:         time.Duration(resp.CostNanos),
	}
	if resp.ExpiryUnixNanos != 0 {
		meta.Expiry = time.Unix(0, resp.ExpiryUnixNanos)
	}
	return resp.Body, meta, nil
}

// Write executes the remote write path.
func (c *Client) Write(doc, user string, data []byte) error {
	_, err := c.call(&Request{Op: OpWrite, Doc: doc, User: user, Body: data})
	return err
}

// CreateDocument registers a document with initial content, owned by
// owner, on the server's backing repository.
func (c *Client) CreateDocument(doc, owner string, content []byte) error {
	_, err := c.call(&Request{Op: OpCreateDocument, Doc: doc, User: owner, Body: content})
	return err
}

// AddReference gives user a reference to doc.
func (c *Client) AddReference(doc, user string) error {
	_, err := c.call(&Request{Op: OpAddReference, Doc: doc, User: user})
	return err
}

// Attach attaches a standard property by spec (see ParsePropertySpec);
// personal selects the reference level.
func (c *Client) Attach(doc, user string, personal bool, spec string) error {
	_, err := c.call(&Request{Op: OpAttach, Doc: doc, User: user, Personal: personal, Property: spec})
	return err
}

// Detach removes the named property.
func (c *Client) Detach(doc, user string, personal bool, name string) error {
	_, err := c.call(&Request{Op: OpDetach, Doc: doc, User: user, Personal: personal, Property: name})
	return err
}

// AttachStatic attaches a static label.
func (c *Client) AttachStatic(doc, user string, personal bool, key, value string) error {
	_, err := c.call(&Request{Op: OpAttachStatic, Doc: doc, User: user, Personal: personal, Property: key, Value: value})
	return err
}

// Subscribe registers for invalidation pushes for (doc, user).
func (c *Client) Subscribe(doc, user string) error {
	_, err := c.call(&Request{Op: OpSubscribe, Doc: doc, User: user})
	return err
}

// ForwardEvent redelivers an operation event by kind name (e.g.
// "getInputStream").
func (c *Client) ForwardEvent(doc, user, kind string) error {
	_, err := c.call(&Request{Op: OpForwardEvent, Doc: doc, User: user, Value: kind})
	return err
}

// ListActives lists active property names at a node.
func (c *Client) ListActives(doc, user string, personal bool) ([]string, error) {
	resp, err := c.call(&Request{Op: OpListActives, Doc: doc, User: user, Personal: personal})
	if err != nil {
		return nil, err
	}
	return resp.Actives, nil
}

// Describe returns a rendered configuration summary of a document.
func (c *Client) Describe(doc string) (string, error) {
	resp, err := c.call(&Request{Op: OpDescribe, Doc: doc})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// Match is one property-search hit.
type Match struct {
	// Doc is the matched document id.
	Doc string
	// Value is the matched static property's value.
	Value string
	// Level reports where the property is attached
	// ("universal"/"personal").
	Level string
}

// Find lists documents visible to user carrying the static property
// key (and value, when non-empty) — Placeless's property-based
// document organization over the wire.
func (c *Client) Find(user, key, value string) ([]Match, error) {
	resp, err := c.call(&Request{Op: OpFind, User: user, Property: key, Value: value})
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(resp.Matches))
	for _, m := range resp.Matches {
		parts := strings.SplitN(m, "\t", 3)
		match := Match{Doc: parts[0]}
		if len(parts) > 1 {
			match.Value = parts[1]
		}
		if len(parts) > 2 {
			match.Level = parts[2]
		}
		out = append(out, match)
	}
	return out, nil
}

// Stats returns server counters.
func (c *Client) Stats() (map[string]int64, error) {
	resp, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}
