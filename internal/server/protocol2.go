// Binary wire protocol v2.
//
// The v1 protocol carries every frame through encoding/gob: correct,
// but each Read response re-encodes the full blob through a reflection
// encoder and copies it through staging buffers between the signature
// store and the socket, and concurrent calls serialize on the per-frame
// encode mutex. Protocol v2 replaces that framing for the hot ops with
// hand-written codecs over a fixed header, so blob payloads travel as
// raw byte ranges — never re-encoded — and a single writer goroutine
// batches small frames into one writev (net.Buffers) per wakeup.
//
// Frame layout (16-byte header, big-endian multi-byte fields):
//
//	offset 0  version (1 byte, 0x02)
//	offset 1  op      (1 byte)
//	offset 2  flags   (2 bytes)
//	offset 4  call ID (8 bytes; 0 = server push)
//	offset 12 payload length (4 bytes)
//	offset 16 payload
//	          payload CRC32-C (4 bytes)
//
// Hot ops (Read, Write, Subscribe, the invalidation push) encode their
// payloads by hand: uvarint-length-prefixed strings followed by the raw
// body bytes. Everything else rides inside a v2 frame as a gob-encoded
// Request/Response (flagGob) — cold ops keep gob's flexibility, hot ops
// skip it entirely. Error responses carry flagError with the error
// string as payload.
//
// Version negotiation: a v2 client opens with an 8-byte magic preamble;
// the server sniffs the first bytes of every accepted connection and
// answers the magic with an ack before switching to v2 framing. Bytes
// that are not the magic flow unread into the v1 gob decoder, so legacy
// clients work untouched. Against a legacy server the preamble poisons
// the gob stream — the old decoder errors and drops the connection —
// which the client treats as "no ack": it redials and speaks v1. The
// decoder validates every header field strictly, so a corrupted or
// reordered byte stream (the simulator's fault model) fails the
// connection exactly like a gob desync does on v1.
package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Protocol versions a client can pin with WithProtocolVersion.
const (
	// ProtoAuto negotiates v2 and falls back to v1 when the server does
	// not answer the handshake (a legacy binary).
	ProtoAuto = 0
	// ProtoV1 pins the legacy gob framing.
	ProtoV1 = 1
	// ProtoV2 requires the binary protocol; dialing a v1-only server
	// fails instead of downgrading.
	ProtoV2 = 2
)

const (
	frameHeaderSize = 16
	// frameTrailerSize is the CRC32-C of the payload, appended after
	// it. The header is validated structurally; the trailer is what
	// catches corruption inside a raw payload, where the bytes are
	// arbitrary and validation has nothing to check. Without it a
	// partially-lost frame could silently splice later frames into a
	// blob body — gob's self-describing stream desyncs loudly there,
	// and a raw binary framing must fail just as loudly.
	frameTrailerSize = 4
	// maxFramePayload bounds a single frame; anything larger is treated
	// as a corrupt header, not an allocation request.
	maxFramePayload = 64 << 20
	// readMetaSize is the fixed metadata prefix of a Read response
	// payload: cacheability (1) + cost nanos (8) + expiry nanos (8).
	readMetaSize = 17
)

// castagnoli is the CRC32-C table for frame trailers (hardware
// accelerated on amd64/arm64, so checksumming costs far less than the
// gob round trip it replaces).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// readTrailer consumes a frame's CRC trailer and verifies it against
// the receiver-computed payload checksum. The four bytes are parsed in
// place from the buffered window (Peek) rather than read into a local
// array: passing a stack array down an io.Reader interface forces it
// to the heap, and the trailer is read once per frame on the hot path.
func readTrailer(br *bufio.Reader, crc uint32) error {
	t, err := br.Peek(frameTrailerSize)
	if len(t) < frameTrailerSize {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if binary.BigEndian.Uint32(t) != crc {
		return errors.New("server: bad v2 frame: payload checksum mismatch")
	}
	_, _ = br.Discard(frameTrailerSize)
	return nil
}

// Frame flags.
const (
	// flagGob marks a payload that is a gob-encoded Request/Response
	// (the cold-op fallback inside a v2 frame).
	flagGob uint16 = 1 << 0
	// flagError marks a response whose payload is the error string.
	flagError uint16 = 1 << 1
)

// opInvalidate is the v2 wire op for server→client invalidation pushes
// (v1 signals them with ID 0 on an ordinary Response). Never valid in
// a request.
const opInvalidate Op = 0x7f

// helloMagic opens every v2 connection. The leading zero byte makes a
// legacy gob server fail fast: gob reads it as an empty message and
// errors, closing the connection, which the dialer reads as "speak v1".
var helloMagic = [8]byte{0x00, 'P', 'L', 'W', 'R', 'E', 'v', '2'}

// helloAck is the server's answer to helloMagic.
var helloAck = [8]byte{0x00, 'P', 'L', 'A', 'C', 'K', 'v', '2'}

// errWireClosed is returned by sends on a v2 connection whose writer
// has shut down.
var errWireClosed = errors.New("server: v2 connection closed")

// smallBufPool recycles header + inline-payload staging buffers for v2
// frames — the wire-level extension of the stream package's pooled
// staging discipline. The pool traffics in *[]byte tokens: the token
// acquired by getSmallBuf rides in the frame and is handed back to
// putSmallBuf, so returning a buffer never re-boxes the slice header
// (Put(&b) on a local would allocate on every release).
var smallBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

const maxPooledBuf = 64 << 10

// getSmallBuf leases a staging buffer: b is the working slice, already
// sized for the frame header; p is the pool token to pass back to
// putSmallBuf along with however b has grown.
func getSmallBuf() (p *[]byte, b []byte) {
	p = smallBufPool.Get().(*[]byte)
	return p, (*p)[:frameHeaderSize]
}

// putSmallBuf returns a leased buffer. Buffers that grew past
// maxPooledBuf are dropped (the token re-enters the pool with its
// original backing array).
func putSmallBuf(p *[]byte, b []byte) {
	if p == nil {
		return
	}
	if cap(b) >= frameHeaderSize && cap(b) <= maxPooledBuf {
		*p = b[:0]
	}
	smallBufPool.Put(p)
}

// putFrameHeader writes the fixed header into b[:frameHeaderSize].
func putFrameHeader(b []byte, op Op, flags uint16, id uint64, plen int) {
	b[0] = ProtoV2
	b[1] = byte(op)
	binary.BigEndian.PutUint16(b[2:4], flags)
	binary.BigEndian.PutUint64(b[4:12], id)
	binary.BigEndian.PutUint32(b[12:16], uint32(plen))
}

// readFrameHeader reads and strictly validates one header. Any
// malformation — wrong version byte, unknown op or flag, oversized
// payload — is a connection-fatal error, mirroring a gob desync: the
// byte stream behind it cannot be trusted.
func readFrameHeader(br *bufio.Reader) (op Op, flags uint16, id uint64, plen int, err error) {
	// Parsed in place from the buffered window; see readTrailer for why.
	h, err := br.Peek(frameHeaderSize)
	if len(h) < frameHeaderSize {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, 0, 0, err
	}
	if h[0] != ProtoV2 {
		return 0, 0, 0, 0, fmt.Errorf("server: bad v2 frame: version byte 0x%02x", h[0])
	}
	op = Op(h[1])
	if op > OpFind && op != opInvalidate {
		return 0, 0, 0, 0, fmt.Errorf("server: bad v2 frame: unknown op 0x%02x", h[1])
	}
	flags = binary.BigEndian.Uint16(h[2:4])
	if flags&^(flagGob|flagError) != 0 {
		return 0, 0, 0, 0, fmt.Errorf("server: bad v2 frame: unknown flags 0x%04x", flags)
	}
	id = binary.BigEndian.Uint64(h[4:12])
	n := binary.BigEndian.Uint32(h[12:16])
	if n > maxFramePayload {
		return 0, 0, 0, 0, fmt.Errorf("server: bad v2 frame: payload length %d exceeds limit", n)
	}
	_, _ = br.Discard(frameHeaderSize)
	return op, flags, id, int(n), nil
}

// appendWireString appends a uvarint-length-prefixed string.
func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// readWireString consumes one string from p, returning the remainder.
func readWireString(p []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > uint64(len(p)-sz) {
		return "", nil, errors.New("server: bad v2 frame: truncated string")
	}
	return string(p[sz : sz+int(n)]), p[sz+int(n):], nil
}

// crcWriter accumulates the payload CRC of a streamed frame while the
// bytes flow to the socket.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	return cw.w.Write(p)
}

// wireFrame is one encoded v2 frame queued for write. hdr carries the
// header plus any inline payload prefix (leased from smallBufPool when
// hdrPool is non-nil); body carries a raw payload tail written as-is —
// the blob bytes are never copied into a staging buffer. bodyReader,
// when non-nil, carries the tail as a stream instead (the zero-copy
// disk-tier path); it must produce exactly bodyLen bytes.
type wireFrame struct {
	hdr        []byte
	hdrPool    *[]byte
	body       []byte
	bodyReader io.Reader
	bodyLen    int64
	// trailerCRC, when hasTrailerCRC, is the precomputed payload CRC
	// (metadata CRC combined with the cache's intern-time body CRC);
	// the writer stamps it into the trailer without scanning the body.
	trailerCRC    uint32
	hasTrailerCRC bool
}

// encodeRequestFrame renders one client→server frame. Hot ops are
// hand-encoded; the rest travel as gob-in-frame.
func encodeRequestFrame(req *Request) (wireFrame, error) {
	switch req.Op {
	case OpRead, OpSubscribe:
		p, b := getSmallBuf()
		b = appendWireString(b, req.Doc)
		b = appendWireString(b, req.User)
		putFrameHeader(b, req.Op, 0, req.ID, len(b)-frameHeaderSize)
		return wireFrame{hdr: b, hdrPool: p}, nil
	case OpWrite:
		p, b := getSmallBuf()
		b = appendWireString(b, req.Doc)
		b = appendWireString(b, req.User)
		putFrameHeader(b, OpWrite, 0, req.ID, len(b)-frameHeaderSize+len(req.Body))
		return wireFrame{hdr: b, hdrPool: p, body: req.Body}, nil
	default:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(req); err != nil {
			return wireFrame{}, err
		}
		p, b := getSmallBuf()
		putFrameHeader(b, req.Op, flagGob, req.ID, buf.Len())
		return wireFrame{hdr: b, hdrPool: p, body: buf.Bytes()}, nil
	}
}

// readRequestFrame decodes one client→server frame.
func readRequestFrame(br *bufio.Reader) (*Request, error) {
	op, flags, id, plen, err := readFrameHeader(br)
	if err != nil {
		return nil, err
	}
	if op == opInvalidate || flags&flagError != 0 || id == 0 {
		return nil, fmt.Errorf("server: bad v2 request: op %v flags 0x%04x id %d", op, flags, id)
	}
	if flags&flagGob == 0 && (op == OpRead || op == OpSubscribe) && plen+frameTrailerSize <= br.Size() {
		// Hot-op fast path: the tiny doc+user payload and its trailer
		// are decoded in place from the buffered window — the strings
		// copy out, the payload itself is never allocated.
		win, err := br.Peek(plen + frameTrailerSize)
		if len(win) < plen+frameTrailerSize {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		payload := win[:plen]
		if binary.BigEndian.Uint32(win[plen:]) != crc32.Checksum(payload, castagnoli) {
			return nil, errors.New("server: bad v2 frame: payload checksum mismatch")
		}
		req := &Request{ID: id, Op: op}
		rest := payload
		if req.Doc, rest, err = readWireString(rest); err != nil {
			return nil, err
		}
		if req.User, rest, err = readWireString(rest); err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, errors.New("server: bad v2 frame: trailing bytes")
		}
		_, _ = br.Discard(plen + frameTrailerSize)
		return req, nil
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	if err := readTrailer(br, crc32.Checksum(payload, castagnoli)); err != nil {
		return nil, err
	}
	if flags&flagGob != 0 {
		var req Request
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&req); err != nil {
			return nil, fmt.Errorf("server: bad v2 gob request: %w", err)
		}
		req.ID = id
		return &req, nil
	}
	req := &Request{ID: id, Op: op}
	rest := payload
	switch op {
	case OpRead, OpSubscribe:
		if req.Doc, rest, err = readWireString(rest); err != nil {
			return nil, err
		}
		if req.User, rest, err = readWireString(rest); err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, errors.New("server: bad v2 frame: trailing bytes")
		}
	case OpWrite:
		if req.Doc, rest, err = readWireString(rest); err != nil {
			return nil, err
		}
		if req.User, rest, err = readWireString(rest); err != nil {
			return nil, err
		}
		req.Body = rest // the remainder of the payload, no copy
	default:
		return nil, fmt.Errorf("server: bad v2 frame: op %v requires the gob flag", op)
	}
	return req, nil
}

// encodeResponseFrame renders one server→client frame for op (the
// request's op, echoed so the client knows how to decode the payload;
// opInvalidate for pushes).
func encodeResponseFrame(op Op, resp *Response) (wireFrame, error) {
	if resp.Err != "" {
		p, b := getSmallBuf()
		b = append(b, resp.Err...)
		putFrameHeader(b, op, flagError, resp.ID, len(b)-frameHeaderSize)
		return wireFrame{hdr: b, hdrPool: p}, nil
	}
	switch op {
	case OpRead:
		p, b := getSmallBuf()
		b = append(b, byte(resp.Cacheability))
		b = binary.BigEndian.AppendUint64(b, uint64(resp.CostNanos))
		b = binary.BigEndian.AppendUint64(b, uint64(resp.ExpiryUnixNanos))
		f := wireFrame{hdr: b, hdrPool: p}
		if resp.bodyCRCOK {
			// Stitch the trailer from the 17-byte metadata CRC and the
			// cache's intern-time body CRC, so neither the inline nor
			// the streamed path ever re-scans the body bytes.
			bodyLen := int64(len(resp.Body))
			if resp.bodyStream != nil {
				bodyLen = resp.bodyLen
			}
			f.trailerCRC = crc32Combine(crc32.Update(0, castagnoli, b[frameHeaderSize:]), resp.bodyCRC, bodyLen)
			f.hasTrailerCRC = true
		}
		if resp.bodyStream != nil {
			putFrameHeader(b, op, 0, resp.ID, readMetaSize+int(resp.bodyLen))
			f.bodyReader, f.bodyLen = resp.bodyStream, resp.bodyLen
			return f, nil
		}
		putFrameHeader(b, op, 0, resp.ID, readMetaSize+len(resp.Body))
		f.body = resp.Body
		return f, nil
	case OpWrite, OpSubscribe:
		p, b := getSmallBuf()
		putFrameHeader(b, op, 0, resp.ID, 0)
		return wireFrame{hdr: b, hdrPool: p}, nil
	case opInvalidate:
		p, b := getSmallBuf()
		b = appendWireString(b, resp.NotifyDoc)
		b = appendWireString(b, resp.NotifyUser)
		putFrameHeader(b, opInvalidate, 0, 0, len(b)-frameHeaderSize)
		return wireFrame{hdr: b, hdrPool: p}, nil
	default:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
			return wireFrame{}, err
		}
		p, b := getSmallBuf()
		putFrameHeader(b, op, flagGob, resp.ID, buf.Len())
		return wireFrame{hdr: b, hdrPool: p, body: buf.Bytes()}, nil
	}
}

// readResponseFrame decodes one server→client frame. Read bodies are
// read straight into an exact-size caller-owned allocation — no gob
// staging, no oversized scratch.
func readResponseFrame(br *bufio.Reader) (*Response, error) {
	return readResponseFrameInto(br, nil)
}

// readResponseFrameInto is readResponseFrame with a destination hook
// for read bodies: because the frame header carries the call ID ahead
// of the payload, the decoder can ask the call layer for a
// caller-registered buffer of at least n bytes before the body leaves
// the socket, and read it there directly — zero allocations and zero
// staging copies on the receive side. claim returns nil when no
// suitable buffer is registered for the call, in which case the body
// lands in a fresh exact-size allocation as before.
func readResponseFrameInto(br *bufio.Reader, claim func(id uint64, n int) []byte) (*Response, error) {
	op, flags, id, plen, err := readFrameHeader(br)
	if err != nil {
		return nil, err
	}
	switch {
	case flags&flagError != 0:
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, err
		}
		if err := readTrailer(br, crc32.Checksum(payload, castagnoli)); err != nil {
			return nil, err
		}
		e := string(payload)
		if e == "" {
			e = "unknown server error"
		}
		return &Response{ID: id, Err: e}, nil
	case flags&flagGob != 0:
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, err
		}
		if err := readTrailer(br, crc32.Checksum(payload, castagnoli)); err != nil {
			return nil, err
		}
		var resp Response
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&resp); err != nil {
			return nil, fmt.Errorf("server: bad v2 gob response: %w", err)
		}
		resp.ID = id
		return &resp, nil
	}
	switch op {
	case OpRead:
		if plen < readMetaSize {
			return nil, errors.New("server: bad v2 read response: short metadata")
		}
		// The 17-byte metadata prefix parses in place from the buffered
		// window; only the body lands in a fresh allocation — the one
		// buffer the caller keeps.
		meta, err := br.Peek(readMetaSize)
		if len(meta) < readMetaSize {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		resp := &Response{
			ID:              id,
			Cacheability:    int(meta[0]),
			CostNanos:       int64(binary.BigEndian.Uint64(meta[1:9])),
			ExpiryUnixNanos: int64(binary.BigEndian.Uint64(meta[9:17])),
		}
		crc := crc32.Update(0, castagnoli, meta)
		_, _ = br.Discard(readMetaSize)
		var body []byte
		if claim != nil {
			body = claim(id, plen-readMetaSize)
		}
		if body == nil {
			body = make([]byte, plen-readMetaSize)
		}
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, err
		}
		if err := readTrailer(br, crc32.Update(crc, castagnoli, body)); err != nil {
			return nil, err
		}
		resp.Body = body
		return resp, nil
	case opInvalidate:
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, err
		}
		if err := readTrailer(br, crc32.Checksum(payload, castagnoli)); err != nil {
			return nil, err
		}
		doc, rest, err := readWireString(payload)
		if err != nil {
			return nil, err
		}
		user, rest, err := readWireString(rest)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, errors.New("server: bad v2 frame: trailing bytes")
		}
		return &Response{ID: 0, NotifyDoc: doc, NotifyUser: user}, nil
	case OpWrite, OpSubscribe:
		if plen != 0 {
			return nil, fmt.Errorf("server: bad v2 response: op %v with %d payload bytes", op, plen)
		}
		if err := readTrailer(br, 0); err != nil {
			return nil, err
		}
		return &Response{ID: id}, nil
	default:
		return nil, fmt.Errorf("server: bad v2 response: op %v without the gob flag", op)
	}
}

// Batching caps for the writer goroutine: one writev carries at most
// this many frames / this many inline bytes before it is flushed.
const (
	maxBatchFrames = 64
	maxBatchBytes  = 1 << 20
)

// frameWriter serializes all v2 frame writes for one connection.
// Senders hand frames to send: an uncontended sender takes the write
// baton (wmu) and writes inline on its own goroutine — no channel hop,
// no wakeup — after first draining anything already queued, so frame
// order is exactly enqueue order. Contended senders enqueue instead,
// and the writer goroutine drains the queue in net.Buffers writev
// batches, so concurrent small frames coalesce into one syscall
// instead of one write (and one lock hand-off) each. Streamed payload
// tails (wireFrame.bodyReader) are copied with io.Copy after the
// batched headers flush.
type frameWriter struct {
	c        net.Conn
	timeout  time.Duration
	ch       chan wireFrame
	wake     chan struct{} // wakes the writer goroutine; cap 1
	dead     chan struct{}
	deadOnce sync.Once
	onFail   func(error)   // invoked at most once, from the writer goroutine
	batched  *atomic.Int64 // frames that shared a multi-frame writev (nil ok)
	bytesOut *atomic.Int64 // total bytes written (nil ok)

	// wmu is the write baton: whoever holds it owns the batch state
	// below and the connection's write side. The writer goroutine and
	// inline senders both take it; frames are only ever dequeued while
	// holding it, which is what makes inline writes order-preserving.
	wmu sync.Mutex

	// Batch state, owned by the wmu holder and reused across batches
	// so steady-state batching allocates nothing: the vector and
	// release slices keep their backing arrays, the trailer bytes live
	// in a fixed array addressed per frame.
	bufs          [][]byte
	release       []leasedBuf
	trailers      [maxBatchFrames][frameTrailerSize]byte
	streamTrailer [frameTrailerSize]byte
	total         int
	stream        io.Reader
	streamN       int64
	streamCRC     uint32 // payload CRC so far for the streamed frame
	streamCRCSet  bool   // streamCRC is already final (precombined)
	frames        int
}

// leasedBuf pairs a pooled staging buffer with its pool token for
// release after the batch flushes.
type leasedBuf struct {
	p *[]byte
	b []byte
}

func newFrameWriter(c net.Conn, timeout time.Duration, batched, bytesOut *atomic.Int64, onFail func(error)) *frameWriter {
	w := &frameWriter{
		c:        c,
		timeout:  timeout,
		ch:       make(chan wireFrame, 256),
		wake:     make(chan struct{}, 1),
		dead:     make(chan struct{}),
		onFail:   onFail,
		batched:  batched,
		bytesOut: bytesOut,
	}
	go w.loop()
	return w
}

// send writes one frame, inline when the write baton is free — the
// sender drains anything already queued first (preserving enqueue
// order) and then writes its own frame on its own goroutine, skipping
// the channel hop and writer wakeup that dominate per-call overhead
// when the connection is otherwise idle. A contended send falls back
// to the queue and the writer goroutine's batching.
func (w *frameWriter) send(f wireFrame) error {
	if w.wmu.TryLock() {
		select {
		case <-w.dead:
			w.wmu.Unlock()
			putSmallBuf(f.hdrPool, f.hdr)
			return errWireClosed
		default:
		}
		err := w.drainLocked(&f)
		w.wmu.Unlock()
		if err != nil {
			w.fail(err)
			return errWireClosed
		}
		return nil
	}
	return w.enqueue(f)
}

// enqueue queues one frame, blocking when the writer is saturated
// (backpressure) and failing once the connection is retired. The dead
// check runs first on its own so a retired writer rejects
// deterministically even while the queue still has room (a two-way
// select would pick at random when both are ready).
func (w *frameWriter) enqueue(f wireFrame) error {
	select {
	case <-w.dead:
	default:
		select {
		case w.ch <- f:
			select {
			case w.wake <- struct{}{}:
			default:
			}
			return nil
		case <-w.dead:
		}
	}
	putSmallBuf(f.hdrPool, f.hdr)
	return errWireClosed
}

// fail retires the writer. err == nil means a deliberate close; a real
// error additionally fires onFail so the connection owner can tear the
// wire down. onFail runs outside the Once body: tearing down the wire
// re-enters fail via close, and a re-entrant Once.Do would deadlock.
func (w *frameWriter) fail(err error) {
	first := false
	w.deadOnce.Do(func() {
		close(w.dead)
		first = true
	})
	if first && err != nil && w.onFail != nil {
		w.onFail(err)
	}
}

// close shuts the writer down without treating it as a wire failure.
func (w *frameWriter) close() { w.fail(nil) }

// add stages one frame into the current batch.
func (w *frameWriter) add(f wireFrame) {
	w.bufs = append(w.bufs, f.hdr)
	w.total += len(f.hdr)
	if f.hdrPool != nil {
		w.release = append(w.release, leasedBuf{p: f.hdrPool, b: f.hdr})
	}
	crc := f.trailerCRC
	if !f.hasTrailerCRC {
		crc = crc32.Update(0, castagnoli, f.hdr[frameHeaderSize:])
	}
	if len(f.body) > 0 {
		w.bufs = append(w.bufs, f.body)
		w.total += len(f.body)
		if !f.hasTrailerCRC {
			crc = crc32.Update(crc, castagnoli, f.body)
		}
	}
	if f.bodyReader != nil {
		// Without a precombined trailer the stream's CRC accrues
		// during the copy in loop; either way the trailer is written
		// after the body bytes, not here.
		w.stream, w.streamN, w.streamCRC = f.bodyReader, f.bodyLen, crc
		w.streamCRCSet = f.hasTrailerCRC
	} else {
		t := &w.trailers[w.frames]
		binary.BigEndian.PutUint32(t[:], crc)
		w.bufs = append(w.bufs, t[:])
		w.total += frameTrailerSize
	}
	w.frames++
}

// drainLocked builds and flushes writev batches from the queue, plus
// an optional trailing frame from an inline sender, until everything
// staged is on the wire. The caller holds wmu. Frames only ever leave
// the queue here, under the baton, so write order is exactly enqueue
// order regardless of which goroutine drains.
func (w *frameWriter) drainLocked(extra *wireFrame) error {
	for {
		w.bufs = w.bufs[:0]
		w.release = w.release[:0]
		w.total, w.frames = 0, 0
		w.stream, w.streamN, w.streamCRC, w.streamCRCSet = nil, 0, 0, false
		// A streamed frame ends the batch: its tail is written by
		// io.Copy in flushLocked, so nothing may follow it in the
		// writev.
	fill:
		for w.stream == nil && w.frames < maxBatchFrames && w.total < maxBatchBytes {
			select {
			case f := <-w.ch:
				w.add(f)
			default:
				if extra != nil {
					w.add(*extra)
					extra = nil
					continue
				}
				break fill
			}
		}
		if w.frames == 0 {
			return nil
		}
		if err := w.flushLocked(); err != nil {
			return err
		}
		if w.frames > 1 && w.batched != nil {
			w.batched.Add(int64(w.frames))
		}
		if extra == nil && len(w.ch) == 0 {
			return nil
		}
	}
}

// flushLocked writes the staged batch (and any streamed tail) to the
// connection. The caller holds wmu.
func (w *frameWriter) flushLocked() error {
	if w.timeout > 0 {
		_ = w.c.SetWriteDeadline(time.Now().Add(w.timeout))
	}
	// WriteTo consumes the view (and advances its elements on short
	// writes); the batch's backing array is resliced fresh per batch.
	view := net.Buffers(w.bufs)
	n, err := view.WriteTo(w.c)
	if err == nil && w.stream != nil {
		var m int64
		if w.streamCRCSet {
			// The trailer was precombined from the blob's stored
			// checksum; the body streams with no CRC instrumentation.
			m, err = io.Copy(w.c, w.stream)
		} else {
			cw := &crcWriter{w: w.c, crc: w.streamCRC}
			m, err = io.Copy(cw, w.stream)
			w.streamCRC = cw.crc
		}
		n += m
		if err == nil && m != w.streamN {
			// A short stream would desync the peer's framing; kill
			// the connection rather than let it misparse.
			err = fmt.Errorf("server: short blob stream: wrote %d of %d bytes", m, w.streamN)
		}
		if err == nil {
			binary.BigEndian.PutUint32(w.streamTrailer[:], w.streamCRC)
			var tn int
			tn, err = w.c.Write(w.streamTrailer[:])
			n += int64(tn)
		}
	}
	if w.bytesOut != nil {
		w.bytesOut.Add(n)
	}
	for _, lb := range w.release {
		putSmallBuf(lb.p, lb.b)
	}
	return err
}

func (w *frameWriter) loop() {
	for {
		select {
		case <-w.dead:
			return
		case <-w.wake:
		}
		w.wmu.Lock()
		err := w.drainLocked(nil)
		w.wmu.Unlock()
		if err != nil {
			w.fail(err)
			return
		}
	}
}
