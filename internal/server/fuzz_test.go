package server

import (
	"net"
	"strings"
	"testing"
	"time"
)

// FuzzParsePropertySpec checks the spec parser never panics and that
// every accepted spec yields a usable property whose name is non-empty.
func FuzzParsePropertySpec(f *testing.F) {
	for _, seed := range []string{
		"spell-correct", "spell-correct:5", "translate-fr", "uppercase:2",
		"summarize:3:10", "watermark:eyal", "qos:250:50", "rot13",
		"", "unknown", "summarize", "qos:x:y", ":::", "summarize:-1",
		"watermark:", "qos:250:0.5", strings.Repeat("a:", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePropertySpec(spec)
		if err != nil {
			return
		}
		if p == nil || p.Name() == "" {
			t.Fatalf("accepted spec %q produced unusable property", spec)
		}
		// Accepted properties must have a well-formed event set.
		for _, k := range p.Events() {
			if k.String() == "" {
				t.Fatalf("spec %q: bad event kind", spec)
			}
		}
	})
}

// FuzzProtocolRoundTrip checks the Match struct framing introduced for
// OpFind: static property values are arbitrary user strings, so tabs,
// newlines, empty values, and multi-byte UTF-8 must survive a full
// frameConn encode/decode (the pre-struct format packed matches into a
// tab-separated string and corrupted exactly these inputs).
func FuzzProtocolRoundTrip(f *testing.F) {
	f.Add("doc", "value", "universal", uint8(1))
	f.Add("d\tmid", "tab\tseparated", "personal", uint8(2))
	f.Add("d\nnl", "line\none\nline two", "universal", uint8(3))
	f.Add("", "", "", uint8(0))
	f.Add("δοc", "значение → 値", "universal", uint8(5))
	f.Add("d", "trailing\t\n", "personal", uint8(7))
	f.Fuzz(func(t *testing.T, doc, value, level string, n uint8) {
		matches := make([]Match, int(n)%5)
		for i := range matches {
			matches[i] = Match{
				Doc:   doc + strings.Repeat("x", i),
				Value: value,
				Level: level,
			}
		}
		want := Response{
			ID:         42,
			Body:       []byte(value),
			NotifyDoc:  doc,
			NotifyUser: value,
			Matches:    matches,
		}

		// Drive the real framing layer over an in-memory pipe, exactly
		// as serverConn.send / Client.readLoop do over TCP.
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		fcA, fcB := newFrameConn(a), newFrameConn(b)
		sendErr := make(chan error, 1)
		go func() { sendErr <- fcA.send(&want, time.Second) }()
		var got Response
		if err := fcB.dec.Decode(&got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := <-sendErr; err != nil {
			t.Fatalf("send: %v", err)
		}

		if got.ID != want.ID || got.NotifyDoc != want.NotifyDoc || got.NotifyUser != want.NotifyUser {
			t.Fatalf("header fields corrupted: got %+v want %+v", got, want)
		}
		if string(got.Body) != string(want.Body) {
			t.Fatalf("body corrupted: %q != %q", got.Body, want.Body)
		}
		if len(got.Matches) != len(want.Matches) {
			t.Fatalf("match count %d != %d", len(got.Matches), len(want.Matches))
		}
		for i, m := range got.Matches {
			if m != want.Matches[i] {
				t.Fatalf("match %d corrupted: %+v != %+v", i, m, want.Matches[i])
			}
		}
	})
}
