package server

import (
	"strings"
	"testing"
)

// FuzzParsePropertySpec checks the spec parser never panics and that
// every accepted spec yields a usable property whose name is non-empty.
func FuzzParsePropertySpec(f *testing.F) {
	for _, seed := range []string{
		"spell-correct", "spell-correct:5", "translate-fr", "uppercase:2",
		"summarize:3:10", "watermark:eyal", "qos:250:50", "rot13",
		"", "unknown", "summarize", "qos:x:y", ":::", "summarize:-1",
		"watermark:", "qos:250:0.5", strings.Repeat("a:", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePropertySpec(spec)
		if err != nil {
			return
		}
		if p == nil || p.Name() == "" {
			t.Fatalf("accepted spec %q produced unusable property", spec)
		}
		// Accepted properties must have a well-formed event set.
		for _, k := range p.Events() {
			if k.String() == "" {
				t.Fatalf("spec %q: bad event kind", spec)
			}
		}
	})
}
