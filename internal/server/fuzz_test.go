package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// FuzzParsePropertySpec checks the spec parser never panics and that
// every accepted spec yields a usable property whose name is non-empty.
func FuzzParsePropertySpec(f *testing.F) {
	for _, seed := range []string{
		"spell-correct", "spell-correct:5", "translate-fr", "uppercase:2",
		"summarize:3:10", "watermark:eyal", "qos:250:50", "rot13",
		"", "unknown", "summarize", "qos:x:y", ":::", "summarize:-1",
		"watermark:", "qos:250:0.5", strings.Repeat("a:", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePropertySpec(spec)
		if err != nil {
			return
		}
		if p == nil || p.Name() == "" {
			t.Fatalf("accepted spec %q produced unusable property", spec)
		}
		// Accepted properties must have a well-formed event set.
		for _, k := range p.Events() {
			if k.String() == "" {
				t.Fatalf("spec %q: bad event kind", spec)
			}
		}
	})
}

// FuzzProtocolRoundTrip checks the Match struct framing introduced for
// OpFind: static property values are arbitrary user strings, so tabs,
// newlines, empty values, and multi-byte UTF-8 must survive a full
// frameConn encode/decode (the pre-struct format packed matches into a
// tab-separated string and corrupted exactly these inputs).
func FuzzProtocolRoundTrip(f *testing.F) {
	f.Add("doc", "value", "universal", uint8(1))
	f.Add("d\tmid", "tab\tseparated", "personal", uint8(2))
	f.Add("d\nnl", "line\none\nline two", "universal", uint8(3))
	f.Add("", "", "", uint8(0))
	f.Add("δοc", "значение → 値", "universal", uint8(5))
	f.Add("d", "trailing\t\n", "personal", uint8(7))
	f.Fuzz(func(t *testing.T, doc, value, level string, n uint8) {
		matches := make([]Match, int(n)%5)
		for i := range matches {
			matches[i] = Match{
				Doc:   doc + strings.Repeat("x", i),
				Value: value,
				Level: level,
			}
		}
		want := Response{
			ID:         42,
			Body:       []byte(value),
			NotifyDoc:  doc,
			NotifyUser: value,
			Matches:    matches,
		}

		// Drive the real framing layer over an in-memory pipe, exactly
		// as serverConn.send / Client.readLoop do over TCP.
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		fcA, fcB := newFrameConn(a), newFrameConn(b)
		sendErr := make(chan error, 1)
		go func() { sendErr <- fcA.send(&want, time.Second) }()
		var got Response
		if err := fcB.dec.Decode(&got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := <-sendErr; err != nil {
			t.Fatalf("send: %v", err)
		}

		if got.ID != want.ID || got.NotifyDoc != want.NotifyDoc || got.NotifyUser != want.NotifyUser {
			t.Fatalf("header fields corrupted: got %+v want %+v", got, want)
		}
		if string(got.Body) != string(want.Body) {
			t.Fatalf("body corrupted: %q != %q", got.Body, want.Body)
		}
		if len(got.Matches) != len(want.Matches) {
			t.Fatalf("match count %d != %d", len(got.Matches), len(want.Matches))
		}
		for i, m := range got.Matches {
			if m != want.Matches[i] {
				t.Fatalf("match %d corrupted: %+v != %+v", i, m, want.Matches[i])
			}
		}
	})
}

// FuzzProtocolV2RoundTrip drives the hand-written v2 codecs with
// arbitrary field values: every encodable request and response must
// decode back to the same fields, hot path and gob-in-frame alike.
func FuzzProtocolV2RoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), "doc", "user", "value", []byte("body"), uint8(1), int64(5), int64(9))
	f.Add(uint64(42), uint8(1), "d\tmid", "u\nnl", "значение", []byte{0x02, 0x00, 0xff}, uint8(0), int64(-1), int64(0))
	f.Add(uint64(7), uint8(7), "", "", "", []byte{}, uint8(255), int64(1<<40), int64(-7))
	f.Add(uint64(1<<63), uint8(12), "δοc", "ユーザー", "v", bytes.Repeat([]byte("x"), 3000), uint8(3), int64(0), int64(1))
	f.Fuzz(func(t *testing.T, id uint64, op8 uint8, doc, user, value string, body []byte, cach uint8, cost, expiry int64) {
		if id == 0 {
			id = 1 // ID 0 is reserved for pushes; requests reject it
		}
		op := Op(int(op8) % (int(OpFind) + 1))
		req := &Request{ID: id, Op: op, Doc: doc, User: user,
			Personal: op8%2 == 0, Property: value, Value: value, Body: body}
		ef, err := encodeRequestFrame(req)
		if err != nil {
			t.Fatalf("encode request %v: %v", op, err)
		}
		got, err := readRequestFrame(bufio.NewReader(bytes.NewReader(frameBytes(t, ef))))
		if err != nil {
			t.Fatalf("decode request %v: %v", op, err)
		}
		if got.ID != req.ID || got.Op != req.Op || got.Doc != req.Doc || got.User != req.User {
			t.Fatalf("request corrupted: got %+v want %+v", got, req)
		}
		// Hot ops carry only the fields their codec defines: Read and
		// Subscribe are doc+user, Write adds the body; gob ops carry all.
		if op == OpWrite || (op != OpRead && op != OpSubscribe) {
			if !bytes.Equal(got.Body, req.Body) {
				t.Fatalf("request body corrupted: got %d bytes want %d", len(got.Body), len(req.Body))
			}
		}
		if op != OpRead && op != OpWrite && op != OpSubscribe {
			if got.Personal != req.Personal || got.Property != req.Property || got.Value != req.Value {
				t.Fatalf("gob request corrupted: got %+v want %+v", got, req)
			}
		}

		// Read response: raw metadata + body. Cacheability is a one-byte
		// enum on the wire, hence the uint8 input.
		resp := &Response{ID: id, Body: body, Cacheability: int(cach),
			CostNanos: cost, ExpiryUnixNanos: expiry}
		rf, err := encodeResponseFrame(OpRead, resp)
		if err != nil {
			t.Fatalf("encode read response: %v", err)
		}
		rgot, err := readResponseFrame(bufio.NewReader(bytes.NewReader(frameBytes(t, rf))))
		if err != nil {
			t.Fatalf("decode read response: %v", err)
		}
		if rgot.ID != id || !bytes.Equal(rgot.Body, body) || rgot.Cacheability != int(cach) ||
			rgot.CostNanos != cost || rgot.ExpiryUnixNanos != expiry {
			t.Fatalf("read response corrupted: got %+v want %+v", rgot, resp)
		}

		// Invalidation push: doc/user strings with arbitrary content.
		pf, err := encodeResponseFrame(opInvalidate, &Response{NotifyDoc: doc, NotifyUser: user})
		if err != nil {
			t.Fatalf("encode push: %v", err)
		}
		pgot, err := readResponseFrame(bufio.NewReader(bytes.NewReader(frameBytes(t, pf))))
		if err != nil {
			t.Fatalf("decode push: %v", err)
		}
		if pgot.ID != 0 || pgot.NotifyDoc != doc || pgot.NotifyUser != user {
			t.Fatalf("push corrupted: got %+v", pgot)
		}

		// Error responses carry the string as payload; empty means
		// success, so skip that case.
		if value != "" {
			ef2, err := encodeResponseFrame(op, &Response{ID: id, Err: value})
			if err != nil {
				t.Fatalf("encode error response: %v", err)
			}
			egot, err := readResponseFrame(bufio.NewReader(bytes.NewReader(frameBytes(t, ef2))))
			if err != nil {
				t.Fatalf("decode error response: %v", err)
			}
			if egot.ID != id || egot.Err != value {
				t.Fatalf("error response corrupted: got %+v", egot)
			}
		}
	})
}

// FuzzV2FrameDecode feeds arbitrary byte streams to the v2 frame
// decoders: they must reject garbage with an error — never panic, hang,
// or allocate per an attacker-controlled length prefix.
func FuzzV2FrameDecode(f *testing.F) {
	valid, err := encodeRequestFrame(&Request{ID: 3, Op: OpRead, Doc: "d", User: "u"})
	if err != nil {
		f.Fatal(err)
	}
	vb := frameBytes(f, valid)
	f.Add(vb)
	f.Add(vb[:len(vb)-1])
	f.Add(append(append([]byte{}, vb...), 0xde, 0xad))
	f.Add([]byte{ProtoV2, 0x00, 0x00, 0x00, 0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = readRequestFrame(bufio.NewReader(bytes.NewReader(data)))
		_, _ = readResponseFrame(bufio.NewReader(bytes.NewReader(data)))
	})
}

// FuzzProtocolCrossVersion runs one v1 (gob) client and one v2 (binary)
// client against the same live server and requires identical observable
// behavior for arbitrary document content and property values — the
// interop bar for the version negotiation story.
func FuzzProtocolCrossVersion(f *testing.F) {
	clk := clock.NewVirtual(epoch)
	backing := repo.NewMem("srv", clk, simnet.NewPath("loop", 1))
	space := docspace.New(clk, repo.NewDMS("dms", clk, simnet.NewPath("loop", 2)))
	srv := New(space, backing)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		f.Fatal("server did not start")
	}
	v1c, err := Dial(addr, WithProtocolVersion(ProtoV1))
	if err != nil {
		f.Fatal(err)
	}
	v2c, err := Dial(addr)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		v1c.Close()
		v2c.Close()
		srv.Close()
		<-done
	})
	if v1c.ProtocolVersion() != 1 || v2c.ProtocolVersion() != 2 {
		f.Fatalf("protocol split broken: v1=%d v2=%d", v1c.ProtocolVersion(), v2c.ProtocolVersion())
	}
	var ctr atomic.Uint64

	f.Add([]byte("plain content"), "caching", false)
	f.Add([]byte{0x02, 0x00, 0xff, 0x7f}, "tab\tvalue", true)
	f.Add([]byte{}, "", false)
	f.Add(bytes.Repeat([]byte("big"), 40000), "значение\n", true)
	f.Fuzz(func(t *testing.T, body []byte, value string, personal bool) {
		doc := fmt.Sprintf("xdoc-%d", ctr.Add(1))
		// Create over v2, read back over both: byte-identical.
		if err := v2c.CreateDocument(doc, "eyal", body); err != nil {
			t.Fatal(err)
		}
		d1, _, e1 := v1c.Read(doc, "eyal")
		d2, _, e2 := v2c.Read(doc, "eyal")
		if e1 != nil || e2 != nil || !bytes.Equal(d1, d2) || !bytes.Equal(d1, body) {
			t.Fatalf("read split: v1=(%d bytes,%v) v2=(%d bytes,%v) want %d bytes",
				len(d1), e1, len(d2), e2, len(body))
		}
		// Write over v1, read over v2.
		upd := append(append([]byte{}, body...), "-updated"...)
		if err := v1c.Write(doc, "eyal", upd); err != nil {
			t.Fatal(err)
		}
		if d2, _, err := v2c.Read(doc, "eyal"); err != nil || !bytes.Equal(d2, upd) {
			t.Fatalf("v1 write not visible over v2: %d bytes, %v", len(d2), err)
		}
		// Static property attached over v1, searched over both: the
		// arbitrary value string must survive both framings identically.
		if err := v1c.AttachStatic(doc, "eyal", personal, "xkey", value); err != nil {
			t.Fatal(err)
		}
		m1, e1x := v1c.Find("eyal", "xkey", value)
		m2, e2x := v2c.Find("eyal", "xkey", value)
		if e1x != nil || e2x != nil {
			t.Fatalf("find errors: %v / %v", e1x, e2x)
		}
		for _, ms := range [][]Match{m1, m2} {
			sort.Slice(ms, func(i, j int) bool { return ms[i].Doc < ms[j].Doc })
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("find split: v1=%v v2=%v", m1, m2)
		}
		found := false
		for _, m := range m1 {
			if m.Doc == doc && m.Value == value {
				found = true
			}
		}
		if !found {
			t.Fatalf("attached value %q not found: %v", value, m1)
		}
		// Error parity: both protocols surface the same error string.
		_, _, e1 = v1c.Read(doc+"-missing", "eyal")
		_, _, e2 = v2c.Read(doc+"-missing", "eyal")
		if e1 == nil || e2 == nil || e1.Error() != e2.Error() {
			t.Fatalf("error split: v1=%v v2=%v", e1, e2)
		}
	})
}
