package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/event"
	"placeless/internal/repo"
	"placeless/internal/simnet"
	"placeless/internal/store"
)

// frameBytes serializes an encoded frame the way the writer goroutine
// would: header, inline body, streamed tail, CRC trailer.
func frameBytes(t testing.TB, f wireFrame) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(f.hdr)
	crc := crc32.Update(0, castagnoli, f.hdr[frameHeaderSize:])
	if len(f.body) > 0 {
		buf.Write(f.body)
		crc = crc32.Update(crc, castagnoli, f.body)
	}
	if f.bodyReader != nil {
		b, err := io.ReadAll(f.bodyReader)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		crc = crc32.Update(crc, castagnoli, b)
	}
	var tr [frameTrailerSize]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	buf.Write(tr[:])
	return buf.Bytes()
}

func requestOverWire(t *testing.T, req *Request) *Request {
	t.Helper()
	f, err := encodeRequestFrame(req)
	if err != nil {
		t.Fatalf("encode %v: %v", req.Op, err)
	}
	out, err := readRequestFrame(bufio.NewReader(bytes.NewReader(frameBytes(t, f))))
	if err != nil {
		t.Fatalf("decode %v: %v", req.Op, err)
	}
	return out
}

func responseOverWire(t *testing.T, op Op, resp *Response) *Response {
	t.Helper()
	f, err := encodeResponseFrame(op, resp)
	if err != nil {
		t.Fatalf("encode %v: %v", op, err)
	}
	out, err := readResponseFrame(bufio.NewReader(bytes.NewReader(frameBytes(t, f))))
	if err != nil {
		t.Fatalf("decode %v: %v", op, err)
	}
	return out
}

func TestV2RequestRoundTrip(t *testing.T) {
	cases := []*Request{
		{ID: 1, Op: OpRead, Doc: "report", User: "eyal"},
		{ID: 2, Op: OpSubscribe, Doc: "d", User: ""},
		{ID: 3, Op: OpWrite, Doc: "d", User: "u", Body: []byte("raw body bytes \x00\xff")},
		{ID: 4, Op: OpWrite, Doc: "d", User: "u", Body: nil},
		{ID: 5, Op: OpAttach, Doc: "d", User: "u", Personal: true, Property: "spell-correct"},
		{ID: 6, Op: OpFind, User: "u", Property: "topic", Value: "tab\tand\nnewline"},
		{ID: 7, Op: OpCreateDocument, Doc: "d", User: "owner", Body: []byte("seed")},
		{ID: 8, Op: OpForwardEvent, Doc: "d", User: "u", Value: "getInputStream"},
	}
	for _, req := range cases {
		got := requestOverWire(t, req)
		if got.ID != req.ID || got.Op != req.Op || got.Doc != req.Doc ||
			got.User != req.User || got.Personal != req.Personal ||
			got.Property != req.Property || got.Value != req.Value ||
			!bytes.Equal(got.Body, req.Body) {
			t.Errorf("op %v: round trip = %+v, want %+v", req.Op, got, req)
		}
	}
}

func TestV2ResponseRoundTrip(t *testing.T) {
	// Hot path: read with metadata and raw body.
	in := &Response{ID: 9, Body: []byte("blob\x00\x02payload"), Cacheability: 3,
		CostNanos: 123456789, ExpiryUnixNanos: 42}
	got := responseOverWire(t, OpRead, in)
	if got.ID != in.ID || !bytes.Equal(got.Body, in.Body) ||
		got.Cacheability != in.Cacheability || got.CostNanos != in.CostNanos ||
		got.ExpiryUnixNanos != in.ExpiryUnixNanos {
		t.Errorf("read round trip = %+v, want %+v", got, in)
	}

	// Error responses carry the string as payload regardless of op.
	got = responseOverWire(t, OpRead, &Response{ID: 10, Err: "no such document"})
	if got.ID != 10 || got.Err != "no such document" {
		t.Errorf("error round trip = %+v", got)
	}

	// Empty-payload acks.
	for _, op := range []Op{OpWrite, OpSubscribe} {
		got = responseOverWire(t, op, &Response{ID: 11})
		if got.ID != 11 || got.Err != "" || len(got.Body) != 0 {
			t.Errorf("%v ack round trip = %+v", op, got)
		}
	}

	// Invalidation push: ID 0 with notify fields.
	got = responseOverWire(t, opInvalidate, &Response{NotifyDoc: "d", NotifyUser: "u"})
	if got.ID != 0 || got.NotifyDoc != "d" || got.NotifyUser != "u" {
		t.Errorf("push round trip = %+v", got)
	}

	// Cold op riding gob-in-frame.
	in = &Response{ID: 12, Stats: map[string]int64{"requests": 7},
		Actives: []string{"a", "b"}, Text: "desc",
		Matches: []Match{{Doc: "d", Value: "v\t1", Level: "personal"}}}
	got = responseOverWire(t, OpStats, in)
	if got.ID != 12 || got.Stats["requests"] != 7 || len(got.Actives) != 2 ||
		got.Text != "desc" || len(got.Matches) != 1 || got.Matches[0].Value != "v\t1" {
		t.Errorf("gob round trip = %+v", got)
	}
}

// TestV2StreamedResponseBytes: a response armed with a bodyStream must
// serialize to the identical byte stream as the same response carrying
// the body inline — the client cannot tell the difference.
func TestV2StreamedResponseBytes(t *testing.T) {
	body := bytes.Repeat([]byte("segment"), 100)
	inline := &Response{ID: 5, Body: body, Cacheability: 1, CostNanos: 10}
	streamed := &Response{ID: 5, Body: body, Cacheability: 1, CostNanos: 10,
		bodyStream: bytes.NewReader(body), bodyLen: int64(len(body))}
	fi, err := encodeResponseFrame(OpRead, inline)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := encodeResponseFrame(OpRead, streamed)
	if err != nil {
		t.Fatal(err)
	}
	if fs.bodyReader == nil {
		t.Fatal("streamed response did not arm bodyReader")
	}
	if !bytes.Equal(frameBytes(t, fi), frameBytes(t, fs)) {
		t.Fatal("inline and streamed encodings differ on the wire")
	}
}

func TestV2HeaderValidation(t *testing.T) {
	valid := func() []byte {
		f, err := encodeRequestFrame(&Request{ID: 1, Op: OpRead, Doc: "d", User: "u"})
		if err != nil {
			t.Fatal(err)
		}
		return frameBytes(t, f)
	}
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		want    string
	}{
		{"bad version", func(b []byte) []byte { b[0] = 0x03; return b }, "version byte"},
		{"unknown op", func(b []byte) []byte { b[1] = 0x40; return b }, "unknown op"},
		{"unknown flags", func(b []byte) []byte { b[2] = 0x80; return b }, "unknown flags"},
		{"oversized payload", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[12:16], maxFramePayload+1)
			return b
		}, "exceeds limit"},
		{"zero id", func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[4:12], 0)
			return b
		}, "id 0"},
		{"payload corruption", func(b []byte) []byte {
			b[frameHeaderSize] ^= 0xff
			return b
		}, "checksum mismatch"},
		{"trailer corruption", func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}, "checksum mismatch"},
	}
	for _, tc := range cases {
		b := tc.corrupt(valid())
		_, err := readRequestFrame(bufio.NewReader(bytes.NewReader(b)))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// Truncated frames surface read errors, never panics or short reads.
	full := valid()
	for n := 0; n < len(full); n++ {
		if _, err := readRequestFrame(bufio.NewReader(bytes.NewReader(full[:n]))); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", n)
		}
	}
}

func TestV2ResponseChecksumRejectsCorruption(t *testing.T) {
	f, err := encodeResponseFrame(OpRead, &Response{ID: 3, Body: []byte("payload"), Cacheability: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := frameBytes(t, f)
	// Flip one body byte (past the 17-byte metadata prefix).
	b[frameHeaderSize+readMetaSize] ^= 0x01
	if _, err := readResponseFrame(bufio.NewReader(bytes.NewReader(b))); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted read body: err = %v", err)
	}
	// Empty-payload frames are covered too: their trailer is CRC(nil).
	f, err = encodeResponseFrame(OpWrite, &Response{ID: 4})
	if err != nil {
		t.Fatal(err)
	}
	b = frameBytes(t, f)
	b[len(b)-2] ^= 0x01
	if _, err := readResponseFrame(bufio.NewReader(bytes.NewReader(b))); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted empty-frame trailer: err = %v", err)
	}
}

func TestV2WireStringTruncated(t *testing.T) {
	// Length prefix claims more bytes than the payload holds.
	b := binary.AppendUvarint(nil, 100)
	b = append(b, "short"...)
	if _, _, err := readWireString(b); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
	if _, _, err := readWireString(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

// TestFrameWriterBatchesAndOrders: frames enqueued while the writer is
// busy coalesce into one writev, in FIFO order, and the batching
// counter records them.
func TestFrameWriterBatchesAndOrders(t *testing.T) {
	srvEnd, cliEnd := net.Pipe()
	defer cliEnd.Close()
	var batched atomic.Int64
	fw := newFrameWriter(srvEnd, 0, &batched, nil, nil)
	defer func() { fw.close(); srvEnd.Close() }()

	const n = 10
	for i := 1; i <= n; i++ {
		f, err := encodeResponseFrame(OpWrite, &Response{ID: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.enqueue(f); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing has been read yet, so at most the first frame started a
	// solo batch; the rest must coalesce.
	br := bufio.NewReader(cliEnd)
	for i := 1; i <= n; i++ {
		resp, err := readResponseFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if resp.ID != uint64(i) {
			t.Fatalf("frame %d: ID = %d (reordered)", i, resp.ID)
		}
	}
	// The counter is bumped after the batch's WriteTo returns, which
	// races the final read completing it — poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for batched.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("framesBatched = %d, want >= 2", batched.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFrameWriterClosedRejectsEnqueue(t *testing.T) {
	srvEnd, cliEnd := net.Pipe()
	defer srvEnd.Close()
	defer cliEnd.Close()
	var fails atomic.Int32
	fw := newFrameWriter(srvEnd, 0, nil, nil, func(error) { fails.Add(1) })
	fw.close()
	f, err := encodeResponseFrame(OpWrite, &Response{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.enqueue(f); err != errWireClosed {
		t.Fatalf("enqueue after close = %v, want errWireClosed", err)
	}
	// A deliberate close is not a wire failure.
	time.Sleep(10 * time.Millisecond)
	if fails.Load() != 0 {
		t.Fatalf("onFail fired %d times on deliberate close", fails.Load())
	}
}

func TestFrameWriterWriteErrorFiresOnFailOnce(t *testing.T) {
	srvEnd, cliEnd := net.Pipe()
	defer srvEnd.Close()
	failc := make(chan error, 4)
	fw := newFrameWriter(srvEnd, 100*time.Millisecond, nil, nil, func(err error) { failc <- err })
	cliEnd.Close() // peer gone: the next write must fail
	f, err := encodeResponseFrame(OpWrite, &Response{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = fw.enqueue(f) // may race the writer's death; either outcome is fine
	select {
	case err := <-failc:
		if err == nil {
			t.Fatal("onFail invoked with nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onFail never invoked after write error")
	}
	// Further failures are swallowed; onFail fires at most once, and
	// re-entrant close (the connection owner tearing down) is safe.
	fw.fail(io.ErrUnexpectedEOF)
	fw.close()
	select {
	case <-failc:
		t.Fatal("onFail invoked twice")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestV1ClientFullSuiteAgainstV2Server runs every wire op through a v1
// (gob) client against the v2-capable server — the compatibility bar
// the handshake must clear.
func TestV1ClientFullSuiteAgainstV2Server(t *testing.T) {
	srv, c, space := testServer(t, WithProtocolVersion(ProtoV1))
	if got := c.ProtocolVersion(); got != 1 {
		t.Fatalf("ProtocolVersion = %d, want 1", got)
	}
	exerciseAllOps(t, srv, c, space)
}

// TestV2ClientFullSuite runs the same sweep over the negotiated v2
// framing, so both protocols prove behavioral equivalence against the
// same server code.
func TestV2ClientFullSuite(t *testing.T) {
	srv, c, space := testServer(t)
	if got := c.ProtocolVersion(); got != 2 {
		t.Fatalf("ProtocolVersion = %d, want 2 (negotiation failed?)", got)
	}
	exerciseAllOps(t, srv, c, space)
}

func exerciseAllOps(t *testing.T, srv *Server, c *Client, space *docspace.Space) {
	t.Helper()
	if err := c.CreateDocument("d", "eyal", []byte("teh content")); err != nil {
		t.Fatal(err)
	}
	data, meta, err := c.Read("d", "eyal")
	if err != nil || string(data) != "teh content" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if meta.Cost < 0 {
		t.Fatalf("meta = %+v", meta)
	}
	if err := c.Write("d", "eyal", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if data, _, _ = c.Read("d", "eyal"); string(data) != "rewritten" {
		t.Fatalf("after write: %q", data)
	}
	if err := c.Attach("d", "eyal", false, "uppercase"); err != nil {
		t.Fatal(err)
	}
	if data, _, _ = c.Read("d", "eyal"); string(data) != "REWRITTEN" {
		t.Fatalf("attach ineffective: %q", data)
	}
	names, err := c.ListActives("d", "eyal", false)
	if err != nil || len(names) != 1 || names[0] != "uppercase" {
		t.Fatalf("actives = %v, %v", names, err)
	}
	if err := c.Detach("d", "eyal", false, "uppercase"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReference("d", "paul"); err != nil {
		t.Fatal(err)
	}
	if data, _, _ = c.Read("d", "paul"); string(data) != "rewritten" {
		t.Fatalf("paul read: %q", data)
	}
	if err := c.AttachStatic("d", "eyal", false, "topic", "caching"); err != nil {
		t.Fatal(err)
	}
	matches, err := c.Find("eyal", "topic", "")
	if err != nil || len(matches) != 1 || matches[0].Doc != "d" || matches[0].Value != "caching" {
		t.Fatalf("find = %v, %v", matches, err)
	}
	desc, err := c.Describe("d")
	if err != nil || desc == "" {
		t.Fatalf("describe = %q, %v", desc, err)
	}
	if err := c.ForwardEvent("d", "eyal", event.Kinds()[0].String()); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil || stats["requests"] == 0 {
		t.Fatalf("stats = %v, %v", stats, err)
	}
	// Subscribe + server-side write → invalidation push.
	got := make(chan string, 4)
	c.OnInvalidate(func(doc, user string) { got <- doc })
	if err := c.Subscribe("d", "eyal"); err != nil {
		t.Fatal(err)
	}
	if err := space.WriteDocument("d", "eyal", []byte("pushed")); err != nil {
		t.Fatal(err)
	}
	select {
	case doc := <-got:
		if doc != "d" {
			t.Fatalf("push for %q", doc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("invalidation push never arrived")
	}
	// Errors cross both framings as strings.
	if _, _, err := c.Read("ghost", "eyal"); err == nil ||
		!strings.Contains(err.Error(), "no such document") {
		t.Fatalf("error propagation: %v", err)
	}
	sent, recv := srv.WireBytes()
	if sent <= 0 || recv <= 0 {
		t.Fatalf("WireBytes = %d, %d; want both positive", sent, recv)
	}
}

// legacyServer starts a server pinned to the v1 protocol (emulating a
// pre-v2 binary) and returns its address.
func legacyServer(t *testing.T) string {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	backing := repo.NewMem("srv", clk, simnet.NewPath("loop", 1))
	space := docspace.New(clk, repo.NewDMS("dms", clk, simnet.NewPath("loop", 2)))
	srv := New(space, backing)
	srv.SetLegacyProtocolOnly(true)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start")
	}
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return addr
}

// TestHandshakeDowngradeAgainstLegacyServer: an auto-negotiating client
// dialing a v1-only server must land on v1 and work, transparently.
func TestHandshakeDowngradeAgainstLegacyServer(t *testing.T) {
	addr := legacyServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.ProtocolVersion(); got != 1 {
		t.Fatalf("ProtocolVersion = %d, want 1 after downgrade", got)
	}
	if err := c.CreateDocument("d", "u", []byte("legacy ok")); err != nil {
		t.Fatal(err)
	}
	if data, _, err := c.Read("d", "u"); err != nil || string(data) != "legacy ok" {
		t.Fatalf("read = %q, %v", data, err)
	}
}

// TestPinnedV2AgainstLegacyServerFails: pinning ProtoV2 refuses the
// downgrade instead of silently speaking gob.
func TestPinnedV2AgainstLegacyServerFails(t *testing.T) {
	addr := legacyServer(t)
	c, err := Dial(addr, WithProtocolVersion(ProtoV2))
	if err == nil {
		c.Close()
		t.Fatal("Dial succeeded against a v1-only server with ProtoV2 pinned")
	}
}

// TestZeroCopyStreamedRead: when the durable tier holds the served
// bytes, a v2 read is streamed from the segment file instead of the
// heap copy, byte-identically.
func TestZeroCopyStreamedRead(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	backing := repo.NewMem("srv", clk, simnet.NewPath("loop", 1))
	space := docspace.New(clk, repo.NewDMS("dms", clk, simnet.NewPath("loop", 2)))
	cache := core.New(space, core.Options{Name: "stream-test", Capacity: 1 << 20})
	st, _, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCached(space, backing, cache)
	srv.SetStore(st)
	srv.SetStreamThreshold(1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start")
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		cache.Close()
		st.Close()
	})
	if got := c.ProtocolVersion(); got != 2 {
		t.Fatalf("ProtocolVersion = %d, want 2", got)
	}

	body := bytes.Repeat([]byte("zero-copy segment bytes "), 4096) // ~96 KiB
	if err := c.CreateDocument("big", "eyal", body); err != nil {
		t.Fatal(err)
	}
	// Seed the durable tier with the exact content; the read below
	// installs the same bytes in the cache under the same signature,
	// arming the streamed path.
	if _, err := st.PutBlob(body); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		data, _, err := c.Read("big", "eyal")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, body) {
			t.Fatalf("read %d: body mismatch (%d bytes, want %d)", i, len(data), len(body))
		}
	}
	if got := srv.StreamedReads(); got < 1 {
		t.Fatalf("StreamedReads = %d, want >= 1", got)
	}
}
