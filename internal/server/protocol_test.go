package server

import (
	"bytes"
	"encoding/gob"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// Property: Request and Response frames survive gob encoding across a
// pipe — the wire integrity invariant the whole protocol rests on.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(id uint64, op uint8, doc, user, prop, value string, personal bool, body []byte) bool {
		in := Request{
			ID: id | 1, Op: Op(op % 11), Doc: doc, User: user,
			Personal: personal, Property: prop, Value: value, Body: body,
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			return false
		}
		var out Request
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			return false
		}
		// gob encodes empty slices and nil identically; normalize.
		if len(in.Body) == 0 {
			in.Body, out.Body = nil, nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseRoundTripProperty(t *testing.T) {
	f := func(id uint64, errStr string, body []byte, cacheability uint8, cost int64, actives []string) bool {
		in := Response{
			ID: id, Err: errStr, Body: body,
			Cacheability: int(cacheability % 3), CostNanos: cost,
			Actives: actives,
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			return false
		}
		var out Response
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			return false
		}
		if len(in.Body) == 0 {
			in.Body, out.Body = nil, nil
		}
		if len(in.Actives) == 0 {
			in.Actives, out.Actives = nil, nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameConnConcurrentSenders(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fa, fb := newFrameConn(a), newFrameConn(b)

	const n = 50
	go func() {
		for i := 0; i < 2*n; i++ {
			var resp Response
			if err := fb.dec.Decode(&resp); err != nil {
				return
			}
		}
	}()
	done := make(chan struct{}, 2)
	for g := 0; g < 2; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < n; i++ {
				if err := fa.send(&Response{ID: 1}, 0); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("concurrent senders deadlocked")
		}
	}
	if err := fa.close(); err != nil {
		t.Fatal(err)
	}
	if err := fa.close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
