package server

import (
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// benchServer boots a loopback server with one document.
func benchServer(b *testing.B) *Client {
	b.Helper()
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC))
	space := docspace.New(clk, nil)
	srv := New(space, repo.NewMem("srv", clk, simnet.NewPath("loop", 1)))
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 500; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		b.Fatal("server did not start")
	}
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.CreateDocument("d", "u", make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		c.Close()
		srv.Close()
		<-done
	})
	return c
}

// BenchmarkRemoteRead measures a full request/response round trip over
// loopback TCP including gob framing and the middleware read path.
func BenchmarkRemoteRead(b *testing.B) {
	c := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Read("d", "u"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteWrite measures a write round trip.
func BenchmarkRemoteWrite(b *testing.B) {
	c := benchServer(b)
	data := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write("d", "u", data); err != nil {
			b.Fatal(err)
		}
	}
}
