package server

import (
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// benchServer boots a loopback server with one document.
func benchServer(b *testing.B) *Client {
	b.Helper()
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC))
	space := docspace.New(clk, nil)
	srv := New(space, repo.NewMem("srv", clk, simnet.NewPath("loop", 1)))
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 500; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		b.Fatal("server did not start")
	}
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.CreateDocument("d", "u", make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		c.Close()
		srv.Close()
		<-done
	})
	return c
}

// BenchmarkRemoteRead measures a full request/response round trip over
// loopback TCP including gob framing and the middleware read path.
func BenchmarkRemoteRead(b *testing.B) {
	c := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Read("d", "u"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteWrite measures a write round trip.
func BenchmarkRemoteWrite(b *testing.B) {
	c := benchServer(b)
	data := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write("d", "u", data); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCachedServer boots a cached loopback server holding one warm
// document of the given size and dials it pinned to proto. This is the
// E15 workload shape: the interesting quantity is the v1/v2 delta.
func benchCachedServer(b *testing.B, size, proto int) *Client {
	b.Helper()
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC))
	space := docspace.New(clk, nil)
	cache := core.New(space, core.Options{Name: "bench", Capacity: 64 << 20})
	b.Cleanup(func() { cache.Close() })
	srv := NewCached(space, repo.NewMem("srv", clk, simnet.NewPath("loop", 1)), cache)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 500; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		b.Fatal("server did not start")
	}
	c, err := Dial(addr, WithProtocolVersion(proto))
	if err != nil {
		b.Fatal(err)
	}
	if err := c.CreateDocument("d", "u", make([]byte, size)); err != nil {
		b.Fatal(err)
	}
	if _, _, err := c.Read("d", "u"); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.Cleanup(func() {
		c.Close()
		srv.Close()
		<-done
	})
	return c
}

// BenchmarkWireRead64K measures warm-hit reads of a 64 KiB document
// over each protocol version, with 8 callers pipelining on one
// connection (the acceptance workload for the v2 framing).
func BenchmarkWireRead64K(b *testing.B) {
	for _, pv := range []struct {
		name  string
		proto int
	}{{"v1", ProtoV1}, {"v2", ProtoV2}} {
		b.Run(pv.name, func(b *testing.B) {
			c := benchCachedServer(b, 64<<10, pv.proto)
			b.SetParallelism(8)
			b.SetBytes(64 << 10)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, _, err := c.Read("d", "u"); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkWireRead4K is BenchmarkWireRead64K at the small-frame size,
// where fixed per-op costs dominate payload handling.
func BenchmarkWireRead4K(b *testing.B) {
	for _, pv := range []struct {
		name  string
		proto int
	}{{"v1", ProtoV1}, {"v2", ProtoV2}} {
		b.Run(pv.name, func(b *testing.B) {
			c := benchCachedServer(b, 4<<10, pv.proto)
			b.SetParallelism(8)
			b.SetBytes(4 << 10)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, _, err := c.Read("d", "u"); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
