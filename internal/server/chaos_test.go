package server

import (
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// chaosServer starts a server whose space and backing outlive it, so a
// test can kill it and bring a fresh instance up on the same address —
// the crash/restart cycle the resilience machinery exists for.
type chaosServer struct {
	t       *testing.T
	space   *docspace.Space
	backing repo.Repository
	addr    string

	srv  *Server
	done chan error
}

func newChaosServer(t *testing.T) *chaosServer {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	cs := &chaosServer{
		t:       t,
		space:   docspace.New(clk, nil),
		backing: repo.NewMem("srv", clk, simnet.NewPath("loop", 1)),
	}
	srv := New(cs.space, cs.backing)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			cs.addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if cs.addr == "" {
		t.Fatal("server did not start")
	}
	cs.srv, cs.done = srv, done
	t.Cleanup(func() { cs.kill() })
	return cs
}

// kill stops the current server instance (idempotent).
func (cs *chaosServer) kill() {
	if cs.srv == nil {
		return
	}
	cs.srv.Close()
	<-cs.done
	cs.srv = nil
}

// restart brings a new server instance up on the original address. The
// space survives in-process — like a server whose durable state
// outlives its crash — so writes made while it was down are visible
// (and their invalidations were lost).
func (cs *chaosServer) restart() {
	cs.t.Helper()
	cs.kill()
	var ln net.Listener
	var err error
	for i := 0; i < 200; i++ {
		if ln, err = net.Listen("tcp", cs.addr); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		cs.t.Fatalf("relisten on %s: %v", cs.addr, err)
	}
	srv := New(cs.space, cs.backing)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	cs.srv, cs.done = srv, done
}

// waitCond polls cond until true or the deadline.
func waitCond(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// A server that accepts the connection and the request but never
// answers must not wedge the client forever: the call deadline fires,
// the call returns the typed ErrTimeout, and the connection is retired.
func TestChaosWedgedServerCallTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var held []net.Conn
	var mu sync.Mutex
	defer func() {
		mu.Lock()
		for _, c := range held {
			c.Close()
		}
		mu.Unlock()
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c) // accept, never read, never answer
			mu.Unlock()
		}
	}()

	c, err := Dial(ln.Addr().String(), WithCallTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, _, err = c.Read("d", "u")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("wedged call returned %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not enforced: call took %v", elapsed)
	}
	if c.Timeouts() != 1 {
		t.Fatalf("Timeouts = %d, want 1", c.Timeouts())
	}
	// The connection that swallowed a request cannot be trusted for
	// invalidation pushes either; it must have been retired.
	if c.State() != StateDisconnected {
		t.Fatalf("state after timeout = %v, want disconnected", c.State())
	}
	if _, _, err := c.Read("d", "u"); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("call on downed client returned %v, want ErrDisconnected", err)
	}
}

// Kill the server mid-session: the client must notice, back off,
// redial, and come back with a bumped epoch once the server returns.
func TestChaosReconnectAcrossRestart(t *testing.T) {
	cs := newChaosServer(t)
	c, err := Dial(cs.addr,
		WithReconnect(5*time.Millisecond, 100*time.Millisecond),
		WithCallTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.CreateDocument("d", "u", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 1 {
		t.Fatalf("initial epoch = %d", c.Epoch())
	}

	cs.kill()
	waitCond(t, 5*time.Second, func() bool { return c.State() == StateDisconnected })
	if _, _, err := c.Read("d", "u"); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("read while down returned %v, want ErrDisconnected", err)
	}

	cs.restart()
	waitCond(t, 5*time.Second, func() bool { return c.State() == StateConnected })
	if c.Epoch() != 2 {
		t.Fatalf("epoch after restart = %d, want 2", c.Epoch())
	}
	if c.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", c.Reconnects())
	}
	data, _, err := c.Read("d", "u")
	if err != nil || string(data) != "v1" {
		t.Fatalf("read after reconnect = %q, %v", data, err)
	}
}

// A blocking OnInvalidate handler must not stall RPC responses (they
// share the read loop with pushes), and queued pushes must still be
// delivered in wire arrival order once the handler unblocks.
func TestChaosBlockingInvalHandler(t *testing.T) {
	_, c, _ := testServer(t)
	for _, id := range []string{"d1", "d2"} {
		if err := c.CreateDocument(id, "u", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(id, "u"); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	var got []string
	release := make(chan struct{})
	c.OnInvalidate(func(doc, user string) {
		mu.Lock()
		got = append(got, doc)
		mu.Unlock()
		<-release
	})

	if err := c.Write("d1", "u", []byte("y")); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})

	// The handler is now parked on release. An RPC must still complete:
	// invalidation dispatch is decoupled from the response path.
	rpcDone := make(chan error, 1)
	go func() {
		_, _, err := c.Read("d2", "u")
		rpcDone <- err
	}()
	select {
	case err := <-rpcDone:
		if err != nil {
			t.Fatalf("RPC under blocked handler: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RPC stalled behind a blocking invalidation handler")
	}

	// A second push queues behind the blocked delivery.
	if err := c.Write("d2", "u", []byte("z")); err != nil {
		t.Fatal(err)
	}
	close(release)
	waitCond(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 2
	})
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(got[:2], []string{"d1", "d2"}) {
		t.Fatalf("delivery order = %v, want [d1 d2]", got)
	}
}

// Find results carry values as struct fields on the wire; tabs and
// newlines in property values must round-trip byte-for-byte.
func TestFindRoundTripTabNewline(t *testing.T) {
	_, c, _ := testServer(t)
	const hairy = "a\tb\nc\td"
	if err := c.CreateDocument("d", "u", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachStatic("d", "u", false, "topic", hairy); err != nil {
		t.Fatal(err)
	}
	matches, err := c.Find("u", "topic", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %+v, want 1", matches)
	}
	if matches[0].Doc != "d" || matches[0].Value != hairy {
		t.Fatalf("match = %+v, value corrupted on the wire", matches[0])
	}
	// Exact-value search must also survive the hairy value.
	matches, err = c.Find("u", "topic", hairy)
	if err != nil || len(matches) != 1 {
		t.Fatalf("exact-value find = %+v, %v", matches, err)
	}
}

// Concurrent callers racing a connection drop must each get a prompt
// typed error or a valid response — never a hang.
func TestChaosConcurrentCallsDuringDrop(t *testing.T) {
	cs := newChaosServer(t)
	c, err := Dial(cs.addr,
		WithReconnect(5*time.Millisecond, 100*time.Millisecond),
		WithCallTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateDocument("d", "u", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	const K = 8
	var wg sync.WaitGroup
	errCh := make(chan error, K*64)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 64; j++ {
				_, _, err := c.Read("d", "u")
				if err != nil &&
					!errors.Is(err, ErrDisconnected) &&
					!errors.Is(err, ErrTimeout) &&
					!errors.Is(err, ErrClientClosed) {
					errCh <- err
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	cs.kill()
	time.Sleep(50 * time.Millisecond)
	cs.restart()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent callers hung across the connection drop")
	}
	close(errCh)
	for err := range errCh {
		t.Fatalf("unexpected (untyped) error during drop: %v", err)
	}
}
