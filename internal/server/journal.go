package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"placeless/internal/property"
)

// Journal persists the configuration plane of a document space — the
// documents, references, groups, property attachments, and static
// labels applied through the server — as JSON lines, so a restarted
// placelessd can rebuild the property graph by replay. Content bytes
// are not journaled: they live in the backing repository (use the
// file-system repository for durable content).
//
// Only operations expressible as standard property specs are
// journaled, which is exactly the set a remote client can apply.
type Journal struct {
	mu   sync.Mutex
	w    io.Writer
	c    io.Closer
	path string
}

// journalEntry is one configuration operation.
type journalEntry struct {
	// Op is the operation name: create, addref, attach, detach,
	// static.
	Op string `json:"op"`
	// Doc and User identify the target.
	Doc  string `json:"doc"`
	User string `json:"user,omitempty"`
	// Personal selects the reference level for property ops.
	Personal bool `json:"personal,omitempty"`
	// Spec is the property spec (attach), property name (detach), or
	// static key (static).
	Spec string `json:"spec,omitempty"`
	// Value is the static property value.
	Value string `json:"value,omitempty"`
	// Content is the document's initial content (create only),
	// base64-encoded by encoding/json.
	Content []byte `json:"content,omitempty"`
}

// OpenJournal opens (creating if absent) a journal file for appending.
// A torn final line — the residue of a crash mid-append — is truncated
// away first, so a new record can never be glued onto the fragment and
// turn a recoverable torn tail into a terminated corrupt line that
// poisons the next replay. Same recovery contract as the disk tier's
// active segment.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	end, err := truncateTornTail(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{w: f, c: f, path: path}, nil
}

// truncateTornTail trims f past its last newline-terminated byte and
// returns the resulting size.
func truncateTornTail(f *os.File) (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := info.Size()
	if size == 0 {
		return 0, nil
	}
	// Walk back from the end looking for the last '\n'; journal
	// records are small, so read a bounded window at a time.
	const window = 64 << 10
	end := size
	buf := make([]byte, window)
	for end > 0 {
		n := int64(window)
		if n > end {
			n = end
		}
		if _, err := f.ReadAt(buf[:n], end-n); err != nil {
			return 0, err
		}
		if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
			end = end - n + int64(i) + 1
			break
		}
		end -= n
	}
	if end == size {
		return size, nil
	}
	if err := f.Truncate(end); err != nil {
		return 0, err
	}
	return end, nil
}

// Path returns the journal's file path ("" for in-memory journals).
func (j *Journal) Path() string { return j.path }

// record appends one entry.
func (j *Journal) record(e journalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = j.w.Write(data)
	return err
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.c == nil {
		return nil
	}
	err := j.c.Close()
	j.c = nil
	return err
}

// SetJournal makes the server record configuration operations (create,
// addref, attach, detach, static) to j. Pass nil to stop journaling.
// Call before Serve; replay any existing journal first.
func (s *Server) SetJournal(j *Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// journalRequest records a handled configuration request. Data-plane
// ops (read/write/subscribe/forward/stats) are not journaled.
func (s *Server) journalRequest(req *Request) {
	s.mu.Lock()
	j := s.journal
	s.mu.Unlock()
	if j == nil {
		return
	}
	var e journalEntry
	switch req.Op {
	case OpCreateDocument:
		e = journalEntry{Op: "create", Doc: req.Doc, User: req.User, Content: req.Body}
	case OpAddReference:
		e = journalEntry{Op: "addref", Doc: req.Doc, User: req.User}
	case OpAttach:
		e = journalEntry{Op: "attach", Doc: req.Doc, User: req.User, Personal: req.Personal, Spec: req.Property}
	case OpDetach:
		e = journalEntry{Op: "detach", Doc: req.Doc, User: req.User, Personal: req.Personal, Spec: req.Property}
	case OpAttachStatic:
		e = journalEntry{Op: "static", Doc: req.Doc, User: req.User, Personal: req.Personal, Spec: req.Property, Value: req.Value}
	default:
		return
	}
	_ = j.record(e) // journaling failures must not fail requests
}

// ReplayJournal re-applies a journal file to the server's space,
// rebuilding the configuration plane after a restart. Entries that
// fail because the state already exists (e.g. documents recreated over
// a persistent backing repository) are skipped; other errors abort.
//
// A final line left unterminated by a crash mid-append (torn write) is
// not an error: replay stops cleanly at the last complete entry, the
// same recovery contract as the disk tier's meta log. A corrupt line
// that *is* newline-terminated still aborts — it cannot be explained
// by a torn tail, so the journal is genuinely damaged.
//
// Returns the number of applied entries.
func (s *Server) ReplayJournal(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil // nothing to replay
		}
		return 0, err
	}
	defer f.Close()

	applied := 0
	r := bufio.NewReaderSize(f, 1<<20)
	line := 0
	for {
		text, rerr := r.ReadString('\n')
		if rerr != nil && rerr != io.EOF {
			return applied, rerr
		}
		terminated := strings.HasSuffix(text, "\n")
		raw := []byte(strings.TrimSuffix(text, "\n"))
		if len(raw) == 0 {
			if rerr == io.EOF {
				return applied, nil
			}
			continue
		}
		line++
		var e journalEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			if !terminated {
				// The file ends mid-record: the process died between
				// writing part of the line and its newline. Everything
				// before this point replayed; the torn tail is dropped.
				return applied, nil
			}
			return applied, fmt.Errorf("server: journal %s line %d: %w", path, line, err)
		}
		req := &Request{Doc: e.Doc, User: e.User, Personal: e.Personal}
		switch e.Op {
		case "create":
			req.Op = OpCreateDocument
			req.Body = e.Content
			// A persistent backing repository may already hold newer
			// content than the journaled initial bytes; registering
			// the existing content must not clobber it.
			if _, err := s.backing.Stat("/" + e.Doc); err == nil {
				resp := s.registerExisting(e.Doc, e.User)
				if resp.Err != "" && !isDuplicateErr(resp.Err) {
					return applied, fmt.Errorf("server: journal %s line %d: %s", path, line, resp.Err)
				}
				if resp.Err == "" {
					applied++
				}
				continue
			}
		case "addref":
			req.Op = OpAddReference
		case "attach":
			req.Op = OpAttach
			req.Property = e.Spec
		case "detach":
			req.Op = OpDetach
			req.Property = e.Spec
		case "static":
			req.Op = OpAttachStatic
			req.Property = e.Spec
			req.Value = e.Value
		default:
			return applied, fmt.Errorf("server: journal %s line %d: unknown op %q", path, line, e.Op)
		}
		resp := s.apply(req)
		if resp.Err != "" {
			// Duplicate state is expected when the backing
			// repository survived the restart.
			if isDuplicateErr(resp.Err) {
				continue
			}
			return applied, fmt.Errorf("server: journal %s line %d: %s", path, line, resp.Err)
		}
		applied++
		if rerr == io.EOF {
			return applied, nil
		}
	}
}

// registerExisting registers a document whose content already lives in
// the backing repository, without rewriting the bytes.
func (s *Server) registerExisting(doc, owner string) *Response {
	bits := &property.RepoBitProvider{Repo: s.backing, Path: "/" + doc}
	if _, err := s.space.CreateDocument(doc, owner, bits); err != nil {
		return fail(err)
	}
	return &Response{}
}

// isDuplicateErr reports whether a handler error string describes
// already-existing state.
func isDuplicateErr(msg string) bool {
	return strings.Contains(msg, "duplicate")
}
