package server

// CRC32-C combination: given crc(A), crc(B) and len(B), compute
// crc(A||B) without touching the bytes of either part. This is the
// zlib crc32_combine construction — appending len(B) zero bytes to A
// is a linear operator over GF(2), representable as a 32×32 bit
// matrix; crc(A||B) = zeros(len(B))·crc(A) ⊕ crc(B).
//
// The wire path uses it to stamp a frame's payload trailer from the
// cache's stored per-blob CRC plus a 17-byte metadata CRC, so warm
// hits never re-scan the body. zlib's formulation squares matrices on
// every call; since combine runs per response here, the power-of-two
// operators are built once at init and a call is just one matrix·vector
// product per set bit of the length.

// crcZeroOps[k] is the operator for appending 2^k zero bytes,
// reflected CRC-32C polynomial. 48 entries cover lengths well past
// maxFramePayload.
var crcZeroOps [48][32]uint32

func init() {
	// op for one zero *bit*: row n is the image of the basis vector
	// with bit n set. In the reflected representation, shifting in a
	// zero bit maps bit n to bit n-1, and bit 0 folds into the
	// polynomial.
	var op [32]uint32
	op[0] = 0x82f63b78 // CRC-32C, reflected
	for n := 1; n < 32; n++ {
		op[n] = 1 << (n - 1)
	}
	gf2MatrixSquare(&op, &op) // 2 bits
	gf2MatrixSquare(&op, &op) // 4 bits
	gf2MatrixSquare(&op, &op) // 8 bits = 1 byte
	crcZeroOps[0] = op
	for k := 1; k < len(crcZeroOps); k++ {
		gf2MatrixSquare(&crcZeroOps[k], &crcZeroOps[k-1])
	}
}

// gf2MatrixTimes multiplies the operator matrix by a bit vector.
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; vec >>= 1 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		i++
	}
	return sum
}

// gf2MatrixSquare sets dst = mat·mat. dst and mat may alias.
func gf2MatrixSquare(dst, mat *[32]uint32) {
	var sq [32]uint32
	for n := 0; n < 32; n++ {
		sq[n] = gf2MatrixTimes(mat, mat[n])
	}
	*dst = sq
}

// crc32Combine returns the CRC-32C of A||B given crc(A), crc(B) and
// len(B) in bytes.
func crc32Combine(crc1, crc2 uint32, len2 int64) uint32 {
	for k := 0; len2 != 0; len2 >>= 1 {
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&crcZeroOps[k], crc1)
		}
		k++
	}
	return crc1 ^ crc2
}
