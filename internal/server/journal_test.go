package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// journalRig boots a journaled server over a persistent FS backing.
func journalRig(t *testing.T, rootDir, journalPath string) (*Server, *Client, func()) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	fsRepo, err := repo.NewFS("fs", clk, simnet.NewPath("loop", 1), rootDir)
	if err != nil {
		t.Fatal(err)
	}
	space := docspace.New(clk, nil)
	srv := New(space, fsRepo)
	if _, err := srv.ReplayJournal(journalPath); err != nil {
		t.Fatalf("replay: %v", err)
	}
	j, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetJournal(j)

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start")
	}
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	shutdown := func() {
		client.Close()
		srv.Close()
		<-done
		j.Close()
	}
	return srv, client, shutdown
}

func TestJournalRestartRebuildsConfiguration(t *testing.T) {
	root := t.TempDir()
	journal := filepath.Join(t.TempDir(), "config.journal")

	// First server lifetime: build configuration and write content.
	_, c1, shutdown1 := journalRig(t, root, journal)
	if err := c1.CreateDocument("memo", "alice", []byte("teh first draft")); err != nil {
		t.Fatal(err)
	}
	if err := c1.AddReference("memo", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := c1.Attach("memo", "alice", true, "spell-correct"); err != nil {
		t.Fatal(err)
	}
	if err := c1.AttachStatic("memo", "", false, "status", "draft"); err != nil {
		t.Fatal(err)
	}
	// Content updated after creation: the restart must keep this, not
	// the journaled initial bytes.
	if err := c1.Write("memo", "bob", []byte("teh final draft")); err != nil {
		t.Fatal(err)
	}
	shutdown1()

	// Second lifetime over the same root + journal.
	_, c2, shutdown2 := journalRig(t, root, journal)
	defer shutdown2()

	alice, _, err := c2.Read("memo", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if string(alice) != "the final draft" {
		t.Fatalf("alice reads %q, want post-restart content with spell correction", alice)
	}
	bob, _, err := c2.Read("memo", "bob")
	if err != nil || string(bob) != "teh final draft" {
		t.Fatalf("bob reads %q, %v", bob, err)
	}
	names, err := c2.ListActives("memo", "alice", true)
	if err != nil || len(names) != 1 || names[0] != "spell-correct" {
		t.Fatalf("actives = %v, %v", names, err)
	}
}

func TestJournalDetachReplays(t *testing.T) {
	root := t.TempDir()
	journal := filepath.Join(t.TempDir(), "j")
	_, c1, shutdown1 := journalRig(t, root, journal)
	c1.CreateDocument("d", "u", []byte("x"))
	c1.Attach("d", "u", true, "uppercase")
	c1.Detach("d", "u", true, "uppercase")
	shutdown1()

	_, c2, shutdown2 := journalRig(t, root, journal)
	defer shutdown2()
	names, err := c2.ListActives("d", "u", true)
	if err != nil || len(names) != 0 {
		t.Fatalf("actives after replayed detach = %v, %v", names, err)
	}
}

func TestReplayMissingJournalIsNoop(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	srv := New(docspace.New(clk, nil), repo.NewMem("m", clk, simnet.NewPath("p", 1)))
	n, err := srv.ReplayJournal(filepath.Join(t.TempDir(), "absent"))
	if err != nil || n != 0 {
		t.Fatalf("replay = %d, %v", n, err)
	}
}

func TestReplayCorruptJournalFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	os.WriteFile(path, []byte("{not json\n"), 0o644)
	clk := clock.NewVirtual(epoch)
	srv := New(docspace.New(clk, nil), repo.NewMem("m", clk, simnet.NewPath("p", 1)))
	if _, err := srv.ReplayJournal(path); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("err = %v", err)
	}
	os.WriteFile(path, []byte(`{"op":"martian","doc":"d"}`+"\n"), 0o644)
	if _, err := srv.ReplayJournal(path); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v", err)
	}
}

func TestJournalSkipsDataPlane(t *testing.T) {
	root := t.TempDir()
	journal := filepath.Join(t.TempDir(), "j")
	_, c, shutdown := journalRig(t, root, journal)
	c.CreateDocument("d", "u", []byte("x"))
	for i := 0; i < 5; i++ {
		c.Read("d", "u")
	}
	c.Write("d", "u", []byte("y"))
	shutdown()

	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines != 1 {
		t.Fatalf("journal has %d entries, want only the create:\n%s", lines, data)
	}
	if !strings.Contains(string(data), `"op":"create"`) {
		t.Fatalf("journal = %s", data)
	}
}

// TestReplayTornFinalLineStopsCleanly: a crash between writing part of
// a journal line and its newline must not poison the journal — replay
// applies every complete entry and drops the torn tail, at every
// possible truncation point inside the final record.
func TestReplayTornFinalLineStopsCleanly(t *testing.T) {
	line1 := `{"op":"create","doc":"d","user":"u","content":"eA=="}` + "\n"
	line2 := `{"op":"static","doc":"d","user":"u","spec":"k","value":"v"}` + "\n"
	full := line1 + line2

	replay := func(content string) (int, error, *Server) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "j")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		clk := clock.NewVirtual(epoch)
		srv := New(docspace.New(clk, nil), repo.NewMem("m", clk, simnet.NewPath("p", 1)))
		n, err := srv.ReplayJournal(path)
		return n, err, srv
	}

	// Cut the file everywhere inside the second record, newline
	// excluded: all such tails are torn writes.
	for cut := len(line1) + 1; cut < len(full)-1; cut++ {
		n, err, _ := replay(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: replay error on torn tail: %v", cut, err)
		}
		if n != 1 {
			t.Fatalf("cut %d: applied %d entries, want 1", cut, n)
		}
	}

	// A complete final record merely missing its newline is not torn —
	// the JSON parses, so it applies.
	n, err, srv := replay(full[:len(full)-1])
	if err != nil || n != 2 {
		t.Fatalf("newline-less complete tail: applied %d, err %v; want 2, nil", n, err)
	}
	if v, ok := staticValue(t, srv, "d", "u", "k"); !ok || v != "v" {
		t.Fatalf("static from final line not applied: %q, %v", v, ok)
	}

	// An interior corrupt line is terminated, so it cannot be a torn
	// tail: replay must still refuse the journal.
	if _, err, _ := replay(line1[:len(line1)-10] + "\n" + line2); err == nil {
		t.Fatal("terminated corrupt interior line replayed without error")
	}
}

// TestJournalSurvivesCrashMidAppend drives the torn-tail contract end
// to end: a journal with a torn final record boots a working server
// that keeps journaling, and the next restart sees both the old
// entries and the new ones.
func TestJournalSurvivesCrashMidAppend(t *testing.T) {
	root := t.TempDir()
	journal := filepath.Join(t.TempDir(), "j")
	_, c1, shutdown1 := journalRig(t, root, journal)
	if err := c1.CreateDocument("d", "u", []byte("x")); err != nil {
		t.Fatal(err)
	}
	shutdown1()

	// Tear the tail: append half of a record with no newline.
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"static","doc":"d","us`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, c2, shutdown2 := journalRig(t, root, journal)
	if err := c2.AttachStatic("d", "u", false, "author", "eyal"); err != nil {
		t.Fatal(err)
	}
	shutdown2()

	// Third boot: the torn fragment is mid-file now (the new append
	// started after it). Replay must still recover the create and the
	// static attach recorded by the second incarnation.
	srv3, _, shutdown3 := journalRig(t, root, journal)
	defer shutdown3()
	if v, ok := staticValue(t, srv3, "d", "u", "author"); !ok || v != "eyal" {
		t.Fatalf("static lost across torn-tail restart: %q, %v", v, ok)
	}
}

// staticValue looks up a universal-level static label on srv's space.
func staticValue(t *testing.T, srv *Server, doc, user, key string) (string, bool) {
	t.Helper()
	statics, err := srv.space.Statics(doc, user, docspace.Universal)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range statics {
		if s.Key == key {
			return s.Value, true
		}
	}
	return "", false
}
