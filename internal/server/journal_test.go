package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// journalRig boots a journaled server over a persistent FS backing.
func journalRig(t *testing.T, rootDir, journalPath string) (*Server, *Client, func()) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	fsRepo, err := repo.NewFS("fs", clk, simnet.NewPath("loop", 1), rootDir)
	if err != nil {
		t.Fatal(err)
	}
	space := docspace.New(clk, nil)
	srv := New(space, fsRepo)
	if _, err := srv.ReplayJournal(journalPath); err != nil {
		t.Fatalf("replay: %v", err)
	}
	j, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetJournal(j)

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start")
	}
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	shutdown := func() {
		client.Close()
		srv.Close()
		<-done
		j.Close()
	}
	return srv, client, shutdown
}

func TestJournalRestartRebuildsConfiguration(t *testing.T) {
	root := t.TempDir()
	journal := filepath.Join(t.TempDir(), "config.journal")

	// First server lifetime: build configuration and write content.
	_, c1, shutdown1 := journalRig(t, root, journal)
	if err := c1.CreateDocument("memo", "alice", []byte("teh first draft")); err != nil {
		t.Fatal(err)
	}
	if err := c1.AddReference("memo", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := c1.Attach("memo", "alice", true, "spell-correct"); err != nil {
		t.Fatal(err)
	}
	if err := c1.AttachStatic("memo", "", false, "status", "draft"); err != nil {
		t.Fatal(err)
	}
	// Content updated after creation: the restart must keep this, not
	// the journaled initial bytes.
	if err := c1.Write("memo", "bob", []byte("teh final draft")); err != nil {
		t.Fatal(err)
	}
	shutdown1()

	// Second lifetime over the same root + journal.
	_, c2, shutdown2 := journalRig(t, root, journal)
	defer shutdown2()

	alice, _, err := c2.Read("memo", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if string(alice) != "the final draft" {
		t.Fatalf("alice reads %q, want post-restart content with spell correction", alice)
	}
	bob, _, err := c2.Read("memo", "bob")
	if err != nil || string(bob) != "teh final draft" {
		t.Fatalf("bob reads %q, %v", bob, err)
	}
	names, err := c2.ListActives("memo", "alice", true)
	if err != nil || len(names) != 1 || names[0] != "spell-correct" {
		t.Fatalf("actives = %v, %v", names, err)
	}
}

func TestJournalDetachReplays(t *testing.T) {
	root := t.TempDir()
	journal := filepath.Join(t.TempDir(), "j")
	_, c1, shutdown1 := journalRig(t, root, journal)
	c1.CreateDocument("d", "u", []byte("x"))
	c1.Attach("d", "u", true, "uppercase")
	c1.Detach("d", "u", true, "uppercase")
	shutdown1()

	_, c2, shutdown2 := journalRig(t, root, journal)
	defer shutdown2()
	names, err := c2.ListActives("d", "u", true)
	if err != nil || len(names) != 0 {
		t.Fatalf("actives after replayed detach = %v, %v", names, err)
	}
}

func TestReplayMissingJournalIsNoop(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	srv := New(docspace.New(clk, nil), repo.NewMem("m", clk, simnet.NewPath("p", 1)))
	n, err := srv.ReplayJournal(filepath.Join(t.TempDir(), "absent"))
	if err != nil || n != 0 {
		t.Fatalf("replay = %d, %v", n, err)
	}
}

func TestReplayCorruptJournalFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	os.WriteFile(path, []byte("{not json\n"), 0o644)
	clk := clock.NewVirtual(epoch)
	srv := New(docspace.New(clk, nil), repo.NewMem("m", clk, simnet.NewPath("p", 1)))
	if _, err := srv.ReplayJournal(path); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("err = %v", err)
	}
	os.WriteFile(path, []byte(`{"op":"martian","doc":"d"}`+"\n"), 0o644)
	if _, err := srv.ReplayJournal(path); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v", err)
	}
}

func TestJournalSkipsDataPlane(t *testing.T) {
	root := t.TempDir()
	journal := filepath.Join(t.TempDir(), "j")
	_, c, shutdown := journalRig(t, root, journal)
	c.CreateDocument("d", "u", []byte("x"))
	for i := 0; i < 5; i++ {
		c.Read("d", "u")
	}
	c.Write("d", "u", []byte("y"))
	shutdown()

	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines != 1 {
		t.Fatalf("journal has %d entries, want only the create:\n%s", lines, data)
	}
	if !strings.Contains(string(data), `"op":"create"`) {
		t.Fatalf("journal = %s", data)
	}
}
