// Package server exposes a document space over TCP, playing the role
// of the Placeless server processes in the paper's deployment: "Document
// accesses also require content to be sent from the storage repository
// to at least one, possibly two, Placeless servers." Remote
// applications (and remote caches) talk to the server through Client,
// which mirrors the local Space API; notifier invalidations are pushed
// to connected clients over the same connection.
//
// Two wire protocols share one port. Protocol v1 (this file) is
// length-prefixed gob frames: every request carries a client-chosen
// ID, every response echoes it, and server-initiated notification
// frames use ID 0. Protocol v2 (protocol2.go) is a negotiated binary
// framing that carries blob payloads as raw byte ranges; the server
// sniffs the v2 magic preamble on each accepted connection and falls
// back to gob for everything else, so v1 clients keep working
// unchanged.
package server

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Op identifies a request type.
type Op int

// Protocol operations, mirroring the Space API the cache and
// applications need remotely.
const (
	// OpRead executes the read path and returns transformed content
	// plus the cache-facing metadata.
	OpRead Op = iota
	// OpWrite executes the write path with the request body.
	OpWrite
	// OpAttach attaches a named standard property (see
	// ParsePropertySpec in this package).
	OpAttach
	// OpDetach removes a property.
	OpDetach
	// OpAttachStatic attaches a static label.
	OpAttachStatic
	// OpAddReference gives a user a reference to a document.
	OpAddReference
	// OpCreateDocument registers a new document backed by the
	// server-side repository.
	OpCreateDocument
	// OpSubscribe registers the client for invalidation pushes for a
	// document (the remote notifier channel).
	OpSubscribe
	// OpForwardEvent redelivers an operation event (CacheWithEvents
	// support for remote caches).
	OpForwardEvent
	// OpStats returns server counters.
	OpStats
	// OpListActives lists active property names at a node.
	OpListActives
	// OpDescribe returns a document's configuration summary.
	OpDescribe
	// OpFind lists documents visible to the user that carry a static
	// property (Property = key, Value = optional value filter).
	OpFind
)

// String names the op.
func (o Op) String() string {
	names := [...]string{
		"read", "write", "attach", "detach", "attachStatic",
		"addReference", "createDocument", "subscribe", "forwardEvent",
		"stats", "listActives", "describe", "find",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Request is a client→server frame.
type Request struct {
	// ID is echoed in the response; must be non-zero.
	ID uint64
	// Op selects the operation.
	Op Op
	// Doc and User identify the document/reference.
	Doc, User string
	// Personal selects the reference level for property operations
	// (false = universal).
	Personal bool
	// Property names the property for attach/detach; for OpAttach it
	// is a standard-property spec (see ParsePropertySpec).
	Property string
	// Value carries the static property value or forwarded event
	// kind.
	Value string
	// Body carries write content.
	Body []byte
}

// Response is a server→client frame. Frames with ID 0 are
// notifications.
type Response struct {
	// ID matches the request; 0 marks a push notification.
	ID uint64
	// Err is the error string ("" = success).
	Err string
	// Body is the content for reads.
	Body []byte
	// Cacheability and CostNanos carry the read result's cache
	// metadata. Verifier code cannot cross the wire; remote clients
	// rely on subscription-based invalidation pushes instead (the
	// notifier mechanism), matching the paper's observation that the
	// number of caches per document is small enough to collaborate
	// with the Placeless system.
	Cacheability int
	CostNanos    int64
	// ExpiryUnixNanos is the earliest TTL deadline of the content as
	// UnixNano (0 = no TTL). Verifier code cannot cross the wire, but
	// a deadline can, so remote caches honor web-style freshness.
	ExpiryUnixNanos int64
	// Notification payload (ID 0): the affected document and user
	// ("" = all users of the document).
	NotifyDoc, NotifyUser string
	// Actives lists property names for OpListActives.
	Actives []string
	// Stats carries counter values for OpStats.
	Stats map[string]int64
	// Text carries a rendered description for OpDescribe.
	Text string
	// Matches carries the OpFind hits as structured fields, so static
	// property values containing tabs or newlines survive the wire
	// (the old format packed "doc\tvalue\tlevel" into one string and
	// corrupted such values on split).
	Matches []Match

	// bodyStream, when non-nil, carries the read body as a stream of
	// bodyLen bytes straight from the durable content-addressed tier.
	// Protocol v2 connections write it to the socket without staging;
	// v1's gob framing ignores unexported fields and marshals Body,
	// which stays populated either way so both framings serve
	// identical bytes.
	bodyStream io.Reader
	bodyLen    int64

	// bodyCRC, valid when bodyCRCOK (CRC zero is a legal checksum), is
	// the CRC-32C of the body content as stamped by the cache's blob
	// tier at intern time. The v2 frame writer combines it into the
	// payload trailer instead of re-scanning the body per response.
	bodyCRC   uint32
	bodyCRCOK bool
}

// Match is one property-search hit (OpFind).
type Match struct {
	// Doc is the matched document id.
	Doc string
	// Value is the matched static property's value.
	Value string
	// Level reports where the property is attached
	// ("universal"/"personal").
	Level string
}

// frame writes/reads gob values over a connection with a lock for
// concurrent writers.
type frameConn struct {
	c    net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
	once sync.Once
}

func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// newFrameConnRW is newFrameConn with the gob streams routed through r
// and w instead of the raw connection. The server uses it to feed the
// decoder from the protocol-sniffing buffered reader and to thread
// byte counters into both directions; c remains the handle for
// deadlines and close.
func newFrameConnRW(c net.Conn, r io.Reader, w io.Writer) *frameConn {
	return &frameConn{c: c, enc: gob.NewEncoder(w), dec: gob.NewDecoder(r)}
}

// send encodes one frame. writeTimeout > 0 arms a write deadline on
// the connection first, so a peer that stops draining its socket
// fails the writer instead of wedging it; zero leaves the connection
// deadline-free.
func (f *frameConn) send(v interface{}, writeTimeout time.Duration) error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if writeTimeout > 0 {
		_ = f.c.SetWriteDeadline(time.Now().Add(writeTimeout))
	}
	return f.enc.Encode(v)
}

func (f *frameConn) close() error {
	var err error
	f.once.Do(func() { err = f.c.Close() })
	return err
}

// isClosedErr reports whether err is the normal end of a connection.
func isClosedErr(err error) bool {
	if err == nil {
		return false
	}
	if err == io.EOF {
		return true
	}
	ne, ok := err.(net.Error)
	return ok && !ne.Timeout()
}
