package server

import (
	"math/rand"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// simServer starts a server on an in-process simnet listener and
// returns the network plus a dialer-injected client.
func simServer(t *testing.T, opts ...DialOption) (*simnet.Net, *Client, *docspace.Space) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	n := simnet.NewNet(clk, rand.New(rand.NewSource(11)))
	backing := repo.NewMem("srv", clk, simnet.NewPath("loop", 1))
	space := docspace.New(clk, repo.NewDMS("dms", clk, simnet.NewPath("loop", 2)))
	srv := New(space, backing)
	ln := n.Listen("srv")
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	opts = append([]DialOption{WithDialer(n.Dial), WithJitterSeed(7)}, opts...)
	client, err := Dial("srv", opts...)
	if err != nil {
		t.Fatal(err)
	}
	// Ping once so Serve is known to be accepting before the test (and
	// its cleanup) proceeds.
	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return n, client, space
}

func TestDialWithInjectedDialer(t *testing.T) {
	_, c, _ := simServer(t)
	if err := c.CreateDocument("d", "u", []byte("over simnet")); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.Read("d", "u")
	if err != nil || string(data) != "over simnet" {
		t.Fatalf("Read = %q, %v", data, err)
	}
}

func TestInjectedDialerReconnects(t *testing.T) {
	n, c, _ := simServer(t,
		WithReconnect(time.Millisecond, 4*time.Millisecond),
		WithCallTimeout(2*time.Second))
	if err := c.CreateDocument("d", "u", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	n.BreakConns()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if data, _, err := c.Read("d", "u"); err == nil && string(data) == "v1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client did not recover through the injected dialer")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if c.Reconnects() == 0 {
		t.Fatal("recovery happened without a recorded reconnect")
	}
}

func TestWithJitterSeedSeedsBackoffRNG(t *testing.T) {
	mk := func() *Client {
		_, c, _ := simServer(t)
		return c
	}
	a, b := mk(), mk()
	// White-box: both clients were dialed with the same jitter seed, so
	// their backoff PRNGs must produce identical draws. (Neither client
	// is reconnecting here, so reading rng races with nothing.)
	for i := 0; i < 8; i++ {
		if va, vb := a.rng.Int63(), b.rng.Int63(); va != vb {
			t.Fatalf("draw %d diverged: %d != %d", i, va, vb)
		}
	}
	if !a.cfg.jitterSeeded || a.cfg.jitterSeed != 7 {
		t.Fatalf("jitter seed not recorded: %+v", a.cfg)
	}
}

func TestPendingInvalidations(t *testing.T) {
	_, c, space := simServer(t)
	if err := c.CreateDocument("d", "u", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	c.OnInvalidate(func(doc, user string) {
		entered <- struct{}{}
		<-block
	})
	if err := c.Subscribe("d", "u"); err != nil {
		t.Fatal(err)
	}
	// Two server-side writes: the first push occupies the (blocked)
	// handler, the second must sit in the queue.
	if err := space.WriteDocument("d", "u", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := space.WriteDocument("d", "u", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	<-entered // handler is now wedged on the first push
	deadline := time.Now().Add(5 * time.Second)
	for c.PendingInvalidations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second push never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	for c.PendingInvalidations() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
}
