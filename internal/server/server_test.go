package server

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

// testServer starts a server on a loopback listener and returns a
// connected client. Dial options (e.g. WithProtocolVersion) apply to
// the returned client.
func testServer(t *testing.T, opts ...DialOption) (*Server, *Client, *docspace.Space) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	backing := repo.NewMem("srv", clk, simnet.NewPath("loop", 1))
	space := docspace.New(clk, repo.NewDMS("dms", clk, simnet.NewPath("loop", 2)))
	srv := New(space, backing)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	// Wait for the listener.
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start")
	}
	client, err := Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, client, space
}

func TestCreateReadWriteRoundTrip(t *testing.T) {
	_, c, _ := testServer(t)
	if err := c.CreateDocument("d", "eyal", []byte("hello over tcp")); err != nil {
		t.Fatal(err)
	}
	data, meta, err := c.Read("d", "eyal")
	if err != nil || string(data) != "hello over tcp" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if meta.Cost < 0 {
		t.Fatalf("meta = %+v", meta)
	}
	if err := c.Write("d", "eyal", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	data, _, _ = c.Read("d", "eyal")
	if string(data) != "updated" {
		t.Fatalf("after write: %q", data)
	}
}

func TestReadErrorsPropagate(t *testing.T) {
	_, c, _ := testServer(t)
	if _, _, err := c.Read("ghost", "u"); err == nil || !strings.Contains(err.Error(), "no such document") {
		t.Fatalf("err = %v", err)
	}
}

func TestRemotePropertyAttachment(t *testing.T) {
	_, c, _ := testServer(t)
	c.CreateDocument("d", "eyal", []byte("teh quick brown fox"))
	if err := c.Attach("d", "eyal", true, "spell-correct"); err != nil {
		t.Fatal(err)
	}
	data, _, _ := c.Read("d", "eyal")
	if !strings.HasPrefix(string(data), "the quick") {
		t.Fatalf("spell correction missing: %q", data)
	}
	names, err := c.ListActives("d", "eyal", true)
	if err != nil || len(names) != 1 || names[0] != "spell-correct" {
		t.Fatalf("actives = %v, %v", names, err)
	}
	if err := c.Detach("d", "eyal", true, "spell-correct"); err != nil {
		t.Fatal(err)
	}
	data, _, _ = c.Read("d", "eyal")
	if !strings.HasPrefix(string(data), "teh quick") {
		t.Fatalf("detach ineffective: %q", data)
	}
}

func TestPersonalVisibilityOverWire(t *testing.T) {
	_, c, _ := testServer(t)
	c.CreateDocument("d", "eyal", []byte("shout"))
	if err := c.AddReference("d", "paul"); err != nil {
		t.Fatal(err)
	}
	c.Attach("d", "paul", true, "uppercase")
	eyal, _, _ := c.Read("d", "eyal")
	paul, _, _ := c.Read("d", "paul")
	if string(eyal) != "shout" || string(paul) != "SHOUT" {
		t.Fatalf("eyal=%q paul=%q", eyal, paul)
	}
}

func TestStaticAttachment(t *testing.T) {
	_, c, space := testServer(t)
	c.CreateDocument("d", "eyal", []byte("x"))
	if err := c.AttachStatic("d", "", false, "workshop", "1999"); err != nil {
		t.Fatal(err)
	}
	statics, _ := space.Statics("d", "", docspace.Universal)
	if len(statics) != 1 || statics[0].Key != "workshop" {
		t.Fatalf("statics = %v", statics)
	}
}

func TestSubscriptionPushesInvalidation(t *testing.T) {
	_, c, _ := testServer(t)
	c.CreateDocument("d", "eyal", []byte("v1"))
	c.AddReference("d", "doug")

	var mu sync.Mutex
	var got [][2]string
	notified := make(chan struct{}, 8)
	c.OnInvalidate(func(doc, user string) {
		mu.Lock()
		got = append(got, [2]string{doc, user})
		mu.Unlock()
		notified <- struct{}{}
	})
	if err := c.Subscribe("d", "eyal"); err != nil {
		t.Fatal(err)
	}
	// A write by another user must push a base-level invalidation.
	if err := c.Write("d", "doug", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-notified:
	case <-time.After(2 * time.Second):
		t.Fatal("no invalidation push received")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 || got[0][0] != "d" || got[0][1] != "" {
		t.Fatalf("pushes = %v", got)
	}
}

func TestSubscriptionPersonalPropertyPush(t *testing.T) {
	_, c, space := testServer(t)
	c.CreateDocument("d", "eyal", []byte("v1"))
	notified := make(chan [2]string, 8)
	c.OnInvalidate(func(doc, user string) { notified <- [2]string{doc, user} })
	if err := c.Subscribe("d", "eyal"); err != nil {
		t.Fatal(err)
	}
	// Personal property change on the subscribed reference.
	if err := c.Attach("d", "eyal", true, "uppercase"); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-notified:
		if p[0] != "d" || p[1] != "eyal" {
			t.Fatalf("push = %v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no personal-property push")
	}
	_ = space
}

func TestForwardEventOverWire(t *testing.T) {
	_, c, space := testServer(t)
	c.CreateDocument("d", "eyal", []byte("x"))
	// Attach an audit trail server-side.
	if err := c.Attach("d", "", false, "audit-trail"); err != nil {
		t.Fatal(err)
	}
	if err := c.ForwardEvent("d", "eyal", "getInputStream"); err != nil {
		t.Fatal(err)
	}
	if err := c.ForwardEvent("d", "eyal", "bogusKind"); err == nil {
		t.Fatal("bogus event kind accepted")
	}
	_ = space
}

func TestDescribeOverWire(t *testing.T) {
	_, c, _ := testServer(t)
	c.CreateDocument("d", "eyal", []byte("x"))
	c.Attach("d", "eyal", true, "uppercase")
	text, err := c.Describe("d")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"document d", "owner eyal", "uppercase"} {
		if !strings.Contains(text, want) {
			t.Fatalf("describe missing %q:\n%s", want, text)
		}
	}
	if _, err := c.Describe("ghost"); err == nil {
		t.Fatal("describe of missing doc succeeded")
	}
}

func TestFindOverWire(t *testing.T) {
	_, c, _ := testServer(t)
	c.CreateDocument("a", "u", []byte("1"))
	c.CreateDocument("b", "u", []byte("2"))
	c.AttachStatic("a", "", false, "tag", "keep")
	c.AttachStatic("b", "", false, "tag", "drop")
	matches, err := c.Find("u", "tag", "")
	if err != nil || len(matches) != 2 {
		t.Fatalf("matches = %v, %v", matches, err)
	}
	matches, err = c.Find("u", "tag", "keep")
	if err != nil || len(matches) != 1 || matches[0].Doc != "a" || matches[0].Value != "keep" || matches[0].Level != "universal" {
		t.Fatalf("filtered matches = %+v, %v", matches, err)
	}
	if matches, _ := c.Find("stranger", "tag", ""); len(matches) != 0 {
		t.Fatalf("stranger sees %v", matches)
	}
}

func TestStatsOverWire(t *testing.T) {
	_, c, _ := testServer(t)
	c.CreateDocument("d", "eyal", []byte("x"))
	c.Read("d", "eyal")
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["requests"] < 2 || stats["connections"] != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, c, _ := testServer(t)
	c.CreateDocument("d", "eyal", []byte("shared"))
	addr := srv.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for j := 0; j < 20; j++ {
				data, _, err := cl.Read("d", "eyal")
				if err != nil || string(data) != "shared" {
					t.Errorf("read = %q, %v", data, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestClientClosedCalls(t *testing.T) {
	_, c, _ := testServer(t)
	c.Close()
	if _, _, err := c.Read("d", "u"); err == nil {
		t.Fatal("Read on closed client succeeded")
	}
}

func TestDisconnectDetachesNotifiers(t *testing.T) {
	srv, c, space := testServer(t)
	c.CreateDocument("d", "eyal", []byte("x"))
	if err := c.Subscribe("d", "eyal"); err != nil {
		t.Fatal(err)
	}
	actives, _ := space.Actives("d", "", docspace.Universal)
	if len(actives) == 0 {
		t.Fatal("no notifier installed")
	}
	c.Close()
	// The server notices the disconnect asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		actives, _ = space.Actives("d", "", docspace.Universal)
		if len(actives) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(actives) != 0 {
		t.Fatalf("notifiers leaked after disconnect: %v", actives)
	}
	_ = srv
}

func TestParsePropertySpecs(t *testing.T) {
	good := []string{
		"spell-correct", "spell-correct:5", "translate-fr", "uppercase:2",
		"rot13", "line-number", "summarize:3", "summarize:3:10",
		"watermark:eyal", "audit-trail", "versioning", "qos:250:50",
	}
	for _, spec := range good {
		if _, err := ParsePropertySpec(spec); err != nil {
			t.Errorf("ParsePropertySpec(%q) = %v", spec, err)
		}
	}
	bad := []string{
		"", "unknown", "summarize", "summarize:x", "summarize:0",
		"watermark", "watermark:", "qos", "qos:250", "qos:x:2",
		"qos:250:0.5", "spell-correct:notanumber", "uppercase:-1",
	}
	for _, spec := range bad {
		if _, err := ParsePropertySpec(spec); err == nil {
			t.Errorf("ParsePropertySpec(%q) accepted malformed spec", spec)
		}
	}
	if len(KnownPropertySpecs()) < 10 {
		t.Fatal("spec help list incomplete")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpStats.String() != "stats" {
		t.Fatal("Op.String broken")
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Fatal("unknown op string")
	}
}

func TestServeAfterCloseRejected(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	space := docspace.New(clk, nil)
	srv := New(space, repo.NewMem("b", clk, simnet.NewPath("p", 1)))
	srv.Close()
	if err := srv.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Fatal("Serve after Close succeeded")
	}
	if err := errors.Unwrap(nil); err != nil {
		t.Fatal("impossible")
	}
}

// TestReadInto covers the caller-supplied-buffer read path: body
// decoded in place on v2 (returned slice aliases the buffer), graceful
// fallback to a fresh allocation when the buffer is too small, and
// plain correctness on v1 where gob owns its allocations.
func TestReadInto(t *testing.T) {
	body := make([]byte, 24<<10)
	for i := range body {
		body[i] = byte(i * 31)
	}
	for _, proto := range []int{ProtoV1, ProtoV2} {
		_, c, _ := testServer(t, WithProtocolVersion(proto))
		if err := c.CreateDocument("blob", "u", body); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(body))
		got, _, err := c.ReadInto("blob", "u", buf)
		if err != nil {
			t.Fatalf("proto %d: %v", proto, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("proto %d: body mismatch (%d bytes)", proto, len(got))
		}
		if proto == ProtoV2 && &got[0] != &buf[0] {
			t.Fatalf("proto %d: ReadInto did not decode into the caller's buffer", proto)
		}
		// A too-small buffer must not be used (and must not corrupt the
		// result); the body arrives in a fresh allocation instead.
		small := make([]byte, 16)
		got, _, err = c.ReadInto("blob", "u", small)
		if err != nil || !bytes.Equal(got, body) {
			t.Fatalf("proto %d small buf: %d bytes, %v", proto, len(got), err)
		}
		if len(small) >= 1 && len(got) >= 1 && &got[0] == &small[0] {
			t.Fatalf("proto %d: body aliased an undersized buffer", proto)
		}
		// nil buffer behaves exactly like Read.
		got, _, err = c.ReadInto("blob", "u", nil)
		if err != nil || !bytes.Equal(got, body) {
			t.Fatalf("proto %d nil buf: %d bytes, %v", proto, len(got), err)
		}
	}
}

// TestReadIntoConcurrent hammers ReadInto from many goroutines with
// per-goroutine buffers over one pipelined v2 connection — the E15
// workload shape — so the claim/deliver handoff runs under the race
// detector.
func TestReadIntoConcurrent(t *testing.T) {
	body := make([]byte, 8<<10)
	for i := range body {
		body[i] = byte(i ^ (i >> 7))
	}
	_, c, _ := testServer(t, WithProtocolVersion(ProtoV2))
	if err := c.CreateDocument("blob", "u", body); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, len(body))
			for i := 0; i < 50; i++ {
				got, _, err := c.ReadInto("blob", "u", buf)
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(got, body) {
					errc <- errors.New("body mismatch under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestReadIntoCloseDuringFlight closes the client while ReadInto calls
// are in flight: callers must unblock with a typed error and never
// race the decoder on their buffers (the claimed-call teardown path).
func TestReadIntoCloseDuringFlight(t *testing.T) {
	body := make([]byte, 64<<10)
	_, c, _ := testServer(t, WithProtocolVersion(ProtoV2))
	if err := c.CreateDocument("blob", "u", body); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, len(body))
			for {
				if _, _, err := c.ReadInto("blob", "u", buf); err != nil {
					if !errors.Is(err, ErrClientClosed) && !errors.Is(err, ErrDisconnected) {
						t.Errorf("unexpected error: %v", err)
					}
					// Safe to touch the buffer now: the claimed-call
					// protocol guarantees the decoder is done with it.
					buf[0] = 1
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	c.Close()
	wg.Wait()
}
