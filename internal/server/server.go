package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/sig"
	"placeless/internal/store"
)

// serverWriteTimeout bounds every server→client frame write, so one
// wedged client (accepted socket, never drained) cannot stall the
// notifier callbacks that push invalidations from inside the space's
// event dispatch.
const serverWriteTimeout = 10 * time.Second

// Server exposes one document space over TCP.
type Server struct {
	space   *docspace.Space
	backing repo.Repository
	cache   *core.Cache // optional server-side cache for reads

	mu         sync.Mutex
	ln         net.Listener   // first listener (Addr); see lns for the full set
	lns        []net.Listener // every listener Serve was handed (cluster nodes share one server)
	conns      map[*serverConn]bool
	closed     bool
	requests   int64
	notifies   int64
	linkCost   time.Duration
	journal    *Journal
	blobStore  *store.Store // optional zero-copy blob source for v2 reads
	streamMin  int64        // minimum body size streamed from blobStore
	legacyWire bool         // pin to v1 gob (downgrade testing)

	bytesSent     atomic.Int64 // bytes written to client sockets
	bytesRecv     atomic.Int64 // bytes read from client sockets
	streamedReads atomic.Int64 // v2 read responses streamed from the store
}

// defaultStreamMin is the smallest read body the server streams from
// the disk tier instead of writing the in-memory copy: below this the
// extra pread costs more than the copy saves.
const defaultStreamMin = 256 << 10

// New returns a server for space. backing is the repository used to
// store content of documents created via OpCreateDocument.
func New(space *docspace.Space, backing repo.Repository) *Server {
	return &Server{space: space, backing: backing, conns: make(map[*serverConn]bool), streamMin: defaultStreamMin}
}

// NewCached returns a server whose reads are served through a
// server-side content cache — the second cache placement the paper's
// prototype explored ("caches co-located with the Placeless server and
// on the machine where applications are run"). Writes and property
// operations go straight to the space; the cache's own notifiers keep
// it consistent.
func NewCached(space *docspace.Space, backing repo.Repository, cache *core.Cache) *Server {
	s := New(space, backing)
	s.cache = cache
	return s
}

// serverConn is one accepted client connection; serve decides per
// connection whether it speaks v1 gob (fc) or binary v2 (fw).
type serverConn struct {
	srv *Server
	raw net.Conn

	closeOnce sync.Once

	mu        sync.Mutex
	fc        *frameConn      // v1 gob framing (nil on v2 connections)
	fw        *frameWriter    // v2 frame writer (nil on v1 connections)
	notifiers []spot          // notifiers installed for this connection
	baseSubs  map[string]bool // docs with a base notifier installed
	refSubs   map[string]bool // doc\x00user refs with a notifier installed
}

// spot records where a connection's notifier lives so it can be
// detached at disconnect.
type spot struct {
	doc, user string
	level     docspace.Level
	name      string
}

// remoteNotifier is the machinery-marked notifier attached on behalf
// of subscribed clients.
type remoteNotifier struct{ *property.Notifier }

// CacheMachinery marks remote-subscription notifiers as cache
// machinery.
func (remoteNotifier) CacheMachinery() {}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean Close. Serve may be called concurrently with several
// listeners — a cluster deployment gives each simulated node its own
// endpoint on one shared server — and Close tears all of them down.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: closed")
	}
	if s.ln == nil {
		s.ln = ln
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sc := &serverConn{srv: s, raw: c}
		s.mu.Lock()
		s.conns[sc] = true
		s.mu.Unlock()
		go sc.serve()
	}
}

// Counters returns a snapshot of the server's wire-level counters:
// requests handled, notifications pushed, and currently open
// connections. It is the in-process accessor behind OpStats, used by
// the observability registry.
func (s *Server) Counters() (requests, notifications, connections int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests, s.notifies, int64(len(s.conns))
}

// Addr returns the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and tears down all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.lns
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.teardown()
	}
	return nil
}

// countingReader counts bytes flowing from a client socket.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// countingWriter counts bytes written to a client socket (the v1 gob
// path; v2 counts at the frame layer so net.Buffers still reaches the
// raw connection's writev).
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// serve sniffs the protocol version and runs the request loop for one
// connection. A v2 client leads with helloMagic; anything else is fed,
// unread, to the v1 gob decoder.
func (c *serverConn) serve() {
	defer c.teardown()
	s := c.srv
	br := bufio.NewReaderSize(&countingReader{r: c.raw, n: &s.bytesRecv}, 32<<10)
	if !s.legacyOnly() {
		// A short or failed peek flows through to the gob decoder,
		// which reports the same bytes (or error) on its first read.
		peek, err := br.Peek(len(helloMagic))
		if err == nil && bytes.Equal(peek, helloMagic[:]) {
			if _, err := br.Discard(len(helloMagic)); err != nil {
				return
			}
			_ = c.raw.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
			if _, err := c.raw.Write(helloAck[:]); err != nil {
				return
			}
			_ = c.raw.SetWriteDeadline(time.Time{})
			s.bytesSent.Add(int64(len(helloAck)))
			fw := newFrameWriter(c.raw, serverWriteTimeout, nil, &s.bytesSent, func(error) { c.closeRaw() })
			c.mu.Lock()
			c.fw = fw
			c.mu.Unlock()
			c.serveV2(br)
			return
		}
	}
	fc := newFrameConnRW(c.raw, br, &countingWriter{w: c.raw, n: &s.bytesSent})
	c.mu.Lock()
	c.fc = fc
	c.mu.Unlock()
	c.serveV1(fc)
}

// serveV1 is the legacy loop: strictly sequential decode→handle→send.
func (c *serverConn) serveV1(fc *frameConn) {
	for {
		var req Request
		if err := fc.dec.Decode(&req); err != nil {
			return // disconnect
		}
		resp := c.handle(&req)
		resp.ID = req.ID
		if err := fc.send(resp, serverWriteTimeout); err != nil {
			return
		}
	}
}

// maxConcurrentHandlers bounds in-flight pipelined requests per v2
// connection; excess decode stalls, which backpressures the client
// through TCP.
const maxConcurrentHandlers = 32

// serveV2 is the pipelined loop: requests decode on this goroutine and
// execute concurrently, each response enqueued to the connection's
// single frame writer as it finishes. Responses may therefore complete
// out of order — call IDs, not arrival order, correlate them, exactly
// what the client's pending-call table expects.
func (c *serverConn) serveV2(br *bufio.Reader) {
	var wg sync.WaitGroup
	// In-flight handlers must finish before teardown detaches this
	// connection's notifiers: a subscribe still executing after the
	// teardown snapshot would leak its notifier attachment.
	defer wg.Wait()
	sem := make(chan struct{}, maxConcurrentHandlers)
	for {
		req, err := readRequestFrame(br)
		if err != nil {
			return // disconnect (or corrupt stream — same remedy)
		}
		if req.Op == OpRead {
			// Warm-hit fast path: a clean cache hit is answered inline
			// on the decode loop — no handler goroutine, no semaphore
			// hand-off. Anything that might block (a miss, a rejected
			// verifier, simulated hit cost) falls through to the
			// concurrent path below. Burst detection picks the write
			// route: with more pipelined requests already buffered the
			// response is queued so the writer coalesces the run into
			// one writev; with the pipe drained (lockstep caller) it is
			// written inline, skipping the writer hand-off.
			if resp, ok := c.tryFastRead(req); ok {
				f, err := encodeResponseFrame(OpRead, resp)
				if err != nil {
					f, _ = encodeResponseFrame(OpRead, &Response{ID: req.ID, Err: err.Error()})
				}
				if br.Buffered() > 0 {
					_ = c.fw.enqueue(f)
				} else {
					_ = c.fw.send(f)
				}
				continue
			}
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(req *Request) {
			defer wg.Done()
			defer func() { <-sem }()
			resp := c.handle(req)
			resp.ID = req.ID
			if resp.bodyStream != nil {
				c.srv.streamedReads.Add(1)
			}
			f, err := encodeResponseFrame(req.Op, resp)
			if err != nil {
				f, _ = encodeResponseFrame(req.Op, &Response{ID: req.ID, Err: err.Error()})
			}
			_ = c.fw.send(f)
		}(req)
	}
}

// tryFastRead probes the cache for a clean warm hit and builds the
// read response inline. ok == false means "use the full handler path":
// no cache, a configured link cost to charge, or any outcome other
// than a verified hit. Bookkeeping mirrors handle() for the cases it
// short-circuits.
func (c *serverConn) tryFastRead(req *Request) (*Response, bool) {
	s := c.srv
	s.mu.Lock()
	cache, link := s.cache, s.linkCost
	s.mu.Unlock()
	if cache == nil || link > 0 {
		return nil, false
	}
	data, info, ok := cache.ReadSharedHit(req.Doc, req.User)
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()
	resp := &Response{
		ID:              req.ID,
		Body:            data,
		Cacheability:    int(info.Cacheability),
		CostNanos:       int64(info.Cost),
		ExpiryUnixNanos: expiryNanos(info.Expiry),
		bodyCRC:         info.BodyCRC32C,
		bodyCRCOK:       info.BodyCRCOK,
	}
	// No disk-tier stream here: the bytes are memory-resident (they
	// alias the cache's blob storage), so one writev straight from the
	// blob beats re-reading the segment file per response. Streaming
	// stays on the miss/promote path, where the body's home is disk.
	return resp, true
}

// sendPush delivers one invalidation push over whichever framing the
// connection speaks.
func (c *serverConn) sendPush(doc, user string) error {
	c.mu.Lock()
	fw, fc := c.fw, c.fc
	c.mu.Unlock()
	if fw != nil {
		f, err := encodeResponseFrame(opInvalidate, &Response{NotifyDoc: doc, NotifyUser: user})
		if err != nil {
			return err
		}
		return fw.send(f)
	}
	if fc != nil {
		return fc.send(&Response{ID: 0, NotifyDoc: doc, NotifyUser: user}, serverWriteTimeout)
	}
	return errors.New("server: connection not established")
}

// closeRaw closes the underlying socket once.
func (c *serverConn) closeRaw() { c.closeOnce.Do(func() { c.raw.Close() }) }

// teardown detaches the connection's notifiers and unregisters it.
func (c *serverConn) teardown() {
	c.mu.Lock()
	fw := c.fw
	spots := c.notifiers
	c.notifiers = nil
	c.mu.Unlock()
	if fw != nil {
		fw.close()
	}
	c.closeRaw()
	for _, sp := range spots {
		_ = c.srv.space.Detach(sp.doc, sp.user, sp.level, sp.name)
	}
	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
}

// fail builds an error response.
func fail(err error) *Response { return &Response{Err: err.Error()} }

// SetLinkCost charges d of simulated time per handled request,
// modeling the application→server network hop in placement
// experiments (real deployments leave it zero and pay the actual
// network).
func (s *Server) SetLinkCost(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.linkCost = d
}

// SetStore gives the server a durable content-addressed tier to stream
// large v2 read bodies from: a cached read whose bytes also live in st
// is written to the socket straight from the segment file (pooled
// chunks, no re-encode) instead of from the heap copy. Safe to call
// before Serve; typically the same store the cache was built with.
func (s *Server) SetStore(st *store.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobStore = st
}

// SetStreamThreshold overrides the minimum body size streamed from the
// store (testing hook; the default is defaultStreamMin).
func (s *Server) SetStreamThreshold(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streamMin = n
}

// SetLegacyProtocolOnly pins the server to the v1 gob protocol,
// emulating a pre-v2 binary so downgrade negotiation can be exercised.
func (s *Server) SetLegacyProtocolOnly(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.legacyWire = v
}

func (s *Server) legacyOnly() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.legacyWire
}

// WireBytes returns total bytes written to and read from client
// sockets across both protocol versions.
func (s *Server) WireBytes() (sent, received int64) {
	return s.bytesSent.Load(), s.bytesRecv.Load()
}

// StreamedReads returns how many v2 read responses were streamed from
// the disk tier instead of the heap copy (testing/observability hook).
func (s *Server) StreamedReads() int64 { return s.streamedReads.Load() }

// maybeAttachStream arms the zero-copy path on a read response: when
// the disk tier holds the exact bytes just served and the body is
// large enough to be worth a pread, v2 connections stream it from the
// segment file. The in-memory Body stays set — v1 gob framing and any
// error path still use it. Streaming trusts the store's open-time
// CRC+signature scan rather than re-verifying per read; GetBlob's
// per-read verification still guards the cache-promotion path.
func (s *Server) maybeAttachStream(resp *Response, sg sig.Signature, n int) {
	s.mu.Lock()
	st := s.blobStore
	min := s.streamMin
	s.mu.Unlock()
	if st == nil || sg.IsZero() || int64(n) < min {
		return
	}
	br, err := st.OpenBlob(sg)
	if err != nil || br.Size() != int64(n) {
		return
	}
	resp.bodyStream = br
	resp.bodyLen = br.Size()
}

// handle dispatches one request from a connection.
func (c *serverConn) handle(req *Request) *Response {
	s := c.srv
	s.mu.Lock()
	s.requests++
	link := s.linkCost
	s.mu.Unlock()
	if link > 0 {
		s.space.Clock().Sleep(link)
	}
	if req.Op == OpSubscribe {
		return c.subscribe(req)
	}
	resp := s.apply(req)
	if resp.Err == "" {
		s.journalRequest(req)
	}
	return resp
}

// apply executes a request that needs no connection state; journal
// replay uses it directly.
func (s *Server) apply(req *Request) *Response {
	level := docspace.Universal
	if req.Personal {
		level = docspace.Personal
	}

	switch req.Op {
	case OpRead:
		if s.cache != nil {
			data, info, err := s.cache.ReadWithInfo(req.Doc, req.User)
			if err != nil {
				return fail(err)
			}
			resp := &Response{
				Body:            data,
				Cacheability:    int(info.Cacheability),
				CostNanos:       int64(info.Cost),
				ExpiryUnixNanos: expiryNanos(info.Expiry),
			}
			s.maybeAttachStream(resp, info.Signature, len(data))
			return resp
		}
		data, res, err := s.space.ReadDocument(req.Doc, req.User)
		if err != nil {
			return fail(err)
		}
		return &Response{
			Body:            data,
			Cacheability:    int(res.Cacheability),
			CostNanos:       int64(res.Cost),
			ExpiryUnixNanos: expiryNanos(minTTLExpiry(res.Verifiers)),
		}

	case OpWrite:
		if err := s.space.WriteDocument(req.Doc, req.User, req.Body); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpCreateDocument:
		path := "/" + req.Doc
		if err := s.backing.Store(path, req.Body); err != nil {
			return fail(err)
		}
		bits := &property.RepoBitProvider{Repo: s.backing, Path: path}
		if _, err := s.space.CreateDocument(req.Doc, req.User, bits); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpAddReference:
		if _, err := s.space.AddReference(req.Doc, req.User); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpAttach:
		p, err := ParsePropertySpec(req.Property)
		if err != nil {
			return fail(err)
		}
		if err := s.space.Attach(req.Doc, req.User, level, p); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpDetach:
		if err := s.space.Detach(req.Doc, req.User, level, req.Property); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpAttachStatic:
		st := property.Static{Key: req.Property, Value: req.Value}
		if err := s.space.AttachStatic(req.Doc, req.User, level, st); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpForwardEvent:
		kind, err := parseEventKind(req.Value)
		if err != nil {
			return fail(err)
		}
		if err := s.space.ForwardEvent(req.Doc, req.User, kind); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpStats:
		s.mu.Lock()
		stats := map[string]int64{
			"requests":      s.requests,
			"notifications": s.notifies,
			"connections":   int64(len(s.conns)),
		}
		s.mu.Unlock()
		return &Response{Stats: stats}

	case OpListActives:
		names, err := s.space.Actives(req.Doc, req.User, level)
		if err != nil {
			return fail(err)
		}
		return &Response{Actives: names}

	case OpDescribe:
		d, err := s.space.Describe(req.Doc)
		if err != nil {
			return fail(err)
		}
		return &Response{Text: d.String()}

	case OpFind:
		var matches []Match
		for _, m := range s.space.FindByStatic(req.User, req.Property, req.Value) {
			matches = append(matches, Match{Doc: m.Doc, Value: m.Value, Level: fmt.Sprint(m.Level)})
		}
		return &Response{Matches: matches}

	default:
		return fail(fmt.Errorf("server: unknown op %v", req.Op))
	}
}

// subscribe installs base and reference notifiers pushing
// invalidations to this connection.
func (c *serverConn) subscribe(req *Request) *Response {
	s := c.srv
	push := func(doc, user string) {
		s.mu.Lock()
		s.notifies++
		s.mu.Unlock()
		_ = c.sendPush(doc, user)
	}
	c.mu.Lock()
	if c.baseSubs == nil {
		c.baseSubs = make(map[string]bool)
		c.refSubs = make(map[string]bool)
	}
	needBase := !c.baseSubs[req.Doc]
	if needBase {
		c.baseSubs[req.Doc] = true
	}
	refKey := req.Doc + "\x00" + req.User
	needRef := req.User != "" && !c.refSubs[refKey]
	if needRef {
		c.refSubs[refKey] = true
	}
	c.mu.Unlock()

	if needBase {
		baseName := fmt.Sprintf("remote:%p:%s:base", c, req.Doc)
		base := remoteNotifier{property.NewNotifier(baseName, func(e event.Event) {
			push(e.Doc, "") // base-level change: all users affected
		}, event.ContentWritten, event.SetProperty, event.RemoveProperty,
			event.ModifyProperty, event.ReorderProperties, event.ExternalChange)}
		base.Predicate = contentAffecting
		if err := s.space.Attach(req.Doc, "", docspace.Universal, base); err != nil {
			return fail(err)
		}
		c.mu.Lock()
		c.notifiers = append(c.notifiers, spot{doc: req.Doc, level: docspace.Universal, name: baseName})
		c.mu.Unlock()
	}

	if needRef {
		refName := fmt.Sprintf("remote:%p:%s:%s", c, req.Doc, req.User)
		ref := remoteNotifier{property.NewNotifier(refName, func(e event.Event) {
			push(e.Doc, e.User)
		}, event.SetProperty, event.RemoveProperty,
			event.ModifyProperty, event.ReorderProperties)}
		ref.Predicate = contentAffecting
		if err := s.space.Attach(req.Doc, req.User, docspace.Personal, ref); err != nil {
			return fail(err)
		}
		c.mu.Lock()
		c.notifiers = append(c.notifiers, spot{doc: req.Doc, user: req.User, level: docspace.Personal, name: refName})
		c.mu.Unlock()
	}
	return &Response{}
}

// contentAffecting mirrors the cache's semantic notifier predicate:
// only content-capable changes invalidate.
func contentAffecting(e event.Event) bool {
	switch e.Kind {
	case event.ContentWritten, event.ReorderProperties, event.ExternalChange:
		return true
	case event.SetProperty, event.RemoveProperty, event.ModifyProperty:
		return e.Detail == docspace.ClassActive
	default:
		return false
	}
}

// expiryNanos converts a TTL deadline to wire form (0 = none).
func expiryNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// minTTLExpiry extracts the earliest TTL deadline from a verifier set.
func minTTLExpiry(verifiers []property.Verifier) time.Time {
	var min time.Time
	for _, v := range verifiers {
		if ttl, ok := v.(property.TTLVerifier); ok {
			if min.IsZero() || ttl.Expiry.Before(min) {
				min = ttl.Expiry
			}
		}
	}
	return min
}

// parseEventKind maps wire names to event kinds for ForwardEvent.
func parseEventKind(name string) (event.Kind, error) {
	for _, k := range event.Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("server: unknown event kind %q", name)
}
