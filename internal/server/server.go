package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/repo"
)

// serverWriteTimeout bounds every server→client frame write, so one
// wedged client (accepted socket, never drained) cannot stall the
// notifier callbacks that push invalidations from inside the space's
// event dispatch.
const serverWriteTimeout = 10 * time.Second

// Server exposes one document space over TCP.
type Server struct {
	space   *docspace.Space
	backing repo.Repository
	cache   *core.Cache // optional server-side cache for reads

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*serverConn]bool
	closed   bool
	requests int64
	notifies int64
	linkCost time.Duration
	journal  *Journal
}

// New returns a server for space. backing is the repository used to
// store content of documents created via OpCreateDocument.
func New(space *docspace.Space, backing repo.Repository) *Server {
	return &Server{space: space, backing: backing, conns: make(map[*serverConn]bool)}
}

// NewCached returns a server whose reads are served through a
// server-side content cache — the second cache placement the paper's
// prototype explored ("caches co-located with the Placeless server and
// on the machine where applications are run"). Writes and property
// operations go straight to the space; the cache's own notifiers keep
// it consistent.
func NewCached(space *docspace.Space, backing repo.Repository, cache *core.Cache) *Server {
	s := New(space, backing)
	s.cache = cache
	return s
}

// serverConn is one accepted client connection.
type serverConn struct {
	srv *Server
	fc  *frameConn

	mu        sync.Mutex
	notifiers []spot          // notifiers installed for this connection
	baseSubs  map[string]bool // docs with a base notifier installed
	refSubs   map[string]bool // doc\x00user refs with a notifier installed
}

// spot records where a connection's notifier lives so it can be
// detached at disconnect.
type spot struct {
	doc, user string
	level     docspace.Level
	name      string
}

// remoteNotifier is the machinery-marked notifier attached on behalf
// of subscribed clients.
type remoteNotifier struct{ *property.Notifier }

// CacheMachinery marks remote-subscription notifiers as cache
// machinery.
func (remoteNotifier) CacheMachinery() {}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sc := &serverConn{srv: s, fc: newFrameConn(c)}
		s.mu.Lock()
		s.conns[sc] = true
		s.mu.Unlock()
		go sc.serve()
	}
}

// Counters returns a snapshot of the server's wire-level counters:
// requests handled, notifications pushed, and currently open
// connections. It is the in-process accessor behind OpStats, used by
// the observability registry.
func (s *Server) Counters() (requests, notifications, connections int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests, s.notifies, int64(len(s.conns))
}

// Addr returns the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and tears down all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.teardown()
	}
	return nil
}

// serve runs the request loop for one connection.
func (c *serverConn) serve() {
	defer c.teardown()
	for {
		var req Request
		if err := c.fc.dec.Decode(&req); err != nil {
			return // disconnect
		}
		resp := c.handle(&req)
		resp.ID = req.ID
		if err := c.fc.send(resp, serverWriteTimeout); err != nil {
			return
		}
	}
}

// teardown detaches the connection's notifiers and unregisters it.
func (c *serverConn) teardown() {
	c.fc.close()
	c.mu.Lock()
	spots := c.notifiers
	c.notifiers = nil
	c.mu.Unlock()
	for _, sp := range spots {
		_ = c.srv.space.Detach(sp.doc, sp.user, sp.level, sp.name)
	}
	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
}

// fail builds an error response.
func fail(err error) *Response { return &Response{Err: err.Error()} }

// SetLinkCost charges d of simulated time per handled request,
// modeling the application→server network hop in placement
// experiments (real deployments leave it zero and pay the actual
// network).
func (s *Server) SetLinkCost(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.linkCost = d
}

// handle dispatches one request from a connection.
func (c *serverConn) handle(req *Request) *Response {
	s := c.srv
	s.mu.Lock()
	s.requests++
	link := s.linkCost
	s.mu.Unlock()
	if link > 0 {
		s.space.Clock().Sleep(link)
	}
	if req.Op == OpSubscribe {
		return c.subscribe(req)
	}
	resp := s.apply(req)
	if resp.Err == "" {
		s.journalRequest(req)
	}
	return resp
}

// apply executes a request that needs no connection state; journal
// replay uses it directly.
func (s *Server) apply(req *Request) *Response {
	level := docspace.Universal
	if req.Personal {
		level = docspace.Personal
	}

	switch req.Op {
	case OpRead:
		if s.cache != nil {
			data, info, err := s.cache.ReadWithInfo(req.Doc, req.User)
			if err != nil {
				return fail(err)
			}
			return &Response{
				Body:            data,
				Cacheability:    int(info.Cacheability),
				CostNanos:       int64(info.Cost),
				ExpiryUnixNanos: expiryNanos(info.Expiry),
			}
		}
		data, res, err := s.space.ReadDocument(req.Doc, req.User)
		if err != nil {
			return fail(err)
		}
		return &Response{
			Body:            data,
			Cacheability:    int(res.Cacheability),
			CostNanos:       int64(res.Cost),
			ExpiryUnixNanos: expiryNanos(minTTLExpiry(res.Verifiers)),
		}

	case OpWrite:
		if err := s.space.WriteDocument(req.Doc, req.User, req.Body); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpCreateDocument:
		path := "/" + req.Doc
		if err := s.backing.Store(path, req.Body); err != nil {
			return fail(err)
		}
		bits := &property.RepoBitProvider{Repo: s.backing, Path: path}
		if _, err := s.space.CreateDocument(req.Doc, req.User, bits); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpAddReference:
		if _, err := s.space.AddReference(req.Doc, req.User); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpAttach:
		p, err := ParsePropertySpec(req.Property)
		if err != nil {
			return fail(err)
		}
		if err := s.space.Attach(req.Doc, req.User, level, p); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpDetach:
		if err := s.space.Detach(req.Doc, req.User, level, req.Property); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpAttachStatic:
		st := property.Static{Key: req.Property, Value: req.Value}
		if err := s.space.AttachStatic(req.Doc, req.User, level, st); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpForwardEvent:
		kind, err := parseEventKind(req.Value)
		if err != nil {
			return fail(err)
		}
		if err := s.space.ForwardEvent(req.Doc, req.User, kind); err != nil {
			return fail(err)
		}
		return &Response{}

	case OpStats:
		s.mu.Lock()
		stats := map[string]int64{
			"requests":      s.requests,
			"notifications": s.notifies,
			"connections":   int64(len(s.conns)),
		}
		s.mu.Unlock()
		return &Response{Stats: stats}

	case OpListActives:
		names, err := s.space.Actives(req.Doc, req.User, level)
		if err != nil {
			return fail(err)
		}
		return &Response{Actives: names}

	case OpDescribe:
		d, err := s.space.Describe(req.Doc)
		if err != nil {
			return fail(err)
		}
		return &Response{Text: d.String()}

	case OpFind:
		var matches []Match
		for _, m := range s.space.FindByStatic(req.User, req.Property, req.Value) {
			matches = append(matches, Match{Doc: m.Doc, Value: m.Value, Level: fmt.Sprint(m.Level)})
		}
		return &Response{Matches: matches}

	default:
		return fail(fmt.Errorf("server: unknown op %v", req.Op))
	}
}

// subscribe installs base and reference notifiers pushing
// invalidations to this connection.
func (c *serverConn) subscribe(req *Request) *Response {
	s := c.srv
	push := func(doc, user string) {
		s.mu.Lock()
		s.notifies++
		s.mu.Unlock()
		_ = c.fc.send(&Response{ID: 0, NotifyDoc: doc, NotifyUser: user}, serverWriteTimeout)
	}
	c.mu.Lock()
	if c.baseSubs == nil {
		c.baseSubs = make(map[string]bool)
		c.refSubs = make(map[string]bool)
	}
	needBase := !c.baseSubs[req.Doc]
	if needBase {
		c.baseSubs[req.Doc] = true
	}
	refKey := req.Doc + "\x00" + req.User
	needRef := req.User != "" && !c.refSubs[refKey]
	if needRef {
		c.refSubs[refKey] = true
	}
	c.mu.Unlock()

	if needBase {
		baseName := fmt.Sprintf("remote:%p:%s:base", c, req.Doc)
		base := remoteNotifier{property.NewNotifier(baseName, func(e event.Event) {
			push(e.Doc, "") // base-level change: all users affected
		}, event.ContentWritten, event.SetProperty, event.RemoveProperty,
			event.ModifyProperty, event.ReorderProperties, event.ExternalChange)}
		base.Predicate = contentAffecting
		if err := s.space.Attach(req.Doc, "", docspace.Universal, base); err != nil {
			return fail(err)
		}
		c.mu.Lock()
		c.notifiers = append(c.notifiers, spot{doc: req.Doc, level: docspace.Universal, name: baseName})
		c.mu.Unlock()
	}

	if needRef {
		refName := fmt.Sprintf("remote:%p:%s:%s", c, req.Doc, req.User)
		ref := remoteNotifier{property.NewNotifier(refName, func(e event.Event) {
			push(e.Doc, e.User)
		}, event.SetProperty, event.RemoveProperty,
			event.ModifyProperty, event.ReorderProperties)}
		ref.Predicate = contentAffecting
		if err := s.space.Attach(req.Doc, req.User, docspace.Personal, ref); err != nil {
			return fail(err)
		}
		c.mu.Lock()
		c.notifiers = append(c.notifiers, spot{doc: req.Doc, user: req.User, level: docspace.Personal, name: refName})
		c.mu.Unlock()
	}
	return &Response{}
}

// contentAffecting mirrors the cache's semantic notifier predicate:
// only content-capable changes invalidate.
func contentAffecting(e event.Event) bool {
	switch e.Kind {
	case event.ContentWritten, event.ReorderProperties, event.ExternalChange:
		return true
	case event.SetProperty, event.RemoveProperty, event.ModifyProperty:
		return e.Detail == docspace.ClassActive
	default:
		return false
	}
}

// expiryNanos converts a TTL deadline to wire form (0 = none).
func expiryNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// minTTLExpiry extracts the earliest TTL deadline from a verifier set.
func minTTLExpiry(verifiers []property.Verifier) time.Time {
	var min time.Time
	for _, v := range verifiers {
		if ttl, ok := v.(property.TTLVerifier); ok {
			if min.IsZero() || ttl.Expiry.Before(min) {
				min = ttl.Expiry
			}
		}
	}
	return min
}

// parseEventKind maps wire names to event kinds for ForwardEvent.
func parseEventKind(name string) (event.Kind, error) {
	for _, k := range event.Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("server: unknown event kind %q", name)
}
