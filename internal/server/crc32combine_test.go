package server

import (
	"hash/crc32"
	"math/rand"
	"testing"
)

// TestCRC32Combine checks the matrix construction against direct
// computation across split points, including empty halves and sizes
// spanning several power-of-two operators.
func TestCRC32Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := [][2]int{
		{0, 0}, {0, 1}, {1, 0}, {1, 1}, {17, 0}, {17, 1},
		{17, 4096}, {17, 65536}, {3, 65537}, {1000, 1000000},
		{17, 1<<20 + 3},
	}
	for _, sz := range sizes {
		a := make([]byte, sz[0])
		b := make([]byte, sz[1])
		rng.Read(a)
		rng.Read(b)
		want := crc32.Checksum(append(append([]byte{}, a...), b...), castagnoli)
		got := crc32Combine(
			crc32.Checksum(a, castagnoli),
			crc32.Checksum(b, castagnoli),
			int64(len(b)),
		)
		if got != want {
			t.Errorf("combine(len %d + len %d) = %08x, want %08x", sz[0], sz[1], got, want)
		}
	}
}

// TestCRC32CombineRandomSplits slices one buffer at random points and
// checks every split recombines to the whole-buffer CRC.
func TestCRC32CombineRandomSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	buf := make([]byte, 1<<18)
	rng.Read(buf)
	want := crc32.Checksum(buf, castagnoli)
	for i := 0; i < 50; i++ {
		cut := rng.Intn(len(buf) + 1)
		got := crc32Combine(
			crc32.Checksum(buf[:cut], castagnoli),
			crc32.Checksum(buf[cut:], castagnoli),
			int64(len(buf)-cut),
		)
		if got != want {
			t.Fatalf("split at %d: combine = %08x, want %08x", cut, got, want)
		}
	}
}
