package server

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

import "placeless/internal/property"

// ParsePropertySpec instantiates a standard property from a wire spec.
// Specs are the property name optionally followed by colon-separated
// arguments:
//
//	spell-correct[:<execMS>]
//	translate-fr[:<execMS>]
//	uppercase[:<execMS>]
//	rot13[:<execMS>]
//	line-number[:<execMS>]
//	summarize:<lines>[:<execMS>]
//	watermark:<user>[:<execMS>]
//	audit-trail
//	versioning
//	qos:<maxMS>:<factor>
//
// Active properties are code; a remote client cannot ship arbitrary
// behaviour, so the server exposes this fixed library (the paper's
// prototype similarly loads known property implementations into the
// middleware).
func ParsePropertySpec(spec string) (property.Active, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	args := parts[1:]

	msArg := func(idx int) (time.Duration, error) {
		if idx >= len(args) {
			return 0, nil
		}
		n, err := strconv.Atoi(args[idx])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("server: bad duration arg %q in %q", args[idx], spec)
		}
		return time.Duration(n) * time.Millisecond, nil
	}

	switch name {
	case "spell-correct":
		cost, err := msArg(0)
		if err != nil {
			return nil, err
		}
		return property.NewSpellCorrector(cost), nil
	case "translate-fr":
		cost, err := msArg(0)
		if err != nil {
			return nil, err
		}
		return property.NewTranslator(cost), nil
	case "uppercase":
		cost, err := msArg(0)
		if err != nil {
			return nil, err
		}
		return property.NewUppercaser(cost), nil
	case "rot13":
		cost, err := msArg(0)
		if err != nil {
			return nil, err
		}
		return property.NewRot13(cost), nil
	case "line-number":
		cost, err := msArg(0)
		if err != nil {
			return nil, err
		}
		return property.NewLineNumberer(cost), nil
	case "summarize":
		if len(args) < 1 {
			return nil, fmt.Errorf("server: summarize needs a line count: %q", spec)
		}
		lines, err := strconv.Atoi(args[0])
		if err != nil || lines < 1 {
			return nil, fmt.Errorf("server: bad line count in %q", spec)
		}
		cost, err := msArg(1)
		if err != nil {
			return nil, err
		}
		return property.NewSummarizer(lines, cost), nil
	case "watermark":
		if len(args) < 1 || args[0] == "" {
			return nil, fmt.Errorf("server: watermark needs a user: %q", spec)
		}
		cost, err := msArg(1)
		if err != nil {
			return nil, err
		}
		return property.NewWatermarker(args[0], cost), nil
	case "audit-trail":
		return property.NewAuditTrail(), nil
	case "versioning":
		return property.NewVersioning(), nil
	case "qos":
		if len(args) < 2 {
			return nil, fmt.Errorf("server: qos needs maxMS and factor: %q", spec)
		}
		maxMS, err := strconv.Atoi(args[0])
		if err != nil || maxMS <= 0 {
			return nil, fmt.Errorf("server: bad qos latency in %q", spec)
		}
		factor, err := strconv.ParseFloat(args[1], 64)
		if err != nil || factor < 1 {
			return nil, fmt.Errorf("server: bad qos factor in %q", spec)
		}
		return property.NewQoS(time.Duration(maxMS)*time.Millisecond, factor), nil
	default:
		return nil, fmt.Errorf("server: unknown property %q", name)
	}
}

// KnownPropertySpecs lists the spec grammar for CLI help output.
func KnownPropertySpecs() []string {
	return []string{
		"spell-correct[:execMS]",
		"translate-fr[:execMS]",
		"uppercase[:execMS]",
		"rot13[:execMS]",
		"line-number[:execMS]",
		"summarize:<lines>[:execMS]",
		"watermark:<user>[:execMS]",
		"audit-trail",
		"versioning",
		"qos:<maxMS>:<factor>",
	}
}
