package repo

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"placeless/internal/clock"
	"placeless/internal/simnet"
)

// FS is a repository backed by a directory on the real file system —
// the substrate behind the paper's NFS bit-provider. Applications (or
// tests) can modify files directly through the OS, outside Placeless
// control, and only an mtime-polling verifier will notice.
//
// Version numbers are synthesized from observed mtime transitions,
// since a plain file system does not version content.
type FS struct {
	base
	root string

	mu       sync.Mutex
	versions map[string]int64
	lastMod  map[string]int64 // unix-nano mtime at last version bump
}

var _ Repository = (*FS)(nil)

// NewFS returns a repository rooted at dir, which must exist.
func NewFS(name string, clk clock.Clock, path *simnet.Path, dir string) (*FS, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, errors.New("repo: fs root is not a directory")
	}
	return &FS{
		base:     base{name: name, clk: clk, path: path},
		root:     dir,
		versions: make(map[string]int64),
		lastMod:  make(map[string]int64),
	}, nil
}

// resolve maps a repository path to a file under root, rejecting
// escapes.
func (f *FS) resolve(path string) (string, error) {
	clean := filepath.Clean("/" + path)
	full := filepath.Join(f.root, clean)
	if !strings.HasPrefix(full, filepath.Clean(f.root)+string(os.PathSeparator)) && full != filepath.Clean(f.root) {
		return "", errors.New("repo: path escapes repository root")
	}
	return full, nil
}

// bumpVersion advances the synthetic version if the mtime moved.
func (f *FS) bumpVersion(path string, mtimeNano int64) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.lastMod[path] != mtimeNano {
		f.lastMod[path] = mtimeNano
		f.versions[path]++
	}
	if f.versions[path] == 0 {
		f.versions[path] = 1
		f.lastMod[path] = mtimeNano
	}
	return f.versions[path]
}

// Fetch implements Repository.
func (f *FS) Fetch(path string) (*FetchResult, error) {
	full, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(full)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, notFound(f.name, path)
		}
		return nil, err
	}
	info, err := os.Stat(full)
	if err != nil {
		return nil, err
	}
	cost := f.charge(int64(len(data)))
	return &FetchResult{
		Data: data,
		Meta: Meta{
			Size:    int64(len(data)),
			ModTime: info.ModTime(),
			Version: f.bumpVersion(path, info.ModTime().UnixNano()),
		},
		Cost: cost,
	}, nil
}

// Store implements Repository.
func (f *FS) Store(path string, data []byte) error {
	full, err := f.resolve(path)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	f.charge(int64(len(data)))
	return os.WriteFile(full, data, 0o644)
}

// Stat implements Repository.
func (f *FS) Stat(path string) (Meta, error) {
	full, err := f.resolve(path)
	if err != nil {
		return Meta{}, err
	}
	f.chargeStat()
	info, err := os.Stat(full)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Meta{}, notFound(f.name, path)
		}
		return Meta{}, err
	}
	return Meta{
		Size:    info.Size(),
		ModTime: info.ModTime(),
		Version: f.bumpVersion(path, info.ModTime().UnixNano()),
	}, nil
}
