// Package repo implements the content repositories that Placeless
// documents originate from.
//
// The paper stresses that documents come "from arbitrary content
// sources: file systems, the World Wide Web, servers, document
// management systems, live video feeds" and that these sources differ
// in the cache-consistency mechanisms they offer (§3). This package
// provides one repository per source class, each reproducing that
// source's distinguishing behaviour:
//
//   - Mem / FS: mutable storage with modification times; supports both
//     updates through Placeless and direct out-of-band updates, the
//     paper's dual update model.
//   - Web: read-mostly pages with an HTTP-style TTL hint; pages can
//     change at the origin without notification.
//   - DMS: a versioned document-management store where every mutation
//     creates a new immutable version.
//   - LiveFeed: content that differs on every fetch (live video), the
//     canonical uncacheable source.
//
// Every repository charges simulated retrieval time on a shared clock
// through a simnet.Path, which is what lets the benchmark harness
// reproduce the access-time shape of the paper's Table 1.
package repo

import (
	"errors"
	"fmt"
	"time"

	"placeless/internal/clock"
	"placeless/internal/simnet"
)

// Well-known repository errors.
var (
	// ErrNotFound indicates the path does not exist in the repository.
	ErrNotFound = errors.New("repo: document not found")
	// ErrReadOnly indicates the repository rejects stores.
	ErrReadOnly = errors.New("repo: repository is read-only")
)

// Meta describes a stored document without its content.
type Meta struct {
	// Size is the content length in bytes.
	Size int64
	// ModTime is the repository's last-modification time.
	ModTime time.Time
	// Version counts mutations; it increases monotonically per path.
	Version int64
	// TTL is the repository's freshness hint (HTTP-style); zero
	// means the repository offers none.
	TTL time.Duration
}

// FetchResult is the outcome of retrieving content.
type FetchResult struct {
	// Data is the document content.
	Data []byte
	// Meta describes the fetched version.
	Meta Meta
	// Cost is the simulated retrieval time that was charged.
	Cost time.Duration
}

// Repository is a source of document content. Implementations are safe
// for concurrent use.
type Repository interface {
	// Name identifies the repository in traces and costs.
	Name() string
	// Fetch retrieves the current content at path, charging the
	// simulated transfer cost to the repository clock.
	Fetch(path string) (*FetchResult, error)
	// Store replaces the content at path (creating it if absent),
	// charging transfer cost. Read-only repositories return
	// ErrReadOnly.
	Store(path string, data []byte) error
	// Stat returns metadata only, charging latency but not
	// size-dependent transfer cost. This is what mtime-polling
	// verifiers call on every cache hit.
	Stat(path string) (Meta, error)
}

// record is one stored document in the in-memory repositories.
type record struct {
	data    []byte
	modTime time.Time
	version int64
}

// base carries the machinery shared by the simulated repositories.
type base struct {
	name string
	clk  clock.Clock
	path *simnet.Path
}

// charge advances the clock by the transfer cost of n bytes and
// returns the charged duration.
func (b *base) charge(n int64) time.Duration {
	d := b.path.Cost(n)
	b.clk.Sleep(d)
	return d
}

// chargeStat advances the clock by the latency-only cost of a
// metadata round trip.
func (b *base) chargeStat() time.Duration { return b.charge(0) }

func (b *base) Name() string { return b.name }

func notFound(repo, path string) error {
	return fmt.Errorf("%w: %s:%s", ErrNotFound, repo, path)
}
