package repo

import (
	"fmt"
	"sync"

	"placeless/internal/clock"
	"placeless/internal/simnet"
)

// DMS simulates a document management system: an append-only versioned
// store where every mutation creates a new immutable version and old
// versions remain retrievable. This is the substrate the paper's
// versioning property uses to park copies of superseded content.
type DMS struct {
	base
	mu   sync.Mutex
	docs map[string][]*record // all versions, oldest first
}

var _ Repository = (*DMS)(nil)

// NewDMS returns an empty versioned store.
func NewDMS(name string, clk clock.Clock, path *simnet.Path) *DMS {
	return &DMS{base: base{name: name, clk: clk, path: path}, docs: make(map[string][]*record)}
}

// Fetch implements Repository, returning the newest version.
func (d *DMS) Fetch(path string) (*FetchResult, error) {
	return d.fetchVersion(path, -1)
}

// FetchVersion retrieves a specific version (1-based). Version -1
// means newest.
func (d *DMS) FetchVersion(path string, version int64) (*FetchResult, error) {
	return d.fetchVersion(path, version)
}

func (d *DMS) fetchVersion(path string, version int64) (*FetchResult, error) {
	d.mu.Lock()
	recs, ok := d.docs[path]
	var data []byte
	var meta Meta
	if ok && len(recs) > 0 {
		idx := len(recs) - 1
		if version > 0 {
			idx = int(version) - 1
			if idx >= len(recs) {
				ok = false
			}
		}
		if ok {
			rec := recs[idx]
			data = append([]byte{}, rec.data...)
			meta = Meta{Size: int64(len(rec.data)), ModTime: rec.modTime, Version: rec.version}
		}
	} else {
		ok = false
	}
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s:%s v%d", ErrNotFound, d.name, path, version)
	}
	cost := d.charge(meta.Size)
	return &FetchResult{Data: data, Meta: meta, Cost: cost}, nil
}

// Store implements Repository by appending a new version.
func (d *DMS) Store(path string, data []byte) error {
	d.charge(int64(len(data)))
	d.mu.Lock()
	defer d.mu.Unlock()
	recs := d.docs[path]
	d.docs[path] = append(recs, &record{
		data:    append([]byte{}, data...),
		modTime: d.clk.Now(),
		version: int64(len(recs)) + 1,
	})
	return nil
}

// Stat implements Repository for the newest version.
func (d *DMS) Stat(path string) (Meta, error) {
	d.chargeStat()
	d.mu.Lock()
	defer d.mu.Unlock()
	recs, ok := d.docs[path]
	if !ok || len(recs) == 0 {
		return Meta{}, notFound(d.name, path)
	}
	rec := recs[len(recs)-1]
	return Meta{Size: int64(len(rec.data)), ModTime: rec.modTime, Version: rec.version}, nil
}

// Versions reports how many versions exist at path.
func (d *DMS) Versions(path string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.docs[path])
}
