package repo

import (
	"errors"
	"sync"
)

// ErrInjected is the failure produced by a Flaky repository.
var ErrInjected = errors.New("repo: injected fault")

// Flaky wraps a repository and injects failures, for exercising the
// error paths of bit-providers, verifiers, and caches: a cache must
// treat a verifier whose source poll fails as invalid (fail-safe), and
// a read-path failure must propagate to the application without
// corrupting cache state.
type Flaky struct {
	// Inner is the wrapped repository.
	Inner Repository

	mu         sync.Mutex
	failEvery  int // fail every Nth operation (0 = never)
	opCount    int
	failFetch  bool
	failStore  bool
	failStat   bool
	downUntilN int // fail all ops while opCount < downUntilN
}

var _ Repository = (*Flaky)(nil)

// NewFlaky wraps inner; by default no faults are injected.
func NewFlaky(inner Repository) *Flaky { return &Flaky{Inner: inner} }

// Name implements Repository.
func (f *Flaky) Name() string { return "flaky:" + f.Inner.Name() }

// FailEvery makes every nth operation of the selected kinds fail.
// n <= 0 disables periodic failures.
func (f *Flaky) FailEvery(n int, fetch, store, stat bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failEvery = n
	f.failFetch, f.failStore, f.failStat = fetch, store, stat
}

// Outage makes the next n operations of every kind fail, modeling a
// repository that is temporarily unreachable.
func (f *Flaky) Outage(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.downUntilN = f.opCount + n
}

// shouldFail advances the operation counter and decides this
// operation's fate.
func (f *Flaky) shouldFail(kind string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opCount++
	if f.opCount <= f.downUntilN {
		return true
	}
	if f.failEvery <= 0 || f.opCount%f.failEvery != 0 {
		return false
	}
	switch kind {
	case "fetch":
		return f.failFetch
	case "store":
		return f.failStore
	default:
		return f.failStat
	}
}

// Ops reports how many operations have passed through.
func (f *Flaky) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opCount
}

// Fetch implements Repository.
func (f *Flaky) Fetch(path string) (*FetchResult, error) {
	if f.shouldFail("fetch") {
		return nil, ErrInjected
	}
	return f.Inner.Fetch(path)
}

// Store implements Repository.
func (f *Flaky) Store(path string, data []byte) error {
	if f.shouldFail("store") {
		return ErrInjected
	}
	return f.Inner.Store(path, data)
}

// Stat implements Repository.
func (f *Flaky) Stat(path string) (Meta, error) {
	if f.shouldFail("stat") {
		return Meta{}, ErrInjected
	}
	return f.Inner.Stat(path)
}
