package repo

import (
	"sync"
	"time"

	"placeless/internal/clock"
	"placeless/internal/simnet"
)

// Web simulates an HTTP origin server. Pages carry a TTL freshness
// hint in their metadata — the only consistency mechanism 1999-era web
// servers offered, which the paper's TTL verifier implements at the
// cache. Pages change at the origin via SetPage without any
// notification to consumers, and the repository can be made writable
// (HTTP PUT) or read-only.
type Web struct {
	base
	mu       sync.Mutex
	pages    map[string]*record
	ttl      time.Duration
	readOnly bool
}

var _ Repository = (*Web)(nil)

// NewWeb returns a web origin whose pages advertise the given TTL.
// If readOnly, Store (HTTP PUT) is rejected.
func NewWeb(name string, clk clock.Clock, path *simnet.Path, ttl time.Duration, readOnly bool) *Web {
	return &Web{
		base:     base{name: name, clk: clk, path: path},
		pages:    make(map[string]*record),
		ttl:      ttl,
		readOnly: readOnly,
	}
}

// SetPage publishes or replaces a page at the origin. This models
// out-of-band site updates: no cost is charged to any accessor and no
// notification is produced.
func (w *Web) SetPage(path string, data []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec, ok := w.pages[path]
	if !ok {
		rec = &record{}
		w.pages[path] = rec
	}
	rec.data = append([]byte{}, data...)
	rec.modTime = w.clk.Now()
	rec.version++
}

// Fetch implements Repository (HTTP GET).
func (w *Web) Fetch(path string) (*FetchResult, error) {
	w.mu.Lock()
	rec, ok := w.pages[path]
	var data []byte
	var meta Meta
	if ok {
		data = append([]byte{}, rec.data...)
		meta = Meta{Size: int64(len(rec.data)), ModTime: rec.modTime, Version: rec.version, TTL: w.ttl}
	}
	w.mu.Unlock()
	if !ok {
		return nil, notFound(w.name, path)
	}
	cost := w.charge(meta.Size)
	return &FetchResult{Data: data, Meta: meta, Cost: cost}, nil
}

// Store implements Repository (HTTP PUT).
func (w *Web) Store(path string, data []byte) error {
	if w.readOnly {
		return ErrReadOnly
	}
	w.charge(int64(len(data)))
	w.SetPage(path, data)
	return nil
}

// Stat implements Repository (HTTP HEAD).
func (w *Web) Stat(path string) (Meta, error) {
	w.chargeStat()
	w.mu.Lock()
	defer w.mu.Unlock()
	rec, ok := w.pages[path]
	if !ok {
		return Meta{}, notFound(w.name, path)
	}
	return Meta{Size: int64(len(rec.data)), ModTime: rec.modTime, Version: rec.version, TTL: w.ttl}, nil
}
