package repo

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"placeless/internal/clock"
	"placeless/internal/simnet"
)

var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

func fastPath() *simnet.Path { return simnet.NewPath("test", 1) }

func newMem(t *testing.T) (*Mem, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	return NewMem("mem", clk, fastPath()), clk
}

func TestMemFetchNotFound(t *testing.T) {
	m, _ := newMem(t)
	if _, err := m.Fetch("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := m.Stat("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat err = %v, want ErrNotFound", err)
	}
}

func TestMemStoreFetchRoundTrip(t *testing.T) {
	m, _ := newMem(t)
	if err := m.Store("/a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	fr, err := m.Fetch("/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(fr.Data) != "hello" || fr.Meta.Size != 5 || fr.Meta.Version != 1 {
		t.Fatalf("fetch = %+v", fr)
	}
}

func TestMemVersionsIncrease(t *testing.T) {
	m, clk := newMem(t)
	m.Store("/a", []byte("v1"))
	clk.Advance(time.Second)
	m.Store("/a", []byte("v2"))
	meta, err := m.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 2 {
		t.Fatalf("version = %d, want 2", meta.Version)
	}
	if !meta.ModTime.After(epoch) {
		t.Fatalf("modtime = %v not advanced", meta.ModTime)
	}
}

func TestMemUpdateDirectChangesContentAndMtime(t *testing.T) {
	m, clk := newMem(t)
	m.Store("/a", []byte("original"))
	before, _ := m.Stat("/a")
	clk.Advance(time.Minute)
	m.UpdateDirect("/a", []byte("sneaky"))
	after, _ := m.Stat("/a")
	if !after.ModTime.After(before.ModTime) || after.Version != before.Version+1 {
		t.Fatalf("out-of-band update not visible in metadata: %+v -> %+v", before, after)
	}
	fr, _ := m.Fetch("/a")
	if string(fr.Data) != "sneaky" {
		t.Fatalf("content = %q", fr.Data)
	}
}

func TestMemDelete(t *testing.T) {
	m, _ := newMem(t)
	m.Store("/a", []byte("x"))
	m.Delete("/a")
	m.Delete("/a") // idempotent
	if _, err := m.Fetch("/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMemFetchChargesClock(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	p := simnet.NewPath("lan", 1, simnet.Link{Latency: 5 * time.Millisecond, BytesPerSecond: 1 << 20})
	m := NewMem("mem", clk, p)
	m.Store("/a", make([]byte, 1<<20))
	start := clk.Now()
	fr, err := m.Fetch("/a")
	if err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now().Sub(start)
	if elapsed != fr.Cost {
		t.Fatalf("clock advanced %v but Cost = %v", elapsed, fr.Cost)
	}
	if fr.Cost < time.Second {
		t.Fatalf("1 MB over 1 MB/s + 5ms should cost > 1s, got %v", fr.Cost)
	}
}

func TestMemFetchReturnsCopy(t *testing.T) {
	m, _ := newMem(t)
	m.Store("/a", []byte("abc"))
	fr, _ := m.Fetch("/a")
	fr.Data[0] = 'Z'
	fr2, _ := m.Fetch("/a")
	if string(fr2.Data) != "abc" {
		t.Fatal("Fetch exposed internal buffer")
	}
}

func TestWebTTLInMeta(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	w := NewWeb("web", clk, fastPath(), 30*time.Second, true)
	w.SetPage("/index.html", []byte("<html>"))
	fr, err := w.Fetch("/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Meta.TTL != 30*time.Second {
		t.Fatalf("TTL = %v", fr.Meta.TTL)
	}
	meta, _ := w.Stat("/index.html")
	if meta.TTL != 30*time.Second {
		t.Fatalf("Stat TTL = %v", meta.TTL)
	}
}

func TestWebReadOnlyRejectsPut(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	w := NewWeb("web", clk, fastPath(), time.Minute, true)
	if err := w.Store("/x", []byte("put")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
}

func TestWebWritablePut(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	w := NewWeb("web", clk, fastPath(), time.Minute, false)
	if err := w.Store("/x", []byte("put")); err != nil {
		t.Fatal(err)
	}
	fr, err := w.Fetch("/x")
	if err != nil || string(fr.Data) != "put" {
		t.Fatalf("fetch after PUT: %v %q", err, fr.Data)
	}
}

func TestWebOutOfBandUpdate(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	w := NewWeb("web", clk, fastPath(), time.Minute, true)
	w.SetPage("/p", []byte("old"))
	v1, _ := w.Stat("/p")
	clk.Advance(time.Hour)
	w.SetPage("/p", []byte("new"))
	v2, _ := w.Stat("/p")
	if v2.Version != v1.Version+1 {
		t.Fatalf("versions %d -> %d", v1.Version, v2.Version)
	}
}

func TestWebNotFound(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	w := NewWeb("web", clk, fastPath(), time.Minute, true)
	if _, err := w.Fetch("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDMSVersionHistory(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	d := NewDMS("dms", clk, fastPath())
	d.Store("/doc", []byte("v1"))
	d.Store("/doc", []byte("v2"))
	d.Store("/doc", []byte("v3"))
	if n := d.Versions("/doc"); n != 3 {
		t.Fatalf("Versions = %d", n)
	}
	newest, err := d.Fetch("/doc")
	if err != nil || string(newest.Data) != "v3" || newest.Meta.Version != 3 {
		t.Fatalf("newest = %+v, %v", newest, err)
	}
	old, err := d.FetchVersion("/doc", 1)
	if err != nil || string(old.Data) != "v1" {
		t.Fatalf("v1 = %+v, %v", old, err)
	}
	if _, err := d.FetchVersion("/doc", 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent version err = %v", err)
	}
}

func TestDMSNotFound(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	d := NewDMS("dms", clk, fastPath())
	if _, err := d.Fetch("/none"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Stat("/none"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat err = %v", err)
	}
}

func TestLiveFeedAlwaysChanges(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	l := NewLiveFeed("cam", clk, fastPath(), 256)
	a, err := l.Fetch("/cam1")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := l.Fetch("/cam1")
	if bytes.Equal(a.Data, b.Data) {
		t.Fatal("consecutive frames identical")
	}
	if a.Meta.Version+1 != b.Meta.Version {
		t.Fatalf("versions %d, %d", a.Meta.Version, b.Meta.Version)
	}
	if int64(len(a.Data)) != 256 {
		t.Fatalf("frame size %d", len(a.Data))
	}
}

func TestLiveFeedReadOnly(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	l := NewLiveFeed("cam", clk, fastPath(), 16)
	if err := l.Store("/cam1", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
}

func TestLiveFeedStatShowsFutureVersion(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	l := NewLiveFeed("cam", clk, fastPath(), 16)
	fr, _ := l.Fetch("/c")
	meta, err := l.Stat("/c")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version <= fr.Meta.Version {
		t.Fatalf("Stat version %d should exceed fetched %d (feed always newer)", meta.Version, fr.Meta.Version)
	}
}

func newFS(t *testing.T) (*FS, string) {
	t.Helper()
	dir := t.TempDir()
	clk := clock.NewVirtual(epoch)
	f, err := NewFS("fs", clk, fastPath(), dir)
	if err != nil {
		t.Fatal(err)
	}
	return f, dir
}

func TestFSRoundTrip(t *testing.T) {
	f, _ := newFS(t)
	if err := f.Store("/dir/file.txt", []byte("disk bytes")); err != nil {
		t.Fatal(err)
	}
	fr, err := f.Fetch("/dir/file.txt")
	if err != nil || string(fr.Data) != "disk bytes" {
		t.Fatalf("fetch: %v %q", err, fr.Data)
	}
}

func TestFSNotFound(t *testing.T) {
	f, _ := newFS(t)
	if _, err := f.Fetch("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := f.Stat("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat err = %v", err)
	}
}

func TestFSOutOfBandEditBumpsVersion(t *testing.T) {
	f, dir := newFS(t)
	f.Store("/f.txt", []byte("one"))
	m1, err := f.Stat("/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	// Edit behind Placeless's back with a guaranteed-new mtime.
	full := filepath.Join(dir, "f.txt")
	if err := os.WriteFile(full, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(full, future, future); err != nil {
		t.Fatal(err)
	}
	m2, err := f.Stat("/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version <= m1.Version {
		t.Fatalf("version did not advance after out-of-band edit: %d -> %d", m1.Version, m2.Version)
	}
}

func TestFSRejectsEscape(t *testing.T) {
	f, _ := newFS(t)
	if err := f.Store("../../etc/passwd", []byte("nope")); err == nil {
		// filepath.Clean("/../..") collapses to "/", so the write
		// lands inside the root; verify it did not escape.
		if _, statErr := os.Stat("/etc/passwd.placeless-test"); statErr == nil {
			t.Fatal("escaped the repository root")
		}
	}
}

func TestFSRootMustExist(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	if _, err := NewFS("fs", clk, fastPath(), "/definitely/not/here"); err == nil {
		t.Fatal("expected error for missing root")
	}
}

// Property: for any sequence of stores to Mem, the final fetch returns
// the last stored content and version equals the number of stores.
func TestMemLastWriteWinsProperty(t *testing.T) {
	f := func(writes [][]byte) bool {
		if len(writes) == 0 {
			return true
		}
		m, _ := newMem(t)
		for _, w := range writes {
			if err := m.Store("/p", w); err != nil {
				return false
			}
		}
		fr, err := m.Fetch("/p")
		return err == nil &&
			bytes.Equal(fr.Data, writes[len(writes)-1]) &&
			fr.Meta.Version == int64(len(writes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: DMS never loses a version — after n stores, every version
// 1..n fetches the corresponding historical content.
func TestDMSHistoryCompleteProperty(t *testing.T) {
	f := func(writes [][]byte) bool {
		if len(writes) == 0 || len(writes) > 20 {
			return true
		}
		clk := clock.NewVirtual(epoch)
		d := NewDMS("dms", clk, fastPath())
		for _, w := range writes {
			if err := d.Store("/p", w); err != nil {
				return false
			}
		}
		for i, w := range writes {
			fr, err := d.FetchVersion("/p", int64(i)+1)
			if err != nil || !bytes.Equal(fr.Data, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
