package repo

import (
	"fmt"
	"sync"

	"placeless/internal/clock"
	"placeless/internal/simnet"
)

// LiveFeed simulates a live content source such as a video camera:
// every fetch observes different content (a new frame), so cached
// copies are stale the moment they are made. The paper cites this as
// the case where a bit-provider "may deem a document uncacheable if
// the retrieved content changes each time it is accessed".
type LiveFeed struct {
	base
	mu     sync.Mutex
	frames map[string]int64 // per-path frame counter
	size   int64            // bytes per frame
}

var _ Repository = (*LiveFeed)(nil)

// NewLiveFeed returns a feed producing frameSize-byte frames.
func NewLiveFeed(name string, clk clock.Clock, path *simnet.Path, frameSize int64) *LiveFeed {
	if frameSize <= 0 {
		frameSize = 1
	}
	return &LiveFeed{base: base{name: name, clk: clk, path: path}, frames: make(map[string]int64), size: frameSize}
}

// frame synthesizes deterministic content for frame n of a path.
func (l *LiveFeed) frame(path string, n int64) []byte {
	header := fmt.Sprintf("frame %d of %s\n", n, path)
	data := make([]byte, l.size)
	copy(data, header)
	for i := len(header); i < len(data); i++ {
		data[i] = byte(n + int64(i))
	}
	return data
}

// Fetch implements Repository; each call advances the feed's frame
// counter, so consecutive fetches return different content.
func (l *LiveFeed) Fetch(path string) (*FetchResult, error) {
	l.mu.Lock()
	l.frames[path]++
	n := l.frames[path]
	l.mu.Unlock()
	cost := l.charge(l.size)
	return &FetchResult{
		Data: l.frame(path, n),
		Meta: Meta{Size: l.size, ModTime: l.clk.Now(), Version: n},
		Cost: cost,
	}, nil
}

// Store implements Repository; live feeds are read-only.
func (l *LiveFeed) Store(string, []byte) error { return ErrReadOnly }

// Stat implements Repository; the version reflects frames served so
// far, so a verifier comparing versions always sees change.
func (l *LiveFeed) Stat(path string) (Meta, error) {
	l.chargeStat()
	l.mu.Lock()
	defer l.mu.Unlock()
	return Meta{Size: l.size, ModTime: l.clk.Now(), Version: l.frames[path] + 1}, nil
}
