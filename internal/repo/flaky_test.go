package repo

import (
	"errors"
	"testing"

	"placeless/internal/clock"
	"placeless/internal/simnet"
)

func flakyFixture(t *testing.T) (*Flaky, *Mem) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	inner := NewMem("inner", clk, simnet.NewPath("p", 1))
	inner.Store("/d", []byte("data"))
	return NewFlaky(inner), inner
}

func TestFlakyPassThroughByDefault(t *testing.T) {
	f, _ := flakyFixture(t)
	if fr, err := f.Fetch("/d"); err != nil || string(fr.Data) != "data" {
		t.Fatalf("fetch: %v", err)
	}
	if _, err := f.Stat("/d"); err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := f.Store("/d", []byte("new")); err != nil {
		t.Fatalf("store: %v", err)
	}
	if f.Name() != "flaky:inner" {
		t.Fatalf("Name = %q", f.Name())
	}
}

func TestFlakyFailEverySelectsKinds(t *testing.T) {
	f, _ := flakyFixture(t)
	f.FailEvery(1, true, false, false) // only fetches fail
	if _, err := f.Fetch("/d"); !errors.Is(err, ErrInjected) {
		t.Fatalf("fetch err = %v", err)
	}
	if _, err := f.Stat("/d"); err != nil {
		t.Fatalf("stat should pass: %v", err)
	}
	if err := f.Store("/d", nil); err != nil {
		t.Fatalf("store should pass: %v", err)
	}
	f.FailEvery(2, false, true, true) // every 2nd store/stat fails
	var failures int
	for i := 0; i < 10; i++ {
		if _, err := f.Stat("/d"); errors.Is(err, ErrInjected) {
			failures++
		}
	}
	if failures == 0 || failures == 10 {
		t.Fatalf("periodic failures = %d, want some but not all", failures)
	}
}

func TestFlakyOutageAffectsEverything(t *testing.T) {
	f, _ := flakyFixture(t)
	f.Outage(3)
	for i := 0; i < 3; i++ {
		if _, err := f.Fetch("/d"); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d during outage succeeded", i)
		}
	}
	if _, err := f.Fetch("/d"); err != nil {
		t.Fatalf("after outage: %v", err)
	}
	if f.Ops() != 4 {
		t.Fatalf("Ops = %d", f.Ops())
	}
}

func TestLiveFeedDefaultFrameSize(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	l := NewLiveFeed("cam", clk, simnet.NewPath("p", 1), 0) // clamps to 1
	fr, err := l.Fetch("/c")
	if err != nil || len(fr.Data) != 1 {
		t.Fatalf("frame = %d bytes, %v", len(fr.Data), err)
	}
	if l.Name() != "cam" {
		t.Fatalf("Name = %q", l.Name())
	}
}

func TestDMSStatEmptyHistory(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	d := NewDMS("dms", clk, simnet.NewPath("p", 1))
	if _, err := d.Stat("/never"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}
