package repo

import (
	"sync"

	"placeless/internal/clock"
	"placeless/internal/simnet"
)

// Mem is an in-memory mutable repository standing in for a file
// system or departmental server. It supports the paper's dual update
// model: Store is the path Placeless snoops on, while UpdateDirect
// mutates content out-of-band, invisible to the middleware — the
// situation only a verifier (mtime poll) can detect.
type Mem struct {
	base
	mu   sync.Mutex
	docs map[string]*record
}

var _ Repository = (*Mem)(nil)

// NewMem returns an empty in-memory repository reached over path,
// charging time on clk.
func NewMem(name string, clk clock.Clock, path *simnet.Path) *Mem {
	return &Mem{base: base{name: name, clk: clk, path: path}, docs: make(map[string]*record)}
}

// Fetch implements Repository.
func (m *Mem) Fetch(path string) (*FetchResult, error) {
	m.mu.Lock()
	rec, ok := m.docs[path]
	var data []byte
	var meta Meta
	if ok {
		data = append([]byte{}, rec.data...)
		meta = Meta{Size: int64(len(rec.data)), ModTime: rec.modTime, Version: rec.version}
	}
	m.mu.Unlock()
	if !ok {
		return nil, notFound(m.name, path)
	}
	cost := m.charge(meta.Size)
	return &FetchResult{Data: data, Meta: meta, Cost: cost}, nil
}

// Store implements Repository.
func (m *Mem) Store(path string, data []byte) error {
	m.charge(int64(len(data)))
	m.put(path, data)
	return nil
}

// UpdateDirect mutates content without charging transfer time to the
// accessor, modeling an application writing to the source behind
// Placeless's back (paper §3, invalidation cause 1, uncontrolled case).
func (m *Mem) UpdateDirect(path string, data []byte) {
	m.put(path, data)
}

func (m *Mem) put(path string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.docs[path]
	if !ok {
		rec = &record{}
		m.docs[path] = rec
	}
	rec.data = append([]byte{}, data...)
	rec.modTime = m.clk.Now()
	rec.version++
}

// Delete removes a path; deleting an absent path is a no-op.
func (m *Mem) Delete(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.docs, path)
}

// Stat implements Repository.
func (m *Mem) Stat(path string) (Meta, error) {
	m.chargeStat()
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.docs[path]
	if !ok {
		return Meta{}, notFound(m.name, path)
	}
	return Meta{Size: int64(len(rec.data)), ModTime: rec.modTime, Version: rec.version}, nil
}

// Len reports how many documents the repository holds.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.docs)
}
