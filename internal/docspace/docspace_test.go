package docspace

import (
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

// fixture bundles a space over an in-memory repository.
type fixture struct {
	clk     *clock.Virtual
	src     *repo.Mem
	archive *repo.DMS
	space   *Space
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	src := repo.NewMem("nfs", clk, simnet.Local(1))
	archive := repo.NewDMS("dms", clk, simnet.NewPath("local", 2))
	return &fixture{clk: clk, src: src, archive: archive, space: New(clk, archive)}
}

// addDoc creates a document backed by the fixture repo with content.
func (f *fixture) addDoc(t *testing.T, id, owner, path string, content []byte) {
	t.Helper()
	f.src.Store(path, content)
	bits := &property.RepoBitProvider{Repo: f.src, Path: path}
	if _, err := f.space.CreateDocument(id, owner, bits); err != nil {
		t.Fatal(err)
	}
}

func TestCreateDocumentAndOwnerReference(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "hotos.doc", "eyal", "/tilde/edelara/hotos.doc", []byte("draft"))
	b, err := f.space.Document("hotos.doc")
	if err != nil || b.ID() != "hotos.doc" || b.Owner() != "eyal" {
		t.Fatalf("Document = %+v, %v", b, err)
	}
	if _, err := f.space.Reference("hotos.doc", "eyal"); err != nil {
		t.Fatalf("owner reference missing: %v", err)
	}
	if b.BitProvider() == nil {
		t.Fatal("bit provider missing")
	}
}

func TestDuplicateDocumentRejected(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	bits := &property.RepoBitProvider{Repo: f.src, Path: "/d"}
	if _, err := f.space.CreateDocument("d", "paul", bits); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddReference(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	if _, err := f.space.AddReference("d", "paul"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.space.AddReference("d", "paul"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate reference err = %v", err)
	}
	if _, err := f.space.AddReference("nope", "x"); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("missing doc err = %v", err)
	}
	users := f.space.Users("d")
	sort.Strings(users)
	if len(users) != 2 || users[0] != "eyal" || users[1] != "paul" {
		t.Fatalf("Users = %v", users)
	}
}

func TestOpenWithoutReferenceFails(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	if _, _, err := f.space.Open("d", "stranger"); !errors.Is(err, ErrNoReference) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := f.space.Open("ghost", "eyal"); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("err = %v", err)
	}
}

func TestPlainReadReturnsOriginalContent(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("original bits"))
	data, res, err := f.space.ReadDocument("d", "eyal")
	if err != nil || string(data) != "original bits" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if res.Cacheability != property.Unrestricted {
		t.Fatalf("cacheability = %v", res.Cacheability)
	}
	if len(res.Verifiers) != 1 {
		t.Fatalf("verifiers = %d, want bit-provider's mtime verifier", len(res.Verifiers))
	}
	if res.Cost <= 0 {
		t.Fatalf("cost = %v, want positive retrieval cost", res.Cost)
	}
}

func TestPersonalPropertiesInvisibleToOthers(t *testing.T) {
	// Figure 1: Eyal's spelling corrector is personal; Paul sees the
	// uncorrected document.
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("teh draft"))
	f.space.AddReference("d", "paul")
	if err := f.space.Attach("d", "eyal", Personal, property.NewSpellCorrector(0)); err != nil {
		t.Fatal(err)
	}
	eyal, _, _ := f.space.ReadDocument("d", "eyal")
	paul, _, _ := f.space.ReadDocument("d", "paul")
	if string(eyal) != "the draft" {
		t.Fatalf("eyal sees %q", eyal)
	}
	if string(paul) != "teh draft" {
		t.Fatalf("paul sees %q — personal property leaked", paul)
	}
}

func TestUniversalPropertiesSeenByAll(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("shout"))
	f.space.AddReference("d", "paul")
	if err := f.space.Attach("d", "", Universal, property.NewUppercaser(0)); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"eyal", "paul"} {
		data, _, _ := f.space.ReadDocument("d", u)
		if string(data) != "SHOUT" {
			t.Fatalf("%s sees %q", u, data)
		}
	}
}

func TestReadPathOrderBaseBeforeReference(t *testing.T) {
	// Figure 2: base properties execute before reference properties
	// on the read path. Summarize at base + line-number at ref must
	// number the summarized output.
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("one\ntwo\nthree\n"))
	f.space.Attach("d", "", Universal, property.NewSummarizer(1, 0))
	f.space.Attach("d", "eyal", Personal, property.NewLineNumberer(0))
	data, _, _ := f.space.ReadDocument("d", "eyal")
	got := string(data)
	if !strings.Contains(got, "1  one") || strings.Contains(got, "two") {
		t.Fatalf("read = %q: line numbering should apply to the summary", got)
	}
}

func TestWritePathOrderReferenceBeforeBase(t *testing.T) {
	// On the write path reference properties execute first. A
	// reference rot13 followed by a base uppercase must store
	// uppercase(rot13(x)).
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte(""))
	refProp := &property.Transformer{
		Base:           property.Base{PropName: "ref-suffix"},
		WriteTransform: func(b []byte) []byte { return append(append([]byte{}, b...), []byte("-ref")...) },
	}
	baseProp := &property.Transformer{
		Base:           property.Base{PropName: "base-suffix"},
		WriteTransform: func(b []byte) []byte { return append(append([]byte{}, b...), []byte("-base")...) },
	}
	f.space.Attach("d", "eyal", Personal, refProp)
	f.space.Attach("d", "", Universal, baseProp)
	if err := f.space.WriteDocument("d", "eyal", []byte("x")); err != nil {
		t.Fatal(err)
	}
	fr, _ := f.src.Fetch("/d")
	if string(fr.Data) != "x-ref-base" {
		t.Fatalf("stored %q, want reference transform first", fr.Data)
	}
}

func TestWriteThenReadThroughPlaceless(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("old"))
	if err := f.space.WriteDocument("d", "eyal", []byte("teh new draft")); err != nil {
		t.Fatal(err)
	}
	data, _, _ := f.space.ReadDocument("d", "eyal")
	if string(data) != "teh new draft" {
		t.Fatalf("read-back = %q", data)
	}
}

func TestSpellCorrectorOnWritePathStoresCorrected(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte(""))
	f.space.Attach("d", "eyal", Personal, property.NewSpellCorrector(0))
	f.space.WriteDocument("d", "eyal", []byte("teh recieve"))
	fr, _ := f.src.Fetch("/d")
	if string(fr.Data) != "the receive" {
		t.Fatalf("stored %q", fr.Data)
	}
}

func TestVersioningPropertyOnWrite(t *testing.T) {
	// The paper's universal property that "saves an old version of
	// the paper each time someone opens it for writing".
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("version one"))
	v := property.NewVersioning()
	f.space.Attach("d", "", Universal, v)
	f.space.WriteDocument("d", "eyal", []byte("version two"))
	if v.SavedVersions() != 1 {
		t.Fatalf("SavedVersions = %d", v.SavedVersions())
	}
	// The superseded content is in the archive...
	fr, err := f.archive.Fetch("/archive/d/version-1")
	if err != nil || string(fr.Data) != "version one" {
		t.Fatalf("archived = %q, %v", fr.Data, err)
	}
	// ...and a static link was attached to the base.
	statics, _ := f.space.Statics("d", "", Universal)
	if len(statics) != 1 || statics[0].Key != "version-1" || !strings.Contains(statics[0].Value, "version-1") {
		t.Fatalf("statics = %v", statics)
	}
}

func TestAttachDuplicateActiveRejected(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	f.space.Attach("d", "eyal", Personal, property.NewTranslator(0))
	if err := f.space.Attach("d", "eyal", Personal, property.NewTranslator(0)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
}

func TestDetachRestoresOriginalView(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("hello"))
	f.space.Attach("d", "eyal", Personal, property.NewUppercaser(0))
	if err := f.space.Detach("d", "eyal", Personal, "uppercase"); err != nil {
		t.Fatal(err)
	}
	data, _, _ := f.space.ReadDocument("d", "eyal")
	if string(data) != "hello" {
		t.Fatalf("after detach read = %q", data)
	}
	if err := f.space.Detach("d", "eyal", Personal, "uppercase"); !errors.Is(err, ErrNoProperty) {
		t.Fatalf("double detach err = %v", err)
	}
}

func TestReplaceSwapsBehaviour(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("the paper"))
	f.space.Attach("d", "eyal", Personal, property.NewTranslator(0))
	// "Upgrade" the translator to an uppercasing release.
	if err := f.space.Replace("d", "eyal", Personal, "translate-fr", property.NewUppercaser(0)); err != nil {
		t.Fatal(err)
	}
	data, _, _ := f.space.ReadDocument("d", "eyal")
	if string(data) != "THE PAPER" {
		t.Fatalf("after replace read = %q", data)
	}
	if err := f.space.Replace("d", "eyal", Personal, "ghost", property.NewUppercaser(0)); !errors.Is(err, ErrNoProperty) {
		t.Fatalf("replace missing err = %v", err)
	}
}

func TestReorderChangesContent(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("one\ntwo\nthree\n"))
	f.space.Attach("d", "eyal", Personal, property.NewSummarizer(1, 0))
	f.space.Attach("d", "eyal", Personal, property.NewLineNumberer(0))
	before, _, _ := f.space.ReadDocument("d", "eyal")
	if err := f.space.Reorder("d", "eyal", Personal, []string{"line-number", "summarize-1"}); err != nil {
		t.Fatal(err)
	}
	after, _, _ := f.space.ReadDocument("d", "eyal")
	if string(before) == string(after) {
		t.Fatalf("reorder had no effect: %q", before)
	}
	names, _ := f.space.Actives("d", "eyal", Personal)
	if names[0] != "line-number" {
		t.Fatalf("order = %v", names)
	}
}

func TestReorderValidation(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	f.space.Attach("d", "eyal", Personal, property.NewTranslator(0))
	f.space.Attach("d", "eyal", Personal, property.NewUppercaser(0))
	if err := f.space.Reorder("d", "eyal", Personal, []string{"translate-fr"}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if err := f.space.Reorder("d", "eyal", Personal, []string{"translate-fr", "ghost"}); !errors.Is(err, ErrNoProperty) {
		t.Fatalf("unknown name err = %v", err)
	}
	if err := f.space.Reorder("d", "eyal", Personal, []string{"translate-fr", "translate-fr"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate name err = %v", err)
	}
}

func TestStaticsAttachAndList(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	f.space.AddReference("d", "paul")
	st := property.Static{Key: "1999 workshop submission"}
	if err := f.space.AttachStatic("d", "paul", Personal, st); err != nil {
		t.Fatal(err)
	}
	if err := f.space.AttachStatic("d", "paul", Personal, st); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate static err = %v", err)
	}
	paulStatics, _ := f.space.Statics("d", "paul", Personal)
	if len(paulStatics) != 1 {
		t.Fatalf("paul statics = %v", paulStatics)
	}
	eyalStatics, _ := f.space.Statics("d", "eyal", Personal)
	if len(eyalStatics) != 0 {
		t.Fatal("personal static leaked to another user")
	}
}

func TestReplicatorEndToEnd(t *testing.T) {
	// Eyal's "keep copy at Rice" property: timer-driven replication
	// through the space's virtual clock.
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/parc/hotos.doc", []byte("draft at parc"))
	rice := repo.NewMem("rice", f.clk, simnet.NewPath("wan", 3))
	rep := property.NewReplicator(rice, "/rice/hotos.doc", 24*time.Hour)
	if err := f.space.Attach("d", "eyal", Personal, rep); err != nil {
		t.Fatal(err)
	}
	// Nothing replicated yet.
	if _, err := rice.Fetch("/rice/hotos.doc"); !errors.Is(err, repo.ErrNotFound) {
		t.Fatal("replicated before the timer fired")
	}
	f.clk.Advance(24 * time.Hour)
	fr, err := rice.Fetch("/rice/hotos.doc")
	if err != nil || string(fr.Data) != "draft at parc" {
		t.Fatalf("replica = %q, %v", fr.Data, err)
	}
	// Periodic: content updated, next day's run copies the new bits.
	f.space.WriteDocument("d", "eyal", []byte("draft v2"))
	f.clk.Advance(24 * time.Hour)
	fr, _ = rice.Fetch("/rice/hotos.doc")
	if string(fr.Data) != "draft v2" {
		t.Fatalf("second replica = %q", fr.Data)
	}
	if runs, errs := rep.Runs(); runs != 2 || errs != 0 {
		t.Fatalf("Runs = %d,%d", runs, errs)
	}
}

func TestAuditTrailSeesReadsAndWrites(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	f.space.AddReference("d", "paul")
	trail := property.NewAuditTrail()
	f.space.Attach("d", "", Universal, trail)
	f.space.ReadDocument("d", "eyal")
	f.space.ReadDocument("d", "paul")
	f.space.WriteDocument("d", "eyal", []byte("y"))
	recs := trail.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[0].User != "eyal" || recs[1].User != "paul" {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[2].Kind != event.GetOutputStream {
		t.Fatalf("write not audited: %+v", recs[2])
	}
}

func TestForwardEventTriggersOnEventOnly(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	trail := property.NewAuditTrail()
	f.space.Attach("d", "", Universal, trail)
	if err := f.space.ForwardEvent("d", "eyal", event.GetInputStream); err != nil {
		t.Fatal(err)
	}
	recs := trail.Records()
	if len(recs) != 1 || !recs[0].Forwarded {
		t.Fatalf("recs = %+v", recs)
	}
	// Forwarding must not touch the repository.
	reqs, _, _ := func() (int64, int64, time.Duration) {
		// fixture path 1 belongs to the source repo
		return 0, 0, 0
	}()
	_ = reqs
	if err := f.space.ForwardEvent("ghost", "eyal", event.GetInputStream); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("err = %v", err)
	}
}

func TestTimerAddressingIsolatesProperties(t *testing.T) {
	// Two replicators on the same reference: each timer firing must
	// run only its owner.
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	r1 := property.NewReplicator(repo.NewMem("a", f.clk, simnet.NewPath("p", 1)), "/a", time.Hour)
	r2 := property.NewReplicator(repo.NewMem("b", f.clk, simnet.NewPath("p", 2)), "/b", 2*time.Hour)
	f.space.Attach("d", "eyal", Personal, r1)
	f.space.Attach("d", "eyal", Personal, r2)
	f.clk.Advance(time.Hour)
	if runs, _ := r1.Runs(); runs != 1 {
		t.Fatalf("r1 runs = %d", runs)
	}
	if runs, _ := r2.Runs(); runs != 0 {
		t.Fatalf("r2 ran on r1's timer: %d", runs)
	}
}

func TestPropertyMutationEventsCarryClass(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	var got []event.Event
	n := property.NewNotifier("watcher", func(e event.Event) { got = append(got, e) },
		event.SetProperty, event.RemoveProperty, event.ModifyProperty)
	f.space.Attach("d", "", Universal, n)

	f.space.Attach("d", "", Universal, property.NewUppercaser(0))
	f.space.AttachStatic("d", "", Universal, property.Static{Key: "label"})
	f.space.Replace("d", "", Universal, "uppercase", property.NewTranslator(0))
	f.space.Detach("d", "", Universal, "translate-fr")

	if len(got) != 4 {
		t.Fatalf("events = %d, want 4: %+v", len(got), got)
	}
	wantKinds := []event.Kind{event.SetProperty, event.SetProperty, event.ModifyProperty, event.RemoveProperty}
	wantClass := []string{ClassActive, ClassStatic, ClassActive, ClassActive}
	for i, e := range got {
		if e.Kind != wantKinds[i] || e.Detail != wantClass[i] {
			t.Fatalf("event %d = %+v, want kind %v class %s", i, e, wantKinds[i], wantClass[i])
		}
	}
}

func TestSignalExternalChange(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	var got []event.Event
	n := property.NewNotifier("watcher", func(e event.Event) { got = append(got, e) }, event.ExternalChange)
	f.space.Attach("d", "", Universal, n)
	if err := f.space.SignalExternalChange("d", "quote:XRX"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Detail != "quote:XRX" {
		t.Fatalf("got = %+v", got)
	}
	if err := f.space.SignalExternalChange("ghost", ""); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("err = %v", err)
	}
}

func TestDescribe(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	f.space.AddReference("d", "paul")
	f.space.Attach("d", "", Universal, property.NewVersioning())
	f.space.AttachStatic("d", "", Universal, property.Static{Key: "budget related"})
	f.space.Attach("d", "eyal", Personal, property.NewSpellCorrector(0))
	f.space.AttachStatic("d", "paul", Personal, property.Static{Key: "read by", Value: "friday"})

	d, err := f.space.Describe("d")
	if err != nil {
		t.Fatal(err)
	}
	if d.Doc != "d" || d.Owner != "eyal" || !strings.Contains(d.BitProvider, "nfs") {
		t.Fatalf("description = %+v", d)
	}
	if len(d.Universal.Actives) != 1 || d.Universal.Actives[0] != "versioning" {
		t.Fatalf("universal actives = %v", d.Universal.Actives)
	}
	if len(d.Universal.Statics) != 1 || d.Universal.Statics[0].Key != "budget related" {
		t.Fatalf("universal statics = %v", d.Universal.Statics)
	}
	if len(d.Users) != 2 || d.Users[0] != "eyal" || d.Users[1] != "paul" {
		t.Fatalf("users = %v", d.Users)
	}
	if got := d.Personal["eyal"].Actives; len(got) != 1 || got[0] != "spell-correct" {
		t.Fatalf("eyal actives = %v", got)
	}
	text := d.String()
	for _, want := range []string{"document d", "versioning", "spell-correct", "read by = friday"} {
		if !strings.Contains(text, want) {
			t.Fatalf("String() missing %q:\n%s", want, text)
		}
	}
	if _, err := f.space.Describe("ghost"); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("err = %v", err)
	}
}

func TestLevelString(t *testing.T) {
	if Universal.String() != "universal" || Personal.String() != "personal" {
		t.Fatal("Level.String broken")
	}
}

func TestDocumentsListing(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "a", "u", "/a", []byte("1"))
	f.addDoc(t, "b", "u", "/b", []byte("2"))
	docs := f.space.Documents()
	sort.Strings(docs)
	if len(docs) != 2 || docs[0] != "a" || docs[1] != "b" {
		t.Fatalf("Documents = %v", docs)
	}
}

func TestRemoveReference(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("x"))
	f.space.AddReference("d", "paul")
	if err := f.space.RemoveReference("d", "paul"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.space.Open("d", "paul"); !errors.Is(err, ErrNoReference) {
		t.Fatalf("open after removal: %v", err)
	}
	if err := f.space.RemoveReference("d", "paul"); !errors.Is(err, ErrNoReference) {
		t.Fatalf("double removal: %v", err)
	}
	if err := f.space.RemoveReference("d", "eyal"); err == nil {
		t.Fatal("owner reference removal allowed")
	}
	if err := f.space.RemoveReference("ghost", "x"); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("missing doc: %v", err)
	}
}

func TestRemoveDocument(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("keep me in the repo"))
	if err := f.space.RemoveDocument("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.space.Document("d"); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("document still visible: %v", err)
	}
	if err := f.space.RemoveDocument("d"); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("double removal: %v", err)
	}
	// The repository content is untouched.
	if fr, err := f.src.Fetch("/d"); err != nil || string(fr.Data) != "keep me in the repo" {
		t.Fatalf("repo content lost: %v", err)
	}
}

func TestCompressorUniversalEndToEnd(t *testing.T) {
	// The compressor on the base stores deflate bytes in the
	// repository while every user reads plain content.
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte(""))
	f.space.Attach("d", "", Universal, property.NewCompressor(6, 0))
	plain := []byte(strings.Repeat("placeless placeless placeless ", 50))
	if err := f.space.WriteDocument("d", "eyal", plain); err != nil {
		t.Fatal(err)
	}
	stored, _ := f.src.Fetch("/d")
	if len(stored.Data) >= len(plain) {
		t.Fatalf("repository holds uncompressed bytes: %d", len(stored.Data))
	}
	f.space.AddReference("d", "paul")
	for _, u := range []string{"eyal", "paul"} {
		data, _, err := f.space.ReadDocument("d", u)
		if err != nil || string(data) != string(plain) {
			t.Fatalf("%s read %d bytes, %v", u, len(data), err)
		}
	}
}

func TestConcurrentReadersWithPropertyChurn(t *testing.T) {
	// Readers race against attach/detach/reorder churn; every read
	// must succeed and return a consistent transform of the source
	// (the set of possible outputs is closed under the churned
	// properties).
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("abc"))
	f.space.AddReference("d", "reader")

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			up := property.NewUppercaser(0)
			if err := f.space.Attach("d", "reader", Personal, up); err == nil {
				f.space.Detach("d", "reader", Personal, "uppercase")
			}
		}
	}()
	for i := 0; i < 200; i++ {
		data, _, err := f.space.ReadDocument("d", "reader")
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if s := string(data); s != "abc" && s != "ABC" {
			t.Fatalf("read %d: unexpected content %q", i, s)
		}
	}
	<-done
}

func TestReadChargesPropertyExecutionTime(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("hello world"))
	f.space.Attach("d", "eyal", Personal, property.NewTranslator(20*time.Millisecond))
	start := f.clk.Now()
	data, res, err := f.space.ReadDocument("d", "eyal")
	if err != nil || string(data) != "bonjour monde" {
		t.Fatalf("read = %q, %v", data, err)
	}
	elapsed := f.clk.Now().Sub(start)
	if elapsed < 20*time.Millisecond {
		t.Fatalf("clock advanced only %v; property execution not charged", elapsed)
	}
	if res.Cost < 20*time.Millisecond {
		t.Fatalf("replacement cost %v missing execution time", res.Cost)
	}
}
