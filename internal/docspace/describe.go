package docspace

import (
	"fmt"
	"sort"

	"placeless/internal/property"
)

// NodeInfo summarizes one attachment point's properties.
type NodeInfo struct {
	// Actives are active property names in execution order.
	Actives []string
	// Statics are the attached labels in attachment order.
	Statics []property.Static
}

// Description is a structured summary of a document's configuration —
// the introspection view behind `plctl describe`.
type Description struct {
	// Doc is the document id; Owner its creator.
	Doc, Owner string
	// BitProvider names the content link.
	BitProvider string
	// Universal summarizes the base document's properties.
	Universal NodeInfo
	// Personal maps each reference owner (user or group) to its
	// properties.
	Personal map[string]NodeInfo
	// Users lists reference owners, sorted.
	Users []string
}

// Describe returns the document's configuration summary.
func (s *Space) Describe(doc string) (Description, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bases[doc]
	if !ok {
		return Description{}, fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	d := Description{
		Doc:         doc,
		Owner:       b.owner,
		BitProvider: b.bits.Name(),
		Universal:   nodeInfoLocked(b.node),
		Personal:    make(map[string]NodeInfo),
	}
	for user, ref := range s.refs[doc] {
		d.Users = append(d.Users, user)
		d.Personal[user] = nodeInfoLocked(ref.node)
	}
	sort.Strings(d.Users)
	return d, nil
}

// nodeInfoLocked snapshots a node's property lists. Caller holds s.mu.
func nodeInfoLocked(n *node) NodeInfo {
	info := NodeInfo{
		Actives: make([]string, 0, len(n.actives)),
		Statics: make([]property.Static, len(n.statics)),
	}
	for _, e := range n.actives {
		info.Actives = append(info.Actives, e.prop.Name())
	}
	copy(info.Statics, n.statics)
	return info
}

// String renders the description for CLI output.
func (d Description) String() string {
	out := fmt.Sprintf("document %s (owner %s)\n  bits: %s\n  universal:\n%s",
		d.Doc, d.Owner, d.BitProvider, d.Universal.indent("    "))
	for _, u := range d.Users {
		out += fmt.Sprintf("  reference %s:\n%s", u, d.Personal[u].indent("    "))
	}
	return out
}

// indent renders a NodeInfo with the given prefix.
func (n NodeInfo) indent(prefix string) string {
	out := ""
	for _, a := range n.Actives {
		out += prefix + "active: " + a + "\n"
	}
	for _, st := range n.Statics {
		if st.Value != "" {
			out += prefix + "static: " + st.Key + " = " + st.Value + "\n"
		} else {
			out += prefix + "static: " + st.Key + "\n"
		}
	}
	if out == "" {
		out = prefix + "(none)\n"
	}
	return out
}
