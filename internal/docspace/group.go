package docspace

import (
	"fmt"
	"sort"
)

// Group support: the paper's document spaces are "owned by an
// individual or a group of people", so a document reference — and the
// personal properties attached to it — can belong to a group. Every
// member of the group then shares that reference's view: the same
// property chain, and (for a cache) the same cached content.
//
// Resolution order for an access by user U: U's own reference wins;
// otherwise the reference of the alphabetically first group containing
// U that holds one. This makes resolution deterministic when a user
// belongs to several groups with references to the same document.

// DefineGroup creates (or extends) a group with the given members. A
// group name must not collide with a user who holds references, which
// is the caller's responsibility.
func (s *Space) DefineGroup(name string, members ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.groups == nil {
		s.groups = make(map[string]map[string]bool)
	}
	g := s.groups[name]
	if g == nil {
		g = make(map[string]bool)
		s.groups[name] = g
	}
	for _, m := range members {
		if m != "" {
			g[m] = true
		}
	}
}

// RemoveGroupMember drops a user from a group; absent members are
// ignored.
func (s *Space) RemoveGroupMember(group, user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g := s.groups[group]; g != nil {
		delete(g, user)
	}
}

// GroupMembers lists a group's members, sorted; nil for unknown
// groups.
func (s *Space) GroupMembers(group string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.groups[group]
	if g == nil {
		return nil
	}
	out := make([]string, 0, len(g))
	for m := range g {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// groupsOf returns the sorted names of groups containing user. Caller
// holds s.mu.
func (s *Space) groupsOf(user string) []string {
	var out []string
	for name, members := range s.groups {
		if members[user] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// resolveRefLocked finds the reference an access by user should go
// through: the user's own, else the first group reference available.
// Caller holds s.mu.
func (s *Space) resolveRefLocked(doc, user string) (*Ref, error) {
	if _, ok := s.bases[doc]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	if r, ok := s.refs[doc][user]; ok {
		return r, nil
	}
	for _, g := range s.groupsOf(user) {
		if r, ok := s.refs[doc][g]; ok {
			return r, nil
		}
	}
	return nil, fmt.Errorf("%w: %s/%s", ErrNoReference, doc, user)
}

// ResolveOwner returns the owner key of the reference an access by
// user resolves to — the user themselves, or a group name. Caches key
// entries by this owner so group members share cached content.
func (s *Space) ResolveOwner(doc, user string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := s.resolveRefLocked(doc, user)
	if err != nil {
		return "", err
	}
	return r.user, nil
}
