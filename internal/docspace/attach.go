package docspace

import (
	"fmt"
	"time"

	"placeless/internal/event"
	"placeless/internal/property"
)

// PropertyClass distinguishes what kind of attachment an event
// describes; it travels in event.Event.Detail so notifiers can filter
// semantically (e.g. ignore static labels and cache machinery, which
// cannot change content).
const (
	// ClassActive marks events about content-capable active
	// properties.
	ClassActive = "active"
	// ClassStatic marks events about static labels.
	ClassStatic = "static"
	// ClassMachinery marks events about cache-installed machinery
	// (notifiers); other caches must not invalidate on these.
	ClassMachinery = "machinery"
)

// machineryMarker is implemented by properties that are cache
// machinery rather than user-visible behaviour.
type machineryMarker interface{ CacheMachinery() }

// classOf returns the event class for an active property.
func classOf(p property.Active) string {
	if _, ok := p.(machineryMarker); ok {
		return ClassMachinery
	}
	return ClassActive
}

// Level selects an attachment point: the base document (universal) or
// a user's reference (personal).
type Level int

const (
	// Universal properties live on the base document and are seen by
	// all users (paper §2).
	Universal Level = iota
	// Personal properties live on a reference and are seen only by
	// its owner.
	Personal
)

// String names the level.
func (l Level) String() string {
	if l == Universal {
		return "universal"
	}
	return "personal"
}

// nodeFor resolves the attachment point. user is ignored for
// Universal.
func (s *Space) nodeFor(doc, user string, level Level) (*node, *Base, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bases[doc]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	if level == Universal {
		return b.node, b, nil
	}
	r, ok := s.refs[doc][user]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s/%s", ErrNoReference, doc, user)
	}
	return r.node, b, nil
}

// eventContext builds the capability set handed to the active
// property named propName attached at (doc, user, level).
func (s *Space) eventContext(doc, user string, level Level, n *node, b *Base, propName string) *property.EventContext {
	return &property.EventContext{
		Doc:  doc,
		User: user,
		Now:  s.clk.Now(),
		ReadCurrent: func() ([]byte, error) {
			return b.bits.ReadCurrent()
		},
		StoreAside: func(label string, data []byte) (string, error) {
			if s.archive == nil {
				return "", ErrNoArchive
			}
			path := "/archive/" + doc + "/" + label
			if err := s.archive.Store(path, data); err != nil {
				return "", err
			}
			return s.archive.Name() + ":" + path, nil
		},
		AttachStatic: func(key, value string) {
			// Errors (duplicate label) are ignored: archiving twice
			// under one label is idempotent from the property's view.
			_ = s.AttachStatic(doc, user, Universal, property.Static{Key: key, Value: value})
		},
		ScheduleTimer: func(d time.Duration) {
			s.scheduleTimer(doc, user, n, propName, d)
		},
	}
}

// scheduleTimer arms a timer event delivered to n's registry,
// addressed to the scheduling property so other timer-driven
// properties on the node can ignore it.
func (s *Space) scheduleTimer(doc, user string, n *node, propName string, d time.Duration) {
	s.clk.AfterFunc(d, func(now time.Time) {
		n.registry.Dispatch(event.Event{Kind: event.Timer, Doc: doc, User: user, Property: propName, Time: now})
	})
}

// subscribe registers prop's event kinds on n's registry and returns
// the subscription ids. Callers must hold s.mu.
func (s *Space) subscribe(n *node, prop property.Active, ctx *property.EventContext) []uint64 {
	kinds := prop.Events()
	ids := make([]uint64, 0, len(kinds))
	for _, k := range kinds {
		ids = append(ids, n.registry.Subscribe(k, func(e event.Event) {
			// Events for one node can be dispatched from several
			// goroutines at once (driver ops, server connections, timer
			// callbacks), so stamping Now on the shared context would
			// race; each delivery gets its own copy.
			c := *ctx
			c.Now = e.Time
			prop.OnEvent(&c, e)
		}))
	}
	return ids
}

// Attach registers an active property at (doc, user, level): the
// property's event kinds are subscribed on the node's registry, and a
// setProperty event is dispatched so notifiers — and the property
// itself (e.g. a replicator arming its first timer) — observe the
// attachment.
func (s *Space) Attach(doc, user string, level Level, p property.Active) error {
	n, b, err := s.nodeFor(doc, user, level)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if n.findActive(p.Name()) >= 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: property %s", ErrDuplicate, p.Name())
	}
	ctx := s.eventContext(doc, user, level, n, b, p.Name())
	ids := s.subscribe(n, p, ctx)
	n.actives = append(n.actives, activeEntry{prop: p, subIDs: ids})
	n.fpValid = false
	s.mu.Unlock()

	n.registry.Dispatch(event.Event{
		Kind: event.SetProperty, Doc: doc, User: user,
		Property: p.Name(), Time: s.clk.Now(), Detail: classOf(p),
	})
	return nil
}

// Detach removes the named active property and dispatches a
// removeProperty event.
func (s *Space) Detach(doc, user string, level Level, name string) error {
	n, _, err := s.nodeFor(doc, user, level)
	if err != nil {
		return err
	}
	s.mu.Lock()
	i := n.findActive(name)
	if i < 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoProperty, name)
	}
	entry := n.actives[i]
	n.actives = append(n.actives[:i:i], n.actives[i+1:]...)
	n.fpValid = false
	class := classOf(entry.prop)
	s.mu.Unlock()

	// Dispatch before unsubscribing so the departing property (and
	// notifiers) can observe its own removal.
	n.registry.Dispatch(event.Event{
		Kind: event.RemoveProperty, Doc: doc, User: user,
		Property: name, Time: s.clk.Now(), Detail: class,
	})
	for _, id := range entry.subIDs {
		n.registry.Unsubscribe(id)
	}
	return nil
}

// Replace swaps the named active property for a new implementation
// (e.g. a spell-corrector upgrade) and dispatches a modifyProperty
// event — the paper's invalidation cause 2.
func (s *Space) Replace(doc, user string, level Level, name string, p property.Active) error {
	n, b, err := s.nodeFor(doc, user, level)
	if err != nil {
		return err
	}
	s.mu.Lock()
	i := n.findActive(name)
	if i < 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoProperty, name)
	}
	old := n.actives[i]
	for _, id := range old.subIDs {
		n.registry.Unsubscribe(id)
	}
	ctx := s.eventContext(doc, user, level, n, b, p.Name())
	ids := s.subscribe(n, p, ctx)
	n.actives[i] = activeEntry{prop: p, subIDs: ids}
	n.fpValid = false
	class := classOf(p)
	s.mu.Unlock()

	n.registry.Dispatch(event.Event{
		Kind: event.ModifyProperty, Doc: doc, User: user,
		Property: name, Time: s.clk.Now(), Detail: class,
	})
	return nil
}

// Reorder rearranges the active properties at a node into the order
// given by names (which must be a permutation of the current names)
// and dispatches a reorderProperties event — the paper's invalidation
// cause 3, since execution order changes the resulting content.
func (s *Space) Reorder(doc, user string, level Level, names []string) error {
	n, _, err := s.nodeFor(doc, user, level)
	if err != nil {
		return err
	}
	s.mu.Lock()
	// Cache machinery (notifiers) is invisible to users and keeps its
	// position at the end; names must permute the user-visible
	// properties only.
	var regular, machinery []activeEntry
	for _, e := range n.actives {
		if classOf(e.prop) == ClassMachinery {
			machinery = append(machinery, e)
		} else {
			regular = append(regular, e)
		}
	}
	if len(names) != len(regular) {
		s.mu.Unlock()
		return fmt.Errorf("docspace: reorder needs all %d property names, got %d", len(regular), len(names))
	}
	// Reject duplicates in names (index lookup would alias entries).
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			s.mu.Unlock()
			return fmt.Errorf("%w: %s listed twice", ErrDuplicate, name)
		}
		seen[name] = true
	}
	reordered := make([]activeEntry, 0, len(n.actives))
	for _, name := range names {
		found := false
		for _, e := range regular {
			if e.prop.Name() == name {
				reordered = append(reordered, e)
				found = true
				break
			}
		}
		if !found {
			s.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrNoProperty, name)
		}
	}
	reordered = append(reordered, machinery...)
	changed := false
	for i := range reordered {
		if reordered[i].prop.Name() != n.actives[i].prop.Name() {
			changed = true
			break
		}
	}
	n.actives = reordered
	if changed {
		n.fpValid = false
	}
	s.mu.Unlock()

	if changed {
		n.registry.Dispatch(event.Event{
			Kind: event.ReorderProperties, Doc: doc, User: user,
			Time: s.clk.Now(), Detail: ClassActive,
		})
	}
	return nil
}

// AttachStatic attaches a static property (a label). Duplicate keys at
// the same node are rejected.
func (s *Space) AttachStatic(doc, user string, level Level, st property.Static) error {
	n, _, err := s.nodeFor(doc, user, level)
	if err != nil {
		return err
	}
	s.mu.Lock()
	for _, existing := range n.statics {
		if existing.Key == st.Key {
			s.mu.Unlock()
			return fmt.Errorf("%w: static %s", ErrDuplicate, st.Key)
		}
	}
	n.statics = append(n.statics, st)
	s.mu.Unlock()

	n.registry.Dispatch(event.Event{
		Kind: event.SetProperty, Doc: doc, User: user,
		Property: st.Key, Time: s.clk.Now(), Detail: ClassStatic,
	})
	return nil
}

// Statics returns the static properties at a node, in attachment
// order.
func (s *Space) Statics(doc, user string, level Level) ([]property.Static, error) {
	n, _, err := s.nodeFor(doc, user, level)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]property.Static, len(n.statics))
	copy(out, n.statics)
	return out, nil
}

// Actives returns the names of active properties at a node, in
// execution order.
func (s *Space) Actives(doc, user string, level Level) ([]string, error) {
	n, _, err := s.nodeFor(doc, user, level)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, len(n.actives))
	for i, e := range n.actives {
		names[i] = e.prop.Name()
	}
	return names, nil
}

// SignalExternalChange dispatches an externalChange event on the base
// document — how a property tracking external information (stock
// quotes, databases) tells interested parties, including cache
// notifiers, that the paper's invalidation cause 4 occurred.
func (s *Space) SignalExternalChange(doc, detail string) error {
	s.mu.Lock()
	b, ok := s.bases[doc]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	b.node.registry.Dispatch(event.Event{
		Kind: event.ExternalChange, Doc: doc, Time: s.clk.Now(), Detail: detail,
	})
	return nil
}
