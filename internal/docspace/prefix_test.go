package docspace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"placeless/internal/property"
	"placeless/internal/sig"
)

// fakePrefixMemo is a minimal PrefixIntermediates store: the multi-cut
// analogue of fakeMemo, with optional fault injection for the
// degraded-read tests.
type fakePrefixMemo struct {
	store    map[string][]byte
	keys     []string // install order, one per computed cut
	computes int
	calls    int
	failOn   int // fail the nth PrefixIntermediate call (1-based)
}

func newFakePrefixMemo() *fakePrefixMemo {
	return &fakePrefixMemo{store: make(map[string][]byte)}
}

func memoKey(src, fp sig.Signature) string {
	return string(src[:]) + string(fp[:])
}

var errStoreSick = errors.New("intermediate store unavailable")

func (m *fakePrefixMemo) Intermediate(doc string, src, fp sig.Signature, cost time.Duration, compute func() ([]byte, error)) ([]byte, bool, error) {
	return m.PrefixIntermediate(doc, "", src, Cut{FP: fp, Cost: cost, Universal: true}, compute)
}

func (m *fakePrefixMemo) LongestPrefix(doc string, src sig.Signature, fps []sig.Signature) ([]byte, int, bool) {
	for i := len(fps) - 1; i >= 0; i-- {
		if d, ok := m.store[memoKey(src, fps[i])]; ok {
			return append([]byte{}, d...), i, true
		}
	}
	return nil, -1, false
}

func (m *fakePrefixMemo) PrefixIntermediate(doc, user string, src sig.Signature, cut Cut, compute func() ([]byte, error)) ([]byte, bool, error) {
	m.calls++
	if m.failOn > 0 && m.calls == m.failOn {
		return nil, false, errStoreSick
	}
	k := memoKey(src, cut.FP)
	if d, ok := m.store[k]; ok {
		return append([]byte{}, d...), true, nil
	}
	d, err := compute()
	if err != nil {
		return nil, false, err
	}
	m.computes++
	m.store[k] = append([]byte{}, d...)
	m.keys = append(m.keys, k)
	return d, false, nil
}

// decodeChainFrames inverts appendChainFrame: an exact decoder existing
// at all is what proves the encoding injective.
func decodeChainFrames(enc []byte) ([][3]string, error) {
	var out [][3]string
	for len(enc) > 0 {
		var f [3]string
		for i := 0; i < 3; i++ {
			n, sz := binary.Uvarint(enc)
			if sz <= 0 || uint64(len(enc)-sz) < n {
				return nil, fmt.Errorf("corrupt frame at %d fields decoded", len(out)*3+i)
			}
			f[i] = string(enc[sz : sz+int(n)])
			enc = enc[sz+int(n):]
		}
		out = append(out, f)
	}
	return out, nil
}

func encodeChainFrames(frames [][3]string) []byte {
	var enc []byte
	for _, f := range frames {
		enc = appendChainFrame(enc, f[0], f[1], f[2])
	}
	return enc
}

// TestChainFrameCollisionRegression pins the framing bug: under the old
// "%s\x00%s\x00%s\n" separator framing, a two-property chain encoded
// byte-identically to a single property whose memo key embedded the
// separators, so the two chains shared a fingerprint — and, since equal
// fingerprints are trusted to imply equal bytes, the memo store would
// have served one chain's output for the other.
func TestChainFrameCollisionRegression(t *testing.T) {
	oldFrame := func(name, class, key string) string {
		return fmt.Sprintf("%s\x00%s\x00%s\n", name, class, key)
	}
	// Chain A: two properties. Chain B: one property whose memo key
	// embeds A's separators and B's whole second frame.
	hostileKey := "n/v1/k\nm\x00active\x00m/v1/q"
	oldA := oldFrame("n", "active", "n/v1/k") + oldFrame("m", "active", "m/v1/q")
	oldB := oldFrame("n", "active", hostileKey)
	if oldA != oldB {
		t.Fatal("regression fixture stale: the old framing no longer collides these chains")
	}

	newA := appendChainFrame(appendChainFrame(nil, "n", "active", "n/v1/k"), "m", "active", "m/v1/q")
	newB := appendChainFrame(nil, "n", "active", hostileKey)
	if bytes.Equal(newA, newB) {
		t.Fatal("length-prefixed framing still collides the hostile chains")
	}
}

// TestHostileChainsGetDistinctFingerprints is the same regression
// end-to-end: two documents whose chains collided under the old framing
// must expose distinct universal fingerprints.
func TestHostileChainsGetDistinctFingerprints(t *testing.T) {
	ident := func(b []byte) []byte { return b }
	f := newFixture(t)
	f.addDoc(t, "a", "eyal", "/a", []byte("content"))
	f.addDoc(t, "b", "eyal", "/b", []byte("content"))

	// Document a: chain [n (memo key n/v1/k), m (memo key m/v1/q)].
	for _, p := range []*property.Transformer{
		{Base: property.Base{PropName: "n"}, ReadTransform: ident, Version: 1, MemoID: "k"},
		{Base: property.Base{PropName: "m"}, ReadTransform: ident, Version: 1, MemoID: "q"},
	} {
		if err := f.space.Attach("a", "", Universal, p); err != nil {
			t.Fatal(err)
		}
	}
	// Document b: one property whose memo key embeds a's frames under
	// the old separator framing.
	hostile := &property.Transformer{
		Base: property.Base{PropName: "n"}, ReadTransform: ident,
		Version: 1, MemoID: "k\nm\x00active\x00m/v1/q",
	}
	if err := f.space.Attach("b", "", Universal, hostile); err != nil {
		t.Fatal(err)
	}

	fpA := f.fingerprint(t, "a")
	fpB := f.fingerprint(t, "b")
	if fpA == fpB {
		t.Fatal("hostile memo key collided two distinct chains' fingerprints")
	}
}

// FuzzChainFrameRoundTrip: every frame sequence must decode back to
// itself exactly — the constructive proof that no two distinct chains
// share an encoding, whatever bytes appear in names or memo keys.
func FuzzChainFrameRoundTrip(f *testing.F) {
	f.Add("n", "active", "n/v1/k", "m", "active", "m/v1/q")
	// The historical collision: frame two's content hidden inside frame
	// one's key using the old separators.
	f.Add("n", "active", "n/v1/k\nm\x00active\x00m/v1/q", "", "", "")
	f.Add("", "", "", "", "", "")
	f.Add("a\x00b", "c\nd", "\xff\xfe", "e", "", "f")
	f.Fuzz(func(t *testing.T, n1, c1, k1, n2, c2, k2 string) {
		frames := [][3]string{{n1, c1, k1}, {n2, c2, k2}}
		for _, seq := range [][][3]string{frames[:1], frames} {
			enc := encodeChainFrames(seq)
			got, err := decodeChainFrames(enc)
			if err != nil {
				t.Fatalf("decode(%q): %v", enc, err)
			}
			if len(got) != len(seq) {
				t.Fatalf("decode returned %d frames, want %d", len(got), len(seq))
			}
			for i := range seq {
				if got[i] != seq[i] {
					t.Fatalf("frame %d round-tripped as %q, want %q", i, got[i], seq[i])
				}
			}
		}
	})
}

// TestChainFrameQuickRoundTrip drives the same round-trip property from
// testing/quick's generator, covering arbitrary-length sequences.
func TestChainFrameQuickRoundTrip(t *testing.T) {
	prop := func(frames [][3]string) bool {
		got, err := decodeChainFrames(encodeChainFrames(frames))
		if err != nil || len(got) != len(frames) {
			return false
		}
		for i := range frames {
			if got[i] != frames[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCreateDocumentRejectsNULIds: NUL bytes in document ids would let
// crafted ids collide with the cache's composite keys (doc NUL user and
// the intermediate namespace prefix), so registration refuses them.
func TestCreateDocumentRejectsNULIds(t *testing.T) {
	f := newFixture(t)
	f.src.Store("/x", []byte("content"))
	bits := &property.RepoBitProvider{Repo: f.src, Path: "/x"}
	if _, err := f.space.CreateDocument("bad\x00id", "eyal", bits); !errors.Is(err, ErrBadID) {
		t.Fatalf("CreateDocument with NUL id: err = %v, want ErrBadID", err)
	}
	if _, err := f.space.CreateDocument("good-id", "eyal", bits); err != nil {
		t.Fatalf("CreateDocument without NUL: %v", err)
	}
}

// TestPrefixStagedMatchesPlainEverySubset is the pipeline's equivalence
// guard: whatever subset of cuts is already cached, the staged read
// must produce bytes identical to the unstaged path — resuming from the
// deepest cached prefix, serving cached segments, computing the rest.
func TestPrefixStagedMatchesPlainEverySubset(t *testing.T) {
	f := stageFixture(t)
	users := []string{"eyal", "paul"}
	plain := make(map[string][]byte)
	for _, u := range users {
		d, _, err := f.space.ReadDocument("d", u)
		if err != nil {
			t.Fatal(err)
		}
		plain[u] = d
	}

	// One warm pass to learn every cut's key and bytes.
	warm := newFakePrefixMemo()
	for _, u := range users {
		staged, _, trace, err := f.space.ReadDocumentStaged("d", u, warm)
		if err != nil {
			t.Fatal(err)
		}
		if !trace.Attempted || trace.Cuts == 0 {
			t.Fatalf("user %s: multi-cut staging not attempted: %+v", u, trace)
		}
		if !bytes.Equal(staged, plain[u]) {
			t.Fatalf("user %s: warm staged read diverged", u)
		}
	}
	if len(warm.keys) < 4 {
		t.Fatalf("expected at least 4 distinct cuts across two users, got %d", len(warm.keys))
	}

	// Every subset of the cuts, pre-seeded into a fresh store.
	for mask := 0; mask < 1<<len(warm.keys); mask++ {
		m := newFakePrefixMemo()
		for i, k := range warm.keys {
			if mask&(1<<i) != 0 {
				m.store[k] = append([]byte{}, warm.store[k]...)
			}
		}
		for _, u := range users {
			staged, _, _, err := f.space.ReadDocumentStaged("d", u, m)
			if err != nil {
				t.Fatalf("mask %b user %s: %v", mask, u, err)
			}
			if !bytes.Equal(staged, plain[u]) {
				t.Fatalf("mask %b user %s: staged read diverged:\nplain:  %q\nstaged: %q",
					mask, u, plain[u], staged)
			}
		}
	}
}

// TestPrefixSharesPersonalPrefix: two users whose personal chains share
// a leading translate property share its cut — the personal-prefix
// sharing the single-cut split could not express.
func TestPrefixSharesPersonalPrefix(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("the quick brown fox\nand the lazy dog\n"))
	if err := f.space.Attach("d", "", Universal, property.NewSpellCorrector(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.space.AddReference("d", "paul"); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"eyal", "paul"} {
		// Shared personal prefix: same dictionary, same memo key.
		if err := f.space.Attach("d", u, Personal, property.NewTranslator(time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		if err := f.space.Attach("d", u, Personal, property.NewWatermarker(u, 0)); err != nil {
			t.Fatal(err)
		}
	}

	m := newFakePrefixMemo()
	if _, _, trace, err := f.space.ReadDocumentStaged("d", "eyal", m); err != nil || trace.DeepestHit != -1 {
		t.Fatalf("cold read: trace=%+v err=%v", trace, err)
	}
	afterEyal := m.computes

	_, _, trace, err := f.space.ReadDocumentStaged("d", "paul", m)
	if err != nil {
		t.Fatal(err)
	}
	// Paul's probe must resume past the universal boundary (cut 0),
	// inside the personal chain: the translate cut (cut 1) is shared,
	// only the watermark segment computes.
	if trace.DeepestHit < 1 {
		t.Fatalf("DeepestHit = %d, want >= 1 (resume inside the personal chain): %+v", trace.DeepestHit, trace)
	}
	if got := m.computes - afterEyal; got != 1 {
		t.Fatalf("paul computed %d segments, want 1 (watermark only)", got)
	}
	if !trace.Hit {
		t.Fatal("resuming past the boundary must report the universal stage memoized")
	}
}

// TestStoreErrorFallsBackToDirectExecution: a sick intermediate store
// must degrade the read to direct execution — correct bytes, MemoErr
// set — never fail it, at whichever cut the failure strikes.
func TestStoreErrorFallsBackToDirectExecution(t *testing.T) {
	f := stageFixture(t)
	plain, _, err := f.space.ReadDocument("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}

	// Probe how many cuts eyal's read offers.
	probe := newFakePrefixMemo()
	if _, _, tr, err := f.space.ReadDocumentStaged("d", "eyal", probe); err != nil || tr.Cuts == 0 {
		t.Fatalf("probe: trace=%+v err=%v", tr, err)
	}

	for fail := 1; fail <= probe.calls; fail++ {
		m := newFakePrefixMemo()
		m.failOn = fail
		staged, _, trace, err := f.space.ReadDocumentStaged("d", "eyal", m)
		if err != nil {
			t.Fatalf("failOn=%d: read failed instead of degrading: %v", fail, err)
		}
		if !trace.MemoErr {
			t.Fatalf("failOn=%d: MemoErr not set: %+v", fail, trace)
		}
		if !trace.Attempted {
			t.Fatalf("failOn=%d: Attempted lost on degraded read", fail)
		}
		if trace.Hit {
			t.Fatalf("failOn=%d: degraded read claimed a memo hit", fail)
		}
		if !bytes.Equal(staged, plain) {
			t.Fatalf("failOn=%d: degraded read diverged:\nplain:  %q\nstaged: %q", fail, plain, staged)
		}
	}

	// Same degradation through the legacy single-cut protocol.
	legacy := &failingMemo{}
	staged, _, trace, err := f.space.ReadDocumentStaged("d", "eyal", legacy)
	if err != nil {
		t.Fatalf("legacy store failure not degraded: %v", err)
	}
	if !trace.MemoErr || !trace.Attempted || trace.Hit {
		t.Fatalf("legacy degraded trace = %+v", trace)
	}
	if !bytes.Equal(staged, plain) {
		t.Fatal("legacy degraded read diverged")
	}
}

// failingMemo is an Intermediates store whose every call fails.
type failingMemo struct{}

func (failingMemo) Intermediate(doc string, src, fp sig.Signature, cost time.Duration, compute func() ([]byte, error)) ([]byte, bool, error) {
	return nil, false, errStoreSick
}

// TestBoundaryCutMatchesUniversalFingerprint: the boundary cut's prefix
// fingerprint must be bit-identical to the cached universal-chain
// fingerprint — the compatibility bridge that keeps single-cut stores
// and the durable tier's ContentKey on the same keys.
func TestBoundaryCutMatchesUniversalFingerprint(t *testing.T) {
	f := stageFixture(t)
	m := newFakePrefixMemo()
	_, _, trace, err := f.space.ReadDocumentStaged("d", "eyal", m)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Fingerprint != f.fingerprint(t, "d") {
		t.Fatal("boundary prefix fingerprint diverged from UniversalFingerprint")
	}
}
