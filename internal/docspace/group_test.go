package docspace

import (
	"errors"
	"testing"

	"placeless/internal/property"
)

func TestGroupMembership(t *testing.T) {
	f := newFixture(t)
	f.space.DefineGroup("team", "alice", "bob", "")
	f.space.DefineGroup("team", "carol") // extend
	got := f.space.GroupMembers("team")
	if len(got) != 3 || got[0] != "alice" || got[1] != "bob" || got[2] != "carol" {
		t.Fatalf("members = %v", got)
	}
	f.space.RemoveGroupMember("team", "bob")
	f.space.RemoveGroupMember("team", "nobody")
	f.space.RemoveGroupMember("ghosts", "x")
	if got := f.space.GroupMembers("team"); len(got) != 2 {
		t.Fatalf("after removal: %v", got)
	}
	if f.space.GroupMembers("ghosts") != nil {
		t.Fatal("unknown group returned members")
	}
}

func TestGroupReferenceSharedView(t *testing.T) {
	// A reference owned by a group: every member reads through it and
	// sees the group's property chain.
	f := newFixture(t)
	f.addDoc(t, "spec", "author", "/spec", []byte("teh spec"))
	f.space.DefineGroup("reviewers", "alice", "bob")
	if _, err := f.space.AddReference("spec", "reviewers"); err != nil {
		t.Fatal(err)
	}
	if err := f.space.Attach("spec", "reviewers", Personal, property.NewSpellCorrector(0)); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob"} {
		data, _, err := f.space.ReadDocument("spec", u)
		if err != nil || string(data) != "the spec" {
			t.Fatalf("%s read %q, %v", u, data, err)
		}
	}
	// Non-members still have no access.
	if _, _, err := f.space.ReadDocument("spec", "mallory"); !errors.Is(err, ErrNoReference) {
		t.Fatalf("non-member err = %v", err)
	}
}

func TestDirectReferenceWinsOverGroup(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "author", "/d", []byte("plain"))
	f.space.DefineGroup("team", "alice")
	f.space.AddReference("d", "team")
	f.space.AddReference("d", "alice")
	f.space.Attach("d", "team", Personal, property.NewUppercaser(0))
	// Alice's own (property-free) reference takes precedence.
	data, _, err := f.space.ReadDocument("d", "alice")
	if err != nil || string(data) != "plain" {
		t.Fatalf("read = %q, %v", data, err)
	}
	owner, err := f.space.ResolveOwner("d", "alice")
	if err != nil || owner != "alice" {
		t.Fatalf("ResolveOwner = %q, %v", owner, err)
	}
}

func TestGroupResolutionDeterministic(t *testing.T) {
	// A user in two groups resolves to the alphabetically first group
	// holding a reference.
	f := newFixture(t)
	f.addDoc(t, "d", "author", "/d", []byte("x"))
	f.space.DefineGroup("zeta", "alice")
	f.space.DefineGroup("alpha", "alice")
	f.space.AddReference("d", "zeta")
	owner, err := f.space.ResolveOwner("d", "alice")
	if err != nil || owner != "zeta" {
		t.Fatalf("ResolveOwner = %q, %v (only zeta holds a ref)", owner, err)
	}
	f.space.AddReference("d", "alpha")
	owner, _ = f.space.ResolveOwner("d", "alice")
	if owner != "alpha" {
		t.Fatalf("ResolveOwner = %q, want alphabetically first group", owner)
	}
}

func TestGroupWritePath(t *testing.T) {
	f := newFixture(t)
	f.addDoc(t, "d", "author", "/d", []byte("v1"))
	f.space.DefineGroup("editors", "ed")
	f.space.AddReference("d", "editors")
	if err := f.space.WriteDocument("d", "ed", []byte("v2 by ed")); err != nil {
		t.Fatal(err)
	}
	fr, _ := f.src.Fetch("/d")
	if string(fr.Data) != "v2 by ed" {
		t.Fatalf("stored %q", fr.Data)
	}
}

func TestResolveOwnerErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := f.space.ResolveOwner("ghost", "u"); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("err = %v", err)
	}
	f.addDoc(t, "d", "author", "/d", []byte("x"))
	if _, err := f.space.ResolveOwner("d", "stranger"); !errors.Is(err, ErrNoReference) {
		t.Fatalf("err = %v", err)
	}
}
