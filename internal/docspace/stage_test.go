package docspace

import (
	"bytes"
	"testing"
	"time"

	"placeless/internal/property"
	"placeless/internal/sig"
)

// fakeMemo is a minimal Intermediates store for exercising the staged
// read path without a cache.
type fakeMemo struct {
	store    map[string][]byte
	computes int
}

func newFakeMemo() *fakeMemo { return &fakeMemo{store: make(map[string][]byte)} }

func (m *fakeMemo) Intermediate(doc string, src, fp sig.Signature, cost time.Duration, compute func() ([]byte, error)) ([]byte, bool, error) {
	k := string(src[:]) + string(fp[:])
	if d, ok := m.store[k]; ok {
		return append([]byte{}, d...), true, nil
	}
	d, err := compute()
	if err != nil {
		return nil, false, err
	}
	m.computes++
	m.store[k] = append([]byte{}, d...)
	return d, false, nil
}

// stageFixture builds a document with a memoizable universal chain
// (spell correct, then summarize) and a personal watermark for each of
// two users.
func stageFixture(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t)
	f.addDoc(t, "d", "eyal", "/d", []byte("teh first line is recieve\nsecond line\nthird line\nfourth line\n"))
	if err := f.space.Attach("d", "", Universal, property.NewSpellCorrector(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := f.space.Attach("d", "", Universal, property.NewSummarizer(3, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := f.space.Attach("d", "eyal", Personal, property.NewWatermarker("eyal", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.space.AddReference("d", "paul"); err != nil {
		t.Fatal(err)
	}
	if err := f.space.Attach("d", "paul", Personal, property.NewWatermarker("paul", 0)); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) fingerprint(t *testing.T, doc string) sig.Signature {
	t.Helper()
	fp, err := f.space.UniversalFingerprint(doc)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestFingerprintStableAcrossReads(t *testing.T) {
	f := stageFixture(t)
	fp1 := f.fingerprint(t, "d")
	if _, _, err := f.space.ReadDocument("d", "eyal"); err != nil {
		t.Fatal(err)
	}
	if fp2 := f.fingerprint(t, "d"); fp2 != fp1 {
		t.Fatal("fingerprint changed without a chain mutation")
	}
}

// TestFingerprintBumpsOnChainMutations is the regression guard for the
// paper's invalidation causes 2 and 3: every mutation of the universal
// chain must move the fingerprint, so previously memoized intermediates
// become unreachable.
func TestFingerprintBumpsOnChainMutations(t *testing.T) {
	f := stageFixture(t)
	fp := f.fingerprint(t, "d")

	// Cause 2: attach.
	if err := f.space.Attach("d", "", Universal, property.NewLineNumberer(0)); err != nil {
		t.Fatal(err)
	}
	fpAttach := f.fingerprint(t, "d")
	if fpAttach == fp {
		t.Fatal("Attach did not change the fingerprint")
	}

	// Cause 2: replace (the spelling-corrector upgrade).
	upgraded := property.NewSpellCorrector(time.Millisecond)
	upgraded.Version = 2
	if err := f.space.Replace("d", "", Universal, "spell-correct", upgraded); err != nil {
		t.Fatal(err)
	}
	fpReplace := f.fingerprint(t, "d")
	if fpReplace == fpAttach {
		t.Fatal("Replace did not change the fingerprint")
	}

	// Cause 3: reorder.
	if err := f.space.Reorder("d", "", Universal, []string{"summarize-3", "spell-correct", "line-number"}); err != nil {
		t.Fatal(err)
	}
	fpReorder := f.fingerprint(t, "d")
	if fpReorder == fpReplace {
		t.Fatal("Reorder did not change the fingerprint")
	}

	// Cause 2: detach.
	if err := f.space.Detach("d", "", Universal, "line-number"); err != nil {
		t.Fatal(err)
	}
	if f.fingerprint(t, "d") == fpReorder {
		t.Fatal("Detach did not change the fingerprint")
	}
}

func TestFingerprintIsContentDefined(t *testing.T) {
	// The fingerprint digests the chain, it is not a counter: undoing
	// a reorder restores the original value, making the old
	// intermediates correctly reachable again.
	f := stageFixture(t)
	fp := f.fingerprint(t, "d")
	if err := f.space.Reorder("d", "", Universal, []string{"summarize-3", "spell-correct"}); err != nil {
		t.Fatal(err)
	}
	if f.fingerprint(t, "d") == fp {
		t.Fatal("reorder did not change the fingerprint")
	}
	if err := f.space.Reorder("d", "", Universal, []string{"spell-correct", "summarize-3"}); err != nil {
		t.Fatal(err)
	}
	if f.fingerprint(t, "d") != fp {
		t.Fatal("restoring the order did not restore the fingerprint")
	}
}

func TestFingerprintIgnoresPersonalAndMachinery(t *testing.T) {
	f := stageFixture(t)
	fp := f.fingerprint(t, "d")

	if err := f.space.Attach("d", "paul", Personal, property.NewUppercaser(0)); err != nil {
		t.Fatal(err)
	}
	if f.fingerprint(t, "d") != fp {
		t.Fatal("personal attachment changed the universal fingerprint")
	}

	machinery := testMachinery{property.Base{PropName: "notifier:test"}}
	if err := f.space.Attach("d", "", Universal, machinery); err != nil {
		t.Fatal(err)
	}
	if f.fingerprint(t, "d") != fp {
		t.Fatal("cache machinery changed the universal fingerprint")
	}
}

// testMachinery is a stand-in for cache-installed plumbing.
type testMachinery struct{ property.Base }

func (testMachinery) CacheMachinery() {}

func TestStagedReadMatchesPlainRead(t *testing.T) {
	f := stageFixture(t)
	memo := newFakeMemo()
	for _, user := range []string{"eyal", "paul", "eyal"} {
		plain, plainRes, err := f.space.ReadDocument("d", user)
		if err != nil {
			t.Fatal(err)
		}
		staged, stagedRes, trace, err := f.space.ReadDocumentStaged("d", user, memo)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain, staged) {
			t.Fatalf("user %s: staged read diverged:\nplain:  %q\nstaged: %q", user, plain, staged)
		}
		if !trace.Attempted {
			t.Fatalf("user %s: memoizable chain not attempted", user)
		}
		// WrapInput runs on every read in both modes, so the
		// cache-facing result must be identical.
		if plainRes.Cacheability != stagedRes.Cacheability || plainRes.Cost != stagedRes.Cost {
			t.Fatalf("user %s: read results diverged: %+v vs %+v", user, plainRes, stagedRes)
		}
	}
	if memo.computes != 1 {
		t.Fatalf("universal stage computed %d times for 3 reads of one (content, chain), want 1", memo.computes)
	}
}

func TestStagedReadSavesUniversalTime(t *testing.T) {
	// On an intermediate hit the universal transforms' simulated
	// execution time is not charged; the personal suffix's is.
	f := stageFixture(t)
	memo := newFakeMemo()
	if _, _, trace, err := f.space.ReadDocumentStaged("d", "eyal", memo); err != nil || trace.Hit {
		t.Fatalf("warm-up: trace=%+v err=%v", trace, err)
	}
	start := f.clk.Now()
	_, _, trace, err := f.space.ReadDocumentStaged("d", "paul", memo)
	if err != nil || !trace.Hit {
		t.Fatalf("trace=%+v err=%v", trace, err)
	}
	elapsedHit := f.clk.Now().Sub(start)
	// The two universal transforms charge 1ms each when executed;
	// a hit must skip both.
	if elapsedHit >= 2*time.Millisecond {
		t.Fatalf("intermediate hit still charged universal time: %v", elapsedHit)
	}
	if trace.SavedBytes <= 0 {
		t.Fatalf("SavedBytes = %d on a hit", trace.SavedBytes)
	}
}

func TestNonMemoizablePropertyDisablesStaging(t *testing.T) {
	f := stageFixture(t)
	// A byte-touching universal property without a memo contract: a
	// hand-built transformer (no MemoID), the cautious default.
	opaque := &property.Transformer{
		Base:          property.Base{PropName: "opaque"},
		ReadTransform: bytes.ToUpper,
		Version:       1,
	}
	if err := f.space.Attach("d", "", Universal, opaque); err != nil {
		t.Fatal(err)
	}
	memo := newFakeMemo()
	plain, _, err := f.space.ReadDocument("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	staged, _, trace, err := f.space.ReadDocumentStaged("d", "eyal", memo)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Attempted || trace.Hit {
		t.Fatalf("non-memoizable chain was staged: %+v", trace)
	}
	if memo.computes != 0 || len(memo.store) != 0 {
		t.Fatal("memo store consulted for a non-memoizable chain")
	}
	if !bytes.Equal(plain, staged) {
		t.Fatalf("fallback path diverged: %q vs %q", plain, staged)
	}
}

func TestExternalInfoDisablesStaging(t *testing.T) {
	// Paper invalidation cause 4: a property embedding external
	// information must force full re-execution on every read.
	f := stageFixture(t)
	quote := property.NewExternalVar("stock", 42)
	if err := f.space.Attach("d", "", Universal, property.NewExternalInfo(quote, property.ByVerifier, 0)); err != nil {
		t.Fatal(err)
	}
	memo := newFakeMemo()
	_, _, trace, err := f.space.ReadDocumentStaged("d", "eyal", memo)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Attempted {
		t.Fatal("external-information chain was staged")
	}
}

func TestStagedReadWithNilMemoFallsBack(t *testing.T) {
	f := stageFixture(t)
	plain, _, err := f.space.ReadDocument("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	staged, _, trace, err := f.space.ReadDocumentStaged("d", "eyal", nil)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Attempted {
		t.Fatal("nil store must disable staging")
	}
	if !bytes.Equal(plain, staged) {
		t.Fatalf("nil-store fallback diverged: %q vs %q", plain, staged)
	}
}

// TestContentKeyTracksEveryInvalidationCause pins the durable tier's
// promotion check: the content key must change exactly when one of the
// paper's key-visible invalidation causes fires — content written
// (source half), chain mutated at either level (fingerprint halves) —
// and must stay bit-identical across reads that change nothing.
func TestContentKeyTracksEveryInvalidationCause(t *testing.T) {
	f := stageFixture(t)
	k1, err := f.space.ContentKey("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Memoizable {
		t.Fatal("fully memoizable chain reported non-memoizable")
	}
	if _, _, err := f.space.ReadDocument("d", "eyal"); err != nil {
		t.Fatal(err)
	}
	k2, err := f.space.ContentKey("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("content key drifted without a mutation: %+v vs %+v", k1, k2)
	}

	// Different users share source and universal halves but differ in
	// the personal fingerprint (distinct watermark chains).
	kPaul, err := f.space.ContentKey("d", "paul")
	if err != nil {
		t.Fatal(err)
	}
	if kPaul.SourceSig != k1.SourceSig || kPaul.UniversalFP != k1.UniversalFP {
		t.Fatal("universal key halves differ across users")
	}
	if kPaul.PersonalFP == k1.PersonalFP {
		t.Fatal("distinct personal chains share a personal fingerprint")
	}

	// Cause 1: content written through the repository.
	f.src.Store("/d", []byte("entirely new content\n"))
	k3, err := f.space.ContentKey("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if k3.SourceSig == k1.SourceSig {
		t.Fatal("source signature unchanged after a content write")
	}
	if k3.UniversalFP != k1.UniversalFP || k3.PersonalFP != k1.PersonalFP {
		t.Fatal("content write moved a fingerprint half")
	}

	// Cause 2 at the universal level.
	if err := f.space.Attach("d", "", Universal, property.NewUppercaser(0)); err != nil {
		t.Fatal(err)
	}
	k4, err := f.space.ContentKey("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if k4.UniversalFP == k3.UniversalFP {
		t.Fatal("universal fingerprint unchanged after a universal attach")
	}
	if k4.PersonalFP != k3.PersonalFP {
		t.Fatal("universal attach moved the personal fingerprint")
	}

	// Cause 2 at the personal level.
	if err := f.space.Attach("d", "eyal", Personal, property.NewLineNumberer(0)); err != nil {
		t.Fatal(err)
	}
	k5, err := f.space.ContentKey("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if k5.PersonalFP == k4.PersonalFP {
		t.Fatal("personal fingerprint unchanged after a personal attach")
	}
	if k5.UniversalFP != k4.UniversalFP {
		t.Fatal("personal attach moved the universal fingerprint")
	}
}

// TestContentKeyNonMemoizablePersonal: a byte-touching personal
// property without a memo contract poisons the whole key — results
// transformed by it must never be persisted.
func TestContentKeyNonMemoizablePersonal(t *testing.T) {
	f := stageFixture(t)
	opaque := &property.Transformer{
		Base:          property.Base{PropName: "opaque-personal"},
		ReadTransform: func(b []byte) []byte { return b },
		Version:       1,
	}
	if err := f.space.Attach("d", "eyal", Personal, opaque); err != nil {
		t.Fatal(err)
	}
	k, err := f.space.ContentKey("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if k.Memoizable {
		t.Fatal("non-memoizable personal transform left the key memoizable")
	}
	// The other user's chain is untouched and stays provable.
	kPaul, err := f.space.ContentKey("d", "paul")
	if err != nil {
		t.Fatal(err)
	}
	if !kPaul.Memoizable {
		t.Fatal("unrelated user's key poisoned")
	}
}
