package docspace

import (
	"sort"

	"placeless/internal/property"
)

// Property-based document search. Placeless organizes documents by
// their properties rather than their location (the project's founding
// idea — properties like "budget related" exist so documents can be
// found by them). FindByStatic answers "which documents carry this
// label, as seen by this user": universal statics are visible to every
// user with a reference, personal statics only to their owner.

// Match describes one search hit.
type Match struct {
	// Doc is the document id.
	Doc string
	// Value is the matched static property's value.
	Value string
	// Level reports where the property is attached.
	Level Level
}

// FindByStatic returns the documents visible to user carrying a static
// property with the given key. If value is non-empty, the property
// value must also match. Results are sorted by document id; a document
// carrying the key at both levels yields the universal match.
func (s *Space) FindByStatic(user, key, value string) []Match {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Match
	for doc, b := range s.bases {
		ref, err := s.resolveRefLocked(doc, user)
		if err != nil {
			continue // not visible to this user
		}
		if m, ok := matchStatics(b.node.statics, key, value); ok {
			out = append(out, Match{Doc: doc, Value: m, Level: Universal})
			continue
		}
		if m, ok := matchStatics(ref.node.statics, key, value); ok {
			out = append(out, Match{Doc: doc, Value: m, Level: Personal})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}

// matchStatics scans a static list for key (and value, if non-empty).
func matchStatics(statics []property.Static, key, value string) (string, bool) {
	for _, st := range statics {
		if st.Key == key && (value == "" || st.Value == value) {
			return st.Value, true
		}
	}
	return "", false
}
