package docspace

import (
	"io"

	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/stream"
)

// snapshotActives copies a node's active-property list under the space
// lock so path execution runs without holding it.
func (s *Space) snapshotActives(n *node) []property.Active {
	s.mu.Lock()
	defer s.mu.Unlock()
	props := make([]property.Active, len(n.actives))
	for i, e := range n.actives {
		props[i] = e.prop
	}
	return props
}

// Open executes the read path for user's reference to doc (paper §2,
// Figure 2): the bit-provider produces the raw stream, base-document
// properties interpose their custom input streams first, then
// reference properties; getInputStream events are dispatched at both
// levels. The returned ReadResult carries the aggregated cacheability
// vote, the verifiers, and the replacement cost for the cache.
func (s *Space) Open(doc, user string) (io.ReadCloser, property.ReadResult, error) {
	s.mu.Lock()
	r, err := s.resolveRefLocked(doc, user)
	if err != nil {
		s.mu.Unlock()
		return nil, property.ReadResult{}, err
	}
	b := r.base
	s.mu.Unlock()

	now := s.clk.Now()
	rc := &property.ReadContext{Doc: doc, User: user, Now: now, Sleep: s.clk.Sleep}
	if d := s.AccessOverhead(); d > 0 {
		// Middleware cost: repository → base server → reference
		// server. It is real rebuild cost, so it also enters the
		// replacement-cost accumulator.
		s.clk.Sleep(d)
		rc.AddCost(d)
	}

	raw, err := b.bits.Open(rc)
	if err != nil {
		return nil, property.ReadResult{}, err
	}

	var wrappers []stream.InputWrapper
	for _, p := range s.snapshotActives(b.node) {
		if w := p.WrapInput(rc); w != nil {
			wrappers = append(wrappers, w)
		}
	}
	for _, p := range s.snapshotActives(r.node) {
		if w := p.WrapInput(rc); w != nil {
			wrappers = append(wrappers, w)
		}
	}

	e := event.Event{Kind: event.GetInputStream, Doc: doc, User: user, Time: now}
	b.node.registry.Dispatch(e)
	r.node.registry.Dispatch(e)

	return stream.ChainInput(raw, wrappers...), rc.Result(), nil
}

// ReadDocument is a convenience wrapper around Open that returns the
// fully transformed content.
func (s *Space) ReadDocument(doc, user string) ([]byte, property.ReadResult, error) {
	r, res, err := s.Open(doc, user)
	if err != nil {
		return nil, res, err
	}
	data, err := stream.ReadAllAndClose(r)
	return data, res, err
}

// notifyingCloser dispatches contentWritten when the composed write
// stream closes.
type notifyingCloser struct {
	io.WriteCloser
	closed bool
	onDone func()
}

func (n *notifyingCloser) Close() error {
	err := n.WriteCloser.Close()
	if !n.closed {
		n.closed = true
		if n.onDone != nil {
			n.onDone()
		}
	}
	return err
}

// Create executes the write path for user's reference to doc: the
// bit-provider supplies the raw sink, reference properties interpose
// their custom output streams first (they see application bytes
// first), then base-document properties; getOutputStream events are
// dispatched at both levels — which is when a versioning property
// snapshots the superseded content. Closing the returned stream stores
// the content and dispatches a contentWritten event on the base, the
// hook notifiers use for the paper's invalidation cause 1 (updates
// through the Placeless system).
func (s *Space) Create(doc, user string) (io.WriteCloser, error) {
	s.mu.Lock()
	r, err := s.resolveRefLocked(doc, user)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	b := r.base
	s.mu.Unlock()

	if d := s.AccessOverhead(); d > 0 {
		s.clk.Sleep(d)
	}
	now := s.clk.Now()
	wc := &property.WriteContext{
		Doc: doc, User: user, Now: now, Sleep: s.clk.Sleep,
		Snapshot: func() ([]byte, error) { return b.bits.ReadCurrent() },
	}
	// Reuse the event-context hooks for StoreAside/AttachStatic.
	ectx := s.eventContext(doc, user, Universal, b.node, b, "")
	wc.StoreAside = ectx.StoreAside
	wc.AttachStatic = ectx.AttachStatic

	sink, err := b.bits.Create(wc)
	if err != nil {
		return nil, err
	}

	var wrappers []stream.OutputWrapper
	for _, p := range s.snapshotActives(r.node) {
		if w := p.WrapOutput(wc); w != nil {
			wrappers = append(wrappers, w)
		}
	}
	for _, p := range s.snapshotActives(b.node) {
		if w := p.WrapOutput(wc); w != nil {
			wrappers = append(wrappers, w)
		}
	}

	e := event.Event{Kind: event.GetOutputStream, Doc: doc, User: user, Time: now}
	r.node.registry.Dispatch(e)
	b.node.registry.Dispatch(e)

	composed := stream.ChainOutput(sink, wrappers...)
	return &notifyingCloser{
		WriteCloser: composed,
		onDone: func() {
			b.node.registry.Dispatch(event.Event{
				Kind: event.ContentWritten, Doc: doc, User: user, Time: s.clk.Now(),
			})
		},
	}, nil
}

// WriteDocument is a convenience wrapper around Create that writes
// data and closes the stream.
func (s *Space) WriteDocument(doc, user string, data []byte) error {
	w, err := s.Create(doc, user)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// WritePathVote returns the aggregated cacheability vote of the
// write-path properties for (doc, user) without executing a write.
// Write-back caches use it to decide whether getOutputStream
// operations must be forwarded per buffered write (paper §3: "these
// properties should set the cacheability indicator so that
// getOutputStream operations get forwarded"). The properties'
// WrapOutput hooks are invoked for their votes; the wrappers they
// return are discarded unused.
func (s *Space) WritePathVote(doc, user string) (property.Cacheability, error) {
	s.mu.Lock()
	r, err := s.resolveRefLocked(doc, user)
	if err != nil {
		s.mu.Unlock()
		return property.Unrestricted, err
	}
	b := r.base
	s.mu.Unlock()

	wc := &property.WriteContext{Doc: doc, User: user, Now: s.clk.Now()}
	for _, p := range s.snapshotActives(r.node) {
		p.WrapOutput(wc)
	}
	for _, p := range s.snapshotActives(b.node) {
		p.WrapOutput(wc)
	}
	return wc.Cacheability(), nil
}

// ForwardEvent redelivers an operation event on behalf of a cache
// serving a hit for content cached under the CacheWithEvents
// indicator: "the cache will forward the operation, but the Placeless
// system will not execute them fully, instead just use them to trigger
// active properties that have registered for these events" (paper §3).
// Only OnEvent handlers run; no streams are built and no content
// moves.
func (s *Space) ForwardEvent(doc, user string, kind event.Kind) error {
	s.mu.Lock()
	r, err := s.resolveRefLocked(doc, user)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	b := r.base
	s.mu.Unlock()

	e := event.Event{
		Kind: kind, Doc: doc, User: user,
		Time: s.clk.Now(), Detail: "forwarded",
	}
	b.node.registry.Dispatch(e)
	r.node.registry.Dispatch(e)
	return nil
}
