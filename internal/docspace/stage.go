package docspace

import (
	"fmt"
	"strings"
	"time"

	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/sig"
	"placeless/internal/stream"
)

// This file splits the read path into a universal stage (bit-provider
// plus base-document properties, identical for every user) and a
// personal suffix (reference properties), so caches can memoize the
// universal stage's output across users. The memo key is content
// addressed: (signature of the raw source bytes, fingerprint of the
// ordered universal chain). The paper's four invalidation causes map
// onto the key cleanly — cause 1 (content written) changes the source
// signature, causes 2 and 3 (property add/remove/modify, reorder)
// change the fingerprint, and cause 4 (external information) is
// excluded by marking such properties non-memoizable, which disables
// memoization of any stage containing them.

// Intermediates is the cache-side store for universal-stage outputs.
// Intermediate returns the memoized stage output for (src, fp) or
// computes it via compute — exactly once per key under concurrent
// misses. The returned slice is owned by the caller. hit reports
// whether compute was skipped (served from the store or coalesced
// onto another caller's computation).
type Intermediates interface {
	Intermediate(doc string, src, fp sig.Signature, cost time.Duration, compute func() ([]byte, error)) (data []byte, hit bool, err error)
}

// StageTrace reports what the staged read path did, for cache
// accounting and tests.
type StageTrace struct {
	// Attempted reports whether the universal stage was memoizable
	// (every byte-touching universal property opted in) and an
	// Intermediates store was consulted.
	Attempted bool
	// Hit reports whether the universal stage was served memoized
	// rather than executed by this read.
	Hit bool
	// SourceSig is the signature of the raw source bytes; zero when
	// the staged path was not attempted.
	SourceSig sig.Signature
	// Fingerprint is the universal-chain fingerprint used as the
	// second key half; zero when not attempted.
	Fingerprint sig.Signature
	// SavedBytes counts intermediate bytes served without
	// recomputation (the intermediate's size on a hit, else 0).
	SavedBytes int64
	// BitFetchDur, UniversalDur and PersonalDur are wall-clock stage
	// timings of the staged read path — raw source retrieval, the
	// universal stage (memo lookup on a hit, full execution
	// otherwise), and the personal suffix — for the observability
	// layer's per-stage histograms. All zero when the staged split
	// was not attempted (the fallback path cannot separate its lazy
	// chain into stages).
	BitFetchDur  time.Duration
	UniversalDur time.Duration
	PersonalDur  time.Duration
}

// fingerprintLocked returns b's universal-chain fingerprint, computing
// and caching it on the node if stale. The fingerprint digests the
// ordered (name, class, memo key) triple of every non-machinery
// universal property; properties that are not memoizable contribute a
// marker instead of a key, which is sufficient because their presence
// disables memoization of the whole stage. Caller holds s.mu.
func (s *Space) fingerprintLocked(b *Base) sig.Signature {
	return s.fingerprintNodeLocked(b.node)
}

// fingerprintNodeLocked is fingerprintLocked generalized to any
// attachment point: base-document nodes yield the universal-chain
// fingerprint, reference nodes the personal-chain fingerprint. Both
// cache on the node; every active-list mutation clears fpValid under
// s.mu, regardless of level. Caller holds s.mu.
func (s *Space) fingerprintNodeLocked(n *node) sig.Signature {
	if n.fpValid {
		return n.fp
	}
	var sb strings.Builder
	for _, e := range n.actives {
		p := e.prop
		class := classOf(p)
		if class == ClassMachinery {
			// Cache machinery (notifiers) never touches content and
			// comes and goes with cache lifecycles; including it would
			// invalidate intermediates for no content-visible reason.
			continue
		}
		key := "!nonmemo"
		if m, ok := p.(property.Memoizable); ok {
			if k, memoOK := m.MemoKey(); memoOK {
				key = k
			}
		}
		fmt.Fprintf(&sb, "%s\x00%s\x00%s\n", p.Name(), class, key)
	}
	n.fp = sig.Of([]byte(sb.String()))
	n.fpValid = true
	return n.fp
}

// UniversalFingerprint returns the current universal-chain fingerprint
// for doc. It changes exactly when Attach/Detach/Replace/Reorder
// change the content-visible universal chain (paper invalidation
// causes 2 and 3).
func (s *Space) UniversalFingerprint(doc string) (sig.Signature, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bases[doc]
	if !ok {
		return sig.Signature{}, fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	return s.fingerprintLocked(b), nil
}

// snapshotUniversal copies b's active list and fingerprint in one
// critical section, so the fingerprint handed to the cache describes
// exactly the chain this read executes.
func (s *Space) snapshotUniversal(b *Base) ([]property.Active, sig.Signature) {
	s.mu.Lock()
	defer s.mu.Unlock()
	props := make([]property.Active, len(b.node.actives))
	for i, e := range b.node.actives {
		props[i] = e.prop
	}
	return props, s.fingerprintLocked(b)
}

// memoOK reports whether p's read-path wrapper may be memoized.
func memoOK(p property.Active) bool {
	m, ok := p.(property.Memoizable)
	if !ok {
		return false
	}
	_, ok = m.MemoKey()
	return ok
}

// ReadDocumentStaged executes the read path for user's reference to
// doc like ReadDocument, but splits it at the universal/personal
// boundary and consults memo for the universal stage's output.
//
// The split preserves read-path semantics exactly:
//
//   - Every property's WrapInput still runs on every read, so
//     cacheability votes, verifiers, and replacement cost accumulate
//     identically to the unstaged path.
//   - getInputStream events are still dispatched at both levels on
//     every read, so event-only properties (audit trails) fire whether
//     or not the stage is served memoized.
//   - Only the data flow differs: on an intermediate hit the universal
//     transforms (and their simulated Sleep costs) are skipped and the
//     personal suffix runs over the memoized bytes.
//
// If memo is nil, or any universal property interposing a stream has
// not opted into memoizability, the read falls back to the ordinary
// single-chain execution and the trace reports Attempted=false.
func (s *Space) ReadDocumentStaged(doc, user string, memo Intermediates) ([]byte, property.ReadResult, StageTrace, error) {
	var trace StageTrace

	s.mu.Lock()
	r, err := s.resolveRefLocked(doc, user)
	if err != nil {
		s.mu.Unlock()
		return nil, property.ReadResult{}, trace, err
	}
	b := r.base
	s.mu.Unlock()

	now := s.clk.Now()
	rc := &property.ReadContext{Doc: doc, User: user, Now: now, Sleep: s.clk.Sleep}
	if d := s.AccessOverhead(); d > 0 {
		s.clk.Sleep(d)
		rc.AddCost(d)
	}

	tOpen := time.Now()
	raw, err := b.bits.Open(rc)
	if err != nil {
		return nil, property.ReadResult{}, trace, err
	}
	openDur := time.Since(tOpen)

	uProps, fp := s.snapshotUniversal(b)
	memoizable := memo != nil
	var uWrappers []stream.InputWrapper
	for _, p := range uProps {
		if w := p.WrapInput(rc); w != nil {
			uWrappers = append(uWrappers, w)
			if !memoOK(p) {
				// A byte-touching universal property without a memo
				// contract (e.g. one embedding external information,
				// paper cause 4) forces full re-execution every read.
				memoizable = false
			}
		}
	}
	// Recompute cost of the intermediate alone: middleware overhead,
	// bit retrieval, and universal transform costs accumulated so far.
	uCost := rc.CostSoFar()

	var pWrappers []stream.InputWrapper
	for _, p := range s.snapshotActives(r.node) {
		if w := p.WrapInput(rc); w != nil {
			pWrappers = append(pWrappers, w)
		}
	}

	// Events fire on every read, memoized or not — side-effecting
	// properties like audit trails must observe each access.
	e := event.Event{Kind: event.GetInputStream, Doc: doc, User: user, Time: now}
	b.node.registry.Dispatch(e)
	r.node.registry.Dispatch(e)

	if !memoizable {
		all := append(append([]stream.InputWrapper{}, uWrappers...), pWrappers...)
		data, err := stream.ReadAllAndClose(stream.ChainInput(raw, all...))
		return data, rc.Result(), trace, err
	}

	tRaw := time.Now()
	rawBytes, err := stream.ReadAllAndClose(raw)
	if err != nil {
		return nil, property.ReadResult{}, trace, err
	}
	trace.BitFetchDur = openDur + time.Since(tRaw)
	srcSig := sig.Of(rawBytes)

	tUni := time.Now()
	inter, hit, err := memo.Intermediate(doc, srcSig, fp, uCost, func() ([]byte, error) {
		return stream.ReadAllAndClose(stream.ChainInput(stream.BytesReader(rawBytes), uWrappers...))
	})
	if err != nil {
		return nil, property.ReadResult{}, trace, err
	}
	trace.UniversalDur = time.Since(tUni)
	trace.Attempted = true
	trace.Hit = hit
	trace.SourceSig = srcSig
	trace.Fingerprint = fp
	if hit {
		trace.SavedBytes = int64(len(inter))
	}

	tPers := time.Now()
	data, err := stream.ReadAllAndClose(stream.ChainInput(stream.BytesReader(inter), pWrappers...))
	trace.PersonalDur = time.Since(tPers)
	return data, rc.Result(), trace, err
}

// ContentKey is the durable identity of one (doc, user) read result:
// the content signature of the raw source plus the fingerprints of
// the universal and personal chains that transformed it. For chains
// whose byte-touching properties are all memoizable, equal keys imply
// identical output bytes — so a persisted result carrying this key
// can be proven current without re-executing any transform, which is
// exactly the durable tier's promotion check after a restart.
type ContentKey struct {
	SourceSig   sig.Signature
	UniversalFP sig.Signature
	PersonalFP  sig.Signature
	// Memoizable reports whether every byte-touching property at both
	// levels carries a memo contract. When false the key proves
	// nothing — some transform embeds information outside the key
	// (paper invalidation cause 4) — and the result must not be
	// persisted or promoted.
	Memoizable bool
}

// ContentKey computes the current content key for user's reference to
// doc. It fetches the raw source bytes (one repository read, the
// price of proving the source half of the key) but executes no
// transforms and dispatches no read events: this is a validation
// probe, not a document access.
func (s *Space) ContentKey(doc, user string) (ContentKey, error) {
	s.mu.Lock()
	r, err := s.resolveRefLocked(doc, user)
	if err != nil {
		s.mu.Unlock()
		return ContentKey{}, err
	}
	b := r.base
	key := ContentKey{
		UniversalFP: s.fingerprintNodeLocked(b.node),
		PersonalFP:  s.fingerprintNodeLocked(r.node),
	}
	uProps := make([]property.Active, len(b.node.actives))
	for i, e := range b.node.actives {
		uProps[i] = e.prop
	}
	pProps := make([]property.Active, len(r.node.actives))
	for i, e := range r.node.actives {
		pProps[i] = e.prop
	}
	s.mu.Unlock()

	key.Memoizable = s.chainMemoizable(doc, user, uProps) &&
		s.chainMemoizable(doc, user, pProps)

	raw, err := b.bits.ReadCurrent()
	if err != nil {
		return ContentKey{}, err
	}
	key.SourceSig = sig.Of(raw)
	return key, nil
}

// chainMemoizable reports whether every property in props that
// interposes a read-path stream has a memo contract. WrapInput runs
// against a throwaway context: its only side effects are context
// accumulation (votes, verifiers, cost), which the probe discards.
func (s *Space) chainMemoizable(doc, user string, props []property.Active) bool {
	rc := &property.ReadContext{Doc: doc, User: user, Now: s.clk.Now(), Sleep: func(time.Duration) {}}
	for _, p := range props {
		if w := p.WrapInput(rc); w != nil && !memoOK(p) {
			return false
		}
	}
	return true
}
