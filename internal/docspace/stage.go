package docspace

import (
	"encoding/binary"
	"fmt"
	"time"

	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/sig"
	"placeless/internal/stream"
)

// This file splits the read path into memoizable segments. The
// original split had exactly one cut point — the universal/personal
// boundary — so caches could memoize the universal stage's output
// across users. The generalized pipeline computes an incremental
// prefix fingerprint at every memoizable property boundary (universal
// chain first, extending into the personal chain), asks the store for
// the longest cached prefix of (source signature, prefix fingerprint),
// and executes only the remaining suffix. Two users whose personal
// chains are [translate, audit] and [translate, summarize] therefore
// share the translate intermediate, not just the universal stage.
//
// The memo keys stay content addressed: (signature of the raw source
// bytes, fingerprint of the ordered chain prefix). The paper's four
// invalidation causes map onto the key cleanly — cause 1 (content
// written) changes the source signature, causes 2 and 3 (property
// add/remove/modify, reorder) change the fingerprint, and cause 4
// (external information) is excluded by marking such properties
// non-memoizable, which poisons every cut at or after them.

// Intermediates is the cache-side store for memoized stage outputs.
// Intermediate returns the memoized output for (src, fp) or computes
// it via compute — exactly once per key under concurrent misses. The
// returned slice is owned by the caller. hit reports whether compute
// was skipped (served from the store or coalesced onto another
// caller's computation). A store implementing only this interface is
// offered exactly one cut point per read: the universal/personal
// boundary.
type Intermediates interface {
	Intermediate(doc string, src, fp sig.Signature, cost time.Duration, compute func() ([]byte, error)) (data []byte, hit bool, err error)
}

// Cut describes one memoizable boundary of a read's combined
// (universal + personal) transform chain, as handed to a
// PrefixIntermediates store.
type Cut struct {
	// FP is the incremental fingerprint of the chain prefix up to and
	// including this boundary.
	FP sig.Signature
	// Cost is the accumulated simulated recompute cost through this
	// boundary (middleware overhead, bit retrieval, and every
	// transform up to the cut) — the store's cost-model input for
	// deciding whether the cut is worth keeping.
	Cost time.Duration
	// Universal marks the cut at the end of the universal chain — the
	// single cut point of the original two-segment split.
	Universal bool
	// Personal marks cuts strictly inside the personal chain. They are
	// keyed by content like every other cut (users with identical
	// personal prefixes share them), but a store may choose to sweep
	// them on per-user invalidation.
	Personal bool
}

// PrefixIntermediates is the N-segment extension of Intermediates.
// Stores implementing it receive every memoizable cut point of a read
// instead of only the universal/personal boundary: the read path first
// probes LongestPrefix with the full ordered cut-fingerprint list,
// resumes from the deepest cached prefix, and then walks the remaining
// cuts through PrefixIntermediate, handing each a compute closure for
// just that segment.
type PrefixIntermediates interface {
	Intermediates
	// LongestPrefix returns the deepest cached prefix of (src, fps):
	// the data and index of the largest i such that (src, fps[i]) is
	// resident, or ok=false when none is. fps is ordered shallowest to
	// deepest. The probe is memory-only; slower tiers are consulted
	// per cut by PrefixIntermediate.
	LongestPrefix(doc string, src sig.Signature, fps []sig.Signature) (data []byte, idx int, ok bool)
	// PrefixIntermediate is Intermediate for one cut of the prefix
	// pipeline, carrying the cut's position metadata so the store can
	// account and cost-gate installs per cut point.
	PrefixIntermediate(doc, user string, src sig.Signature, cut Cut, compute func() ([]byte, error)) (data []byte, hit bool, err error)
}

// StageTrace reports what the staged read path did, for cache
// accounting and tests.
type StageTrace struct {
	// Attempted reports whether at least one memoizable cut point
	// existed and an Intermediates store was consulted.
	Attempted bool
	// Hit reports whether the universal stage was served memoized
	// rather than executed by this read (the boundary cut's data came
	// from the store, a coalesced flight, or a deeper cached prefix).
	Hit bool
	// SourceSig is the signature of the raw source bytes; zero when
	// the staged path was not attempted.
	SourceSig sig.Signature
	// Fingerprint is the universal-chain fingerprint (the boundary
	// cut's prefix fingerprint); zero when not attempted.
	Fingerprint sig.Signature
	// SavedBytes counts intermediate bytes served without
	// recomputation, summed over the longest-prefix probe and every
	// per-cut hit.
	SavedBytes int64
	// Cuts is the number of memoizable cut points offered to the
	// store; DeepestHit is the index of the cut served by the
	// longest-prefix probe, -1 when the probe missed (always -1 for
	// single-cut stores, which are never probed).
	Cuts       int
	DeepestHit int
	// MemoErr reports that the intermediate store failed mid-read and
	// the read degraded to direct execution of the remaining
	// transforms — slow, not broken.
	MemoErr bool
	// BitFetchDur, UniversalDur and PersonalDur are wall-clock stage
	// timings of the staged read path — raw source retrieval, the
	// universal stage (memo lookup on a hit, full execution
	// otherwise), and the personal suffix — for the observability
	// layer's per-stage histograms. All zero when the staged split
	// was not attempted (the fallback path cannot separate its lazy
	// chain into stages).
	BitFetchDur  time.Duration
	UniversalDur time.Duration
	PersonalDur  time.Duration
}

// appendChainFrame appends one property's (name, class, key) frame to
// enc using length-prefixed fields. Length prefixes make the encoding
// injective: uvarint lengths are self-delimiting, so no choice of
// names or memo keys — including ones containing NUL or newline
// bytes — can make two distinct frame sequences encode identically.
// (The previous separator framing, "%s\x00%s\x00%s\n", collided a
// two-property chain with a single property whose memo key embedded
// the separators; equal fingerprints are trusted to imply equal bytes,
// so such a collision would silently serve wrong content.)
func appendChainFrame(enc []byte, name, class, key string) []byte {
	enc = binary.AppendUvarint(enc, uint64(len(name)))
	enc = append(enc, name...)
	enc = binary.AppendUvarint(enc, uint64(len(class)))
	enc = append(enc, class...)
	enc = binary.AppendUvarint(enc, uint64(len(key)))
	enc = append(enc, key...)
	return enc
}

// appendPropFrame appends p's chain frame to enc, or returns enc
// unchanged for cache machinery: notifiers never touch content and
// come and go with cache lifecycles, so including them would
// invalidate intermediates for no content-visible reason. Properties
// that are not memoizable contribute a marker instead of a key, which
// is sufficient because their presence poisons every cut at or after
// them.
func appendPropFrame(enc []byte, p property.Active) []byte {
	class := classOf(p)
	if class == ClassMachinery {
		return enc
	}
	key := "!nonmemo"
	if m, ok := p.(property.Memoizable); ok {
		if k, memoOK := m.MemoKey(); memoOK {
			key = k
		}
	}
	return appendChainFrame(enc, p.Name(), class, key)
}

// fingerprintLocked returns b's universal-chain fingerprint, computing
// and caching it on the node if stale. Caller holds s.mu.
func (s *Space) fingerprintLocked(b *Base) sig.Signature {
	return s.fingerprintNodeLocked(b.node)
}

// fingerprintNodeLocked is fingerprintLocked generalized to any
// attachment point: base-document nodes yield the universal-chain
// fingerprint, reference nodes the personal-chain fingerprint. Both
// cache on the node; every active-list mutation clears fpValid under
// s.mu, regardless of level. Caller holds s.mu.
func (s *Space) fingerprintNodeLocked(n *node) sig.Signature {
	if n.fpValid {
		return n.fp
	}
	var enc []byte
	for _, e := range n.actives {
		enc = appendPropFrame(enc, e.prop)
	}
	n.fp = sig.Of(enc)
	n.fpValid = true
	return n.fp
}

// UniversalFingerprint returns the current universal-chain fingerprint
// for doc. It changes exactly when Attach/Detach/Replace/Reorder
// change the content-visible universal chain (paper invalidation
// causes 2 and 3).
func (s *Space) UniversalFingerprint(doc string) (sig.Signature, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bases[doc]
	if !ok {
		return sig.Signature{}, fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	return s.fingerprintLocked(b), nil
}

// snapshotChains copies both nodes' active lists and computes the
// incremental prefix fingerprint at every boundary of the combined
// chain in one critical section, so the fingerprints handed to the
// cache describe exactly the chain this read executes. fps[k] is the
// fingerprint of the first k combined properties (fps[0] covers the
// empty prefix); fps[len(uProps)] is bit-identical to the cached
// universal fingerprint because both digest the same frame encoding.
func (s *Space) snapshotChains(b *Base, r *Ref) (uProps, pProps []property.Active, fps []sig.Signature) {
	s.mu.Lock()
	defer s.mu.Unlock()
	uProps = make([]property.Active, len(b.node.actives))
	for i, e := range b.node.actives {
		uProps[i] = e.prop
	}
	pProps = make([]property.Active, len(r.node.actives))
	for i, e := range r.node.actives {
		pProps[i] = e.prop
	}
	fps = make([]sig.Signature, 0, len(uProps)+len(pProps)+1)
	var enc []byte
	fps = append(fps, sig.Of(enc))
	for _, p := range uProps {
		enc = appendPropFrame(enc, p)
		fps = append(fps, sig.Of(enc))
	}
	for _, p := range pProps {
		enc = appendPropFrame(enc, p)
		fps = append(fps, sig.Of(enc))
	}
	return uProps, pProps, fps
}

// memoOK reports whether p's read-path wrapper may be memoized.
func memoOK(p property.Active) bool {
	m, ok := p.(property.Memoizable)
	if !ok {
		return false
	}
	_, ok = m.MemoKey()
	return ok
}

// stagedRun is the mutable state of one staged read's execution walk.
type stagedRun struct {
	rc       *property.ReadContext
	trace    *StageTrace
	wrappers []stream.InputWrapper
	uWrapEnd int // wrappers[:uWrapEnd] is the universal stage
	cur      []byte
	wrapAt   int // wrappers[:wrapAt] already applied to cur
	crossed  bool
	tUni     time.Time
	tPers    time.Time
}

// cross marks the universal/personal boundary as passed: hit reports
// whether the boundary data came from the store rather than execution.
func (sr *stagedRun) cross(hit bool) {
	if sr.crossed {
		return
	}
	sr.crossed = true
	sr.trace.Hit = hit
	sr.trace.UniversalDur = time.Since(sr.tUni)
	sr.tPers = time.Now()
}

// finish executes every wrapper not yet applied and returns the final
// content. If the universal boundary has not been passed (a poisoned
// boundary cut, or a store failure early in the walk), the remainder
// runs in two chunks split at the boundary so the per-stage timings
// stay attributable.
func (sr *stagedRun) finish() ([]byte, property.ReadResult, StageTrace, error) {
	if !sr.crossed {
		if sr.uWrapEnd > sr.wrapAt {
			data, err := stream.ReadAllAndClose(stream.ChainInput(stream.BytesReader(sr.cur), sr.wrappers[sr.wrapAt:sr.uWrapEnd]...))
			if err != nil {
				return nil, property.ReadResult{}, *sr.trace, err
			}
			sr.cur, sr.wrapAt = data, sr.uWrapEnd
		}
		sr.cross(false)
	}
	data, err := stream.ReadAllAndClose(stream.ChainInput(stream.BytesReader(sr.cur), sr.wrappers[sr.wrapAt:]...))
	sr.trace.PersonalDur = time.Since(sr.tPers)
	return data, sr.rc.Result(), *sr.trace, err
}

// ReadDocumentStaged executes the read path for user's reference to
// doc like ReadDocument, but splits it at every memoizable property
// boundary and consults memo for cached prefixes.
//
// The split preserves read-path semantics exactly:
//
//   - Every property's WrapInput still runs on every read, so
//     cacheability votes, verifiers, and replacement cost accumulate
//     identically to the unstaged path.
//   - getInputStream events are still dispatched at both levels on
//     every read, so event-only properties (audit trails) fire whether
//     or not any segment is served memoized.
//   - Only the data flow differs: on a prefix hit the covered
//     transforms (and their simulated Sleep costs) are skipped and the
//     remaining suffix runs over the memoized bytes.
//
// A store implementing PrefixIntermediates is offered a cut at every
// boundary whose prefix is fully memoizable; a plain Intermediates
// store sees only the universal/personal boundary cut (the original
// two-segment protocol). A non-memoizable byte-touching property
// poisons every cut at or after its position; if no cut survives — or
// memo is nil — the read falls back to ordinary single-chain execution
// and the trace reports Attempted=false. A store error mid-walk
// degrades to direct execution of the remaining transforms (slow, not
// broken) and sets trace.MemoErr.
func (s *Space) ReadDocumentStaged(doc, user string, memo Intermediates) ([]byte, property.ReadResult, StageTrace, error) {
	var trace StageTrace

	s.mu.Lock()
	r, err := s.resolveRefLocked(doc, user)
	if err != nil {
		s.mu.Unlock()
		return nil, property.ReadResult{}, trace, err
	}
	b := r.base
	s.mu.Unlock()

	now := s.clk.Now()
	rc := &property.ReadContext{Doc: doc, User: user, Now: now, Sleep: s.clk.Sleep}
	if d := s.AccessOverhead(); d > 0 {
		s.clk.Sleep(d)
		rc.AddCost(d)
	}

	tOpen := time.Now()
	raw, err := b.bits.Open(rc)
	if err != nil {
		return nil, property.ReadResult{}, trace, err
	}
	openDur := time.Since(tOpen)

	uProps, pProps, fps := s.snapshotChains(b, r)
	nU := len(uProps)
	pm, multiCut := memo.(PrefixIntermediates)

	// Wrap every property in chain order, recording a candidate cut at
	// each boundary where the prefix so far is fully memoizable and
	// the boundary is observable: after every byte-touching property,
	// plus the end of the universal chain (whose fingerprint moves on
	// event-only attachments too, matching the legacy boundary key).
	var wrappers []stream.InputWrapper
	var cuts []Cut
	var cutWrapEnd []int
	uWrapEnd := 0
	poisoned := false
	if nU == 0 {
		// Empty universal chain: the boundary precedes every property.
		cuts = append(cuts, Cut{FP: fps[0], Cost: rc.CostSoFar(), Universal: true})
		cutWrapEnd = append(cutWrapEnd, 0)
	}
	combined := make([]property.Active, 0, nU+len(pProps))
	combined = append(append(combined, uProps...), pProps...)
	for i, p := range combined {
		w := p.WrapInput(rc)
		if w != nil {
			wrappers = append(wrappers, w)
			if !memoOK(p) {
				// A byte-touching property without a memo contract
				// (e.g. one embedding external information, paper
				// cause 4) forces re-execution of everything from its
				// position on every read.
				poisoned = true
			}
		}
		atBoundary := i == nU-1
		if atBoundary {
			uWrapEnd = len(wrappers)
		}
		if poisoned || (w == nil && !atBoundary) {
			continue
		}
		if n := len(cuts); n > 0 && cuts[n-1].FP == fps[i+1] && cutWrapEnd[n-1] == len(wrappers) {
			// A machinery property (a cache's own notifier) contributes
			// neither a fingerprint frame nor a wrapper, so a boundary
			// right after one is the same cut as the previous boundary.
			// Upgrade that cut in place instead of offering the store a
			// duplicate key — a duplicate would make the boundary "hit"
			// the segment installed moments earlier by the same read,
			// misclassifying a full recompute as a memoized one.
			if atBoundary {
				cuts[n-1].Universal = true
			}
			continue
		}
		cuts = append(cuts, Cut{
			FP:        fps[i+1],
			Cost:      rc.CostSoFar(),
			Universal: atBoundary,
			Personal:  i >= nU,
		})
		cutWrapEnd = append(cutWrapEnd, len(wrappers))
	}

	boundaryIdx := -1
	for i, c := range cuts {
		if c.Universal {
			boundaryIdx = i
		}
	}
	if !multiCut && memo != nil {
		// A plain Intermediates store understands exactly one cut: the
		// universal/personal boundary.
		if boundaryIdx >= 0 {
			cuts = cuts[boundaryIdx : boundaryIdx+1]
			cutWrapEnd = cutWrapEnd[boundaryIdx : boundaryIdx+1]
			boundaryIdx = 0
		} else {
			cuts, cutWrapEnd = nil, nil
		}
	}

	// Events fire on every read, memoized or not — side-effecting
	// properties like audit trails must observe each access.
	e := event.Event{Kind: event.GetInputStream, Doc: doc, User: user, Time: now}
	b.node.registry.Dispatch(e)
	r.node.registry.Dispatch(e)

	if memo == nil || len(cuts) == 0 {
		data, err := stream.ReadAllAndClose(stream.ChainInput(raw, wrappers...))
		return data, rc.Result(), trace, err
	}

	tRaw := time.Now()
	rawBytes, err := stream.ReadAllAndClose(raw)
	if err != nil {
		return nil, property.ReadResult{}, trace, err
	}
	trace.BitFetchDur = openDur + time.Since(tRaw)
	srcSig := sig.Of(rawBytes)
	trace.Attempted = true
	trace.SourceSig = srcSig
	trace.Fingerprint = fps[nU]
	trace.Cuts = len(cuts)
	trace.DeepestHit = -1

	sr := &stagedRun{
		rc: rc, trace: &trace,
		wrappers: wrappers, uWrapEnd: uWrapEnd,
		cur: rawBytes, tUni: time.Now(),
	}

	next := 0
	if multiCut {
		probe := make([]sig.Signature, len(cuts))
		for i, c := range cuts {
			probe[i] = c.FP
		}
		if data, idx, ok := pm.LongestPrefix(doc, srcSig, probe); ok {
			sr.cur, sr.wrapAt, next = data, cutWrapEnd[idx], idx+1
			trace.DeepestHit = idx
			trace.SavedBytes += int64(len(data))
			if boundaryIdx >= 0 && idx >= boundaryIdx {
				sr.cross(true)
			}
		}
	}

	for ; next < len(cuts); next++ {
		seg := sr.wrappers[sr.wrapAt:cutWrapEnd[next]]
		prev := sr.cur
		var computeErr error
		compute := func() ([]byte, error) {
			d, err := stream.ReadAllAndClose(stream.ChainInput(stream.BytesReader(prev), seg...))
			if err != nil {
				computeErr = err
			}
			return d, err
		}
		var data []byte
		var hit bool
		if multiCut {
			data, hit, err = pm.PrefixIntermediate(doc, user, srcSig, cuts[next], compute)
		} else {
			data, hit, err = memo.Intermediate(doc, srcSig, cuts[next].FP, cuts[next].Cost, compute)
		}
		if err != nil {
			if computeErr != nil {
				// The transform chain itself failed; the store merely
				// relayed it. This read cannot produce content.
				return nil, property.ReadResult{}, trace, err
			}
			// The store is sick, not the chain: degrade to direct
			// execution of the remaining transforms.
			trace.MemoErr = true
			return sr.finish()
		}
		if hit {
			trace.SavedBytes += int64(len(data))
		}
		sr.cur, sr.wrapAt = data, cutWrapEnd[next]
		if next == boundaryIdx {
			sr.cross(hit)
		}
	}
	return sr.finish()
}

// ContentKey is the durable identity of one (doc, user) read result:
// the content signature of the raw source plus the fingerprints of
// the universal and personal chains that transformed it. For chains
// whose byte-touching properties are all memoizable, equal keys imply
// identical output bytes — so a persisted result carrying this key
// can be proven current without re-executing any transform, which is
// exactly the durable tier's promotion check after a restart.
type ContentKey struct {
	SourceSig   sig.Signature
	UniversalFP sig.Signature
	PersonalFP  sig.Signature
	// Memoizable reports whether every byte-touching property at both
	// levels carries a memo contract. When false the key proves
	// nothing — some transform embeds information outside the key
	// (paper invalidation cause 4) — and the result must not be
	// persisted or promoted.
	Memoizable bool
}

// ContentKey computes the current content key for user's reference to
// doc. It fetches the raw source bytes (one repository read, the
// price of proving the source half of the key) but executes no
// transforms and dispatches no read events: this is a validation
// probe, not a document access.
func (s *Space) ContentKey(doc, user string) (ContentKey, error) {
	s.mu.Lock()
	r, err := s.resolveRefLocked(doc, user)
	if err != nil {
		s.mu.Unlock()
		return ContentKey{}, err
	}
	b := r.base
	key := ContentKey{
		UniversalFP: s.fingerprintNodeLocked(b.node),
		PersonalFP:  s.fingerprintNodeLocked(r.node),
	}
	uProps := make([]property.Active, len(b.node.actives))
	for i, e := range b.node.actives {
		uProps[i] = e.prop
	}
	pProps := make([]property.Active, len(r.node.actives))
	for i, e := range r.node.actives {
		pProps[i] = e.prop
	}
	s.mu.Unlock()

	key.Memoizable = s.chainMemoizable(doc, user, uProps) &&
		s.chainMemoizable(doc, user, pProps)

	raw, err := b.bits.ReadCurrent()
	if err != nil {
		return ContentKey{}, err
	}
	key.SourceSig = sig.Of(raw)
	return key, nil
}

// chainMemoizable reports whether every property in props that
// interposes a read-path stream has a memo contract. WrapInput runs
// against a throwaway context: its only side effects are context
// accumulation (votes, verifiers, cost), which the probe discards.
func (s *Space) chainMemoizable(doc, user string, props []property.Active) bool {
	rc := &property.ReadContext{Doc: doc, User: user, Now: s.clk.Now(), Sleep: func(time.Duration) {}}
	for _, p := range props {
		if w := p.WrapInput(rc); w != nil && !memoOK(p) {
			return false
		}
	}
	return true
}
