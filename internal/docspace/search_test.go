package docspace

import (
	"testing"

	"placeless/internal/property"
)

func searchFixture(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t)
	f.addDoc(t, "budget-q1", "alice", "/b1", []byte("q1"))
	f.addDoc(t, "budget-q2", "alice", "/b2", []byte("q2"))
	f.addDoc(t, "memo", "bob", "/m", []byte("m"))
	f.space.AddReference("budget-q1", "bob")
	f.space.AddReference("memo", "alice")

	// Universal labels.
	f.space.AttachStatic("budget-q1", "", Universal, property.Static{Key: "budget related"})
	f.space.AttachStatic("budget-q2", "", Universal, property.Static{Key: "budget related"})
	f.space.AttachStatic("memo", "", Universal, property.Static{Key: "status", Value: "draft"})
	// Personal labels.
	f.space.AttachStatic("memo", "alice", Personal, property.Static{Key: "read by", Value: "friday"})
	return f
}

func TestFindByStaticUniversal(t *testing.T) {
	f := searchFixture(t)
	got := f.space.FindByStatic("alice", "budget related", "")
	if len(got) != 2 || got[0].Doc != "budget-q1" || got[1].Doc != "budget-q2" {
		t.Fatalf("matches = %+v", got)
	}
	for _, m := range got {
		if m.Level != Universal {
			t.Fatalf("level = %v", m.Level)
		}
	}
	// Bob only sees the documents he holds references to.
	bob := f.space.FindByStatic("bob", "budget related", "")
	if len(bob) != 1 || bob[0].Doc != "budget-q1" {
		t.Fatalf("bob matches = %+v", bob)
	}
}

func TestFindByStaticValueFilter(t *testing.T) {
	f := searchFixture(t)
	if got := f.space.FindByStatic("bob", "status", "draft"); len(got) != 1 || got[0].Value != "draft" {
		t.Fatalf("matches = %+v", got)
	}
	if got := f.space.FindByStatic("bob", "status", "final"); len(got) != 0 {
		t.Fatalf("value filter leaked: %+v", got)
	}
}

func TestFindByStaticPersonalVisibility(t *testing.T) {
	f := searchFixture(t)
	alice := f.space.FindByStatic("alice", "read by", "")
	if len(alice) != 1 || alice[0].Level != Personal || alice[0].Value != "friday" {
		t.Fatalf("alice matches = %+v", alice)
	}
	// Bob owns the memo but cannot see Alice's personal label.
	if bob := f.space.FindByStatic("bob", "read by", ""); len(bob) != 0 {
		t.Fatalf("personal label leaked to bob: %+v", bob)
	}
}

func TestFindByStaticNoMatches(t *testing.T) {
	f := searchFixture(t)
	if got := f.space.FindByStatic("alice", "nonexistent", ""); len(got) != 0 {
		t.Fatalf("matches = %+v", got)
	}
	if got := f.space.FindByStatic("stranger", "budget related", ""); len(got) != 0 {
		t.Fatalf("stranger sees %+v", got)
	}
}
