package docspace_test

import (
	"fmt"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// Example reproduces the paper's Figure 1 visibility rules: universal
// properties are seen by everyone, personal ones only by their owner.
func Example() {
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC))
	disk := repo.NewMem("disk", clk, simnet.Local(1))
	space := docspace.New(clk, nil)

	disk.Store("/draft", []byte("one\ntwo\nthree\n"))
	space.CreateDocument("draft", "eyal", &property.RepoBitProvider{Repo: disk, Path: "/draft"})
	space.AddReference("draft", "paul")

	// Universal: everyone gets the one-line summary.
	space.Attach("draft", "", docspace.Universal, property.NewSummarizer(1, 0))
	// Personal: only Eyal numbers his lines.
	space.Attach("draft", "eyal", docspace.Personal, property.NewLineNumberer(0))

	eyal, _, _ := space.ReadDocument("draft", "eyal")
	paul, _, _ := space.ReadDocument("draft", "paul")
	fmt.Printf("eyal:\n%s", eyal)
	fmt.Printf("paul:\n%s", paul)
	// Output:
	// eyal:
	//    1  one
	//    2  [...]
	// paul:
	// one
	// [...]
}
