// Package docspace implements the Placeless document model: base
// documents, per-user document references, property attachment, and
// the event-driven read/write paths.
//
// A base document links to actual content through its bit-provider
// and carries universal properties seen by every user; each user
// interacts through a document reference carrying personal properties
// seen only by that user (paper §2, Figure 1). Content flows through
// chains of custom streams interposed by active properties: on the
// read path base-document properties execute before reference
// properties, on the write path reference properties execute before
// base-document properties (Figure 2).
package docspace

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"placeless/internal/clock"
	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/sig"
)

// Well-known errors.
var (
	// ErrNoDocument indicates the base document does not exist.
	ErrNoDocument = errors.New("docspace: no such document")
	// ErrNoReference indicates the user holds no reference to the
	// document.
	ErrNoReference = errors.New("docspace: no such reference")
	// ErrDuplicate indicates the id or property name is already in use
	// at that attachment point.
	ErrDuplicate = errors.New("docspace: duplicate")
	// ErrNoProperty indicates the named property is not attached.
	ErrNoProperty = errors.New("docspace: no such property")
	// ErrNoArchive indicates a property needed version storage but the
	// space has no archive repository configured.
	ErrNoArchive = errors.New("docspace: no archive repository")
	// ErrBadID indicates a document id containing a NUL byte. Caches
	// key entries as id+"\x00"+user and namespace intermediates under
	// a NUL-leading prefix, so a NUL inside an id would make those
	// keys ambiguous — the invariant is enforced here, at
	// registration, rather than trusted downstream.
	ErrBadID = errors.New("docspace: document id contains NUL")
)

// TimerClock is the clock capability the space needs: time, sleeping,
// and scheduled callbacks for timer-driven properties. clock.Virtual
// satisfies it.
type TimerClock interface {
	clock.Clock
	AfterFunc(d time.Duration, fn func(now time.Time)) (cancel func())
}

// activeEntry tracks an attached active property and its event
// registrations.
type activeEntry struct {
	prop   property.Active
	subIDs []uint64
}

// node is one property attachment point — either a base document or a
// document reference. It owns an ordered active-property list, a
// static-property list, and an event registry.
type node struct {
	actives  []activeEntry
	statics  []property.Static
	registry *event.Registry
	// fp caches the node's chain fingerprint (see stage.go): the
	// universal-chain fingerprint on base-document nodes, the
	// personal-chain fingerprint on reference nodes. fpValid is
	// cleared, under s.mu, by every mutation of the active list.
	fp      sig.Signature
	fpValid bool
}

func newNode() *node { return &node{registry: event.NewRegistry()} }

// findActive returns the index of the named active property, or -1.
func (n *node) findActive(name string) int {
	for i, e := range n.actives {
		if e.prop.Name() == name {
			return i
		}
	}
	return -1
}

// Base is a base document: the link to actual content plus universal
// properties.
type Base struct {
	id    string
	owner string
	bits  property.BitProvider
	node  *node
}

// ID returns the document identifier.
func (b *Base) ID() string { return b.id }

// Owner returns the user who created (or imported) the document.
func (b *Base) Owner() string { return b.owner }

// BitProvider returns the special content-linking property.
func (b *Base) BitProvider() property.BitProvider { return b.bits }

// Ref is one user's document reference.
type Ref struct {
	user string
	base *Base
	node *node
}

// User returns the reference owner.
func (r *Ref) User() string { return r.user }

// Doc returns the referenced base document's id.
func (r *Ref) Doc() string { return r.base.id }

// Space manages base documents and document references. The paper's
// design gives each user (or group) their own document space; this
// implementation manages all users' references in one Space object,
// keyed by user, which preserves the visibility rules while keeping
// one consistent view for the cache experiments.
type Space struct {
	clk TimerClock
	// Archive, if non-nil, receives StoreAside content (saved
	// versions); nil disables archiving.
	archive repo.Repository

	mu       sync.Mutex
	bases    map[string]*Base
	refs     map[string]map[string]*Ref // doc -> user -> ref
	groups   map[string]map[string]bool // group -> member set
	overhead time.Duration
}

// New returns an empty document space on the given clock. archive may
// be nil if no property needs StoreAside.
func New(clk TimerClock, archive repo.Repository) *Space {
	return &Space{
		clk:     clk,
		archive: archive,
		bases:   make(map[string]*Base),
		refs:    make(map[string]map[string]*Ref),
	}
}

// Clock returns the space's clock.
func (s *Space) Clock() TimerClock { return s.clk }

// SetAccessOverhead configures the per-access middleware cost charged
// on every Open/Create. The paper notes that document accesses
// "require content to be sent from the storage repository to at least
// one, possibly two, Placeless servers, which increases network
// traffic and execution time at each of the servers"; this models that
// fixed overhead.
func (s *Space) SetAccessOverhead(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d > 0 {
		s.overhead = d
	}
}

// AccessOverhead returns the configured middleware cost.
func (s *Space) AccessOverhead() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overhead
}

// CreateDocument registers a base document with the given
// bit-provider, owned by owner, and creates the owner's reference.
func (s *Space) CreateDocument(id, owner string, bits property.BitProvider) (*Base, error) {
	if strings.ContainsRune(id, 0) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bases[id]; ok {
		return nil, fmt.Errorf("%w: document %s", ErrDuplicate, id)
	}
	b := &Base{id: id, owner: owner, bits: bits, node: newNode()}
	s.bases[id] = b
	s.refs[id] = map[string]*Ref{owner: {user: owner, base: b, node: newNode()}}
	return b, nil
}

// AddReference gives user a reference to the document.
func (s *Space) AddReference(doc, user string) (*Ref, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bases[doc]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	if _, ok := s.refs[doc][user]; ok {
		return nil, fmt.Errorf("%w: reference %s/%s", ErrDuplicate, doc, user)
	}
	r := &Ref{user: user, base: b, node: newNode()}
	s.refs[doc][user] = r
	return r, nil
}

// RemoveReference drops user's reference to doc, including its
// personal properties. The owner's reference cannot be removed while
// the document exists.
func (s *Space) RemoveReference(doc, user string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bases[doc]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	if user == b.owner {
		return fmt.Errorf("docspace: cannot remove the owner's reference to %s", doc)
	}
	if _, ok := s.refs[doc][user]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoReference, doc, user)
	}
	delete(s.refs[doc], user)
	return nil
}

// RemoveDocument deletes a base document and every reference to it.
// Content in the backing repository is untouched.
func (s *Space) RemoveDocument(doc string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bases[doc]; !ok {
		return fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	delete(s.bases, doc)
	delete(s.refs, doc)
	return nil
}

// Document returns the base document.
func (s *Space) Document(doc string) (*Base, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bases[doc]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	return b, nil
}

// Reference returns user's reference to doc.
func (s *Space) Reference(doc, user string) (*Ref, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.referenceLocked(doc, user)
}

func (s *Space) referenceLocked(doc, user string) (*Ref, error) {
	if _, ok := s.bases[doc]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDocument, doc)
	}
	r, ok := s.refs[doc][user]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoReference, doc, user)
	}
	return r, nil
}

// Users lists the users holding references to doc, including the
// owner.
func (s *Space) Users(doc string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var users []string
	for u := range s.refs[doc] {
		users = append(users, u)
	}
	return users
}

// Documents lists all base document ids.
func (s *Space) Documents() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.bases))
	for id := range s.bases {
		ids = append(ids, id)
	}
	return ids
}
