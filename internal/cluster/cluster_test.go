package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/obs"
	"placeless/internal/property"
	"placeless/internal/remote"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

// testCluster is a 3-node cluster over one origin server on an
// in-process simnet (no kernel TCP, no ports): each node has its own
// listener endpoint, client connection, and remote cache, exactly the
// production wiring with the network virtualized.
type testCluster struct {
	net     *simnet.Net
	space   *docspace.Space
	origin  *core.Cache
	srv     *server.Server
	cl      *Cache
	clients map[string]*server.Client
	caches  map[string]*remote.Cache
}

func newTestCluster(t *testing.T, nodes int, replicas int, o *obs.Observer) *testCluster {
	t.Helper()
	clk := clock.Real{}
	net := simnet.NewNet(clk, rand.New(rand.NewSource(1)))
	src := repo.NewMem("src", clk, simnet.NewPath("free", 1))
	space := docspace.New(clk, nil)
	origin := core.New(space, core.Options{Name: "origin"})
	srv := server.NewCached(space, src, origin)
	tc := &testCluster{
		net: net, space: space, origin: origin, srv: srv,
		cl:      New(Options{Replicas: replicas, VNodes: 32, Observer: o}),
		clients: map[string]*server.Client{},
		caches:  map[string]*remote.Cache{},
	}
	for i := 0; i < nodes; i++ {
		tc.addNode(t, fmt.Sprintf("n%d", i))
	}
	t.Cleanup(func() {
		for _, rc := range tc.caches {
			rc.Close()
		}
		for _, c := range tc.clients {
			_ = c.Close()
		}
		_ = srv.Close()
		_ = origin.Close()
	})
	// One document, several users.
	src.Store("/alpha", []byte("hello"))
	if _, err := space.CreateDocument("alpha", "amy", &property.RepoBitProvider{Repo: src, Path: "/alpha"}); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"bob", "cam"} {
		if _, err := space.AddReference("alpha", u); err != nil {
			t.Fatal(err)
		}
	}
	return tc
}

func (tc *testCluster) addNode(t *testing.T, name string) {
	t.Helper()
	ln := tc.net.Listen("srv-" + name)
	go func() { _ = tc.srv.Serve(ln) }()
	client, err := server.Dial("srv-"+name,
		server.WithDialer(tc.net.Dial),
		server.WithCallTimeout(5*time.Second),
		server.WithReconnect(time.Millisecond, 10*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("dial %s: %v", name, err)
	}
	rc := remote.New(client, remote.Options{DegradedPolicy: remote.FailFast})
	tc.clients[name] = client
	tc.caches[name] = rc
	if err := tc.cl.AddNode(name, rc); err != nil {
		t.Fatal(err)
	}
}

// TestClusterRoutesToOwners checks that reads land on (and fill) the
// ring owners, and that every node answers with the same bytes.
func TestClusterRoutesToOwners(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil)
	owners := tc.cl.Owners("alpha", "amy")
	if len(owners) != 2 {
		t.Fatalf("owners = %v, want 2", owners)
	}
	data, via, err := tc.cl.ReadVia("alpha", "amy")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("hello")) {
		t.Fatalf("read %q", data)
	}
	if via != owners[0] {
		t.Fatalf("served via %s, want primary %s", via, owners[0])
	}
	if !tc.caches[via].Contains("alpha", "amy") {
		t.Fatal("primary did not cache the read")
	}
	// Re-read: a hit on the same owner.
	before := tc.caches[via].Stats().Hits
	if _, _, err := tc.cl.ReadVia("alpha", "amy"); err != nil {
		t.Fatal(err)
	}
	if tc.caches[via].Stats().Hits != before+1 {
		t.Fatal("second read did not hit the primary's cache")
	}
	if st := tc.cl.Stats(); st.Reads != 2 || st.Failovers != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestClusterFailover kills the primary's connection and expects the
// read to fail over to the replica, then recover after reconnect.
func TestClusterFailover(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil)
	owners := tc.cl.Owners("alpha", "bob")
	primary := owners[0]
	// Make the primary refuse: close its cache (ErrClosed is
	// failoverable, and unlike a conn kill it cannot race a reconnect).
	tc.caches[primary].Close()
	data, via, err := tc.cl.ReadVia("alpha", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if via != owners[1] {
		t.Fatalf("served via %s, want replica %s", via, owners[1])
	}
	if !bytes.Equal(data, []byte("hello")) {
		t.Fatalf("read %q", data)
	}
	if st := tc.cl.Stats(); st.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", st.Failovers)
	}
}

// TestClusterAllOwnersDegraded closes every owner: the read must
// return a typed degraded error, not bytes.
func TestClusterAllOwnersDegraded(t *testing.T) {
	tc := newTestCluster(t, 2, 2, nil)
	for _, rc := range tc.caches {
		rc.Close()
	}
	_, err := tc.cl.Read("alpha", "amy")
	if err == nil {
		t.Fatal("read succeeded with every owner closed")
	}
	if !errors.Is(err, remote.ErrClosed) {
		t.Fatalf("err = %v, want errors.Is remote.ErrClosed", err)
	}
	if st := tc.cl.Stats(); st.DegradedErrors != 1 {
		t.Fatalf("DegradedErrors = %d, want 1", st.DegradedErrors)
	}
}

// TestClusterInvalidationFanout pins the tentpole consistency claim:
// a write through one node invalidates the copies every other node
// cached, because each node's own subscription rides its own
// connection to the shared origin.
func TestClusterInvalidationFanout(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil)
	// Warm every node directly (bypassing the ring) so all three hold
	// the key.
	for name, rc := range tc.caches {
		if _, err := rc.Read("alpha", "amy"); err != nil {
			t.Fatalf("warm %s: %v", name, err)
		}
		if !rc.Contains("alpha", "amy") {
			t.Fatalf("%s did not cache the warm read", name)
		}
	}
	if err := tc.cl.Write("alpha", "amy", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Pushes are async; poll briefly for the fanout to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stale := 0
		for _, rc := range tc.caches {
			if rc.Contains("alpha", "amy") {
				stale++
			}
		}
		if stale == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d nodes still hold the invalidated entry", stale)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for name, rc := range tc.caches {
		got, err := rc.Read("alpha", "amy")
		if err != nil {
			t.Fatalf("re-read %s: %v", name, err)
		}
		if !bytes.Equal(got, []byte("v2")) {
			t.Fatalf("%s served %q after the fanout, want v2", name, got)
		}
	}
}

// TestClusterMembershipAndInfo exercises join/leave bookkeeping and
// the status surface.
func TestClusterMembershipAndInfo(t *testing.T) {
	tc := newTestCluster(t, 2, 2, nil)
	if err := tc.cl.AddNode("n0", tc.caches["n0"]); err == nil {
		t.Fatal("duplicate AddNode succeeded")
	}
	tc.addNode(t, "n2")
	if got := tc.cl.Nodes(); len(got) != 3 {
		t.Fatalf("Nodes = %v", got)
	}
	info := tc.cl.Info()
	total := 0.0
	for _, ni := range info {
		if ni.State != "connected" {
			t.Fatalf("node %s state %q, want connected", ni.Name, ni.State)
		}
		total += ni.Share
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %v", total)
	}
	if !tc.cl.RemoveNode("n2") || tc.cl.RemoveNode("n2") {
		t.Fatal("RemoveNode bookkeeping wrong")
	}
	if st := tc.cl.Stats(); st.Rebalances != 4 {
		// 2 initial joins + 1 join + 1 leave.
		t.Fatalf("Rebalances = %d, want 4", st.Rebalances)
	}
	// Ownership after the leave excludes the departed node.
	for _, u := range []string{"amy", "bob", "cam"} {
		for _, o := range tc.cl.Owners("alpha", u) {
			if o == "n2" {
				t.Fatalf("departed node still owns alpha/%s", u)
			}
		}
	}
}

// TestClusterMetrics registers the placeless_cluster_* families and
// checks they move.
func TestClusterMetrics(t *testing.T) {
	o := obs.NewObserver()
	tc := newTestCluster(t, 2, 2, o)
	if _, err := tc.cl.Read("alpha", "amy"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"placeless_cluster_reads_total 1",
		"placeless_cluster_nodes 2",
		"placeless_cluster_replicas 2",
		"placeless_cluster_rebalances_total 2",
	} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
