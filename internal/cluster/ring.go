// Package cluster scales the Placeless cache tier out to many
// daemons: a consistent-hash ring assigns every (doc, user) key to a
// small, stable set of owner nodes, and a cluster-aware cache routes
// reads and writes to those owners, failing over between replicas
// when a peer is degraded.
//
// Placement hashes keys, not content — ownership must be computable
// before the bytes exist — but the blob store behind every node is
// signature-addressed, so a key can be served from any node that
// holds its content without coordination: the ring only decides who
// caches it, never who may. Consistency still rides the paper's
// notifier mechanism end to end: each node's connection to the origin
// carries that node's own subscriptions, so the origin's notifiers
// fan invalidations out to every replica that cached a key, and the
// per-peer reconnect/epoch/suspect machinery (see internal/remote)
// covers node death, join, and rebalance. DESIGN.md §13 states the
// invariants precisely; docs/CLUSTER.md is the operator guide.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node: enough
// points that primary ownership is balanced within a few percent at
// realistic fleet sizes, few enough that membership changes stay
// cheap (the ring is rebuilt by sorting vnodes·nodes points).
const DefaultVNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes and N-way replica
// placement. It is a pure data structure — not safe for concurrent
// mutation; Cache serializes access, and read-only tools (plctl ring)
// build their own.
type Ring struct {
	replicas int
	vnodes   int
	points   []point // sorted by (hash, node)
	members  map[string]struct{}
}

// NewRing builds an empty ring. replicas is the owner-set size handed
// out by Owners (at most the member count); vnodes is the virtual
// node count per member (0 = DefaultVNodes).
func NewRing(replicas, vnodes int) *Ring {
	if replicas <= 0 {
		replicas = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{replicas: replicas, vnodes: vnodes, members: make(map[string]struct{})}
}

// Replicas returns the configured owner-set size.
func (r *Ring) Replicas() int { return r.replicas }

// VNodes returns the per-member virtual node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Contains reports ring membership.
func (r *Ring) Contains(node string) bool {
	_, ok := r.members[node]
	return ok
}

// hashKey positions a key on the ring: FNV-1a 64 for cheap,
// process-independent hashing, then a full-avalanche finalizer. The
// finalizer matters: vnode labels differ only in a trailing digit, and
// raw FNV gives a one-byte suffix change only a single multiply of
// diffusion, clumping a node's points into narrow arcs. The balance
// properties are pinned by tests.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a 64-bit avalanche finalizer (fmix64 from MurmurHash3):
// every input bit flips every output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a member and its virtual nodes. It reports whether the
// ring changed (false for a duplicate).
func (r *Ring) Add(node string) bool {
	if node == "" {
		return false
	}
	if _, dup := r.members[node]; dup {
		return false
	}
	r.members[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hashKey(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return true
}

// Remove deletes a member and its virtual nodes. It reports whether
// the member was present. Keys it owned move to the next nodes
// clockwise; no other key moves — the consistent-hash guarantee the
// quick tests pin.
func (r *Ring) Remove(node string) bool {
	if _, ok := r.members[node]; !ok {
		return false
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Owners returns the key's owner set: walking clockwise from the
// key's ring position, the first min(replicas, Size) distinct nodes.
// The slice is freshly allocated and ordered primary-first.
func (r *Ring) Owners(key string) []string {
	return r.OwnersN(key, r.replicas)
}

// OwnersN is Owners with an explicit owner-set size.
func (r *Ring) OwnersN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// Primary returns the key's first owner (ok=false on an empty ring).
func (r *Ring) Primary(key string) (string, bool) {
	o := r.OwnersN(key, 1)
	if len(o) == 0 {
		return "", false
	}
	return o[0], true
}

// Shares returns each member's fraction of the hash space for which
// it is the primary owner — the expected share of keys (and so of
// load) it fields. Operators read this through `plctl ring` to spot
// skew; the balance quick-test bounds it.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.members))
	if len(r.points) == 0 {
		return out
	}
	const space = float64(1 << 63) * 2 // 2^64 as float
	for i, p := range r.points {
		prev := r.points[(i-1+len(r.points))%len(r.points)].hash
		// The arc (prev, p.hash] maps to p.node; the wrap-around arc
		// through zero belongs to the first point.
		width := p.hash - prev // uint64 arithmetic wraps correctly
		out[p.node] += float64(width) / space
	}
	return out
}

// Key builds the ring key for a (doc, user) view — the same composite
// key every cache tier indexes by.
func Key(doc, user string) string { return doc + "\x00" + user }
