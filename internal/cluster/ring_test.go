package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// nodeSet derives a deterministic fleet of n node names.
func nodeSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cache-%02d.example:7999", i)
	}
	return out
}

func ringOf(nodes []string, replicas, vnodes int) *Ring {
	r := NewRing(replicas, vnodes)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// sampleKeys derives k deterministic ring keys.
func sampleKeys(k int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, k)
	for i := range out {
		out[i] = Key(fmt.Sprintf("doc-%06x", rng.Int63n(1<<24)), fmt.Sprintf("u%d", rng.Intn(64)))
	}
	return out
}

// TestRingOwnersDistinct pins the replica-placement contract via
// testing/quick: owner sets contain min(replicas, size) nodes, all
// distinct, all members, primary first and stable across calls.
func TestRingOwnersDistinct(t *testing.T) {
	prop := func(nNodes uint8, nReplicas uint8, doc, user string) bool {
		n := 1 + int(nNodes)%9      // 1..9 nodes
		reps := 1 + int(nReplicas)%5 // 1..5 replicas
		r := ringOf(nodeSet(n), reps, 16)
		owners := r.Owners(Key(doc, user))
		want := reps
		if want > n {
			want = n
		}
		if len(owners) != want {
			return false
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] || !r.Contains(o) {
				return false
			}
			seen[o] = true
		}
		// Deterministic: a second walk and a second identical ring agree.
		again := ringOf(nodeSet(n), reps, 16).Owners(Key(doc, user))
		if len(again) != len(owners) {
			return false
		}
		for i := range owners {
			if owners[i] != again[i] {
				return false
			}
		}
		p, ok := r.Primary(Key(doc, user))
		return ok && p == owners[0]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRingMinimalMovementOnJoin pins the consistent-hash guarantee:
// when a node joins, the only keys whose primary changes are keys
// that moved TO the new node — no key shuffles between old nodes.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		nodes := nodeSet(n + 1)
		before := ringOf(nodes[:n], 2, DefaultVNodes)
		after := ringOf(nodes[:n], 2, DefaultVNodes)
		joiner := nodes[n]
		after.Add(joiner)
		moved := 0
		keys := sampleKeys(4000, int64(n))
		for _, k := range keys {
			pb, _ := before.Primary(k)
			pa, _ := after.Primary(k)
			if pb == pa {
				continue
			}
			moved++
			if pa != joiner {
				t.Fatalf("n=%d: key moved %s → %s, not to the joining node %s", n, pb, pa, joiner)
			}
		}
		// Expected movement ≈ 1/(n+1) of keys; allow a 2x band.
		max := 2 * len(keys) / (n + 1)
		if moved > max {
			t.Errorf("n=%d: %d of %d keys moved on join, want ≤ %d (≈1/(n+1) each)", n, moved, len(keys), max)
		}
		if moved == 0 {
			t.Errorf("n=%d: join moved nothing — the new node owns no keys", n)
		}
	}
}

// TestRingMinimalMovementOnLeave pins the inverse: when a node
// leaves, only keys it owned change primary.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	nodes := nodeSet(6)
	before := ringOf(nodes, 2, DefaultVNodes)
	leaver := nodes[2]
	after := ringOf(nodes, 2, DefaultVNodes)
	after.Remove(leaver)
	for _, k := range sampleKeys(4000, 99) {
		pb, _ := before.Primary(k)
		pa, _ := after.Primary(k)
		if pb != leaver && pb != pa {
			t.Fatalf("key owned by %s moved to %s when %s left", pb, pa, leaver)
		}
		if pb == leaver && pa == leaver {
			t.Fatalf("key still owned by the removed node %s", leaver)
		}
	}
}

// TestRingBalance bounds primary-ownership skew at DefaultVNodes:
// every node's hash-space share stays within a factor of the mean,
// and the analytic shares agree with an empirical key count.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		r := ringOf(nodeSet(n), 2, DefaultVNodes)
		shares := r.Shares()
		mean := 1.0 / float64(n)
		for node, s := range shares {
			if s > 2.0*mean || s < mean/2.0 {
				t.Errorf("n=%d: node %s owns %.1f%% of the space, mean is %.1f%% (vnodes=%d)",
					n, node, 100*s, 100*mean, DefaultVNodes)
			}
		}
		// Empirical cross-check: key counts track the analytic shares.
		keys := sampleKeys(20000, int64(n)*7)
		counts := map[string]int{}
		for _, k := range keys {
			p, _ := r.Primary(k)
			counts[p]++
		}
		for node, s := range shares {
			got := float64(counts[node]) / float64(len(keys))
			if diff := got - s; diff > 0.02 || diff < -0.02 {
				t.Errorf("n=%d: node %s empirical share %.3f vs analytic %.3f", n, node, got, s)
			}
		}
	}
}

// TestRingEmptyAndSingle pins the degenerate shapes.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(3, 8)
	if o := r.Owners("k"); o != nil {
		t.Fatalf("empty ring returned owners %v", o)
	}
	if _, ok := r.Primary("k"); ok {
		t.Fatal("empty ring returned a primary")
	}
	r.Add("only")
	if o := r.Owners("k"); len(o) != 1 || o[0] != "only" {
		t.Fatalf("single-node ring owners = %v", o)
	}
	if r.Add("only") {
		t.Fatal("duplicate Add reported a change")
	}
	if !r.Remove("only") || r.Remove("only") {
		t.Fatal("Remove bookkeeping wrong")
	}
	if r.Size() != 0 {
		t.Fatalf("Size = %d after removing the only node", r.Size())
	}
}

// FuzzRingOwners fuzzes key and membership bytes through the
// invariants: owners distinct and members, shares sum to 1, removal
// moves only the removed node's keys.
func FuzzRingOwners(f *testing.F) {
	f.Add("alpha", "amy", uint8(3), uint8(2))
	f.Add("", "", uint8(1), uint8(1))
	f.Add("doc\x00odd", "u\xffv", uint8(8), uint8(4))
	f.Fuzz(func(t *testing.T, doc, user string, nNodes, reps uint8) {
		n := 1 + int(nNodes)%8
		r := ringOf(nodeSet(n), 1+int(reps)%4, 16)
		k := Key(doc, user)
		owners := r.Owners(k)
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %q for key %q", o, k)
			}
			if !r.Contains(o) {
				t.Fatalf("owner %q not a member", o)
			}
			seen[o] = true
		}
		total := 0.0
		for _, s := range r.Shares() {
			total += s
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("shares sum to %v, want 1", total)
		}
		if n > 1 {
			pb, _ := r.Primary(k)
			victim := owners[0]
			r.Remove(victim)
			pa, ok := r.Primary(k)
			if !ok {
				t.Fatal("primary vanished with members left")
			}
			if pb != victim && pa != pb {
				t.Fatalf("removing %q moved a key owned by %q", victim, pb)
			}
		}
	})
}
