package cluster

import (
	"errors"
	"fmt"
	"sync"

	"placeless/internal/obs"
	"placeless/internal/remote"
	"placeless/internal/server"
)

// ErrNoNodes is returned by reads and writes while the ring is empty.
var ErrNoNodes = errors.New("cluster: no nodes in the ring")

// Peer is what the cluster routes to: one node's cache client.
// *remote.Cache is the production implementation; tests substitute
// fakes.
type Peer interface {
	Read(doc, user string) ([]byte, error)
	Write(doc, user string, data []byte) error
}

// StatefulPeer optionally exposes the peer's connection state for
// status output (*remote.Cache implements it).
type StatefulPeer interface {
	ConnState() server.ConnState
}

// sizedPeer optionally exposes the peer's entry count for status
// output (*remote.Cache implements it).
type sizedPeer interface {
	Len() int
}

// Options configures a Cache.
type Options struct {
	// Replicas is the owner-set size per key (default 2): reads fail
	// over across the set, so one node's death degrades only keys
	// whose whole owner set is down.
	Replicas int
	// VNodes is the virtual-node count per member (default
	// DefaultVNodes).
	VNodes int
	// Observer, when non-nil, registers the cluster's counters under
	// stable placeless_cluster_* names.
	Observer *obs.Observer
}

// Stats counts cluster-level routing activity. Per-node cache
// behavior (hits, invalidations, epochs) lives in each peer's own
// remote.Stats.
type Stats struct {
	// Reads and Writes count operations routed through the ring.
	Reads, Writes int64
	// Failovers counts operations that skipped at least one degraded
	// owner before succeeding on a later replica.
	Failovers int64
	// DegradedErrors counts operations refused because every owner in
	// the key's replica set was degraded.
	DegradedErrors int64
	// Rebalances counts ring membership changes (joins + leaves).
	Rebalances int64
}

// Cache routes reads and writes across a consistent-hash ring of
// cache nodes. Safe for concurrent use; membership changes serialize
// with routing but not with in-flight peer calls (a call racing a
// RemoveNode sees the peer's own typed error and fails over).
type Cache struct {
	mu    sync.Mutex
	ring  *Ring
	peers map[string]Peer
	stats Stats
}

// New builds an empty cluster cache; add nodes with AddNode.
func New(opts Options) *Cache {
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	c := &Cache{
		ring:  NewRing(opts.Replicas, opts.VNodes),
		peers: make(map[string]Peer),
	}
	if opts.Observer != nil {
		c.registerMetrics(opts.Observer)
	}
	return c
}

// Replicas returns the configured owner-set size.
func (c *Cache) Replicas() int { return c.ring.Replicas() }

// VNodes returns the per-member virtual node count.
func (c *Cache) VNodes() int { return c.ring.VNodes() }

// AddNode joins a node to the ring. Keys whose ownership moves to it
// fill lazily on their next read; the nodes that lose ownership keep
// their (still push-invalidated) entries until eviction, so a join
// never creates a staleness window.
func (c *Cache) AddNode(name string, p Peer) error {
	if name == "" || p == nil {
		return errors.New("cluster: AddNode needs a name and a peer")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.peers[name]; dup {
		return fmt.Errorf("cluster: node %q already in the ring", name)
	}
	c.peers[name] = p
	c.ring.Add(name)
	c.stats.Rebalances++
	return nil
}

// RemoveNode removes a node from the ring, reporting whether it was a
// member. The peer itself is not closed — the caller owns its
// lifecycle (drain procedures read through it while it leaves; see
// docs/CLUSTER.md).
func (c *Cache) RemoveNode(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.peers[name]; !ok {
		return false
	}
	delete(c.peers, name)
	c.ring.Remove(name)
	c.stats.Rebalances++
	return true
}

// Nodes returns the current members in sorted order.
func (c *Cache) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Nodes()
}

// Owners returns the (doc, user) key's owner set, primary first.
func (c *Cache) Owners(doc, user string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Owners(Key(doc, user))
}

// ownersSnapshot resolves the key's owners and their peers under one
// lock acquisition, so a routing decision is made against a single
// consistent ring state.
func (c *Cache) ownersSnapshot(doc, user string) ([]string, []Peer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := c.ring.Owners(Key(doc, user))
	peers := make([]Peer, len(names))
	for i, n := range names {
		peers[i] = c.peers[n]
	}
	return names, peers
}

// failoverable reports whether an error means "this peer cannot serve
// right now" (dead wire, degraded mode, closed cache) rather than a
// document-level failure — the former tries the next replica, the
// latter is returned as-is.
func failoverable(err error) bool {
	return errors.Is(err, remote.ErrDegraded) ||
		errors.Is(err, remote.ErrClosed) ||
		errors.Is(err, server.ErrDisconnected) ||
		errors.Is(err, server.ErrTimeout)
}

// Read routes the read to the key's owners in ring order, failing
// over past degraded peers. With every owner degraded it returns the
// last peer error (errors.Is-compatible with remote.ErrDegraded).
func (c *Cache) Read(doc, user string) ([]byte, error) {
	data, _, err := c.ReadVia(doc, user)
	return data, err
}

// ReadVia is Read plus the name of the node that served it — the
// accounting hook the simulation's per-node oracle and the scaling
// experiment both need.
func (c *Cache) ReadVia(doc, user string) ([]byte, string, error) {
	names, peers := c.ownersSnapshot(doc, user)
	c.mu.Lock()
	c.stats.Reads++
	c.mu.Unlock()
	if len(names) == 0 {
		c.countDegraded()
		return nil, "", ErrNoNodes
	}
	var lastErr error
	for i, p := range peers {
		data, err := p.Read(doc, user)
		if err == nil {
			if i > 0 {
				c.countFailover()
			}
			return data, names[i], nil
		}
		if !failoverable(err) {
			return nil, names[i], err
		}
		lastErr = err
	}
	c.countDegraded()
	return nil, "", fmt.Errorf("cluster: all %d owners of %s/%s degraded: %w", len(names), doc, user, lastErr)
}

// Write routes the write to the key's primary owner, failing over
// across the replica set like Read: any owner's connection reaches
// the origin, so a write only fails when the whole set is degraded.
func (c *Cache) Write(doc, user string, data []byte) error {
	names, peers := c.ownersSnapshot(doc, user)
	c.mu.Lock()
	c.stats.Writes++
	c.mu.Unlock()
	if len(names) == 0 {
		c.countDegraded()
		return ErrNoNodes
	}
	var lastErr error
	for i, p := range peers {
		err := p.Write(doc, user, data)
		if err == nil {
			if i > 0 {
				c.countFailover()
			}
			return nil
		}
		if !failoverable(err) {
			return err
		}
		lastErr = err
	}
	c.countDegraded()
	return fmt.Errorf("cluster: all %d owners of %s/%s degraded: %w", len(names), doc, user, lastErr)
}

func (c *Cache) countFailover() {
	c.mu.Lock()
	c.stats.Failovers++
	c.mu.Unlock()
}

func (c *Cache) countDegraded() {
	c.mu.Lock()
	c.stats.DegradedErrors++
	c.mu.Unlock()
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// NodeInfo describes one member for status surfaces (/ring, plctl).
type NodeInfo struct {
	// Name is the ring member name (the peer's address in plcached).
	Name string `json:"name"`
	// State is the peer's connection state when it exposes one
	// ("connected", "disconnected", "closed"; "" otherwise).
	State string `json:"state,omitempty"`
	// Share is the member's primary-ownership fraction of the hash
	// space (≈ its share of keys).
	Share float64 `json:"share"`
	// Entries is the peer's cached entry count when it exposes one.
	Entries int `json:"entries"`
}

// Info returns a status row per member, sorted by name.
func (c *Cache) Info() []NodeInfo {
	c.mu.Lock()
	names := c.ring.Nodes()
	shares := c.ring.Shares()
	peers := make([]Peer, len(names))
	for i, n := range names {
		peers[i] = c.peers[n]
	}
	c.mu.Unlock()
	out := make([]NodeInfo, len(names))
	for i, n := range names {
		info := NodeInfo{Name: n, Share: shares[n]}
		if sp, ok := peers[i].(StatefulPeer); ok {
			info.State = sp.ConnState().String()
		}
		if zp, ok := peers[i].(sizedPeer); ok {
			info.Entries = zp.Len()
		}
		out[i] = info
	}
	return out
}

// registerMetrics publishes the cluster's counters on o's registry
// under stable placeless_cluster_* names (docs/METRICS.md).
func (c *Cache) registerMetrics(o *obs.Observer) {
	reg := o.Registry()
	counter := func(read func(*Stats) int64) func() int64 {
		return func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return read(&c.stats)
		}
	}
	reg.Counter("placeless_cluster_reads_total",
		"Reads routed through the consistent-hash ring.", counter(func(s *Stats) int64 { return s.Reads }))
	reg.Counter("placeless_cluster_writes_total",
		"Writes routed through the consistent-hash ring.", counter(func(s *Stats) int64 { return s.Writes }))
	reg.Counter("placeless_cluster_failovers_total",
		"Operations that skipped at least one degraded owner before succeeding on a replica.", counter(func(s *Stats) int64 { return s.Failovers }))
	reg.Counter("placeless_cluster_degraded_errors_total",
		"Operations refused because every owner in the key's replica set was degraded.", counter(func(s *Stats) int64 { return s.DegradedErrors }))
	reg.Counter("placeless_cluster_rebalances_total",
		"Ring membership changes (node joins + leaves).", counter(func(s *Stats) int64 { return s.Rebalances }))
	reg.Gauge("placeless_cluster_nodes",
		"Current ring member count.",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(c.ring.Size())
		})
	reg.Gauge("placeless_cluster_replicas",
		"Configured owner-set size per key.",
		func() int64 { return int64(c.ring.Replicas()) })
}
