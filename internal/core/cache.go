// Package core implements the Placeless document-content cache: the
// caching architecture that is the paper's contribution.
//
// The cache sits between applications and the Placeless middleware
// (the paper's application-level cache, co-located with the
// application). Entries are identified by (document, user) because
// active properties personalize content per user; identical content is
// stored once via content signatures. Consistency is maintained by two
// mechanisms: notifiers — active properties the cache installs on base
// documents and references, which push invalidations for changes under
// Placeless control — and verifiers — code returned with the content
// and executed on every hit, which catch changes outside Placeless
// control. Cacheability indicators aggregated along the read path
// decide whether content may be cached and whether operation events
// must still be forwarded. Replacement is cost-aware (Greedy-Dual-Size
// by default), driven by the replacement cost the read path
// accumulates.
//
// Concurrency: the (document, user) index is partitioned into
// lock-striped shards (shard.go) so readers of different entries never
// contend; the signature → bytes store and the replacement policy sit
// behind their own leaf locks; counters are atomic. Concurrent misses
// on one key are coalesced single-flight (singleflight.go) so the read
// path — property-chain execution, verifier install, notifier
// registration — runs exactly once per stampede. Under single-threaded
// access the cache behaves byte-identically to a globally locked one:
// verifiers still run on every hit, cacheability aggregation is
// unchanged, and the eviction sequence is pinned by the determinism
// golden test.
package core

import (
	"errors"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/event"
	"placeless/internal/obs"
	"placeless/internal/property"
	"placeless/internal/replace"
	"placeless/internal/sig"
	"placeless/internal/store"
)

// ErrClosed is returned by operations on a closed cache.
var ErrClosed = errors.New("core: cache is closed")

// WriteMode selects how writes interact with the cache.
type WriteMode int

const (
	// WriteThrough forwards every write to the Placeless system
	// immediately (the paper's default assumption).
	WriteThrough WriteMode = iota
	// WriteBack buffers writes in the cache and flushes on demand;
	// write-path properties whose cacheability vote demands it still
	// get getOutputStream events forwarded per write.
	WriteBack
)

// String names the mode.
func (m WriteMode) String() string {
	if m == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// Options configures a Cache.
type Options struct {
	// Name identifies the cache in notifier property names; caches
	// sharing a space must use distinct names.
	Name string
	// Capacity is the content budget in bytes (unique bytes stored,
	// after signature sharing). Zero means unlimited.
	Capacity int64
	// Policy supplies the replacement policy; nil defaults to
	// Greedy-Dual-Size.
	Policy replace.Policy
	// Shards overrides the number of index stripes. Zero selects the
	// GOMAXPROCS-scaled default; other values round up to a power of
	// two. Shards = 1 degenerates to a single-lock index, which the
	// parallel benchmarks use as the pre-sharding baseline.
	Shards int
	// HitCost is the simulated local access time charged on a cache
	// hit (the cost of the cache lookup itself), before verifier
	// execution.
	HitCost time.Duration
	// FillCost is the simulated overhead of installing notifiers and
	// storing an entry on a miss.
	FillCost time.Duration
	// Mode selects write-through (default) or write-back.
	Mode WriteMode
	// FlushEvery, in write-back mode, flushes dirty content on this
	// period (like the end-of-day replication property, via the
	// space's timer clock). Zero disables automatic flushing.
	FlushEvery time.Duration
	// MaxDirty, in write-back mode, bounds the number of buffered
	// writes: exceeding it triggers an immediate flush. Zero means
	// unbounded (flush only on demand or on the timer).
	MaxDirty int
	// DisableNotifiers suppresses notifier installation (verifier-
	// only consistency), for experiment E1.
	DisableNotifiers bool
	// DisablePrefetch turns off related-document prefetching (the
	// collection-property hint), for experiment E8's ablation.
	DisablePrefetch bool
	// CostSource selects what feeds the replacement policy's cost
	// input, for experiment E9's ablation of the paper's design
	// choice to accumulate property execution times.
	CostSource CostSource
	// DisableVerifiers skips verifier execution on hits (notifier-
	// only consistency), for experiment E1.
	DisableVerifiers bool
	// Memoize enables content-addressed memoization of the read
	// path's universal stage: on a miss, the output of the universal
	// property chain is cached keyed by (source signature, chain
	// fingerprint) and reused across users, with only the personal
	// suffix re-executed per user (see intermediate.go). Off by
	// default — intermediates consume capacity and skip the universal
	// transforms' simulated execution time, which would perturb
	// experiments calibrated against full-chain misses.
	Memoize bool
	// Observer, when non-nil, receives per-read traces and stage
	// timings, and the cache registers its counters on the observer's
	// registry under stable placeless_cache_* names (see obs.go). One
	// Observer serves one cache. Nil disables all instrumentation at
	// zero cost to the read path.
	Observer *obs.Observer
	// Store, when non-nil, attaches the durable content-addressed disk
	// tier (internal/store): expensive-to-rebuild results are demoted
	// to disk at install time, misses consult the tier before
	// executing transforms, and invalidation epochs are persisted so a
	// restart never serves a signature invalidated while the process
	// was down (see durable.go). The tier is built on content
	// addressing, so attaching a store forces Memoize on. The store's
	// lifetime belongs to the caller: close it after Close (or Kill)
	// returns. One Store serves one cache at a time.
	Store *store.Store
	// DurableMinCost is the minimum replacement cost for a result to
	// be demoted to the disk tier — the durable analogue of the GDS
	// cost input: cheap-to-rebuild content is not worth the disk
	// write. Zero demotes every eligible result.
	DurableMinCost time.Duration
	// PrefixMinCostPerKB gates which prefix cut points are worth
	// storing under Memoize: a cut is installed only when its
	// accumulated recompute cost is at least this much per KiB of
	// output. Storing every prefix of a long chain is quadratic in
	// bytes; this is the in-memory analogue of DurableMinCost. Zero
	// (the default) stores every memoizable cut.
	PrefixMinCostPerKB time.Duration
	// SingleCutMemo restricts memoization to the single universal/
	// personal boundary cut of the original two-segment split instead
	// of the N-cut prefix pipeline — the ablation baseline for
	// experiment E17.
	SingleCutMemo bool
}

// CostSource selects the replacement-cost signal handed to the policy.
type CostSource int

const (
	// CostFull uses the read path's accumulated cost — retrieval plus
	// property execution times (the paper's design).
	CostFull CostSource = iota
	// CostConstant feeds the policy a fixed cost, reducing GDS to a
	// size/recency policy; the ablation baseline.
	CostConstant
)

// String names the source.
func (c CostSource) String() string {
	if c == CostConstant {
		return "constant"
	}
	return "full"
}

// entry is one cached (document, user) version.
type entry struct {
	doc, user    string
	signature    sig.Signature
	size         int64
	cost         time.Duration
	cacheability property.Cacheability
	verifiers    []property.Verifier
	storedAt     time.Time
}

// blob is signature-shared content storage. refs counts every holder
// (entries and intermediates); entryRefs counts only (doc, user)
// entries, because the SharedEntries gauge is defined over entries and
// an intermediate aliasing an entry's bytes must not distort it.
type blob struct {
	data      []byte
	crc32c    uint32 // CRC-32C of data, computed once at intern time
	refs      int
	entryRefs int
}

// castagnoliTable is the CRC-32C table used to stamp blobs at intern
// time. The wire server combines the stored value into frame trailers
// so warm hits never re-scan the body.
var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// dirtyWrite is a buffered write-back entry.
type dirtyWrite struct {
	data []byte
}

// Stats counts cache activity. All counters are cumulative.
type Stats struct {
	// Hits are reads served from the cache (verifiers passed).
	Hits int64
	// Misses are reads that executed the full Placeless read path,
	// including the first access to a document.
	Misses int64
	// CoalescedMisses are reads that missed while another goroutine
	// was already executing the read path for the same (document,
	// user) key and received that execution's result instead of
	// running their own (single-flight coalescing). They count
	// neither as Hits nor as Misses.
	CoalescedMisses int64
	// VerifierRejects counts hits discarded because a verifier
	// reported the entry invalid.
	VerifierRejects int64
	// Notifications counts invalidations pushed by notifiers.
	Notifications int64
	// Invalidations counts entries dropped by notifications.
	Invalidations int64
	// Evictions counts entries dropped by the replacement policy.
	Evictions int64
	// Uncacheable counts reads whose result could not be cached.
	Uncacheable int64
	// EventsForwarded counts operation events forwarded for
	// CacheWithEvents entries.
	EventsForwarded int64
	// Prefetches counts documents loaded because a property declared
	// them related to one being read (collection prefetching).
	Prefetches int64
	// BytesStored is the current unique content footprint.
	BytesStored int64
	// BytesLogical is the current sum of entry sizes before signature
	// sharing.
	BytesLogical int64
	// SharedEntries counts current entries whose blob is shared with
	// at least one other entry.
	SharedEntries int64
	// Flushes counts write-back flush operations.
	Flushes int64
	// IntermediateHits counts misses whose universal stage was served
	// from the intermediate store (or coalesced onto a concurrent
	// computation) instead of being re-executed.
	IntermediateHits int64
	// UniversalStageRuns counts actual executions of the universal
	// property chain under memoization — one per (source signature,
	// chain fingerprint) while the intermediate stays resident.
	UniversalStageRuns int64
	// BytesRecomputedSaved accumulates the sizes of intermediates
	// served without recomputation: bytes the universal chain did not
	// have to produce again.
	BytesRecomputedSaved int64
	// IntermediateEntries is the current number of memoized
	// universal-stage outputs.
	IntermediateEntries int64
	// IntermediateBytes is the current logical footprint of memoized
	// intermediates (before signature sharing).
	IntermediateBytes int64

	// PrefixHits counts longest-prefix probes that found a cached cut:
	// misses that resumed the transform pipeline from a memoized
	// prefix instead of the raw source.
	PrefixHits int64
	// PrefixSegmentRuns counts segment executions under the N-cut
	// pipeline (one per computed cut, so a cold chain with k cuts
	// contributes k).
	PrefixSegmentRuns int64
	// PrefixInstalls counts prefix cuts admitted to the intermediate
	// store; PrefixInstallSkips counts cuts rejected by the
	// PrefixMinCostPerKB cost gate.
	PrefixInstalls     int64
	PrefixInstallSkips int64
	// PrefixSavedBytes accumulates intermediate bytes served by the
	// prefix pipeline without recomputation (probe and per-cut hits).
	PrefixSavedBytes int64
	// PrefixFallbackErrors counts staged reads that degraded to direct
	// transform execution because the intermediate store failed
	// mid-read (slow, not broken).
	PrefixFallbackErrors int64

	// StoreDemotions counts (doc, user) results written behind to the
	// durable disk tier at install time.
	StoreDemotions int64
	// StoreIntermediateDemotions counts universal-stage outputs written
	// to the disk tier.
	StoreIntermediateDemotions int64
	// StorePromotions counts misses served by revalidating and
	// promoting a durable entry instead of executing transforms.
	StorePromotions int64
	// StoreIntermediatePromotions counts universal-stage executions
	// avoided by promoting a durable intermediate.
	StoreIntermediatePromotions int64
	// StorePromotionRejects counts durable entries found for a missing
	// key but refused — content key mismatch, stale epoch, missing or
	// corrupt blob — and recomputed instead.
	StorePromotionRejects int64
	// StoreErrors counts disk-tier I/O failures (demotion writes,
	// epoch appends). The tier is write-behind, so errors degrade
	// durability, never correctness.
	StoreErrors int64
}

// HitRatio returns Hits / (Hits + Misses), or 0 with no traffic.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a Placeless document-content cache. It is safe for
// concurrent use: see shard.go for the locking architecture and the
// lock-ordering rules every method follows.
type Cache struct {
	space *docspace.Space
	clk   clock.Clock
	opts  Options // immutable after New (Capacity lives in capacity)

	closed   atomic.Bool
	capacity atomic.Int64

	// idx stripes the (doc, user) → entry index and the single-flight
	// table; each stripe has its own lock.
	idx *shardedIndex

	// policy decides eviction order. It stays global — Greedy-Dual-
	// Size's aging value L must see every entry to keep eviction
	// globally cost-aware — but behind its own leaf lock, so lookups
	// on other keys never wait on it.
	policyMu sync.Mutex
	policy   replace.Policy

	// blobs is the signature-shared content store, with incremental
	// byte/shared accounting (sharedDelta).
	blobMu sync.Mutex
	blobs  map[sig.Signature]*blob

	// gens carries per-document invalidation generations — the guard
	// against installing a result that went stale mid-read — as
	// lock-free atomics (doc → *atomic.Uint64). A mutex-protected map
	// here was locked three times per miss, the last global hot lock
	// on the fill path. The install-race invariant survives the move
	// to atomics: an invalidation bumps the generation before it
	// scans the stripes, so an installer holding its stripe lock
	// either finished before the scan reached it (and is dropped) or
	// acquired the stripe after the scan did, in which case the
	// stripe mutex carries a happens-before edge from the bump and
	// the installer's atomic load observes it.
	gens sync.Map

	// inter is the content-addressed intermediate store for memoized
	// universal-stage outputs, with its own single-flight table so
	// concurrent misses from different users coalesce the shared
	// work. interMu ranks with the shard locks: leaf locks nest under
	// it, it is never held together with a shard lock, and never held
	// across docspace calls or clock sleeps (see intermediate.go).
	interMu      sync.Mutex
	inter        map[string]*interEntry
	interFlights map[string]*iflight

	// lastCause remembers, per document, the most recent invalidation
	// cause (doc → string, obs.Cause* vocabulary) so the next miss can
	// attribute itself. Only populated when an Observer is attached.
	lastCause sync.Map

	// dirty buffers write-back content. flushMu serializes whole Flush
	// runs (timer-driven and explicit) so an older snapshot can never
	// land in the repository after a newer one; it is taken before
	// writeMu and never held by Write itself.
	writeMu sync.Mutex
	flushMu sync.Mutex
	dirty   map[string]*dirtyWrite

	// Notifier bookkeeping: which attachment points already carry the
	// cache's notifiers, and where to detach them on Close.
	notifMu   sync.Mutex
	baseNotif map[string]bool           // docs with a base notifier installed
	refNotif  map[string]bool           // doc/user refs with a notifier installed
	notifiers map[string][]notifierSpot // notifier names per doc for Close

	stats statsCounters
}

// notifierSpot remembers where a notifier was attached.
type notifierSpot struct {
	doc, user string
	level     docspace.Level
	name      string
}

// key builds the (document, user) entry identifier. The paper: "Our
// current implementation tags content with both a document identifier
// and the user to whom the version of the document belongs."
func key(doc, user string) string { return doc + "\x00" + user }

// New returns a cache in front of space.
func New(space *docspace.Space, opts Options) *Cache {
	if opts.Name == "" {
		opts.Name = "cache"
	}
	if opts.Store != nil {
		// The disk tier is an extension of the content-addressed
		// machinery: demotion records content keys the staged read path
		// computes, so durability implies memoization.
		opts.Memoize = true
	}
	policy := opts.Policy
	if policy == nil {
		policy = replace.NewGDS()
	}
	c := &Cache{
		space:        space,
		clk:          space.Clock(),
		opts:         opts,
		idx:          newShardedIndex(opts.Shards),
		policy:       policy,
		blobs:        make(map[sig.Signature]*blob),
		inter:        make(map[string]*interEntry),
		interFlights: make(map[string]*iflight),
		dirty:        make(map[string]*dirtyWrite),
		baseNotif:    make(map[string]bool),
		refNotif:     make(map[string]bool),
		notifiers:    make(map[string][]notifierSpot),
	}
	c.capacity.Store(opts.Capacity)
	if opts.Store != nil {
		// Seed the invalidation-generation counters from the persisted
		// epochs, so generations recorded by this process continue the
		// sequence the previous process left on disk — an entry demoted
		// now can never be mistaken for one invalidated before boot.
		for doc, gen := range opts.Store.Epochs() {
			g := new(atomic.Uint64)
			g.Store(gen)
			c.gens.Store(doc, g)
		}
	}
	if opts.Observer != nil {
		c.registerMetrics(opts.Observer)
	}
	if opts.Mode == WriteBack && opts.FlushEvery > 0 {
		c.armFlushTimer()
	}
	return c
}

// armFlushTimer schedules the next periodic write-back flush.
func (c *Cache) armFlushTimer() {
	c.space.Clock().AfterFunc(c.opts.FlushEvery, func(time.Time) {
		if c.closed.Load() {
			return
		}
		_ = c.Flush() // flush errors leave entries dirty for the next cycle
		c.armFlushTimer()
	})
}

// Resize changes the capacity budget at runtime and evicts immediately
// if the cache is now over budget. capacity <= 0 means unlimited.
func (c *Cache) Resize(capacity int64) {
	c.capacity.Store(capacity)
	c.evict("")
}

// Capacity returns the current byte budget (0 = unlimited).
func (c *Cache) Capacity() int64 { return c.capacity.Load() }

// Policy returns the replacement policy's name.
func (c *Cache) Policy() string { return c.policy.Name() }

// Memoizing reports whether universal-stage memoization is enabled.
func (c *Cache) Memoizing() bool { return c.opts.Memoize }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats.snapshot() }

// Len reports how many (document, user) entries are cached.
func (c *Cache) Len() int { return c.idx.count() }

// Contains reports whether a valid entry exists for (doc, user)
// without running verifiers or charging time.
func (c *Cache) Contains(doc, user string) bool {
	k := key(doc, user)
	sh := c.idx.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.entries[k]
	return ok
}

// EntryInfo is the cache-relevant metadata of a served read, for
// consumers that layer further caches on top (e.g. the Placeless
// server exposing a server-side cache to remote application caches).
type EntryInfo struct {
	// Cacheability is the read path's aggregated vote.
	Cacheability property.Cacheability
	// Cost is the replacement cost of rebuilding the content.
	Cost time.Duration
	// Expiry is the earliest TTL-verifier deadline attached to the
	// content (zero when no TTL applies). Unlike verifier code, a
	// deadline can cross the wire, so layered remote caches can honor
	// web-style freshness.
	Expiry time.Time
	// Hit reports whether this read was served from the cache.
	// Coalesced misses (reads that received another goroutine's
	// read-path result) report false.
	Hit bool
	// IntermediateHit reports, for misses under Options.Memoize, that
	// the universal stage was served memoized and only the personal
	// suffix executed. Always false on hits and coalesced misses.
	IntermediateHit bool
	// DiskPromoted reports that this miss was served by promoting a
	// revalidated entry from the durable disk tier — no transform ran.
	DiskPromoted bool
	// Signature is the content signature of the returned bytes, set
	// when the result is held in (or was just installed into / promoted
	// from) the signature-addressed blob tier; zero otherwise. The wire
	// server uses it to stream large bodies straight from the durable
	// store instead of the heap copy.
	Signature sig.Signature
	// BodyCRC32C is the CRC-32C of the returned bytes, valid only when
	// BodyCRCOK is set (CRC zero is a legal checksum). It is the blob
	// tier's intern-time checksum; the wire server folds it into frame
	// trailers instead of re-scanning the body per response.
	BodyCRC32C uint32
	BodyCRCOK  bool
}

// minExpiry extracts the earliest TTL deadline from a verifier set.
func minExpiry(verifiers []property.Verifier) time.Time {
	var min time.Time
	for _, v := range verifiers {
		if ttl, ok := v.(property.TTLVerifier); ok {
			if min.IsZero() || ttl.Expiry.Before(min) {
				min = ttl.Expiry
			}
		}
	}
	return min
}

// Read returns the document content as seen by user, serving from the
// cache when possible. On a hit every verifier attached to the entry
// runs; any failure discards the entry and re-executes the read path.
//
// Accesses are keyed by the reference they resolve to: a user reading
// through a group-owned reference shares the group's cache entry,
// since every member sees the identical property chain.
func (c *Cache) Read(doc, user string) ([]byte, error) {
	data, _, err := c.ReadWithInfo(doc, user)
	return data, err
}

// ReadWithInfo is Read plus the entry metadata a layered cache needs.
// With an Observer attached it also records the read: verdict and
// miss-cause counters, per-stage latency histograms, and a ReadTrace
// in the ring buffer.
func (c *Cache) ReadWithInfo(doc, user string) ([]byte, EntryInfo, error) {
	o := c.opts.Observer
	if o == nil {
		return c.readWithInfo(doc, user, nil)
	}
	tr := &obs.ReadTrace{Doc: doc, User: user}
	t0 := time.Now()
	data, info, err := c.readWithInfo(doc, user, tr)
	tr.Total = time.Since(t0)
	tr.Time = time.Now()
	switch {
	case err != nil:
		tr.Verdict = obs.VerdictError
		tr.Err = err.Error()
	case info.Hit:
		tr.Verdict = obs.VerdictHit
	case tr.Coalesced:
		tr.Verdict = obs.VerdictCoalesced
	case info.DiskPromoted:
		tr.Verdict = obs.VerdictDisk
	case info.IntermediateHit:
		tr.Verdict = obs.VerdictMemo
	default:
		tr.Verdict = obs.VerdictMiss
	}
	switch tr.Verdict {
	case obs.VerdictMiss, obs.VerdictMemo:
		tr.Cause = c.missCause(doc)
	}
	o.ObserveRead(*tr)
	return data, info, err
}

// ReadSharedHit serves a clean cache hit without the defensive copy —
// the returned bytes alias the cache's internal blob storage, which is
// immutable after creation, so the caller MUST treat them as read-only
// — and without ever blocking on the read path: ok reports
// whether an entry was present and passed its verifiers. Every other
// outcome — miss, verifier rejection, a configured HitCost to charge —
// returns ok == false without touching counters or dropping entries;
// the caller is expected to fall back to a full ReadWithInfo, which
// owns those outcomes (so a rejection is still counted and dropped
// exactly once, by the fallback). The wire server
// probes this from its decode loop so warm hits skip the per-request
// handler dispatch entirely.
func (c *Cache) ReadSharedHit(doc, user string) ([]byte, EntryInfo, bool) {
	if c.closed.Load() || c.opts.HitCost > 0 {
		return nil, EntryInfo{}, false
	}
	owner, err := c.space.ResolveOwner(doc, user)
	if err != nil {
		return nil, EntryInfo{}, false
	}
	k := key(doc, owner)
	sh := c.idx.shardFor(k)

	var tr *obs.ReadTrace
	var t0 time.Time
	o := c.opts.Observer
	if o != nil {
		tr = &obs.ReadTrace{Doc: doc, User: user, Verdict: obs.VerdictHit}
		t0 = time.Now()
	}
	sh.mu.Lock()
	e := sh.entries[k]
	var data []byte
	var bodyCRC uint32
	var crcOK bool
	if e != nil {
		data, bodyCRC, crcOK = c.blobDataCRC(e.signature)
	}
	sh.mu.Unlock()
	if tr != nil {
		tr.Lookup = time.Since(t0)
	}
	if e == nil || data == nil {
		return nil, EntryInfo{}, false
	}
	if !c.opts.DisableVerifiers {
		var tVerify time.Time
		if tr != nil {
			tVerify = time.Now()
		}
		now := c.clk.Now()
		for _, v := range e.verifiers {
			if ok, err := v.Check(now); err != nil || !ok {
				return nil, EntryInfo{}, false
			}
		}
		if tr != nil {
			tr.Verify = time.Since(tVerify)
		}
	}
	sh.mu.Lock()
	// The entry may have been invalidated while verifying.
	if cur := sh.entries[k]; cur != e {
		sh.mu.Unlock()
		return nil, EntryInfo{}, false
	}
	c.stats.hits.Inc()
	c.policyMu.Lock()
	c.policy.Access(k)
	c.policyMu.Unlock()
	sh.mu.Unlock()
	if e.cacheability == property.CacheWithEvents {
		c.forward(doc, owner, event.GetInputStream)
	}
	if tr != nil {
		tr.Total = time.Since(t0)
		tr.Time = time.Now()
		o.ObserveRead(*tr)
	}
	return data, EntryInfo{Cacheability: e.cacheability, Cost: e.cost, Expiry: minExpiry(e.verifiers), Hit: true, Signature: e.signature, BodyCRC32C: bodyCRC, BodyCRCOK: crcOK}, true
}

// readWithInfo is the read path proper. tr is the per-read trace
// being assembled, or nil when no Observer is attached — every timing
// site is gated on it so the uninstrumented path pays nothing.
func (c *Cache) readWithInfo(doc, user string, tr *obs.ReadTrace) ([]byte, EntryInfo, error) {
	if c.closed.Load() {
		return nil, EntryInfo{}, ErrClosed
	}
	owner, err := c.space.ResolveOwner(doc, user)
	if err != nil {
		return nil, EntryInfo{}, err
	}
	user = owner

	if c.closed.Load() {
		return nil, EntryInfo{}, ErrClosed
	}
	k := key(doc, user)

	var tLookup time.Time
	if tr != nil {
		tLookup = time.Now()
	}
	sh := c.idx.shardFor(k)

	sh.mu.Lock()
	e := sh.entries[k]
	var data []byte
	if e != nil {
		data = c.blobData(e.signature)
	}
	sh.mu.Unlock()
	if tr != nil {
		tr.Lookup = time.Since(tLookup)
	}

	if e != nil && data != nil {
		if c.opts.HitCost > 0 {
			c.clk.Sleep(c.opts.HitCost)
		}
		valid := true
		if !c.opts.DisableVerifiers {
			var tVerify time.Time
			if tr != nil {
				tVerify = time.Now()
			}
			now := c.clk.Now()
			for _, v := range e.verifiers {
				ok, err := v.Check(now)
				if err != nil || !ok {
					valid = false
					break
				}
			}
			if tr != nil {
				tr.Verify = time.Since(tVerify)
			}
		}
		if valid {
			sh.mu.Lock()
			// The entry may have been invalidated while verifying.
			if cur := sh.entries[k]; cur == e {
				c.stats.hits.Inc()
				c.policyMu.Lock()
				c.policy.Access(k)
				c.policyMu.Unlock()
				sh.mu.Unlock()
				if e.cacheability == property.CacheWithEvents {
					c.forward(doc, user, event.GetInputStream)
				}
				out := make([]byte, len(data))
				copy(out, data)
				return out, EntryInfo{Cacheability: e.cacheability, Cost: e.cost, Expiry: minExpiry(e.verifiers), Hit: true, Signature: e.signature}, nil
			}
			sh.mu.Unlock()
		} else {
			sh.mu.Lock()
			c.stats.verifierRejects.Inc()
			// Drop only if the rejected entry is still installed; a
			// concurrent reinstall must not lose its fresh entry.
			if cur := sh.entries[k]; cur == e {
				c.dropShardLocked(sh, k)
			}
			sh.mu.Unlock()
			// The pull-side of paper cause 4: the entry died because a
			// verifier caught a change notifiers could not see.
			c.recordCause(doc, obs.CauseVerifier)
		}
	}

	return c.coalescedMiss(sh, k, doc, user, true, tr)
}

// forward redelivers an operation event for a CacheWithEvents entry.
func (c *Cache) forward(doc, user string, kind event.Kind) {
	if err := c.space.ForwardEvent(doc, user, kind); err == nil {
		c.stats.eventsForwarded.Inc()
	}
}

// coalescedMiss funnels a miss through the shard's single-flight
// table: the leader executes the read path via miss and publishes the
// result; followers block and share it. Prefetching happens after the
// flight resolves so a collection that (transitively) references the
// document being read can never re-enter its own flight.
func (c *Cache) coalescedMiss(sh *shard, k, doc, user string, mayPrefetch bool, tr *obs.ReadTrace) ([]byte, EntryInfo, error) {
	f, leader := c.joinOrLead(sh, k)
	if !leader {
		var tWait time.Time
		if tr != nil {
			tWait = time.Now()
		}
		<-f.done
		if tr != nil {
			tr.FlightWait = time.Since(tWait)
			tr.Coalesced = true
		}
		c.stats.coalesced.Inc()
		if f.err != nil {
			return nil, EntryInfo{}, f.err
		}
		out := make([]byte, len(f.data))
		copy(out, f.data)
		return out, f.info, nil
	}
	data, info, related, err := c.miss(doc, user, tr)
	c.finish(sh, k, f, data, info, err)
	if err == nil && mayPrefetch && !c.opts.DisablePrefetch {
		c.prefetch(user, related)
	}
	return data, info, err
}

// docGen returns the document's invalidation-generation counter,
// creating it on first use. The fast path is a lock-free sync.Map
// load; LoadOrStore only runs on a document's first miss.
func (c *Cache) docGen(doc string) *atomic.Uint64 {
	if g, ok := c.gens.Load(doc); ok {
		return g.(*atomic.Uint64)
	}
	g, _ := c.gens.LoadOrStore(doc, new(atomic.Uint64))
	return g.(*atomic.Uint64)
}

// miss executes the full read path and caches the result according to
// its cacheability indicator, returning the related-document hints for
// the caller to prefetch (nil unless an entry was installed).
func (c *Cache) miss(doc, user string, tr *obs.ReadTrace) (data []byte, info EntryInfo, related []string, err error) {
	// Snapshot the document's invalidation generation: if a
	// notification arrives while the read path is executing, the
	// result may already be stale and must not be cached (the
	// callback race between load and install).
	g := c.docGen(doc)
	gen := g.Load()

	// Durable tier first: a revalidated disk entry costs one source
	// fetch instead of the whole transform chain.
	if c.opts.Store != nil {
		if data, info, ok := c.promote(doc, user, g, gen); ok {
			return data, info, nil, nil
		}
	}

	var res property.ReadResult
	var trace docspace.StageTrace
	var tChain time.Time
	if tr != nil {
		tChain = time.Now()
	}
	if c.opts.Memoize {
		var memo docspace.Intermediates = c
		if c.opts.SingleCutMemo {
			memo = singleCutView{c}
		}
		data, res, trace, err = c.space.ReadDocumentStaged(doc, user, memo)
		if trace.MemoErr {
			c.stats.prefixFallbackErrors.Inc()
		}
	} else {
		data, res, err = c.space.ReadDocument(doc, user)
	}
	if tr != nil {
		if trace.BitFetchDur > 0 {
			// The staged path separated its spans; record them and not
			// the enclosing chain time, which would double count.
			tr.BitFetch = trace.BitFetchDur
			tr.Universal = trace.UniversalDur
			tr.Personal = trace.PersonalDur
		} else {
			tr.FullChain = time.Since(tChain)
		}
		if trace.Attempted {
			tr.PrefixCuts = trace.Cuts
			tr.PrefixDepth = trace.DeepestHit
		}
	}
	if err != nil {
		return nil, EntryInfo{}, nil, err
	}
	info = EntryInfo{Cacheability: res.Cacheability, Cost: res.Cost, Expiry: minExpiry(res.Verifiers), IntermediateHit: trace.Hit}
	c.stats.misses.Inc()
	if c.closed.Load() {
		return data, info, nil, nil
	}
	if res.Cacheability == property.Uncacheable {
		c.stats.uncacheable.Inc()
		return data, info, nil, nil
	}
	if g.Load() != gen {
		// Invalidated mid-read: serve the data but do not install a
		// potentially stale entry (and charge no fill cost, since
		// nothing is filled).
		return data, info, nil, nil
	}

	if c.opts.FillCost > 0 {
		// Charged outside every lock: on a virtual clock, Sleep can
		// synchronously fire timer-driven flushes whose notifier
		// callbacks re-enter the entry table.
		c.clk.Sleep(c.opts.FillCost)
	}
	k := key(doc, user)
	sh := c.idx.shardFor(k)
	sh.mu.Lock()
	if c.closed.Load() {
		sh.mu.Unlock()
		return data, info, nil, nil
	}
	// Definitive staleness check, atomic with the install under the
	// shard lock: an invalidation bumps the generation before it scans
	// the shards, so either we see the bump here and abort, or the
	// scan sees our entry and drops it.
	if g.Load() != gen {
		sh.mu.Unlock()
		return data, info, nil, nil
	}
	c.dropShardLocked(sh, k) // replace any stale entry
	s := c.storeBlob(data)
	info.Signature = s
	e := &entry{
		doc: doc, user: user,
		signature:    s,
		size:         int64(len(data)),
		cost:         res.Cost,
		cacheability: res.Cacheability,
		verifiers:    res.Verifiers,
		storedAt:     c.clk.Now(),
	}
	sh.entries[k] = e
	c.stats.bytesLogical.Add(e.size)
	policyCost := e.cost
	if c.opts.CostSource == CostConstant {
		policyCost = time.Millisecond
	}
	c.policyMu.Lock()
	c.policy.Insert(k, e.size, policyCost)
	c.policyMu.Unlock()
	sh.mu.Unlock()

	c.installNotifiers(doc, user)
	c.evict(k)
	// Write-behind demotion at install time, not at eviction: a warm
	// restart must recover the cache as it was, including entries that
	// were never evicted. All store I/O runs outside cache locks.
	c.demoteEntry(doc, user, data, res, trace, g, gen)
	return data, info, res.Related, nil
}

// prefetch warms the cache with the user's views of related documents.
// Already-cached members, in-flight members, and failures are skipped
// silently; prefetch misses never recurse.
func (c *Cache) prefetch(user string, related []string) {
	for _, doc := range related {
		if c.closed.Load() {
			continue
		}
		k := key(doc, user)
		sh := c.idx.shardFor(k)
		sh.mu.Lock()
		_, cached := sh.entries[k]
		sh.mu.Unlock()
		if cached {
			continue
		}
		f, leader := c.joinOrLead(sh, k)
		if !leader {
			// Someone is already fetching this member; the prefetch
			// goal (a warm entry) is being met without us.
			<-f.done
			continue
		}
		data, info, _, err := c.miss(doc, user, nil)
		c.finish(sh, k, f, data, info, err)
		if err != nil {
			continue
		}
		c.stats.prefetches.Inc()
	}
}

// blobData returns the stored bytes for a signature, or nil. Blob data
// is immutable after creation, so the slice may be read after blobMu
// is released (callers copy before handing bytes to applications).
func (c *Cache) blobData(s sig.Signature) []byte {
	c.blobMu.Lock()
	defer c.blobMu.Unlock()
	if b := c.blobs[s]; b != nil {
		return b.data
	}
	return nil
}

// blobDataCRC is blobData plus the blob's intern-time CRC-32C; ok
// reports whether the blob was present.
func (c *Cache) blobDataCRC(s sig.Signature) (data []byte, crc uint32, ok bool) {
	c.blobMu.Lock()
	defer c.blobMu.Unlock()
	if b := c.blobs[s]; b != nil {
		return b.data, b.crc32c, true
	}
	return nil, 0, false
}

// storeBlob interns data under its signature for a (doc, user) entry.
func (c *Cache) storeBlob(data []byte) sig.Signature {
	return c.internBlob(data, true)
}

// releaseBlob drops a (doc, user) entry's reference.
func (c *Cache) releaseBlob(s sig.Signature) {
	c.unrefBlob(s, true)
}

// internBlob interns data under its signature and takes one reference,
// maintaining the unique-byte and shared-entry gauges incrementally.
// asEntry distinguishes (doc, user) entries from intermediates: both
// share storage and lifetime, but only entry references drive the
// SharedEntries gauge.
func (c *Cache) internBlob(data []byte, asEntry bool) sig.Signature {
	s := sig.Of(data)
	c.blobMu.Lock()
	b := c.blobs[s]
	if b == nil {
		b = &blob{data: append([]byte{}, data...), crc32c: crc32.Checksum(data, castagnoliTable)}
		c.blobs[s] = b
		c.stats.bytesStored.Add(int64(len(data)))
	}
	if asEntry {
		// SharedEntries counts entries whose blob has >1 entry
		// reference; going 1→2 makes both sharers shared, each later
		// reference adds one.
		switch {
		case b.entryRefs == 1:
			c.stats.sharedEntries.Add(2)
		case b.entryRefs >= 2:
			c.stats.sharedEntries.Add(1)
		}
		b.entryRefs++
	}
	b.refs++
	c.blobMu.Unlock()
	return s
}

// unrefBlob drops one reference, freeing the blob when the last holder
// of either kind lets go.
func (c *Cache) unrefBlob(s sig.Signature, asEntry bool) {
	c.blobMu.Lock()
	defer c.blobMu.Unlock()
	b := c.blobs[s]
	if b == nil {
		return
	}
	if asEntry {
		b.entryRefs--
		switch {
		case b.entryRefs == 1:
			c.stats.sharedEntries.Add(-2)
		case b.entryRefs >= 2:
			c.stats.sharedEntries.Add(-1)
		}
	}
	b.refs--
	if b.refs <= 0 {
		delete(c.blobs, s)
		c.stats.bytesStored.Add(-int64(len(b.data)))
	}
}

// dropShardLocked removes an entry and releases its blob reference.
// The caller holds sh.mu; policyMu and blobMu are taken as nested leaf
// locks. Reports whether an entry was actually present.
func (c *Cache) dropShardLocked(sh *shard, k string) bool {
	e, ok := sh.entries[k]
	if !ok {
		return false
	}
	delete(sh.entries, k)
	c.policyMu.Lock()
	c.policy.Remove(k)
	c.policyMu.Unlock()
	c.stats.bytesLogical.Add(-e.size)
	c.releaseBlob(e.signature)
	return true
}

// evict enforces the capacity budget using the replacement policy.
// Capacity is measured in unique stored bytes, so evicting an entry
// whose blob is shared may free nothing; the loop continues until
// under budget or empty. Each round takes only the policy lock (to
// pick the globally best victim) and then that victim's shard lock —
// never a global lock and never two shard locks, so lookups on other
// stripes proceed throughout.
//
// An entry whose key has an in-flight single-flight read is pinned: a
// reader is mid-verify or mid-install on it, and evicting underneath
// would throw away bytes about to be revalidated (thrash at best). A
// pinned victim is taken out of the policy for this pass and put back
// afterwards if it survived. exempt names the one key the caller's own
// flight covers — the leader installing a fresh entry must still be
// able to evict itself when a huge insert blows the budget.
func (c *Cache) evict(exempt string) {
	capacity := c.capacity.Load()
	if capacity <= 0 {
		return
	}
	var pinned []string
	defer func() { c.reinsertPinned(pinned) }()
	for c.stats.bytesStored.Load() > capacity {
		c.policyMu.Lock()
		victim, ok := c.policy.Victim()
		c.policyMu.Unlock()
		if !ok {
			return
		}
		// Intermediates live in the same policy under prefixed keys,
		// so cost-aware replacement weighs a memoized universal stage
		// against full entries on equal terms.
		if isInterKey(victim) {
			if c.dropIntermediate(victim) {
				c.stats.evictions.Inc()
			}
			continue
		}
		sh := c.idx.shardFor(victim)
		sh.mu.Lock()
		if victim != exempt && sh.flights[victim] != nil {
			// Pinned. Victim only peeks, so take the key out of the
			// policy ourselves — each pass over a pinned key shrinks
			// the policy, which keeps the loop terminating when only
			// pinned entries remain.
			c.policyMu.Lock()
			c.policy.Remove(victim)
			c.policyMu.Unlock()
			if _, present := sh.entries[victim]; present {
				pinned = append(pinned, victim)
			}
			sh.mu.Unlock()
			continue
		}
		if c.dropShardLocked(sh, victim) {
			c.stats.evictions.Inc()
		}
		// else: a concurrent invalidation beat us to the victim (and
		// already removed it from the policy); re-check the budget.
		sh.mu.Unlock()
	}
}

// reinsertPinned puts keys skipped by evict back into the policy, but
// only when the entry is still installed — the flight that pinned a
// key may have finished and replaced (or an invalidation removed) the
// entry, and a policy key with no entry behind it would make future
// Victim calls spin on a ghost.
func (c *Cache) reinsertPinned(keys []string) {
	for _, k := range keys {
		sh := c.idx.shardFor(k)
		sh.mu.Lock()
		if e, ok := sh.entries[k]; ok {
			policyCost := e.cost
			if c.opts.CostSource == CostConstant {
				policyCost = time.Millisecond
			}
			c.policyMu.Lock()
			c.policy.Insert(k, e.size, policyCost)
			c.policyMu.Unlock()
		}
		sh.mu.Unlock()
	}
}
