// Package core implements the Placeless document-content cache: the
// caching architecture that is the paper's contribution.
//
// The cache sits between applications and the Placeless middleware
// (the paper's application-level cache, co-located with the
// application). Entries are identified by (document, user) because
// active properties personalize content per user; identical content is
// stored once via content signatures. Consistency is maintained by two
// mechanisms: notifiers — active properties the cache installs on base
// documents and references, which push invalidations for changes under
// Placeless control — and verifiers — code returned with the content
// and executed on every hit, which catch changes outside Placeless
// control. Cacheability indicators aggregated along the read path
// decide whether content may be cached and whether operation events
// must still be forwarded. Replacement is cost-aware (Greedy-Dual-Size
// by default), driven by the replacement cost the read path
// accumulates.
package core

import (
	"errors"
	"sync"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/replace"
	"placeless/internal/sig"
)

// ErrClosed is returned by operations on a closed cache.
var ErrClosed = errors.New("core: cache is closed")

// WriteMode selects how writes interact with the cache.
type WriteMode int

const (
	// WriteThrough forwards every write to the Placeless system
	// immediately (the paper's default assumption).
	WriteThrough WriteMode = iota
	// WriteBack buffers writes in the cache and flushes on demand;
	// write-path properties whose cacheability vote demands it still
	// get getOutputStream events forwarded per write.
	WriteBack
)

// String names the mode.
func (m WriteMode) String() string {
	if m == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// Options configures a Cache.
type Options struct {
	// Name identifies the cache in notifier property names; caches
	// sharing a space must use distinct names.
	Name string
	// Capacity is the content budget in bytes (unique bytes stored,
	// after signature sharing). Zero means unlimited.
	Capacity int64
	// Policy supplies the replacement policy; nil defaults to
	// Greedy-Dual-Size.
	Policy replace.Policy
	// HitCost is the simulated local access time charged on a cache
	// hit (the cost of the cache lookup itself), before verifier
	// execution.
	HitCost time.Duration
	// FillCost is the simulated overhead of installing notifiers and
	// storing an entry on a miss.
	FillCost time.Duration
	// Mode selects write-through (default) or write-back.
	Mode WriteMode
	// FlushEvery, in write-back mode, flushes dirty content on this
	// period (like the end-of-day replication property, via the
	// space's timer clock). Zero disables automatic flushing.
	FlushEvery time.Duration
	// MaxDirty, in write-back mode, bounds the number of buffered
	// writes: exceeding it triggers an immediate flush. Zero means
	// unbounded (flush only on demand or on the timer).
	MaxDirty int
	// DisableNotifiers suppresses notifier installation (verifier-
	// only consistency), for experiment E1.
	DisableNotifiers bool
	// DisablePrefetch turns off related-document prefetching (the
	// collection-property hint), for experiment E8's ablation.
	DisablePrefetch bool
	// CostSource selects what feeds the replacement policy's cost
	// input, for experiment E9's ablation of the paper's design
	// choice to accumulate property execution times.
	CostSource CostSource
	// DisableVerifiers skips verifier execution on hits (notifier-
	// only consistency), for experiment E1.
	DisableVerifiers bool
}

// CostSource selects the replacement-cost signal handed to the policy.
type CostSource int

const (
	// CostFull uses the read path's accumulated cost — retrieval plus
	// property execution times (the paper's design).
	CostFull CostSource = iota
	// CostConstant feeds the policy a fixed cost, reducing GDS to a
	// size/recency policy; the ablation baseline.
	CostConstant
)

// String names the source.
func (c CostSource) String() string {
	if c == CostConstant {
		return "constant"
	}
	return "full"
}

// entry is one cached (document, user) version.
type entry struct {
	doc, user    string
	signature    sig.Signature
	size         int64
	cost         time.Duration
	cacheability property.Cacheability
	verifiers    []property.Verifier
	storedAt     time.Time
}

// blob is signature-shared content storage.
type blob struct {
	data []byte
	refs int
}

// dirtyWrite is a buffered write-back entry.
type dirtyWrite struct {
	data []byte
}

// Stats counts cache activity. All counters are cumulative.
type Stats struct {
	// Hits are reads served from the cache (verifiers passed).
	Hits int64
	// Misses are reads that executed the full Placeless read path,
	// including the first access to a document.
	Misses int64
	// VerifierRejects counts hits discarded because a verifier
	// reported the entry invalid.
	VerifierRejects int64
	// Notifications counts invalidations pushed by notifiers.
	Notifications int64
	// Invalidations counts entries dropped by notifications.
	Invalidations int64
	// Evictions counts entries dropped by the replacement policy.
	Evictions int64
	// Uncacheable counts reads whose result could not be cached.
	Uncacheable int64
	// EventsForwarded counts operation events forwarded for
	// CacheWithEvents entries.
	EventsForwarded int64
	// Prefetches counts documents loaded because a property declared
	// them related to one being read (collection prefetching).
	Prefetches int64
	// BytesStored is the current unique content footprint.
	BytesStored int64
	// BytesLogical is the current sum of entry sizes before signature
	// sharing.
	BytesLogical int64
	// SharedEntries counts current entries whose blob is shared with
	// at least one other entry.
	SharedEntries int64
	// Flushes counts write-back flush operations.
	Flushes int64
}

// HitRatio returns Hits / (Hits + Misses), or 0 with no traffic.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a Placeless document-content cache. It is safe for
// concurrent use.
type Cache struct {
	space *docspace.Space
	clk   clock.Clock
	opts  Options

	mu        sync.Mutex
	closed    bool
	entries   map[string]*entry
	blobs     map[sig.Signature]*blob
	policy    replace.Policy
	stats     Stats
	dirty     map[string]*dirtyWrite
	gens      map[string]uint64         // per-doc invalidation generation
	baseNotif map[string]bool           // docs with a base notifier installed
	refNotif  map[string]bool           // doc/user refs with a notifier installed
	notifiers map[string][]notifierSpot // notifier names per doc for Close
}

// notifierSpot remembers where a notifier was attached.
type notifierSpot struct {
	doc, user string
	level     docspace.Level
	name      string
}

// key builds the (document, user) entry identifier. The paper: "Our
// current implementation tags content with both a document identifier
// and the user to whom the version of the document belongs."
func key(doc, user string) string { return doc + "\x00" + user }

// New returns a cache in front of space.
func New(space *docspace.Space, opts Options) *Cache {
	if opts.Name == "" {
		opts.Name = "cache"
	}
	policy := opts.Policy
	if policy == nil {
		policy = replace.NewGDS()
	}
	c := &Cache{
		space:     space,
		clk:       space.Clock(),
		opts:      opts,
		entries:   make(map[string]*entry),
		blobs:     make(map[sig.Signature]*blob),
		policy:    policy,
		dirty:     make(map[string]*dirtyWrite),
		gens:      make(map[string]uint64),
		baseNotif: make(map[string]bool),
		refNotif:  make(map[string]bool),
		notifiers: make(map[string][]notifierSpot),
	}
	if opts.Mode == WriteBack && opts.FlushEvery > 0 {
		c.armFlushTimer()
	}
	return c
}

// armFlushTimer schedules the next periodic write-back flush.
func (c *Cache) armFlushTimer() {
	c.space.Clock().AfterFunc(c.opts.FlushEvery, func(time.Time) {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		_ = c.Flush() // flush errors leave entries dirty for the next cycle
		c.armFlushTimer()
	})
}

// Resize changes the capacity budget at runtime and evicts immediately
// if the cache is now over budget. capacity <= 0 means unlimited.
func (c *Cache) Resize(capacity int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opts.Capacity = capacity
	c.evictLocked()
}

// Capacity returns the current byte budget (0 = unlimited).
func (c *Cache) Capacity() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.Capacity
}

// Policy returns the replacement policy's name.
func (c *Cache) Policy() string { return c.policy.Name() }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports how many (document, user) entries are cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Contains reports whether a valid entry exists for (doc, user)
// without running verifiers or charging time.
func (c *Cache) Contains(doc, user string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key(doc, user)]
	return ok
}

// EntryInfo is the cache-relevant metadata of a served read, for
// consumers that layer further caches on top (e.g. the Placeless
// server exposing a server-side cache to remote application caches).
type EntryInfo struct {
	// Cacheability is the read path's aggregated vote.
	Cacheability property.Cacheability
	// Cost is the replacement cost of rebuilding the content.
	Cost time.Duration
	// Expiry is the earliest TTL-verifier deadline attached to the
	// content (zero when no TTL applies). Unlike verifier code, a
	// deadline can cross the wire, so layered remote caches can honor
	// web-style freshness.
	Expiry time.Time
}

// minExpiry extracts the earliest TTL deadline from a verifier set.
func minExpiry(verifiers []property.Verifier) time.Time {
	var min time.Time
	for _, v := range verifiers {
		if ttl, ok := v.(property.TTLVerifier); ok {
			if min.IsZero() || ttl.Expiry.Before(min) {
				min = ttl.Expiry
			}
		}
	}
	return min
}

// Read returns the document content as seen by user, serving from the
// cache when possible. On a hit every verifier attached to the entry
// runs; any failure discards the entry and re-executes the read path.
//
// Accesses are keyed by the reference they resolve to: a user reading
// through a group-owned reference shares the group's cache entry,
// since every member sees the identical property chain.
func (c *Cache) Read(doc, user string) ([]byte, error) {
	data, _, err := c.ReadWithInfo(doc, user)
	return data, err
}

// ReadWithInfo is Read plus the entry metadata a layered cache needs.
func (c *Cache) ReadWithInfo(doc, user string) ([]byte, EntryInfo, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, EntryInfo{}, ErrClosed
	}
	c.mu.Unlock()
	owner, err := c.space.ResolveOwner(doc, user)
	if err != nil {
		return nil, EntryInfo{}, err
	}
	user = owner

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, EntryInfo{}, ErrClosed
	}
	k := key(doc, user)
	e := c.entries[k]
	var data []byte
	if e != nil {
		if b := c.blobs[e.signature]; b != nil {
			data = b.data
		}
	}
	verifyDisabled := c.opts.DisableVerifiers
	c.mu.Unlock()

	if e != nil && data != nil {
		c.clk.Sleep(c.opts.HitCost)
		valid := true
		if !verifyDisabled {
			now := c.clk.Now()
			for _, v := range e.verifiers {
				ok, err := v.Check(now)
				if err != nil || !ok {
					valid = false
					break
				}
			}
		}
		if valid {
			c.mu.Lock()
			// The entry may have been invalidated while verifying.
			if cur := c.entries[k]; cur == e {
				c.stats.Hits++
				c.policy.Access(k)
				c.mu.Unlock()
				if e.cacheability == property.CacheWithEvents {
					c.forward(doc, user, event.GetInputStream)
				}
				out := make([]byte, len(data))
				copy(out, data)
				return out, EntryInfo{Cacheability: e.cacheability, Cost: e.cost, Expiry: minExpiry(e.verifiers)}, nil
			}
			c.mu.Unlock()
		} else {
			c.mu.Lock()
			c.stats.VerifierRejects++
			c.dropLocked(k)
			c.mu.Unlock()
		}
	}

	return c.miss(doc, user, true)
}

// forward redelivers an operation event for a CacheWithEvents entry.
func (c *Cache) forward(doc, user string, kind event.Kind) {
	if err := c.space.ForwardEvent(doc, user, kind); err == nil {
		c.mu.Lock()
		c.stats.EventsForwarded++
		c.mu.Unlock()
	}
}

// miss executes the full read path and caches the result according to
// its cacheability indicator. When mayPrefetch is set, documents the
// read path declared related (collection members) are loaded
// afterwards; prefetch-triggered misses pass false so fetching never
// cascades beyond one hop.
func (c *Cache) miss(doc, user string, mayPrefetch bool) ([]byte, EntryInfo, error) {
	// Snapshot the document's invalidation generation: if a
	// notification arrives while the read path is executing, the
	// result may already be stale and must not be cached (the
	// callback race between load and install).
	c.mu.Lock()
	gen := c.gens[doc]
	c.mu.Unlock()

	data, res, err := c.space.ReadDocument(doc, user)
	if err != nil {
		return nil, EntryInfo{}, err
	}
	info := EntryInfo{Cacheability: res.Cacheability, Cost: res.Cost, Expiry: minExpiry(res.Verifiers)}
	c.mu.Lock()
	c.stats.Misses++
	if c.closed {
		c.mu.Unlock()
		return data, info, nil
	}
	if res.Cacheability == property.Uncacheable {
		c.stats.Uncacheable++
		c.mu.Unlock()
		return data, info, nil
	}
	if c.gens[doc] != gen {
		// Invalidated mid-read: serve the data but do not install a
		// potentially stale entry.
		c.mu.Unlock()
		return data, info, nil
	}

	c.clk.Sleep(c.opts.FillCost)
	k := key(doc, user)
	c.dropLocked(k) // replace any stale entry
	s := sig.Of(data)
	b := c.blobs[s]
	if b == nil {
		b = &blob{data: append([]byte{}, data...)}
		c.blobs[s] = b
		c.stats.BytesStored += int64(len(data))
	}
	b.refs++
	e := &entry{
		doc: doc, user: user,
		signature:    s,
		size:         int64(len(data)),
		cost:         res.Cost,
		cacheability: res.Cacheability,
		verifiers:    res.Verifiers,
		storedAt:     c.clk.Now(),
	}
	c.entries[k] = e
	c.stats.BytesLogical += e.size
	policyCost := e.cost
	if c.opts.CostSource == CostConstant {
		policyCost = time.Millisecond
	}
	c.policy.Insert(k, e.size, policyCost)
	c.installNotifiersLocked(doc, user)
	c.evictLocked()
	c.recountSharedLocked()
	c.mu.Unlock()

	if mayPrefetch && !c.opts.DisablePrefetch {
		c.prefetch(user, res.Related)
	}
	return data, info, nil
}

// prefetch warms the cache with the user's views of related documents.
// Already-cached members and failures are skipped silently; prefetch
// misses never recurse.
func (c *Cache) prefetch(user string, related []string) {
	for _, doc := range related {
		c.mu.Lock()
		_, cached := c.entries[key(doc, user)]
		closed := c.closed
		c.mu.Unlock()
		if cached || closed {
			continue
		}
		if _, _, err := c.miss(doc, user, false); err != nil {
			continue
		}
		c.mu.Lock()
		c.stats.Prefetches++
		c.mu.Unlock()
	}
}

// dropLocked removes an entry and releases its blob reference.
func (c *Cache) dropLocked(k string) {
	e, ok := c.entries[k]
	if !ok {
		return
	}
	delete(c.entries, k)
	c.policy.Remove(k)
	c.stats.BytesLogical -= e.size
	if b := c.blobs[e.signature]; b != nil {
		b.refs--
		if b.refs <= 0 {
			delete(c.blobs, e.signature)
			c.stats.BytesStored -= int64(len(b.data))
		}
	}
	c.recountSharedLocked()
}

// evictLocked enforces the capacity budget using the replacement
// policy. Capacity is measured in unique stored bytes, so evicting an
// entry whose blob is shared may free nothing; the loop continues
// until under budget or empty.
func (c *Cache) evictLocked() {
	if c.opts.Capacity <= 0 {
		return
	}
	for c.stats.BytesStored > c.opts.Capacity {
		victim, ok := c.policy.Victim()
		if !ok {
			return
		}
		c.stats.Evictions++
		c.dropLocked(victim)
	}
}

// recountSharedLocked recomputes the shared-entry gauge.
func (c *Cache) recountSharedLocked() {
	var shared int64
	for _, e := range c.entries {
		if b := c.blobs[e.signature]; b != nil && b.refs > 1 {
			shared++
		}
	}
	c.stats.SharedEntries = shared
}
