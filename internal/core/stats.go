package core

import "placeless/internal/metrics"

// statsCounters is the cache's live bookkeeping: every field is a
// lock-free atomic counter (metrics.Counter), so the hot hit path
// records activity without serializing behind any cache lock and
// Stats() never blocks readers. Byte and shared-entry gauges are
// maintained incrementally by the blob store under blobMu; they use
// the same atomic representation so snapshots need no lock either.
type statsCounters struct {
	hits            metrics.Counter
	misses          metrics.Counter
	coalesced       metrics.Counter
	verifierRejects metrics.Counter
	notifications   metrics.Counter
	invalidations   metrics.Counter
	evictions       metrics.Counter
	uncacheable     metrics.Counter
	eventsForwarded metrics.Counter
	prefetches      metrics.Counter
	bytesStored     metrics.Counter
	bytesLogical    metrics.Counter
	sharedEntries   metrics.Counter
	flushes         metrics.Counter

	// Intermediate-memoization gauges (Options.Memoize).
	intermediateHits     metrics.Counter
	universalStageRuns   metrics.Counter
	bytesRecomputedSaved metrics.Counter
	intermediateEntries  metrics.Counter
	intermediateBytes    metrics.Counter

	// Prefix-pipeline counters (the N-cut generalization).
	prefixHits           metrics.Counter
	prefixSegmentRuns    metrics.Counter
	prefixInstalls       metrics.Counter
	prefixInstallSkips   metrics.Counter
	prefixSavedBytes     metrics.Counter
	prefixFallbackErrors metrics.Counter

	// Durable disk-tier counters (Options.Store).
	storeDemotions        metrics.Counter
	storeInterDemotions   metrics.Counter
	storePromotions       metrics.Counter
	storeInterPromotions  metrics.Counter
	storePromotionRejects metrics.Counter
	storeErrors           metrics.Counter
}

// snapshot assembles the exported Stats view. Counters are read one at
// a time, so a snapshot taken during concurrent activity is internally
// consistent per counter but not across counters — same contract as
// any monitoring scrape.
func (s *statsCounters) snapshot() Stats {
	return Stats{
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		CoalescedMisses: s.coalesced.Load(),
		VerifierRejects: s.verifierRejects.Load(),
		Notifications:   s.notifications.Load(),
		Invalidations:   s.invalidations.Load(),
		Evictions:       s.evictions.Load(),
		Uncacheable:     s.uncacheable.Load(),
		EventsForwarded: s.eventsForwarded.Load(),
		Prefetches:      s.prefetches.Load(),
		BytesStored:     s.bytesStored.Load(),
		BytesLogical:    s.bytesLogical.Load(),
		SharedEntries:   s.sharedEntries.Load(),
		Flushes:         s.flushes.Load(),

		IntermediateHits:     s.intermediateHits.Load(),
		UniversalStageRuns:   s.universalStageRuns.Load(),
		BytesRecomputedSaved: s.bytesRecomputedSaved.Load(),
		IntermediateEntries:  s.intermediateEntries.Load(),
		IntermediateBytes:    s.intermediateBytes.Load(),

		PrefixHits:           s.prefixHits.Load(),
		PrefixSegmentRuns:    s.prefixSegmentRuns.Load(),
		PrefixInstalls:       s.prefixInstalls.Load(),
		PrefixInstallSkips:   s.prefixInstallSkips.Load(),
		PrefixSavedBytes:     s.prefixSavedBytes.Load(),
		PrefixFallbackErrors: s.prefixFallbackErrors.Load(),

		StoreDemotions:              s.storeDemotions.Load(),
		StoreIntermediateDemotions:  s.storeInterDemotions.Load(),
		StorePromotions:             s.storePromotions.Load(),
		StoreIntermediatePromotions: s.storeInterPromotions.Load(),
		StorePromotionRejects:       s.storePromotionRejects.Load(),
		StoreErrors:                 s.storeErrors.Load(),
	}
}
