package core

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/replace"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

// world bundles a clock, repositories, a space and a cache for tests.
type world struct {
	clk   *clock.Virtual
	src   *repo.Mem
	web   *repo.Web
	feed  *repo.LiveFeed
	space *docspace.Space
	cache *Cache
}

func newWorld(t *testing.T, opts Options) *world {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	w := &world{
		clk:   clk,
		src:   repo.NewMem("nfs", clk, simnet.Local(1)),
		web:   repo.NewWeb("web", clk, simnet.WAN(2), 30*time.Second, true),
		feed:  repo.NewLiveFeed("cam", clk, simnet.LAN(3), 512),
		space: docspace.New(clk, repo.NewDMS("dms", clk, simnet.Local(4))),
	}
	w.cache = New(w.space, opts)
	return w
}

func (w *world) addDoc(t *testing.T, id, owner, path string, content []byte) {
	t.Helper()
	w.src.Store(path, content)
	if _, err := w.space.CreateDocument(id, owner, &property.RepoBitProvider{Repo: w.src, Path: path}); err != nil {
		t.Fatal(err)
	}
}

func (w *world) read(t *testing.T, doc, user string) []byte {
	t.Helper()
	data, err := w.cache.Read(doc, user)
	if err != nil {
		t.Fatalf("Read(%s,%s): %v", doc, user, err)
	}
	return data
}

func TestMissThenHit(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("content"))
	a := w.read(t, "d", "eyal")
	b := w.read(t, "d", "eyal")
	if !bytes.Equal(a, b) || string(a) != "content" {
		t.Fatalf("reads differ: %q vs %q", a, b)
	}
	st := w.cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !w.cache.Contains("d", "eyal") {
		t.Fatal("entry missing after hit")
	}
}

func TestHitIsFasterThanMiss(t *testing.T) {
	// The shape of Table 1: hit latency must be far below miss
	// latency for a remote document.
	w := newWorld(t, Options{HitCost: 500 * time.Microsecond})
	w.web.SetPage("/index.html", make([]byte, 10883))
	w.space.CreateDocument("gatech", "eyal", &property.RepoBitProvider{Repo: w.web, Path: "/index.html"})

	start := w.clk.Now()
	w.read(t, "gatech", "eyal")
	missTime := w.clk.Now().Sub(start)

	start = w.clk.Now()
	w.read(t, "gatech", "eyal")
	hitTime := w.clk.Now().Sub(start)

	if hitTime*10 > missTime {
		t.Fatalf("hit %v vs miss %v: expected order-of-magnitude win", hitTime, missTime)
	}
}

func TestReadUnknownDocument(t *testing.T) {
	w := newWorld(t, Options{})
	if _, err := w.cache.Read("ghost", "u"); !errors.Is(err, docspace.ErrNoDocument) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadReturnsPrivateCopy(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("abc"))
	w.read(t, "d", "eyal")
	hit := w.read(t, "d", "eyal")
	hit[0] = 'Z'
	again := w.read(t, "d", "eyal")
	if string(again) != "abc" {
		t.Fatal("cache exposed its internal buffer")
	}
}

func TestVerifierCatchesOutOfBandUpdate(t *testing.T) {
	// Invalidation cause 1, uncontrolled case: the file changes on
	// the file system behind Placeless's back; the bit-provider's
	// mtime verifier must catch it on the next hit.
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1"))
	w.read(t, "d", "eyal")
	w.clk.Advance(time.Minute)
	w.src.UpdateDirect("/d", []byte("v2"))
	got := w.read(t, "d", "eyal")
	if string(got) != "v2" {
		t.Fatalf("stale read %q after out-of-band update", got)
	}
	st := w.cache.Stats()
	if st.VerifierRejects != 1 {
		t.Fatalf("VerifierRejects = %d", st.VerifierRejects)
	}
	if st.Misses != 2 {
		t.Fatalf("Misses = %d", st.Misses)
	}
}

func TestTTLVerifierExpiresWebContent(t *testing.T) {
	w := newWorld(t, Options{})
	w.web.SetPage("/p", []byte("page v1"))
	w.space.CreateDocument("p", "u", &property.RepoBitProvider{Repo: w.web, Path: "/p"})
	w.read(t, "p", "u")
	// Within TTL: hit even though origin changed (the web consistency
	// model tolerates this staleness).
	w.web.SetPage("/p", []byte("page v2"))
	if got := w.read(t, "p", "u"); string(got) != "page v1" {
		t.Fatalf("within TTL got %q, want cached v1", got)
	}
	// After TTL: refetch.
	w.clk.Advance(time.Minute)
	if got := w.read(t, "p", "u"); string(got) != "page v2" {
		t.Fatalf("after TTL got %q", got)
	}
}

func TestNotifierInvalidatesOnPlacelessWrite(t *testing.T) {
	// Invalidation cause 1, controlled case: "if Doug were to update
	// the document, one of the notifiers at the base document would
	// invalidate Eyal's cached version."
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1"))
	w.space.AddReference("d", "doug")
	w.read(t, "d", "eyal")
	if err := w.cache.Write("d", "doug", []byte("doug's edit")); err != nil {
		t.Fatal(err)
	}
	if w.cache.Contains("d", "eyal") {
		t.Fatal("Eyal's entry survived Doug's write")
	}
	if got := w.read(t, "d", "eyal"); string(got) != "doug's edit" {
		t.Fatalf("got %q", got)
	}
	st := w.cache.Stats()
	if st.Notifications == 0 || st.Invalidations == 0 {
		t.Fatalf("stats = %+v, want notifier activity", st)
	}
}

func TestNotifierInvalidatesOnActivePropertyChange(t *testing.T) {
	// Invalidation cause 2: adding a universal translation property
	// invalidates every cached version of the document.
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("the paper"))
	w.read(t, "d", "eyal")
	if err := w.space.Attach("d", "", docspace.Universal, property.NewTranslator(0)); err != nil {
		t.Fatal(err)
	}
	if w.cache.Contains("d", "eyal") {
		t.Fatal("entry survived property addition")
	}
	if got := w.read(t, "d", "eyal"); string(got) != "le papier" {
		t.Fatalf("got %q", got)
	}
}

func TestNotifierInvalidatesOnPropertyUpgrade(t *testing.T) {
	// "If Eyal were to upgrade his spelling corrector to a new
	// release, this would trigger an invalidation of the cached
	// content."
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("teh paper"))
	w.space.Attach("d", "eyal", docspace.Personal, property.NewSpellCorrector(0))
	w.read(t, "d", "eyal")
	v2 := property.NewSpellCorrector(0)
	v2.Version = 2
	if err := w.space.Replace("d", "eyal", docspace.Personal, "spell-correct", v2); err != nil {
		t.Fatal(err)
	}
	if w.cache.Contains("d", "eyal") {
		t.Fatal("entry survived property upgrade")
	}
}

func TestNotifierInvalidatesOnReorder(t *testing.T) {
	// Invalidation cause 3: changing the execution order of the
	// properties changes the content.
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("one\ntwo\nthree\n"))
	w.space.Attach("d", "eyal", docspace.Personal, property.NewSummarizer(1, 0))
	w.space.Attach("d", "eyal", docspace.Personal, property.NewLineNumberer(0))
	before := w.read(t, "d", "eyal")
	if err := w.space.Reorder("d", "eyal", docspace.Personal, []string{"line-number", "summarize-1"}); err != nil {
		t.Fatal(err)
	}
	after := w.read(t, "d", "eyal")
	if bytes.Equal(before, after) {
		t.Fatal("reorder did not change served content")
	}
	if st := w.cache.Stats(); st.Misses != 2 {
		t.Fatalf("Misses = %d, want re-execution after reorder", st.Misses)
	}
}

func TestStaticPropertyDoesNotInvalidate(t *testing.T) {
	// Static labels cannot change content: attaching one (e.g. Paul's
	// "1999 workshop submission") must not blow the cache.
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("x"))
	w.read(t, "d", "eyal")
	w.space.AttachStatic("d", "", docspace.Universal, property.Static{Key: "1999 workshop submission"})
	if !w.cache.Contains("d", "eyal") {
		t.Fatal("static label invalidated the cache")
	}
	w.read(t, "d", "eyal")
	if st := w.cache.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSecondCacheMachineryDoesNotInvalidate(t *testing.T) {
	// Two caches share the space; the second cache installing its
	// notifiers must not invalidate the first cache's entries.
	w := newWorld(t, Options{Name: "c1"})
	w.addDoc(t, "d", "eyal", "/d", []byte("x"))
	w.read(t, "d", "eyal")
	c2 := New(w.space, Options{Name: "c2"})
	if _, err := c2.Read("d", "eyal"); err != nil {
		t.Fatal(err)
	}
	if !w.cache.Contains("d", "eyal") {
		t.Fatal("cache 2's notifier installation invalidated cache 1")
	}
}

func TestPersonalChangeInvalidatesOnlyThatUser(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("shared"))
	w.space.AddReference("d", "paul")
	w.read(t, "d", "eyal")
	w.read(t, "d", "paul")
	w.space.Attach("d", "paul", docspace.Personal, property.NewUppercaser(0))
	if w.cache.Contains("d", "paul") {
		t.Fatal("paul's entry survived his property change")
	}
	if !w.cache.Contains("d", "eyal") {
		t.Fatal("eyal's entry was collateral damage of paul's personal change")
	}
}

func TestUncacheableLiveFeed(t *testing.T) {
	w := newWorld(t, Options{})
	w.space.CreateDocument("cam", "u", &property.RepoBitProvider{
		Repo: w.feed, Path: "/cam1", Vote: property.Uncacheable, DisableVerifier: true,
	})
	a := w.read(t, "cam", "u")
	b := w.read(t, "cam", "u")
	if bytes.Equal(a, b) {
		t.Fatal("live feed frames identical — was it cached?")
	}
	st := w.cache.Stats()
	if st.Misses != 2 || st.Uncacheable != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if w.cache.Len() != 0 {
		t.Fatal("uncacheable content was stored")
	}
}

func TestCacheWithEventsForwardsOperations(t *testing.T) {
	// An audit-trail property forces CacheWithEvents: hits are served
	// from the cache but getInputStream events keep flowing so the
	// trail stays complete.
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("audited"))
	trail := property.NewAuditTrail()
	w.space.Attach("d", "", docspace.Universal, trail)
	w.read(t, "d", "eyal") // miss
	w.read(t, "d", "eyal") // hit + forwarded event
	w.read(t, "d", "eyal") // hit + forwarded event
	recs := trail.Records()
	if len(recs) != 3 {
		t.Fatalf("audit records = %d, want 3", len(recs))
	}
	forwarded := 0
	for _, r := range recs {
		if r.Forwarded {
			forwarded++
		}
	}
	if forwarded != 2 {
		t.Fatalf("forwarded = %d, want 2", forwarded)
	}
	st := w.cache.Stats()
	if st.EventsForwarded != 2 || st.Hits != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSignatureSharingAcrossUsers(t *testing.T) {
	// "content entries could be shared if the cache maps a pair of
	// document and user identifiers to a content signature and in
	// turn these signatures map to the actual content."
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("identical for everyone"))
	w.space.AddReference("d", "paul")
	w.read(t, "d", "eyal")
	w.read(t, "d", "paul")
	st := w.cache.Stats()
	if w.cache.Len() != 2 {
		t.Fatalf("entries = %d", w.cache.Len())
	}
	if st.BytesStored != int64(len("identical for everyone")) {
		t.Fatalf("BytesStored = %d, want single blob", st.BytesStored)
	}
	if st.BytesLogical != 2*st.BytesStored {
		t.Fatalf("BytesLogical = %d", st.BytesLogical)
	}
	if st.SharedEntries != 2 {
		t.Fatalf("SharedEntries = %d", st.SharedEntries)
	}
}

func TestNoSharingWhenPersonalized(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("base"))
	w.space.AddReference("d", "paul")
	w.space.Attach("d", "paul", docspace.Personal, property.NewUppercaser(0))
	w.read(t, "d", "eyal")
	w.read(t, "d", "paul")
	st := w.cache.Stats()
	if st.SharedEntries != 0 {
		t.Fatalf("SharedEntries = %d, want 0 for personalized content", st.SharedEntries)
	}
	if st.BytesStored != st.BytesLogical {
		t.Fatalf("stored %d vs logical %d should match without sharing", st.BytesStored, st.BytesLogical)
	}
}

func TestSharedBlobSurvivesOneUserInvalidation(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("shared bits"))
	w.space.AddReference("d", "paul")
	w.read(t, "d", "eyal")
	w.read(t, "d", "paul")
	w.cache.Invalidate("d", "paul")
	if !w.cache.Contains("d", "eyal") {
		t.Fatal("eyal's entry dropped")
	}
	if got := w.read(t, "d", "eyal"); string(got) != "shared bits" {
		t.Fatalf("got %q", got)
	}
	st := w.cache.Stats()
	if st.BytesStored != int64(len("shared bits")) {
		t.Fatalf("BytesStored = %d after partial invalidation", st.BytesStored)
	}
}

func TestCapacityEviction(t *testing.T) {
	w := newWorld(t, Options{Capacity: 2500, Policy: replace.NewLRU()})
	for i, id := range []string{"a", "b", "c"} {
		path := "/" + id
		w.src.Store(path, bytes.Repeat([]byte{byte('a' + i)}, 1000))
		w.space.CreateDocument(id, "u", &property.RepoBitProvider{Repo: w.src, Path: path})
		w.read(t, id, "u")
	}
	st := w.cache.Stats()
	if st.BytesStored > 2500 {
		t.Fatalf("BytesStored = %d exceeds capacity", st.BytesStored)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if w.cache.Contains("a", "u") {
		t.Fatal("LRU kept the oldest entry")
	}
	if !w.cache.Contains("c", "u") {
		t.Fatal("LRU evicted the newest entry")
	}
}

func TestGDSEvictionKeepsExpensiveEntry(t *testing.T) {
	// The paper's motivation for cost-aware replacement: "A cache may
	// wish to tailor its replacement policy to favor documents with
	// numerous or complicated active properties."
	w := newWorld(t, Options{Capacity: 2100})
	// Expensive: remote (WAN) document with a costly property chain.
	w.web.SetPage("/slow", bytes.Repeat([]byte("w"), 1000))
	w.space.CreateDocument("slow", "u", &property.RepoBitProvider{Repo: w.web, Path: "/slow"})
	w.space.Attach("slow", "u", docspace.Personal, property.NewTranslator(100*time.Millisecond))
	// Cheap: local documents.
	w.src.Store("/fast1", bytes.Repeat([]byte("f"), 1000))
	w.src.Store("/fast2", bytes.Repeat([]byte("g"), 1000))
	w.space.CreateDocument("fast1", "u", &property.RepoBitProvider{Repo: w.src, Path: "/fast1"})
	w.space.CreateDocument("fast2", "u", &property.RepoBitProvider{Repo: w.src, Path: "/fast2"})

	w.read(t, "slow", "u")
	w.read(t, "fast1", "u")
	w.read(t, "fast2", "u") // must evict a cheap entry, not the slow one
	if !w.cache.Contains("slow", "u") {
		t.Fatal("GDS evicted the expensive-to-rebuild document")
	}
}

func TestWriteThroughInvalidatesAndStores(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1"))
	w.read(t, "d", "eyal")
	if err := w.cache.Write("d", "eyal", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	fr, _ := w.src.Fetch("/d")
	if string(fr.Data) != "v2" {
		t.Fatalf("repo has %q", fr.Data)
	}
	if got := w.read(t, "d", "eyal"); string(got) != "v2" {
		t.Fatalf("read-back %q", got)
	}
}

func TestWriteBackBuffersUntilFlush(t *testing.T) {
	w := newWorld(t, Options{Mode: WriteBack})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1"))
	if err := w.cache.Write("d", "eyal", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	fr, _ := w.src.Fetch("/d")
	if string(fr.Data) != "v1" {
		t.Fatalf("write-back leaked early: repo has %q", fr.Data)
	}
	if w.cache.Dirty() != 1 {
		t.Fatalf("Dirty = %d", w.cache.Dirty())
	}
	if err := w.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	fr, _ = w.src.Fetch("/d")
	if string(fr.Data) != "v2" {
		t.Fatalf("after flush repo has %q", fr.Data)
	}
	if w.cache.Dirty() != 0 {
		t.Fatalf("Dirty = %d after flush", w.cache.Dirty())
	}
	if st := w.cache.Stats(); st.Flushes != 1 {
		t.Fatalf("Flushes = %d", st.Flushes)
	}
}

func TestWriteBackForwardsOutputEvents(t *testing.T) {
	w := newWorld(t, Options{Mode: WriteBack})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1")) // trail sees writes
	trail := property.NewAuditTrail()
	w.space.Attach("d", "", docspace.Universal, trail)
	w.cache.Write("d", "eyal", []byte("v2"))
	recs := trail.Records()
	if len(recs) != 1 || recs[0].Kind != event.GetOutputStream || !recs[0].Forwarded {
		t.Fatalf("records = %+v, want one forwarded write event", recs)
	}
}

func TestWriteBackNoForwardWithoutRegistration(t *testing.T) {
	// Paper §3: "for most properties it is likely to be sufficient if
	// they execute on the write-back operation and hence do not need
	// write operations to be forwarded at all times". With no
	// write-path property registering interest, buffered writes must
	// not forward getOutputStream events.
	w := newWorld(t, Options{Mode: WriteBack})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1"))
	if err := w.cache.Write("d", "eyal", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if st := w.cache.Stats(); st.EventsForwarded != 0 {
		t.Fatalf("EventsForwarded = %d, want 0 without registration", st.EventsForwarded)
	}
	// Attach an audit trail: its write-path vote demands forwarding,
	// and the property change must drop the cached vote.
	trail := property.NewAuditTrail()
	w.space.Attach("d", "", docspace.Universal, trail)
	if err := w.cache.Write("d", "eyal", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if st := w.cache.Stats(); st.EventsForwarded != 1 {
		t.Fatalf("EventsForwarded = %d, want 1 after audit trail attach", st.EventsForwarded)
	}
}

func TestCloseDetachesNotifiersAndRejectsUse(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("x"))
	w.read(t, "d", "eyal")
	before, _ := w.space.Actives("d", "", docspace.Universal)
	if len(before) == 0 {
		t.Fatal("expected installed notifier before Close")
	}
	if err := w.cache.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := w.space.Actives("d", "", docspace.Universal)
	if len(after) != 0 {
		t.Fatalf("notifiers left attached: %v", after)
	}
	if _, err := w.cache.Read("d", "eyal"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read after Close: %v", err)
	}
	if err := w.cache.Write("d", "eyal", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close: %v", err)
	}
	if err := w.cache.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestDisableNotifiersFallsBackToVerifiers(t *testing.T) {
	w := newWorld(t, Options{DisableNotifiers: true})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1"))
	w.read(t, "d", "eyal")
	// A Placeless write is not pushed... but the mtime verifier still
	// catches the change on the next read.
	w.clk.Advance(time.Second)
	w.space.WriteDocument("d", "eyal", []byte("v2"))
	if got := w.read(t, "d", "eyal"); string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
	st := w.cache.Stats()
	if st.Notifications != 0 {
		t.Fatalf("Notifications = %d with notifiers disabled", st.Notifications)
	}
	if st.VerifierRejects != 1 {
		t.Fatalf("VerifierRejects = %d", st.VerifierRejects)
	}
}

func TestDisableVerifiersServesStaleUntilNotified(t *testing.T) {
	w := newWorld(t, Options{DisableVerifiers: true})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1"))
	w.read(t, "d", "eyal")
	w.clk.Advance(time.Second)
	w.src.UpdateDirect("/d", []byte("v2")) // outside Placeless control
	if got := w.read(t, "d", "eyal"); string(got) != "v1" {
		t.Fatalf("got %q, expected stale hit with verifiers off", got)
	}
	// But notifier-covered changes still invalidate.
	w.space.WriteDocument("d", "eyal", []byte("v3"))
	if got := w.read(t, "d", "eyal"); string(got) != "v3" {
		t.Fatalf("got %q", got)
	}
}

func TestWriteBackPeriodicFlush(t *testing.T) {
	w := newWorld(t, Options{Mode: WriteBack, FlushEvery: time.Hour})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1"))
	w.cache.Write("d", "eyal", []byte("v2"))
	if fr, _ := w.src.Fetch("/d"); string(fr.Data) != "v1" {
		t.Fatalf("leaked before flush period: %q", fr.Data)
	}
	w.clk.Advance(time.Hour)
	fr, _ := w.src.Fetch("/d")
	if string(fr.Data) != "v2" {
		t.Fatalf("periodic flush missed: %q", fr.Data)
	}
	// The timer re-arms: a later write flushes on the next period.
	w.cache.Write("d", "eyal", []byte("v3"))
	w.clk.Advance(time.Hour)
	fr, _ = w.src.Fetch("/d")
	if string(fr.Data) != "v3" {
		t.Fatalf("second periodic flush missed: %q", fr.Data)
	}
	if w.cache.Dirty() != 0 {
		t.Fatalf("Dirty = %d", w.cache.Dirty())
	}
}

func TestWriteBackMaxDirtyFlushes(t *testing.T) {
	w := newWorld(t, Options{Mode: WriteBack, MaxDirty: 2})
	for _, id := range []string{"a", "b", "c"} {
		w.addDoc(t, id, "u", "/"+id, []byte("v1"))
	}
	w.cache.Write("a", "u", []byte("va"))
	w.cache.Write("b", "u", []byte("vb"))
	if w.cache.Dirty() != 2 {
		t.Fatalf("Dirty = %d before threshold", w.cache.Dirty())
	}
	// The third buffered write exceeds MaxDirty and flushes all.
	if err := w.cache.Write("c", "u", []byte("vc")); err != nil {
		t.Fatal(err)
	}
	if w.cache.Dirty() != 0 {
		t.Fatalf("Dirty = %d after overflow flush", w.cache.Dirty())
	}
	for _, id := range []string{"a", "b", "c"} {
		fr, _ := w.src.Fetch("/" + id)
		if string(fr.Data) != "v"+id {
			t.Fatalf("%s = %q", id, fr.Data)
		}
	}
}

func TestResize(t *testing.T) {
	w := newWorld(t, Options{})
	for i, id := range []string{"a", "b", "c"} {
		w.src.Store("/"+id, bytes.Repeat([]byte{byte('a' + i)}, 1000))
		w.space.CreateDocument(id, "u", &property.RepoBitProvider{Repo: w.src, Path: "/" + id})
		w.read(t, id, "u")
	}
	if w.cache.Len() != 3 {
		t.Fatalf("Len = %d", w.cache.Len())
	}
	w.cache.Resize(1500) // room for one entry
	if st := w.cache.Stats(); st.BytesStored > 1500 {
		t.Fatalf("BytesStored = %d after shrink", st.BytesStored)
	}
	if got := w.cache.Capacity(); got != 1500 {
		t.Fatalf("Capacity = %d", got)
	}
	w.cache.Resize(0) // unlimited again
	for _, id := range []string{"a", "b", "c"} {
		w.read(t, id, "u")
	}
	if w.cache.Len() != 3 {
		t.Fatalf("Len after regrow = %d", w.cache.Len())
	}
}

func TestStatsHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRatio() != 0.75 {
		t.Fatalf("HitRatio = %v", s.HitRatio())
	}
}

func TestWriteModeString(t *testing.T) {
	if WriteThrough.String() != "write-through" || WriteBack.String() != "write-back" {
		t.Fatal("WriteMode.String broken")
	}
}

func TestPolicyName(t *testing.T) {
	w := newWorld(t, Options{})
	if w.cache.Policy() != "gds" {
		t.Fatalf("default policy = %q, want gds (the paper's choice)", w.cache.Policy())
	}
}

func TestConcurrentReaders(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("concurrent"))
	users := []string{"u1", "u2", "u3", "u4"}
	for _, u := range users {
		w.space.AddReference("d", u)
	}
	var wg sync.WaitGroup
	for _, u := range users {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				data, err := w.cache.Read("d", u)
				if err != nil || string(data) != "concurrent" {
					t.Errorf("read = %q, %v", data, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := w.cache.Stats()
	if st.Hits+st.Misses != 100 {
		t.Fatalf("accesses = %d", st.Hits+st.Misses)
	}
}

func TestGroupMembersShareCacheEntry(t *testing.T) {
	// Members reading through a group-owned reference share one cache
	// entry (same resolved reference, same chain, same content).
	w := newWorld(t, Options{})
	w.addDoc(t, "spec", "author", "/spec", []byte("teh spec"))
	w.space.DefineGroup("reviewers", "alice", "bob")
	if _, err := w.space.AddReference("spec", "reviewers"); err != nil {
		t.Fatal(err)
	}
	w.space.Attach("spec", "reviewers", docspace.Personal, property.NewSpellCorrector(0))

	a := w.read(t, "spec", "alice") // miss, keyed by the group
	b := w.read(t, "spec", "bob")   // hit on the same entry
	if string(a) != "the spec" || !bytes.Equal(a, b) {
		t.Fatalf("views: %q vs %q", a, b)
	}
	st := w.cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want shared entry", st)
	}
	if w.cache.Len() != 1 {
		t.Fatalf("entries = %d, want 1 group entry", w.cache.Len())
	}
	// A group-level property change invalidates the shared entry for
	// everyone.
	w.space.Attach("spec", "reviewers", docspace.Personal, property.NewUppercaser(0))
	if got := w.read(t, "spec", "alice"); string(got) != "THE SPEC" {
		t.Fatalf("after group property change: %q", got)
	}
}

func TestNotifierNamesIncludeCacheName(t *testing.T) {
	w := newWorld(t, Options{Name: "appcache"})
	w.addDoc(t, "d", "eyal", "/d", []byte("x"))
	w.read(t, "d", "eyal")
	names, _ := w.space.Actives("d", "", docspace.Universal)
	found := false
	for _, n := range names {
		if strings.Contains(n, "appcache") {
			found = true
		}
	}
	if !found {
		t.Fatalf("base notifier missing cache name: %v", names)
	}
}
