package core

import (
	"placeless/internal/event"
	"placeless/internal/obs"
)

// This file is the cache's side of the observability layer: metric
// registration under stable placeless_cache_* names, and miss-cause
// attribution mapping notifier events onto the paper's four
// invalidation causes.

// registerMetrics publishes the cache's counters on o's registry. The
// hot paths keep incrementing the same lock-free atomics they always
// did (statsCounters); the registry holds closures that read them at
// scrape time, so exposing metrics costs the read path nothing. The
// names are stable across PRs — scrapers and the CI golden list depend
// on them. One Observer serves one cache: registering a second cache
// on the same registry panics on the duplicate names.
func (c *Cache) registerMetrics(o *obs.Observer) {
	reg := o.Registry()
	reg.Counter("placeless_cache_hits_total",
		"Reads served from the cache with verifiers passing.", c.stats.hits.Load)
	reg.Counter("placeless_cache_misses_total",
		"Reads that executed the full Placeless read path.", c.stats.misses.Load)
	reg.Counter("placeless_cache_coalesced_misses_total",
		"Reads that joined another goroutine's in-flight miss (single-flight).", c.stats.coalesced.Load)
	reg.Counter("placeless_cache_verifier_rejects_total",
		"Hits discarded because a verifier reported the entry invalid.", c.stats.verifierRejects.Load)
	reg.Counter("placeless_cache_notifications_total",
		"Invalidations pushed by notifier properties.", c.stats.notifications.Load)
	reg.Counter("placeless_cache_invalidations_total",
		"Entries dropped by notifications.", c.stats.invalidations.Load)
	reg.Counter("placeless_cache_evictions_total",
		"Entries dropped by the replacement policy.", c.stats.evictions.Load)
	reg.Counter("placeless_cache_uncacheable_total",
		"Reads whose result could not be cached.", c.stats.uncacheable.Load)
	reg.Counter("placeless_cache_events_forwarded_total",
		"Operation events forwarded for cache-with-events entries.", c.stats.eventsForwarded.Load)
	reg.Counter("placeless_cache_prefetches_total",
		"Documents loaded via collection-property prefetch hints.", c.stats.prefetches.Load)
	reg.Counter("placeless_cache_flushes_total",
		"Write-back flush operations.", c.stats.flushes.Load)
	reg.Gauge("placeless_cache_bytes_stored",
		"Current unique content footprint after signature sharing.", c.stats.bytesStored.Load)
	reg.Gauge("placeless_cache_bytes_logical",
		"Current sum of entry sizes before signature sharing.", c.stats.bytesLogical.Load)
	reg.Gauge("placeless_cache_shared_entries",
		"Current entries whose blob is shared with at least one other entry.", c.stats.sharedEntries.Load)
	reg.Gauge("placeless_cache_entries",
		"Current number of (document, user) entries.",
		func() int64 { return int64(c.idx.count()) })
	reg.Counter("placeless_cache_intermediate_hits_total",
		"Misses whose universal stage was served from the intermediate store.", c.stats.intermediateHits.Load)
	reg.Counter("placeless_cache_universal_stage_runs_total",
		"Actual executions of the universal property chain under memoization.", c.stats.universalStageRuns.Load)
	reg.Counter("placeless_cache_bytes_recomputed_saved_total",
		"Intermediate bytes served without recomputation.", c.stats.bytesRecomputedSaved.Load)
	reg.Gauge("placeless_cache_intermediate_entries",
		"Current number of memoized universal-stage outputs.", c.stats.intermediateEntries.Load)
	reg.Gauge("placeless_cache_intermediate_bytes",
		"Current logical footprint of memoized intermediates.", c.stats.intermediateBytes.Load)
	reg.Counter("placeless_prefix_hits_total",
		"Longest-prefix probes that resumed a miss from a cached cut.", c.stats.prefixHits.Load)
	reg.Counter("placeless_prefix_segment_runs_total",
		"Segment executions under the N-cut prefix pipeline.", c.stats.prefixSegmentRuns.Load)
	reg.Counter("placeless_prefix_installs_total",
		"Prefix cuts admitted to the intermediate store.", c.stats.prefixInstalls.Load)
	reg.Counter("placeless_prefix_install_skips_total",
		"Prefix cuts rejected by the recompute-cost-per-byte gate.", c.stats.prefixInstallSkips.Load)
	reg.Counter("placeless_prefix_saved_bytes_total",
		"Intermediate bytes served by the prefix pipeline without recomputation.", c.stats.prefixSavedBytes.Load)
	reg.Counter("placeless_prefix_fallback_errors_total",
		"Staged reads degraded to direct execution by an intermediate-store failure.", c.stats.prefixFallbackErrors.Load)
	if st := c.opts.Store; st != nil {
		reg.Counter("placeless_store_demotions_total",
			"Entry results written behind to the durable disk tier.", c.stats.storeDemotions.Load)
		reg.Counter("placeless_store_intermediate_demotions_total",
			"Universal-stage outputs written to the durable disk tier.", c.stats.storeInterDemotions.Load)
		reg.Counter("placeless_store_promotions_total",
			"Misses served by revalidating and promoting a durable entry.", c.stats.storePromotions.Load)
		reg.Counter("placeless_store_intermediate_promotions_total",
			"Universal-stage executions avoided via durable intermediates.", c.stats.storeInterPromotions.Load)
		reg.Counter("placeless_store_promotion_rejects_total",
			"Durable entries found but refused (key mismatch, stale epoch, bad blob).", c.stats.storePromotionRejects.Load)
		reg.Counter("placeless_store_errors_total",
			"Disk-tier I/O failures on demotion writes and epoch appends.", c.stats.storeErrors.Load)
		reg.Gauge("placeless_store_blobs",
			"Content blobs resident in the disk tier.",
			func() int64 { return int64(st.Stats().Blobs) })
		reg.Gauge("placeless_store_bytes",
			"Payload bytes resident in the disk tier's segments.",
			func() int64 { return st.Stats().BlobBytes })
		reg.Gauge("placeless_store_entries",
			"Durable (document, user) entry records currently servable.",
			func() int64 { return int64(st.Stats().Entries) })
		reg.Gauge("placeless_store_segments",
			"Segment files backing the disk tier.",
			func() int64 { return int64(st.Stats().Segments) })
	}
}

// causeOf maps a notifier event onto the paper's invalidation causes:
// content written through Placeless (cause 1), property set/remove/
// modify (cause 2), property reorder (cause 3), external change
// (cause 4).
func causeOf(e event.Event) string {
	switch e.Kind {
	case event.ContentWritten:
		return obs.CauseContentWrite
	case event.SetProperty, event.RemoveProperty, event.ModifyProperty:
		return obs.CauseProperty
	case event.ReorderProperties:
		return obs.CauseReorder
	case event.ExternalChange:
		return obs.CauseExternal
	default:
		return obs.CauseProperty
	}
}

// recordCause remembers the most recent invalidation cause for doc so
// the next miss can attribute itself. Gated on an attached Observer;
// without one the sync.Map stays empty and costs nothing.
func (c *Cache) recordCause(doc, cause string) {
	if c.opts.Observer == nil {
		return
	}
	c.lastCause.Store(doc, cause)
}

// missCause attributes a miss: the most recent invalidation cause
// recorded for the document, or cold when the entry was never
// invalidated (first access, eviction, or restart).
func (c *Cache) missCause(doc string) string {
	if v, ok := c.lastCause.Load(doc); ok {
		return v.(string)
	}
	return obs.CauseCold
}
