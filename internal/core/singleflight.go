package core

// Single-flight miss coalescing: when K goroutines miss on the same
// (document, user) key concurrently, exactly one — the leader — runs
// the full Placeless read path (property chain execution, verifier
// install, notifier registration); the other K−1 block until the
// leader finishes and then share its result. Without coalescing, a
// hot key's misses would execute K identical property chains and fetch
// the source K times — the duplicate-fetch stampede dynamic-document
// caches must suppress.

// flight is one in-progress read-path execution. The leader populates
// data/info/err and closes done; followers block on done and then read
// the result fields (safe without the shard lock: close(done) is the
// happens-before edge).
type flight struct {
	done chan struct{}
	data []byte
	info EntryInfo
	err  error
}

// joinOrLead looks up an in-flight read for k under the shard lock.
// If one exists it is returned with leader=false and the caller must
// wait on it; otherwise a new flight is registered and returned with
// leader=true, and the caller must complete it via finish.
func (c *Cache) joinOrLead(sh *shard, k string) (f *flight, leader bool) {
	sh.mu.Lock()
	if f := sh.flights[k]; f != nil {
		sh.mu.Unlock()
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.mu.Unlock()
	return f, true
}

// finish publishes the leader's result and releases the followers. The
// flight is deregistered before done is closed, so a follower that
// wakes and misses again starts a fresh flight rather than joining a
// completed one.
func (c *Cache) finish(sh *shard, k string, f *flight, data []byte, info EntryInfo, err error) {
	f.data, f.info, f.err = data, info, err
	sh.mu.Lock()
	delete(sh.flights, k)
	sh.mu.Unlock()
	close(f.done)
}
