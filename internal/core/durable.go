package core

import (
	"sync/atomic"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/sig"
	"placeless/internal/store"
)

// The durable disk tier (internal/store) under the in-memory cache.
//
// The tier is write-behind and content-addressed. At install time a
// miss whose result is expensive enough (Options.DurableMinCost) is
// demoted: its bytes go into an append-only segment file and a meta
// record binds them to the content key the staged read path computed —
// (source signature, universal-chain fingerprint, personal-chain
// fingerprint). On a later miss — typically after a restart — the tier
// is consulted first: the persisted key is recomputed against the live
// document space, and only if every component matches (and the chains
// are still memoizable) are the disk bytes served, because equal
// content keys over memoizable chains imply byte-identical output.
//
// What content addressing cannot see is time the process spent down.
// Two mechanisms close that window:
//
//   - Invalidation epochs. Every notifier-driven invalidation appends
//     the document's new generation to the store's meta log; New seeds
//     the in-memory generation counters from the persisted epochs; and
//     the store itself refuses entries recorded under an older
//     generation. A signature invalidated while the process was down is
//     structurally unservable even though its bytes are still on disk.
//   - Re-probing. The content-key probe at promotion time reads the
//     *current* source bytes and chain fingerprints, so a document
//     rewritten out-of-band during the outage fails the SourceSig
//     match and falls through to recompute.
//
// Promoted entries cannot carry their original verifiers (closures do
// not persist), so each gets a fresh "store-recheck" verifier that
// re-derives the content key on every hit — strictly more conservative
// than the original verifier set for memoizable chains, whose validity
// is exactly "the content key still matches".
//
// Locking: all store I/O and all content-key probes run with no cache
// lock held. Promotion takes the shard lock only for the final
// install, re-checking closed and the generation snapshot under it —
// the same discipline as miss's install.

// appendEpoch persists a document's new invalidation generation so a
// restart refuses entries recorded before it. No-op without a store;
// failures count as store errors (the in-memory bump already happened,
// so correctness of the running process is unaffected).
func (c *Cache) appendEpoch(doc string, gen uint64) {
	st := c.opts.Store
	if st == nil {
		return
	}
	if err := st.AppendEpoch(doc, gen); err != nil {
		c.stats.storeErrors.Inc()
	}
}

// promote attempts to serve a miss from the durable tier. g/gen are
// the caller's generation counter and its pre-read snapshot. Returns
// ok=false (and counts a reject when a candidate existed) if the tier
// has no usable entry, in which case the caller runs the transforms.
func (c *Cache) promote(doc, user string, g *atomic.Uint64, gen uint64) ([]byte, EntryInfo, bool) {
	st := c.opts.Store
	e, ok := st.GetEntry(doc, user)
	if !ok {
		return nil, EntryInfo{}, false
	}
	ck, err := c.space.ContentKey(doc, user)
	if err != nil || !ck.Memoizable ||
		ck.SourceSig != e.SourceSig ||
		ck.UniversalFP != e.UniversalFP ||
		ck.PersonalFP != e.PersonalFP {
		// The document or a chain changed since the entry was demoted
		// (possibly while the process was down), or the chain now embeds
		// external information the key cannot capture.
		c.stats.storePromotionRejects.Inc()
		return nil, EntryInfo{}, false
	}
	data, ok := st.GetBlob(e.Sig)
	if !ok {
		c.stats.storePromotionRejects.Inc()
		return nil, EntryInfo{}, false
	}

	verifier := property.FuncVerifier{
		VerifierName: "store-recheck",
		Fn: func(time.Time) (bool, error) {
			cur, err := c.space.ContentKey(doc, user)
			if err != nil {
				return false, nil
			}
			return cur.Memoizable &&
				cur.SourceSig == e.SourceSig &&
				cur.UniversalFP == e.UniversalFP &&
				cur.PersonalFP == e.PersonalFP, nil
		},
	}

	k := key(doc, user)
	sh := c.idx.shardFor(k)
	sh.mu.Lock()
	if c.closed.Load() || g.Load() != gen {
		// Closed, or invalidated since the caller's snapshot: the probe
		// above may predate the change, so the disk bytes are suspect.
		sh.mu.Unlock()
		c.stats.storePromotionRejects.Inc()
		return nil, EntryInfo{}, false
	}
	c.dropShardLocked(sh, k)
	s := c.storeBlob(data)
	ent := &entry{
		doc: doc, user: user,
		signature:    s,
		size:         int64(len(data)),
		cost:         e.Cost,
		cacheability: property.Unrestricted,
		verifiers:    []property.Verifier{verifier},
		storedAt:     c.clk.Now(),
	}
	sh.entries[k] = ent
	c.stats.bytesLogical.Add(ent.size)
	policyCost := ent.cost
	if c.opts.CostSource == CostConstant {
		policyCost = time.Millisecond
	}
	c.policyMu.Lock()
	c.policy.Insert(k, ent.size, policyCost)
	c.policyMu.Unlock()
	sh.mu.Unlock()

	c.stats.storePromotions.Inc()
	c.stats.misses.Inc()
	c.installNotifiers(doc, user)
	c.evict(k)
	out := make([]byte, len(data))
	copy(out, data)
	return out, EntryInfo{Cacheability: property.Unrestricted, Cost: e.Cost, DiskPromoted: true, Signature: s}, true
}

// demoteEntry writes an installed result behind to the disk tier. g/gen
// are the install's generation counter and snapshot; trace is the
// staged read's trace, whose SourceSig pins which source bytes the
// result was actually computed from.
func (c *Cache) demoteEntry(doc, user string, data []byte, res property.ReadResult, trace docspace.StageTrace, g *atomic.Uint64, gen uint64) {
	st := c.opts.Store
	if st == nil || res.Cacheability != property.Unrestricted ||
		res.Cost < c.opts.DurableMinCost || !trace.Attempted {
		return
	}
	ck, err := c.space.ContentKey(doc, user)
	if err != nil || !ck.Memoizable {
		return
	}
	if ck.SourceSig != trace.SourceSig {
		// The source was rewritten between the read and this probe; the
		// probed key would bind new-source identity to old-source bytes.
		// Skip — a consistent pair requires key and bytes from the same
		// source version.
		return
	}
	if g.Load() != gen {
		return
	}
	if prev, ok := st.GetEntry(doc, user); ok &&
		prev.Sig == sig.Of(data) && prev.Gen == gen &&
		prev.SourceSig == ck.SourceSig &&
		prev.UniversalFP == ck.UniversalFP &&
		prev.PersonalFP == ck.PersonalFP {
		// Identical record already durable; re-appending would only
		// bloat the meta log.
		return
	}
	bsig, err := st.PutBlob(data)
	if err != nil {
		c.stats.storeErrors.Inc()
		return
	}
	if err := st.PutEntry(store.EntryMeta{
		Doc: doc, User: user,
		Sig:         bsig,
		SourceSig:   ck.SourceSig,
		UniversalFP: ck.UniversalFP,
		PersonalFP:  ck.PersonalFP,
		Gen:         gen,
		Cost:        res.Cost,
	}); err != nil {
		c.stats.storeErrors.Inc()
		return
	}
	c.stats.storeDemotions.Inc()
}

// demoteIntermediate writes a computed universal-stage output behind
// to the disk tier. Intermediates are pure content addressing — the
// (src, fp) key can never serve wrong bytes — so no epoch or probe is
// needed; only the cost gate applies.
func (c *Cache) demoteIntermediate(src, fp sig.Signature, data []byte, cost time.Duration) {
	st := c.opts.Store
	if st == nil || cost < c.opts.DurableMinCost {
		return
	}
	if _, ok := st.GetIntermediate(src, fp); ok {
		return
	}
	bsig, err := st.PutBlob(data)
	if err != nil {
		c.stats.storeErrors.Inc()
		return
	}
	if err := st.PutIntermediate(store.IntermediateMeta{
		SourceSig:   src,
		Fingerprint: fp,
		Sig:         bsig,
		Cost:        cost,
	}); err != nil {
		c.stats.storeErrors.Inc()
		return
	}
	c.stats.storeInterDemotions.Inc()
}
