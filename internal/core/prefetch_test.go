package core

import (
	"testing"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/property"
)

// attachCollection wires the same collection property to every member
// document (universal level, as a shared grouping would be).
func attachCollection(t *testing.T, w *world, name string, members ...string) *property.Collection {
	t.Helper()
	col := property.NewCollection(name, members...)
	for _, m := range members {
		if err := w.space.Attach(m, "", docspace.Universal, col); err != nil {
			t.Fatal(err)
		}
	}
	return col
}

func TestCollectionPrefetchWarmsSiblings(t *testing.T) {
	w := newWorld(t, Options{})
	members := []string{"ch1", "ch2", "ch3"}
	for _, m := range members {
		w.addDoc(t, m, "eyal", "/"+m, []byte("chapter "+m))
	}
	attachCollection(t, w, "book", members...)

	w.read(t, "ch1", "eyal")
	// Siblings were prefetched on the first member read.
	if !w.cache.Contains("ch2", "eyal") || !w.cache.Contains("ch3", "eyal") {
		t.Fatal("siblings not prefetched")
	}
	st := w.cache.Stats()
	if st.Prefetches != 2 {
		t.Fatalf("Prefetches = %d, want 2", st.Prefetches)
	}
	// Reading the siblings is now a pure hit.
	before := w.cache.Stats().Hits
	w.read(t, "ch2", "eyal")
	w.read(t, "ch3", "eyal")
	if got := w.cache.Stats().Hits - before; got != 2 {
		t.Fatalf("sibling reads produced %d hits, want 2", got)
	}
}

func TestCollectionPrefetchLatencyWin(t *testing.T) {
	// With the collection, the second member's first read costs hit
	// latency instead of a WAN round trip.
	run := func(disable bool) time.Duration {
		w := newWorld(t, Options{HitCost: 200 * time.Microsecond, DisablePrefetch: disable})
		w.web.SetPage("/a", []byte("far chapter a"))
		w.web.SetPage("/b", []byte("far chapter b"))
		w.space.CreateDocument("a", "u", &property.RepoBitProvider{Repo: w.web, Path: "/a"})
		w.space.CreateDocument("b", "u", &property.RepoBitProvider{Repo: w.web, Path: "/b"})
		col := property.NewCollection("far-book", "a", "b")
		w.space.Attach("a", "", docspace.Universal, col)
		w.space.Attach("b", "", docspace.Universal, col)

		w.read(t, "a", "u")
		start := w.clk.Now()
		w.read(t, "b", "u")
		return w.clk.Now().Sub(start)
	}
	withPrefetch := run(false)
	without := run(true)
	if withPrefetch*10 > without {
		t.Fatalf("prefetch saved too little: %v vs %v", withPrefetch, without)
	}
}

func TestPrefetchDoesNotCascade(t *testing.T) {
	// a's collection names b; b's names c. Reading a must prefetch b
	// but not chase b's hints to c.
	w := newWorld(t, Options{})
	for _, m := range []string{"a", "b", "c"} {
		w.addDoc(t, m, "eyal", "/"+m, []byte(m))
	}
	w.space.Attach("a", "", docspace.Universal, property.NewCollection("g1", "a", "b"))
	w.space.Attach("b", "", docspace.Universal, property.NewCollection("g2", "b", "c"))
	w.read(t, "a", "eyal")
	if !w.cache.Contains("b", "eyal") {
		t.Fatal("b not prefetched")
	}
	if w.cache.Contains("c", "eyal") {
		t.Fatal("prefetch cascaded through b to c")
	}
}

func TestPrefetchSkipsCachedAndMissing(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "a", "eyal", "/a", []byte("a"))
	w.addDoc(t, "b", "eyal", "/b", []byte("b"))
	// The collection names an absent member; prefetch must skip it
	// without failing the triggering read.
	col := property.NewCollection("g", "a", "b", "ghost")
	w.space.Attach("a", "", docspace.Universal, col)
	w.read(t, "b", "eyal") // b cached before a is read
	w.read(t, "a", "eyal")
	st := w.cache.Stats()
	if st.Prefetches != 0 {
		t.Fatalf("Prefetches = %d, want 0 (b already cached, ghost absent)", st.Prefetches)
	}
}

func TestCollectionMembership(t *testing.T) {
	col := property.NewCollection("g", "b", "a", "")
	col.Add("c")
	col.Remove("b")
	col.Remove("never-there")
	got := col.Members()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("Members = %v", got)
	}
	if col.Name() != "collection:g" {
		t.Fatalf("Name = %q", col.Name())
	}
}

func TestCollectionPrefetchRespectsPersonalViews(t *testing.T) {
	// Prefetched sibling entries carry the reading user's transforms.
	w := newWorld(t, Options{})
	w.addDoc(t, "a", "eyal", "/a", []byte("plain a"))
	w.addDoc(t, "b", "eyal", "/b", []byte("plain b"))
	col := property.NewCollection("g", "a", "b")
	w.space.Attach("a", "", docspace.Universal, col)
	w.space.Attach("b", "", docspace.Universal, col)
	w.space.Attach("b", "eyal", docspace.Personal, property.NewUppercaser(0))
	w.read(t, "a", "eyal")
	got := w.read(t, "b", "eyal") // served from prefetched entry
	if string(got) != "PLAIN B" {
		t.Fatalf("prefetched view = %q, want personalized transform", got)
	}
	if st := w.cache.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want the b read to hit", st)
	}
}
