package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"placeless/internal/property"
)

// Property-based tests for the pure functions the sharded cache leans
// on: the cacheability aggregation operator, replacement-cost
// accumulation, the shard hash, and the composite-key codec. These are
// the invariants that let the concurrent cache reorder work freely —
// if any of them were order-sensitive, sharding would change observable
// behaviour.

// TestQuickRestrictOrderIndependent: folding any permutation of votes
// through property.Restrict yields the same aggregate, so the order in
// which read-path properties run cannot change cacheability.
func TestQuickRestrictOrderIndependent(t *testing.T) {
	fold := func(votes []property.Cacheability) property.Cacheability {
		agg := property.Unrestricted
		for _, v := range votes {
			agg = property.Restrict(agg, v)
		}
		return agg
	}
	f := func(raw []uint8, seed int64) bool {
		votes := make([]property.Cacheability, len(raw))
		for i, r := range raw {
			votes[i] = property.Cacheability(r % 3)
		}
		want := fold(votes)
		perm := append([]property.Cacheability{}, votes...)
		rand.New(rand.NewSource(seed)).Shuffle(len(perm), func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		return fold(perm) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRestrictAlgebra: Restrict is commutative, associative, and
// idempotent — the algebraic basis for the permutation invariance.
func TestQuickRestrictAlgebra(t *testing.T) {
	c := func(r uint8) property.Cacheability { return property.Cacheability(r % 3) }
	comm := func(x, y uint8) bool {
		return property.Restrict(c(x), c(y)) == property.Restrict(c(y), c(x))
	}
	assoc := func(x, y, z uint8) bool {
		return property.Restrict(property.Restrict(c(x), c(y)), c(z)) ==
			property.Restrict(c(x), property.Restrict(c(y), c(z)))
	}
	idem := func(x uint8) bool { return property.Restrict(c(x), c(x)) == c(x) }
	for name, f := range map[string]any{"commutative": comm, "associative": assoc, "idempotent": idem} {
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestQuickCostAccumulationOrderIndependent: AddCost over any
// permutation of property execution times accumulates to the same
// replacement cost (it is a sum of clamped-positive durations), so
// GDS sees the same cost no matter how the read path interleaves.
func TestQuickCostAccumulationOrderIndependent(t *testing.T) {
	accumulate := func(ds []time.Duration) time.Duration {
		var rc property.ReadContext
		for _, d := range ds {
			rc.AddCost(d)
		}
		return rc.Result().Cost
	}
	f := func(raw []int32, seed int64) bool {
		ds := make([]time.Duration, len(raw))
		for i, r := range raw {
			ds[i] = time.Duration(r) * time.Microsecond // mix of signs; AddCost clamps negatives
		}
		want := accumulate(ds)
		perm := append([]time.Duration{}, ds...)
		rand.New(rand.NewSource(seed)).Shuffle(len(perm), func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		return accumulate(perm) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickShardAssignmentStable: the shard for a key is a pure
// function of the key bytes and the shard count — repeated lookups and
// lookups on an identically built index always agree. This is what
// makes it safe for invalidation and install paths to locate the same
// stripe independently.
func TestQuickShardAssignmentStable(t *testing.T) {
	idx := newShardedIndex(16)
	idx2 := newShardedIndex(16)
	f := func(doc, user string) bool {
		k := key(doc, user)
		a, b, c := idx.shardFor(k), idx.shardFor(k), idx2.shardFor(k)
		return a == b && a == &idx.shards[shardHash(k)&idx.mask] &&
			c == &idx2.shards[shardHash(k)&idx2.mask]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKeyRoundTrip: splitKey inverts key for any NUL-free doc and
// user, so notifier callbacks and flush always reconstruct the exact
// pair an entry was stored under.
func TestQuickKeyRoundTrip(t *testing.T) {
	f := func(doc, user string) bool {
		if strings.ContainsRune(doc, 0) || strings.ContainsRune(user, 0) {
			return true // composite keys require NUL-free components
		}
		d, u := splitKey(key(doc, user))
		return d == doc && u == user
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestShardDistribution: realistic document keys spread across stripes
// without pathological clumping. The bound is loose (4× the mean) —
// this guards against a broken hash (everything on one stripe), not
// statistical perfection.
func TestShardDistribution(t *testing.T) {
	const shards, keys = 16, 10000
	idx := newShardedIndex(shards)
	counts := make(map[*shard]int)
	for i := 0; i < keys; i++ {
		doc := "doc-" + strings.Repeat("x", i%7) + string(rune('a'+i%26)) + itoa(i)
		counts[idx.shardFor(key(doc, "user-"+itoa(i%40)))]++
	}
	if len(counts) != shards {
		t.Fatalf("only %d of %d stripes used", len(counts), shards)
	}
	mean := keys / shards
	for _, n := range counts {
		if n > 4*mean {
			t.Fatalf("stripe holds %d keys (mean %d) — hash is clumping", n, mean)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

// FuzzShardHash feeds arbitrary doc/user bytes through the key codec
// and shard hash: no input may panic, assignment must be deterministic,
// and the masked stripe index must stay in range for every legal shard
// count.
func FuzzShardHash(f *testing.F) {
	f.Add("doc", "user")
	f.Add("", "")
	f.Add("a/very/long/document/path/with/segments", "eyal@parc.xerox.com")
	f.Add(strings.Repeat("z", 1024), "u")
	f.Add("d\x00embedded", "nul\x00user")
	f.Fuzz(func(t *testing.T, doc, user string) {
		k := key(doc, user)
		h1, h2 := shardHash(k), shardHash(k)
		if h1 != h2 {
			t.Fatalf("shardHash unstable: %d vs %d", h1, h2)
		}
		for _, n := range []int{1, 2, 8, 16, 256} {
			idx := newShardedIndex(n)
			sh := idx.shardFor(k)
			found := false
			for i := range idx.shards {
				if sh == &idx.shards[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("shardFor returned a stripe outside the index (n=%d)", n)
			}
		}
		if !strings.ContainsRune(doc, 0) && !strings.ContainsRune(user, 0) {
			d, u := splitKey(k)
			if d != doc || u != user {
				t.Fatalf("splitKey(key(%q,%q)) = (%q,%q)", doc, user, d, u)
			}
		}
	})
}
