package core

// Regression test for the load/install callback race: a write that
// lands while a miss is executing the read path must prevent the
// (already stale) result from being installed, even when verifiers
// are disabled.

import (
	"testing"

	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/stream"
)

// midReadWriter is an active property whose read transform performs a
// concurrent write to the same document the first time it runs —
// deterministically reproducing "the source changed while the cache
// was loading".
type midReadWriter struct {
	property.Base
	space *docspace.Space
	doc   string
	data  []byte
	fired bool
}

func (m *midReadWriter) WrapInput(*property.ReadContext) stream.InputWrapper {
	return stream.WholeInput(func(b []byte) []byte {
		if !m.fired {
			m.fired = true
			// The write runs the full write path: store + the
			// contentWritten event that notifies the cache.
			if err := m.space.WriteDocument(m.doc, "writer", m.data); err != nil {
				panic(err)
			}
		}
		return b
	})
}

func TestInvalidationDuringMissPreventsStaleInstall(t *testing.T) {
	// Verifiers off: only the notification protects consistency, so
	// a stale install would be served forever.
	w := newWorld(t, Options{DisableVerifiers: true})
	w.addDoc(t, "d", "writer", "/d", []byte("v1"))
	w.space.AddReference("d", "reader")

	// Install the cache's notifiers with a clean first read.
	w.read(t, "d", "reader")
	w.cache.Invalidate("d", "reader")

	trigger := &midReadWriter{
		Base:  property.Base{PropName: "mid-read-writer"},
		space: w.space, doc: "d", data: []byte("v2-during-read"),
	}
	if err := w.space.Attach("d", "reader", docspace.Personal, trigger); err != nil {
		t.Fatal(err)
	}

	// This miss reads v1, and v2 lands mid-flight.
	first, err := w.cache.Read("d", "reader")
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != "v1" {
		t.Fatalf("first read = %q, expected the pre-write snapshot", first)
	}
	// The stale result must not have been cached: the next read
	// re-executes and sees v2.
	second, err := w.cache.Read("d", "reader")
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != "v2-during-read" {
		t.Fatalf("second read = %q — stale entry was installed despite mid-read invalidation", second)
	}
}
