package core

// Concurrency regression suite for the sharded cache core:
//
//   - the load/install callback race (a write landing mid-miss must
//     not leave a stale entry installed),
//   - a mixed-operation stress harness exercising concurrent
//     Read/Write/Invalidate/Resize/Flush across overlapping
//     (document, user) pairs, meant to run under -race,
//   - single-flight correctness: K concurrent misses on one key
//     execute the read path (and hence the bit-provider fetch)
//     exactly once.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/stream"
)

// midReadWriter is an active property whose read transform performs a
// concurrent write to the same document the first time it runs —
// deterministically reproducing "the source changed while the cache
// was loading".
type midReadWriter struct {
	property.Base
	space *docspace.Space
	doc   string
	data  []byte
	fired bool
}

func (m *midReadWriter) WrapInput(*property.ReadContext) stream.InputWrapper {
	return stream.WholeInput(func(b []byte) []byte {
		if !m.fired {
			m.fired = true
			// The write runs the full write path: store + the
			// contentWritten event that notifies the cache.
			if err := m.space.WriteDocument(m.doc, "writer", m.data); err != nil {
				panic(err)
			}
		}
		return b
	})
}

func TestInvalidationDuringMissPreventsStaleInstall(t *testing.T) {
	// Verifiers off: only the notification protects consistency, so
	// a stale install would be served forever.
	w := newWorld(t, Options{DisableVerifiers: true})
	w.addDoc(t, "d", "writer", "/d", []byte("v1"))
	w.space.AddReference("d", "reader")

	// Install the cache's notifiers with a clean first read.
	w.read(t, "d", "reader")
	w.cache.Invalidate("d", "reader")

	trigger := &midReadWriter{
		Base:  property.Base{PropName: "mid-read-writer"},
		space: w.space, doc: "d", data: []byte("v2-during-read"),
	}
	if err := w.space.Attach("d", "reader", docspace.Personal, trigger); err != nil {
		t.Fatal(err)
	}

	// This miss reads v1, and v2 lands mid-flight.
	first, err := w.cache.Read("d", "reader")
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != "v1" {
		t.Fatalf("first read = %q, expected the pre-write snapshot", first)
	}
	// The stale result must not have been cached: the next read
	// re-executes and sees v2.
	second, err := w.cache.Read("d", "reader")
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != "v2-during-read" {
		t.Fatalf("second read = %q — stale entry was installed despite mid-read invalidation", second)
	}
}

// TestConcurrentStress drives every externally visible cache operation
// from many goroutines over overlapping (document, user) pairs. It
// asserts no data corruption (every read returns some complete version
// of the document, never torn bytes) and that the cache converges to a
// consistent state; the -race build catches synchronization bugs.
func TestConcurrentStress(t *testing.T) {
	const (
		docs       = 6
		users      = 4
		goroutines = 8
		opsEach    = 400
	)
	w := newWorld(t, Options{Mode: WriteBack, Capacity: 1 << 16})
	versions := make(map[string]bool) // every value ever written, per doc prefix
	var versionsMu sync.Mutex
	docID := func(i int) string { return fmt.Sprintf("sd%d", i) }
	for i := 0; i < docs; i++ {
		id := docID(i)
		seedData := []byte(fmt.Sprintf("%s|v0", id))
		w.addDoc(t, id, "owner", "/"+id, seedData)
		versions[string(seedData)] = true
		for u := 1; u < users; u++ {
			w.space.AddReference(id, fmt.Sprintf("user-%d", u))
		}
	}
	userID := func(i int) string {
		if i == 0 {
			return "owner"
		}
		return fmt.Sprintf("user-%d", i)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 42))
			for op := 0; op < opsEach; op++ {
				doc := docID(rng.Intn(docs))
				user := userID(rng.Intn(users))
				switch r := rng.Intn(100); {
				case r < 55: // read
					data, err := w.cache.Read(doc, user)
					if err != nil {
						t.Errorf("Read(%s,%s): %v", doc, user, err)
						return
					}
					if !bytes.HasPrefix(data, []byte(doc+"|")) {
						t.Errorf("torn read for %s: %q", doc, data)
						return
					}
					versionsMu.Lock()
					known := versions[string(data)]
					versionsMu.Unlock()
					if !known {
						t.Errorf("read returned bytes never written: %q", data)
						return
					}
				case r < 70: // write a fresh version
					v := []byte(fmt.Sprintf("%s|g%d-op%d", doc, g, op))
					versionsMu.Lock()
					versions[string(v)] = true
					versionsMu.Unlock()
					if err := w.cache.Write(doc, user, v); err != nil {
						t.Errorf("Write(%s,%s): %v", doc, user, err)
						return
					}
				case r < 80: // invalidate one entry or a whole doc
					if rng.Intn(2) == 0 {
						w.cache.Invalidate(doc, user)
					} else {
						w.cache.InvalidateDoc(doc)
					}
				case r < 90: // flush write-back state
					if err := w.cache.Flush(); err != nil {
						t.Errorf("Flush: %v", err)
						return
					}
				case r < 95: // resize provokes eviction churn
					w.cache.Resize(int64(1<<12 + rng.Intn(1<<16)))
				default: // metadata probes
					w.cache.Contains(doc, user)
					w.cache.Len()
					_ = w.cache.Stats().HitRatio()
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesce: flush buffered writes and check convergent bookkeeping.
	if err := w.cache.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if d := w.cache.Dirty(); d != 0 {
		t.Fatalf("dirty entries after final flush: %d", d)
	}
	st := w.cache.Stats()
	if st.BytesStored < 0 || st.BytesLogical < 0 || st.SharedEntries < 0 {
		t.Fatalf("negative gauges after stress: %+v", st)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("stress harness performed no reads")
	}
	// Every entry still cached must serve its exact stored bytes.
	for i := 0; i < docs; i++ {
		for u := 0; u < users; u++ {
			data, err := w.cache.Read(docID(i), userID(u))
			if err != nil {
				t.Fatalf("post-stress read: %v", err)
			}
			if !bytes.HasPrefix(data, []byte(docID(i)+"|")) {
				t.Fatalf("post-stress torn read: %q", data)
			}
		}
	}
}

// countingProvider wraps a fixed payload and counts Open calls — the
// observable "did the read path run" signal for single-flight tests.
// Open blocks until release is closed so a test can pile up concurrent
// misses behind one fetch.
type countingProvider struct {
	payload []byte
	opens   atomic.Int64
	release chan struct{}
	fail    bool
}

func (p *countingProvider) Name() string { return "bits:counting" }

func (p *countingProvider) Open(ctx *property.ReadContext) (io.ReadCloser, error) {
	p.opens.Add(1)
	if p.release != nil {
		<-p.release
	}
	if p.fail {
		return nil, fmt.Errorf("counting provider: simulated source failure")
	}
	return stream.BytesReader(p.payload), nil
}

func (p *countingProvider) Create(*property.WriteContext) (io.WriteCloser, error) {
	return nil, fmt.Errorf("counting provider is read-only")
}

func (p *countingProvider) ReadCurrent() ([]byte, error) {
	return append([]byte{}, p.payload...), nil
}

// TestSingleFlightCoalescesConcurrentMisses is the single-flight
// correctness test from ISSUE 1: K = 32 concurrent misses on one
// (document, user) key must trigger exactly one bit-provider fetch —
// one read-path execution — while the other K−1 callers block and
// receive the same result.
func TestSingleFlightCoalescesConcurrentMisses(t *testing.T) {
	const K = 32
	w := newWorld(t, Options{})
	provider := &countingProvider{
		payload: []byte("coalesced-content"),
		release: make(chan struct{}),
	}
	if _, err := w.space.CreateDocument("d", "u", provider); err != nil {
		t.Fatal(err)
	}

	results := make([][]byte, K)
	errs := make([]error, K)
	var started, done sync.WaitGroup
	for i := 0; i < K; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			results[i], errs[i] = w.cache.Read("d", "u")
		}(i)
	}
	started.Wait()
	// Let every goroutine reach the miss path while the leader is
	// parked inside the provider, then release the fetch. Stragglers
	// that arrive after the install turn into hits — either way the
	// provider must have run exactly once.
	for deadline := time.Now().Add(5 * time.Second); provider.opens.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no goroutine reached the bit-provider")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(provider.release)
	done.Wait()

	if n := provider.opens.Load(); n != 1 {
		t.Fatalf("bit-provider fetched %d times for %d concurrent misses, want exactly 1", n, K)
	}
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if string(results[i]) != "coalesced-content" {
			t.Fatalf("reader %d got %q", i, results[i])
		}
	}
	st := w.cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single read-path execution)", st.Misses)
	}
	if st.CoalescedMisses+st.Hits != K-1 {
		t.Fatalf("coalesced(%d) + hits(%d) != %d", st.CoalescedMisses, st.Hits, K-1)
	}
}

// TestSingleFlightResultIsPrivateCopy: followers must not share the
// leader's backing array — mutating one caller's bytes cannot leak
// into another's.
func TestSingleFlightResultIsPrivateCopy(t *testing.T) {
	w := newWorld(t, Options{})
	provider := &countingProvider{
		payload: []byte("abc"),
		release: make(chan struct{}),
	}
	if _, err := w.space.CreateDocument("d", "u", provider); err != nil {
		t.Fatal(err)
	}
	const K = 4
	results := make([][]byte, K)
	var done sync.WaitGroup
	for i := 0; i < K; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			results[i], _ = w.cache.Read("d", "u")
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(provider.release)
	done.Wait()
	for i := range results {
		results[i][0] = byte('0' + i) // scribble on the returned slice
	}
	if data := w.read(t, "d", "u"); string(data) != "abc" {
		t.Fatalf("a caller's mutation reached the cache: %q", data)
	}
}

// TestSingleFlightPropagatesError: when the coalesced read path fails,
// every waiter gets the error, the fetch still ran only once, and a
// later read retries (a failed flight must not wedge the key).
func TestSingleFlightPropagatesError(t *testing.T) {
	w := newWorld(t, Options{})
	provider := &countingProvider{
		payload: []byte("x"),
		release: make(chan struct{}),
		fail:    true,
	}
	if _, err := w.space.CreateDocument("d", "u", provider); err != nil {
		t.Fatal(err)
	}
	const K = 8
	errs := make([]error, K)
	var done sync.WaitGroup
	for i := 0; i < K; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			_, errs[i] = w.cache.Read("d", "u")
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(provider.release)
	done.Wait()
	if n := provider.opens.Load(); n != 1 {
		t.Fatalf("failed fetch ran %d times, want 1", n)
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("reader %d got nil error from failed flight", i)
		}
	}
	// The key must not be wedged: the next read starts a fresh flight.
	provider.fail = false
	provider.release = nil
	if data := w.read(t, "d", "u"); string(data) != "x" {
		t.Fatalf("retry after failed flight = %q", data)
	}
}
