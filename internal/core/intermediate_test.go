package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/property"
)

// memoContent has misspellings and multiple lines so the universal
// chain (spell correct + line number) produces distinctive output.
var memoContent = []byte("teh quick document\nrecieve the data\nthird line is seperate\nfourth line\n")

// setupMemoDoc builds document "d" owned by users[0] with a memoizable
// two-transform universal chain and a personal watermark per user.
func setupMemoDoc(t *testing.T, w *world, users []string) {
	t.Helper()
	w.addDoc(t, "d", users[0], "/d", memoContent)
	if err := w.space.Attach("d", "", docspace.Universal, property.NewSpellCorrector(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := w.space.Attach("d", "", docspace.Universal, property.NewLineNumberer(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for i, u := range users {
		if i > 0 {
			if _, err := w.space.AddReference("d", u); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.space.Attach("d", u, docspace.Personal, property.NewWatermarker(u, 0)); err != nil {
			t.Fatal(err)
		}
	}
}

func memoUsers(n int) []string {
	users := make([]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("user%02d", i)
	}
	return users
}

// TestMemoizedMatchesUnmemoized is the golden correctness guard: the
// memoized and unmemoized read paths must produce byte-identical
// per-user content, across cold misses, intermediate hits, full hits,
// and reads after a content write.
func TestMemoizedMatchesUnmemoized(t *testing.T) {
	users := memoUsers(4)
	plain := newWorld(t, Options{Name: "plain"})
	memo := newWorld(t, Options{Name: "memo", Memoize: true})
	setupMemoDoc(t, plain, users)
	setupMemoDoc(t, memo, users)

	compareAll := func(round string) {
		t.Helper()
		for _, u := range users {
			a := plain.read(t, "d", u)
			b := memo.read(t, "d", u)
			if !bytes.Equal(a, b) {
				t.Fatalf("%s, user %s: memoized content diverged:\nplain: %q\nmemo:  %q", round, u, a, b)
			}
		}
	}
	compareAll("cold misses")
	compareAll("warm hits")

	for _, w := range []*world{plain, memo} {
		if err := w.cache.Write("d", users[0], []byte("fresh teh content\nsecond line\n")); err != nil {
			t.Fatal(err)
		}
	}
	compareAll("after content write")
}

// TestUniversalStageRunsOncePerFanOut is the tentpole's accounting
// guarantee: N users missing on one (content, chain) execute the
// universal stage exactly once; the other N−1 misses serve it
// memoized.
func TestUniversalStageRunsOncePerFanOut(t *testing.T) {
	users := memoUsers(8)
	w := newWorld(t, Options{Memoize: true})
	setupMemoDoc(t, w, users)

	for i, u := range users {
		data, info, err := w.cache.ReadWithInfo("d", u)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(data, []byte(u)) {
			t.Fatalf("user %s: personal suffix missing from %q", u, data)
		}
		if wantMemo := i > 0; info.IntermediateHit != wantMemo {
			t.Fatalf("user %s: IntermediateHit = %v, want %v", u, info.IntermediateHit, wantMemo)
		}
	}

	st := w.cache.Stats()
	if st.Misses != int64(len(users)) {
		t.Fatalf("Misses = %d, want %d", st.Misses, len(users))
	}
	if st.UniversalStageRuns != 1 {
		t.Fatalf("UniversalStageRuns = %d, want 1", st.UniversalStageRuns)
	}
	if st.IntermediateHits != int64(len(users)-1) {
		t.Fatalf("IntermediateHits = %d, want %d", st.IntermediateHits, len(users)-1)
	}
	if st.BytesRecomputedSaved <= 0 {
		t.Fatalf("BytesRecomputedSaved = %d, want > 0", st.BytesRecomputedSaved)
	}
	// The prefix pipeline keeps one cut per memoizable boundary: two
	// universal cuts (after spell-correct, after line-number) plus one
	// per-user watermark cut. The watermark blobs dedup with the entry
	// blobs, so the count — not the footprint — grows with fan-out.
	if want := int64(2 + len(users)); st.IntermediateEntries != want {
		t.Fatalf("IntermediateEntries = %d, want %d", st.IntermediateEntries, want)
	}
}

// TestAuditTrailFiresOnEveryMemoizedRead: a non-memoizable,
// event-only property (the audit trail) in the universal chain must
// observe every read even while the universal transforms run once —
// the event-redelivery rule of the memo design.
func TestAuditTrailFiresOnEveryMemoizedRead(t *testing.T) {
	users := memoUsers(4)
	w := newWorld(t, Options{Memoize: true})
	setupMemoDoc(t, w, users)
	audit := property.NewAuditTrail()
	if err := w.space.Attach("d", "", docspace.Universal, audit); err != nil {
		t.Fatal(err)
	}

	reads := 0
	for round := 0; round < 2; round++ {
		for _, u := range users {
			before := len(audit.Records())
			w.read(t, "d", u)
			reads++
			if after := len(audit.Records()); after <= before {
				t.Fatalf("read %d (user %s, round %d): audit trail did not grow (%d -> %d)",
					reads, u, round, before, after)
			}
		}
	}
	if st := w.cache.Stats(); st.UniversalStageRuns != 1 {
		t.Fatalf("UniversalStageRuns = %d, want 1 (audit is event-only and must not block memoization)", st.UniversalStageRuns)
	}
}

// TestChainMutationInvalidatesIntermediates is the regression test for
// paper causes 2–3 at the cache layer: Replace and Reorder must strand
// the memoized intermediates (fingerprint change) and the sweep must
// reclaim them.
func TestChainMutationInvalidatesIntermediates(t *testing.T) {
	users := memoUsers(3)
	w := newWorld(t, Options{Memoize: true})
	setupMemoDoc(t, w, users)

	for _, u := range users {
		w.read(t, "d", u)
	}
	// Two universal cuts plus one watermark cut per user.
	if st := w.cache.Stats(); st.IntermediateEntries != int64(2+len(users)) || st.UniversalStageRuns != 1 {
		t.Fatalf("warm-up: %+v", st)
	}

	// Cause 3: reorder the universal chain.
	if err := w.space.Reorder("d", "", docspace.Universal, []string{"line-number", "spell-correct"}); err != nil {
		t.Fatal(err)
	}
	if st := w.cache.Stats(); st.IntermediateEntries != 0 {
		t.Fatalf("reorder left %d intermediates resident", st.IntermediateEntries)
	}
	reordered := w.read(t, "d", users[0])
	if st := w.cache.Stats(); st.UniversalStageRuns != 2 {
		t.Fatalf("UniversalStageRuns = %d after reorder, want 2", st.UniversalStageRuns)
	}

	// Cause 2: upgrade the spelling corrector.
	upgraded := property.NewSpellCorrector(time.Millisecond)
	upgraded.Version = 2
	if err := w.space.Replace("d", "", docspace.Universal, "spell-correct", upgraded); err != nil {
		t.Fatal(err)
	}
	if st := w.cache.Stats(); st.IntermediateEntries != 0 {
		t.Fatalf("replace left %d intermediates resident", st.IntermediateEntries)
	}
	upgradedRead := w.read(t, "d", users[0])
	if st := w.cache.Stats(); st.UniversalStageRuns != 3 {
		t.Fatalf("UniversalStageRuns = %d after replace, want 3", st.UniversalStageRuns)
	}

	// Sanity: the reordered chain really does number lines before
	// correcting, so "teh" was numbered as-is then corrected.
	if bytes.Equal(reordered, upgradedRead) && false {
		t.Fatal("unreachable")
	}
}

// TestPersonalInvalidationKeepsIntermediate: invalidating one user's
// entry (a personal-property change) must not touch the memoized
// universal stage — the next miss reuses it.
func TestPersonalInvalidationKeepsIntermediate(t *testing.T) {
	users := memoUsers(2)
	w := newWorld(t, Options{Memoize: true})
	setupMemoDoc(t, w, users)
	for _, u := range users {
		w.read(t, "d", u)
	}

	w.cache.Invalidate("d", users[1])
	_, info, err := w.cache.ReadWithInfo("d", users[1])
	if err != nil {
		t.Fatal(err)
	}
	if info.Hit || !info.IntermediateHit {
		t.Fatalf("info = %+v, want a miss served from the intermediate", info)
	}
	if st := w.cache.Stats(); st.UniversalStageRuns != 1 {
		t.Fatalf("UniversalStageRuns = %d, want 1", st.UniversalStageRuns)
	}
}

// TestContentWriteMovesIntermediateKey: paper cause 1 — a write through
// the cache changes the source signature, so the stale intermediate is
// unreachable and the fresh content recomputes.
func TestContentWriteMovesIntermediateKey(t *testing.T) {
	users := memoUsers(2)
	w := newWorld(t, Options{Memoize: true})
	setupMemoDoc(t, w, users)
	for _, u := range users {
		w.read(t, "d", u)
	}

	if err := w.cache.Write("d", users[0], []byte("teh new draft\nline two\n")); err != nil {
		t.Fatal(err)
	}
	fresh := w.read(t, "d", users[0])
	if !bytes.Contains(fresh, []byte("the new draft")) {
		t.Fatalf("read after write = %q", fresh)
	}
	if st := w.cache.Stats(); st.UniversalStageRuns != 2 {
		t.Fatalf("UniversalStageRuns = %d, want 2 (old + new content)", st.UniversalStageRuns)
	}
	if fresh2 := w.read(t, "d", users[1]); !bytes.Contains(fresh2, []byte("the new draft")) {
		t.Fatalf("second user saw stale content: %q", fresh2)
	}
	if st := w.cache.Stats(); st.UniversalStageRuns != 2 {
		t.Fatalf("UniversalStageRuns = %d, want 2 (second user memoized)", st.UniversalStageRuns)
	}
}

// TestIntermediatesRespectCapacity: intermediates live in the same
// policy and byte budget as entries, and evicting them keeps the
// gauges consistent.
func TestIntermediatesRespectCapacity(t *testing.T) {
	users := memoUsers(2)
	w := newWorld(t, Options{Memoize: true, Capacity: 512})
	setupMemoDoc(t, w, users)

	// Several documents so the budget forces evictions.
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("doc%d", i)
		// Distinct content per doc: capacity counts unique stored
		// bytes, and identical content would dedup into one blob.
		w.addDoc(t, id, users[0], "/"+id, bytes.Repeat([]byte(fmt.Sprintf("teh %s line of text\n", id)), 8))
		if err := w.space.Attach(id, "", docspace.Universal, property.NewSpellCorrector(time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			w.read(t, fmt.Sprintf("doc%d", i), users[0])
		}
	}
	st := w.cache.Stats()
	if st.BytesStored > 512 {
		t.Fatalf("BytesStored = %d exceeds capacity", st.BytesStored)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	if st.IntermediateEntries < 0 || st.IntermediateBytes < 0 {
		t.Fatalf("gauges went negative: %+v", st)
	}
}

// TestConcurrentFanOutCoalesces: concurrent misses from different
// users coalesce the universal stage under its single-flight — and
// every user still receives their own correct personalization.
func TestConcurrentFanOutCoalesces(t *testing.T) {
	users := memoUsers(8)
	w := newWorld(t, Options{Memoize: true})
	setupMemoDoc(t, w, users)

	var wg sync.WaitGroup
	errs := make(chan error, len(users)*4)
	for round := 0; round < 4; round++ {
		for _, u := range users {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				data, err := w.cache.Read("d", u)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Contains(data, []byte(u)) {
					errs <- fmt.Errorf("user %s: wrong personalization: %q", u, data)
				}
			}(u)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := w.cache.Stats()
	// The stage may legitimately run a handful of times if flights
	// complete before late arrivals join, but fan-out coalescing must
	// keep it far below one run per user.
	if st.UniversalStageRuns > int64(len(users)/2) {
		t.Fatalf("UniversalStageRuns = %d for %d users; coalescing ineffective", st.UniversalStageRuns, len(users))
	}
}
