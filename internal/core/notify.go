package core

import (
	"fmt"

	"placeless/internal/docspace"
	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/sig"
)

// cacheNotifier wraps property.Notifier with the machinery marker so
// document spaces classify its attachment events as cache machinery
// (other caches must not invalidate when a cache installs plumbing).
type cacheNotifier struct {
	*property.Notifier
}

// CacheMachinery marks the property as cache-installed plumbing.
func (cacheNotifier) CacheMachinery() {}

// contentAffecting is the semantic predicate for cache notifiers: only
// events that can change the content a user sees should invalidate.
// Static labels and other caches' machinery cannot.
func contentAffecting(e event.Event) bool {
	switch e.Kind {
	case event.ContentWritten, event.ReorderProperties, event.ExternalChange:
		return true
	case event.SetProperty, event.RemoveProperty, event.ModifyProperty:
		return e.Detail == docspace.ClassActive
	default:
		return false
	}
}

// installNotifiers attaches the cache's notifiers for (doc, user) if
// not yet present — the paper's miss-time behaviour: "When Eyal first
// opens the paper from MS-Word, a notifier property is attached to the
// base document to invalidate the cache if the file is opened for
// writing by another user. Another notifier at the base tracks any
// additions or deletions of active properties... At Eyal's document
// reference, a third notifier is attached to watch for active property
// additions, deletions and for changes."
//
// The dedup bookkeeping runs under notifMu; the space attachments run
// with no cache lock held, because attachment dispatches events and
// user-installed properties may react to them by re-entering the
// cache. Racing installs attaching the same notifier twice are benign
// (the registry deduplicates by property name).
func (c *Cache) installNotifiers(doc, user string) {
	if c.opts.DisableNotifiers {
		return
	}
	var todo []func() error
	c.notifMu.Lock()
	if !c.baseNotif[doc] {
		c.baseNotif[doc] = true
		name := fmt.Sprintf("notifier:%s:%s:base", c.opts.Name, doc)
		n := cacheNotifier{property.NewNotifier(name, c.onBaseEvent,
			event.ContentWritten, event.SetProperty, event.RemoveProperty,
			event.ModifyProperty, event.ReorderProperties, event.ExternalChange)}
		n.Predicate = contentAffecting
		c.notifiers[doc] = append(c.notifiers[doc], notifierSpot{doc: doc, level: docspace.Universal, name: name})
		d := doc
		todo = append(todo, func() error { return c.space.Attach(d, "", docspace.Universal, n) })
	}
	rk := key(doc, user)
	if !c.refNotif[rk] {
		c.refNotif[rk] = true
		name := fmt.Sprintf("notifier:%s:%s:%s", c.opts.Name, doc, user)
		n := cacheNotifier{property.NewNotifier(name, c.onRefEvent,
			event.SetProperty, event.RemoveProperty,
			event.ModifyProperty, event.ReorderProperties)}
		n.Predicate = contentAffecting
		c.notifiers[doc] = append(c.notifiers[doc], notifierSpot{doc: doc, user: user, level: docspace.Personal, name: name})
		d, u := doc, user
		todo = append(todo, func() error { return c.space.Attach(d, u, docspace.Personal, n) })
	}
	c.notifMu.Unlock()
	for _, fn := range todo {
		_ = fn() // duplicate attach (racing installs) is benign
	}
}

// invalidateDoc bumps the document's generation and drops every user's
// entry for it, visiting the stripes one lock at a time. The
// generation bump strictly precedes the stripe scan: an install that
// read the old generation either completes before the scan reaches its
// stripe (and is dropped by it) or observes the bump under its stripe
// lock and aborts — no stale entry can survive.
func (c *Cache) invalidateDoc(doc string) {
	c.appendEpoch(doc, c.docGen(doc).Add(1))
	c.idx.each(func(sh *shard) {
		for k, ent := range sh.entries {
			if ent.doc == doc {
				if c.dropShardLocked(sh, k) {
					c.stats.invalidations.Inc()
				}
			}
		}
	})
	// The invalidating change also stranded any memoized
	// universal-stage outputs for this document (their source
	// signature or fingerprint no longer matches); reclaim them now.
	c.sweepIntermediates(doc)
}

// onBaseEvent handles notifications from a base-document notifier:
// anything that changes content for every user invalidates all of the
// document's entries.
func (c *Cache) onBaseEvent(e event.Event) {
	c.stats.notifications.Inc()
	c.observeInvalidation(e)
	c.invalidateDoc(e.Doc)
}

// onRefEvent handles notifications from a reference notifier: personal
// property changes invalidate only that user's entry.
func (c *Cache) onRefEvent(e event.Event) {
	c.stats.notifications.Inc()
	c.observeInvalidation(e)
	c.invalidateUser(e.Doc, e.User)
}

// observeInvalidation counts a notifier-driven invalidation under its
// paper cause and remembers the cause for subsequent miss attribution.
func (c *Cache) observeInvalidation(e event.Event) {
	o := c.opts.Observer
	if o == nil {
		return
	}
	cause := causeOf(e)
	o.Invalidation(cause)
	c.lastCause.Store(e.Doc, cause)
}

// invalidateUser bumps the generation and drops one (doc, user) entry,
// plus the personal-cut intermediates that user installed (a personal
// change moves the personal prefix fingerprints, stranding those
// keys). Universal-prefix intermediates survive: a personal-property
// change cannot affect universal-stage output.
func (c *Cache) invalidateUser(doc, user string) {
	c.appendEpoch(doc, c.docGen(doc).Add(1))
	k := key(doc, user)
	sh := c.idx.shardFor(k)
	sh.mu.Lock()
	if c.dropShardLocked(sh, k) {
		c.stats.invalidations.Inc()
	}
	sh.mu.Unlock()
	c.sweepUserIntermediates(doc, user)
}

// Invalidate drops the entry for (doc, user), if any. It is the
// programmatic equivalent of a reference-notifier invalidation.
func (c *Cache) Invalidate(doc, user string) {
	c.invalidateUser(doc, user)
}

// InvalidateDoc drops all entries for doc across users.
func (c *Cache) InvalidateDoc(doc string) {
	c.invalidateDoc(doc)
}

// Close flushes write-back state, detaches every notifier the cache
// installed, and rejects further use. It does not close an attached
// durable store — the store's lifetime belongs to whoever opened it.
func (c *Cache) Close() error {
	if err := c.Flush(); err != nil {
		return err
	}
	c.shutdown()
	return nil
}

// Kill simulates a process crash: it tears the cache down like Close
// but without flushing, so buffered write-back content is lost exactly
// as it would be when the process dies. Notifiers are still detached —
// a dead process's notifier closures cannot keep firing into the
// space — which models the attachment cleanup a restarting cache would
// perform on its stale machinery. The attached durable store keeps
// whatever reached it before the kill; the caller closes (or just
// reopens) it to model the disk surviving the crash.
func (c *Cache) Kill() {
	c.shutdown()
}

// shutdown is the common teardown: mark closed, clear all in-memory
// state, detach notifiers.
func (c *Cache) shutdown() {
	if c.closed.Swap(true) {
		return
	}
	c.notifMu.Lock()
	spots := make([]notifierSpot, 0)
	for _, list := range c.notifiers {
		spots = append(spots, list...)
	}
	c.notifiers = make(map[string][]notifierSpot)
	c.notifMu.Unlock()
	// Clear the stripes; in-flight misses observe the closed flag
	// under their stripe lock before installing, so nothing leaks in
	// after the sweep.
	c.idx.each(func(sh *shard) {
		sh.entries = make(map[string]*entry)
	})
	c.blobMu.Lock()
	c.blobs = make(map[sig.Signature]*blob)
	c.blobMu.Unlock()
	c.clearIntermediates()
	c.stats.bytesStored.Store(0)
	c.stats.bytesLogical.Store(0)
	c.stats.sharedEntries.Store(0)
	for _, sp := range spots {
		_ = c.space.Detach(sp.doc, sp.user, sp.level, sp.name)
	}
}
