package core

import (
	"fmt"

	"placeless/internal/docspace"
	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/sig"
)

// cacheNotifier wraps property.Notifier with the machinery marker so
// document spaces classify its attachment events as cache machinery
// (other caches must not invalidate when a cache installs plumbing).
type cacheNotifier struct {
	*property.Notifier
}

// CacheMachinery marks the property as cache-installed plumbing.
func (cacheNotifier) CacheMachinery() {}

// contentAffecting is the semantic predicate for cache notifiers: only
// events that can change the content a user sees should invalidate.
// Static labels and other caches' machinery cannot.
func contentAffecting(e event.Event) bool {
	switch e.Kind {
	case event.ContentWritten, event.ReorderProperties, event.ExternalChange:
		return true
	case event.SetProperty, event.RemoveProperty, event.ModifyProperty:
		return e.Detail == docspace.ClassActive
	default:
		return false
	}
}

// installNotifiersLocked attaches the cache's notifiers for (doc,
// user) if not yet present — the paper's miss-time behaviour: "When
// Eyal first opens the paper from MS-Word, a notifier property is
// attached to the base document to invalidate the cache if the file is
// opened for writing by another user. Another notifier at the base
// tracks any additions or deletions of active properties... At Eyal's
// document reference, a third notifier is attached to watch for active
// property additions, deletions and for changes."
//
// Caller holds c.mu; attachment dispatches events, so the actual
// space calls run after unlock via the returned thunks... attachment
// here is safe because notifier attachment only dispatches machinery-
// class events, which no handler re-enters the cache for.
func (c *Cache) installNotifiersLocked(doc, user string) {
	if c.opts.DisableNotifiers {
		return
	}
	var todo []func() error
	if !c.baseNotif[doc] {
		c.baseNotif[doc] = true
		name := fmt.Sprintf("notifier:%s:%s:base", c.opts.Name, doc)
		n := cacheNotifier{property.NewNotifier(name, c.onBaseEvent,
			event.ContentWritten, event.SetProperty, event.RemoveProperty,
			event.ModifyProperty, event.ReorderProperties, event.ExternalChange)}
		n.Predicate = contentAffecting
		c.notifiers[doc] = append(c.notifiers[doc], notifierSpot{doc: doc, level: docspace.Universal, name: name})
		d := doc
		todo = append(todo, func() error { return c.space.Attach(d, "", docspace.Universal, n) })
	}
	rk := key(doc, user)
	if !c.refNotif[rk] {
		c.refNotif[rk] = true
		name := fmt.Sprintf("notifier:%s:%s:%s", c.opts.Name, doc, user)
		n := cacheNotifier{property.NewNotifier(name, c.onRefEvent,
			event.SetProperty, event.RemoveProperty,
			event.ModifyProperty, event.ReorderProperties)}
		n.Predicate = contentAffecting
		c.notifiers[doc] = append(c.notifiers[doc], notifierSpot{doc: doc, user: user, level: docspace.Personal, name: name})
		d, u := doc, user
		todo = append(todo, func() error { return c.space.Attach(d, u, docspace.Personal, n) })
	}
	if len(todo) == 0 {
		return
	}
	// Attaching dispatches setProperty events; the registry handles
	// re-entrant subscription and our predicate ignores machinery, so
	// attaching under c.mu would only deadlock if a handler called
	// back into this cache synchronously — which contentAffecting
	// prevents for machinery events. To stay safe against user-
	// installed properties reacting to machinery attachments, run the
	// attachments without the cache lock.
	c.mu.Unlock()
	for _, fn := range todo {
		_ = fn() // duplicate attach (racing installs) is benign
	}
	c.mu.Lock()
}

// onBaseEvent handles notifications from a base-document notifier:
// anything that changes content for every user invalidates all of the
// document's entries.
func (c *Cache) onBaseEvent(e event.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Notifications++
	c.gens[e.Doc]++
	for k, ent := range c.entries {
		if ent.doc == e.Doc {
			c.stats.Invalidations++
			c.dropLocked(k)
		}
	}
}

// onRefEvent handles notifications from a reference notifier: personal
// property changes invalidate only that user's entry.
func (c *Cache) onRefEvent(e event.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Notifications++
	c.gens[e.Doc]++
	k := key(e.Doc, e.User)
	if _, ok := c.entries[k]; ok {
		c.stats.Invalidations++
		c.dropLocked(k)
	}
}

// Invalidate drops the entry for (doc, user), if any. It is the
// programmatic equivalent of a reference-notifier invalidation.
func (c *Cache) Invalidate(doc, user string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[doc]++
	k := key(doc, user)
	if _, ok := c.entries[k]; ok {
		c.stats.Invalidations++
		c.dropLocked(k)
	}
}

// InvalidateDoc drops all entries for doc across users.
func (c *Cache) InvalidateDoc(doc string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[doc]++
	for k, ent := range c.entries {
		if ent.doc == doc {
			c.stats.Invalidations++
			c.dropLocked(k)
		}
	}
}

// Close flushes write-back state, detaches every notifier the cache
// installed, and rejects further use.
func (c *Cache) Close() error {
	if err := c.Flush(); err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	spots := make([]notifierSpot, 0)
	for _, list := range c.notifiers {
		spots = append(spots, list...)
	}
	c.notifiers = make(map[string][]notifierSpot)
	c.entries = make(map[string]*entry)
	c.blobs = make(map[sig.Signature]*blob)
	c.stats.BytesStored = 0
	c.stats.BytesLogical = 0
	c.mu.Unlock()
	for _, sp := range spots {
		_ = c.space.Detach(sp.doc, sp.user, sp.level, sp.name)
	}
	return nil
}
