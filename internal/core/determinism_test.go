package core_test

// Determinism regression: a single-goroutine Zipf trace (the E2
// replacement workload shape) through the cache must reproduce the
// exact eviction sequence and hit/miss counts recorded in the golden
// file. The golden was generated against the pre-sharding seed
// implementation, so this test pins the refactoring contract from
// ISSUE 1: under single-threaded access the sharded cache is
// byte-identical to the global-mutex cache — same policy decisions,
// same victims in the same order, same counters.
//
// Regenerate with: go test ./internal/core -run TestDeterminismGolden -update-golden

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/experiment"
	"placeless/internal/property"
	"placeless/internal/replace"
	"placeless/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the determinism golden file")

// recordingPolicy wraps a replacement policy and logs every call the
// cache makes, so the golden captures the full policy interaction
// sequence, not only its outcome.
type recordingPolicy struct {
	inner replace.Policy
	ops   []string
}

func (r *recordingPolicy) Name() string { return r.inner.Name() }
func (r *recordingPolicy) Len() int     { return r.inner.Len() }

func (r *recordingPolicy) Insert(key string, size int64, cost time.Duration) {
	r.ops = append(r.ops, fmt.Sprintf("insert %s size=%d cost=%v", printable(key), size, cost))
	r.inner.Insert(key, size, cost)
}

func (r *recordingPolicy) Access(key string) {
	r.ops = append(r.ops, "access "+printable(key))
	r.inner.Access(key)
}

func (r *recordingPolicy) Remove(key string) {
	r.ops = append(r.ops, "remove "+printable(key))
	r.inner.Remove(key)
}

func (r *recordingPolicy) Victim() (string, bool) {
	k, ok := r.inner.Victim()
	r.ops = append(r.ops, fmt.Sprintf("victim %s ok=%t", printable(k), ok))
	return k, ok
}

// printable makes the NUL-separated (doc, user) key diff-friendly.
func printable(k string) string { return strings.ReplaceAll(k, "\x00", "/") }

// buildDeterminismWorld mirrors the E2 replacement world: mixed
// local/LAN/WAN sources, heavy-tailed sizes, an expensive transform on
// every fourth document, and a cache an order of magnitude smaller
// than the working set.
func buildDeterminismWorld(t *testing.T, policy replace.Policy) *experiment.World {
	t.Helper()
	const docs = 80
	sizes := trace.Sizes(docs, 1024, 1)
	var total int64
	for _, s := range sizes {
		total += s
	}
	opts := experiment.DefaultCacheOptions()
	opts.Policy = policy
	opts.Capacity = total / 10
	w := experiment.NewWorld(1, opts)
	for i := 0; i < docs; i++ {
		id := trace.DocID(i)
		content := experiment.Content(id, sizes[id])
		var err error
		switch i % 3 {
		case 0:
			err = w.AddLocalDoc(id, "owner", content)
		case 1:
			err = w.AddWebDoc(w.LAN, id, "owner", content)
		default:
			err = w.AddWebDoc(w.WAN, id, "owner", content)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Space.AddReference(id, "reader"); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			p := property.NewTranslator(25 * time.Millisecond)
			if err := w.Space.Attach(id, "reader", docspace.Personal, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return w
}

func TestDeterminismGolden(t *testing.T) {
	rec := &recordingPolicy{inner: replace.NewGDS()}
	w := buildDeterminismWorld(t, rec)
	accesses := trace.Generate(trace.Config{
		Docs: 80, Users: 1, Length: 2500, Alpha: 1.1, Seed: 1,
	})
	for _, a := range accesses {
		if _, err := w.Cache.Read(a.Doc, "reader"); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Cache.Stats()

	var b strings.Builder
	fmt.Fprintf(&b, "hits %d\n", st.Hits)
	fmt.Fprintf(&b, "misses %d\n", st.Misses)
	fmt.Fprintf(&b, "evictions %d\n", st.Evictions)
	fmt.Fprintf(&b, "bytes-stored %d\n", st.BytesStored)
	fmt.Fprintf(&b, "bytes-logical %d\n", st.BytesLogical)
	fmt.Fprintf(&b, "entries %d\n", w.Cache.Len())
	fmt.Fprintf(&b, "final-sim-time %v\n", w.Clk.Now().UTC().Format(time.RFC3339Nano))
	fmt.Fprintf(&b, "policy-ops %d\n", len(rec.ops))
	for _, op := range rec.ops {
		b.WriteString(op)
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "determinism_e2.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report the first divergence precisely; a full diff of ~10k lines
	// would drown it.
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("divergence at line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("length divergence: got %d lines, want %d lines", len(gl), len(wl))
}
