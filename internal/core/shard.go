package core

import (
	"runtime"
	"sync"
)

// The entry index is partitioned into lock-striped shards so
// concurrent readers of different (document, user) entries never
// contend on one global mutex (the seed implementation's shape). A
// shard owns a slice of the key space — both the cached entries and
// the in-flight miss table for single-flight coalescing — selected by
// an FNV-1a hash of the (doc, user) key masked to a power-of-two
// shard count.
//
// Lock ordering (see also DESIGN.md §"Sharded cache core"):
//
//	shard.mu | interMu  >  policyMu | blobMu     (leaf locks)
//
// A goroutine may take at most one of the upper-rank locks at a time
// (one shard lock or interMu, never both), may take any single leaf
// lock while holding an upper-rank lock, and must never acquire an
// upper-rank lock while holding a leaf lock. Per-document invalidation
// generations are plain atomics (Cache.gens) and sit outside the
// ordering entirely. No lock may be held across calls into the
// document space (attachment, read/write paths, event forwarding) or
// across clock sleeps — both can synchronously re-enter the cache
// through notifier callbacks and timer-driven flushes.

// shard is one stripe of the (doc, user) index.
type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	flights map[string]*flight
}

// shardedIndex is the striped entry table.
type shardedIndex struct {
	shards []shard
	mask   uint32
}

// defaultShardCount scales the stripe count with available
// parallelism: the next power of two at or above 4×GOMAXPROCS,
// clamped to [8, 256]. Oversubscribing cores keeps the collision
// probability of two hot keys on one stripe low.
func defaultShardCount() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return nextPow2(n)
}

// nextPow2 rounds n up to a power of two (n must be >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newShardedIndex builds an index with n stripes; n <= 0 selects the
// GOMAXPROCS-scaled default, other values are rounded up to a power of
// two so masking works.
func newShardedIndex(n int) *shardedIndex {
	if n <= 0 {
		n = defaultShardCount()
	} else {
		n = nextPow2(n)
	}
	idx := &shardedIndex{shards: make([]shard, n), mask: uint32(n - 1)}
	for i := range idx.shards {
		idx.shards[i].entries = make(map[string]*entry)
		idx.shards[i].flights = make(map[string]*flight)
	}
	return idx
}

// FNV-1a constants (32-bit).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// shardHash is FNV-1a over the (doc, user) key. It is the stable
// shard-assignment function: equal keys always land on the same
// stripe, regardless of map iteration or insertion order.
func shardHash(k string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= fnvPrime32
	}
	return h
}

// shardFor returns the stripe owning key k.
func (x *shardedIndex) shardFor(k string) *shard {
	return &x.shards[shardHash(k)&x.mask]
}

// each visits every stripe in index order, locking one at a time —
// the pattern used by document-wide invalidation and Close. fn runs
// with sh.mu held and must follow the leaf-lock ordering rules.
func (x *shardedIndex) each(fn func(sh *shard)) {
	for i := range x.shards {
		sh := &x.shards[i]
		sh.mu.Lock()
		fn(sh)
		sh.mu.Unlock()
	}
}

// count sums entries across stripes.
func (x *shardedIndex) count() int {
	n := 0
	x.each(func(sh *shard) { n += len(sh.entries) })
	return n
}
