package core

import (
	"strings"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/sig"
)

// Content-addressed memoization of the universal read-path stage
// (enabled by Options.Memoize). The document space splits the read
// path at the universal/personal boundary (docspace.ReadDocumentStaged)
// and hands the cache a compute closure for the universal chain; the
// cache keys the stage's output by (signature of the raw source bytes,
// fingerprint of the ordered universal chain) and reuses it across
// users, so N users missing on one document execute the shared
// universal prefix once and only their personal suffixes N times.
//
// Content addressing makes staleness structural rather than policed:
//   - cause 1 (content written) changes the source signature,
//   - causes 2–3 (property add/remove/modify/reorder) change the
//     fingerprint,
//   - cause 4 (external information) never reaches this store, because
//     properties embedding external information are non-memoizable and
//     disable memoization of their stage.
// A key can therefore never serve wrong bytes; an invalidation merely
// strands the old key, and invalidateDoc sweeps stranded intermediates
// eagerly so they do not have to age out of the policy.
//
// Locking: interMu ranks with the shard locks — policyMu and blobMu
// nest under it, it is never held together with a shard lock, and the
// compute closure (property transforms, simulated sleeps, possible
// notifier re-entry) always runs with no cache lock held.

// interPrefix namespaces intermediate keys inside the shared
// replacement policy. Entry keys are doc + NUL + user, and document
// ids do not start with a NUL byte, so the namespaces cannot collide.
const interPrefix = "\x00i\x00"

// interKey builds the policy/store key for a universal-stage output.
func interKey(src, fp sig.Signature) string {
	return interPrefix + string(src[:]) + string(fp[:])
}

// isInterKey reports whether a policy victim is an intermediate.
func isInterKey(k string) bool { return strings.HasPrefix(k, interPrefix) }

// interEntry is one memoized universal-stage output. doc is recorded
// only so document-wide invalidation can sweep stranded keys.
type interEntry struct {
	doc       string
	signature sig.Signature
	size      int64
}

// iflight is one in-progress universal-stage execution; the per-(doc,
// fingerprint) single-flight that coalesces concurrent misses from
// different users. Same protocol as flight: the leader populates
// data/err and closes done; close(done) is the happens-before edge.
type iflight struct {
	done chan struct{}
	data []byte
	err  error
}

var _ docspace.Intermediates = (*Cache)(nil)

// Intermediate implements docspace.Intermediates: it returns the
// memoized universal-stage output for (src, fp), or computes it via
// compute — exactly once per key under concurrent misses. cost is the
// simulated recompute cost of the stage (overhead + retrieval +
// universal transforms), the policy's cost input for the intermediate.
// The returned slice is the caller's to keep; hit reports whether
// compute was skipped.
func (c *Cache) Intermediate(doc string, src, fp sig.Signature, cost time.Duration, compute func() ([]byte, error)) ([]byte, bool, error) {
	k := interKey(src, fp)
	for {
		c.interMu.Lock()
		if e := c.inter[k]; e != nil {
			data := c.blobData(e.signature)
			if data == nil {
				// Blob store swept by a concurrent Close; drop the
				// dangling entry and recompute.
				c.dropIntermediateLocked(k)
				c.interMu.Unlock()
				continue
			}
			c.policyMu.Lock()
			c.policy.Access(k)
			c.policyMu.Unlock()
			c.interMu.Unlock()
			c.stats.intermediateHits.Inc()
			c.stats.bytesRecomputedSaved.Add(int64(len(data)))
			out := make([]byte, len(data))
			copy(out, data)
			return out, true, nil
		}
		if f := c.interFlights[k]; f != nil {
			c.interMu.Unlock()
			<-f.done
			if f.err != nil {
				// The leader's failure may be transient (and its
				// sleep costs were charged to the leader); retry
				// rather than fanning one error out to every waiter.
				continue
			}
			c.stats.intermediateHits.Inc()
			c.stats.bytesRecomputedSaved.Add(int64(len(f.data)))
			out := make([]byte, len(f.data))
			copy(out, f.data)
			return out, true, nil
		}
		f := &iflight{done: make(chan struct{})}
		c.interFlights[k] = f
		c.interMu.Unlock()

		// The durable tier sits between the in-memory store and the
		// compute closure: (src, fp) is content-addressed, so a disk
		// record needs no validation beyond the store's own checksum
		// and signature verification — equal keys imply equal bytes.
		var data []byte
		var err error
		fromDisk := false
		if st := c.opts.Store; st != nil {
			if im, ok := st.GetIntermediate(src, fp); ok {
				if d, ok := st.GetBlob(im.Sig); ok {
					data, fromDisk = d, true
					c.stats.storeInterPromotions.Inc()
					c.stats.intermediateHits.Inc()
					c.stats.bytesRecomputedSaved.Add(int64(len(d)))
				}
			}
		}
		if !fromDisk {
			c.stats.universalStageRuns.Inc()
			data, err = compute()
		}
		f.data, f.err = data, err
		c.interMu.Lock()
		delete(c.interFlights, k)
		if err == nil && !c.closed.Load() {
			c.storeIntermediateLocked(k, doc, data, cost)
		}
		c.interMu.Unlock()
		close(f.done)
		if err != nil {
			return nil, false, err
		}
		if !fromDisk {
			c.demoteIntermediate(src, fp, data, cost)
		}
		c.evict("")
		return data, fromDisk, nil
	}
}

// storeIntermediateLocked installs a computed universal-stage output.
// Caller holds interMu; the key is flight-protected, so no entry can
// already exist, but a racing invalidation sweep between our delete of
// the flight and this install is impossible because both run under
// interMu — the sweep either ran before (nothing to remove) or runs
// after (removes this entry, which is merely a lost memo, not a
// correctness problem: the key's bytes are right by construction).
func (c *Cache) storeIntermediateLocked(k, doc string, data []byte, cost time.Duration) {
	s := c.internBlob(data, false)
	c.inter[k] = &interEntry{doc: doc, signature: s, size: int64(len(data))}
	c.stats.intermediateEntries.Inc()
	c.stats.intermediateBytes.Add(int64(len(data)))
	c.policyMu.Lock()
	c.policy.Insert(k, int64(len(data)), cost)
	c.policyMu.Unlock()
}

// dropIntermediate removes one intermediate and releases its blob
// reference, reporting whether it was present.
func (c *Cache) dropIntermediate(k string) bool {
	c.interMu.Lock()
	defer c.interMu.Unlock()
	return c.dropIntermediateLocked(k)
}

// dropIntermediateLocked is dropIntermediate under a held interMu.
func (c *Cache) dropIntermediateLocked(k string) bool {
	e := c.inter[k]
	if e == nil {
		return false
	}
	delete(c.inter, k)
	c.policyMu.Lock()
	c.policy.Remove(k)
	c.policyMu.Unlock()
	c.stats.intermediateEntries.Add(-1)
	c.stats.intermediateBytes.Add(-e.size)
	c.unrefBlob(e.signature, false)
	return true
}

// sweepIntermediates drops every intermediate recorded for doc —
// called by document-wide invalidation. The dropped keys are already
// unreachable (the invalidating change moved the source signature or
// the fingerprint); sweeping reclaims their bytes immediately instead
// of waiting for the policy to age them out.
func (c *Cache) sweepIntermediates(doc string) {
	c.interMu.Lock()
	defer c.interMu.Unlock()
	for k, e := range c.inter {
		if e.doc == doc {
			c.dropIntermediateLocked(k)
		}
	}
}

// clearIntermediates empties the store on Close.
func (c *Cache) clearIntermediates() {
	c.interMu.Lock()
	defer c.interMu.Unlock()
	c.inter = make(map[string]*interEntry)
	c.stats.intermediateEntries.Store(0)
	c.stats.intermediateBytes.Store(0)
}
