package core

import (
	"strings"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/sig"
)

// Content-addressed memoization of read-path prefixes (enabled by
// Options.Memoize). The document space splits the read path at every
// memoizable property boundary (docspace.ReadDocumentStaged) and hands
// the cache a compute closure per segment; the cache keys each
// boundary's output by (signature of the raw source bytes, incremental
// fingerprint of the chain prefix) and reuses it across users. N users
// missing on one document execute the shared universal prefix once,
// and users whose personal chains share a prefix — [translate, audit]
// and [translate, summarize] — share the translate intermediate too:
// the longest-prefix probe resumes each read from the deepest cached
// cut and only the remaining suffix executes.
//
// Content addressing makes staleness structural rather than policed:
//   - cause 1 (content written) changes the source signature,
//   - causes 2–3 (property add/remove/modify/reorder) change every
//     fingerprint from the mutated position on,
//   - cause 4 (external information) never reaches this store, because
//     properties embedding external information are non-memoizable and
//     poison every cut at or after them.
// A key can therefore never serve wrong bytes; an invalidation merely
// strands the old keys, and invalidateDoc sweeps stranded intermediates
// eagerly so they do not have to age out of the policy.
//
// Storing every prefix of a long chain is quadratic in bytes, so
// installs are gated on recompute-cost-per-size
// (Options.PrefixMinCostPerKB) — the in-memory analogue of the durable
// tier's DurableMinCost gate — on top of the GDS policy, which already
// prices resident cuts by rebuild cost when choosing eviction victims.
//
// Locking: interMu ranks with the shard locks — policyMu and blobMu
// nest under it, it is never held together with a shard lock, and the
// compute closure (property transforms, simulated sleeps, possible
// notifier re-entry) always runs with no cache lock held.

// interPrefix namespaces intermediate keys inside the shared
// replacement policy. Entry keys are doc + NUL + user; document ids
// containing NUL are rejected at registration (docspace.ErrBadID), so
// the namespaces cannot collide.
const interPrefix = "\x00i\x00"

// interKey builds the policy/store key for a memoized prefix output.
func interKey(src, fp sig.Signature) string {
	return interPrefix + string(src[:]) + string(fp[:])
}

// isInterKey reports whether a policy victim is an intermediate.
func isInterKey(k string) bool { return strings.HasPrefix(k, interPrefix) }

// interEntry is one memoized prefix output. doc is recorded so
// document-wide invalidation can sweep stranded keys; user is set only
// for cuts inside the personal chain (empty for universal-prefix
// cuts), so a per-user invalidation can sweep that user's personal
// cuts. A personal cut shared by users with identical chain prefixes
// is tagged with whoever installed it — sweeping it on that user's
// invalidation merely costs the others a recompute.
type interEntry struct {
	doc       string
	user      string
	signature sig.Signature
	size      int64
}

// iflight is one in-progress segment execution; the per-(src,
// fingerprint) single-flight that coalesces concurrent misses from
// different users. Same protocol as flight: the leader populates
// data/err and closes done; close(done) is the happens-before edge.
type iflight struct {
	done chan struct{}
	data []byte
	err  error
}

var (
	_ docspace.Intermediates       = (*Cache)(nil)
	_ docspace.PrefixIntermediates = (*Cache)(nil)
)

// singleCutView exposes only the legacy single-cut Intermediates
// protocol of a cache, hiding its PrefixIntermediates methods so the
// document space offers exactly one cut point (the universal/personal
// boundary). It is the ablation baseline for Options.SingleCutMemo.
type singleCutView struct{ c *Cache }

func (v singleCutView) Intermediate(doc string, src, fp sig.Signature, cost time.Duration, compute func() ([]byte, error)) ([]byte, bool, error) {
	return v.c.Intermediate(doc, src, fp, cost, compute)
}

// Intermediate implements docspace.Intermediates: the legacy
// single-cut protocol, keyed at the universal/personal boundary.
func (c *Cache) Intermediate(doc string, src, fp sig.Signature, cost time.Duration, compute func() ([]byte, error)) ([]byte, bool, error) {
	return c.intermediate(doc, "", src, fp, cost, true, false, compute)
}

// PrefixIntermediate implements docspace.PrefixIntermediates for one
// cut of the prefix pipeline.
func (c *Cache) PrefixIntermediate(doc, user string, src sig.Signature, cut docspace.Cut, compute func() ([]byte, error)) ([]byte, bool, error) {
	owner := ""
	if cut.Personal {
		owner = user
	}
	return c.intermediate(doc, owner, src, cut.FP, cut.Cost, cut.Universal, true, compute)
}

// LongestPrefix implements docspace.PrefixIntermediates: it scans fps
// deepest-first and returns the first resident (src, fp) output. The
// probe is memory-only — the durable tier is consulted per cut by
// PrefixIntermediate, which also handles in-flight coalescing.
func (c *Cache) LongestPrefix(doc string, src sig.Signature, fps []sig.Signature) ([]byte, int, bool) {
	c.interMu.Lock()
	for i := len(fps) - 1; i >= 0; i-- {
		k := interKey(src, fps[i])
		e := c.inter[k]
		if e == nil {
			continue
		}
		data := c.blobData(e.signature)
		if data == nil {
			// Blob store swept by a concurrent Close; drop the
			// dangling entry and keep probing shallower cuts.
			c.dropIntermediateLocked(k)
			continue
		}
		c.policyMu.Lock()
		c.policy.Access(k)
		c.policyMu.Unlock()
		c.interMu.Unlock()
		c.stats.prefixHits.Inc()
		c.stats.intermediateHits.Inc()
		c.stats.bytesRecomputedSaved.Add(int64(len(data)))
		c.stats.prefixSavedBytes.Add(int64(len(data)))
		out := make([]byte, len(data))
		copy(out, data)
		return out, i, true
	}
	c.interMu.Unlock()
	return nil, -1, false
}

// intermediate returns the memoized output for (src, fp), or computes
// it via compute — exactly once per key under concurrent misses. cost
// is the accumulated simulated recompute cost through the cut, the
// policy's cost input. universal marks the cut that completes the
// universal chain (the accounting boundary for UniversalStageRuns);
// prefix marks calls from the N-cut pipeline (the legacy single-cut
// entry point leaves it false). The returned slice is the caller's to
// keep; hit reports whether compute was skipped.
func (c *Cache) intermediate(doc, user string, src, fp sig.Signature, cost time.Duration, universal, prefix bool, compute func() ([]byte, error)) ([]byte, bool, error) {
	k := interKey(src, fp)
	for {
		c.interMu.Lock()
		if e := c.inter[k]; e != nil {
			data := c.blobData(e.signature)
			if data == nil {
				// Blob store swept by a concurrent Close; drop the
				// dangling entry and recompute.
				c.dropIntermediateLocked(k)
				c.interMu.Unlock()
				continue
			}
			c.policyMu.Lock()
			c.policy.Access(k)
			c.policyMu.Unlock()
			c.interMu.Unlock()
			c.stats.intermediateHits.Inc()
			c.stats.bytesRecomputedSaved.Add(int64(len(data)))
			if prefix {
				c.stats.prefixSavedBytes.Add(int64(len(data)))
			}
			out := make([]byte, len(data))
			copy(out, data)
			return out, true, nil
		}
		if f := c.interFlights[k]; f != nil {
			c.interMu.Unlock()
			<-f.done
			if f.err != nil {
				// The leader's failure may be transient (and its
				// sleep costs were charged to the leader); retry
				// rather than fanning one error out to every waiter.
				continue
			}
			c.stats.intermediateHits.Inc()
			c.stats.bytesRecomputedSaved.Add(int64(len(f.data)))
			if prefix {
				c.stats.prefixSavedBytes.Add(int64(len(f.data)))
			}
			out := make([]byte, len(f.data))
			copy(out, f.data)
			return out, true, nil
		}
		f := &iflight{done: make(chan struct{})}
		c.interFlights[k] = f
		c.interMu.Unlock()

		// The durable tier sits between the in-memory store and the
		// compute closure: (src, fp) is content-addressed, so a disk
		// record needs no validation beyond the store's own checksum
		// and signature verification — equal keys imply equal bytes.
		var data []byte
		var err error
		fromDisk := false
		if st := c.opts.Store; st != nil {
			if im, ok := st.GetIntermediate(src, fp); ok {
				if d, ok := st.GetBlob(im.Sig); ok {
					data, fromDisk = d, true
					c.stats.storeInterPromotions.Inc()
					c.stats.intermediateHits.Inc()
					c.stats.bytesRecomputedSaved.Add(int64(len(d)))
				}
			}
		}
		if !fromDisk {
			if universal {
				c.stats.universalStageRuns.Inc()
			}
			if prefix {
				c.stats.prefixSegmentRuns.Inc()
			}
			data, err = compute()
		}
		f.data, f.err = data, err
		c.interMu.Lock()
		delete(c.interFlights, k)
		if err == nil && !c.closed.Load() {
			if c.prefixWorthStoring(cost, int64(len(data))) {
				c.storeIntermediateLocked(k, doc, user, data, cost)
				if prefix {
					c.stats.prefixInstalls.Inc()
				}
			} else {
				c.stats.prefixInstallSkips.Inc()
			}
		}
		c.interMu.Unlock()
		close(f.done)
		if err != nil {
			return nil, false, err
		}
		if !fromDisk {
			c.demoteIntermediate(src, fp, data, cost)
		}
		c.evict("")
		return data, fromDisk, nil
	}
}

// prefixWorthStoring is the cut-point cost model: a cut is installed
// only when its accumulated recompute cost clears
// Options.PrefixMinCostPerKB per KiB of output — cheap-to-rebuild
// prefixes are not worth the quadratic byte overhead of storing every
// cut. Zero (the default) admits every memoizable cut.
func (c *Cache) prefixWorthStoring(cost time.Duration, size int64) bool {
	min := c.opts.PrefixMinCostPerKB
	if min <= 0 {
		return true
	}
	// cost/size >= min/KiB, cross-multiplied to stay in integers.
	return cost*1024 >= min*time.Duration(size)
}

// storeIntermediateLocked installs a computed prefix output. Caller
// holds interMu; the key is flight-protected, so no entry can already
// exist, but a racing invalidation sweep between our delete of the
// flight and this install is impossible because both run under
// interMu — the sweep either ran before (nothing to remove) or runs
// after (removes this entry, which is merely a lost memo, not a
// correctness problem: the key's bytes are right by construction).
func (c *Cache) storeIntermediateLocked(k, doc, user string, data []byte, cost time.Duration) {
	s := c.internBlob(data, false)
	c.inter[k] = &interEntry{doc: doc, user: user, signature: s, size: int64(len(data))}
	c.stats.intermediateEntries.Inc()
	c.stats.intermediateBytes.Add(int64(len(data)))
	c.policyMu.Lock()
	c.policy.Insert(k, int64(len(data)), cost)
	c.policyMu.Unlock()
}

// dropIntermediate removes one intermediate and releases its blob
// reference, reporting whether it was present.
func (c *Cache) dropIntermediate(k string) bool {
	c.interMu.Lock()
	defer c.interMu.Unlock()
	return c.dropIntermediateLocked(k)
}

// dropIntermediateLocked is dropIntermediate under a held interMu.
func (c *Cache) dropIntermediateLocked(k string) bool {
	e := c.inter[k]
	if e == nil {
		return false
	}
	delete(c.inter, k)
	c.policyMu.Lock()
	c.policy.Remove(k)
	c.policyMu.Unlock()
	c.stats.intermediateEntries.Add(-1)
	c.stats.intermediateBytes.Add(-e.size)
	c.unrefBlob(e.signature, false)
	return true
}

// sweepIntermediates drops every intermediate recorded for doc —
// called by document-wide invalidation. The dropped keys are already
// unreachable (the invalidating change moved the source signature or
// the fingerprints); sweeping reclaims their bytes immediately instead
// of waiting for the policy to age them out.
func (c *Cache) sweepIntermediates(doc string) {
	c.interMu.Lock()
	defer c.interMu.Unlock()
	for k, e := range c.inter {
		if e.doc == doc {
			c.dropIntermediateLocked(k)
		}
	}
}

// sweepUserIntermediates drops doc's personal-cut intermediates
// installed by user — called by per-user invalidation. A personal
// change moves that user's cut fingerprints, stranding the old keys;
// universal-prefix cuts (user == "") are untouched, because a personal
// change cannot affect universal-stage output.
func (c *Cache) sweepUserIntermediates(doc, user string) {
	c.interMu.Lock()
	defer c.interMu.Unlock()
	for k, e := range c.inter {
		if e.doc == doc && e.user != "" && e.user == user {
			c.dropIntermediateLocked(k)
		}
	}
}

// clearIntermediates empties the store on Close.
func (c *Cache) clearIntermediates() {
	c.interMu.Lock()
	defer c.interMu.Unlock()
	c.inter = make(map[string]*interEntry)
	c.stats.intermediateEntries.Store(0)
	c.stats.intermediateBytes.Store(0)
}
