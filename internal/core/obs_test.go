package core

import (
	"sync"
	"testing"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/obs"
)

// TestObserverVerdictsAndCauses walks one document through the paper's
// invalidation causes and checks that the attached Observer classifies
// every read and attributes every miss.
func TestObserverVerdictsAndCauses(t *testing.T) {
	o := obs.NewObserver()
	users := memoUsers(2)
	w := newWorld(t, Options{Memoize: true, Observer: o})
	setupMemoDoc(t, w, users)

	// Cold miss, warm hit, then a second user served memoized.
	w.read(t, "d", users[0])
	w.read(t, "d", users[0])
	w.read(t, "d", users[1])

	// Cause 1: content written through Placeless.
	if err := w.cache.Write("d", users[0], []byte("teh new content\nline two\n")); err != nil {
		t.Fatal(err)
	}
	w.read(t, "d", users[0])

	// Cause 3: universal execution order changed.
	if err := w.space.Reorder("d", "", docspace.Universal, []string{"line-number", "spell-correct"}); err != nil {
		t.Fatal(err)
	}
	w.read(t, "d", users[0])

	// Cause 4: information outside Placeless control changed.
	if err := w.space.SignalExternalChange("d", "source replaced"); err != nil {
		t.Fatal(err)
	}
	w.read(t, "d", users[0])

	v := o.VerdictCounts()
	if v[obs.VerdictHit] != 1 {
		t.Errorf("hit verdicts = %d, want 1", v[obs.VerdictHit])
	}
	if v[obs.VerdictMemo] < 1 {
		t.Errorf("memo verdicts = %d, want >= 1", v[obs.VerdictMemo])
	}
	if v[obs.VerdictMiss] < 3 {
		t.Errorf("miss verdicts = %d, want >= 3", v[obs.VerdictMiss])
	}
	c := o.CauseCounts()
	if c[obs.CauseContentWrite] < 1 {
		t.Errorf("content-write invalidations = %d, want >= 1", c[obs.CauseContentWrite])
	}
	if c[obs.CauseReorder] < 1 {
		t.Errorf("reorder invalidations = %d, want >= 1", c[obs.CauseReorder])
	}
	if c[obs.CauseExternal] < 1 {
		t.Errorf("external invalidations = %d, want >= 1", c[obs.CauseExternal])
	}

	// The trace ring saw every read, newest first: the last read was a
	// miss attributed to the external change.
	traces := o.Ring().Snapshot(0)
	if want := int(o.ReadHistogram().Count()); len(traces) != want {
		t.Fatalf("ring kept %d traces, want %d", len(traces), want)
	}
	last := traces[0]
	if last.Verdict != obs.VerdictMiss && last.Verdict != obs.VerdictMemo {
		t.Errorf("last trace verdict = %s, want miss or memo", last.Verdict)
	}
	if last.Cause != obs.CauseExternal {
		t.Errorf("last trace cause = %s, want %s", last.Cause, obs.CauseExternal)
	}
	if last.Total <= 0 {
		t.Errorf("last trace Total = %v, want > 0", last.Total)
	}
	// Staged misses separate bit-fetch / universal / personal spans.
	if last.BitFetch <= 0 || last.Universal <= 0 || last.Personal <= 0 {
		t.Errorf("staged miss spans = %v/%v/%v, want all > 0",
			last.BitFetch, last.Universal, last.Personal)
	}
	if last.FullChain != 0 {
		t.Errorf("staged miss recorded FullChain = %v, want 0", last.FullChain)
	}
}

// TestObserverUnstagedFullChain checks that without Memoize the miss's
// undivided read path lands under the full_chain stage.
func TestObserverUnstagedFullChain(t *testing.T) {
	o := obs.NewObserver()
	w := newWorld(t, Options{Observer: o})
	w.addDoc(t, "d", "eyal", "/d", []byte("content"))
	w.read(t, "d", "eyal")

	tr := o.Ring().Snapshot(1)
	if len(tr) != 1 || tr[0].Verdict != obs.VerdictMiss {
		t.Fatalf("trace = %+v, want one miss", tr)
	}
	if tr[0].Cause != obs.CauseCold {
		t.Errorf("cause = %s, want %s", tr[0].Cause, obs.CauseCold)
	}
	if tr[0].FullChain <= 0 {
		t.Errorf("FullChain = %v, want > 0", tr[0].FullChain)
	}
	if got := o.StageHistogram(obs.StageFullChain).Count(); got != 1 {
		t.Errorf("full_chain stage count = %d, want 1", got)
	}
}

// TestObserverCoalescedVerdicts checks that single-flight followers are
// classified coalesced, in agreement with the cache's own counter.
func TestObserverCoalescedVerdicts(t *testing.T) {
	o := obs.NewObserver()
	w := newWorld(t, Options{Observer: o})
	w.addDoc(t, "d", "eyal", "/d", []byte("content"))

	const readers = 16
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := w.cache.Read("d", "eyal"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st := w.cache.Stats()
	v := o.VerdictCounts()
	if v[obs.VerdictCoalesced] != st.CoalescedMisses {
		t.Errorf("coalesced verdicts = %d, cache counter = %d",
			v[obs.VerdictCoalesced], st.CoalescedMisses)
	}
	var total int64
	for _, n := range v {
		total += n
	}
	if total != readers {
		t.Errorf("verdict total = %d, want %d", total, readers)
	}
	if st.CoalescedMisses > 0 &&
		o.StageHistogram(obs.StageFlightWait).Count() != st.CoalescedMisses {
		t.Errorf("flight_wait observations = %d, want %d",
			o.StageHistogram(obs.StageFlightWait).Count(), st.CoalescedMisses)
	}
}

// TestObserverRegistersCacheFamilies pins the stable placeless_cache_*
// names the CI golden list and scrapers depend on.
func TestObserverRegistersCacheFamilies(t *testing.T) {
	o := obs.NewObserver()
	w := newWorld(t, Options{Observer: o})
	w.addDoc(t, "d", "eyal", "/d", []byte("content"))
	w.read(t, "d", "eyal")
	w.read(t, "d", "eyal")

	names := make(map[string]bool)
	for _, n := range o.Registry().Names() {
		names[n] = true
	}
	for _, want := range []string{
		"placeless_cache_hits_total",
		"placeless_cache_misses_total",
		"placeless_cache_coalesced_misses_total",
		"placeless_cache_verifier_rejects_total",
		"placeless_cache_notifications_total",
		"placeless_cache_invalidations_total",
		"placeless_cache_evictions_total",
		"placeless_cache_uncacheable_total",
		"placeless_cache_events_forwarded_total",
		"placeless_cache_prefetches_total",
		"placeless_cache_flushes_total",
		"placeless_cache_bytes_stored",
		"placeless_cache_bytes_logical",
		"placeless_cache_shared_entries",
		"placeless_cache_entries",
		"placeless_cache_intermediate_hits_total",
		"placeless_cache_universal_stage_runs_total",
		"placeless_cache_bytes_recomputed_saved_total",
		"placeless_cache_intermediate_entries",
		"placeless_cache_intermediate_bytes",
	} {
		if !names[want] {
			t.Errorf("family %s not registered", want)
		}
	}
}

// TestObserverOverheadGate is a sanity bound, not a benchmark: the
// instrumented hit path must stay in the same order of magnitude as
// the bare one (the real <5% measurement lives in EXPERIMENTS.md E13).
func TestObserverOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	run := func(o *obs.Observer) time.Duration {
		w := newWorld(t, Options{Observer: o})
		w.addDoc(t, "d", "eyal", "/d", []byte("content"))
		w.read(t, "d", "eyal") // warm
		start := time.Now()
		for i := 0; i < 2000; i++ {
			w.read(t, "d", "eyal")
		}
		return time.Since(start)
	}
	bare := run(nil)
	observed := run(obs.NewObserver())
	if observed > 10*bare {
		t.Errorf("observed hits took %v vs bare %v — instrumentation too heavy", observed, bare)
	}
}
