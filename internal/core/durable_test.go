package core

import (
	"bytes"
	"testing"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/store"
)

// durableWorld is a world with a durable disk tier attached, plus the
// machinery to crash the cache and boot a successor over the same
// store directory — the document space and repositories survive the
// "crash" (they model the Placeless middleware, not the cache
// process).
type durableWorld struct {
	*world
	t    *testing.T
	dir  string
	st   *store.Store
	opts Options
	rec  store.Recovery
}

func newDurableWorld(t *testing.T, opts Options) *durableWorld {
	t.Helper()
	dir := t.TempDir()
	st, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	w := newWorld(t, opts)
	d := &durableWorld{world: w, t: t, dir: dir, st: st, opts: opts, rec: rec}
	t.Cleanup(func() { _ = d.st.Close() })
	return d
}

// crashAndRestart kills the cache (no flush, simulating process
// death), closes the store file handles, then reopens the directory —
// running the full scan-and-replay recovery path — and boots a new
// cache over the recovered store.
func (d *durableWorld) crashAndRestart() {
	d.t.Helper()
	d.cache.Kill()
	if err := d.st.Close(); err != nil {
		d.t.Fatal(err)
	}
	st, rec, err := store.Open(d.dir, store.Options{})
	if err != nil {
		d.t.Fatal(err)
	}
	d.st, d.rec = st, rec
	d.opts.Store = st
	d.cache = New(d.space, d.opts)
}

// TestDurableWarmRestart is the tentpole's core promise: entries
// demoted before a crash are served after restart without executing a
// single transform, byte-identical to a fresh computation.
func TestDurableWarmRestart(t *testing.T) {
	users := memoUsers(4)
	d := newDurableWorld(t, Options{})
	setupMemoDoc(t, d.world, users)

	before := make(map[string][]byte)
	for _, u := range users {
		before[u] = d.read(t, "d", u)
	}
	if st := d.cache.Stats(); st.StoreDemotions != int64(len(users)) {
		t.Fatalf("StoreDemotions = %d, want %d", st.StoreDemotions, len(users))
	}

	d.crashAndRestart()
	if d.rec.Entries != len(users) {
		t.Fatalf("recovered %d entries, want %d", d.rec.Entries, len(users))
	}

	for _, u := range users {
		data, info, err := d.cache.ReadWithInfo("d", u)
		if err != nil {
			t.Fatal(err)
		}
		if !info.DiskPromoted {
			t.Fatalf("user %s: read after restart not disk-promoted (info %+v)", u, info)
		}
		if !bytes.Equal(data, before[u]) {
			t.Fatalf("user %s: promoted bytes differ:\npre-crash:  %q\npost-crash: %q", u, before[u], data)
		}
	}
	st := d.cache.Stats()
	if st.StorePromotions != int64(len(users)) {
		t.Fatalf("StorePromotions = %d, want %d", st.StorePromotions, len(users))
	}
	if st.UniversalStageRuns != 0 {
		t.Fatalf("UniversalStageRuns = %d after restart, want 0 (promotion must skip transforms)", st.UniversalStageRuns)
	}

	// Promoted entries behave as normal entries afterwards: the next
	// read is a plain hit (store-recheck verifier passing).
	for _, u := range users {
		_, info, err := d.cache.ReadWithInfo("d", u)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Hit {
			t.Fatalf("user %s: second post-restart read not a hit", u)
		}
	}
}

// TestDurableRefusesEpochInvalidatedEntry: an entry demoted at
// generation G and invalidated at G+1 (epoch persisted) must not be
// servable after a crash, even though its bytes are still on disk.
func TestDurableRefusesEpochInvalidatedEntry(t *testing.T) {
	d := newDurableWorld(t, Options{})
	setupMemoDoc(t, d.world, []string{"eyal"})
	d.read(t, "d", "eyal")
	d.cache.InvalidateDoc("d")

	d.crashAndRestart()
	if d.rec.Entries != 0 {
		t.Fatalf("recovered %d entries, want 0 (epoch supersedes them)", d.rec.Entries)
	}
	if d.rec.DroppedStale == 0 {
		t.Fatal("recovery reported no stale-dropped entries")
	}

	data, info, err := d.cache.ReadWithInfo("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if info.DiskPromoted {
		t.Fatal("epoch-invalidated entry was promoted from disk")
	}
	if !bytes.Contains(data, []byte("eyal")) {
		t.Fatalf("recomputed content lost personal suffix: %q", data)
	}
	if st := d.cache.Stats(); st.StorePromotions != 0 {
		t.Fatalf("StorePromotions = %d, want 0", st.StorePromotions)
	}
}

// TestDurableRefusesContentChangedWhileDown: the source file is
// rewritten out-of-band while the process is down — no notifier, no
// epoch. The content-key probe at promotion time must catch the moved
// source signature and recompute.
func TestDurableRefusesContentChangedWhileDown(t *testing.T) {
	d := newDurableWorld(t, Options{})
	setupMemoDoc(t, d.world, []string{"eyal"})
	stale := d.read(t, "d", "eyal")

	d.cache.Kill()
	d.src.Store("/d", []byte("rewritten teh content while down\n"))
	if err := d.st.Close(); err != nil {
		t.Fatal(err)
	}
	st, _, err := store.Open(d.dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.st = st
	d.opts.Store = st
	d.cache = New(d.space, d.opts)

	data, info, err := d.cache.ReadWithInfo("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if info.DiskPromoted {
		t.Fatal("stale disk entry promoted after out-of-band rewrite")
	}
	if bytes.Equal(data, stale) {
		t.Fatalf("read served pre-rewrite bytes: %q", data)
	}
	if !bytes.Contains(data, []byte("rewritten")) {
		t.Fatalf("read missed the rewrite: %q", data)
	}
	cs := d.cache.Stats()
	if cs.StorePromotionRejects == 0 {
		t.Fatal("expected a promotion reject for the moved source signature")
	}
	if cs.StorePromotions != 0 {
		t.Fatalf("StorePromotions = %d, want 0", cs.StorePromotions)
	}
}

// TestDurableRefusesChainChangedWhileDown: an active property attached
// while the process was down moves the chain fingerprint; the durable
// entry keyed under the old fingerprint must not be served.
func TestDurableRefusesChainChangedWhileDown(t *testing.T) {
	d := newDurableWorld(t, Options{})
	setupMemoDoc(t, d.world, []string{"eyal"})
	stale := d.read(t, "d", "eyal")

	d.cache.Kill()
	if err := d.space.Attach("d", "", docspace.Universal, property.NewUppercaser(0)); err != nil {
		t.Fatal(err)
	}
	d.crashRestartStoreOnly()

	data, info, err := d.cache.ReadWithInfo("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if info.DiskPromoted {
		t.Fatal("disk entry promoted despite a changed universal chain")
	}
	if bytes.Equal(data, stale) {
		t.Fatal("read served pre-change bytes")
	}
	if st := d.cache.Stats(); st.StorePromotionRejects == 0 {
		t.Fatal("expected a promotion reject for the moved fingerprint")
	}
}

// crashRestartStoreOnly reopens the store and boots a new cache after
// the caller already killed the old one (for tests that mutate the
// space "while down").
func (d *durableWorld) crashRestartStoreOnly() {
	d.t.Helper()
	if err := d.st.Close(); err != nil {
		d.t.Fatal(err)
	}
	st, rec, err := store.Open(d.dir, store.Options{})
	if err != nil {
		d.t.Fatal(err)
	}
	d.st, d.rec = st, rec
	d.opts.Store = st
	d.cache = New(d.space, d.opts)
}

// TestDurableMinCostGate: results cheaper than DurableMinCost are not
// worth a disk write and must not be demoted.
func TestDurableMinCostGate(t *testing.T) {
	d := newDurableWorld(t, Options{DurableMinCost: time.Hour})
	setupMemoDoc(t, d.world, []string{"eyal"})
	d.read(t, "d", "eyal")
	if st := d.cache.Stats(); st.StoreDemotions != 0 || st.StoreIntermediateDemotions != 0 {
		t.Fatalf("demotions under the cost gate: %+v", st)
	}
	if ss := d.st.Stats(); ss.Entries != 0 || ss.Intermediates != 0 {
		t.Fatalf("store not empty under the cost gate: %+v", ss)
	}
}

// TestStoreRecheckVerifierCatchesLaterChange: a promoted entry carries
// the store-recheck verifier; an out-of-band source rewrite after
// promotion must be caught on the next hit, like any cause-4 change.
func TestStoreRecheckVerifierCatchesLaterChange(t *testing.T) {
	d := newDurableWorld(t, Options{})
	setupMemoDoc(t, d.world, []string{"eyal"})
	d.read(t, "d", "eyal")

	d.crashAndRestart()
	_, info, err := d.cache.ReadWithInfo("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if !info.DiskPromoted {
		t.Fatal("setup: expected a disk promotion")
	}

	d.src.Store("/d", []byte("changed after promotion\n"))
	data, info, err := d.cache.ReadWithInfo("d", "eyal")
	if err != nil {
		t.Fatal(err)
	}
	if info.Hit {
		t.Fatal("store-recheck verifier let a stale promoted entry hit")
	}
	if !bytes.Contains(data, []byte("changed after promotion")) {
		t.Fatalf("read served stale bytes: %q", data)
	}
	if st := d.cache.Stats(); st.VerifierRejects == 0 {
		t.Fatal("expected a verifier reject")
	}
}

// TestDurableIntermediatePromotion: after a restart, a user with no
// durable entry of their own still skips the universal stage when the
// (source, fingerprint) intermediate survived on disk.
func TestDurableIntermediatePromotion(t *testing.T) {
	users := memoUsers(2)
	d := newDurableWorld(t, Options{})
	setupMemoDoc(t, d.world, users)
	// Only user00 reads before the crash: one entry, one intermediate
	// demoted.
	d.read(t, "d", users[0])

	d.crashAndRestart()

	// user01 never had an entry (memory or disk); the staged miss must
	// promote the universal stage from the durable intermediate and run
	// only the personal suffix.
	data, info, err := d.cache.ReadWithInfo("d", users[1])
	if err != nil {
		t.Fatal(err)
	}
	if info.DiskPromoted {
		t.Fatal("user01 has no durable entry; promotion should be intermediate-level only")
	}
	if !info.IntermediateHit {
		t.Fatal("universal stage not served from the durable intermediate")
	}
	if !bytes.Contains(data, []byte(users[1])) {
		t.Fatalf("personal suffix missing: %q", data)
	}
	st := d.cache.Stats()
	// One durable promotion per universal cut the walk crossed (after
	// spell-correct and at the boundary after line-number); user01's
	// watermark segment is the only thing that executes.
	if st.StoreIntermediatePromotions != 2 {
		t.Fatalf("StoreIntermediatePromotions = %d, want 2", st.StoreIntermediatePromotions)
	}
	if st.UniversalStageRuns != 0 {
		t.Fatalf("UniversalStageRuns = %d, want 0", st.UniversalStageRuns)
	}
}

// TestDurableDemotionSkipsUncacheable: a read path voting Uncacheable
// must never reach the disk: durability is a stronger claim than
// cacheability, not an exception to it.
func TestDurableDemotionSkipsUncacheable(t *testing.T) {
	d := newDurableWorld(t, Options{})
	d.space.CreateDocument("cam", "u", &property.RepoBitProvider{
		Repo: d.feed, Path: "/cam1", Vote: property.Uncacheable, DisableVerifier: true,
	})
	d.read(t, "cam", "u")
	if ss := d.st.Stats(); ss.Entries != 0 {
		t.Fatalf("uncacheable result reached the disk tier: %+v", ss)
	}
	if st := d.cache.Stats(); st.StoreDemotions != 0 {
		t.Fatalf("StoreDemotions = %d, want 0", st.StoreDemotions)
	}
}
