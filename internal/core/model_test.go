package core

// Model-based consistency fuzzing: a random sequence of operations
// (Placeless writes, out-of-band repository updates, property attach/
// detach/reorder, cache reads for several users) runs against the real
// stack while a simple oracle tracks what every user should see —
// repository content pushed through that user's visible property
// chain. With both consistency mechanisms enabled the cache must never
// serve anything else, no matter the interleaving.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/property"
)

// modelOp enumerates fuzz operations.
type modelOp int

const (
	opRead modelOp = iota
	opWrite
	opDirectUpdate
	opAttach
	opDetach
	opReorder
	numModelOps
)

// oracle mirrors the transformations a user's chain applies.
type oracle struct {
	content []byte              // repository bytes
	chains  map[string][]string // user -> attached property names, in order
}

// modelTransform returns the pure function a named fuzz property
// applies. All fuzz properties are read-path-only so the oracle stays
// simple (repository content is authoritative).
func modelTransform(name string) func([]byte) []byte {
	switch name {
	case "upper":
		return bytes.ToUpper
	case "reverse":
		return func(b []byte) []byte {
			out := make([]byte, len(b))
			for i, c := range b {
				out[len(b)-1-i] = c
			}
			return out
		}
	case "stars":
		return func(b []byte) []byte { return append(append([]byte("*"), b...), '*') }
	default:
		panic("unknown fuzz property " + name)
	}
}

// makeFuzzProperty builds the real Active for a model property name.
func makeFuzzProperty(name string) property.Active {
	return &property.Transformer{
		Base:          property.Base{PropName: name},
		ReadTransform: modelTransform(name),
	}
}

// expected computes what user should currently read.
func (o *oracle) expected(user string) []byte {
	data := append([]byte{}, o.content...)
	for _, name := range o.chains[user] {
		data = modelTransform(name)(data)
	}
	return data
}

func TestModelBasedConsistencyFuzz(t *testing.T) {
	users := []string{"u1", "u2", "u3"}
	propNames := []string{"upper", "reverse", "stars"}

	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := newWorld(t, Options{})
			w.addDoc(t, "d", users[0], "/d", []byte("genesis content"))
			for _, u := range users[1:] {
				if _, err := w.space.AddReference("d", u); err != nil {
					t.Fatal(err)
				}
			}
			o := &oracle{content: []byte("genesis content"), chains: map[string][]string{}}

			version := 0
			for step := 0; step < 300; step++ {
				user := users[rng.Intn(len(users))]
				switch modelOp(rng.Intn(int(numModelOps))) {
				case opRead:
					got, err := w.cache.Read("d", user)
					if err != nil {
						t.Fatalf("step %d: read: %v", step, err)
					}
					want := o.expected(user)
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d: %s read %q, oracle says %q (chain %v)",
							step, user, got, want, o.chains[user])
					}

				case opWrite:
					version++
					// Writes are read-path-transform-free, so the
					// stored bytes equal the written bytes.
					data := []byte(fmt.Sprintf("content v%d by %s", version, user))
					if err := w.cache.Write("d", user, data); err != nil {
						t.Fatalf("step %d: write: %v", step, err)
					}
					o.content = data

				case opDirectUpdate:
					version++
					data := []byte(fmt.Sprintf("out-of-band v%d", version))
					w.clk.Advance(time.Millisecond) // move mtimes
					w.src.UpdateDirect("/d", data)
					o.content = data

				case opAttach:
					name := propNames[rng.Intn(len(propNames))]
					attached := false
					for _, n := range o.chains[user] {
						if n == name {
							attached = true
						}
					}
					if attached {
						continue
					}
					if err := w.space.Attach("d", user, docspace.Personal, makeFuzzProperty(name)); err != nil {
						t.Fatalf("step %d: attach: %v", step, err)
					}
					o.chains[user] = append(o.chains[user], name)

				case opDetach:
					chain := o.chains[user]
					if len(chain) == 0 {
						continue
					}
					idx := rng.Intn(len(chain))
					name := chain[idx]
					if err := w.space.Detach("d", user, docspace.Personal, name); err != nil {
						t.Fatalf("step %d: detach: %v", step, err)
					}
					o.chains[user] = append(chain[:idx:idx], chain[idx+1:]...)

				case opReorder:
					chain := o.chains[user]
					if len(chain) < 2 {
						continue
					}
					perm := rng.Perm(len(chain))
					newOrder := make([]string, len(chain))
					for i, p := range perm {
						newOrder[i] = chain[p]
					}
					if err := w.space.Reorder("d", user, docspace.Personal, newOrder); err != nil {
						t.Fatalf("step %d: reorder: %v", step, err)
					}
					o.chains[user] = newOrder
				}
			}

			// Final sweep: every user's view must match the oracle.
			for _, u := range users {
				got, err := w.cache.Read("d", u)
				if err != nil {
					t.Fatal(err)
				}
				if want := o.expected(u); !bytes.Equal(got, want) {
					t.Fatalf("final: %s sees %q, want %q", u, got, want)
				}
			}
			st := w.cache.Stats()
			if st.Hits == 0 {
				t.Fatal("fuzz run never hit the cache — invalidation too aggressive?")
			}
		})
	}
}
