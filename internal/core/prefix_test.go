package core

import (
	"bytes"
	"testing"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/property"
)

// setupSharedPersonalDoc builds document "d" with one universal
// spell-correct and, per user, a personal chain of [translate,
// watermark]: every user's translate property carries the same memo
// key, so the prefix pipeline can share its output across users.
func setupSharedPersonalDoc(t *testing.T, w *world, users []string) {
	t.Helper()
	w.addDoc(t, "d", users[0], "/d", []byte("the quick brown fox\nand the lazy dog\n"))
	if err := w.space.Attach("d", "", docspace.Universal, property.NewSpellCorrector(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for i, u := range users {
		if i > 0 {
			if _, err := w.space.AddReference("d", u); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.space.Attach("d", u, docspace.Personal, property.NewTranslator(4*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		if err := w.space.Attach("d", u, docspace.Personal, property.NewWatermarker(u, 0)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPrefixSharesPersonalSegmentAcrossUsers: after the first user's
// miss, every further user's miss resumes from the shared translate
// cut and executes only its own watermark — per-user work is one
// segment, not the whole personal chain.
func TestPrefixSharesPersonalSegmentAcrossUsers(t *testing.T) {
	users := memoUsers(6)
	w := newWorld(t, Options{Memoize: true})
	setupSharedPersonalDoc(t, w, users)

	w.read(t, "d", users[0])
	base := w.cache.Stats()
	// First user computes every segment: spell, boundary (merged with
	// spell's cut when no event-only universal props follow — so at
	// least spell/translate/watermark).
	if base.PrefixSegmentRuns < 3 {
		t.Fatalf("first miss ran %d segments, want >= 3", base.PrefixSegmentRuns)
	}

	for _, u := range users[1:] {
		data, info, err := w.cache.ReadWithInfo("d", u)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(data, []byte(u)) {
			t.Fatalf("user %s: personalization missing: %q", u, data)
		}
		if !info.IntermediateHit {
			t.Fatalf("user %s: miss did not resume from a cached prefix", u)
		}
	}
	st := w.cache.Stats()
	if got := st.PrefixSegmentRuns - base.PrefixSegmentRuns; got != int64(len(users)-1) {
		t.Fatalf("followers ran %d segments, want %d (one watermark each)", got, len(users)-1)
	}
	if st.UniversalStageRuns != 1 {
		t.Fatalf("UniversalStageRuns = %d, want 1", st.UniversalStageRuns)
	}
	if st.PrefixHits < int64(len(users)-1) {
		t.Fatalf("PrefixHits = %d, want >= %d", st.PrefixHits, len(users)-1)
	}
}

// TestPrefixCostGateSkipsCheapCuts: with PrefixMinCostPerKB set above
// any cut's recompute density, nothing is admitted to the intermediate
// store — reads stay correct, every install is counted as skipped.
func TestPrefixCostGateSkipsCheapCuts(t *testing.T) {
	users := memoUsers(3)
	gated := newWorld(t, Options{Memoize: true, PrefixMinCostPerKB: time.Hour})
	open := newWorld(t, Options{Memoize: true})
	setupMemoDoc(t, gated, users)
	setupMemoDoc(t, open, users)

	for _, u := range users {
		a := gated.read(t, "d", u)
		b := open.read(t, "d", u)
		if !bytes.Equal(a, b) {
			t.Fatalf("user %s: cost-gated read diverged", u)
		}
	}
	st := gated.cache.Stats()
	if st.PrefixInstalls != 0 || st.IntermediateEntries != 0 {
		t.Fatalf("gate admitted cuts: %+v", st)
	}
	if st.PrefixInstallSkips == 0 {
		t.Fatal("no install skips counted under an unreachable gate")
	}
	// With nothing stored, every user's miss recomputes the universal
	// stage.
	if st.UniversalStageRuns != int64(len(users)) {
		t.Fatalf("UniversalStageRuns = %d, want %d", st.UniversalStageRuns, len(users))
	}
}

// TestSingleCutMemoBaseline: the ablation flag must reproduce the
// original two-segment protocol exactly — one intermediate at the
// universal/personal boundary, no prefix-pipeline activity.
func TestSingleCutMemoBaseline(t *testing.T) {
	users := memoUsers(4)
	w := newWorld(t, Options{Memoize: true, SingleCutMemo: true})
	setupMemoDoc(t, w, users)

	for i, u := range users {
		data, info, err := w.cache.ReadWithInfo("d", u)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(data, []byte(u)) {
			t.Fatalf("user %s: personalization missing", u)
		}
		if wantMemo := i > 0; info.IntermediateHit != wantMemo {
			t.Fatalf("user %s: IntermediateHit = %v, want %v", u, info.IntermediateHit, wantMemo)
		}
	}
	st := w.cache.Stats()
	if st.IntermediateEntries != 1 {
		t.Fatalf("IntermediateEntries = %d, want 1 (boundary only)", st.IntermediateEntries)
	}
	if st.UniversalStageRuns != 1 {
		t.Fatalf("UniversalStageRuns = %d, want 1", st.UniversalStageRuns)
	}
	if st.IntermediateHits != int64(len(users)-1) {
		t.Fatalf("IntermediateHits = %d, want %d", st.IntermediateHits, len(users)-1)
	}
	if st.PrefixHits != 0 || st.PrefixSegmentRuns != 0 {
		t.Fatalf("single-cut baseline drove the prefix pipeline: %+v", st)
	}
}

// TestInvalidateUserSweepsOnlyTheirPersonalCuts: a per-user
// invalidation drops that user's personal cuts and nothing else; the
// re-read resumes from the surviving shared prefix.
func TestInvalidateUserSweepsOnlyTheirPersonalCuts(t *testing.T) {
	users := memoUsers(2)
	w := newWorld(t, Options{Memoize: true})
	setupMemoDoc(t, w, users)
	for _, u := range users {
		w.read(t, "d", u)
	}
	before := w.cache.Stats()

	w.cache.Invalidate("d", users[1])
	mid := w.cache.Stats()
	if got := before.IntermediateEntries - mid.IntermediateEntries; got != 1 {
		t.Fatalf("per-user invalidation dropped %d intermediates, want 1 (their watermark cut)", got)
	}

	_, info, err := w.cache.ReadWithInfo("d", users[1])
	if err != nil {
		t.Fatal(err)
	}
	if info.Hit || !info.IntermediateHit {
		t.Fatalf("info = %+v, want a miss resumed from the surviving prefix", info)
	}
	st := w.cache.Stats()
	if st.UniversalStageRuns != 1 {
		t.Fatalf("UniversalStageRuns = %d, want 1 (universal cuts must survive)", st.UniversalStageRuns)
	}
	if got := st.PrefixSegmentRuns - mid.PrefixSegmentRuns; got != 1 {
		t.Fatalf("re-read ran %d segments, want 1 (watermark only)", got)
	}
}
