package core

import (
	"testing"
	"time"
)

// TestFlushTimerDuringMissFillDoesNotDeadlock provokes the
// flush-during-invalidate schedule on the virtual clock:
//
//  1. a read of d installs the cache's base notifier on d,
//  2. a write-back write of d leaves d dirty,
//  3. a miss on d2 sleeps FillCost on the virtual clock; the periodic
//     flush timer (FlushEvery < FillCost) fires synchronously on the
//     sleeping goroutine, so Flush → WriteDocument(d) → contentWritten
//     → base notifier → invalidateDoc(d) all run nested inside the
//     miss that is mid-fill.
//
// A cache that sleeps while holding the lock the notifier needs
// self-deadlocks here (the seed implementation did exactly that). The
// fix keeps every lock released across clock sleeps and docspace
// calls; this test pins that, failing by timeout if the schedule ever
// wedges again.
func TestFlushTimerDuringMissFillDoesNotDeadlock(t *testing.T) {
	w := newWorld(t, Options{
		Mode:       WriteBack,
		FlushEvery: 10 * time.Millisecond,
		FillCost:   50 * time.Millisecond,
	})
	w.addDoc(t, "d", "eyal", "/d", []byte("original"))
	w.addDoc(t, "d2", "eyal", "/d2", []byte("other"))

	done := make(chan error, 1)
	go func() {
		// Install the base notifier on d, then dirty it.
		if _, err := w.cache.Read("d", "eyal"); err != nil {
			done <- err
			return
		}
		if err := w.cache.Write("d", "eyal", []byte("updated")); err != nil {
			done <- err
			return
		}
		// Miss on d2: the FillCost sleep advances the virtual clock
		// past the flush deadline, firing Flush (and the nested
		// invalidation of d) on this very goroutine.
		_, err := w.cache.Read("d2", "eyal")
		done <- err
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: flush fired during a miss fill never completed")
	}

	if d := w.cache.Dirty(); d != 0 {
		t.Fatalf("dirty entries after timer flush: %d", d)
	}
	if st := w.cache.Stats(); st.Flushes == 0 {
		t.Fatalf("flush timer never flushed: %+v", st)
	}
	// The flushed content must be what a fresh read observes.
	if data := w.read(t, "d", "eyal"); string(data) != "updated" {
		t.Fatalf("post-flush read = %q, want %q", data, "updated")
	}
}
