package core_test

import (
	"fmt"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// Example demonstrates the whole cache lifecycle: a personalized
// document, a miss, a hit, and a notifier-driven invalidation when
// another user writes.
func Example() {
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC))
	disk := repo.NewMem("disk", clk, simnet.Local(1))
	space := docspace.New(clk, nil)

	disk.Store("/memo", []byte("teh memo"))
	space.CreateDocument("memo", "alice", &property.RepoBitProvider{Repo: disk, Path: "/memo"})
	space.AddReference("memo", "bob")
	space.Attach("memo", "alice", docspace.Personal, property.NewSpellCorrector(0))

	cache := core.New(space, core.Options{})

	data, _ := cache.Read("memo", "alice") // miss: full read path
	fmt.Printf("alice sees: %s\n", data)
	data, _ = cache.Read("memo", "alice") // hit
	fmt.Printf("alice again: %s\n", data)

	cache.Write("memo", "bob", []byte("teh memo, edited")) // invalidates
	data, _ = cache.Read("memo", "alice")
	fmt.Printf("after bob's edit: %s\n", data)

	st := cache.Stats()
	fmt.Printf("hits=%d misses=%d invalidations=%d\n", st.Hits, st.Misses, st.Invalidations)
	// Output:
	// alice sees: the memo
	// alice again: the memo
	// after bob's edit: the memo, edited
	// hits=1 misses=2 invalidations=1
}
