package core

// Experiment E7 (DESIGN.md): correctness of the consistency machinery
// under every invalidation cause the paper enumerates in §3:
//
//  1. the original source is modified — inside Placeless control
//     (snooped write → notifier) and outside it (direct repository
//     update → verifier);
//  2. active properties are added, deleted or modified;
//  3. the order of the active properties changes;
//  4. information used by active properties changes — tracked by a
//     verifier, a notifier, or a significance threshold.
//
// Each test drives the full stack (repository → docspace → cache) and
// asserts the user never observes stale content after the change.

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/property"
)

func TestCause1InsidePlacelessControl(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1"))
	w.space.AddReference("d", "doug")
	w.read(t, "d", "eyal")

	w.space.WriteDocument("d", "doug", []byte("v2"))
	if got := w.read(t, "d", "eyal"); string(got) != "v2" {
		t.Fatalf("stale after controlled write: %q", got)
	}
	// Push-based: the notifier invalidated before the read, so no
	// verifier reject was needed.
	if st := w.cache.Stats(); st.VerifierRejects != 0 {
		t.Fatalf("VerifierRejects = %d, want notifier-driven invalidation", st.VerifierRejects)
	}
}

func TestCause1OutsidePlacelessControl(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("v1"))
	w.read(t, "d", "eyal")
	w.clk.Advance(time.Second)
	w.src.UpdateDirect("/d", []byte("v2"))
	if got := w.read(t, "d", "eyal"); string(got) != "v2" {
		t.Fatalf("stale after uncontrolled write: %q", got)
	}
	if st := w.cache.Stats(); st.VerifierRejects != 1 {
		t.Fatalf("VerifierRejects = %d, want verifier-driven invalidation", st.VerifierRejects)
	}
}

func TestCause2AddDeleteModify(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("the document"))

	// Add.
	w.read(t, "d", "eyal")
	w.space.Attach("d", "eyal", docspace.Personal, property.NewTranslator(0))
	if got := w.read(t, "d", "eyal"); string(got) != "le document" {
		t.Fatalf("after add: %q", got)
	}
	// Modify (upgrade).
	upgraded := property.NewUppercaser(0)
	w.space.Replace("d", "eyal", docspace.Personal, "translate-fr", upgraded)
	if got := w.read(t, "d", "eyal"); string(got) != "THE DOCUMENT" {
		t.Fatalf("after modify: %q", got)
	}
	// Delete.
	w.space.Detach("d", "eyal", docspace.Personal, "uppercase")
	if got := w.read(t, "d", "eyal"); string(got) != "the document" {
		t.Fatalf("after delete: %q", got)
	}
}

func TestCause3Reorder(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("alpha\nbeta\ngamma\n"))
	w.space.Attach("d", "eyal", docspace.Personal, property.NewSummarizer(2, 0))
	w.space.Attach("d", "eyal", docspace.Personal, property.NewLineNumberer(0))
	before := w.read(t, "d", "eyal")
	w.space.Reorder("d", "eyal", docspace.Personal, []string{"line-number", "summarize-2"})
	after := w.read(t, "d", "eyal")
	if bytes.Equal(before, after) {
		t.Fatal("served content identical across reorder")
	}
	// Reordering back restores the original view.
	w.space.Reorder("d", "eyal", docspace.Personal, []string{"summarize-2", "line-number"})
	restored := w.read(t, "d", "eyal")
	if !bytes.Equal(before, restored) {
		t.Fatalf("restore mismatch: %q vs %q", before, restored)
	}
}

func TestCause4ExternalInfoByVerifier(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("portfolio:"))
	quote := property.NewExternalVar("XRX", 55)
	w.space.Attach("d", "eyal", docspace.Personal, property.NewExternalInfo(quote, property.ByVerifier, 0))

	first := w.read(t, "d", "eyal")
	if !strings.Contains(string(first), "XRX = 55.00") {
		t.Fatalf("first read %q", first)
	}
	quote.Set(60)
	second := w.read(t, "d", "eyal")
	if !strings.Contains(string(second), "XRX = 60.00") {
		t.Fatalf("stale external info: %q", second)
	}
	if st := w.cache.Stats(); st.VerifierRejects != 1 {
		t.Fatalf("VerifierRejects = %d", st.VerifierRejects)
	}
}

func TestCause4ExternalInfoByNotifier(t *testing.T) {
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("portfolio:"))
	quote := property.NewExternalVar("XRX", 55)
	x := property.NewExternalInfo(quote, property.ByNotifier, 0)
	x.NotifyChange = func() { w.space.SignalExternalChange("d", "quote:XRX") }
	w.space.Attach("d", "eyal", docspace.Personal, x)

	w.read(t, "d", "eyal")
	quote.Set(60)
	got := w.read(t, "d", "eyal")
	if !strings.Contains(string(got), "XRX = 60.00") {
		t.Fatalf("stale after push: %q", got)
	}
	st := w.cache.Stats()
	if st.VerifierRejects != 0 {
		t.Fatalf("VerifierRejects = %d, want push-based consistency", st.VerifierRejects)
	}
	if st.Notifications == 0 {
		t.Fatal("no notification recorded")
	}
}

func TestCause4ExternalInfoByThreshold(t *testing.T) {
	// The financial-portfolio policy: small fluctuations keep serving
	// cached content; significant moves invalidate.
	w := newWorld(t, Options{})
	w.addDoc(t, "d", "eyal", "/d", []byte("portfolio:"))
	quote := property.NewExternalVar("XRX", 100)
	x := property.NewExternalInfo(quote, property.ByThreshold, 0)
	x.Tolerance = 5
	w.space.Attach("d", "eyal", docspace.Personal, x)

	w.read(t, "d", "eyal")
	quote.Set(102) // insignificant
	if got := w.read(t, "d", "eyal"); !strings.Contains(string(got), "XRX = 100.00") {
		t.Fatalf("insignificant change refetched: %q", got)
	}
	quote.Set(120) // significant
	if got := w.read(t, "d", "eyal"); !strings.Contains(string(got), "XRX = 120.00") {
		t.Fatalf("significant change missed: %q", got)
	}
}

func TestComposedDocumentMultiSourceConsistency(t *testing.T) {
	// News-summary scenario: a document composed from two web sites;
	// the composite verifier must invalidate when either source
	// changes.
	w := newWorld(t, Options{})
	w.src.Store("/feedA", []byte("A1"))
	w.src.Store("/feedB", []byte("B1"))
	composed := &property.ComposedBitProvider{
		ProviderName: "news",
		Parts: []*property.RepoBitProvider{
			{Repo: w.src, Path: "/feedA"},
			{Repo: w.src, Path: "/feedB"},
		},
		Separator: []byte(" | "),
	}
	w.space.CreateDocument("news", "u", composed)
	if got := w.read(t, "news", "u"); string(got) != "A1 | B1" {
		t.Fatalf("composed read %q", got)
	}
	w.read(t, "news", "u") // hit
	w.clk.Advance(time.Second)
	w.src.UpdateDirect("/feedB", []byte("B2"))
	if got := w.read(t, "news", "u"); string(got) != "A1 | B2" {
		t.Fatalf("stale composed read %q", got)
	}
	st := w.cache.Stats()
	if st.Hits != 1 || st.VerifierRejects != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: after any sequence of controlled writes, a cached read
// always returns the last written content (cache transparency under
// cause 1).
func TestCacheTransparencyProperty(t *testing.T) {
	f := func(writes [][]byte) bool {
		if len(writes) == 0 || len(writes) > 12 {
			return true
		}
		w := newWorld(t, Options{})
		w.addDoc(t, "d", "eyal", "/d", []byte("initial"))
		for _, data := range writes {
			if err := w.cache.Write("d", "eyal", data); err != nil {
				return false
			}
			got, err := w.cache.Read("d", "eyal")
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
			// A second read must hit and still agree.
			got2, err := w.cache.Read("d", "eyal")
			if err != nil || !bytes.Equal(got2, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: cached reads agree byte-for-byte with direct docspace
// reads for arbitrary personalization chains.
func TestCacheEqualsDirectReadProperty(t *testing.T) {
	chains := [][]func() property.Active{
		{},
		{func() property.Active { return property.NewUppercaser(0) }},
		{func() property.Active { return property.NewTranslator(0) }},
		{func() property.Active { return property.NewSummarizer(2, 0) }},
		{
			func() property.Active { return property.NewTranslator(0) },
			func() property.Active { return property.NewLineNumberer(0) },
		},
	}
	f := func(content []byte, chainIdx uint8) bool {
		w := newWorld(t, Options{})
		w.addDoc(t, "d", "eyal", "/d", content)
		for _, mk := range chains[int(chainIdx)%len(chains)] {
			if err := w.space.Attach("d", "eyal", docspace.Personal, mk()); err != nil {
				return false
			}
		}
		direct, _, err := w.space.ReadDocument("d", "eyal")
		if err != nil {
			return false
		}
		miss, err := w.cache.Read("d", "eyal")
		if err != nil {
			return false
		}
		hit, err := w.cache.Read("d", "eyal")
		if err != nil {
			return false
		}
		return bytes.Equal(direct, miss) && bytes.Equal(miss, hit)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
