package core

// Failure-injection tests: the cache must degrade safely when
// repositories fail — read errors propagate without corrupting cache
// state, failing verifier polls are treated as invalid (fail-safe),
// and recovery after an outage is complete.

import (
	"errors"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// flakyWorld wires a Flaky repository behind a space and cache.
func flakyWorld(t *testing.T) (*repo.Flaky, *repo.Mem, *Cache, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	inner := repo.NewMem("mem", clk, simnet.Local(1))
	flaky := repo.NewFlaky(inner)
	space := docspace.New(clk, nil)
	inner.Store("/d", []byte("content"))
	if _, err := space.CreateDocument("d", "u", &property.RepoBitProvider{Repo: flaky, Path: "/d"}); err != nil {
		t.Fatal(err)
	}
	return flaky, inner, New(space, Options{}), clk
}

func TestReadErrorPropagatesCleanly(t *testing.T) {
	flaky, _, cache, _ := flakyWorld(t)
	flaky.Outage(10)
	if _, err := cache.Read("d", "u"); !errors.Is(err, repo.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if cache.Len() != 0 {
		t.Fatal("failed read left an entry behind")
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats polluted by failed read: %+v", st)
	}
}

func TestRecoveryAfterOutage(t *testing.T) {
	flaky, _, cache, _ := flakyWorld(t)
	flaky.Outage(2)
	cache.Read("d", "u") // fails (fetch)
	if data, err := cache.Read("d", "u"); err != nil {
		// Depending on op accounting the second read may still fail;
		// the third must succeed.
		if data, err = cache.Read("d", "u"); err != nil || string(data) != "content" {
			t.Fatalf("no recovery after outage: %q, %v", data, err)
		}
	}
	if data, err := cache.Read("d", "u"); err != nil || string(data) != "content" {
		t.Fatalf("read after recovery: %q, %v", data, err)
	}
}

func TestVerifierPollFailureIsFailSafe(t *testing.T) {
	// A cached entry whose mtime verifier cannot reach the source
	// must be treated as invalid and refetched, not served stale.
	flaky, inner, cache, clk := flakyWorld(t)
	if _, err := cache.Read("d", "u"); err != nil {
		t.Fatal(err)
	}
	// The source changes out-of-band while the repo is flaky: the
	// next hit's Stat poll fails.
	clk.Advance(time.Second)
	inner.UpdateDirect("/d", []byte("changed"))
	flaky.FailEvery(1, false, false, true) // fail all stats
	data, err := cache.Read("d", "u")
	if err != nil {
		t.Fatalf("read failed outright: %v", err)
	}
	if string(data) != "changed" {
		t.Fatalf("served %q despite unverifiable entry", data)
	}
	st := cache.Stats()
	if st.VerifierRejects != 1 {
		t.Fatalf("VerifierRejects = %d, want fail-safe invalidation", st.VerifierRejects)
	}
}

func TestWriteFailureSurfacesAndCacheStaysCoherent(t *testing.T) {
	flaky, _, cache, _ := flakyWorld(t)
	if _, err := cache.Read("d", "u"); err != nil {
		t.Fatal(err)
	}
	flaky.FailEvery(1, false, true, false) // all stores fail
	if err := cache.Write("d", "u", []byte("lost")); !errors.Is(err, repo.ErrInjected) {
		t.Fatalf("write err = %v", err)
	}
	flaky.FailEvery(0, false, false, false)
	// The failed write never reached the repository; reads must keep
	// returning the original content.
	data, err := cache.Read("d", "u")
	if err != nil || string(data) != "content" {
		t.Fatalf("after failed write: %q, %v", data, err)
	}
}

func TestFlakyOpsCounter(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	inner := repo.NewMem("m", clk, simnet.NewPath("p", 1))
	flaky := repo.NewFlaky(inner)
	inner.Store("/x", []byte("1"))
	flaky.Fetch("/x")
	flaky.Stat("/x")
	flaky.Store("/x", []byte("2"))
	if flaky.Ops() != 3 {
		t.Fatalf("Ops = %d", flaky.Ops())
	}
	if flaky.Name() != "flaky:m" {
		t.Fatalf("Name = %q", flaky.Name())
	}
}
