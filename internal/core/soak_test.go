package core

// Soak tests: the cache under sustained mixed office workloads —
// reads, Placeless writes, out-of-band updates, and property churn —
// checking global invariants rather than specific outcomes.

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/trace"
)

// runOfficeSoak drives the workload and verifies every read against a
// direct middleware read.
func runOfficeSoak(t *testing.T, cfg trace.OfficeConfig, opts Options) *world {
	t.Helper()
	w := newWorld(t, opts)
	// pad grows content to a few hundred bytes so capacity budgets
	// in the soak configurations actually bind.
	pad := func(s string) []byte {
		b := make([]byte, 512)
		copy(b, s)
		return b
	}
	for i := 0; i < cfg.Docs; i++ {
		id := trace.DocID(i)
		w.addDoc(t, id, "owner", "/"+id, pad("initial "+id))
		for u := 0; u < cfg.Users; u++ {
			if _, err := w.space.AddReference(id, trace.UserID(u)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Per-(doc,user) attached property names for detach/reorder.
	chains := map[string][]string{}
	ck := func(doc, user string) string { return doc + "/" + user }

	for i, op := range trace.GenerateOffice(cfg) {
		switch op.Kind {
		case trace.OpRead:
			got, err := w.cache.Read(op.Doc, op.User)
			if err != nil {
				t.Fatalf("op %d read: %v", i, err)
			}
			want, _, err := w.space.ReadDocument(op.Doc, op.User)
			if err != nil {
				t.Fatalf("op %d direct read: %v", i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: cache served %q, middleware says %q", i, got, want)
			}

		case trace.OpWrite:
			data := pad(fmt.Sprintf("write %d by %s", op.Arg, op.User))
			if err := w.cache.Write(op.Doc, op.User, data); err != nil {
				t.Fatalf("op %d write: %v", i, err)
			}

		case trace.OpDirectUpdate:
			w.clk.Advance(time.Millisecond)
			w.src.UpdateDirect("/"+op.Doc, pad(fmt.Sprintf("direct %d", op.Arg)))

		case trace.OpAttach:
			name := fmt.Sprintf("p%d", op.Arg)
			p := &property.Transformer{
				Base:          property.Base{PropName: name},
				ReadTransform: func(b []byte) []byte { return append([]byte("«"), append(b, []byte("»")...)...) },
			}
			if err := w.space.Attach(op.Doc, op.User, docspace.Personal, p); err == nil {
				k := ck(op.Doc, op.User)
				chains[k] = append(chains[k], name)
			}

		case trace.OpDetach:
			k := ck(op.Doc, op.User)
			if n := len(chains[k]); n > 0 {
				name := chains[k][op.Arg%n]
				if err := w.space.Detach(op.Doc, op.User, docspace.Personal, name); err != nil {
					t.Fatalf("op %d detach: %v", i, err)
				}
				out := chains[k][:0]
				for _, c := range chains[k] {
					if c != name {
						out = append(out, c)
					}
				}
				chains[k] = out
			}

		case trace.OpReorder:
			k := ck(op.Doc, op.User)
			if n := len(chains[k]); n > 1 {
				// Rotate the chain by one.
				rotated := append(append([]string{}, chains[k][1:]...), chains[k][0])
				if err := w.space.Reorder(op.Doc, op.User, docspace.Personal, rotated); err != nil {
					t.Fatalf("op %d reorder: %v", i, err)
				}
				chains[k] = rotated
			}
		}
	}
	return w
}

func TestOfficeSoakUnbounded(t *testing.T) {
	w := runOfficeSoak(t, trace.DefaultOfficeConfig(), Options{})
	st := w.cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("degenerate soak: %+v", st)
	}
	if st.BytesStored > st.BytesLogical {
		t.Fatalf("stored %d > logical %d", st.BytesStored, st.BytesLogical)
	}
}

func TestOfficeSoakCapacityInvariant(t *testing.T) {
	cfg := trace.DefaultOfficeConfig()
	cfg.Length = 600
	const capacity = 2048
	w := runOfficeSoak(t, cfg, Options{Capacity: capacity})
	st := w.cache.Stats()
	if st.BytesStored > capacity {
		t.Fatalf("BytesStored %d exceeds capacity %d", st.BytesStored, capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("capacity soak produced no evictions")
	}
}

// Property: under random tiny office workloads with a byte budget, the
// unique-bytes invariant holds after every configuration.
func TestCapacityNeverExceededProperty(t *testing.T) {
	f := func(seed int64, capKB uint8) bool {
		cfg := trace.OfficeConfig{
			Docs: 6, Users: 2, Length: 120,
			WriteFrac: 0.15, DirectFrac: 0.05, PropFrac: 0.15,
			Seed: seed,
		}
		capacity := int64(capKB%8+1) * 256
		w := runOfficeSoak(t, cfg, Options{Capacity: capacity})
		st := w.cache.Stats()
		return st.BytesStored <= capacity && st.BytesStored >= 0 && st.BytesLogical >= st.BytesStored
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
