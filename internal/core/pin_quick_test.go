package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"placeless/internal/replace"
)

// TestQuickEvictNeverTakesPinnedEntry: the replacement policy must
// never evict an entry whose key has an in-flight single-flight read —
// a reader is mid-verify/mid-install on it — while still enforcing the
// budget once the flight clears. The property is checked over random
// document counts and pin subsets by registering artificial flights
// directly in the shard flight tables (exactly the state a concurrent
// reader would leave) and forcing eviction via Resize.
func TestQuickEvictNeverTakesPinnedEntry(t *testing.T) {
	const docSize = 64
	const capacity = docSize + docSize/2 // fewer than two entries fit

	f := func(nDocs uint8, pinMask uint16) bool {
		n := int(nDocs%12) + 2 // 2..13 documents
		w := newWorld(t, Options{Policy: replace.NewGDS()})

		docs := make([]string, n)
		for i := range docs {
			docs[i] = fmt.Sprintf("d%d", i)
			// Unique content per doc so no blobs are shared and every
			// eviction frees real bytes.
			content := make([]byte, docSize)
			for j := range content {
				content[j] = byte(i*31 + j)
			}
			w.addDoc(t, docs[i], "u", "/"+docs[i], content)
			w.read(t, docs[i], "u")
		}

		// Pin a subset with artificial in-flight reads.
		pinned := make(map[string]bool)
		fakes := make(map[string]*flight)
		for i, d := range docs {
			if pinMask&(1<<uint(i)) == 0 {
				continue
			}
			k := key(d, "u")
			fl := &flight{done: make(chan struct{})}
			sh := w.cache.idx.shardFor(k)
			sh.mu.Lock()
			sh.flights[k] = fl
			sh.mu.Unlock()
			pinned[k] = true
			fakes[k] = fl
		}

		w.cache.Resize(capacity) // force eviction far below the working set

		// Every pinned entry must have survived.
		for k := range pinned {
			doc, user := splitKey(k)
			if !w.cache.Contains(doc, user) {
				t.Logf("pinned entry %q evicted (n=%d mask=%04x)", k, n, pinMask)
				return false
			}
		}

		// Release the flights; the budget must then be enforceable.
		for k, fl := range fakes {
			sh := w.cache.idx.shardFor(k)
			sh.mu.Lock()
			delete(sh.flights, k)
			sh.mu.Unlock()
			close(fl.done)
		}
		w.cache.Resize(capacity)
		if stored := w.cache.stats.bytesStored.Load(); stored > capacity {
			t.Logf("budget not enforced after unpin: stored=%d cap=%d", stored, capacity)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEvictReinsertSkipsReplacedEntry: if the flight that pinned a key
// finishes (replacing the entry) between the skip and the re-insert,
// the policy must not end up tracking a ghost key. Simulated by
// dropping the entry while pinned, then resizing again: Victim must
// not spin and the budget loop must terminate.
func TestEvictPinnedThenInvalidatedDoesNotGhost(t *testing.T) {
	w := newWorld(t, Options{Policy: replace.NewGDS()})
	w.addDoc(t, "a", "u", "/a", make([]byte, 64))
	w.read(t, "a", "u")

	k := key("a", "u")
	fl := &flight{done: make(chan struct{})}
	sh := w.cache.idx.shardFor(k)
	sh.mu.Lock()
	sh.flights[k] = fl
	sh.mu.Unlock()

	w.cache.Resize(16) // pinned: survives, goes through remove+reinsert

	// Invalidate underneath (simulates the racing replacement).
	sh.mu.Lock()
	c := w.cache
	c.dropShardLocked(sh, k)
	sh.mu.Unlock()

	sh.mu.Lock()
	delete(sh.flights, k)
	sh.mu.Unlock()
	close(fl.done)

	// Must terminate (no ghost key keeps Victim returning a phantom)
	// and end at zero bytes.
	w.cache.Resize(16)
	if stored := w.cache.stats.bytesStored.Load(); stored != 0 {
		t.Fatalf("stored = %d after dropping the only entry", stored)
	}
}
