package core

import (
	"placeless/internal/event"
	"placeless/internal/property"
)

// Write stores new content for (doc, user) through the cache.
//
// In write-through mode (the paper's default assumption) the write is
// forwarded to the Placeless system immediately: the full write path
// runs, contentWritten fires, and the cache's own notifier invalidates
// the affected entries.
//
// In write-back mode the data is buffered in the cache; the paper
// notes that write-path properties may still need to observe write
// operations, so getOutputStream events are forwarded per write while
// the content itself is deferred until Flush.
func (c *Cache) Write(doc, user string, data []byte) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if c.opts.Mode == WriteThrough {
		return c.space.WriteDocument(doc, user, data)
	}

	// Write-back: buffer the content. getOutputStream is forwarded
	// only when a write-path property registered its cacheability
	// requirement for it (paper §3) — "for most properties it is
	// likely to be sufficient if they execute on the write-back
	// operation", so the default is no per-write forwarding.
	k := key(doc, user)
	c.writeMu.Lock()
	c.dirty[k] = &dirtyWrite{data: append([]byte{}, data...)}
	overflow := c.opts.MaxDirty > 0 && len(c.dirty) > c.opts.MaxDirty
	c.writeMu.Unlock()
	// The locally buffered write makes cached read versions of this
	// document stale for this user only after flush; conservatively
	// drop the user's read entry now so reads observe their own
	// writes once flushed.
	sh := c.idx.shardFor(k)
	sh.mu.Lock()
	c.dropShardLocked(sh, k)
	sh.mu.Unlock()
	if c.writeVote(doc, user) >= property.CacheWithEvents {
		c.forward(doc, user, event.GetOutputStream)
	}
	if overflow {
		return c.Flush()
	}
	return nil
}

// writeVote returns the aggregate write-path cacheability vote for
// (doc, user), queried fresh each time so property changes are always
// respected (the query is pure vote collection, no content moves).
func (c *Cache) writeVote(doc, user string) property.Cacheability {
	vote, err := c.space.WritePathVote(doc, user)
	if err != nil {
		return property.Unrestricted
	}
	return vote
}

// Dirty reports how many write-back entries await flushing.
func (c *Cache) Dirty() int {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return len(c.dirty)
}

// DirtyFor reports whether (doc, user) has a buffered write-back write
// that has not been flushed. The simulation oracle uses it to resolve
// which side of a Flush/Write race a buffered write landed on.
func (c *Cache) DirtyFor(doc, user string) bool {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, ok := c.dirty[key(doc, user)]
	return ok
}

// Flush pushes all buffered write-back content through the Placeless
// write path. The first error aborts the flush; already-flushed
// entries stay flushed.
//
// Lock ordering: the dirty set is snapshotted under writeMu, and every
// WriteDocument runs with no cache lock held — the write path
// dispatches contentWritten, whose notifier callback re-enters the
// entry table (shard locks). A flush triggered mid-invalidate (or an
// invalidate landing mid-flush) therefore interleaves freely instead
// of deadlocking; the dedicated interleaving test provokes exactly
// that schedule on the virtual clock.
//
// Two guards keep a Write racing a Flush from being lost (found by the
// simulation harness's stale-read oracle):
//   - flushMu serializes whole flush runs, so a flush carrying an older
//     snapshot can never store on top of a newer one;
//   - the dirty entry is removed only if it is still the exact buffer
//     the snapshot captured — a Write that replaced it mid-flush stays
//     buffered for the next cycle instead of being silently dropped.
func (c *Cache) Flush() error {
	type pending struct {
		doc, user string
		w         *dirtyWrite
	}
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	c.writeMu.Lock()
	var todo []pending
	for k, w := range c.dirty {
		doc, user := splitKey(k)
		todo = append(todo, pending{doc: doc, user: user, w: w})
	}
	c.writeMu.Unlock()

	for _, p := range todo {
		if err := c.space.WriteDocument(p.doc, p.user, p.w.data); err != nil {
			return err
		}
		c.writeMu.Lock()
		if cur := c.dirty[key(p.doc, p.user)]; cur == p.w {
			delete(c.dirty, key(p.doc, p.user))
		}
		c.writeMu.Unlock()
		c.stats.flushes.Inc()
	}
	return nil
}

// splitKey is the inverse of key.
func splitKey(k string) (doc, user string) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}
