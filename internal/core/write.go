package core

import (
	"placeless/internal/event"
	"placeless/internal/property"
)

// Write stores new content for (doc, user) through the cache.
//
// In write-through mode (the paper's default assumption) the write is
// forwarded to the Placeless system immediately: the full write path
// runs, contentWritten fires, and the cache's own notifier invalidates
// the affected entries.
//
// In write-back mode the data is buffered in the cache; the paper
// notes that write-path properties may still need to observe write
// operations, so getOutputStream events are forwarded per write while
// the content itself is deferred until Flush.
func (c *Cache) Write(doc, user string, data []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	mode := c.opts.Mode
	c.mu.Unlock()

	if mode == WriteThrough {
		return c.space.WriteDocument(doc, user, data)
	}

	// Write-back: buffer the content. getOutputStream is forwarded
	// only when a write-path property registered its cacheability
	// requirement for it (paper §3) — "for most properties it is
	// likely to be sufficient if they execute on the write-back
	// operation", so the default is no per-write forwarding.
	c.mu.Lock()
	c.dirty[key(doc, user)] = &dirtyWrite{data: append([]byte{}, data...)}
	// The locally buffered write makes cached read versions of this
	// document stale for this user only after flush; conservatively
	// drop the user's read entry now so reads observe their own
	// writes once flushed.
	c.dropLocked(key(doc, user))
	overflow := c.opts.MaxDirty > 0 && len(c.dirty) > c.opts.MaxDirty
	c.mu.Unlock()
	if c.writeVote(doc, user) >= property.CacheWithEvents {
		c.forward(doc, user, event.GetOutputStream)
	}
	if overflow {
		return c.Flush()
	}
	return nil
}

// writeVote returns the aggregate write-path cacheability vote for
// (doc, user), queried fresh each time so property changes are always
// respected (the query is pure vote collection, no content moves).
func (c *Cache) writeVote(doc, user string) property.Cacheability {
	vote, err := c.space.WritePathVote(doc, user)
	if err != nil {
		return property.Unrestricted
	}
	return vote
}

// Dirty reports how many write-back entries await flushing.
func (c *Cache) Dirty() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.dirty)
}

// Flush pushes all buffered write-back content through the Placeless
// write path. The first error aborts the flush; already-flushed
// entries stay flushed.
func (c *Cache) Flush() error {
	c.mu.Lock()
	type pending struct {
		doc, user string
		data      []byte
	}
	var todo []pending
	for k, w := range c.dirty {
		doc, user := splitKey(k)
		todo = append(todo, pending{doc: doc, user: user, data: w.data})
	}
	c.mu.Unlock()

	for _, p := range todo {
		if err := c.space.WriteDocument(p.doc, p.user, p.data); err != nil {
			return err
		}
		c.mu.Lock()
		delete(c.dirty, key(p.doc, p.user))
		c.stats.Flushes++
		c.mu.Unlock()
	}
	return nil
}

// splitKey is the inverse of key.
func splitKey(k string) (doc, user string) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}
