package nfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

type env struct {
	clk   *clock.Virtual
	src   *repo.Mem
	space *docspace.Space
	cache *core.Cache
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	src := repo.NewMem("fs", clk, simnet.Local(1))
	space := docspace.New(clk, nil)
	return &env{clk: clk, src: src, space: space, cache: core.New(space, core.Options{})}
}

func (e *env) addDoc(t *testing.T, id, owner string, content []byte) {
	t.Helper()
	e.src.Store("/"+id, content)
	if _, err := e.space.CreateDocument(id, owner, &property.RepoBitProvider{Repo: e.src, Path: "/" + id}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFileWriteFile(t *testing.T) {
	e := newEnv(t)
	e.addDoc(t, "hotos.doc", "eyal", []byte("draft"))
	fs := Mount(e.space, "eyal")
	data, err := fs.ReadFile("hotos.doc")
	if err != nil || string(data) != "draft" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if err := fs.WriteFile("hotos.doc", []byte("draft v2")); err != nil {
		t.Fatal(err)
	}
	data, _ = fs.ReadFile("hotos.doc")
	if string(data) != "draft v2" {
		t.Fatalf("after write: %q", data)
	}
}

func TestOpenReadSeek(t *testing.T) {
	e := newEnv(t)
	e.addDoc(t, "d", "eyal", []byte("0123456789"))
	fs := Mount(e.space, "eyal")
	f, err := fs.Open("d")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	buf := make([]byte, 4)
	n, err := f.Read(buf)
	if err != nil || n != 4 || string(buf) != "0123" {
		t.Fatalf("read = %q, %d, %v", buf, n, err)
	}
	if pos, err := f.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("seek = %d, %v", pos, err)
	}
	f.Read(buf)
	if string(buf) != "2345" {
		t.Fatalf("after seek read %q", buf)
	}
	if pos, _ := f.Seek(-2, io.SeekEnd); pos != 8 {
		t.Fatalf("seek end = %d", pos)
	}
	if pos, _ := f.Seek(1, io.SeekCurrent); pos != 9 {
		t.Fatalf("seek current = %d", pos)
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
	if _, err := f.Seek(-100, io.SeekStart); err == nil {
		t.Fatal("negative position accepted")
	}
	if f.Size() != 10 || f.Name() != "d" {
		t.Fatalf("Size/Name = %d/%s", f.Size(), f.Name())
	}
}

func TestReadAt(t *testing.T) {
	e := newEnv(t)
	e.addDoc(t, "d", "eyal", []byte("abcdef"))
	fs := Mount(e.space, "eyal")
	f, _ := fs.Open("d")
	defer f.Close()
	buf := make([]byte, 3)
	if n, err := f.ReadAt(buf, 2); err != nil || n != 3 || string(buf) != "cde" {
		t.Fatalf("ReadAt = %q, %d, %v", buf, n, err)
	}
	if n, err := f.ReadAt(buf, 5); err != io.EOF || n != 1 {
		t.Fatalf("short ReadAt = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("past-end ReadAt err = %v", err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestEOFSemantics(t *testing.T) {
	e := newEnv(t)
	e.addDoc(t, "d", "eyal", []byte("ab"))
	fs := Mount(e.space, "eyal")
	f, _ := fs.Open("d")
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "ab" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	if _, err := f.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestCreateBuffersUntilClose(t *testing.T) {
	e := newEnv(t)
	e.addDoc(t, "d", "eyal", []byte("old"))
	fs := Mount(e.space, "eyal")
	f, err := fs.Create("d")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "new ")
	io.WriteString(f, "content")
	// Not yet visible.
	if data, _ := fs.ReadFile("d"); string(data) != "old" {
		t.Fatalf("write leaked before close: %q", data)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if data, _ := fs.ReadFile("d"); string(data) != "new content" {
		t.Fatalf("after close: %q", data)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestModeEnforcement(t *testing.T) {
	e := newEnv(t)
	e.addDoc(t, "d", "eyal", []byte("x"))
	fs := Mount(e.space, "eyal")
	r, _ := fs.Open("d")
	if _, err := r.Write([]byte("no")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on read handle: %v", err)
	}
	w, _ := fs.Create("d")
	if _, err := w.Read(make([]byte, 1)); !errors.Is(err, ErrWriteOnly) {
		t.Fatalf("read on write handle: %v", err)
	}
	if _, err := w.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrWriteOnly) {
		t.Fatalf("readAt on write handle: %v", err)
	}
	if _, err := w.Seek(0, io.SeekStart); err == nil {
		t.Fatal("seek on write handle accepted")
	}
	r.Close()
	w.Close()
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestPerUserViews(t *testing.T) {
	// The NFS layer exposes each user's personalized view, as the
	// paper's Figure 2 shows for MS-Word.
	e := newEnv(t)
	e.addDoc(t, "d", "eyal", []byte("teh draft"))
	e.space.AddReference("d", "paul")
	e.space.Attach("d", "eyal", docspace.Personal, property.NewSpellCorrector(0))
	eyalFS := Mount(e.space, "eyal")
	paulFS := Mount(e.space, "paul")
	eyal, _ := eyalFS.ReadFile("d")
	paul, _ := paulFS.ReadFile("d")
	if string(eyal) != "the draft" || string(paul) != "teh draft" {
		t.Fatalf("views: eyal=%q paul=%q", eyal, paul)
	}
}

func TestCachedMountHitsCache(t *testing.T) {
	e := newEnv(t)
	e.addDoc(t, "d", "eyal", []byte("cached bits"))
	fs := MountCached(e.cache, e.space, "eyal")
	fs.ReadFile("d")
	fs.ReadFile("d")
	st := e.cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Writes through the cached mount keep the cache consistent.
	if err := fs.WriteFile("d", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("d")
	if string(data) != "v2" {
		t.Fatalf("read-back = %q", data)
	}
}

func TestStatReflectsTransformedSize(t *testing.T) {
	e := newEnv(t)
	e.addDoc(t, "d", "eyal", []byte("one\ntwo\nthree\n"))
	e.space.Attach("d", "eyal", docspace.Personal, property.NewSummarizer(1, 0))
	fs := Mount(e.space, "eyal")
	size, err := fs.Stat("d")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len("one\n[...]\n"))
	if size != want {
		t.Fatalf("Stat = %d, want transformed size %d", size, want)
	}
}

func TestListShowsOnlyReferencedDocs(t *testing.T) {
	e := newEnv(t)
	e.addDoc(t, "a", "eyal", []byte("1"))
	e.addDoc(t, "b", "paul", []byte("2"))
	e.space.AddReference("b", "eyal")
	e.addDoc(t, "c", "doug", []byte("3")) // eyal has no reference
	fs := Mount(e.space, "eyal")
	docs := fs.List()
	if len(docs) != 2 || docs[0] != "a" || docs[1] != "b" {
		t.Fatalf("List = %v", docs)
	}
	if fs.User() != "eyal" {
		t.Fatalf("User = %q", fs.User())
	}
}

func TestOpenMissingDoc(t *testing.T) {
	e := newEnv(t)
	fs := Mount(e.space, "eyal")
	if _, err := fs.Open("nope"); err == nil {
		t.Fatal("Open of missing doc succeeded")
	}
	if _, err := fs.Create("nope"); err == nil {
		t.Fatal("Create of missing doc succeeded")
	}
}

// Property: write-then-read through the NFS layer round-trips
// arbitrary content (no transforming properties attached).
func TestRoundTripProperty(t *testing.T) {
	e := newEnv(t)
	e.addDoc(t, "d", "eyal", []byte("init"))
	fs := Mount(e.space, "eyal")
	f := func(content []byte) bool {
		if err := fs.WriteFile("d", content); err != nil {
			return false
		}
		got, err := fs.ReadFile("d")
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
