// Package nfs is the file-system adaptation layer: it translates the
// open/read/write/close operations of off-the-shelf applications into
// Placeless I/O operations, the role the NFS server layer plays in the
// paper's Figure 2 ("Read and write operations from off-the-shelf
// applications are translated into Placeless I/O operations by a NFS
// server layer").
//
// A FileSystem is mounted per user — exactly the per-user view a
// document reference provides — and can optionally route reads and
// writes through a content cache, modeling the application-level
// cache placement the paper measures in Table 1.
package nfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"placeless/internal/core"
	"placeless/internal/docspace"
)

// Well-known errors.
var (
	// ErrClosed is returned for operations on a closed file.
	ErrClosed = errors.New("nfs: file closed")
	// ErrReadOnly is returned when writing a file opened for reading.
	ErrReadOnly = errors.New("nfs: file opened read-only")
	// ErrWriteOnly is returned when reading a file opened for writing.
	ErrWriteOnly = errors.New("nfs: file opened write-only")
)

// FileSystem is one user's file-style view of a document space.
type FileSystem struct {
	space *docspace.Space
	cache *core.Cache // nil = uncached
	user  string
}

// Mount returns a FileSystem for user over space, reading and writing
// directly through the middleware.
func Mount(space *docspace.Space, user string) *FileSystem {
	return &FileSystem{space: space, user: user}
}

// MountCached returns a FileSystem whose reads and writes go through
// the given content cache.
func MountCached(cache *core.Cache, space *docspace.Space, user string) *FileSystem {
	return &FileSystem{space: space, cache: cache, user: user}
}

// User returns the mounting user.
func (fs *FileSystem) User() string { return fs.user }

// List returns the document ids visible to this user (those the user
// holds a reference to), sorted.
func (fs *FileSystem) List() []string {
	var out []string
	for _, doc := range fs.space.Documents() {
		if _, err := fs.space.Reference(doc, fs.user); err == nil {
			out = append(out, doc)
		}
	}
	sort.Strings(out)
	return out
}

// Stat returns the size of the document's content as this user sees
// it. Because active properties transform content per user, size is a
// property of the transformed view, so Stat performs a (cacheable)
// read.
func (fs *FileSystem) Stat(doc string) (int64, error) {
	data, err := fs.readAll(doc)
	if err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// readAll fetches the user's view of the document.
func (fs *FileSystem) readAll(doc string) ([]byte, error) {
	if fs.cache != nil {
		return fs.cache.Read(doc, fs.user)
	}
	data, _, err := fs.space.ReadDocument(doc, fs.user)
	return data, err
}

// writeAll stores new content.
func (fs *FileSystem) writeAll(doc string, data []byte) error {
	if fs.cache != nil {
		return fs.cache.Write(doc, fs.user, data)
	}
	return fs.space.WriteDocument(doc, fs.user, data)
}

// ReadFile returns the complete content of doc as seen by the user.
func (fs *FileSystem) ReadFile(doc string) ([]byte, error) {
	return fs.readAll(doc)
}

// WriteFile replaces the content of doc through the write path.
func (fs *FileSystem) WriteFile(doc string, data []byte) error {
	return fs.writeAll(doc, data)
}

// mode distinguishes file handles.
type mode int

const (
	modeRead mode = iota
	modeWrite
)

// File is an open file handle with POSIX-style offset semantics.
type File struct {
	fs   *FileSystem
	doc  string
	mode mode

	mu     sync.Mutex
	data   []byte // read snapshot or write buffer
	offset int64
	closed bool
	werr   error
}

// Open opens doc for reading. The user's transformed view is
// snapshotted at open time, matching stream semantics: a reader sees
// the content as of its getInputStream.
func (fs *FileSystem) Open(doc string) (*File, error) {
	data, err := fs.readAll(doc)
	if err != nil {
		return nil, err
	}
	return &File{fs: fs, doc: doc, mode: modeRead, data: data}, nil
}

// Create opens doc for writing. Writes are buffered and pushed through
// the Placeless write path when the file is closed (the
// getOutputStream/Close pairing).
func (fs *FileSystem) Create(doc string) (*File, error) {
	if _, err := fs.space.ResolveOwner(doc, fs.user); err != nil {
		return nil, err
	}
	return &File{fs: fs, doc: doc, mode: modeWrite}, nil
}

// Name returns the document id.
func (f *File) Name() string { return f.doc }

// Read implements io.Reader.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if f.mode != modeRead {
		return 0, ErrWriteOnly
	}
	if f.offset >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.offset:])
	f.offset += int64(n)
	return n, nil
}

// ReadAt implements io.ReaderAt.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if f.mode != modeRead {
		return 0, ErrWriteOnly
	}
	if off < 0 {
		return 0, fmt.Errorf("nfs: negative offset %d", off)
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Write implements io.Writer.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if f.mode != modeWrite {
		return 0, ErrReadOnly
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

// Seek implements io.Seeker for read handles.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if f.mode != modeRead {
		return 0, errors.New("nfs: seek on write handle")
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.offset
	case io.SeekEnd:
		base = int64(len(f.data))
	default:
		return 0, fmt.Errorf("nfs: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, errors.New("nfs: negative position")
	}
	f.offset = pos
	return pos, nil
}

// Size returns the handle's content length (snapshot for reads,
// buffered bytes for writes).
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data))
}

// Close releases the handle; for write handles it pushes the buffered
// content through the Placeless write path and reports any store
// error. Closing twice returns the first result.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		err := f.werr
		f.mu.Unlock()
		return err
	}
	f.closed = true
	isWrite := f.mode == modeWrite
	data := f.data
	f.mu.Unlock()
	if !isWrite {
		return nil
	}
	err := f.fs.writeAll(f.doc, data)
	f.mu.Lock()
	f.werr = err
	f.mu.Unlock()
	return err
}
