package swarm

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"placeless/internal/clock"
	"placeless/internal/cluster"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
	"placeless/internal/trace"
)

// Backend selects what the swarm drives.
type Backend int

const (
	// Single drives one in-process core cache.
	Single Backend = iota
	// Cluster drives the consistent-hash router over Nodes in-process
	// core caches sharing one document space — placement, failover,
	// and per-node caching are the production router's; invalidation is
	// the space's synchronous event dispatch, which keeps frontier
	// counts deterministic under the worker pool.
	Cluster
)

// String names the backend.
func (b Backend) String() string {
	if b == Cluster {
		return "cluster"
	}
	return "single"
}

// RunConfig parameterizes one swarm phase.
type RunConfig struct {
	// Gen shapes the op stream (see Config).
	Gen Config
	// Phase labels the frontier row.
	Phase string
	// Backend selects single-cache or cluster-routed execution.
	Backend Backend
	// Nodes and Replicas shape the Cluster backend's ring.
	Nodes, Replicas int
	// Workers bounds the pool multiplexing user identities. Write-back
	// runs force 1 (flush timing under concurrency would make the
	// staleness counts nondeterministic).
	Workers int
	// Mode selects write-through (default) or write-back; write-back
	// plus FlushOps yields a deterministic nonzero staleness column.
	Mode core.WriteMode
	// FlushOps, in write-back mode, flushes after every FlushOps
	// writes. Zero flushes only at the end of the run.
	FlushOps int
	// MinDocSize floors the heavy-tailed document size draw.
	MinDocSize int64
}

// Frontier is one phase's latency/staleness/recompute-cost row. Every
// count is exact — copied or summed from core.Stats and the harness's
// own tallies, which the accounting test pins — and deterministic for
// a given seed. The latency and elapsed fields are wall-clock and
// excluded from the determinism contract.
type Frontier struct {
	Phase   string
	Backend string
	// Population and pool shape.
	Users, Docs, Workers, Nodes int
	// Op mix actually executed.
	Ops, Reads, Writes, Attaches, Detaches, Reorders, ChurnNoops, Flushes int64
	// DistinctPairs is how many (doc, user) keys the stream touched —
	// the working-set size the virtualized population produced.
	DistinctPairs int64
	// Cache outcome mix (sums over nodes): Hits served from cache,
	// IntermediateHits misses resumed from the memoized universal
	// stage, PrefixHits misses resumed from a longest-shared-prefix
	// cut, Misses full or partial read-path executions, Coalesced
	// single-flight joins, Invalidations entries dropped by the
	// notifier stream.
	Hits, IntermediateHits, PrefixHits, Misses, Coalesced, Invalidations int64
	// Recompute-cost cells: universal-chain executions, prefix-segment
	// executions, and the derived SegmentRunsSaved = IntermediateHits +
	// PrefixHits. Each term is a cut serving; one resumed miss can
	// contribute to both when its cut lies past the universal boundary
	// (the universal stage was served from memo AND a deeper prefix cut
	// was found). BytesRecomputedSaved is core's byte-weighted version.
	UniversalStageRuns, PrefixSegmentRuns, PrefixInstalls int64
	SegmentRunsSaved, BytesRecomputedSaved                int64
	// Staleness vs the write stream: a read is stale when the version
	// it returned is older than the last version written (not
	// necessarily flushed) at the moment the read started.
	// MaxVersionLag is the worst such gap in versions.
	StaleReads, MaxVersionLag int64
	// Router counters (Cluster backend only).
	RouterReads, RouterWrites, Failovers int64
	// Wall-clock latency percentiles over reads, and total elapsed
	// time. Machine-dependent: excluded from determinism.
	P50Micros, P99Micros, ElapsedMS float64
	// NodeStats are the raw per-node cache counters the cells above
	// were derived from, for machine consumers and the accounting test.
	NodeStats []core.Stats
}

// HitRate is Hits over executed reads.
func (f Frontier) HitRate() float64 {
	if f.Reads == 0 {
		return 0
	}
	return float64(f.Hits) / float64(f.Reads)
}

// maxPersonal bounds each (doc, user) personal chain under churn.
const maxPersonal = 3

// catalogSize is the number of distinct personal tagger properties;
// users whose first attach drew the same tag share a chain prefix,
// which is what makes PrefixHits a live cell.
const catalogSize = 4

// personalTagger builds catalog property k: a memoizable pure
// suffix-appending transform. Appending keeps the version stamp at the
// front of the content parseable after any chain.
func personalTagger(k int) *property.Transformer {
	tag := []byte(fmt.Sprintf("|p%d", k))
	return &property.Transformer{
		Base:          property.Base{PropName: fmt.Sprintf("p%d", k)},
		ReadTransform: func(b []byte) []byte { return append(append([]byte{}, b...), tag...) },
		Version:       1,
		MemoID:        fmt.Sprintf("swarm-p%d", k),
	}
}

// universalTagger builds universal transform k, same shape.
func universalTagger(k int) *property.Transformer {
	tag := []byte(fmt.Sprintf("|U%d", k))
	return &property.Transformer{
		Base:          property.Base{PropName: fmt.Sprintf("U%d", k)},
		ReadTransform: func(b []byte) []byte { return append(append([]byte{}, b...), tag...) },
		Version:       1,
		MemoID:        fmt.Sprintf("swarm-U%d", k),
	}
}

// stampContent renders document content carrying its write version as
// a parseable prefix: "v%08d|<doc>|<filler to size>". All swarm
// transforms append, so the prefix survives any chain and a read can
// always recover which version it observed.
func stampContent(doc string, version int64, size int64) []byte {
	head := fmt.Sprintf("v%08d|%s|", version, doc)
	if int64(len(head)) >= size {
		return []byte(head)
	}
	out := make([]byte, size)
	copy(out, head)
	const filler = "swarm filler content for active property caching. "
	for i := len(head); i < len(out); i++ {
		out[i] = filler[(i-len(head))%len(filler)]
	}
	return out
}

// parseVersion recovers the write version from returned content.
func parseVersion(data []byte) (int64, bool) {
	if len(data) < 9 || data[0] != 'v' {
		return 0, false
	}
	var v int64
	for _, c := range data[1:9] {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	return v, true
}

// backendPeer is what a worker drives: core.Cache (Single) and
// cluster.Cache (Cluster) both satisfy it.
type backendPeer interface {
	Read(doc, user string) ([]byte, error)
	Write(doc, user string, data []byte) error
}

// world is one phase's built deployment.
type world struct {
	space  *docspace.Space
	caches []*core.Cache
	router *cluster.Cache
	be     backendPeer
	owner  string
	docIDs []string
}

// ownerName is the writer identity; every document is created owned by
// it, so writes need no reference bookkeeping.
const ownerName = "swarm-owner"

// buildWorld assembles the space, documents, universal chains, and the
// backend caches for one phase.
func buildWorld(cfg RunConfig) (*world, error) {
	gen := cfg.Gen.Norm()
	clk := clock.Real{}
	src := repo.NewMem("swarm", clk, simnet.NewPath("free", gen.Seed))
	space := docspace.New(clk, nil)

	w := &world{space: space, owner: ownerName}
	sizes := trace.SizesWith(rand.New(rand.NewSource(gen.Seed+1)), gen.Docs, max64(cfg.MinDocSize, 128))
	w.docIDs = make([]string, gen.Docs)
	for d := 0; d < gen.Docs; d++ {
		id := DocID(d)
		w.docIDs[d] = id
		if err := src.Store("/"+id, stampContent(id, 0, sizes[id])); err != nil {
			return nil, err
		}
		if _, err := space.CreateDocument(id, ownerName, &property.RepoBitProvider{Repo: src, Path: "/" + id}); err != nil {
			return nil, err
		}
		// Two memoizable universal transforms: the shared stage whose
		// reuse the memo cells measure.
		for k := 0; k < 2; k++ {
			if err := space.Attach(id, "", docspace.Universal, universalTagger(k)); err != nil {
				return nil, err
			}
		}
	}

	opts := core.Options{Mode: cfg.Mode, Memoize: true}
	switch cfg.Backend {
	case Cluster:
		nodes := cfg.Nodes
		if nodes <= 0 {
			nodes = 3
		}
		replicas := cfg.Replicas
		if replicas <= 0 {
			replicas = 2
		}
		w.router = cluster.New(cluster.Options{Replicas: replicas, VNodes: 64})
		for i := 0; i < nodes; i++ {
			o := opts
			o.Name = fmt.Sprintf("swarm-n%d", i)
			c := core.New(space, o)
			w.caches = append(w.caches, c)
			if err := w.router.AddNode(o.Name, c); err != nil {
				return nil, err
			}
		}
		w.be = w.router
	default:
		opts.Name = "swarm"
		c := core.New(space, opts)
		w.caches = []*core.Cache{c}
		w.be = c
	}
	return w, nil
}

func (w *world) close() {
	for _, c := range w.caches {
		_ = c.Close()
	}
}

// tally is one worker's private accounting, merged after the pool
// drains.
type tally struct {
	reads, writes, attaches, detaches, reorders, churnNoops int64
	flushes                                                 int64
	pairs                                                   int64
	stale, maxLag                                           int64
	latencies                                               []time.Duration
}

// pairState tracks one touched (doc, user) key: reference added,
// current personal chain (property catalog ids in order).
type pairState struct {
	chain []int
}

// worker executes its partition of the op stream in order. Partition
// is by document, so per-key sequencing, single-flight, and chain
// state never race across workers.
type worker struct {
	w       *world
	cfg     RunConfig
	ops     []Op
	tally   tally
	pairs   map[[2]int]*pairState
	written []int64 // per-doc last written version (shared; doc-partitioned)
	flushed []int64 // per-doc last flushed version (write-back, Workers=1)
	dirty   map[int]bool
	pending *int64 // shared write counter for FlushOps cadence (Workers=1 paths)
}

// touch ensures (doc, user) has a reference, returning its state.
func (wk *worker) touch(doc, user int) (*pairState, error) {
	k := [2]int{doc, user}
	if st, ok := wk.pairs[k]; ok {
		return st, nil
	}
	if _, err := wk.w.space.AddReference(wk.w.docIDs[doc], UserName(user)); err != nil {
		return nil, err
	}
	st := &pairState{}
	wk.pairs[k] = st
	wk.tally.pairs++
	return st, nil
}

// run executes the worker's ops.
func (wk *worker) run() error {
	for _, op := range wk.ops {
		switch op.Kind {
		case trace.OpWrite:
			if err := wk.doWrite(op); err != nil {
				return err
			}
		case trace.OpAttach, trace.OpDetach, trace.OpReorder:
			if err := wk.doChurn(op); err != nil {
				return err
			}
		default:
			if err := wk.doRead(op); err != nil {
				return err
			}
		}
	}
	return nil
}

func (wk *worker) doRead(op Op) error {
	if _, err := wk.touch(op.Doc, op.User); err != nil {
		return err
	}
	writtenAtStart := wk.written[op.Doc]
	start := time.Now()
	data, err := wk.w.be.Read(wk.w.docIDs[op.Doc], UserName(op.User))
	if err != nil {
		return fmt.Errorf("swarm read %s/%s: %w", wk.w.docIDs[op.Doc], UserName(op.User), err)
	}
	wk.tally.latencies = append(wk.tally.latencies, time.Since(start))
	wk.tally.reads++
	if v, ok := parseVersion(data); ok && v < writtenAtStart {
		wk.tally.stale++
		if lag := writtenAtStart - v; lag > wk.tally.maxLag {
			wk.tally.maxLag = lag
		}
	}
	return nil
}

func (wk *worker) doWrite(op Op) error {
	doc := wk.w.docIDs[op.Doc]
	next := wk.written[op.Doc] + 1
	data := stampContent(doc, next, int64(64+op.Arg%192))
	if err := wk.w.be.Write(doc, wk.w.owner, data); err != nil {
		return fmt.Errorf("swarm write %s: %w", doc, err)
	}
	wk.written[op.Doc] = next
	wk.tally.writes++
	if wk.cfg.Mode == core.WriteBack {
		wk.dirty[op.Doc] = true
		*wk.pending++
		if wk.cfg.FlushOps > 0 && *wk.pending >= int64(wk.cfg.FlushOps) {
			return wk.flush()
		}
	}
	return nil
}

// flush pushes buffered write-back content through and marks every
// dirty doc's written version as flushed (Workers=1 in this mode, so
// the bookkeeping is race-free by construction).
func (wk *worker) flush() error {
	for _, c := range wk.w.caches {
		if err := c.Flush(); err != nil {
			return err
		}
	}
	for d := range wk.dirty {
		wk.flushed[d] = wk.written[d]
		delete(wk.dirty, d)
	}
	*wk.pending = 0
	wk.tally.flushes++
	return nil
}

// doChurn interprets a personal-chain mutation against the pair's
// current chain. Infeasible ops (detach from an empty chain, reorder
// of a single property) count as churn no-ops so the mix stays an
// exact function of the stream.
func (wk *worker) doChurn(op Op) error {
	st, err := wk.touch(op.Doc, op.User)
	if err != nil {
		return err
	}
	doc, user := wk.w.docIDs[op.Doc], UserName(op.User)
	switch op.Kind {
	case trace.OpAttach:
		if len(st.chain) >= maxPersonal {
			wk.tally.churnNoops++
			return nil
		}
		k := op.Arg % catalogSize
		for contains(st.chain, k) {
			k = (k + 1) % catalogSize
		}
		if err := wk.w.space.Attach(doc, user, docspace.Personal, personalTagger(k)); err != nil {
			return fmt.Errorf("swarm attach p%d %s/%s: %w", k, doc, user, err)
		}
		st.chain = append(st.chain, k)
		wk.tally.attaches++
	case trace.OpDetach:
		if len(st.chain) == 0 {
			wk.tally.churnNoops++
			return nil
		}
		k := st.chain[len(st.chain)-1]
		if err := wk.w.space.Detach(doc, user, docspace.Personal, fmt.Sprintf("p%d", k)); err != nil {
			return fmt.Errorf("swarm detach p%d %s/%s: %w", k, doc, user, err)
		}
		st.chain = st.chain[:len(st.chain)-1]
		wk.tally.detaches++
	default: // trace.OpReorder
		if len(st.chain) < 2 {
			wk.tally.churnNoops++
			return nil
		}
		rev := make([]int, len(st.chain))
		names := make([]string, len(st.chain))
		for i := range st.chain {
			rev[i] = st.chain[len(st.chain)-1-i]
			names[i] = fmt.Sprintf("p%d", rev[i])
		}
		if err := wk.w.space.Reorder(doc, user, docspace.Personal, names); err != nil {
			return fmt.Errorf("swarm reorder %s/%s: %w", doc, user, err)
		}
		st.chain = rev
		wk.tally.reorders++
	}
	return nil
}

// Run generates cfg's op stream and executes it: the tentpole
// entrypoint plbench's E18 drives.
func Run(cfg RunConfig) (Frontier, error) {
	return RunOps(cfg, Ops(cfg.Gen))
}

// RunOps executes an explicit op stream against a fresh world — the
// scripted entrypoint the accounting test uses to pin that the
// frontier reports exactly what core.Stats counted.
func RunOps(cfg RunConfig, ops []Op) (Frontier, error) {
	gen := cfg.Gen.Norm()
	cfg.Gen = gen
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	if cfg.Mode == core.WriteBack {
		// Flush timing under a concurrent pool would make staleness
		// counts scheduling-dependent; the write-back phase trades
		// parallelism for a deterministic staleness column.
		workers = 1
	}

	w, err := buildWorld(cfg)
	if err != nil {
		return Frontier{}, err
	}
	defer w.close()

	// Partition by document: all of a doc's ops (and so all of any
	// (doc, user) key's ops) run in stream order on one worker.
	parts := make([][]Op, workers)
	for _, op := range ops {
		i := op.Doc % workers
		parts[i] = append(parts[i], op)
	}
	written := make([]int64, gen.Docs)
	flushed := make([]int64, gen.Docs)
	var pending int64
	wks := make([]*worker, workers)
	for i := range wks {
		wks[i] = &worker{
			w: w, cfg: cfg, ops: parts[i],
			pairs:   make(map[[2]int]*pairState),
			written: written, flushed: flushed,
			dirty: make(map[int]bool), pending: &pending,
		}
	}

	start := time.Now()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := range wks {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = wks[i].run() }(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return Frontier{}, e
		}
	}
	// Final flush so write-back runs end converged (counted like any
	// other flush).
	if cfg.Mode == core.WriteBack && len(wks[0].dirty) > 0 {
		if err := wks[0].flush(); err != nil {
			return Frontier{}, err
		}
	}
	elapsed := time.Since(start)

	f := Frontier{
		Phase:   cfg.Phase,
		Backend: cfg.Backend.String(),
		Users:   gen.Users, Docs: gen.Docs,
		Workers: workers, Nodes: len(w.caches),
		Ops:       int64(len(ops)),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	var lats []time.Duration
	for _, wk := range wks {
		f.Reads += wk.tally.reads
		f.Writes += wk.tally.writes
		f.Attaches += wk.tally.attaches
		f.Detaches += wk.tally.detaches
		f.Reorders += wk.tally.reorders
		f.ChurnNoops += wk.tally.churnNoops
		f.Flushes += wk.tally.flushes
		f.DistinctPairs += wk.tally.pairs
		f.StaleReads += wk.tally.stale
		if wk.tally.maxLag > f.MaxVersionLag {
			f.MaxVersionLag = wk.tally.maxLag
		}
		lats = append(lats, wk.tally.latencies...)
	}
	for _, c := range w.caches {
		st := c.Stats()
		f.NodeStats = append(f.NodeStats, st)
		f.Hits += st.Hits
		f.IntermediateHits += st.IntermediateHits
		f.PrefixHits += st.PrefixHits
		f.Misses += st.Misses
		f.Coalesced += st.CoalescedMisses
		f.Invalidations += st.Invalidations
		f.UniversalStageRuns += st.UniversalStageRuns
		f.PrefixSegmentRuns += st.PrefixSegmentRuns
		f.PrefixInstalls += st.PrefixInstalls
		f.BytesRecomputedSaved += st.BytesRecomputedSaved
	}
	f.SegmentRunsSaved = f.IntermediateHits + f.PrefixHits
	if w.router != nil {
		rs := w.router.Stats()
		f.RouterReads, f.RouterWrites, f.Failovers = rs.Reads, rs.Writes, rs.Failovers
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		f.P50Micros = float64(lats[len(lats)/2]) / float64(time.Microsecond)
		f.P99Micros = float64(lats[len(lats)*99/100]) / float64(time.Microsecond)
	}
	return f, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

