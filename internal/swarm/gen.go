// Package swarm is the trace-driven scaled load generator: it
// synthesizes up to millions of simulated users over Zipf-distributed
// document popularity, diurnal office intensity, personal-chain churn,
// and injected flash-crowd spikes, and drives the op stream against
// either a single in-process cache or the consistent-hash cluster
// router — reporting a latency/staleness/recompute-cost frontier.
//
// Users are virtualized: a bounded worker pool multiplexes user
// identities, so a million-user run costs O(workers) goroutines and
// O(touched keys) memory, not O(users). Everything about the op
// stream is a pure function of the generator seed; frontier counts
// (not wall-clock latencies) are deterministic too, because ops are
// partitioned to workers by document — every (doc, user) key's
// operations execute in stream order on one worker.
package swarm

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"placeless/internal/trace"
)

// Config parameterizes the op-stream generator. Fields with zero
// values are defaulted by Norm.
type Config struct {
	// Users is the simulated user population; identities are
	// virtualized, so this may be millions.
	Users int
	// Docs is the document population.
	Docs int
	// Ops is the stream length.
	Ops int
	// Alpha is the document-popularity Zipf exponent (s); typical
	// traces sit near 0.8–1.0.
	Alpha float64
	// UserAlpha skews user activity (a few users do most of the
	// touching); 0 is uniform.
	UserAlpha float64
	// WriteFrac is the fraction of ops that write through the system;
	// ChurnFrac the fraction that mutate personal property chains
	// (attach/detach/reorder, mirroring trace.OpKind).
	WriteFrac, ChurnFrac float64
	// FlashDoc is the document rank whose popularity spikes by
	// FlashBoost between FlashStart·Day and FlashEnd·Day. A boost of 0
	// or an empty window disables the spike.
	FlashDoc   int
	FlashBoost float64
	FlashStart float64
	FlashEnd   float64
	// Day is the virtual-day length op timestamps are scaled onto.
	Day time.Duration
	// Seed fixes the whole stream.
	Seed int64
}

// Norm fills defaults and returns the effective configuration.
func (c Config) Norm() Config {
	if c.Users <= 0 {
		c.Users = 1000
	}
	if c.Docs <= 0 {
		c.Docs = 100
	}
	if c.Ops <= 0 {
		c.Ops = 10000
	}
	if c.Alpha == 0 {
		c.Alpha = 0.9
	}
	if c.Day <= 0 {
		c.Day = 24 * time.Hour
	}
	if c.FlashEnd < c.FlashStart {
		c.FlashEnd = c.FlashStart
	}
	return c
}

// Op is one generated operation. Doc and User are population indexes
// (see DocID/UserName); At is the virtual time-of-day offset the
// diurnal model assigned.
type Op struct {
	Kind trace.OpKind
	Doc  int
	User int
	Arg  int
	At   time.Duration
}

// DocID names document i; UserName names user i. The doc format
// matches trace.DocID so tooling built on one workload reads the
// other.
func DocID(i int) string { return trace.DocID(i) }

// UserName names user i. Distinct from trace.UserID's "user-%02d"
// because the swarm population does not fit two digits.
func UserName(i int) string { return fmt.Sprintf("u%06d", i) }

// Ops generates the deterministic op stream for cfg: diurnal
// timestamps, Zipf-sampled documents (with the flash window swapping
// in the boosted sampler), skewed user identities, and the
// read/write/churn kind mix. The same cfg always yields a
// byte-identical stream (see Encode).
func Ops(cfg Config) []Op {
	cfg = cfg.Norm()
	rng := rand.New(rand.NewSource(cfg.Seed))
	times := trace.DiurnalTimes(rng, cfg.Ops, cfg.Day)
	docs := trace.NewZipf(cfg.Docs, cfg.Alpha)
	flash := docs
	if cfg.FlashBoost > 1 && cfg.FlashEnd > cfg.FlashStart {
		flash = docs.Boosted(cfg.FlashDoc, cfg.FlashBoost)
	}
	users := trace.NewZipf(cfg.Users, cfg.UserAlpha)
	flashLo := time.Duration(cfg.FlashStart * float64(cfg.Day))
	flashHi := time.Duration(cfg.FlashEnd * float64(cfg.Day))

	out := make([]Op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		at := times[i]
		z := docs
		if flash != docs && at >= flashLo && at < flashHi {
			z = flash
		}
		op := Op{
			Doc:  z.Sample(rng),
			User: users.Sample(rng),
			Arg:  rng.Intn(1 << 16),
			At:   at,
		}
		switch r := rng.Float64(); {
		case r < cfg.WriteFrac:
			op.Kind = trace.OpWrite
		case r < cfg.WriteFrac+cfg.ChurnFrac:
			// Rotate through the personal-chain mutation kinds, the
			// same convention GenerateOffice uses.
			op.Kind = trace.OpAttach + trace.OpKind(rng.Intn(3))
		default:
			op.Kind = trace.OpRead
		}
		out = append(out, op)
	}
	return out
}

// Encode renders an op stream in a canonical line format, one op per
// line. The determinism golden pins its checksum: any change to the
// generator's draw order — however innocent — must re-pin the golden
// deliberately.
func Encode(ops []Op) []byte {
	var b strings.Builder
	b.Grow(len(ops) * 32)
	for _, op := range ops {
		fmt.Fprintf(&b, "%d %d %d %d %d\n", int(op.Kind), op.Doc, op.User, op.Arg, int64(op.At))
	}
	return []byte(b.String())
}
