package swarm

import (
	"reflect"
	"testing"

	"placeless/internal/core"
	"placeless/internal/trace"
)

// sumNodeStats recomputes every cache-derived frontier cell from the
// raw per-node counters, independently of RunOps's own aggregation.
func sumNodeStats(nodes []core.Stats) (hits, inter, prefix, misses, coalesced, invals, uruns, pruns, installs, bytesSaved int64) {
	for _, st := range nodes {
		hits += st.Hits
		inter += st.IntermediateHits
		prefix += st.PrefixHits
		misses += st.Misses
		coalesced += st.CoalescedMisses
		invals += st.Invalidations
		uruns += st.UniversalStageRuns
		pruns += st.PrefixSegmentRuns
		installs += st.PrefixInstalls
		bytesSaved += st.BytesRecomputedSaved
	}
	return
}

// checkAgainstNodeStats asserts the frontier's cache cells are exactly
// the sums over its own NodeStats — the "frontier numbers match
// core.Stats" half of the accounting contract.
func checkAgainstNodeStats(t *testing.T, f Frontier) {
	t.Helper()
	hits, inter, prefix, misses, coalesced, invals, uruns, pruns, installs, bytesSaved := sumNodeStats(f.NodeStats)
	if f.Hits != hits || f.IntermediateHits != inter || f.PrefixHits != prefix ||
		f.Misses != misses || f.Coalesced != coalesced || f.Invalidations != invals ||
		f.UniversalStageRuns != uruns || f.PrefixSegmentRuns != pruns ||
		f.PrefixInstalls != installs || f.BytesRecomputedSaved != bytesSaved {
		t.Fatalf("frontier cells diverge from NodeStats sums:\n%+v", f)
	}
	if f.SegmentRunsSaved != f.IntermediateHits+f.PrefixHits {
		t.Fatalf("SegmentRunsSaved = %d, want IntermediateHits(%d) + PrefixHits(%d)",
			f.SegmentRunsSaved, f.IntermediateHits, f.PrefixHits)
	}
}

// TestRunOpsAccounting drives a hand-computable scripted workload
// through the single backend and pins every frontier cell against
// pencil-and-paper values. Script (one doc, two users, one worker):
//
//	attach d0/u0 p0        (chains now shareable)
//	attach d0/u1 p0
//	read   d0/u0           miss: universal stage runs, cuts install
//	read   d0/u0           hit
//	read   d0/u1           miss resumed from the shared prefix cut
//	write  d0              invalidates both cached entries
//	read   d0/u0           miss: universal stage runs again
func TestRunOpsAccounting(t *testing.T) {
	ops := []Op{
		{Kind: trace.OpAttach, Doc: 0, User: 0, Arg: 0},
		{Kind: trace.OpAttach, Doc: 0, User: 1, Arg: 0},
		{Kind: trace.OpRead, Doc: 0, User: 0},
		{Kind: trace.OpRead, Doc: 0, User: 0},
		{Kind: trace.OpRead, Doc: 0, User: 1},
		{Kind: trace.OpWrite, Doc: 0},
		{Kind: trace.OpRead, Doc: 0, User: 0},
	}
	f, err := RunOps(RunConfig{
		Gen:     Config{Users: 2, Docs: 1, Ops: len(ops), Seed: 9},
		Phase:   "accounting",
		Workers: 1,
	}, ops)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstNodeStats(t, f)

	if f.Ops != 7 || f.Reads != 4 || f.Writes != 1 || f.Attaches != 2 ||
		f.Detaches != 0 || f.Reorders != 0 || f.ChurnNoops != 0 {
		t.Fatalf("op mix wrong: %+v", f)
	}
	if f.DistinctPairs != 2 {
		t.Fatalf("DistinctPairs = %d, want 2", f.DistinctPairs)
	}
	if f.Hits != 1 {
		t.Fatalf("Hits = %d, want 1 (the repeated u0 read)", f.Hits)
	}
	if f.Misses != 3 {
		t.Fatalf("Misses = %d, want 3 (first u0, u1, post-write u0)", f.Misses)
	}
	if f.UniversalStageRuns != 2 {
		t.Fatalf("UniversalStageRuns = %d, want 2 (initial + post-write)", f.UniversalStageRuns)
	}
	// u1's miss resumed from the full shared cut [U0 U1 p0]: the
	// universal stage was served from memo (IntermediateHits) and the
	// probe found a prefix cut (PrefixHits) — one read, both cells.
	if f.IntermediateHits != 1 || f.PrefixHits != 1 {
		t.Fatalf("IntermediateHits = %d, PrefixHits = %d, want 1 and 1", f.IntermediateHits, f.PrefixHits)
	}
	if f.SegmentRunsSaved != 2 {
		t.Fatalf("SegmentRunsSaved = %d, want 2 (both cut servings of u1's read)", f.SegmentRunsSaved)
	}
	if f.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want 2 (the write dropped both entries)", f.Invalidations)
	}
	if f.StaleReads != 0 || f.MaxVersionLag != 0 {
		t.Fatalf("write-through run counted staleness: %+v", f)
	}
	if f.Coalesced != 0 {
		t.Fatalf("Coalesced = %d on a single worker, want 0", f.Coalesced)
	}
	if len(f.NodeStats) != 1 || f.Nodes != 1 || f.Workers != 1 {
		t.Fatalf("single backend shape wrong: %+v", f)
	}
	if f.RouterReads != 0 || f.RouterWrites != 0 || f.Failovers != 0 {
		t.Fatalf("router counters nonzero on single backend: %+v", f)
	}
}

// TestRunOpsWriteBackStaleness pins the staleness column: in
// write-back mode a read between a buffered write and its flush
// observes the old version, and the harness counts exactly those.
func TestRunOpsWriteBackStaleness(t *testing.T) {
	ops := []Op{
		{Kind: trace.OpRead, Doc: 0, User: 0},  // v0, fresh
		{Kind: trace.OpWrite, Doc: 0},          // v1 buffered
		{Kind: trace.OpRead, Doc: 0, User: 0},  // sees v0: stale, lag 1
		{Kind: trace.OpWrite, Doc: 0},          // v2 buffered
		{Kind: trace.OpRead, Doc: 0, User: 1},  // sees v0: stale, lag 2
	}
	f, err := RunOps(RunConfig{
		Gen:   Config{Users: 2, Docs: 1, Ops: len(ops), Seed: 9},
		Phase: "writeback",
		Mode:  core.WriteBack,
	}, ops)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstNodeStats(t, f)
	if f.Workers != 1 {
		t.Fatalf("write-back must force one worker, got %d", f.Workers)
	}
	if f.StaleReads != 2 {
		t.Fatalf("StaleReads = %d, want 2", f.StaleReads)
	}
	if f.MaxVersionLag != 2 {
		t.Fatalf("MaxVersionLag = %d, want 2", f.MaxVersionLag)
	}
	if f.Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1 (final flush only)", f.Flushes)
	}
}

// stripWallClock zeroes the fields outside the determinism contract.
func stripWallClock(f Frontier) Frontier {
	f.P50Micros, f.P99Micros, f.ElapsedMS = 0, 0, 0
	return f
}

// TestRunClusterDeterministicAndLive runs a generated workload against
// the cluster router twice with the same seed and requires identical
// frontier counts, with every headline cell live (nonzero): the
// acceptance bar that e18's cells mean something.
func TestRunClusterDeterministicAndLive(t *testing.T) {
	cfg := RunConfig{
		Gen: Config{
			Users: 5000, Docs: 40, Ops: 4000,
			Alpha: 0.9, UserAlpha: 0.6,
			WriteFrac: 0.04, ChurnFrac: 0.06,
			FlashDoc: 2, FlashBoost: 80, FlashStart: 0.5, FlashEnd: 0.6,
			Seed: 77,
		},
		Phase:   "cluster",
		Backend: Cluster,
		Nodes:   3,
		Workers: 4,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstNodeStats(t, a)
	if !reflect.DeepEqual(stripWallClock(a), stripWallClock(b)) {
		t.Fatalf("identical seeds produced different frontiers:\n%+v\n%+v", stripWallClock(a), stripWallClock(b))
	}
	if a.Hits == 0 || a.Misses == 0 || a.SegmentRunsSaved == 0 {
		t.Fatalf("dead frontier cells: hits=%d misses=%d saved=%d", a.Hits, a.Misses, a.SegmentRunsSaved)
	}
	if a.Writes == 0 || a.Attaches == 0 || a.Invalidations == 0 {
		t.Fatalf("dead churn cells: writes=%d attaches=%d invals=%d", a.Writes, a.Attaches, a.Invalidations)
	}
	if a.Nodes != 3 || len(a.NodeStats) != 3 {
		t.Fatalf("cluster shape wrong: %+v", a)
	}
	if a.RouterReads != a.Reads || a.RouterWrites != a.Writes {
		t.Fatalf("router saw %d/%d ops, harness counted %d/%d", a.RouterReads, a.RouterWrites, a.Reads, a.Writes)
	}
	if a.Failovers != 0 {
		t.Fatalf("Failovers = %d on healthy in-process nodes, want 0", a.Failovers)
	}
	// Every node should have taken part of the key space.
	for i, st := range a.NodeStats {
		if st.Hits+st.Misses == 0 {
			t.Fatalf("node %d served nothing — ring placement broken", i)
		}
	}
	if a.Hits+a.Misses != a.Reads {
		t.Fatalf("hits(%d) + misses(%d) != reads(%d)", a.Hits, a.Misses, a.Reads)
	}
}

// TestRunSingleMatchesOpMix checks the generated-stream path end to
// end on the single backend: executed op tallies must exactly match
// the stream's kind mix (churn splits into applied + no-op).
func TestRunSingleMatchesOpMix(t *testing.T) {
	cfg := RunConfig{
		Gen: Config{
			Users: 500, Docs: 20, Ops: 2000,
			Alpha: 0.8, WriteFrac: 0.05, ChurnFrac: 0.1,
			Seed: 5,
		},
		Phase:   "single",
		Workers: 3,
	}
	ops := Ops(cfg.Gen)
	var reads, writes, churn int64
	for _, op := range ops {
		switch op.Kind {
		case trace.OpWrite:
			writes++
		case trace.OpAttach, trace.OpDetach, trace.OpReorder:
			churn++
		default:
			reads++
		}
	}
	f, err := RunOps(cfg, ops)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstNodeStats(t, f)
	if f.Reads != reads || f.Writes != writes {
		t.Fatalf("executed %d/%d reads/writes, stream had %d/%d", f.Reads, f.Writes, reads, writes)
	}
	if got := f.Attaches + f.Detaches + f.Reorders + f.ChurnNoops; got != churn {
		t.Fatalf("churn ops executed+noop = %d, stream had %d", got, churn)
	}
	if f.Hits+f.Misses != f.Reads {
		t.Fatalf("hits(%d) + misses(%d) != reads(%d)", f.Hits, f.Misses, f.Reads)
	}
}
