package swarm

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"placeless/internal/trace"
)

// goldenCfg is the pinned generator configuration for the determinism
// golden. Touch nothing here without re-pinning the checksum below.
var goldenCfg = Config{
	Users: 100000, Docs: 500, Ops: 20000,
	Alpha: 0.9, UserAlpha: 0.6,
	WriteFrac: 0.03, ChurnFrac: 0.05,
	FlashDoc: 3, FlashBoost: 100, FlashStart: 0.4, FlashEnd: 0.45,
	Day:  4 * time.Hour,
	Seed: 42,
}

// goldenSum is sha256(Encode(Ops(goldenCfg))). It pins that the same
// swarm seed yields a byte-identical op stream across runs, platforms,
// and refactors — the cross-package mirror of
// TestGenerateOfficeDeterministic, reaching through trace.Zipf,
// trace.DiurnalTimes, and the swarm kind mix.
const goldenSum = "09b98942b6fdeffac88df56ffeeb174aa9c60d125394b6a3f031b25c195c1857"

// TestOpsDeterministicGolden pins the generator's byte-identical
// op-stream contract.
func TestOpsDeterministicGolden(t *testing.T) {
	a := Encode(Ops(goldenCfg))
	b := Encode(Ops(goldenCfg))
	if !bytes.Equal(a, b) {
		t.Fatal("two generations of the same seed differ")
	}
	sum := sha256.Sum256(a)
	if got := hex.EncodeToString(sum[:]); got != goldenSum {
		t.Fatalf("op-stream checksum drifted:\n  got  %s\n  want %s\nA deliberate generator change must re-pin goldenSum.", got, goldenSum)
	}
}

// TestOpsShape sanity-checks the stream the golden pins: every op in
// range, timestamps sorted, the kind mix near its configured
// fractions, and the flash window concentrated on the flash doc.
func TestOpsShape(t *testing.T) {
	cfg := goldenCfg
	ops := Ops(cfg)
	if len(ops) != cfg.Ops {
		t.Fatalf("got %d ops, want %d", len(ops), cfg.Ops)
	}
	var writes, churn, flashHits, flashOps int
	for i, op := range ops {
		if op.Doc < 0 || op.Doc >= cfg.Docs || op.User < 0 || op.User >= cfg.Users {
			t.Fatalf("op %d out of population: %+v", i, op)
		}
		if i > 0 && op.At < ops[i-1].At {
			t.Fatalf("timestamps not sorted at %d", i)
		}
		switch op.Kind {
		case trace.OpWrite:
			writes++
		case trace.OpAttach, trace.OpDetach, trace.OpReorder:
			churn++
		case trace.OpRead:
		default:
			t.Fatalf("op %d has kind %v, not in the swarm mix", i, op.Kind)
		}
		frac := float64(op.At) / float64(cfg.Day)
		if frac >= cfg.FlashStart && frac < cfg.FlashEnd {
			flashOps++
			if op.Doc == cfg.FlashDoc {
				flashHits++
			}
		}
	}
	if w := float64(writes) / float64(len(ops)); w < cfg.WriteFrac/2 || w > cfg.WriteFrac*2 {
		t.Fatalf("write fraction %.3f far from configured %.3f", w, cfg.WriteFrac)
	}
	if c := float64(churn) / float64(len(ops)); c < cfg.ChurnFrac/2 || c > cfg.ChurnFrac*2 {
		t.Fatalf("churn fraction %.3f far from configured %.3f", c, cfg.ChurnFrac)
	}
	if flashOps == 0 {
		t.Fatal("flash window drew no ops")
	}
	// 100x boost on a rank-3 doc must dominate its window.
	if frac := float64(flashHits) / float64(flashOps); frac < 0.3 {
		t.Fatalf("flash doc drew only %.1f%% of its window", frac*100)
	}
	// Outside the window the flash doc is just rank 3.
	var coldHits, coldOps int
	for _, op := range ops {
		frac := float64(op.At) / float64(cfg.Day)
		if frac < cfg.FlashStart || frac >= cfg.FlashEnd {
			coldOps++
			if op.Doc == cfg.FlashDoc {
				coldHits++
			}
		}
	}
	if frac := float64(coldHits) / float64(coldOps); frac > 0.2 {
		t.Fatalf("flash doc drew %.1f%% outside its window — boost leaked", frac*100)
	}
}
