package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact text exposition of a small fixed
// registry: family ordering, HELP/TYPE lines, label rendering, and
// cumulative histogram buckets. A diff here means the wire format
// changed and every scraper downstream sees it.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_last_total", "Sorts last.", func() int64 { return 7 })
	reg.Gauge("a_bytes", "Sorts first.", func() int64 { return 42 })
	v := reg.CounterVec("b_reads_total", "Labeled counter.", "verdict", "hit", "miss")
	v.Inc("hit")
	v.Inc("hit")
	h := reg.Histogram("c_seconds", "One histogram.")
	h.Observe(3 * time.Microsecond) // bucket le=4.096e-06
	h.Observe(100 * time.Millisecond)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	// Families render in name order.
	wantOrder := []string{"a_bytes", "b_reads_total", "c_seconds", "z_last_total"}
	last := -1
	for _, name := range wantOrder {
		i := strings.Index(got, "# HELP "+name+" ")
		if i < 0 {
			t.Fatalf("family %s missing from exposition:\n%s", name, got)
		}
		if i < last {
			t.Fatalf("family %s out of order", name)
		}
		last = i
	}

	for _, want := range []string{
		"# HELP a_bytes Sorts first.\n# TYPE a_bytes gauge\na_bytes 42\n",
		`b_reads_total{verdict="hit"} 2` + "\n",
		`b_reads_total{verdict="miss"} 0` + "\n",
		"# TYPE c_seconds histogram\n",
		`c_seconds_bucket{le="1.024e-06"} 0` + "\n",
		`c_seconds_bucket{le="4.096e-06"} 1` + "\n",
		`c_seconds_bucket{le="+Inf"} 2` + "\n",
		"c_seconds_count 2\n",
		"c_seconds_sum 0.100003\n",
		"z_last_total 7\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, got)
		}
	}

	// Bucket counts are cumulative and monotone.
	if !strings.Contains(got, `c_seconds_bucket{le="0.268435456"} 2`) {
		t.Errorf("100ms sample not cumulative through later buckets:\n%s", got)
	}
}

// TestExpositionVecLabels checks histogram-vec label rendering.
func TestExpositionVecLabels(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("d_seconds", "Staged.", "stage", "alpha", "beta")
	v.Observe("beta", int64(2*time.Microsecond))
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`d_seconds_bucket{stage="alpha",le="+Inf"} 0`,
		`d_seconds_bucket{stage="beta",le="+Inf"} 1`,
		`d_seconds_count{stage="beta"} 1`,
		`d_seconds_sum{stage="alpha"} 0`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	// One HELP/TYPE block for the whole family, not one per label.
	if n := strings.Count(got, "# TYPE d_seconds histogram"); n != 1 {
		t.Errorf("TYPE rendered %d times, want 1", n)
	}
}

// TestDuplicateRegistrationPanics pins the rename-guard: registering
// two families under one name is a wiring bug, caught loudly.
func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "first", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Gauge("dup_total", "second", func() int64 { return 0 })
}

// TestHistogramQuantile checks the bucket-bound quantile estimate.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if p50 := h.Quantile(0.50); p50 > 8*time.Microsecond {
		t.Errorf("p50 = %v, want <= 8µs (bucket bound above 2µs)", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 50*time.Millisecond || p99 > 200*time.Millisecond {
		t.Errorf("p99 = %v, want within one bucket of 50ms", p99)
	}
	if mean := h.Mean(); mean < 4*time.Millisecond || mean > 7*time.Millisecond {
		t.Errorf("mean = %v, want ~5ms", mean)
	}
}

// TestHistogramConcurrency hammers one histogram from many goroutines
// while scraping it; run under -race this is the data-race check for
// the lock-free bucket scheme, and the final totals prove no lost
// updates.
func TestHistogramConcurrency(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("conc_seconds", "Concurrency check.")
	const goroutines = 8
	const per = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = reg.WriteText(&sb)
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveNanos(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d (lost updates)", got, goroutines*per)
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != goroutines*per {
		t.Fatalf("bucket sum = %d, want %d", cum, goroutines*per)
	}
}

// TestTraceRingWraparound fills a small ring past capacity and checks
// retention, ordering, and the total counter.
func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		r.Add(ReadTrace{Doc: fmt.Sprintf("d%d", i)})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	got := r.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("Snapshot kept %d, want 4", len(got))
	}
	for i, want := range []string{"d9", "d8", "d7", "d6"} { // newest first
		if got[i].Doc != want {
			t.Errorf("Snapshot[%d].Doc = %s, want %s", i, got[i].Doc, want)
		}
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].Doc != "d9" || got[1].Doc != "d8" {
		t.Errorf("Snapshot(2) = %v", got)
	}
	// Before wraparound, a fresh ring returns only what was added.
	r2 := NewTraceRing(4)
	r2.Add(ReadTrace{Doc: "only"})
	if got := r2.Snapshot(0); len(got) != 1 || got[0].Doc != "only" {
		t.Errorf("fresh ring Snapshot = %v", got)
	}
}

// TestTraceRingConcurrency exercises Add/Snapshot races under -race.
func TestTraceRingConcurrency(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Add(ReadTrace{Doc: "d", Total: time.Duration(i)})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = r.Snapshot(16)
		}
	}()
	wg.Wait()
	if r.Total() != 8000 {
		t.Fatalf("Total = %d, want 8000", r.Total())
	}
}

// TestObserverReadRecording checks that one ObserveRead lands in the
// verdict counter, the stage histograms, and the ring.
func TestObserverReadRecording(t *testing.T) {
	o := NewObserver()
	o.ObserveRead(ReadTrace{
		Doc: "d", User: "u", Verdict: VerdictMemo, Cause: CauseContentWrite,
		Total: 5 * time.Millisecond, Lookup: 2 * time.Microsecond,
		BitFetch: time.Millisecond, Universal: 40 * time.Microsecond,
		Personal: 300 * time.Microsecond,
	})
	o.ObserveRead(ReadTrace{Doc: "d", User: "u", Verdict: VerdictHit,
		Total: 3 * time.Microsecond, Lookup: time.Microsecond, Verify: time.Microsecond})
	o.Invalidation(CauseReorder)

	if got := o.VerdictCounts(); got[VerdictMemo] != 1 || got[VerdictHit] != 1 {
		t.Errorf("VerdictCounts = %v", got)
	}
	if got := o.CauseCounts(); got[CauseReorder] != 1 {
		t.Errorf("CauseCounts = %v", got)
	}
	if got := o.StageHistogram(StageUniversal).Count(); got != 1 {
		t.Errorf("universal stage count = %d, want 1", got)
	}
	if got := o.StageHistogram(StageVerify).Count(); got != 1 {
		t.Errorf("verify stage count = %d, want 1", got)
	}
	if got := o.ReadHistogram().Count(); got != 2 {
		t.Errorf("read histogram count = %d, want 2", got)
	}
	if got := o.Ring().Snapshot(0); len(got) != 2 || got[0].Verdict != VerdictHit {
		t.Errorf("ring = %+v", got)
	}
}

// TestHandlers exercises the HTTP surface: /metrics media type and
// content, /debug/traces JSON shape and the ?n= bound.
func TestHandlers(t *testing.T) {
	o := NewObserver()
	for i := 0; i < 5; i++ {
		o.ObserveRead(ReadTrace{Doc: fmt.Sprintf("d%d", i), User: "u",
			Verdict: VerdictMiss, Cause: CauseCold, Total: time.Millisecond})
	}

	mux := httptest.NewServer(o.MetricsHandler())
	defer mux.Close()
	resp, err := mux.Client().Get(mux.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, `placeless_reads_total{verdict="miss"} 5`) {
		t.Errorf("/metrics missing miss count; got:\n%s", body)
	}

	ts := httptest.NewServer(o.TracesHandler())
	defer ts.Close()
	resp2, err := ts.Client().Get(ts.URL + "?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var dump TraceDump
	if err := json.NewDecoder(resp2.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Total != 5 || len(dump.Traces) != 2 || dump.Traces[0].Doc != "d4" {
		t.Errorf("trace dump = %+v", dump)
	}
	if resp3, _ := ts.Client().Get(ts.URL + "?n=bogus"); resp3.StatusCode != 400 {
		t.Errorf("bad ?n= returned %d, want 400", resp3.StatusCode)
	}
}
