package obs

import (
	"bufio"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram built for hot-path
// use: Observe is two atomic adds and a bit-length computation, with
// no locks, no allocation, and no stored samples. This is the
// production counterpart to metrics.Histogram, which keeps every
// sample for exact percentiles and is priced for the experiment
// harness, not for millions of reads.
//
// Buckets are powers of two in nanoseconds from 2^histMinExp (1.024µs)
// to 2^histMaxExp (~17.2s); durations above the range land in the
// implicit +Inf bucket. Power-of-two bounds make bucket selection a
// single bits.Len64 and bound error at most 2×, which is ample for
// the question per-stage histograms answer (which stage costs the
// time, and has its distribution moved).

const (
	// histMinExp is the exponent of the first bucket bound (2^10 ns).
	histMinExp = 10
	// histMaxExp is the exponent of the last finite bound (2^34 ns).
	histMaxExp = 34
	// histBounds is the number of finite bucket bounds.
	histBounds = histMaxExp - histMinExp + 1
)

// Histogram's zero value is ready to use.
type Histogram struct {
	// counts[i] for i < histBounds holds observations with
	// d <= 2^(histMinExp+i) ns (non-cumulative); counts[histBounds]
	// is the +Inf overflow bucket.
	counts [histBounds + 1]atomic.Int64
	sum    atomic.Int64 // nanoseconds
	n      atomic.Int64
}

// bucketFor maps a nanosecond duration to its bucket index.
func bucketFor(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns)) - histMinExp
	if i < 0 {
		return 0
	}
	if i > histBounds {
		return histBounds
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one duration given in nanoseconds.
func (h *Histogram) ObserveNanos(ns int64) {
	h.counts[bucketFor(ns)].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
}

// ObserveSince records the elapsed time from t0 to now.
func (h *Histogram) ObserveSince(t0 time.Time) { h.ObserveNanos(int64(time.Since(t0))) }

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum reports the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean reports the average observation, or 0 with none.
func (h *Histogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// boundNanos returns the upper bound of finite bucket i in ns.
func boundNanos(i int) int64 { return int64(1) << (histMinExp + i) }

// Quantile returns an upper-bound estimate of the q-quantile
// (0 < q <= 1): the bound of the bucket containing the q-th ranked
// observation. Observations in the overflow bucket report twice the
// last finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i <= histBounds; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i == histBounds {
				return 2 * time.Duration(boundNanos(histBounds-1))
			}
			return time.Duration(boundNanos(i))
		}
	}
	return 2 * time.Duration(boundNanos(histBounds-1))
}

// write renders the histogram in exposition format under name, with
// labels (e.g. `stage="universal"`) merged into each sample's label
// set. Bucket counts are cumulative per the Prometheus contract.
//
// A scrape racing concurrent Observes can see a bucket increment
// without the matching sum/count increment (or vice versa); each
// sample line is itself consistent, which is the usual monitoring
// contract.
func (h *Histogram) write(w *bufio.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i := 0; i < histBounds; i++ {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatSeconds(boundNanos(i)), cum)
	}
	cum += h.counts[histBounds].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatSeconds(h.sum.Load()), name, h.n.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, labels, formatSeconds(h.sum.Load()), name, labels, h.n.Load())
	}
}
