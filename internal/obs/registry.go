package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"placeless/internal/metrics"
)

// Registry is an ordered set of metric families rendered in the
// Prometheus text exposition format (version 0.0.4). Families are
// registered once at wiring time — duplicate names panic, because a
// silent rename or collision is exactly what the golden metric-name
// check exists to catch — and scraped concurrently thereafter.
//
// Counters and gauges are registered as read functions rather than
// owned values, so existing atomic counters (metrics.Counter, the
// cache's statsCounters) export without migrating their storage: the
// hot path keeps its lock-free increments and the registry reads the
// same atomics at scrape time.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family and its renderer.
type family struct {
	name, help, typ string
	render          func(w *bufio.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// add registers a family, panicking on duplicates.
func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[f.name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric family %q", f.name))
	}
	r.families[f.name] = f
}

// Counter registers a cumulative counter read from fn at scrape time.
func (r *Registry) Counter(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, typ: "counter", render: func(w *bufio.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, fn())
	}})
}

// Gauge registers a point-in-time value read from fn at scrape time.
func (r *Registry) Gauge(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, typ: "gauge", render: func(w *bufio.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, fn())
	}})
}

// CounterVec registers a label-partitioned counter family and returns
// the vector. The values given here pre-exist with count 0 so a scrape
// shows the full label space before traffic arrives; unknown values
// are added on first use.
func (r *Registry) CounterVec(name, help, label string, values ...string) *CounterVec {
	v := &CounterVec{label: label, vals: make(map[string]*metrics.Counter)}
	for _, val := range values {
		v.vals[val] = &metrics.Counter{}
	}
	r.add(&family{name: name, help: help, typ: "counter", render: func(w *bufio.Writer) {
		for _, val := range v.labels() {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, val, v.Value(val))
		}
	}})
	return v
}

// Histogram registers a latency histogram family and returns it.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.add(&family{name: name, help: help, typ: "histogram", render: func(w *bufio.Writer) {
		h.write(w, name, "")
	}})
	return h
}

// HistogramVec registers a label-partitioned histogram family with a
// fixed value set (per-stage latency is the intended use: the stage
// vocabulary is closed).
func (r *Registry) HistogramVec(name, help, label string, values ...string) *HistogramVec {
	v := &HistogramVec{byLabel: make(map[string]*Histogram, len(values)), order: append([]string(nil), values...)}
	for _, val := range values {
		v.byLabel[val] = &Histogram{}
	}
	r.add(&family{name: name, help: help, typ: "histogram", render: func(w *bufio.Writer) {
		for _, val := range v.order {
			v.byLabel[val].write(w, name, fmt.Sprintf("%s=%q", label, val))
		}
	}})
	return v
}

// Names returns the registered family names in sorted order — the
// contract surface the golden metric-name list pins.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteText renders every family in the Prometheus text exposition
// format, sorted by family name so output is stable for golden tests
// and diff-based monitoring.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ordered := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		ordered = append(ordered, f)
	}
	r.mu.Unlock()
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].name < ordered[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range ordered {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		f.render(bw)
	}
	return bw.Flush()
}

// CounterVec is a counter family partitioned by one label. The fast
// path (a pre-registered label value) is a read-locked map lookup and
// a lock-free atomic add.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	vals  map[string]*metrics.Counter
}

// Inc adds one to the counter for value, creating it on first use.
func (v *CounterVec) Inc(value string) { v.counter(value).Inc() }

// Add adds delta to the counter for value, creating it on first use.
func (v *CounterVec) Add(value string, delta int64) { v.counter(value).Add(delta) }

// Value returns the current count for value (0 if never touched).
func (v *CounterVec) Value(value string) int64 {
	v.mu.RLock()
	c := v.vals[value]
	v.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Values returns a snapshot of every label value's count.
func (v *CounterVec) Values() map[string]int64 {
	out := make(map[string]int64)
	for _, val := range v.labels() {
		out[val] = v.Value(val)
	}
	return out
}

// counter returns the counter for value, creating it if needed.
func (v *CounterVec) counter(value string) *metrics.Counter {
	v.mu.RLock()
	c := v.vals[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.vals[value]; c == nil {
		c = &metrics.Counter{}
		v.vals[value] = c
	}
	return c
}

// labels returns the label values in sorted order.
func (v *CounterVec) labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.vals))
	for val := range v.vals {
		out = append(out, val)
	}
	sort.Strings(out)
	return out
}

// HistogramVec is a histogram family partitioned by one label with a
// fixed value set; lookups are lock-free map reads (the map is
// immutable after construction).
type HistogramVec struct {
	byLabel map[string]*Histogram
	order   []string
}

// Observe records d under value; unknown values are dropped (the
// stage vocabulary is closed, so a miss is a programming error the
// tests catch, not a runtime condition worth a lock).
func (v *HistogramVec) Observe(value string, d int64) {
	if h := v.byLabel[value]; h != nil {
		h.ObserveNanos(d)
	}
}

// With returns the histogram for value, or nil for unknown values.
func (v *HistogramVec) With(value string) *Histogram { return v.byLabel[value] }

// formatSeconds renders a nanosecond count as seconds in the shortest
// float form, the unit Prometheus conventions require.
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
