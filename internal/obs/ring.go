package obs

import (
	"sync"
	"time"
)

// Read verdicts: the outcome classification every read trace and the
// placeless_reads_total counter share.
const (
	// VerdictHit is a read served from the cache, verifiers passed.
	VerdictHit = "hit"
	// VerdictMiss is a read that executed the full read path.
	VerdictMiss = "miss"
	// VerdictMemo is a miss whose universal stage was served from the
	// intermediate store (only the personal suffix executed).
	VerdictMemo = "memo"
	// VerdictCoalesced is a read that joined another goroutine's
	// in-flight miss and shared its result.
	VerdictCoalesced = "coalesced"
	// VerdictDisk is a miss served by promoting a durable entry from
	// the content-addressed disk tier (revalidated, no transform ran).
	VerdictDisk = "disk"
	// VerdictError is a read that failed.
	VerdictError = "error"
)

// Invalidation causes: the paper's four causes of cached-content
// invalidation (§3), plus the two miss attributions that are not
// notifier-driven. Counter labels and trace cause fields share this
// vocabulary.
const (
	// CauseContentWrite is cause 1: document content changed through
	// the Placeless system.
	CauseContentWrite = "content-write"
	// CauseProperty is cause 2: an active property was added, removed
	// or modified.
	CauseProperty = "property-change"
	// CauseReorder is cause 3: property execution order changed.
	CauseReorder = "reorder"
	// CauseExternal is cause 4: information outside Placeless control
	// changed.
	CauseExternal = "external"
	// CauseVerifier attributes a miss to a verifier rejecting the
	// previous entry on a hit (the pull-side of cause 4).
	CauseVerifier = "verifier-reject"
	// CauseCold attributes a miss to the entry never having been
	// cached (first access, eviction, or restart).
	CauseCold = "cold"
	// CauseDegraded attributes an invalidation (or refused read) to a
	// lost invalidation stream: entries cached under a connection
	// epoch that ended are flushed at reconnect because pushes may
	// have been missed while disconnected (the remote cache's
	// degraded-mode cause).
	CauseDegraded = "degraded"
)

// ReadTrace is one read's record: identity, outcome, attribution, and
// wall-clock stage timings. Durations marshal as nanoseconds.
// Stages that did not run on this read are zero and omitted.
type ReadTrace struct {
	// Time is when the read completed.
	Time time.Time `json:"time"`
	// Doc and User identify the entry read.
	Doc  string `json:"doc"`
	User string `json:"user"`
	// Verdict is one of the Verdict* constants.
	Verdict string `json:"verdict"`
	// Coalesced marks a read that waited on another goroutine's
	// flight; its stage timings beyond FlightWait belong to the leader.
	Coalesced bool `json:"coalesced,omitempty"`
	// Cause attributes a miss to what removed (or never admitted) the
	// previous entry: one of the Cause* constants. Empty on hits.
	Cause string `json:"cause,omitempty"`
	// Err is the error text for VerdictError reads.
	Err string `json:"err,omitempty"`
	// Total is the end-to-end read latency.
	Total time.Duration `json:"total_ns"`
	// Lookup is the sharded index lookup (stage shard_lookup).
	Lookup time.Duration `json:"lookup_ns,omitempty"`
	// FlightWait is time blocked on another goroutine's in-flight
	// read (stage flight_wait).
	FlightWait time.Duration `json:"flight_wait_ns,omitempty"`
	// Verify is hit-time verifier execution (stage verify).
	Verify time.Duration `json:"verify_ns,omitempty"`
	// BitFetch is raw source retrieval on a staged miss (stage
	// bit_fetch).
	BitFetch time.Duration `json:"bit_fetch_ns,omitempty"`
	// Universal is the universal property stage on a staged miss —
	// memo lookup on a memo verdict, full execution otherwise (stage
	// universal).
	Universal time.Duration `json:"universal_ns,omitempty"`
	// Personal is the personal property suffix on a staged miss
	// (stage personal).
	Personal time.Duration `json:"personal_ns,omitempty"`
	// FullChain is the undivided read path on an unstaged miss
	// (stage full_chain).
	FullChain time.Duration `json:"full_chain_ns,omitempty"`
	// Remote is the wire round trip for remote-cache misses (stage
	// remote_rtt).
	Remote time.Duration `json:"remote_ns,omitempty"`
	// PrefixCuts is the number of memoizable cut points the staged
	// read offered the intermediate store (the N-segment prefix
	// pipeline); zero when the staged split was not attempted.
	PrefixCuts int `json:"prefix_cuts,omitempty"`
	// PrefixDepth is the index of the deepest cached prefix served by
	// the longest-prefix probe, -1 when the probe found nothing.
	// Meaningful only when PrefixCuts > 0.
	PrefixDepth int `json:"prefix_depth,omitempty"`
}

// TraceRing is a fixed-capacity ring of the most recent read traces.
// A single mutex guards it: one uncontended lock and a struct copy
// per read keeps the budget well under the microsecond-scale read
// path, and snapshots (rare, operator-driven) pay the full copy.
type TraceRing struct {
	mu    sync.Mutex
	buf   []ReadTrace
	next  int
	total uint64
}

// NewTraceRing returns a ring keeping the last n traces (n <= 0
// selects the default of 1024).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 1024
	}
	return &TraceRing{buf: make([]ReadTrace, n)}
}

// Add records one trace, overwriting the oldest once full.
func (r *TraceRing) Add(t ReadTrace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total reports how many traces were ever recorded (including those
// already overwritten).
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns up to n of the most recent traces, newest first.
// n <= 0 returns everything retained.
func (r *TraceRing) Snapshot(n int) []ReadTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := int(r.total)
	if have > len(r.buf) {
		have = len(r.buf)
	}
	if n <= 0 || n > have {
		n = have
	}
	out := make([]ReadTrace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
