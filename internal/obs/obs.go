// Package obs is the observability layer for the Placeless read/write
// path: a metric registry with Prometheus text exposition, low-overhead
// per-stage latency histograms, and a ring buffer of per-read trace
// records.
//
// The caching design lives or dies on knowing why a read was a hit, a
// miss, or a recompute — which of the paper's four invalidation causes
// fired, which stage of the transform chain cost the time. This
// package gives every subsystem one place to answer that:
//
//   - internal/core registers its counters/gauges under stable
//     placeless_cache_* names and, per read, records stage timings and
//     a ReadTrace (verdict, miss cause, per-stage latency).
//   - internal/remote records the wire round trip and its
//     placeless_remote_* counters.
//   - notifier-driven invalidations count under
//     placeless_invalidation_causes_total{cause=...}, labelled with the
//     paper's four causes.
//   - internal/httpgw and cmd/placelessd mount the /metrics,
//     /debug/traces and /debug/pprof endpoints via Observer.Mount.
//
// Overhead budget: with an Observer attached, a read pays a handful of
// time.Now calls, two atomic adds per stage histogram, and one
// uncontended mutex lock for the trace ring — measured under 5% on the
// parallel hit benchmark (EXPERIMENTS.md E13). With a nil Observer the
// instrumented paths skip all of it.
package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"placeless/internal/stream"
)

// Stage names for placeless_read_stage_duration_seconds{stage=...}.
// The vocabulary is closed: every instrumented span on the read path
// has exactly one name here.
const (
	// StageShardLookup is the sharded (doc, user) index lookup.
	StageShardLookup = "shard_lookup"
	// StageFlightWait is time blocked on another goroutine's
	// single-flight read-path execution.
	StageFlightWait = "flight_wait"
	// StageVerify is hit-time verifier execution.
	StageVerify = "verify"
	// StageBitFetch is raw source retrieval (bit-provider open plus
	// drain) on a staged miss.
	StageBitFetch = "bit_fetch"
	// StageUniversal is the universal property stage on a staged miss
	// (memo lookup on an intermediate hit, full execution otherwise).
	StageUniversal = "universal"
	// StagePersonal is the personal property suffix on a staged miss.
	StagePersonal = "personal"
	// StageFullChain is the undivided read path on an unstaged miss,
	// where the universal/personal boundary is not observable.
	StageFullChain = "full_chain"
	// StageRemoteRTT is the wire round trip of a remote-cache miss.
	StageRemoteRTT = "remote_rtt"
)

// StageNames returns every stage name, in read-path order.
func StageNames() []string {
	return []string{StageShardLookup, StageFlightWait, StageVerify,
		StageBitFetch, StageUniversal, StagePersonal, StageFullChain, StageRemoteRTT}
}

// Verdicts returns every read verdict.
func Verdicts() []string {
	return []string{VerdictHit, VerdictMiss, VerdictMemo, VerdictDisk, VerdictCoalesced, VerdictError}
}

// Causes returns the paper's four invalidation causes plus the
// degraded-mode cause (the label set of
// placeless_invalidation_causes_total).
func Causes() []string {
	return []string{CauseContentWrite, CauseProperty, CauseReorder, CauseExternal, CauseDegraded}
}

// Observer bundles the registry, the read-path histograms, the
// invalidation-cause counters, and the trace ring. One Observer serves
// one process: subsystems register their metric families on its
// registry at wiring time (duplicate names panic), then record into it
// from the hot path.
type Observer struct {
	reg      *Registry
	total    *Histogram
	stages   *HistogramVec
	verdicts *CounterVec
	causes   *CounterVec
	ring     *TraceRing
}

// NewObserver returns an Observer with the read-path families
// registered: placeless_read_duration_seconds,
// placeless_read_stage_duration_seconds{stage},
// placeless_reads_total{verdict},
// placeless_invalidation_causes_total{cause},
// placeless_traces_recorded_total, and the process-wide
// placeless_stream_pool_* counters.
func NewObserver() *Observer {
	reg := NewRegistry()
	o := &Observer{
		reg:  reg,
		ring: NewTraceRing(0),
	}
	o.total = reg.Histogram("placeless_read_duration_seconds",
		"End-to-end latency of cache reads.")
	o.stages = reg.HistogramVec("placeless_read_stage_duration_seconds",
		"Read-path latency by stage.", "stage", StageNames()...)
	o.verdicts = reg.CounterVec("placeless_reads_total",
		"Reads by outcome verdict.", "verdict", Verdicts()...)
	o.causes = reg.CounterVec("placeless_invalidation_causes_total",
		"Notifier-driven invalidations by paper cause.", "cause", Causes()...)
	reg.Counter("placeless_traces_recorded_total",
		"Read traces recorded into the ring buffer.",
		func() int64 { return int64(o.ring.Total()) })
	reg.Counter("placeless_stream_pool_gets_total",
		"Scratch staging buffers fetched from the stream pool.",
		func() int64 { gets, _, _ := stream.PoolStats(); return gets })
	reg.Counter("placeless_stream_pool_news_total",
		"Scratch staging buffers newly allocated (pool misses).",
		func() int64 { _, news, _ := stream.PoolStats(); return news })
	reg.Counter("placeless_stream_pool_drops_total",
		"Oversized scratch buffers dropped instead of pooled.",
		func() int64 { _, _, drops := stream.PoolStats(); return drops })
	return o
}

// Registry returns the observer's metric registry, for subsystems
// registering their own families.
func (o *Observer) Registry() *Registry { return o.reg }

// Ring returns the read-trace ring buffer.
func (o *Observer) Ring() *TraceRing { return o.ring }

// ObserveStage records one stage duration directly (used for spans
// recorded outside a full ReadTrace, e.g. the remote round trip).
func (o *Observer) ObserveStage(stage string, d time.Duration) {
	o.stages.Observe(stage, int64(d))
}

// StageHistogram returns the histogram behind one stage, or nil for
// an unknown stage name.
func (o *Observer) StageHistogram(stage string) *Histogram { return o.stages.With(stage) }

// ReadHistogram returns the end-to-end read latency histogram.
func (o *Observer) ReadHistogram() *Histogram { return o.total }

// VerdictCounts returns a snapshot of placeless_reads_total.
func (o *Observer) VerdictCounts() map[string]int64 { return o.verdicts.Values() }

// CauseCounts returns a snapshot of
// placeless_invalidation_causes_total.
func (o *Observer) CauseCounts() map[string]int64 { return o.causes.Values() }

// Invalidation counts one notifier-driven invalidation under its
// paper cause.
func (o *Observer) Invalidation(cause string) { o.causes.Inc(cause) }

// Invalidations counts n invalidations under one cause (used by bulk
// events such as the remote cache's reconnect epoch flush).
func (o *Observer) Invalidations(cause string, n int64) {
	if n > 0 {
		o.causes.Add(cause, n)
	}
}

// ObserveRead records a completed read: verdict counter, end-to-end
// histogram, each non-zero stage timing, and the trace ring.
func (o *Observer) ObserveRead(t ReadTrace) {
	o.verdicts.Inc(t.Verdict)
	o.total.Observe(t.Total)
	if t.Lookup > 0 {
		o.stages.Observe(StageShardLookup, int64(t.Lookup))
	}
	if t.FlightWait > 0 {
		o.stages.Observe(StageFlightWait, int64(t.FlightWait))
	}
	if t.Verify > 0 {
		o.stages.Observe(StageVerify, int64(t.Verify))
	}
	if t.BitFetch > 0 {
		o.stages.Observe(StageBitFetch, int64(t.BitFetch))
	}
	if t.Universal > 0 {
		o.stages.Observe(StageUniversal, int64(t.Universal))
	}
	if t.Personal > 0 {
		o.stages.Observe(StagePersonal, int64(t.Personal))
	}
	if t.FullChain > 0 {
		o.stages.Observe(StageFullChain, int64(t.FullChain))
	}
	if t.Remote > 0 {
		o.stages.Observe(StageRemoteRTT, int64(t.Remote))
	}
	o.ring.Add(t)
}

// TraceDump is the JSON shape of /debug/traces.
type TraceDump struct {
	// Total is how many traces were ever recorded.
	Total uint64 `json:"total"`
	// Traces are the most recent records, newest first.
	Traces []ReadTrace `json:"traces"`
}

// MetricsHandler serves the registry in Prometheus text exposition
// format.
func (o *Observer) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.reg.WriteText(w)
	})
}

// TracesHandler serves the trace ring as JSON; ?n= bounds how many
// records return (default 50, newest first).
func (o *Observer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 50
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad ?n= parameter", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(TraceDump{Total: o.ring.Total(), Traces: o.ring.Snapshot(n)})
	})
}

// Mount registers the observability endpoints on mux: /metrics
// (Prometheus text), /debug/traces (JSON ring dump), and the standard
// net/http/pprof handlers under /debug/pprof/. Call once per mux.
func (o *Observer) Mount(mux *http.ServeMux) {
	mux.Handle("/metrics", o.MetricsHandler())
	mux.Handle("/debug/traces", o.TracesHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
