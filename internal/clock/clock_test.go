package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC) // HotOS VII week

func TestVirtualNow(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", v.Now(), epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(90 * time.Millisecond)
	want := epoch.Add(90 * time.Millisecond)
	if !v.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", v.Now(), want)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual(epoch)
	start := time.Now()
	v.Sleep(10 * time.Hour)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("virtual Sleep blocked for %v of wall time", elapsed)
	}
	if got := v.Now().Sub(epoch); got != 10*time.Hour {
		t.Fatalf("advanced %v, want 10h", got)
	}
}

func TestVirtualNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewVirtual(epoch).Advance(-1)
}

func TestAfterFuncFiresInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var got []int
	v.AfterFunc(30*time.Millisecond, func(time.Time) { got = append(got, 3) })
	v.AfterFunc(10*time.Millisecond, func(time.Time) { got = append(got, 1) })
	v.AfterFunc(20*time.Millisecond, func(time.Time) { got = append(got, 2) })
	v.Advance(25 * time.Millisecond)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("after 25ms got %v, want [1 2]", got)
	}
	v.Advance(10 * time.Millisecond)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("after 35ms got %v, want [1 2 3]", got)
	}
}

func TestAfterFuncSameInstantFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		v.AfterFunc(time.Millisecond, func(time.Time) { got = append(got, i) })
	}
	v.Advance(time.Millisecond)
	for i, g := range got {
		if g != i {
			t.Fatalf("same-instant timers fired out of order: %v", got)
		}
	}
}

func TestAfterFuncSeesFiringTime(t *testing.T) {
	v := NewVirtual(epoch)
	var at time.Time
	v.AfterFunc(7*time.Millisecond, func(now time.Time) { at = now })
	v.Advance(time.Second)
	if want := epoch.Add(7 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback time = %v, want %v", at, want)
	}
}

func TestAfterFuncCancel(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	cancel := v.AfterFunc(time.Millisecond, func(time.Time) { fired = true })
	cancel()
	cancel() // double-cancel must be safe
	v.Advance(time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if n := v.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d, want 0", n)
	}
}

func TestRescheduleWithinAdvance(t *testing.T) {
	// A periodic timer (like the paper's end-of-day replication
	// property) rescheduling itself must keep firing within one
	// large Advance.
	v := NewVirtual(epoch)
	count := 0
	var tick func(time.Time)
	tick = func(time.Time) {
		count++
		if count < 5 {
			v.AfterFunc(24*time.Hour, tick)
		}
	}
	v.AfterFunc(24*time.Hour, tick)
	v.Advance(7 * 24 * time.Hour)
	if count != 5 {
		t.Fatalf("periodic timer fired %d times, want 5", count)
	}
}

func TestAdvanceTo(t *testing.T) {
	v := NewVirtual(epoch)
	target := epoch.Add(time.Minute)
	v.AdvanceTo(target)
	if !v.Now().Equal(target) {
		t.Fatalf("Now = %v, want %v", v.Now(), target)
	}
	v.AdvanceTo(epoch) // past: no-op
	if !v.Now().Equal(target) {
		t.Fatal("AdvanceTo moved the clock backwards")
	}
}

func TestVirtualConcurrentAccess(t *testing.T) {
	v := NewVirtual(epoch)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Advance(time.Microsecond)
				_ = v.Now()
				cancel := v.AfterFunc(time.Millisecond, func(time.Time) {})
				cancel()
			}
		}()
	}
	wg.Wait()
	if got := v.Now().Sub(epoch); got < 800*time.Microsecond {
		t.Fatalf("clock advanced only %v", got)
	}
}

func TestNextTimerAndAdvanceToNextTimer(t *testing.T) {
	v := NewVirtual(epoch)
	if _, ok := v.NextTimer(); ok {
		t.Fatal("NextTimer reported a timer on an empty clock")
	}
	if v.AdvanceToNextTimer() {
		t.Fatal("AdvanceToNextTimer advanced an empty clock")
	}
	if !v.Now().Equal(epoch) {
		t.Fatal("empty AdvanceToNextTimer moved time")
	}

	var got []int
	v.AfterFunc(30*time.Millisecond, func(time.Time) { got = append(got, 2) })
	v.AfterFunc(10*time.Millisecond, func(time.Time) { got = append(got, 1) })
	at, ok := v.NextTimer()
	if !ok || !at.Equal(epoch.Add(10*time.Millisecond)) {
		t.Fatalf("NextTimer = %v,%v; want %v", at, ok, epoch.Add(10*time.Millisecond))
	}
	if !v.AdvanceToNextTimer() {
		t.Fatal("AdvanceToNextTimer found no timer")
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after first step got %v, want [1]", got)
	}
	if want := epoch.Add(10 * time.Millisecond); !v.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", v.Now(), want)
	}
	if !v.AdvanceToNextTimer() {
		t.Fatal("second AdvanceToNextTimer found no timer")
	}
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("after second step got %v, want [1 2]", got)
	}
}

func TestAdvanceToNextTimerFiresDueTimer(t *testing.T) {
	// A timer scheduled with d=0 is due at the current instant;
	// stepping to it must fire it rather than spin.
	v := NewVirtual(epoch)
	fired := false
	v.AfterFunc(0, func(time.Time) { fired = true })
	if !v.AdvanceToNextTimer() {
		t.Fatal("due timer not seen")
	}
	if !fired {
		t.Fatal("due timer did not fire")
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("Real.Now far in the past")
	}
	c.Sleep(time.Millisecond)
}

// Property: advancing by a sequence of non-negative durations ends at
// start + sum, regardless of how the sum is split up.
func TestAdvanceAdditiveProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		v := NewVirtual(epoch)
		var total time.Duration
		for _, s := range steps {
			d := time.Duration(s) * time.Microsecond
			total += d
			v.Advance(d)
		}
		return v.Now().Equal(epoch.Add(total))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a timer scheduled at offset d fires iff the clock is
// advanced at least d.
func TestTimerFiringProperty(t *testing.T) {
	f := func(d, adv uint16) bool {
		v := NewVirtual(epoch)
		fired := false
		v.AfterFunc(time.Duration(d)*time.Microsecond, func(time.Time) { fired = true })
		v.Advance(time.Duration(adv) * time.Microsecond)
		return fired == (adv >= d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
