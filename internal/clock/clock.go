// Package clock provides time sources for the Placeless system.
//
// All latency-sensitive components (repositories, the network model,
// caches, verifiers, and timer-driven active properties) take a Clock
// rather than calling time.Now directly. Production code uses Real;
// simulations and tests use a Virtual clock that advances only when
// told to, which makes every experiment in this repository
// deterministic and lets the benchmark harness reproduce the paper's
// millisecond-scale access times without sleeping for real.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is a source of time. Sleep advances past d; on a Virtual clock
// it advances simulated time instantly, on a Real clock it blocks.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
	// Sleep advances the clock by d. On a Virtual clock this is
	// instantaneous wall-clock-wise; on Real it blocks the caller.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the operating system's wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// AfterFunc schedules fn on the wall clock, satisfying the timer
// capability document spaces need (docspace.TimerClock).
func (Real) AfterFunc(d time.Duration, fn func(now time.Time)) (cancel func()) {
	t := time.AfterFunc(d, func() { fn(time.Now()) })
	return func() { t.Stop() }
}

// timerEntry is a scheduled callback inside a Virtual clock.
type timerEntry struct {
	at  time.Time
	seq uint64 // tie-break so same-instant timers fire in schedule order
	fn  func(now time.Time)
}

// timerHeap orders timers by firing time, then by scheduling order.
type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timerEntry)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Virtual is a deterministic simulated clock. Time advances only via
// Advance or Sleep. Callbacks scheduled with AfterFunc fire, in
// timestamp order, while time is being advanced, which is how
// timer-driven active properties (e.g. nightly replication) run in
// simulation.
//
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers timerHeap
}

// NewVirtual returns a Virtual clock whose current time is start.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{now: start}
	heap.Init(&v.timers)
	return v
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing simulated time by d.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves simulated time forward by d, firing any timers whose
// deadline is reached, in deadline order. Timer callbacks run without
// the clock lock held and may themselves schedule further timers; a
// callback that schedules a timer within the advanced window will see
// it fire during the same Advance call.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: negative advance")
	}
	v.mu.Lock()
	target := v.now.Add(d)
	for {
		if len(v.timers) == 0 || v.timers[0].at.After(target) {
			break
		}
		e := heap.Pop(&v.timers).(*timerEntry)
		if e.at.After(v.now) {
			v.now = e.at
		}
		now := v.now
		v.mu.Unlock()
		e.fn(now)
		v.mu.Lock()
	}
	if target.After(v.now) {
		v.now = target
	}
	v.mu.Unlock()
}

// AdvanceTo moves simulated time forward to t (no-op if t is in the past).
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	now := v.now
	v.mu.Unlock()
	if t.After(now) {
		v.Advance(t.Sub(now))
	}
}

// AfterFunc schedules fn to run when the clock reaches now+d. It
// returns a cancel function; cancelling after the timer fired is a
// no-op. fn receives the simulated time at which it fires.
func (v *Virtual) AfterFunc(d time.Duration, fn func(now time.Time)) (cancel func()) {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	v.seq++
	e := &timerEntry{at: v.now.Add(d), seq: v.seq, fn: fn}
	heap.Push(&v.timers, e)
	v.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			v.mu.Lock()
			defer v.mu.Unlock()
			for i, t := range v.timers {
				if t == e {
					heap.Remove(&v.timers, i)
					break
				}
			}
		})
	}
}

// PendingTimers reports how many scheduled callbacks have not yet fired.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// NextTimer returns the deadline of the earliest pending timer, or
// ok=false when nothing is scheduled. Simulation watchdogs use it to
// decide how far time must move to unstick a blocked operation.
func (v *Virtual) NextTimer() (at time.Time, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return time.Time{}, false
	}
	return v.timers[0].at, true
}

// AdvanceToNextTimer advances simulated time exactly to the earliest
// pending timer, firing it (and any callbacks it schedules at or
// before that instant). It reports whether a timer was pending; when
// none is, time does not move.
func (v *Virtual) AdvanceToNextTimer() bool {
	at, ok := v.NextTimer()
	if !ok {
		return false
	}
	d := at.Sub(v.Now())
	if d < 0 {
		d = 0 // a due timer still fires via Advance(0)
	}
	v.Advance(d)
	return true
}
