package remote

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

// rig is a running server plus a cached client.
type rig struct {
	srv    *server.Server
	client *server.Client
	cache  *Cache
	space  *docspace.Space
	feed   *repo.LiveFeed
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	backing := repo.NewMem("srv", clk, simnet.NewPath("loop", 1))
	space := docspace.New(clk, nil)
	srv := server.New(space, backing)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start")
	}
	client, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		srv: srv, client: client, space: space,
		feed:  repo.NewLiveFeed("cam", clk, simnet.NewPath("loop", 2), 64),
		cache: New(client, opts),
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		<-done
	})
	return r
}

// waitFor polls cond until true or the deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestMissThenHit(t *testing.T) {
	r := newRig(t, Options{})
	if err := r.client.CreateDocument("d", "u", []byte("remote bits")); err != nil {
		t.Fatal(err)
	}
	a, err := r.cache.Read("d", "u")
	if err != nil || string(a) != "remote bits" {
		t.Fatalf("read = %q, %v", a, err)
	}
	b, _ := r.cache.Read("d", "u")
	if !bytes.Equal(a, b) {
		t.Fatal("hit content differs")
	}
	st := r.cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPushInvalidationOnRemoteWrite(t *testing.T) {
	r := newRig(t, Options{})
	r.client.CreateDocument("d", "eyal", []byte("v1"))
	r.client.AddReference("d", "doug")
	if _, err := r.cache.Read("d", "eyal"); err != nil {
		t.Fatal(err)
	}
	// Doug writes through the same cache/client: the server's
	// notifier pushes back the invalidation.
	if err := r.cache.Write("d", "doug", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return !r.cache.Contains("d", "eyal") })
	got, _ := r.cache.Read("d", "eyal")
	if string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
	if st := r.cache.Stats(); st.Invalidations == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPushInvalidationOnPropertyChange(t *testing.T) {
	r := newRig(t, Options{})
	r.client.CreateDocument("d", "u", []byte("the paper"))
	r.cache.Read("d", "u")
	if err := r.client.Attach("d", "u", true, "translate-fr"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return !r.cache.Contains("d", "u") })
	got, _ := r.cache.Read("d", "u")
	if string(got) != "le papier" {
		t.Fatalf("got %q", got)
	}
}

func TestUncacheableNotStored(t *testing.T) {
	r := newRig(t, Options{})
	// Create a live-feed document server-side.
	if _, err := r.space.CreateDocument("cam", "u", &property.RepoBitProvider{
		Repo: r.feed, Path: "/c", Vote: property.Uncacheable, DisableVerifier: true,
	}); err != nil {
		t.Fatal(err)
	}
	a, err := r.cache.Read("cam", "u")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.cache.Read("cam", "u")
	if bytes.Equal(a, b) {
		t.Fatal("live frames identical — cached?")
	}
	st := r.cache.Stats()
	if st.Uncacheable != 2 || r.cache.Len() != 0 {
		t.Fatalf("stats = %+v len=%d", st, r.cache.Len())
	}
}

func TestCacheWithEventsForwards(t *testing.T) {
	r := newRig(t, Options{})
	r.client.CreateDocument("d", "u", []byte("audited"))
	trail := property.NewAuditTrail()
	if err := r.space.Attach("d", "", docspace.Universal, trail); err != nil {
		t.Fatal(err)
	}
	r.cache.Read("d", "u") // miss
	r.cache.Read("d", "u") // hit: forwards getInputStream
	waitFor(t, func() bool { return len(trail.Records()) >= 2 })
	recs := trail.Records()
	last := recs[len(recs)-1]
	if !last.Forwarded {
		t.Fatalf("records = %+v", recs)
	}
	if st := r.cache.Stats(); st.EventsForwarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCapacityEviction(t *testing.T) {
	r := newRig(t, Options{Capacity: 2048})
	for _, id := range []string{"a", "b", "c"} {
		if err := r.client.CreateDocument(id, "u", bytes.Repeat([]byte(id), 1000)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.cache.Read(id, "u"); err != nil {
			t.Fatal(err)
		}
	}
	st := r.cache.Stats()
	if st.BytesStored > 2048 {
		t.Fatalf("BytesStored = %d over budget", st.BytesStored)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions")
	}
}

func TestSignatureSharingRemote(t *testing.T) {
	r := newRig(t, Options{})
	r.client.CreateDocument("d", "eyal", []byte("same for all"))
	r.client.AddReference("d", "paul")
	r.cache.Read("d", "eyal")
	r.cache.Read("d", "paul")
	st := r.cache.Stats()
	if r.cache.Len() != 2 || st.BytesStored != int64(len("same for all")) {
		t.Fatalf("len=%d stored=%d", r.cache.Len(), st.BytesStored)
	}
}

func TestTTLDeadlineHonoredRemotely(t *testing.T) {
	// A TTL verifier cannot cross the wire, but its deadline does:
	// the remote cache must expire web-backed entries on schedule.
	clk := clock.NewVirtual(epoch)
	web := repo.NewWeb("web", clk, simnet.NewPath("loop", 3), 30*time.Second, true)
	space := docspace.New(clk, nil)
	srv := server.New(space, repo.NewMem("b", clk, simnet.NewPath("loop", 1)))
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	client, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		client.Close()
		srv.Close()
		<-done
	}()
	// The remote cache shares the server's virtual clock, so the
	// deadline comparison is exact.
	cache := New(client, Options{Clock: clk})

	web.SetPage("/p", []byte("page v1"))
	if _, err := space.CreateDocument("p", "u", &property.RepoBitProvider{Repo: web, Path: "/p"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Read("p", "u"); err != nil {
		t.Fatal(err)
	}
	// Within the TTL the stale copy is acceptable (web semantics).
	web.SetPage("/p", []byte("page v2"))
	got, _ := cache.Read("p", "u")
	if string(got) != "page v1" {
		t.Fatalf("within TTL got %q", got)
	}
	// Past the deadline the entry must be refetched.
	clk.Advance(31 * time.Second)
	got, err = cache.Read("p", "u")
	if err != nil || string(got) != "page v2" {
		t.Fatalf("after TTL got %q, %v", got, err)
	}
	if st := cache.Stats(); st.TTLExpiries != 1 {
		t.Fatalf("TTLExpiries = %d", st.TTLExpiries)
	}
}

func TestReadErrorPropagates(t *testing.T) {
	r := newRig(t, Options{})
	if _, err := r.cache.Read("ghost", "u"); err == nil {
		t.Fatal("missing doc read succeeded")
	}
}

func TestClosedCache(t *testing.T) {
	r := newRig(t, Options{})
	r.client.CreateDocument("d", "u", []byte("x"))
	r.cache.Read("d", "u")
	r.cache.Close()
	if _, err := r.cache.Read("d", "u"); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
	if err := r.cache.Write("d", "u", nil); err != ErrClosed {
		t.Fatalf("write err = %v", err)
	}
	if r.cache.Len() != 0 {
		t.Fatal("entries survived Close")
	}
}

// TestRemoteSingleFlight: concurrent first accesses to one (doc, user)
// issue exactly one wire read; the followers share the leader's result
// and count as coalesced misses rather than misses.
func TestRemoteSingleFlight(t *testing.T) {
	r := newRig(t, Options{})
	if err := r.client.CreateDocument("d", "u", []byte("shared fetch")); err != nil {
		t.Fatal(err)
	}
	const K = 16
	results := make([][]byte, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.cache.Read("d", "u")
		}(i)
	}
	wg.Wait()
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if string(results[i]) != "shared fetch" {
			t.Fatalf("reader %d got %q", i, results[i])
		}
	}
	st := r.cache.Stats()
	if st.Misses+st.CoalescedMisses+st.Hits != K {
		t.Fatalf("read outcomes don't sum to %d: %+v", K, st)
	}
	if st.Misses > st.CoalescedMisses+st.Hits && st.CoalescedMisses == 0 && st.Hits == 0 {
		// All K raced past each other without coalescing — the flight
		// table is not doing its job. (Timing-tolerant: any nonzero
		// sharing passes; K independent wire reads fails.)
		t.Fatalf("no coalescing or caching across %d concurrent reads: %+v", K, st)
	}
	// The shared result must be privately owned per caller.
	results[0][0] = 'X'
	if data, _ := r.cache.Read("d", "u"); string(data) != "shared fetch" {
		t.Fatalf("caller mutation leaked into cache: %q", data)
	}
}
