package remote

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

// chaosRig is a cache over a killable, restartable server. The space
// and backing repository outlive the server instance — durable state
// surviving a crash — so writes made while the server is down become
// exactly the lost invalidations the reconnect epoch flush defends
// against.
type chaosRig struct {
	t       *testing.T
	clk     *clock.Virtual
	space   *docspace.Space
	backing repo.Repository
	addr    string

	srv  *server.Server
	done chan error

	client *server.Client
	cache  *Cache
}

func newChaosRig(t *testing.T, opts Options, dialOpts ...server.DialOption) *chaosRig {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	r := &chaosRig{
		t:       t,
		clk:     clk,
		space:   docspace.New(clk, nil),
		backing: repo.NewMem("srv", clk, simnet.NewPath("loop", 1)),
	}
	srv := server.New(r.space, r.backing)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			r.addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if r.addr == "" {
		t.Fatal("server did not start")
	}
	r.srv, r.done = srv, done

	if len(dialOpts) == 0 {
		dialOpts = []server.DialOption{
			server.WithReconnect(5*time.Millisecond, 100*time.Millisecond),
			server.WithCallTimeout(2 * time.Second),
		}
	}
	client, err := server.Dial(r.addr, dialOpts...)
	if err != nil {
		t.Fatal(err)
	}
	r.client = client
	r.cache = New(client, opts)
	t.Cleanup(func() {
		client.Close()
		r.kill()
	})
	return r
}

// kill stops the current server instance (idempotent).
func (r *chaosRig) kill() {
	if r.srv == nil {
		return
	}
	r.srv.Close()
	<-r.done
	r.srv = nil
}

// restart brings a fresh server up on the original address over the
// surviving space.
func (r *chaosRig) restart() {
	r.t.Helper()
	r.kill()
	var ln net.Listener
	var err error
	for i := 0; i < 200; i++ {
		if ln, err = net.Listen("tcp", r.addr); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		r.t.Fatalf("relisten on %s: %v", r.addr, err)
	}
	srv := server.New(r.space, r.backing)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	r.srv, r.done = srv, done
}

// The acceptance scenario: kill the server under a loaded cache, write
// new content while it is down (those invalidations are lost — the
// notifiers died with the connection), restart it, and verify the
// client reconnects with backoff, the cache flushes the old epoch and
// replays its subscriptions, and no post-reconnect read ever returns
// the content that was invalidated during the disconnect.
func TestChaosKillServerMidLoadReconnectFlush(t *testing.T) {
	r := newChaosRig(t, Options{})
	docs := []string{"d0", "d1", "d2", "d3", "d4"}
	for _, d := range docs {
		if err := r.client.CreateDocument(d, "u", []byte(d+" v1")); err != nil {
			t.Fatal(err)
		}
		if got, err := r.cache.Read(d, "u"); err != nil || string(got) != d+" v1" {
			t.Fatalf("warm read %s = %q, %v", d, got, err)
		}
	}
	if r.cache.Len() != len(docs) {
		t.Fatalf("cache holds %d entries, want %d", r.cache.Len(), len(docs))
	}

	r.kill()
	waitFor(t, func() bool { return r.client.State() == server.StateDisconnected })

	// While the server is down every doc changes. No server, no
	// notifiers: the invalidations are lost for good.
	for _, d := range docs {
		if err := r.space.WriteDocument(d, "u", []byte(d+" v2")); err != nil {
			t.Fatal(err)
		}
	}
	// Degraded mode (default fail-fast): reads refuse rather than
	// serve what can no longer be proven fresh.
	if _, err := r.cache.Read(docs[0], "u"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("read while down = %v, want ErrDegraded", err)
	}

	r.restart()
	waitFor(t, func() bool { return r.cache.Stats().Reconnects == 1 })

	// Post-reconnect reads must never surface v1: the whole old epoch
	// was flushed, so every doc comes back from the wire as v2.
	for _, d := range docs {
		got, err := r.cache.Read(d, "u")
		if err != nil {
			t.Fatalf("post-reconnect read %s: %v", d, err)
		}
		if string(got) != d+" v2" {
			t.Fatalf("post-reconnect read %s = %q: stale content served past the epoch flush", d, got)
		}
	}
	st := r.cache.Stats()
	if st.EpochFlushes != int64(len(docs)) {
		t.Fatalf("EpochFlushes = %d, want %d", st.EpochFlushes, len(docs))
	}
	if r.client.Epoch() != 2 {
		t.Fatalf("client epoch = %d, want 2", r.client.Epoch())
	}

	// The subscription set was replayed on the new connection: a write
	// through the restarted server must push an invalidation for the
	// re-cached entry, even though the cache never re-Subscribed on the
	// post-reconnect miss (its subscribed set already had the key).
	if err := r.cache.Write(docs[0], "u", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return !r.cache.Contains(docs[0], "u") })
	if got, _ := r.cache.Read(docs[0], "u"); string(got) != "v3" {
		t.Fatalf("read after replayed-subscription invalidation = %q", got)
	}
}

// Fail-fast degraded mode: while the server is unreachable, both hits
// and misses refuse with the typed ErrDegraded and nothing stale is
// ever served.
func TestChaosDegradedFailFast(t *testing.T) {
	r := newChaosRig(t, Options{})
	if err := r.client.CreateDocument("d", "u", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.cache.Read("d", "u"); err != nil {
		t.Fatal(err)
	}

	r.kill()
	waitFor(t, func() bool { return r.client.State() == server.StateDisconnected })

	if _, err := r.cache.Read("d", "u"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("cached hit while down = %v, want ErrDegraded", err)
	}
	if _, err := r.cache.Read("never-seen", "u"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("miss while down = %v, want ErrDegraded", err)
	}
	if err := r.cache.Write("d", "u", []byte("v2")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write while down = %v, want ErrDegraded", err)
	}
	st := r.cache.Stats()
	if st.StaleServed != 0 {
		t.Fatalf("StaleServed = %d under fail-fast", st.StaleServed)
	}
	if st.DegradedErrors < 3 {
		t.Fatalf("DegradedErrors = %d, want >= 3", st.DegradedErrors)
	}
}

// Serve-stale degraded mode: cached hits keep serving through the
// outage, but only inside the configured staleness bound measured from
// the disconnect; past it the cache fails fast again. Misses always
// refuse.
func TestChaosDegradedServeStaleBounded(t *testing.T) {
	var r *chaosRig
	// The cache shares the rig's virtual clock so the staleness bound
	// is checked deterministically.
	r = newChaosRig(t, Options{})
	r.cache.Close() // discard the default-policy cache; rebuild below
	clk := r.clk
	cache := New(r.client, Options{
		DegradedPolicy: ServeStale,
		StaleTTL:       30 * time.Second,
		Clock:          clk,
	})
	if err := r.client.CreateDocument("d", "u", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Read("d", "u"); err != nil {
		t.Fatal(err)
	}

	r.kill()
	waitFor(t, func() bool { return r.client.State() == server.StateDisconnected })

	got, err := cache.Read("d", "u")
	if err != nil || string(got) != "v1" {
		t.Fatalf("stale hit within bound = %q, %v", got, err)
	}
	if _, err := cache.Read("never-seen", "u"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("miss under serve-stale = %v, want ErrDegraded", err)
	}

	clk.Advance(31 * time.Second)
	if _, err := cache.Read("d", "u"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("stale hit past bound = %v, want ErrDegraded", err)
	}
	st := cache.Stats()
	if st.StaleServed != 1 {
		t.Fatalf("StaleServed = %d, want 1", st.StaleServed)
	}
}

// Concurrent readers racing a kill/write/restart cycle: every read
// returns promptly with either valid content or a typed error, and
// once the cache has observed the reconnect (epoch flushed), no reader
// ever gets the content invalidated during the outage. Run under
// -race; this is the regression test for the suspect-entry window
// between the wire coming back and the flush completing.
func TestChaosConcurrentReadersDuringDrop(t *testing.T) {
	r := newChaosRig(t, Options{})
	if err := r.client.CreateDocument("d", "u", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.cache.Read("d", "u"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var staleAfterFlush, untypedErrs atomic.Int64
	var firstUntyped atomic.Value
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Snapshot before the read: if the flush already
				// happened, v1 may never surface after this point.
				flushed := r.cache.Stats().Reconnects > 0
				data, err := r.cache.Read("d", "u")
				if err != nil {
					if !errors.Is(err, ErrDegraded) && !errors.Is(err, ErrClosed) {
						untypedErrs.Add(1)
						firstUntyped.CompareAndSwap(nil, err.Error())
					}
					continue
				}
				if flushed && string(data) == "v1" {
					staleAfterFlush.Add(1)
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	r.kill()
	if err := r.space.WriteDocument("d", "u", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	r.restart()
	waitFor(t, func() bool {
		if r.cache.Stats().Reconnects == 0 {
			return false
		}
		data, err := r.cache.Read("d", "u")
		return err == nil && string(data) == "v2"
	})
	close(stop)
	wg.Wait()

	if n := staleAfterFlush.Load(); n != 0 {
		t.Fatalf("%d reads returned invalidated content after the epoch flush", n)
	}
	if n := untypedErrs.Load(); n != 0 {
		t.Fatalf("%d reads failed with untyped errors during the drop (first: %v)", n, firstUntyped.Load())
	}
}
