// Package remote implements a client-side document cache over the
// Placeless TCP protocol: the deployment the paper measures, where the
// cache runs "on the machine where applications are run" while the
// Placeless servers (and the repositories behind them) are remote.
//
// Consistency is push-based: on the first access to a document the
// cache subscribes, and the server-side notifiers stream invalidations
// back over the connection (verifier code cannot cross the wire, so a
// remote cache leans on the notifier half of the paper's mechanism
// pair; the server still runs verifier-equivalent checks when it
// re-executes the read path on a miss). Cacheability indicators are
// honored: Uncacheable results are never stored, and CacheWithEvents
// entries forward a getInputStream event to the server on every hit.
//
// Because consistency leans entirely on the push stream, a broken
// connection is a correctness event, not just an availability one:
// while disconnected the cache is in an explicit degraded mode
// (DegradedPolicy: fail-fast, or serve-stale within a bounded
// staleness TTL), and on reconnect it replays its subscription set
// and flushes everything cached under the old connection epoch,
// because invalidations may have been lost in between. See DESIGN.md
// §9 for the failure model.
package remote

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"placeless/internal/clock"
	"placeless/internal/event"
	"placeless/internal/obs"
	"placeless/internal/property"
	"placeless/internal/replace"
	"placeless/internal/server"
	"placeless/internal/sig"
)

// ErrClosed is returned by operations on a closed cache.
var ErrClosed = errors.New("remote: cache is closed")

// ErrDegraded is returned while the server is unreachable and the
// degraded-mode policy refuses the read: always for misses, and for
// hits under FailFast or past the ServeStale bound. Callers can
// errors.Is against it to distinguish "the cache is degraded" from
// document-level errors.
var ErrDegraded = errors.New("remote: degraded: server unreachable")

// DegradedPolicy selects what the cache does with reads while the
// connection to the server is down — the consistency-vs-availability
// choice the paper's disconnected-operation motivation leaves to the
// deployment.
type DegradedPolicy int

const (
	// FailFast (the default) refuses every read with ErrDegraded
	// while disconnected: without the invalidation stream no cached
	// entry can be proven fresh, so none is served.
	FailFast DegradedPolicy = iota
	// ServeStale serves cached hits while disconnected, accepting a
	// staleness window bounded by Options.StaleTTL (measured from the
	// moment of disconnect). Misses still fail with ErrDegraded.
	ServeStale
)

// String names the policy ("fail-fast"/"serve-stale").
func (p DegradedPolicy) String() string {
	if p == ServeStale {
		return "serve-stale"
	}
	return "fail-fast"
}

// Options configures a Cache.
type Options struct {
	// Capacity bounds unique stored bytes; zero = unlimited.
	Capacity int64
	// Policy supplies the replacement policy; nil = Greedy-Dual-Size.
	Policy replace.Policy
	// Clock supplies time for TTL-deadline checks; nil = wall clock.
	// TTL deadlines originate on the server, so the clocks are
	// assumed synchronized (true in simulation, NTP-close in
	// production).
	Clock clock.Clock
	// Observer, when non-nil, receives the wire round-trip latency of
	// every miss (stage remote_rtt) and the cache registers its
	// counters under stable placeless_remote_* names.
	Observer *obs.Observer
	// DegradedPolicy selects fail-fast vs serve-stale behavior while
	// the server is unreachable (default FailFast).
	DegradedPolicy DegradedPolicy
	// StaleTTL bounds the staleness window ServeStale accepts,
	// measured from the disconnect: hits older than that fail with
	// ErrDegraded. Zero means no bound — every cached entry is
	// servable for the whole outage, which trades unbounded staleness
	// for availability; set a bound in production.
	StaleTTL time.Duration
}

// Stats counts remote-cache activity.
type Stats struct {
	// Hits and Misses count read outcomes.
	Hits, Misses int64
	// CoalescedMisses counts reads that joined another goroutine's
	// in-flight fetch instead of issuing their own wire read.
	CoalescedMisses int64
	// Uncacheable counts reads whose result was not storable.
	Uncacheable int64
	// Invalidations counts entries dropped by server pushes.
	Invalidations int64
	// Evictions counts capacity-driven removals.
	Evictions int64
	// EventsForwarded counts hit-time operation forwards.
	EventsForwarded int64
	// TTLExpiries counts entries dropped because their server-issued
	// TTL deadline passed.
	TTLExpiries int64
	// BytesStored is the current unique content footprint.
	BytesStored int64
	// Reconnects counts connection epochs after the first: each is
	// one successful reconnect the cache observed (resubscribe +
	// epoch flush).
	Reconnects int64
	// EpochFlushes counts entries flushed at reconnect because they
	// were cached under a connection epoch whose invalidation stream
	// was interrupted.
	EpochFlushes int64
	// StaleServed counts hits served while disconnected under the
	// ServeStale policy (within the StaleTTL bound).
	StaleServed int64
	// DegradedErrors counts reads and writes refused or failed with
	// ErrDegraded while the server was unreachable.
	DegradedErrors int64
}

// entry is one cached (doc, user) version.
type entry struct {
	doc, user    string
	signature    sig.Signature
	size         int64
	cost         time.Duration
	cacheability property.Cacheability
	expires      time.Time // zero = no TTL
}

// blob is signature-shared storage.
type blob struct {
	data []byte
	refs int
}

// Cache is a client-side cache over a server.Client. Safe for
// concurrent use.
type Cache struct {
	client *server.Client

	mu            sync.Mutex
	closed        bool
	entries       map[string]*entry
	blobs         map[sig.Signature]*blob
	policy        replace.Policy
	subscribed    map[string]bool    // (doc,user) subscription dedup
	gens          map[string]uint64  // per-doc invalidation generation
	flights       map[string]*flight // in-progress misses (single-flight)
	capacity      int64
	clk           clock.Clock
	obs           *obs.Observer
	degraded      DegradedPolicy
	staleTTL      time.Duration
	degradedSince time.Time // when the current outage began (zero = up)
	connEpoch     uint64    // cache-side epoch, bumped per observed reconnect
	suspect       bool      // conn dropped; entries unservable until the epoch flush
	stats         Stats
}

// flight is one in-progress wire fetch; concurrent misses on the same
// key block on done and share the leader's result instead of issuing
// duplicate remote reads (single-flight, mirroring internal/core).
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

func key(doc, user string) string { return doc + "\x00" + user }

// New wraps client with a cache and registers the invalidation,
// reconnect, and connection-state handlers. The caller must not
// install its own OnInvalidate handler on the client afterwards. For
// the resilience machinery to matter, dial the client with
// server.WithReconnect (and ideally server.WithCallTimeout).
func New(client *server.Client, opts Options) *Cache {
	policy := opts.Policy
	if policy == nil {
		policy = replace.NewGDS()
	}
	c := &Cache{
		client:     client,
		entries:    make(map[string]*entry),
		blobs:      make(map[sig.Signature]*blob),
		policy:     policy,
		subscribed: make(map[string]bool),
		gens:       make(map[string]uint64),
		flights:    make(map[string]*flight),
		clk:        opts.Clock,
		obs:        opts.Observer,
		degraded:   opts.DegradedPolicy,
		staleTTL:   opts.StaleTTL,
	}
	if c.clk == nil {
		c.clk = clock.Real{}
	}
	c.capacity = opts.Capacity
	if c.obs != nil {
		c.registerMetrics(c.obs)
	}
	client.OnInvalidate(c.onInvalidate)
	client.OnStateChange(c.onConnState)
	client.OnReconnect(c.onReconnect)
	return c
}

// onConnState tracks outage boundaries so serve-stale reads can bound
// their staleness window from the moment of disconnect.
func (c *Cache) onConnState(s server.ConnState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch s {
	case server.StateDisconnected:
		if c.degradedSince.IsZero() {
			c.degradedSince = c.clk.Now()
		}
		// Everything cached so far belongs to an epoch whose
		// invalidation stream just broke; nothing may be served as a
		// normal hit again until the reconnect flush has run.
		c.suspect = true
	case server.StateConnected:
		c.degradedSince = time.Time{}
	}
}

// onReconnect runs after the client re-established its connection:
// the invalidation stream was interrupted, so every entry cached
// under the previous epoch is suspect. The cache bumps its epoch and
// all per-doc generations (so in-flight misses from before the drop
// cannot install), flushes the whole entry set (re-verification by
// re-read: the next access re-fetches and re-caches under the new
// epoch), and replays its subscription set on the new connection —
// the server-side notifiers died with the old one.
func (c *Cache) onReconnect(epoch uint64) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.connEpoch++
	myEpoch := c.connEpoch
	c.stats.Reconnects++
	flushed := int64(len(c.entries))
	for k := range c.entries {
		c.dropLocked(k)
	}
	c.stats.EpochFlushes += flushed
	for doc := range c.gens {
		c.gens[doc]++
	}
	subs := make([]string, 0, len(c.subscribed))
	for k := range c.subscribed {
		subs = append(subs, k)
	}
	o := c.obs
	c.mu.Unlock()
	// The subscription replay below races with new misses; the suspect
	// flag stays up until it finishes, so reads keep going to the (now
	// live) wire without installing entries that might lack a live
	// server-side notifier.
	defer func() {
		c.mu.Lock()
		// A drop during the replay re-arms the flag; only clear it if
		// no newer epoch has superseded this one and the wire is
		// still up.
		if c.connEpoch == myEpoch && c.client.State() == server.StateConnected {
			c.suspect = false
		}
		c.mu.Unlock()
	}()
	if o != nil {
		o.Invalidations(obs.CauseDegraded, flushed)
	}
	for _, k := range subs {
		doc, user, _ := strings.Cut(k, "\x00")
		if err := c.client.Subscribe(doc, user); err != nil {
			// Forget the failed subscription so the next miss on this
			// key re-subscribes before caching; an entry cached
			// without a live subscription would be unboundedly stale.
			c.mu.Lock()
			delete(c.subscribed, k)
			c.mu.Unlock()
		}
	}
}

// registerMetrics publishes the remote cache's counters on o's
// registry under stable placeless_remote_* names. The closures take
// the cache mutex at scrape time; the read path is untouched.
func (c *Cache) registerMetrics(o *obs.Observer) {
	reg := o.Registry()
	counter := func(read func(*Stats) int64) func() int64 {
		return func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return read(&c.stats)
		}
	}
	reg.Counter("placeless_remote_hits_total",
		"Remote-cache reads served locally.", counter(func(s *Stats) int64 { return s.Hits }))
	reg.Counter("placeless_remote_misses_total",
		"Remote-cache reads that went over the wire.", counter(func(s *Stats) int64 { return s.Misses }))
	reg.Counter("placeless_remote_coalesced_misses_total",
		"Reads that joined another goroutine's in-flight wire fetch.", counter(func(s *Stats) int64 { return s.CoalescedMisses }))
	reg.Counter("placeless_remote_uncacheable_total",
		"Wire reads whose result was not storable.", counter(func(s *Stats) int64 { return s.Uncacheable }))
	reg.Counter("placeless_remote_invalidations_total",
		"Entries dropped by server invalidation pushes.", counter(func(s *Stats) int64 { return s.Invalidations }))
	reg.Counter("placeless_remote_evictions_total",
		"Capacity-driven removals.", counter(func(s *Stats) int64 { return s.Evictions }))
	reg.Counter("placeless_remote_events_forwarded_total",
		"Hit-time operation events forwarded to the server.", counter(func(s *Stats) int64 { return s.EventsForwarded }))
	reg.Counter("placeless_remote_ttl_expiries_total",
		"Entries dropped because their server-issued TTL deadline passed.", counter(func(s *Stats) int64 { return s.TTLExpiries }))
	reg.Counter("placeless_remote_reconnects_total",
		"Successful reconnects observed (resubscribe + epoch flush each).", counter(func(s *Stats) int64 { return s.Reconnects }))
	reg.Counter("placeless_remote_epoch_flushes_total",
		"Entries flushed at reconnect because their epoch's invalidation stream was interrupted.", counter(func(s *Stats) int64 { return s.EpochFlushes }))
	reg.Counter("placeless_remote_frames_batched_total",
		"v2 wire frames that shared a multi-frame writev batch on this client's connection.",
		func() int64 { return c.client.FramesBatched() })
	reg.Counter("placeless_remote_stale_served_total",
		"Hits served while disconnected under the serve-stale policy.", counter(func(s *Stats) int64 { return s.StaleServed }))
	reg.Counter("placeless_remote_degraded_errors_total",
		"Reads/writes refused or failed with ErrDegraded while the server was unreachable.", counter(func(s *Stats) int64 { return s.DegradedErrors }))
	reg.Gauge("placeless_remote_connection_state",
		"State of the wire behind the remote cache: 1 connected, 0 disconnected, -1 closed.",
		func() int64 {
			switch c.client.State() {
			case server.StateConnected:
				return 1
			case server.StateDisconnected:
				return 0
			default:
				return -1
			}
		})
	reg.Gauge("placeless_remote_bytes_stored",
		"Current unique content footprint of the remote cache.", counter(func(s *Stats) int64 { return s.BytesStored }))
	reg.Gauge("placeless_remote_entries",
		"Current number of remote-cache entries.",
		func() int64 { return int64(c.Len()) })
}

// onInvalidate handles a server push: user == "" invalidates every
// user's entry for the document.
func (c *Cache) onInvalidate(doc, user string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[doc]++
	if user != "" {
		if _, ok := c.entries[key(doc, user)]; ok {
			c.stats.Invalidations++
			c.dropLocked(key(doc, user))
		}
		return
	}
	for k, e := range c.entries {
		if e.doc == doc {
			c.stats.Invalidations++
			c.dropLocked(k)
		}
	}
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Suspect reports whether the cache is inside the post-reconnect
// suspect window: the connection came back but the epoch flush and
// subscription replay have not yet completed, so cached entries are
// not trusted. Simulations wait for this to clear (together with a
// drained push queue) before asserting freshness.
func (c *Cache) Suspect() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.suspect
}

// ConnState reports the state of the wire behind the cache's client.
// Cluster routing uses it to describe each peer in status output; it
// is advisory (routing itself reacts to typed errors, not this probe).
func (c *Cache) ConnState() server.ConnState {
	return c.client.State()
}

// Len reports cached entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Contains reports whether (doc, user) is cached.
func (c *Cache) Contains(doc, user string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key(doc, user)]
	return ok
}

// Read returns the user's view of the document, served locally when a
// valid entry exists. While the server is unreachable the cache is in
// degraded mode: under FailFast every read returns ErrDegraded; under
// ServeStale cached hits are served within the StaleTTL bound and
// everything else returns ErrDegraded.
func (c *Cache) Read(doc, user string) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	degraded := c.client.State() != server.StateConnected
	if degraded && c.degradedSince.IsZero() {
		// The cache missed the transition (e.g. it was constructed
		// over an already-down client); the outage starts now.
		c.degradedSince = c.clk.Now()
	}
	k := key(doc, user)
	if e := c.entries[k]; e != nil {
		// Server-issued TTL deadlines are the one verifier that can
		// cross the wire; honor them before serving — degraded or not.
		if !e.expires.IsZero() && c.clk.Now().After(e.expires) {
			c.stats.TTLExpiries++
			c.dropLocked(k)
		} else if degraded {
			if c.degraded == ServeStale && c.withinStaleBoundLocked() {
				if b := c.blobs[e.signature]; b != nil {
					c.stats.Hits++
					c.stats.StaleServed++
					c.policy.Access(k)
					data := b.data
					c.mu.Unlock()
					// No hit-time event forwarding while disconnected:
					// the wire is down and the forward would only fail.
					out := make([]byte, len(data))
					copy(out, data)
					return out, nil
				}
			}
			return nil, c.degradedErrLocked()
		} else if c.suspect {
			// The wire is back up but this entry predates the reconnect
			// epoch flush (or the flush is still running): treat it as
			// a miss and re-fetch rather than risk serving content
			// invalidated during the outage.
		} else if b := c.blobs[e.signature]; b != nil {
			c.stats.Hits++
			c.policy.Access(k)
			data := b.data
			forward := e.cacheability == property.CacheWithEvents
			c.mu.Unlock()
			if forward {
				if err := c.client.ForwardEvent(doc, user, event.GetInputStream.String()); err == nil {
					c.mu.Lock()
					c.stats.EventsForwarded++
					c.mu.Unlock()
				}
			}
			out := make([]byte, len(data))
			copy(out, data)
			return out, nil
		}
	}
	if degraded {
		// Miss with the wire down: nothing local to serve under
		// either policy — fail fast instead of paying a doomed call.
		return nil, c.degradedErrLocked()
	}
	c.mu.Unlock()
	return c.coalescedMiss(doc, user)
}

// degradedErrLocked counts and builds the degraded-mode refusal; it
// releases the cache lock.
func (c *Cache) degradedErrLocked() error {
	c.stats.DegradedErrors++
	since := c.degradedSince
	c.mu.Unlock()
	return fmt.Errorf("%w (policy %v, down since %v)", ErrDegraded, c.degraded, since)
}

// withinStaleBoundLocked reports whether a serve-stale hit is still
// inside the bounded staleness window.
func (c *Cache) withinStaleBoundLocked() bool {
	if c.staleTTL <= 0 {
		return true // unbounded by configuration
	}
	return !c.clk.Now().After(c.degradedSince.Add(c.staleTTL))
}

// coalescedMiss funnels concurrent misses on one key through a single
// wire fetch: the first caller becomes the leader and runs the real
// miss; later callers block on the flight and copy its result. A
// remote read is the most expensive operation in this deployment (a
// round trip to the Placeless servers), so K simultaneous first
// accesses to a popular document cost one round trip, not K.
func (c *Cache) coalescedMiss(doc, user string) ([]byte, error) {
	k := key(doc, user)
	c.mu.Lock()
	if f := c.flights[k]; f != nil {
		c.stats.CoalescedMisses++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		out := make([]byte, len(f.data))
		copy(out, f.data)
		return out, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	data, err := c.miss(doc, user)

	// Deregister before publishing so a post-failure retry starts a
	// fresh flight rather than joining this dead one.
	c.mu.Lock()
	delete(c.flights, k)
	c.mu.Unlock()
	f.data, f.err = data, err
	close(f.done)
	return data, err
}

// miss fetches through the wire, subscribes for invalidations, and
// stores the entry per its cacheability.
func (c *Cache) miss(doc, user string) ([]byte, error) {
	// Snapshot the invalidation generation, connection epoch, and
	// suspect flag so a push — or a disconnect/reconnect cycle —
	// while the remote read is in flight prevents installing a stale
	// entry (the load/install race; see internal/core's equivalent
	// guard and its regression test). The suspect flag must be
	// sampled here, not only at install time: while the
	// post-reconnect subscription replay runs, this read's request
	// can reach the server BEFORE the replayed Subscribe for its own
	// key, and a change in that gap is pushed to no one — by install
	// time the replay has finished and suspect is down again, but
	// the fetched bytes predate a push that never came.
	c.mu.Lock()
	gen := c.gens[doc]
	ep := c.connEpoch
	sus := c.suspect
	k := key(doc, user)
	needSub := !c.subscribed[k]
	if needSub {
		c.subscribed[k] = true
	}
	c.mu.Unlock()

	// Subscribe before fetching, not after: the connection is one
	// FIFO stream, so once the Subscribe's response is in, the
	// server-side notifier provably predates the Read below — every
	// change after the fetched snapshot is pushed to us. Subscribing
	// after the fetch leaves the classic callback-race window (a
	// change between the server processing the Read and processing
	// the Subscribe is pushed to no one) and the entry would be
	// stale until the NEXT change, not just by one access.
	subLive := true
	if needSub {
		if err := c.client.Subscribe(doc, user); err != nil {
			c.mu.Lock()
			delete(c.subscribed, k)
			c.mu.Unlock()
			subLive = false // fetch anyway, serve uncached
		}
	}

	var tWire time.Time
	if c.obs != nil {
		tWire = time.Now()
	}
	data, meta, err := c.client.Read(doc, user)
	if c.obs != nil {
		c.obs.ObserveStage(obs.StageRemoteRTT, time.Since(tWire))
	}
	if err != nil {
		if errors.Is(err, server.ErrDisconnected) || errors.Is(err, server.ErrTimeout) {
			// The wire died under this read: surface it as the typed
			// degraded error so callers can distinguish an outage
			// from a document-level failure.
			c.mu.Lock()
			c.stats.DegradedErrors++
			if c.degradedSince.IsZero() {
				c.degradedSince = c.clk.Now()
			}
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrDegraded, err)
		}
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Misses++
	if c.closed {
		return data, nil
	}
	if meta.Cacheability == property.Uncacheable {
		c.stats.Uncacheable++
		return data, nil
	}
	if !subLive || sus || c.gens[doc] != gen || c.connEpoch != ep || c.suspect {
		// No live subscription, the fetch started inside the suspect
		// window, it was invalidated mid-read, the connection was
		// lost and re-established underneath us (pushes may have
		// been missed), or the subscription replay has not finished:
		// serve uncached.
		return data, nil
	}
	c.dropLocked(k)
	s := sig.Of(data)
	b := c.blobs[s]
	if b == nil {
		b = &blob{data: append([]byte{}, data...)}
		c.blobs[s] = b
		c.stats.BytesStored += int64(len(data))
	}
	b.refs++
	c.entries[k] = &entry{
		doc: doc, user: user, signature: s,
		size: int64(len(data)), cost: meta.Cost,
		cacheability: meta.Cacheability,
		expires:      meta.Expiry,
	}
	c.policy.Insert(k, int64(len(data)), meta.Cost)
	c.evictLocked()
	return data, nil
}

// Write pushes content through the wire; the server's notifiers push
// back the invalidation for our own cached entries. While the server
// is unreachable writes fail with ErrDegraded (there is no write-back
// buffering).
func (c *Cache) Write(doc, user string, data []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	err := c.client.Write(doc, user, data)
	if err != nil && (errors.Is(err, server.ErrDisconnected) || errors.Is(err, server.ErrTimeout)) {
		c.mu.Lock()
		c.stats.DegradedErrors++
		c.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	return err
}

// dropLocked removes an entry and its blob reference.
func (c *Cache) dropLocked(k string) {
	e, ok := c.entries[k]
	if !ok {
		return
	}
	delete(c.entries, k)
	c.policy.Remove(k)
	if b := c.blobs[e.signature]; b != nil {
		b.refs--
		if b.refs <= 0 {
			delete(c.blobs, e.signature)
			c.stats.BytesStored -= int64(len(b.data))
		}
	}
}

// evictLocked enforces the byte budget.
func (c *Cache) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	for c.stats.BytesStored > c.capacity {
		victim, ok := c.policy.Victim()
		if !ok {
			return
		}
		c.stats.Evictions++
		c.dropLocked(victim)
	}
}

// Close clears the cache; the underlying client remains usable and
// must be closed separately.
func (c *Cache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.entries = make(map[string]*entry)
	c.blobs = make(map[sig.Signature]*blob)
	c.stats.BytesStored = 0
}
