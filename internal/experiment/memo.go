package experiment

import (
	"fmt"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// MemoConfig parameterizes the universal-stage memoization experiment
// (E12): N users share one document whose universal transform chain
// dominates the read cost; each user's personal watermark forces a
// per-user cache miss, and the question is how much of that miss the
// content-addressed intermediate store recovers.
type MemoConfig struct {
	// Users lists the fan-out levels to measure.
	Users []int
	// DocSize is the document size in bytes.
	DocSize int64
	// PropCost is the simulated execution cost charged by each
	// universal transform (the chain has three).
	PropCost time.Duration
	// PersonalCost is the simulated cost of each user's watermark.
	PersonalCost time.Duration
	// Rounds is how many times every user re-misses (via per-user
	// invalidation) after the cold read.
	Rounds int
	// Seed fixes simulated jitter.
	Seed int64
}

// DefaultMemoConfig returns the configuration used by plbench.
func DefaultMemoConfig() MemoConfig {
	return MemoConfig{
		Users:        []int{1, 2, 4, 8, 16},
		DocSize:      16 << 10,
		PropCost:     2 * time.Millisecond,
		PersonalCost: 250 * time.Microsecond,
		Rounds:       4,
		Seed:         1,
	}
}

// MemoRow is one fan-out level's measurements.
type MemoRow struct {
	// Users is the fan-out level.
	Users int
	// FullMiss is the mean per-read simulated miss time with
	// memoization off: the whole chain re-executes for every user.
	FullMiss time.Duration
	// MemoMiss is the mean per-read simulated miss time with the
	// intermediate store on.
	MemoMiss time.Duration
	// Speedup is FullMiss / MemoMiss.
	Speedup float64
	// UniversalRuns is how many times the memoizing cache executed the
	// universal stage (one per (content, chain) key, regardless of N).
	UniversalRuns int64
	// IntermediateHits counts misses served from the intermediate.
	IntermediateHits int64
	// SavedBytes is the intermediate bytes the memoizing cache did not
	// recompute.
	SavedBytes int64
}

// MemoResult is experiment E12's output.
type MemoResult struct {
	Config MemoConfig
	Rows   []MemoRow
}

// TableData returns the result's header and rows, the shared source
// for the text-table and CSV renderings.
func (r MemoResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Users),
			fmtMS(row.FullMiss),
			fmtMS(row.MemoMiss),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%d", row.UniversalRuns),
			fmt.Sprintf("%d", row.IntermediateHits),
			fmt.Sprintf("%d", row.SavedBytes),
		})
	}
	return []string{"users", "full miss ms", "memo miss ms", "speedup", "universal runs", "inter hits", "saved bytes"}, rows
}

// Table renders the result as an aligned text table.
func (r MemoResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r MemoResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// memoUserID names the i-th reader.
func memoUserID(i int) string { return fmt.Sprintf("u%02d", i) }

// runMemoMode builds one world — a local document with a three-stage
// memoizable universal chain and a personal watermark per user — and
// drives the per-user miss storm, returning the mean simulated miss
// time and the cache's final counters.
func runMemoMode(cfg MemoConfig, users int, memoize bool) (time.Duration, core.Stats, error) {
	clk := clock.NewVirtual(epoch)
	src := repo.NewMem("localfs", clk, simnet.Local(cfg.Seed))
	space := docspace.New(clk, nil)
	cache := core.New(space, core.Options{Name: "memo", Memoize: memoize})

	const id = "shared"
	if err := src.Store("/"+id, Content(id, cfg.DocSize)); err != nil {
		return 0, core.Stats{}, err
	}
	if _, err := space.CreateDocument(id, memoUserID(0), &property.RepoBitProvider{Repo: src, Path: "/" + id}); err != nil {
		return 0, core.Stats{}, err
	}
	for _, p := range []*property.Transformer{
		property.NewSpellCorrector(cfg.PropCost),
		property.NewTranslator(cfg.PropCost),
		property.NewLineNumberer(cfg.PropCost),
	} {
		if err := space.Attach(id, "", docspace.Universal, p); err != nil {
			return 0, core.Stats{}, err
		}
	}
	for i := 0; i < users; i++ {
		u := memoUserID(i)
		if i > 0 {
			if _, err := space.AddReference(id, u); err != nil {
				return 0, core.Stats{}, err
			}
		}
		if err := space.Attach(id, u, docspace.Personal, property.NewWatermarker(u, cfg.PersonalCost)); err != nil {
			return 0, core.Stats{}, err
		}
	}

	var total time.Duration
	reads := 0
	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < users; i++ {
			u := memoUserID(i)
			cache.Invalidate(id, u) // personal change: entry gone, intermediate untouched
			start := clk.Now()
			if _, err := cache.Read(id, u); err != nil {
				return 0, core.Stats{}, err
			}
			total += clk.Now().Sub(start)
			reads++
		}
	}
	return total / time.Duration(reads), cache.Stats(), nil
}

// RunMemo measures E12: the same per-user miss storm with the
// intermediate store off and on. With it off, every miss pays the full
// universal chain; with it on, the universal stage executes once per
// (content, chain) key and every other miss pays only the personal
// suffix — the experiment quantifies that gap as fan-out grows.
func RunMemo(cfg MemoConfig) (MemoResult, error) {
	res := MemoResult{Config: cfg}
	for _, users := range cfg.Users {
		fullMiss, _, err := runMemoMode(cfg, users, false)
		if err != nil {
			return res, err
		}
		memoMiss, st, err := runMemoMode(cfg, users, true)
		if err != nil {
			return res, err
		}
		row := MemoRow{
			Users:            users,
			FullMiss:         fullMiss,
			MemoMiss:         memoMiss,
			UniversalRuns:    st.UniversalStageRuns,
			IntermediateHits: st.IntermediateHits,
			SavedBytes:       st.BytesRecomputedSaved,
		}
		if memoMiss > 0 {
			row.Speedup = float64(fullMiss) / float64(memoMiss)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
