package experiment

import (
	"fmt"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/metrics"
	"placeless/internal/property"
	"placeless/internal/trace"
)

// CacheabilityConfig parameterizes the cacheability-mix experiment
// (E4).
type CacheabilityConfig struct {
	// Docs is the document population.
	Docs int
	// Reads is the access count.
	Reads int
	// Seed fixes the workload.
	Seed int64
}

// DefaultCacheabilityConfig returns the configuration used by plbench
// and the benchmarks.
func DefaultCacheabilityConfig() CacheabilityConfig {
	return CacheabilityConfig{Docs: 30, Reads: 1500, Seed: 1}
}

// CacheabilityRow is one mix row of experiment E4.
type CacheabilityRow struct {
	// Mix labels the population composition.
	Mix string
	// UncacheableFrac and WithEventsFrac describe the mix; the
	// remainder is unrestricted.
	UncacheableFrac, WithEventsFrac float64
	// HitRatio is the object hit ratio achieved.
	HitRatio float64
	// MeanRead is the mean read latency.
	MeanRead time.Duration
	// EventsForwarded counts operations forwarded for CacheWithEvents
	// entries.
	EventsForwarded int64
}

// CacheabilityResult is experiment E4's output.
type CacheabilityResult struct {
	Config CacheabilityConfig
	Rows   []CacheabilityRow
}

// TableData returns the result's header and rows, the shared
// source for the text-table and CSV renderings.
func (r CacheabilityResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mix,
			fmtPct(row.HitRatio),
			fmtMS(row.MeanRead),
			fmt.Sprintf("%d", row.EventsForwarded),
		})
	}
	return []string{"mix (unrestricted/with-events/uncacheable)", "hit ratio", "mean read (ms)", "events forwarded"}, rows
}

// Table renders the result as an aligned text table.
func (r CacheabilityResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r CacheabilityResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// RunCacheability sweeps the population mix across the paper's three
// cacheability indicators: unrestricted documents, documents whose
// properties need operation events forwarded (audit trails), and
// uncacheable documents (live feeds). It shows the middle option's
// value: event-needing documents still enjoy cache-hit latency instead
// of being made uncacheable as the WWW solutions of the era did.
func RunCacheability(cfg CacheabilityConfig) (CacheabilityResult, error) {
	res := CacheabilityResult{Config: cfg}
	mixes := []struct {
		label               string
		uncacheable, events float64
	}{
		{"100/0/0", 0, 0},
		{"70/30/0", 0, 0.3},
		{"70/0/30", 0.3, 0},
		{"40/30/30", 0.3, 0.3},
		{"0/100/0", 0, 1},
		{"0/0/100", 1, 0},
	}
	accesses := trace.Generate(trace.Config{
		Docs: cfg.Docs, Users: 1, Length: cfg.Reads, Alpha: 1.1, Seed: cfg.Seed,
	})
	for _, mix := range mixes {
		w := NewWorld(cfg.Seed, DefaultCacheOptions())
		nUncacheable := int(mix.uncacheable * float64(cfg.Docs))
		nEvents := int(mix.events * float64(cfg.Docs))
		for i := 0; i < cfg.Docs; i++ {
			id := trace.DocID(i)
			switch {
			case i < nUncacheable:
				// Live-feed-backed: the bit-provider votes
				// uncacheable.
				if _, err := w.Space.CreateDocument(id, "owner", &property.RepoBitProvider{
					Repo: w.Feed, Path: "/" + id, Vote: property.Uncacheable, DisableVerifier: true,
				}); err != nil {
					return res, err
				}
			case i < nUncacheable+nEvents:
				if err := w.AddLocalDoc(id, "owner", Content(id, 4096)); err != nil {
					return res, err
				}
				if err := w.Space.Attach(id, "", docspace.Universal, property.NewAuditTrail()); err != nil {
					return res, err
				}
			default:
				if err := w.AddLocalDoc(id, "owner", Content(id, 4096)); err != nil {
					return res, err
				}
			}
			if _, err := w.Space.AddReference(id, "reader"); err != nil {
				return res, err
			}
		}
		readHist := metrics.NewHistogram()
		for _, a := range accesses {
			d := w.Timed(func() {
				if _, err := w.Cache.Read(a.Doc, "reader"); err != nil {
					panic(err)
				}
			})
			readHist.Observe(d)
		}
		st := w.Cache.Stats()
		res.Rows = append(res.Rows, CacheabilityRow{
			Mix:             mix.label,
			UncacheableFrac: mix.uncacheable,
			WithEventsFrac:  mix.events,
			HitRatio:        st.HitRatio(),
			MeanRead:        readHist.Mean(),
			EventsForwarded: st.EventsForwarded,
		})
	}
	return res, nil
}
