package experiment

import (
	"fmt"

	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/trace"
)

// SharingConfig parameterizes the content-signature sharing experiment
// (E3).
type SharingConfig struct {
	// Docs is the document population.
	Docs int
	// Users is the user population; every user reads every document.
	Users int
	// Seed fixes sizes.
	Seed int64
}

// DefaultSharingConfig returns the configuration used by plbench and
// the benchmarks.
func DefaultSharingConfig() SharingConfig {
	return SharingConfig{Docs: 30, Users: 8, Seed: 1}
}

// SharingRow is one personalization-level row of experiment E3.
type SharingRow struct {
	// PersonalizedFrac is the fraction of users whose references
	// carry a content-transforming personal property (distinct
	// output per user).
	PersonalizedFrac float64
	// Entries is the number of (doc, user) cache entries.
	Entries int
	// BytesLogical is the sum of entry sizes before sharing.
	BytesLogical int64
	// BytesStored is the unique bytes actually stored.
	BytesStored int64
	// Saved is 1 - stored/logical: the benefit of signature-indirect
	// storage.
	Saved float64
}

// SharingResult is experiment E3's output.
type SharingResult struct {
	Config SharingConfig
	Rows   []SharingRow
}

// TableData returns the result's header and rows, the shared
// source for the text-table and CSV renderings.
func (r SharingResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmtPct(row.PersonalizedFrac),
			fmt.Sprintf("%d", row.Entries),
			fmtInt(row.BytesLogical),
			fmtInt(row.BytesStored),
			fmtPct(row.Saved),
		})
	}
	return []string{"personalized users", "entries", "logical bytes", "stored bytes", "storage saved"}, rows
}

// Table renders the result as an aligned text table.
func (r SharingResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r SharingResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// RunSharing measures how much storage the (doc,user)→signature→bytes
// indirection saves as personalization rises: with no personal
// transforms every user shares one blob per document; with full
// personalization nothing can be shared (paper §3, Cache Management).
func RunSharing(cfg SharingConfig) (SharingResult, error) {
	res := SharingResult{Config: cfg}
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		w := NewWorld(cfg.Seed, DefaultCacheOptions())
		personalized := int(frac * float64(cfg.Users))
		for i := 0; i < cfg.Docs; i++ {
			id := trace.DocID(i)
			if err := w.AddLocalDoc(id, "owner", Content(id, 4096)); err != nil {
				return res, err
			}
			for u := 0; u < cfg.Users; u++ {
				user := trace.UserID(u)
				if user != "owner" {
					if _, err := w.Space.AddReference(id, user); err != nil {
						return res, err
					}
				}
				if u < personalized {
					p := property.NewWatermarker(user, 0)
					if err := w.Space.Attach(id, user, docspace.Personal, p); err != nil {
						return res, err
					}
				}
			}
		}
		for i := 0; i < cfg.Docs; i++ {
			for u := 0; u < cfg.Users; u++ {
				if _, err := w.Cache.Read(trace.DocID(i), trace.UserID(u)); err != nil {
					return res, err
				}
			}
		}
		st := w.Cache.Stats()
		row := SharingRow{
			PersonalizedFrac: frac,
			Entries:          w.Cache.Len(),
			BytesLogical:     st.BytesLogical,
			BytesStored:      st.BytesStored,
		}
		if st.BytesLogical > 0 {
			row.Saved = 1 - float64(st.BytesStored)/float64(st.BytesLogical)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
