package experiment

import (
	"fmt"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/metrics"
	"placeless/internal/property"
)

// CollectionConfig parameterizes the related-document prefetching
// experiment (E8).
type CollectionConfig struct {
	// Members is the collection size.
	Members int
	// DocSize is each member's size in bytes.
	DocSize int64
	// Seed drives jitter.
	Seed int64
}

// DefaultCollectionConfig returns the configuration used by plbench
// and the benchmarks.
func DefaultCollectionConfig() CollectionConfig {
	return CollectionConfig{Members: 8, DocSize: 4096, Seed: 1}
}

// CollectionRow is one configuration row of experiment E8.
type CollectionRow struct {
	// Config labels the run (prefetch-off / prefetch-on).
	Config string
	// FirstRead is the latency of the first member read (which pays
	// for the prefetching when enabled).
	FirstRead time.Duration
	// MeanSubsequent is the mean first-touch latency of the
	// remaining members.
	MeanSubsequent time.Duration
	// TotalWalk is the simulated time to read every member once.
	TotalWalk time.Duration
	// Prefetches counts prefetched documents.
	Prefetches int64
}

// CollectionResult is experiment E8's output.
type CollectionResult struct {
	Config CollectionConfig
	Rows   []CollectionRow
}

// TableData returns the result's header and rows, the shared
// source for the text-table and CSV renderings.
func (r CollectionResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Config,
			fmtMS(row.FirstRead),
			fmtMS(row.MeanSubsequent),
			fmtMS(row.TotalWalk),
			fmt.Sprintf("%d", row.Prefetches),
		})
	}
	return []string{"config", "first read (ms)", "later members (ms)", "whole walk (ms)", "prefetches"}, rows
}

// Table renders the result as an aligned text table.
func (r CollectionResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r CollectionResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// RunCollection measures the paper's §5 open question about caching
// for related documents: a user walks through every member of a
// collection of far-away (WAN) documents. With the collection property
// feeding the cache's prefetcher, the first read pays for warming the
// whole set and every later member is a hit; without it, every member
// pays its own WAN round trip.
func RunCollection(cfg CollectionConfig) (CollectionResult, error) {
	res := CollectionResult{Config: cfg}
	for _, enabled := range []bool{false, true} {
		opts := DefaultCacheOptions()
		opts.DisablePrefetch = !enabled
		w := NewWorld(cfg.Seed, opts)

		members := make([]string, cfg.Members)
		col := property.NewCollection("report")
		for i := range members {
			id := fmt.Sprintf("section-%02d", i)
			members[i] = id
			if err := w.AddWebDoc(w.WAN, id, "reader", Content(id, cfg.DocSize)); err != nil {
				return res, err
			}
			col.Add(id)
		}
		for _, id := range members {
			if err := w.Space.Attach(id, "", docspace.Universal, col); err != nil {
				return res, err
			}
		}

		walk := metrics.NewHistogram()
		walkStart := w.Clk.Now()
		var first time.Duration
		for i, id := range members {
			d := w.Timed(func() {
				if _, err := w.Cache.Read(id, "reader"); err != nil {
					panic(err)
				}
			})
			if i == 0 {
				first = d
			} else {
				walk.Observe(d)
			}
		}
		row := CollectionRow{
			Config:         map[bool]string{false: "prefetch-off", true: "prefetch-on"}[enabled],
			FirstRead:      first,
			MeanSubsequent: walk.Mean(),
			TotalWalk:      w.Clk.Now().Sub(walkStart),
			Prefetches:     w.Cache.Stats().Prefetches,
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
