package experiment

import (
	"fmt"

	"placeless/internal/core"
	"placeless/internal/swarm"
)

// SwarmConfig parameterizes the trace-driven swarm experiment (E18):
// one generated op stream shape — Zipf document popularity, diurnal
// intensity, personal-chain churn, a flash-crowd spike — executed
// through three deployments whose rows form a latency/staleness/
// recompute-cost frontier: a single write-through cache, the
// consistent-hash cluster router, and a single write-back cache
// (which trades staleness for write latency, putting a nonzero
// number in the staleness column).
type SwarmConfig struct {
	// Users is the virtualized user population (identities are
	// multiplexed over Workers, so this scales to millions).
	Users int
	// Docs and Ops shape the stream volume.
	Docs, Ops int
	// Alpha and UserAlpha are the document and user Zipf exponents.
	Alpha, UserAlpha float64
	// WriteFrac and ChurnFrac are the write and personal-chain
	// mutation fractions of the stream.
	WriteFrac, ChurnFrac float64
	// FlashDoc's popularity spikes FlashBoost-fold between
	// FlashStart·day and FlashEnd·day.
	FlashDoc              int
	FlashBoost            float64
	FlashStart, FlashEnd  float64
	// Workers bounds the concurrent pool; Nodes and Replicas shape the
	// cluster phase's ring.
	Workers, Nodes, Replicas int
	// FlushOps is the write-back phase's flush cadence; WritebackOps
	// shortens its stream (that phase is single-worker by design, see
	// swarm.RunConfig.Workers).
	FlushOps, WritebackOps int
	// Seed fixes the streams.
	Seed int64
}

// DefaultSwarmConfig returns the configuration used by plbench: a
// 120k-user population over ~1.2k documents, sized to finish a
// cluster-routed run inside CI's budget.
func DefaultSwarmConfig() SwarmConfig {
	return SwarmConfig{
		Users: 120000, Docs: 1200, Ops: 150000,
		Alpha: 0.9, UserAlpha: 1.2,
		WriteFrac: 0.02, ChurnFrac: 0.03,
		FlashDoc: 2, FlashBoost: 100, FlashStart: 0.4, FlashEnd: 0.45,
		Workers: 8, Nodes: 3, Replicas: 2,
		FlushOps: 16, WritebackOps: 30000,
		Seed: 1,
	}
}

// SwarmResult is experiment E18's output: one frontier row per phase.
type SwarmResult struct {
	Config SwarmConfig
	Phases []swarm.Frontier
}

// TableData returns the result's header and rows, the shared source
// for the text-table and CSV renderings.
func (r SwarmResult) TableData() ([]string, [][]string) {
	header := []string{"phase", "users", "ops", "hit%", "memo_saved", "universal_runs", "stale", "max_lag", "p50_us", "p99_us", "elapsed_ms"}
	var rows [][]string
	for _, p := range r.Phases {
		rows = append(rows, []string{
			p.Phase,
			fmt.Sprintf("%d", p.Users),
			fmt.Sprintf("%d", p.Ops),
			fmt.Sprintf("%.1f", p.HitRate()*100),
			fmt.Sprintf("%d", p.SegmentRunsSaved),
			fmt.Sprintf("%d", p.UniversalStageRuns),
			fmt.Sprintf("%d", p.StaleReads),
			fmt.Sprintf("%d", p.MaxVersionLag),
			fmt.Sprintf("%.0f", p.P50Micros),
			fmt.Sprintf("%.0f", p.P99Micros),
			fmt.Sprintf("%.0f", p.ElapsedMS),
		})
	}
	return header, rows
}

// Table renders the result as an aligned text table.
func (r SwarmResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r SwarmResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// phases expands the configuration into the three frontier rows.
func (cfg SwarmConfig) phases() []swarm.RunConfig {
	gen := swarm.Config{
		Users: cfg.Users, Docs: cfg.Docs, Ops: cfg.Ops,
		Alpha: cfg.Alpha, UserAlpha: cfg.UserAlpha,
		WriteFrac: cfg.WriteFrac, ChurnFrac: cfg.ChurnFrac,
		FlashDoc: cfg.FlashDoc, FlashBoost: cfg.FlashBoost,
		FlashStart: cfg.FlashStart, FlashEnd: cfg.FlashEnd,
		Seed: cfg.Seed,
	}
	wbGen := gen
	if cfg.WritebackOps > 0 {
		wbGen.Ops = cfg.WritebackOps
	}
	return []swarm.RunConfig{
		{Gen: gen, Phase: "single/wt", Backend: swarm.Single, Workers: cfg.Workers},
		{Gen: gen, Phase: "cluster/wt", Backend: swarm.Cluster,
			Nodes: cfg.Nodes, Replicas: cfg.Replicas, Workers: cfg.Workers},
		{Gen: wbGen, Phase: "single/wb", Backend: swarm.Single,
			Mode: core.WriteBack, FlushOps: cfg.FlushOps},
	}
}

// RunSwarm runs experiment E18: the trace-driven swarm over the three
// deployment phases.
func RunSwarm(cfg SwarmConfig) (SwarmResult, error) {
	res := SwarmResult{Config: cfg}
	for _, rc := range cfg.phases() {
		f, err := swarm.Run(rc)
		if err != nil {
			return res, err
		}
		res.Phases = append(res.Phases, f)
	}
	return res, nil
}
