package experiment

import (
	"fmt"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// PrefixConfig parameterizes the longest-shared-prefix pipeline
// experiment (E17): N users share one document whose personal chains
// overlap — every user runs the same expensive translate property
// before their own cheap watermark. The single-cut split (E12's
// protocol) can only memoize the universal stage, so every user's miss
// re-executes the shared translate; the N-cut pipeline shares its
// output across users, making miss-path compute scale with the number
// of distinct chain prefixes instead of the number of users.
type PrefixConfig struct {
	// Users lists the fan-out levels to measure.
	Users []int
	// DocSize is the document size in bytes.
	DocSize int64
	// UniversalCost is the simulated execution cost of each of the two
	// universal transforms.
	UniversalCost time.Duration
	// SharedCost is the simulated cost of the translate property every
	// user's personal chain starts with — the shared personal prefix.
	SharedCost time.Duration
	// PersonalCost is the simulated cost of each user's watermark, the
	// only truly per-user segment.
	PersonalCost time.Duration
	// Seed fixes simulated jitter.
	Seed int64
}

// DefaultPrefixConfig returns the configuration used by plbench.
func DefaultPrefixConfig() PrefixConfig {
	// 4 KiB keeps the raw-bit fetch (which every miss pays regardless
	// of mode — the source signature is half of every memo key) from
	// flooring the per-read time and hiding the compute sharing under
	// measurement.
	return PrefixConfig{
		Users:         []int{8, 16, 32, 64, 96},
		DocSize:       4 << 10,
		UniversalCost: 2 * time.Millisecond,
		SharedCost:    4 * time.Millisecond,
		PersonalCost:  100 * time.Microsecond,
		Seed:          1,
	}
}

// PrefixRow is one fan-out level's measurements of the cold miss storm
// (every user reads once, nothing warm).
type PrefixRow struct {
	// Users is the fan-out level.
	Users int
	// FullMiss is the mean per-read simulated miss time with
	// memoization off.
	FullMiss time.Duration
	// SingleMiss is the mean miss time under the single-cut baseline
	// (universal/personal boundary only, E12's protocol).
	SingleMiss time.Duration
	// MultiMiss is the mean miss time under the N-cut prefix pipeline.
	MultiMiss time.Duration
	// SpeedupVsSingle is SingleMiss / MultiMiss: what the generalized
	// pipeline buys over boundary-only memoization.
	SpeedupVsSingle float64
	// SharedRunsSingle and SharedRunsMulti count executions of the
	// shared translate property in each mode. Single-cut cannot share
	// it (one run per user); multi-cut runs it once per distinct
	// prefix — one, here.
	SharedRunsSingle int64
	SharedRunsMulti  int64
	// UniversalRuns is the universal-stage executions in multi-cut mode.
	UniversalRuns int64
	// PrefixHits counts multi-cut misses resumed from a cached prefix.
	PrefixHits int64
}

// PrefixResult is experiment E17's output.
type PrefixResult struct {
	Config PrefixConfig
	Rows   []PrefixRow
}

// TableData returns the result's header and rows, the shared source
// for the text-table and CSV renderings.
func (r PrefixResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Users),
			fmtMS(row.FullMiss),
			fmtMS(row.SingleMiss),
			fmtMS(row.MultiMiss),
			fmt.Sprintf("%.2fx", row.SpeedupVsSingle),
			fmt.Sprintf("%d", row.SharedRunsSingle),
			fmt.Sprintf("%d", row.SharedRunsMulti),
			fmt.Sprintf("%d", row.UniversalRuns),
			fmt.Sprintf("%d", row.PrefixHits),
		})
	}
	return []string{"users", "full ms", "single-cut ms", "multi-cut ms", "vs single", "shared runs (single)", "shared runs (multi)", "universal runs", "prefix hits"}, rows
}

// Table renders the result as an aligned text table.
func (r PrefixResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r PrefixResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// prefixMode selects the memoization protocol under measurement.
type prefixMode int

const (
	prefixOff    prefixMode = iota // no memoization
	prefixSingle                   // boundary-only (E12 protocol)
	prefixMulti                    // N-cut longest-prefix pipeline
)

// runPrefixMode builds one world — a two-transform universal chain and
// a personal chain of [shared translate, per-user watermark] — and
// drives the cold miss storm: every user reads once, nothing warm. It
// returns the mean simulated read time, the number of times the shared
// translate executed, and the cache's final counters.
func runPrefixMode(cfg PrefixConfig, users int, mode prefixMode) (time.Duration, int64, core.Stats, error) {
	clk := clock.NewVirtual(epoch)
	src := repo.NewMem("localfs", clk, simnet.Local(cfg.Seed))
	space := docspace.New(clk, nil)
	cache := core.New(space, core.Options{
		Name:          "prefix",
		Memoize:       mode != prefixOff,
		SingleCutMemo: mode == prefixSingle,
	})

	const id = "shared"
	if err := src.Store("/"+id, Content(id, cfg.DocSize)); err != nil {
		return 0, 0, core.Stats{}, err
	}
	if _, err := space.CreateDocument(id, memoUserID(0), &property.RepoBitProvider{Repo: src, Path: "/" + id}); err != nil {
		return 0, 0, core.Stats{}, err
	}
	for _, p := range []*property.Transformer{
		property.NewSpellCorrector(cfg.UniversalCost),
		property.NewLineNumberer(cfg.UniversalCost),
	} {
		if err := space.Attach(id, "", docspace.Universal, p); err != nil {
			return 0, 0, core.Stats{}, err
		}
	}

	// Every user's personal chain starts with the same translate
	// property (same dictionary, same memo key — an identical shared
	// prefix) followed by their own watermark. The instances are
	// per-user; the counter is shared, so it counts actual executions
	// of the translate transform across the whole storm.
	var sharedRuns int64
	for i := 0; i < users; i++ {
		u := memoUserID(i)
		if i > 0 {
			if _, err := space.AddReference(id, u); err != nil {
				return 0, 0, core.Stats{}, err
			}
		}
		tr := property.NewTranslator(cfg.SharedCost)
		inner := tr.ReadTransform
		tr.ReadTransform = func(b []byte) []byte {
			sharedRuns++
			return inner(b)
		}
		if err := space.Attach(id, u, docspace.Personal, tr); err != nil {
			return 0, 0, core.Stats{}, err
		}
		if err := space.Attach(id, u, docspace.Personal, property.NewWatermarker(u, cfg.PersonalCost)); err != nil {
			return 0, 0, core.Stats{}, err
		}
	}

	var total time.Duration
	for i := 0; i < users; i++ {
		start := clk.Now()
		if _, err := cache.Read(id, memoUserID(i)); err != nil {
			return 0, 0, core.Stats{}, err
		}
		total += clk.Now().Sub(start)
	}
	return total / time.Duration(users), sharedRuns, cache.Stats(), nil
}

// RunPrefix measures E17: the cold fan-out miss storm under no
// memoization, the single-cut baseline, and the N-cut prefix pipeline.
// The claim under test: with overlapping personal chains, multi-cut
// executes the shared segment once per distinct prefix — not once per
// user — so the miss path's compute is sublinear in fan-out and the
// mean miss time beats the single-cut baseline by the shared segment's
// cost.
func RunPrefix(cfg PrefixConfig) (PrefixResult, error) {
	res := PrefixResult{Config: cfg}
	for _, users := range cfg.Users {
		fullMiss, _, _, err := runPrefixMode(cfg, users, prefixOff)
		if err != nil {
			return res, err
		}
		singleMiss, singleRuns, _, err := runPrefixMode(cfg, users, prefixSingle)
		if err != nil {
			return res, err
		}
		multiMiss, multiRuns, st, err := runPrefixMode(cfg, users, prefixMulti)
		if err != nil {
			return res, err
		}
		row := PrefixRow{
			Users:            users,
			FullMiss:         fullMiss,
			SingleMiss:       singleMiss,
			MultiMiss:        multiMiss,
			SharedRunsSingle: singleRuns,
			SharedRunsMulti:  multiRuns,
			UniversalRuns:    st.UniversalStageRuns,
			PrefixHits:       st.PrefixHits,
		}
		if multiMiss > 0 {
			row.SpeedupVsSingle = float64(singleMiss) / float64(multiMiss)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
