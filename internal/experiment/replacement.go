package experiment

import (
	"fmt"
	"time"

	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/metrics"
	"placeless/internal/property"
	"placeless/internal/replace"
	"placeless/internal/repo"
	"placeless/internal/trace"
)

// ReplacementConfig parameterizes the policy ablation (E2).
type ReplacementConfig struct {
	// Docs is the document population.
	Docs int
	// Reads is the access count.
	Reads int
	// Alpha is the Zipf skew.
	Alpha float64
	// CapacityFrac sizes the cache as a fraction of the total
	// document bytes.
	CapacityFrac float64
	// Seed fixes workload and sizes.
	Seed int64
}

// DefaultReplacementConfig returns the configuration used by plbench
// and the benchmarks: heterogeneous sources and costs with a cache an
// order of magnitude smaller than the working set.
func DefaultReplacementConfig() ReplacementConfig {
	return ReplacementConfig{Docs: 120, Reads: 4000, Alpha: 1.1, CapacityFrac: 0.10, Seed: 1}
}

// ReplacementRow is one policy row of experiment E2.
type ReplacementRow struct {
	// Policy is the replacement policy name.
	Policy string
	// HitRatio is the object hit ratio.
	HitRatio float64
	// ByteHitRatio weights hits by document size.
	ByteHitRatio float64
	// MeanRead is the mean simulated read latency.
	MeanRead time.Duration
	// Evictions counts policy-driven removals.
	Evictions int64
}

// ReplacementResult is experiment E2's output.
type ReplacementResult struct {
	Config ReplacementConfig
	Rows   []ReplacementRow
}

// TableData returns the result's header and rows, the shared
// source for the text-table and CSV renderings.
func (r ReplacementResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy,
			fmtPct(row.HitRatio),
			fmtPct(row.ByteHitRatio),
			fmtMS(row.MeanRead),
			fmt.Sprintf("%d", row.Evictions),
		})
	}
	return []string{"policy", "hit ratio", "byte hit ratio", "mean read (ms)", "evictions"}, rows
}

// Table renders the result as an aligned text table.
func (r ReplacementResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r ReplacementResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// buildReplacementWorld populates a world with cfg.Docs documents
// spread across the three source classes, heavy-tailed sizes, and a
// sprinkling of transform properties so replacement costs vary the way
// the paper intends (source latency + property execution time).
func buildReplacementWorld(cfg ReplacementConfig, policy replace.Policy) (*World, map[string]int64, error) {
	return buildReplacementWorldWithCost(cfg, policy, core.CostFull)
}

// buildReplacementWorldWithCost additionally selects the replacement-
// cost signal (experiment E9).
func buildReplacementWorldWithCost(cfg ReplacementConfig, policy replace.Policy, src core.CostSource) (*World, map[string]int64, error) {
	opts := DefaultCacheOptions()
	opts.Policy = policy
	opts.CostSource = src
	sizes := trace.Sizes(cfg.Docs, 1024, cfg.Seed)
	var total int64
	for _, s := range sizes {
		total += s
	}
	opts.Capacity = int64(float64(total) * cfg.CapacityFrac)
	w := NewWorld(cfg.Seed, opts)

	for i := 0; i < cfg.Docs; i++ {
		id := trace.DocID(i)
		content := Content(id, sizes[id])
		var err error
		var origin *repo.Web
		switch i % 3 {
		case 0:
			err = w.AddLocalDoc(id, "owner", content)
		case 1:
			origin = w.LAN
		default:
			origin = w.WAN
		}
		if origin != nil {
			err = w.AddWebDoc(origin, id, "owner", content)
		}
		if err != nil {
			return nil, nil, err
		}
		if _, err := w.Space.AddReference(id, "reader"); err != nil {
			return nil, nil, err
		}
		// Every fourth document carries an expensive property chain,
		// raising its replacement cost beyond pure retrieval.
		if i%4 == 0 {
			p := property.NewTranslator(25 * time.Millisecond)
			if err := w.Space.Attach(id, "reader", docspace.Personal, p); err != nil {
				return nil, nil, err
			}
		}
	}
	return w, sizes, nil
}

// RunReplacement replays one Zipf trace against each replacement
// policy (GDS — the paper's choice — plus the baselines) and reports
// hit ratios and mean latency. The paper predicts cost-aware policies
// win on latency because they keep expensive-to-rebuild documents.
func RunReplacement(cfg ReplacementConfig) (ReplacementResult, error) {
	res := ReplacementResult{Config: cfg}
	accesses := trace.Generate(trace.Config{
		Docs: cfg.Docs, Users: 1, Length: cfg.Reads, Alpha: cfg.Alpha, Seed: cfg.Seed,
	})
	for _, mk := range replace.All() {
		policy := mk()
		w, sizes, err := buildReplacementWorld(cfg, policy)
		if err != nil {
			return res, err
		}
		readHist := metrics.NewHistogram()
		var hitBytes, totalBytes int64
		for _, a := range accesses {
			before := w.Cache.Stats()
			d := w.Timed(func() {
				if _, err := w.Cache.Read(a.Doc, "reader"); err != nil {
					panic(err)
				}
			})
			readHist.Observe(d)
			after := w.Cache.Stats()
			totalBytes += sizes[a.Doc]
			if after.Hits > before.Hits {
				hitBytes += sizes[a.Doc]
			}
		}
		st := w.Cache.Stats()
		row := ReplacementRow{
			Policy:    policy.Name(),
			HitRatio:  st.HitRatio(),
			MeanRead:  readHist.Mean(),
			Evictions: st.Evictions,
		}
		if totalBytes > 0 {
			row.ByteHitRatio = float64(hitBytes) / float64(totalBytes)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
