package experiment

// These tests assert the *shape* claims each experiment exists to
// demonstrate (who wins, by roughly what factor, where crossovers
// fall), not absolute numbers — matching the reproduction contract in
// DESIGN.md.

import (
	"strings"
	"testing"
	"time"
)

func TestTable1Shape(t *testing.T) {
	res, err := RunTable1(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byLabel := map[string]Table1Row{}
	for _, r := range res.Rows {
		byLabel[r.Source] = r
	}
	parc, gatech, local := byLabel["parcweb"], byLabel["www.gatech.edu"], byLabel["local file"]

	// Paper sizes.
	if parc.Size != 1915 || gatech.Size != 10883 || local.Size != 1104 {
		t.Fatalf("sizes wrong: %+v", res.Rows)
	}
	// Distance ordering for uncached access: local < parcweb < gatech.
	if !(local.NoCache < parc.NoCache && parc.NoCache < gatech.NoCache) {
		t.Fatalf("no-cache ordering broken: local=%v parc=%v gatech=%v",
			local.NoCache, parc.NoCache, gatech.NoCache)
	}
	for _, r := range res.Rows {
		// Miss ≈ no-cache plus a small overhead: within 25%.
		if r.Miss < r.NoCache {
			t.Fatalf("%s: miss %v < no-cache %v", r.Source, r.Miss, r.NoCache)
		}
		if r.Miss > r.NoCache+r.NoCache/4+time.Millisecond {
			t.Fatalf("%s: miss overhead too large: %v vs %v", r.Source, r.Miss, r.NoCache)
		}
		// Hit must crush the remote latencies.
		if r.Hit > r.NoCache {
			t.Fatalf("%s: hit %v not faster than no-cache %v", r.Source, r.Hit, r.NoCache)
		}
	}
	// For the remote sources the win is at least 5×.
	if gatech.Hit*5 > gatech.NoCache || parc.Hit*5 > parc.NoCache {
		t.Fatalf("remote hit speedup too small: parc %v/%v gatech %v/%v",
			parc.Hit, parc.NoCache, gatech.Hit, gatech.NoCache)
	}
	out := res.Table()
	for _, want := range []string{"parcweb", "www.gatech.edu", "local file", "1,915", "10,883", "1,104"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Deterministic(t *testing.T) {
	a, _ := RunTable1(7, 3)
	b, _ := RunTable1(7, 3)
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs across runs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestNotifierVerifierTradeoff(t *testing.T) {
	res, err := RunNotifierVerifier(DefaultNVConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[ConsistencyMode]NVRow{}
	for _, r := range res.Rows {
		rows[r.Mode] = r
	}
	vOnly, nOnly, both := rows[VerifierOnly], rows[NotifierOnly], rows[BothMechanisms]

	// The paper's tradeoff: verifier execution costs hit latency...
	if nOnly.MeanHit >= vOnly.MeanHit {
		t.Fatalf("notifier-only hits (%v) should be faster than verifier-only (%v)",
			nOnly.MeanHit, vOnly.MeanHit)
	}
	// ...while notifiers add load to the Placeless system.
	if nOnly.Notifications == 0 || vOnly.Notifications != 0 {
		t.Fatalf("notification load wrong: notifier=%d verifier=%d",
			nOnly.Notifications, vOnly.Notifications)
	}
	if vOnly.VerifierPolls == 0 || nOnly.VerifierPolls != 0 {
		t.Fatalf("poll load wrong: verifier=%d notifier=%d",
			vOnly.VerifierPolls, nOnly.VerifierPolls)
	}
	// Consistency: notifier-only misses out-of-band updates; the
	// other modes see everything.
	if nOnly.StaleReads == 0 {
		t.Fatal("notifier-only mode should serve some stale reads (out-of-band updates invisible)")
	}
	if vOnly.StaleReads != 0 || both.StaleReads != 0 {
		t.Fatalf("stale reads in verified modes: v=%d both=%d", vOnly.StaleReads, both.StaleReads)
	}
	if !strings.Contains(res.Table(), "verifier-only") {
		t.Fatal("table rendering broken")
	}
}

func TestNotifierVerifierSweepShape(t *testing.T) {
	cfg := DefaultNVConfig()
	cfg.Reads = 800 // keep the sweep quick
	res, err := RunNotifierVerifierSweep(cfg, []int{5, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rates) != 2 {
		t.Fatalf("rates = %d", len(res.Rates))
	}
	byMode := func(rate NVSweepRow, m ConsistencyMode) NVRow {
		for _, r := range rate.Rows {
			if r.Mode == m {
				return r
			}
		}
		t.Fatalf("mode %v missing", m)
		return NVRow{}
	}
	fast, slow := res.Rates[0], res.Rates[1]
	// More updates → more notifications and lower hit ratios.
	if byMode(fast, NotifierOnly).Notifications <= byMode(slow, NotifierOnly).Notifications {
		t.Fatal("notification load did not grow with update rate")
	}
	if byMode(fast, VerifierOnly).HitRatio >= byMode(slow, VerifierOnly).HitRatio {
		t.Fatal("hit ratio did not fall with update rate")
	}
	// Verified modes stay stale-free at every rate.
	for _, rate := range res.Rates {
		if byMode(rate, VerifierOnly).StaleReads != 0 || byMode(rate, BothMechanisms).StaleReads != 0 {
			t.Fatalf("stale reads in verified mode at 1/%d", rate.UpdateEvery)
		}
	}
	if !strings.Contains(res.Table(), "1/5") {
		t.Fatal("sweep table rendering broken")
	}
}

func TestReplacementGDSWins(t *testing.T) {
	res, err := RunReplacement(DefaultReplacementConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]ReplacementRow{}
	for _, r := range res.Rows {
		rows[r.Policy] = r
	}
	if len(rows) != 6 {
		t.Fatalf("policies = %d", len(rows))
	}
	// The paper's expectation: cost-aware replacement (GDS/GDSF)
	// yields lower mean latency than cost-blind policies, because it
	// keeps expensive-to-rebuild documents. Compare against FIFO, the
	// weakest baseline.
	gds, fifo := rows["gds"], rows["fifo"]
	if gds.MeanRead >= fifo.MeanRead {
		t.Fatalf("GDS mean read %v not better than FIFO %v", gds.MeanRead, fifo.MeanRead)
	}
	for _, r := range res.Rows {
		if r.HitRatio <= 0 || r.HitRatio >= 1 {
			t.Fatalf("%s hit ratio %v out of range", r.Policy, r.HitRatio)
		}
		if r.Evictions == 0 {
			t.Fatalf("%s: no evictions — cache not under pressure", r.Policy)
		}
	}
}

func TestSharingCurve(t *testing.T) {
	res, err := RunSharing(DefaultSharingConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// With no personalization, N users share one blob per document:
	// saved ≈ 1 - 1/N.
	wantSaved := 1 - 1/float64(res.Config.Users)
	if first.Saved < wantSaved-0.02 || first.Saved > wantSaved+0.02 {
		t.Fatalf("unpersonalized saved = %v, want ≈%v", first.Saved, wantSaved)
	}
	// With full personalization nothing is shared.
	if last.Saved != 0 {
		t.Fatalf("fully personalized saved = %v, want 0", last.Saved)
	}
	// Monotone decline in savings as personalization rises.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Saved > res.Rows[i-1].Saved+1e-9 {
			t.Fatalf("savings not monotone: %+v", res.Rows)
		}
	}
	// Entry count is constant — sharing is about bytes, not entries.
	for _, r := range res.Rows {
		if r.Entries != res.Config.Docs*res.Config.Users {
			t.Fatalf("entries = %d", r.Entries)
		}
	}
}

func TestCacheabilityMix(t *testing.T) {
	res, err := RunCacheability(DefaultCacheabilityConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]CacheabilityRow{}
	for _, r := range res.Rows {
		rows[r.Mix] = r
	}
	allCacheable, allEvents, allUncacheable := rows["100/0/0"], rows["0/100/0"], rows["0/0/100"]
	// Uncacheable population: zero hits, worst latency.
	if allUncacheable.HitRatio != 0 {
		t.Fatalf("uncacheable hit ratio = %v", allUncacheable.HitRatio)
	}
	if allUncacheable.MeanRead <= allCacheable.MeanRead {
		t.Fatal("uncacheable population should be slower than cacheable")
	}
	// CacheWithEvents keeps the hit ratio of unrestricted caching...
	if allEvents.HitRatio < allCacheable.HitRatio-0.02 {
		t.Fatalf("with-events hit ratio %v collapsed vs %v", allEvents.HitRatio, allCacheable.HitRatio)
	}
	// ...while forwarding one event per hit.
	if allEvents.EventsForwarded == 0 || allCacheable.EventsForwarded != 0 {
		t.Fatalf("events forwarded: events=%d cacheable=%d",
			allEvents.EventsForwarded, allCacheable.EventsForwarded)
	}
}

func TestChainsFlatHitCurve(t *testing.T) {
	res, err := RunChains(DefaultChainsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// No-cache latency grows with the chain (≈ +5ms per property).
	grown := last.NoCache - first.NoCache
	wantGrowth := time.Duration(res.Config.MaxChain) * res.Config.PropCost
	if grown < wantGrowth*9/10 {
		t.Fatalf("no-cache growth %v, want ≈%v", grown, wantGrowth)
	}
	// The hit curve stays flat: caching hides property execution.
	if last.Hit > first.Hit+time.Millisecond {
		t.Fatalf("hit latency grew with chain: %v -> %v", first.Hit, last.Hit)
	}
	// Replacement cost reflects the chain, feeding GDS.
	if last.ReplacementCost <= first.ReplacementCost {
		t.Fatal("replacement cost did not grow with the chain")
	}
}

func TestQoSPinningWorks(t *testing.T) {
	res, err := RunQoS(DefaultQoSConfig())
	if err != nil {
		t.Fatal(err)
	}
	var off, on QoSRow
	for _, r := range res.Rows {
		if r.Config == "qos-off" {
			off = r
		} else {
			on = r
		}
	}
	// With the QoS property inflating replacement cost, the document
	// stays resident and meets its latency target.
	if !on.MetTarget {
		t.Fatalf("qos-on failed the 250ms target: %+v", on)
	}
	if on.QoSHitRatio <= off.QoSHitRatio {
		t.Fatalf("qos-on hit ratio %v not better than qos-off %v", on.QoSHitRatio, off.QoSHitRatio)
	}
	if off.MetTarget {
		t.Fatalf("qos-off unexpectedly met the target — no pressure in the experiment: %+v", off)
	}
	if on.QoSWorstRead >= off.QoSWorstRead {
		t.Fatalf("worst-case read did not improve: on=%v off=%v", on.QoSWorstRead, off.QoSWorstRead)
	}
}

func TestPlacementShape(t *testing.T) {
	res, err := RunPlacement(DefaultPlacementConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]PlacementRow{}
	for _, r := range res.Rows {
		rows[r.Placement] = r
	}
	none, srvOnly, appOnly, both := rows["no-cache"], rows["server-only"], rows["app-only"], rows["app+server"]
	// Any cache beats none.
	for name, r := range map[string]PlacementRow{"server-only": srvOnly, "app-only": appOnly, "app+server": both} {
		if r.MeanRead >= none.MeanRead {
			t.Fatalf("%s (%v) not better than no-cache (%v)", name, r.MeanRead, none.MeanRead)
		}
	}
	// The server cache converts app-cache misses from WAN fetches
	// into link round trips, so the combination beats either alone.
	if both.MeanRead >= srvOnly.MeanRead || both.MeanRead >= appOnly.MeanRead {
		t.Fatalf("combined placement %v vs server %v / app %v", both.MeanRead, srvOnly.MeanRead, appOnly.MeanRead)
	}
	// The small app-only cache pays full WAN misses, so with this
	// capacity the server placement wins on mean.
	if srvOnly.MeanRead >= appOnly.MeanRead {
		t.Fatalf("server-only %v should beat the small app-only cache %v", srvOnly.MeanRead, appOnly.MeanRead)
	}
}

func TestCostAblationShape(t *testing.T) {
	res, err := RunCostAblation(DefaultReplacementConfig())
	if err != nil {
		t.Fatal(err)
	}
	var full, constant CostAblationRow
	for _, r := range res.Rows {
		if r.Config == "full" {
			full = r
		} else {
			constant = r
		}
	}
	// The paper's design decision: property-supplied costs must beat
	// a cost-blind GDS on mean latency.
	if full.MeanRead >= constant.MeanRead {
		t.Fatalf("full-cost GDS %v not better than constant-cost %v", full.MeanRead, constant.MeanRead)
	}
}

func TestCollectionPrefetchShape(t *testing.T) {
	res, err := RunCollection(DefaultCollectionConfig())
	if err != nil {
		t.Fatal(err)
	}
	var off, on CollectionRow
	for _, r := range res.Rows {
		if r.Config == "prefetch-off" {
			off = r
		} else {
			on = r
		}
	}
	// Without prefetch every member pays the WAN; with it, later
	// members are pure hits (≥100× faster first touch).
	if on.MeanSubsequent*100 > off.MeanSubsequent {
		t.Fatalf("later-member latency: on=%v off=%v", on.MeanSubsequent, off.MeanSubsequent)
	}
	if on.Prefetches != int64(res.Config.Members-1) || off.Prefetches != 0 {
		t.Fatalf("prefetches: on=%d off=%d", on.Prefetches, off.Prefetches)
	}
	// The first read pays for the warmup; the whole-walk totals stay
	// comparable (prefetching shifts cost, it does not create it).
	if on.FirstRead < off.FirstRead {
		t.Fatal("prefetching first read should absorb the warmup cost")
	}
	if on.TotalWalk > off.TotalWalk*11/10 {
		t.Fatalf("prefetching inflated total walk: %v vs %v", on.TotalWalk, off.TotalWalk)
	}
}

func TestContentDeterministicAndSized(t *testing.T) {
	a := Content("x", 1000)
	b := Content("x", 1000)
	if len(a) != 1000 || string(a) != string(b) {
		t.Fatal("Content not deterministic or mis-sized")
	}
	if len(Content("y", 0)) != 1 {
		t.Fatal("zero size should clamp to 1")
	}
}

func TestFormatHelpers(t *testing.T) {
	if fmtInt(10883) != "10,883" || fmtInt(1104) != "1,104" || fmtInt(5) != "5" || fmtInt(0) != "0" {
		t.Fatalf("fmtInt broken: %s %s", fmtInt(10883), fmtInt(1104))
	}
	if fmtInt(1234567) != "1,234,567" {
		t.Fatalf("fmtInt(1234567) = %s", fmtInt(1234567))
	}
	if fmtMS(1500*time.Microsecond) != "1.50" {
		t.Fatalf("fmtMS = %s", fmtMS(1500*time.Microsecond))
	}
	if fmtPct(0.125) != "12.5%" {
		t.Fatalf("fmtPct = %s", fmtPct(0.125))
	}
	out := table([]string{"a", "bb"}, [][]string{{"1", "2"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Fatalf("table = %q", out)
	}
}

func TestMemoFanOut(t *testing.T) {
	// Small configuration of E12; plbench runs the full sweep. The
	// invariants, not the magnitudes, are asserted: the universal
	// stage runs once per (content, chain) key regardless of fan-out,
	// and memoized misses are strictly cheaper than full ones.
	cfg := MemoConfig{
		Users:        []int{1, 4},
		DocSize:      4 << 10,
		PropCost:     time.Millisecond,
		PersonalCost: 100 * time.Microsecond,
		Rounds:       2,
		Seed:         1,
	}
	res, err := RunMemo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Users) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.Users))
	}
	for i, row := range res.Rows {
		if row.Users != cfg.Users[i] {
			t.Fatalf("row %d users = %d", i, row.Users)
		}
		if row.UniversalRuns != 1 {
			t.Fatalf("row %d universal runs = %d, want 1", i, row.UniversalRuns)
		}
		if row.IntermediateHits != int64(row.Users*cfg.Rounds-1) {
			t.Fatalf("row %d intermediate hits = %d, want %d", i, row.IntermediateHits, row.Users*cfg.Rounds-1)
		}
		if row.MemoMiss >= row.FullMiss {
			t.Fatalf("row %d: memoized miss %v not cheaper than full miss %v", i, row.MemoMiss, row.FullMiss)
		}
		if row.SavedBytes <= 0 {
			t.Fatalf("row %d saved bytes = %d", i, row.SavedBytes)
		}
	}
	// Determinism (virtual clock): the JSON artifact must be stable.
	again, err := RunMemo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != again.Rows[i] {
			t.Fatalf("row %d not deterministic: %+v vs %+v", i, res.Rows[i], again.Rows[i])
		}
	}
}

func TestParallelShape(t *testing.T) {
	// Tiny real-clock configuration: the full-size run is plbench's
	// job; here we assert the shape and the single-flight invariant.
	cfg := ParallelConfig{
		Docs:            4,
		Goroutines:      []int{1, 4},
		OpsPerGoroutine: 5,
		HitCost:         50 * time.Microsecond,
		FillCost:        100 * time.Microsecond,
		Seed:            1,
	}
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Goroutines) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.Goroutines))
	}
	for i, row := range res.Rows {
		if row.Goroutines != cfg.Goroutines[i] {
			t.Fatalf("row %d goroutines = %d", i, row.Goroutines)
		}
		if row.SeedMutexRate <= 0 || row.ShardedRate <= 0 {
			t.Fatalf("row %d has nonpositive rates: %+v", i, row)
		}
		// Single-flight: concurrent cold misses collapse to one fetch.
		if row.ColdFetches != 1 {
			t.Fatalf("row %d cold fetches = %d, want 1", i, row.ColdFetches)
		}
		if row.ColdFetches+row.Coalesced > int64(row.Goroutines) {
			t.Fatalf("row %d fetches+coalesced exceed goroutines: %+v", i, row)
		}
	}
}

func TestObsShape(t *testing.T) {
	// Tiny real-clock configuration of E13; plbench runs the full one.
	// Asserted: rates are positive, the visibility workload produced
	// every verdict class, and the stage histograms that must be
	// populated (lookup on every read, the staged miss spans, and
	// flight_wait from the coalesced storm) are.
	cfg := ObsConfig{
		Docs:               8,
		Goroutines:         2,
		OpsPerGoroutine:    20,
		RawOpsPerGoroutine: 200,
		HitCost:            50 * time.Microsecond,
		Users:              3,
		PropCost:           100 * time.Microsecond,
		PersonalCost:       50 * time.Microsecond,
		Seed:               1,
	}
	res, err := RunObs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, rate := range map[string]float64{
		"bare": res.BareRate, "observed": res.ObservedRate,
		"raw bare": res.RawBareRate, "raw observed": res.RawObservedRate,
	} {
		if rate <= 0 {
			t.Fatalf("%s rate = %f, want > 0", name, rate)
		}
	}
	if res.Verdicts["hit"] == 0 || res.Verdicts["miss"] == 0 || res.Verdicts["memo"] == 0 {
		t.Fatalf("verdicts = %v, want hit, miss and memo all > 0", res.Verdicts)
	}
	stages := make(map[string]ObsStageRow)
	for _, s := range res.Stages {
		stages[s.Stage] = s
	}
	for _, want := range []string{"shard_lookup", "verify", "bit_fetch", "universal", "personal"} {
		if stages[want].Count == 0 {
			t.Fatalf("stage %s not populated; stages = %v", want, stages)
		}
	}
	if stages["universal"].Mean <= 0 {
		t.Fatalf("universal stage mean = %v, want > 0", stages["universal"].Mean)
	}
	header, rows := res.TableData()
	if len(header) != 2 || len(rows) < 8 {
		t.Fatalf("table shape: header=%v rows=%d", header, len(rows))
	}
	if !strings.Contains(res.Table(), "instrumentation overhead") {
		t.Fatalf("table missing overhead row:\n%s", res.Table())
	}
}

func TestResilienceShape(t *testing.T) {
	// Tiny real-TCP configuration of E14; plbench runs the full one.
	cfg := ResilienceConfig{
		Docs:          3,
		CallTimeout:   2 * time.Second,
		BackoffBase:   2 * time.Millisecond,
		BackoffMax:    20 * time.Millisecond,
		StaleTTL:      time.Minute,
		WedgedCalls:   5,
		WedgedTimeout: 30 * time.Millisecond,
		Seed:          1,
	}
	res, err := RunResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(res.Phases))
	}
	for _, p := range res.Phases {
		if p.Reconnects != 1 {
			t.Fatalf("%s reconnects = %d, want 1", p.Policy, p.Reconnects)
		}
		if p.EpochFlushes != int64(cfg.Docs) {
			t.Fatalf("%s epoch flushes = %d, want %d", p.Policy, p.EpochFlushes, cfg.Docs)
		}
		if p.StaleAfterReconnect != 0 {
			t.Fatalf("%s served %d stale reads after reconnect", p.Policy, p.StaleAfterReconnect)
		}
		if p.PostReconnectReads != int64(cfg.Docs) {
			t.Fatalf("%s post-reconnect reads = %d", p.Policy, p.PostReconnectReads)
		}
	}
	ff, ss := res.Phases[0], res.Phases[1]
	if ff.Policy != "fail-fast" || ss.Policy != "serve-stale" {
		t.Fatalf("phase order = %q, %q", ff.Policy, ss.Policy)
	}
	if ff.StaleServed != 0 || ff.DegradedErrors < int64(cfg.Docs) {
		t.Fatalf("fail-fast phase = %+v", ff)
	}
	if ss.StaleServed != int64(cfg.Docs) {
		t.Fatalf("serve-stale phase = %+v", ss)
	}
	if res.WedgedP50 < cfg.WedgedTimeout || res.WedgedP99 < res.WedgedP50 {
		t.Fatalf("wedged p50=%v p99=%v vs deadline %v", res.WedgedP50, res.WedgedP99, cfg.WedgedTimeout)
	}
	if res.WedgedP99 > 10*cfg.WedgedTimeout {
		t.Fatalf("wedged p99 = %v: deadline not enforced tightly", res.WedgedP99)
	}
	if !strings.Contains(res.Table(), "stale after reconnect") {
		t.Fatalf("table missing acceptance row:\n%s", res.Table())
	}
}

func TestClusterScalingShape(t *testing.T) {
	// Small configuration of E16; plbench runs the full one. The shape
	// still carries the acceptance claim: aggregate warm-hit throughput
	// must scale with cluster size because the ring balances primaries.
	cfg := ClusterConfig{
		Nodes:    []int{1, 4},
		Docs:     32,
		Users:    4,
		Reads:    2048,
		Replicas: 2,
		VNodes:   256,
		HitCost:  time.Millisecond,
		Seed:     1,
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(res.Phases))
	}
	for _, p := range res.Phases {
		if p.Keys != cfg.Docs*cfg.Users || p.Reads != int64(cfg.Reads) {
			t.Fatalf("phase shape = %+v", p)
		}
		// Every measured read lands warm: the ring pins each key to its
		// owners, so the warm pass filled exactly the caches that serve.
		if p.Hits != p.Reads {
			t.Fatalf("nodes=%d: %d of %d measured reads hit", p.Nodes, p.Hits, p.Reads)
		}
		if p.Failovers != 0 {
			t.Fatalf("nodes=%d: %d failovers on a healthy fleet", p.Nodes, p.Failovers)
		}
	}
	if s := res.SpeedupByNodes["4"]; s < 3 {
		t.Fatalf("speedup at 4 nodes = %.2fx, want >= 3x (ring badly unbalanced)", s)
	}
	if res.Phases[0].Imbalance != 1 {
		t.Fatalf("single node imbalance = %.2f, want exactly 1", res.Phases[0].Imbalance)
	}
	if !strings.Contains(res.Table(), "agg_ops/s") {
		t.Fatalf("table missing throughput column:\n%s", res.Table())
	}
}

func TestPrefixFanOut(t *testing.T) {
	// Reduced E17: plbench runs the full sweep. The acceptance
	// invariants are asserted at the 64-user level — the shared
	// personal segment executes once under multi-cut (O(distinct
	// prefixes)) versus once per user under single-cut (O(users)), and
	// the multi-cut miss path beats the single-cut baseline by at
	// least 3x.
	cfg := PrefixConfig{
		Users:         []int{8, 64},
		DocSize:       4 << 10,
		UniversalCost: 2 * time.Millisecond,
		SharedCost:    4 * time.Millisecond,
		PersonalCost:  100 * time.Microsecond,
		Seed:          1,
	}
	res, err := RunPrefix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Users) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.Users))
	}
	for i, row := range res.Rows {
		if row.Users != cfg.Users[i] {
			t.Fatalf("row %d users = %d", i, row.Users)
		}
		if row.UniversalRuns != 1 {
			t.Fatalf("row %d: universal runs = %d, want 1", i, row.UniversalRuns)
		}
		if row.SharedRunsMulti != 1 {
			t.Fatalf("row %d: multi-cut ran the shared segment %d times, want 1", i, row.SharedRunsMulti)
		}
		if row.SharedRunsSingle != int64(row.Users) {
			t.Fatalf("row %d: single-cut ran the shared segment %d times, want %d", i, row.SharedRunsSingle, row.Users)
		}
		if row.PrefixHits < int64(row.Users-1) {
			t.Fatalf("row %d: prefix hits = %d, want >= %d", i, row.PrefixHits, row.Users-1)
		}
		if row.MultiMiss >= row.SingleMiss || row.SingleMiss >= row.FullMiss {
			t.Fatalf("row %d: miss times not ordered multi < single < full: %v %v %v",
				i, row.MultiMiss, row.SingleMiss, row.FullMiss)
		}
	}
	if last := res.Rows[len(res.Rows)-1]; last.SpeedupVsSingle < 3 {
		t.Fatalf("speedup vs single-cut at %d users = %.2fx, want >= 3x", last.Users, last.SpeedupVsSingle)
	}
	// Determinism (virtual clock): the JSON artifact must be stable.
	again, err := RunPrefix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != again.Rows[i] {
			t.Fatalf("row %d not deterministic: %+v vs %+v", i, res.Rows[i], again.Rows[i])
		}
	}
}
