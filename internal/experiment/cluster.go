package experiment

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"placeless/internal/clock"
	"placeless/internal/cluster"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/remote"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

// ClusterConfig parameterizes the cluster-scaling experiment (E16):
// the same warm-hit read workload is routed through consistent-hash
// clusters of growing size, and per-node service time is accounted
// virtually — each hit charges HitCost to the node that served it, and
// a cell's makespan is its busiest node's total. That makes the
// experiment a deterministic measurement of ring balance (the thing
// that decides scaling) rather than of this machine's core count: on
// the 1-core CI box real threads cannot show an 8-way speedup, but a
// balanced ring provably would, and an unbalanced one provably
// wouldn't. The read path itself is real — every routed read goes
// through the production router and each node's remote cache.
type ClusterConfig struct {
	// Nodes lists the cluster sizes measured.
	Nodes []int
	// Docs and Users shape the keyset: Docs documents × Users users.
	Docs, Users int
	// Reads is the number of routed reads measured per cell.
	Reads int
	// Replicas is the owner-set size per key.
	Replicas int
	// VNodes is the virtual-node count per member.
	VNodes int
	// HitCost is the virtual service time charged per warm hit.
	HitCost time.Duration
	// Seed fixes document contents.
	Seed int64
}

// DefaultClusterConfig returns the configuration used by plbench.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Nodes:    []int{1, 2, 4, 8},
		Docs:     64,
		Users:    8,
		Reads:    20000,
		Replicas: 2,
		VNodes:   256,
		HitCost:  time.Millisecond,
		Seed:     1,
	}
}

// ClusterPhase is one cluster-size measurement.
type ClusterPhase struct {
	// Nodes is the cluster size; Keys the distinct (doc, user) pairs.
	Nodes, Keys int
	// Reads is the routed read count; Hits how many were warm hits on
	// the serving node's cache (the rest are fills during the first
	// round after ownership settled).
	Reads, Hits int64
	// MakespanMS is the busiest node's virtual service time, ms.
	MakespanMS float64
	// AggOpsPerSec is Reads over the makespan — the aggregate warm-hit
	// throughput the fleet sustains when every node runs in parallel.
	AggOpsPerSec float64
	// Imbalance is the busiest node's load over the mean (1.0 = even).
	Imbalance float64
	// Failovers counts reads served by a non-primary owner (0 on a
	// healthy fleet).
	Failovers int64
}

// ClusterResult is experiment E16's output.
type ClusterResult struct {
	Config ClusterConfig
	// Phases holds one row per cluster size.
	Phases []ClusterPhase
	// SpeedupByNodes maps "<nodes>" to this cell's aggregate throughput
	// over the single-node cell's.
	SpeedupByNodes map[string]float64
}

// TableData returns the result's header and rows, the shared source
// for the text-table and CSV renderings.
func (r ClusterResult) TableData() ([]string, [][]string) {
	header := []string{"nodes", "keys", "reads", "hits", "makespan_ms", "agg_ops/s", "imbalance", "failovers", "speedup"}
	var rows [][]string
	for _, p := range r.Phases {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%d", p.Keys),
			fmt.Sprintf("%d", p.Reads),
			fmt.Sprintf("%d", p.Hits),
			fmt.Sprintf("%.0f", p.MakespanMS),
			fmt.Sprintf("%.0f", p.AggOpsPerSec),
			fmt.Sprintf("%.2f", p.Imbalance),
			fmt.Sprintf("%d", p.Failovers),
			fmt.Sprintf("%.2fx", r.SpeedupByNodes[fmt.Sprintf("%d", p.Nodes)]),
		})
	}
	return header, rows
}

// Table renders the result as an aligned text table.
func (r ClusterResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r ClusterResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// runClusterPhase measures one cluster size: one origin, n nodes (each
// a listener + client + remote cache), the keyset warmed through the
// router, then cfg.Reads routed reads with per-node virtual service
// accounting.
func runClusterPhase(cfg ClusterConfig, n int) (ClusterPhase, error) {
	phase := ClusterPhase{Nodes: n, Keys: cfg.Docs * cfg.Users}

	clk := clock.Real{}
	net := simnet.NewNet(clk, rand.New(rand.NewSource(cfg.Seed)))
	backing := repo.NewMem("e16", clk, simnet.NewPath("free", cfg.Seed))
	space := docspace.New(clk, nil)
	origin := core.New(space, core.Options{Name: "e16-origin", Capacity: 256 << 20})
	defer origin.Close()
	srv := server.NewCached(space, backing, origin)
	defer srv.Close()

	cl := cluster.New(cluster.Options{Replicas: cfg.Replicas, VNodes: cfg.VNodes})
	caches := make(map[string]*remote.Cache, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("e16-n%d", i)
		ln := net.Listen(name)
		go func() { _ = srv.Serve(ln) }()
		client, err := server.Dial(name, server.WithDialer(net.Dial))
		if err != nil {
			return phase, err
		}
		defer client.Close()
		rc := remote.New(client, remote.Options{DegradedPolicy: remote.FailFast})
		defer rc.Close()
		caches[name] = rc
		if err := cl.AddNode(name, rc); err != nil {
			return phase, err
		}
	}

	// Build the keyset: Docs documents, each visible to Users users.
	type key struct{ doc, user string }
	keys := make([]key, 0, cfg.Docs*cfg.Users)
	for d := 0; d < cfg.Docs; d++ {
		doc := fmt.Sprintf("doc-%03d", d)
		backing.Store("/"+doc, Content(doc, 1024))
		users := make([]string, cfg.Users)
		for u := range users {
			users[u] = fmt.Sprintf("u%d", u)
			keys = append(keys, key{doc, users[u]})
		}
		if _, err := space.CreateDocument(doc, users[0], &property.RepoBitProvider{Repo: backing, Path: "/" + doc}); err != nil {
			return phase, err
		}
		for _, u := range users[1:] {
			if _, err := space.AddReference(doc, u); err != nil {
				return phase, err
			}
		}
	}

	// Warm pass: one routed read per key fills the primary owners.
	for _, k := range keys {
		if data, err := cl.Read(k.doc, k.user); err != nil {
			return phase, err
		} else if len(data) == 0 {
			return phase, errors.New("cluster: empty warm read")
		}
	}

	hitsBefore := int64(0)
	for _, rc := range caches {
		hitsBefore += rc.Stats().Hits
	}
	// Measured pass: round-robin over the keyset, charging each read's
	// virtual service time to the node that served it.
	busy := make(map[string]time.Duration, n)
	for i := 0; i < cfg.Reads; i++ {
		k := keys[i%len(keys)]
		_, via, err := cl.ReadVia(k.doc, k.user)
		if err != nil {
			return phase, err
		}
		busy[via] += cfg.HitCost
	}
	var makespan, total time.Duration
	for _, b := range busy {
		total += b
		if b > makespan {
			makespan = b
		}
	}
	hits := int64(0)
	for _, rc := range caches {
		hits += rc.Stats().Hits
	}
	phase.Reads = int64(cfg.Reads)
	phase.Hits = hits - hitsBefore
	phase.MakespanMS = float64(makespan) / float64(time.Millisecond)
	phase.AggOpsPerSec = float64(cfg.Reads) / makespan.Seconds()
	phase.Imbalance = float64(makespan) * float64(n) / float64(total)
	phase.Failovers = cl.Stats().Failovers
	return phase, nil
}

// RunCluster runs experiment E16: aggregate warm-hit throughput vs
// cluster size under consistent-hash placement.
func RunCluster(cfg ClusterConfig) (ClusterResult, error) {
	res := ClusterResult{Config: cfg, SpeedupByNodes: map[string]float64{}}
	var base float64
	for _, n := range cfg.Nodes {
		p, err := runClusterPhase(cfg, n)
		if err != nil {
			return res, err
		}
		res.Phases = append(res.Phases, p)
		if base == 0 {
			base = p.AggOpsPerSec
		}
		if base > 0 {
			res.SpeedupByNodes[fmt.Sprintf("%d", n)] = p.AggOpsPerSec / base
		}
	}
	return res, nil
}
