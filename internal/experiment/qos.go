package experiment

import (
	"fmt"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/metrics"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
	"placeless/internal/trace"
)

// QoSConfig parameterizes the QoS-replacement experiment (E6).
type QoSConfig struct {
	// BackgroundDocs is the competing document population.
	BackgroundDocs int
	// Reads is the background access count.
	Reads int
	// QoSEvery interleaves one QoS-document read per this many
	// background reads.
	QoSEvery int
	// CostFactor is the QoS property's replacement-cost inflation.
	CostFactor float64
	// Seed fixes the workload.
	Seed int64
}

// DefaultQoSConfig returns the configuration used by plbench and the
// benchmarks.
func DefaultQoSConfig() QoSConfig {
	// CostFactor must out-pace Greedy-Dual aging between consecutive
	// QoS-document accesses; 400× holds a comfortable margin over the
	// background eviction churn.
	return QoSConfig{BackgroundDocs: 60, Reads: 3000, QoSEvery: 25, CostFactor: 400, Seed: 1}
}

// QoSRow is one configuration row of experiment E6.
type QoSRow struct {
	// Config labels the run (qos-off / qos-on).
	Config string
	// QoSHitRatio is the hit ratio for the latency-sensitive
	// document.
	QoSHitRatio float64
	// QoSMeanRead is its mean read latency.
	QoSMeanRead time.Duration
	// QoSWorstRead is its worst read latency (the QoS-relevant
	// number for "access time < .25 seconds").
	QoSWorstRead time.Duration
	// MetTarget reports whether every post-warmup read met the
	// 250 ms target.
	MetTarget bool
	// OverallHitRatio is the whole-cache hit ratio, to show the
	// background cost of pinning.
	OverallHitRatio float64
}

// QoSResult is experiment E6's output.
type QoSResult struct {
	Config QoSConfig
	Rows   []QoSRow
}

// TableData returns the result's header and rows, the shared
// source for the text-table and CSV renderings.
func (r QoSResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Config,
			fmtPct(row.QoSHitRatio),
			fmtMS(row.QoSMeanRead),
			fmtMS(row.QoSWorstRead),
			fmt.Sprintf("%v", row.MetTarget),
			fmtPct(row.OverallHitRatio),
		})
	}
	return []string{"config", "qos-doc hit ratio", "qos-doc mean (ms)", "qos-doc worst (ms)", "met <250ms", "overall hit ratio"}, rows
}

// Table renders the result as an aligned text table.
func (r QoSResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r QoSResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// RunQoS evaluates the paper's §5 proposal that QoS properties ("access
// time < .25 seconds") influence cache replacement by inflating
// replacement costs. A slow WAN document carrying the QoS property
// competes against Zipf background traffic in a small cache; with the
// property on, its entries survive pressure and its worst-case access
// time stays under the target after warmup.
func RunQoS(cfg QoSConfig) (QoSResult, error) {
	res := QoSResult{Config: cfg}
	for _, enabled := range []bool{false, true} {
		row, err := runQoSMode(cfg, enabled)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runQoSMode(cfg QoSConfig, enabled bool) (QoSRow, error) {
	// Background documents are small but carry expensive property
	// chains, so their GDS priority (cost/size) naturally exceeds the
	// QoS document's — plain GDS will sacrifice the QoS document
	// under pressure unless its property inflates the cost.
	const bgSize = 1200
	total := int64(cfg.BackgroundDocs) * bgSize
	opts := DefaultCacheOptions()
	opts.Capacity = total / 5
	w := NewWorld(cfg.Seed, opts)

	// The latency-sensitive document lives on a far-away server with
	// mtime-based consistency (a TTL source would force periodic
	// refetches no replacement policy can avoid).
	const qosDoc = "portfolio"
	farsrv := repo.NewMem("farsrv", w.Clk, simnet.WAN(cfg.Seed+9))
	if err := farsrv.Store("/"+qosDoc, Content(qosDoc, 8192)); err != nil {
		return QoSRow{}, err
	}
	if _, err := w.Space.CreateDocument(qosDoc, "eyal", &property.RepoBitProvider{Repo: farsrv, Path: "/" + qosDoc}); err != nil {
		return QoSRow{}, err
	}
	if enabled {
		q := property.NewQoS(250*time.Millisecond, cfg.CostFactor)
		if err := w.Space.Attach(qosDoc, "eyal", docspace.Personal, q); err != nil {
			return QoSRow{}, err
		}
	}
	for i := 0; i < cfg.BackgroundDocs; i++ {
		id := trace.DocID(i)
		if err := w.AddLocalDoc(id, "owner", Content(id, bgSize)); err != nil {
			return QoSRow{}, err
		}
		if _, err := w.Space.AddReference(id, "eyal"); err != nil {
			return QoSRow{}, err
		}
		p := &property.Transformer{
			Base:          property.Base{PropName: "heavy-transform"},
			ReadTransform: func(b []byte) []byte { return b },
			ExecCost:      100 * time.Millisecond,
		}
		if err := w.Space.Attach(id, "eyal", docspace.Personal, p); err != nil {
			return QoSRow{}, err
		}
	}

	accesses := trace.Generate(trace.Config{
		Docs: cfg.BackgroundDocs, Users: 1, Length: cfg.Reads, Alpha: 1.05, Seed: cfg.Seed,
	})
	qosHist := metrics.NewHistogram()
	var qosHits, qosReads int64
	met := true
	for i, a := range accesses {
		if _, err := w.Cache.Read(a.Doc, "eyal"); err != nil {
			return QoSRow{}, err
		}
		if cfg.QoSEvery > 0 && i%cfg.QoSEvery == cfg.QoSEvery-1 {
			before := w.Cache.Stats()
			d := w.Timed(func() {
				if _, err := w.Cache.Read(qosDoc, "eyal"); err != nil {
					panic(err)
				}
			})
			after := w.Cache.Stats()
			qosReads++
			if after.Hits > before.Hits {
				qosHits++
			}
			if qosReads > 1 { // skip the compulsory first miss
				qosHist.Observe(d)
				if d > 250*time.Millisecond {
					met = false
				}
			}
		}
	}
	st := w.Cache.Stats()
	row := QoSRow{
		Config:          map[bool]string{false: "qos-off", true: "qos-on"}[enabled],
		QoSMeanRead:     qosHist.Mean(),
		QoSWorstRead:    qosHist.Max(),
		MetTarget:       met,
		OverallHitRatio: st.HitRatio(),
	}
	if qosReads > 0 {
		row.QoSHitRatio = float64(qosHits) / float64(qosReads)
	}
	return row, nil
}
