package experiment

import (
	"fmt"
	"time"

	"placeless/internal/core"
	"placeless/internal/metrics"
	"placeless/internal/remote"
	"placeless/internal/server"
	"placeless/internal/trace"
)

// PlacementConfig parameterizes the cache-placement experiment (E10).
type PlacementConfig struct {
	// Docs is the document population (WAN-hosted).
	Docs int
	// Reads is the access count.
	Reads int
	// DocSize is each document's size in bytes.
	DocSize int64
	// LinkCost is the simulated application→server hop charged per
	// request reaching the server.
	LinkCost time.Duration
	// AppCapacityFrac sizes the application cache relative to the
	// total document bytes (the app machine is small); the
	// server-side cache is unbounded.
	AppCapacityFrac float64
	// Seed fixes the workload.
	Seed int64
}

// DefaultPlacementConfig returns the configuration used by plbench and
// the benchmarks.
func DefaultPlacementConfig() PlacementConfig {
	return PlacementConfig{
		Docs: 40, Reads: 1200, DocSize: 4096,
		LinkCost: 5 * time.Millisecond, AppCapacityFrac: 0.25, Seed: 1,
	}
}

// PlacementRow is one deployment row of experiment E10.
type PlacementRow struct {
	// Placement labels the deployment.
	Placement string
	// MeanRead is the mean simulated read latency seen by the
	// application.
	MeanRead time.Duration
	// P99Read is the 99th-percentile latency.
	P99Read time.Duration
}

// PlacementResult is experiment E10's output.
type PlacementResult struct {
	Config PlacementConfig
	Rows   []PlacementRow
}

// TableData returns the result's header and rows, the shared
// source for the text-table and CSV renderings.
func (r PlacementResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Placement, fmtMS(row.MeanRead), fmtMS(row.P99Read)})
	}
	return []string{"placement", "mean read (ms)", "p99 read (ms)"}, rows
}

// Table renders the result as an aligned text table.
func (r PlacementResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r PlacementResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// RunPlacement measures the two cache placements the paper's
// prototype explored — "caches co-located with the Placeless server
// and on the machine where applications are run" — individually and
// combined, against no caching at all. WAN-hosted documents are read
// over a simulated application→server link; a server-side hit still
// pays that link, an application-side hit does not, and the small
// application cache backed by the large server cache gets the best of
// both.
func RunPlacement(cfg PlacementConfig) (PlacementResult, error) {
	res := PlacementResult{Config: cfg}
	for _, mode := range []string{"no-cache", "server-only", "app-only", "app+server"} {
		row, err := runPlacementMode(cfg, mode)
		if err != nil {
			return res, fmt.Errorf("%s: %w", mode, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runPlacementMode(cfg PlacementConfig, mode string) (PlacementRow, error) {
	w := NewWorld(cfg.Seed, DefaultCacheOptions())
	for i := 0; i < cfg.Docs; i++ {
		id := trace.DocID(i)
		if err := w.AddWebDoc(w.WAN, id, "reader", Content(id, cfg.DocSize)); err != nil {
			return PlacementRow{}, err
		}
	}

	var srv *server.Server
	switch mode {
	case "server-only", "app+server":
		serverCache := core.New(w.Space, core.Options{
			Name:    "server-cache",
			HitCost: 200 * time.Microsecond,
		})
		srv = server.NewCached(w.Space, w.Local, serverCache)
	default:
		srv = server.New(w.Space, w.Local)
	}
	srv.SetLinkCost(cfg.LinkCost)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	defer func() {
		srv.Close()
		<-done
	}()
	var addr string
	for i := 0; i < 500; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		return PlacementRow{}, fmt.Errorf("server did not start")
	}
	client, err := server.Dial(addr)
	if err != nil {
		return PlacementRow{}, err
	}
	defer client.Close()

	var appCache *remote.Cache
	if mode == "app-only" || mode == "app+server" {
		appCache = remote.New(client, remote.Options{
			Capacity: int64(float64(cfg.Docs) * float64(cfg.DocSize) * cfg.AppCapacityFrac),
			Clock:    w.Clk, // TTL deadlines are in simulated time
		})
	}

	read := func(doc string) error {
		if appCache != nil {
			_, err := appCache.Read(doc, "reader")
			return err
		}
		_, _, err := client.Read(doc, "reader")
		return err
	}

	accesses := trace.Generate(trace.Config{
		Docs: cfg.Docs, Users: 1, Length: cfg.Reads, Alpha: 1.1, Seed: cfg.Seed,
	})
	hist := metrics.NewHistogram()
	for _, a := range accesses {
		d := w.Timed(func() {
			if err := read(a.Doc); err != nil {
				panic(err)
			}
		})
		hist.Observe(d)
	}
	return PlacementRow{
		Placement: mode,
		MeanRead:  hist.Mean(),
		P99Read:   hist.Percentile(99),
	}, nil
}
