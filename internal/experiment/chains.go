package experiment

import (
	"fmt"
	"time"

	"placeless/internal/docspace"
	"placeless/internal/property"
)

// ChainsConfig parameterizes the property-chain overhead experiment
// (E5).
type ChainsConfig struct {
	// MaxChain is the longest chain measured (0..MaxChain).
	MaxChain int
	// PropCost is the simulated execution time of each chained
	// property.
	PropCost time.Duration
	// DocSize is the document size in bytes.
	DocSize int64
	// Seed drives jitter.
	Seed int64
}

// DefaultChainsConfig returns the configuration used by plbench and
// the benchmarks.
func DefaultChainsConfig() ChainsConfig {
	return ChainsConfig{MaxChain: 8, PropCost: 5 * time.Millisecond, DocSize: 8192, Seed: 1}
}

// ChainRow is one chain-length row of experiment E5.
type ChainRow struct {
	// Chain is the number of active transform properties attached.
	Chain int
	// NoCache is the direct read-path latency.
	NoCache time.Duration
	// Hit is the cache-hit latency.
	Hit time.Duration
	// ReplacementCost is the cost the read path accumulated (what
	// GDS sees).
	ReplacementCost time.Duration
}

// ChainsResult is experiment E5's output.
type ChainsResult struct {
	Config ChainsConfig
	Rows   []ChainRow
}

// TableData returns the result's header and rows, the shared
// source for the text-table and CSV renderings.
func (r ChainsResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Chain),
			fmtMS(row.NoCache),
			fmtMS(row.Hit),
			fmtMS(row.ReplacementCost),
		})
	}
	return []string{"chain length", "no cache (ms)", "cache hit (ms)", "replacement cost (ms)"}, rows
}

// Table renders the result as an aligned text table.
func (r ChainsResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r ChainsResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// RunChains measures read latency against the number of chained
// active properties, cached and uncached. The headline claim of the
// paper's §4 — "caching can effectively hide the latency of a
// property-based system like Placeless" — appears here as a flat hit
// curve against a linearly growing no-cache curve; the replacement
// cost grows with the chain, which is exactly the signal GDS uses to
// keep such documents resident.
func RunChains(cfg ChainsConfig) (ChainsResult, error) {
	res := ChainsResult{Config: cfg}
	for n := 0; n <= cfg.MaxChain; n++ {
		w := NewWorld(cfg.Seed, DefaultCacheOptions())
		id := fmt.Sprintf("chained-%d", n)
		if err := w.AddWebDoc(w.LAN, id, "eyal", Content(id, cfg.DocSize)); err != nil {
			return res, err
		}
		for i := 0; i < n; i++ {
			p := &property.Transformer{
				Base:          property.Base{PropName: fmt.Sprintf("step-%d", i)},
				ReadTransform: func(b []byte) []byte { return b },
				ExecCost:      cfg.PropCost,
			}
			if err := w.Space.Attach(id, "eyal", docspace.Personal, p); err != nil {
				return res, err
			}
		}

		var cost time.Duration
		noCache := w.Timed(func() {
			_, rr, err := w.Space.ReadDocument(id, "eyal")
			if err != nil {
				panic(err)
			}
			cost = rr.Cost
		})
		if _, err := w.Cache.Read(id, "eyal"); err != nil {
			return res, err
		}
		hit := w.Timed(func() {
			if _, err := w.Cache.Read(id, "eyal"); err != nil {
				panic(err)
			}
		})
		res.Rows = append(res.Rows, ChainRow{
			Chain: n, NoCache: noCache, Hit: hit, ReplacementCost: cost,
		})
	}
	return res, nil
}
