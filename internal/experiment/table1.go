package experiment

import (
	"time"
)

// Table1Row is one source row of the paper's Table 1: document content
// access times in milliseconds for an application-level cache.
type Table1Row struct {
	// Source names the original repository (parcweb, www.gatech.edu,
	// local file system).
	Source string
	// Size is the document size in bytes (the paper's three sizes:
	// 1915, 10883, 1104).
	Size int64
	// NoCache is the access time with no cache interposed.
	NoCache time.Duration
	// Miss is the access time on a cold cache (read path plus the
	// overhead of creating the minimum notifier set and receiving
	// the verifier).
	Miss time.Duration
	// Hit is the access time served from the cache, including
	// verifier execution.
	Hit time.Duration
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// TableData returns the result's header and rows, the shared
// source for the text-table and CSV renderings.
func (r Table1Result) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Source,
			fmtBytes(row.Size),
			fmtMS(row.NoCache),
			fmtMS(row.Miss),
			fmtMS(row.Hit),
		})
	}
	return []string{"Original Source", "size (bytes)", "no cache (ms)", "cache miss (ms)", "cache hit (ms)"}, rows
}

// Table renders the result as an aligned text table.
func (r Table1Result) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r Table1Result) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

func fmtBytes(n int64) string { return fmtInt(n) }

func fmtInt(n int64) string {
	// Render with thousands separator the way the paper prints
	// "10,883 bytes".
	s := ""
	neg := n < 0
	if neg {
		n = -n
	}
	for n >= 1000 {
		s = "," + pad3(n%1000) + s
		n /= 1000
	}
	s = itoa(n) + s
	if neg {
		s = "-" + s
	}
	return s
}

func pad3(n int64) string {
	d := itoa(n)
	for len(d) < 3 {
		d = "0" + d
	}
	return d
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// table1Source describes one Table 1 document.
type table1Source struct {
	id     string
	label  string
	size   int64
	create func(w *World, id string, content []byte) error
}

// table1Sources are the paper's three documents: a page on the campus
// web server (1915 bytes), a page on www.gatech.edu (10,883 bytes),
// and a local file (1104 bytes).
func table1Sources() []table1Source {
	return []table1Source{
		{
			id: "parcweb-page", label: "parcweb", size: 1915,
			create: func(w *World, id string, content []byte) error {
				return w.AddWebDoc(w.LAN, id, "eyal", content)
			},
		},
		{
			id: "gatech-page", label: "www.gatech.edu", size: 10883,
			create: func(w *World, id string, content []byte) error {
				return w.AddWebDoc(w.WAN, id, "eyal", content)
			},
		},
		{
			id: "local-file", label: "local file", size: 1104,
			create: func(w *World, id string, content []byte) error {
				return w.AddLocalDoc(id, "eyal", content)
			},
		},
	}
}

// RunTable1 regenerates Table 1: for each of the three sources it
// measures the no-cache access time, the cold-cache miss time, and the
// warm-cache hit time. As in the paper, no active properties are
// attached, so the miss overhead is exactly the cost of installing the
// minimal notifier set and returning one verifier, and the hit cost
// includes executing that verifier. iters accesses are averaged per
// cell.
func RunTable1(seed int64, iters int) (Table1Result, error) {
	if iters < 1 {
		iters = 1
	}
	var res Table1Result
	for _, src := range table1Sources() {
		content := Content(src.id, src.size)

		// No cache: fresh world, read straight through the space.
		w := NewWorld(seed, DefaultCacheOptions())
		if err := src.create(w, src.id, content); err != nil {
			return res, err
		}
		var noCache time.Duration
		for i := 0; i < iters; i++ {
			d := w.Timed(func() {
				if _, _, err := w.Space.ReadDocument(src.id, "eyal"); err != nil {
					panic(err)
				}
			})
			noCache += d
		}
		noCache /= time.Duration(iters)

		// Cache miss: fresh cache per iteration (invalidate between
		// rounds to force the full path).
		w2 := NewWorld(seed, DefaultCacheOptions())
		if err := src.create(w2, src.id, content); err != nil {
			return res, err
		}
		var miss time.Duration
		for i := 0; i < iters; i++ {
			w2.Cache.Invalidate(src.id, "eyal")
			d := w2.Timed(func() {
				if _, err := w2.Cache.Read(src.id, "eyal"); err != nil {
					panic(err)
				}
			})
			miss += d
		}
		miss /= time.Duration(iters)

		// Cache hit: warmed cache, repeated reads (within the TTL for
		// web sources).
		if _, err := w2.Cache.Read(src.id, "eyal"); err != nil {
			return res, err
		}
		var hit time.Duration
		for i := 0; i < iters; i++ {
			d := w2.Timed(func() {
				if _, err := w2.Cache.Read(src.id, "eyal"); err != nil {
					panic(err)
				}
			})
			hit += d
		}
		hit /= time.Duration(iters)

		res.Rows = append(res.Rows, Table1Row{
			Source: src.label, Size: src.size,
			NoCache: noCache, Miss: miss, Hit: hit,
		})
	}
	return res, nil
}
