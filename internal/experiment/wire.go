package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
	"placeless/internal/store"
)

// WireConfig parameterizes the wire-protocol experiment (E15): the
// same warm-hit read workload is driven over loopback TCP through the
// v1 gob framing and the v2 binary framing, across blob sizes, with
// concurrent callers sharing one connection. Like E11/E14 this runs
// real TCP on the real clock, so absolute rates are machine-dependent;
// the object of interest is the v2/v1 ratio per size (throughput up,
// allocations down).
type WireConfig struct {
	// BlobSizes are the document body sizes measured, bytes.
	BlobSizes []int
	// Ops is the minimum number of reads timed per (protocol, size)
	// cell; the cell also keeps issuing reads until MinSeconds of wall
	// time have elapsed, so fast cells are not measured over a
	// milliseconds-long burst.
	Ops int
	// MinSeconds is the minimum measured duration per cell.
	MinSeconds float64
	// Concurrency is how many goroutines share the one client
	// connection — the pipelining axis.
	Concurrency int
	// Seed fixes document contents.
	Seed int64
}

// DefaultWireConfig returns the configuration used by plbench.
func DefaultWireConfig() WireConfig {
	return WireConfig{
		BlobSizes:   []int{4 << 10, 64 << 10, 1 << 20},
		Ops:         400,
		MinSeconds:  2,
		Concurrency: 32,
		Seed:        1,
	}
}

// WirePhase is one (protocol, blob size) measurement.
type WirePhase struct {
	// Proto names the framing ("v1-gob" or "v2-binary").
	Proto string
	// BlobSize is the document body size, bytes.
	BlobSize int
	// Ops is the number of reads actually measured (the configured
	// floor, extended until MinSeconds elapsed); Concurrency echoes
	// the workload shape.
	Ops, Concurrency int
	// Seconds is the measured wall time for Ops reads.
	Seconds float64
	// OpsPerSec and MBPerSec are the resulting read throughput.
	OpsPerSec, MBPerSec float64
	// AllocsPerOp is the whole-process allocation count per read
	// (client and server share the process, so both sides' codec
	// allocations are charged).
	AllocsPerOp float64
	// BytesPerOp is the whole-process allocated bytes per read.
	BytesPerOp float64
	// FramesBatched is the client's multi-frame writev counter after
	// the run (0 on v1, which writes frame-at-a-time).
	FramesBatched int64
	// StreamedReads is how many responses the server streamed
	// zero-copy from the disk tier (0 on v1 and below the threshold).
	StreamedReads int64
}

// WireResult is experiment E15's output.
type WireResult struct {
	Config WireConfig
	// Phases holds one row per (protocol, size), v1 and v2 pairwise.
	Phases []WirePhase
	// SpeedupBySize maps "<size>" to v2 ops/s over v1 ops/s.
	SpeedupBySize map[string]float64
	// AllocRatioBySize maps "<size>" to v2 allocs/op over v1 allocs/op
	// (< 1 means v2 allocates less).
	AllocRatioBySize map[string]float64
}

// TableData returns the result's header and rows, the shared source
// for the text-table and CSV renderings.
func (r WireResult) TableData() ([]string, [][]string) {
	header := []string{"protocol", "blob", "ops/s", "MB/s", "allocs/op", "KB/op", "batched", "streamed"}
	var rows [][]string
	for _, p := range r.Phases {
		rows = append(rows, []string{
			p.Proto,
			fmt.Sprintf("%dKiB", p.BlobSize>>10),
			fmt.Sprintf("%.0f", p.OpsPerSec),
			fmt.Sprintf("%.1f", p.MBPerSec),
			fmt.Sprintf("%.0f", p.AllocsPerOp),
			fmt.Sprintf("%.1f", p.BytesPerOp/1024),
			fmt.Sprintf("%d", p.FramesBatched),
			fmt.Sprintf("%d", p.StreamedReads),
		})
	}
	for _, size := range r.Config.BlobSizes {
		k := fmt.Sprintf("%d", size)
		rows = append(rows, []string{
			"v2/v1",
			fmt.Sprintf("%dKiB", size>>10),
			fmt.Sprintf("%.2fx", r.SpeedupBySize[k]),
			"",
			fmt.Sprintf("%.2fx", r.AllocRatioBySize[k]),
			"", "", "",
		})
	}
	return header, rows
}

// Table renders the result as an aligned text table.
func (r WireResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r WireResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// runWirePhase measures one (protocol, size) cell: a cached server
// over loopback TCP, one client pinned to proto, cfg.Concurrency
// goroutines splitting cfg.Ops warm-hit reads of one document.
func runWirePhase(cfg WireConfig, proto int, size int, st *store.Store) (WirePhase, error) {
	name := "v1-gob"
	if proto != server.ProtoV1 {
		name = "v2-binary"
	}
	phase := WirePhase{Proto: name, BlobSize: size, Ops: cfg.Ops, Concurrency: cfg.Concurrency}

	clk := clock.Real{}
	backing := repo.NewMem("srv", clk, simnet.NewPath("free", cfg.Seed))
	space := docspace.New(clk, nil)
	cache := core.New(space, core.Options{Name: "e15", Capacity: 64 << 20})
	defer cache.Close()
	srv := server.NewCached(space, backing, cache)
	if st != nil {
		srv.SetStore(st)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	defer func() { srv.Close(); <-done }()
	var addr string
	for i := 0; i < 500; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		return phase, errors.New("wire: server did not start")
	}
	client, err := server.Dial(addr, server.WithProtocolVersion(proto))
	if err != nil {
		return phase, err
	}
	defer client.Close()

	doc := fmt.Sprintf("blob-%d", size)
	body := Content(doc, int64(size))
	if err := client.CreateDocument(doc, "u", body); err != nil {
		return phase, err
	}
	if st != nil {
		// Seed the disk tier with the exact bytes so v2 responses at or
		// above the stream threshold go zero-copy from the segment file.
		if _, err := st.PutBlob(body); err != nil {
			return phase, err
		}
	}
	// Warm the server cache (and verify the bytes once).
	got, _, err := client.Read(doc, "u")
	if err != nil {
		return phase, err
	}
	if !bytes.Equal(got, body) {
		return phase, fmt.Errorf("wire: %s served %d bytes, want %d", name, len(got), len(body))
	}

	errc := make(chan error, 2*cfg.Concurrency)
	// Unmeasured warmup: settle the connection, buffer pools, and the
	// writer's batch state before the timer starts, the same way Go
	// benchmarks discard their first iterations.
	var warm sync.WaitGroup
	for g := 0; g < cfg.Concurrency; g++ {
		warm.Add(1)
		go func() {
			defer warm.Done()
			buf := make([]byte, size)
			for i := 0; i < 16; i++ {
				if _, _, err := client.ReadInto(doc, "u", buf); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	warm.Wait()
	select {
	case err := <-errc:
		return phase, err
	default:
	}

	// Measured phase: every goroutine keeps issuing reads until both
	// the ops floor and the minimum duration are met, so per-cell
	// wall time is long enough to dominate timer and scheduler noise
	// regardless of how fast the framing under test is.
	minOps := int64(cfg.Ops)
	minDur := time.Duration(cfg.MinSeconds * float64(time.Second))
	var total atomic.Int64
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	streamedBefore := srv.StreamedReads()
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < cfg.Concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-goroutine reusable body buffer: on v2 the read loop
			// decodes bodies straight into it (ReadInto), so steady
			// state allocates nothing per read; v1 ignores it and
			// allocates inside gob, which is part of what E15 measures.
			buf := make([]byte, size)
			for {
				if total.Load() >= minOps && time.Since(start) >= minDur {
					return
				}
				data, _, err := client.ReadInto(doc, "u", buf)
				if err != nil {
					errc <- err
					return
				}
				if len(data) != len(body) {
					errc <- fmt.Errorf("wire: short read: %d of %d bytes", len(data), len(body))
					return
				}
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	select {
	case err := <-errc:
		return phase, err
	default:
	}

	ops := total.Load()
	phase.Ops = int(ops)
	phase.Seconds = elapsed.Seconds()
	phase.OpsPerSec = float64(ops) / elapsed.Seconds()
	phase.MBPerSec = float64(ops) * float64(size) / (1 << 20) / elapsed.Seconds()
	phase.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
	phase.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
	phase.FramesBatched = client.FramesBatched()
	phase.StreamedReads = srv.StreamedReads() - streamedBefore
	return phase, nil
}

// RunWire runs experiment E15: v1 gob vs v2 pipelined binary framing
// over loopback, per blob size.
func RunWire(cfg WireConfig) (WireResult, error) {
	res := WireResult{
		Config:           cfg,
		SpeedupBySize:    map[string]float64{},
		AllocRatioBySize: map[string]float64{},
	}
	dir, err := os.MkdirTemp("", "placeless-e15-store-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		return res, err
	}
	defer st.Close()

	for _, size := range cfg.BlobSizes {
		v1, err := runWirePhase(cfg, server.ProtoV1, size, st)
		if err != nil {
			return res, err
		}
		v2, err := runWirePhase(cfg, server.ProtoV2, size, st)
		if err != nil {
			return res, err
		}
		res.Phases = append(res.Phases, v1, v2)
		k := fmt.Sprintf("%d", size)
		if v1.OpsPerSec > 0 {
			res.SpeedupBySize[k] = v2.OpsPerSec / v1.OpsPerSec
		}
		if v1.AllocsPerOp > 0 {
			res.AllocRatioBySize[k] = v2.AllocsPerOp / v1.AllocsPerOp
		}
	}
	return res, nil
}
