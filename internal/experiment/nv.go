package experiment

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"placeless/internal/metrics"
	"placeless/internal/trace"
)

// ConsistencyMode selects which of the paper's two cache-consistency
// mechanisms a run uses (experiment E1, the tradeoff §5 leaves open).
type ConsistencyMode int

const (
	// VerifierOnly disables notifiers: every hit polls the source.
	VerifierOnly ConsistencyMode = iota
	// NotifierOnly disables verifiers: hits are free but changes
	// outside Placeless control go unseen.
	NotifierOnly
	// BothMechanisms runs notifiers and verifiers together (the
	// prototype's configuration).
	BothMechanisms
)

// String names the mode.
func (m ConsistencyMode) String() string {
	switch m {
	case VerifierOnly:
		return "verifier-only"
	case NotifierOnly:
		return "notifier-only"
	default:
		return "notifier+verifier"
	}
}

// NVConfig parameterizes the notifier-vs-verifier experiment.
type NVConfig struct {
	// Docs is the document population (all on the local store).
	Docs int
	// Reads is the number of read accesses.
	Reads int
	// UpdateEvery injects one update per this many reads.
	UpdateEvery int
	// OutsideFrac is the fraction of updates applied outside
	// Placeless control (direct repository writes); the rest go
	// through the Placeless write path.
	OutsideFrac float64
	// Seed fixes the workload.
	Seed int64
}

// DefaultNVConfig returns the configuration used by plbench and the
// benchmarks.
func DefaultNVConfig() NVConfig {
	return NVConfig{Docs: 20, Reads: 2000, UpdateEvery: 10, OutsideFrac: 0.5, Seed: 1}
}

// NVRow is one consistency-mode row of experiment E1.
type NVRow struct {
	// Mode is the consistency configuration.
	Mode ConsistencyMode
	// MeanHit is the mean latency of reads served as cache hits.
	MeanHit time.Duration
	// MeanRead is the mean latency across all reads.
	MeanRead time.Duration
	// HitRatio is hits/(hits+misses).
	HitRatio float64
	// StaleReads counts reads that returned content differing from
	// the repository's current content — the consistency cost.
	StaleReads int
	// Notifications is the invalidation load pushed onto the
	// Placeless system by notifiers.
	Notifications int64
	// VerifierPolls approximates verifier load: source metadata
	// round trips performed on hits.
	VerifierPolls int64
}

// NVResult is experiment E1's output.
type NVResult struct {
	Config NVConfig
	Rows   []NVRow
}

// TableData returns the result's header and rows, the shared
// source for the text-table and CSV renderings.
func (r NVResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mode.String(),
			fmtMS(row.MeanHit),
			fmtMS(row.MeanRead),
			fmtPct(row.HitRatio),
			fmt.Sprintf("%d", row.StaleReads),
			fmt.Sprintf("%d", row.Notifications),
			fmt.Sprintf("%d", row.VerifierPolls),
		})
	}
	return []string{"mode", "hit (ms)", "read (ms)", "hit ratio", "stale reads", "notifications", "verifier polls"}, rows
}

// Table renders the result as an aligned text table.
func (r NVResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r NVResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// RunNotifierVerifier measures the paper's stated tradeoff: "verifier
// execution trades-off cache consistency with cache access time
// latencies, while notifier execution adds load to the Placeless
// system." A Zipf read stream over local documents is interleaved with
// updates, half through Placeless (notifier-visible) and half directly
// at the repository (verifier-visible only).
func RunNotifierVerifier(cfg NVConfig) (NVResult, error) {
	res := NVResult{Config: cfg}
	for _, mode := range []ConsistencyMode{VerifierOnly, NotifierOnly, BothMechanisms} {
		row, err := runNVMode(cfg, mode)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// NVSweepRow is one (update-rate, mode) point of the E1 sweep.
type NVSweepRow struct {
	// UpdateEvery is the update injection period (reads per update).
	UpdateEvery int
	// Rows holds the three consistency modes at this rate.
	Rows []NVRow
}

// NVSweepResult is the figure-style series: the notifier/verifier
// tradeoff as a function of how fast documents change.
type NVSweepResult struct {
	Base  NVConfig
	Rates []NVSweepRow
}

// TableData returns the sweep's header and rows (one row per
// rate×mode), the shared source for the text-table and CSV renderings.
func (r NVSweepResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rates)*3)
	for _, rate := range r.Rates {
		for _, row := range rate.Rows {
			rows = append(rows, []string{
				fmt.Sprintf("1/%d", rate.UpdateEvery),
				row.Mode.String(),
				fmtMS(row.MeanRead),
				fmtPct(row.HitRatio),
				fmt.Sprintf("%d", row.StaleReads),
				fmt.Sprintf("%d", row.Notifications),
			})
		}
	}
	return []string{"update rate", "mode", "read (ms)", "hit ratio", "stale reads", "notifications"}, rows
}

// Table renders the sweep as an aligned text table.
func (r NVSweepResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the sweep as comma-separated values.
func (r NVSweepResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// RunNotifierVerifierSweep runs E1 across update rates, producing the
// series a figure would plot: as documents change faster, the
// notifier-only mode's staleness and the verifier modes' latency both
// grow, and the crossover between "cheap but stale" and "fresh but
// slow" moves.
func RunNotifierVerifierSweep(base NVConfig, updateEvery []int) (NVSweepResult, error) {
	res := NVSweepResult{Base: base}
	for _, rate := range updateEvery {
		cfg := base
		cfg.UpdateEvery = rate
		one, err := RunNotifierVerifier(cfg)
		if err != nil {
			return res, err
		}
		res.Rates = append(res.Rates, NVSweepRow{UpdateEvery: rate, Rows: one.Rows})
	}
	return res, nil
}

// DefaultNVSweepRates are the update periods plbench sweeps.
func DefaultNVSweepRates() []int { return []int{5, 10, 20, 50, 100} }

func runNVMode(cfg NVConfig, mode ConsistencyMode) (NVRow, error) {
	opts := DefaultCacheOptions()
	opts.DisableNotifiers = mode == VerifierOnly
	opts.DisableVerifiers = mode == NotifierOnly
	w := NewWorld(cfg.Seed, opts)

	// Current expected content per document, updated as the workload
	// mutates documents.
	expect := make(map[string][]byte, cfg.Docs)
	for i := 0; i < cfg.Docs; i++ {
		id := trace.DocID(i)
		content := Content(id, 2048)
		if err := w.AddLocalDoc(id, "owner", content); err != nil {
			return NVRow{}, err
		}
		if _, err := w.Space.AddReference(id, "reader"); err != nil {
			return NVRow{}, err
		}
		expect[id] = content
	}

	accesses := trace.Generate(trace.Config{
		Docs: cfg.Docs, Users: 1, Length: cfg.Reads, Alpha: 1.1, Seed: cfg.Seed,
	})

	hitHist := metrics.NewHistogram()
	readHist := metrics.NewHistogram()
	stale := 0
	version := 0
	// The inside/outside coin uses its own deterministic stream so
	// every consistency mode sees the identical update schedule.
	coin := rand.New(rand.NewSource(cfg.Seed + 7))
	for i, a := range accesses {
		if cfg.UpdateEvery > 0 && i > 0 && i%cfg.UpdateEvery == 0 {
			version++
			id := a.Doc
			updated := append(Content(id, 2048), []byte(fmt.Sprintf("update-%d\n", version))...)
			outside := coin.Float64() < cfg.OutsideFrac
			if outside {
				w.Local.UpdateDirect("/"+id, updated)
			} else {
				if err := w.Space.WriteDocument(id, "owner", updated); err != nil {
					return NVRow{}, err
				}
			}
			expect[id] = updated
			w.Clk.Advance(time.Millisecond) // let mtimes move
		}
		before := w.Cache.Stats()
		var data []byte
		d := w.Timed(func() {
			var err error
			data, err = w.Cache.Read(a.Doc, "reader")
			if err != nil {
				panic(err)
			}
		})
		readHist.Observe(d)
		after := w.Cache.Stats()
		if after.Hits > before.Hits {
			hitHist.Observe(d)
		}
		if !bytes.Equal(data, expect[a.Doc]) {
			stale++
		}
	}
	st := w.Cache.Stats()

	// Verifier polls: each hit in verifier-enabled modes performs one
	// Stat per mtime verifier (one per entry).
	var polls int64
	if mode != NotifierOnly {
		polls = st.Hits + st.VerifierRejects
	}
	return NVRow{
		Mode:          mode,
		MeanHit:       hitHist.Mean(),
		MeanRead:      readHist.Mean(),
		HitRatio:      st.HitRatio(),
		StaleReads:    stale,
		Notifications: st.Notifications,
		VerifierPolls: polls,
	}, nil
}
