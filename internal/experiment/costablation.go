package experiment

import (
	"time"

	"placeless/internal/core"
	"placeless/internal/metrics"
	"placeless/internal/replace"
	"placeless/internal/trace"
)

// CostAblationRow is one configuration row of experiment E9.
type CostAblationRow struct {
	// Config labels the cost signal (full / constant).
	Config string
	// HitRatio is the object hit ratio.
	HitRatio float64
	// MeanRead is the mean simulated read latency.
	MeanRead time.Duration
}

// CostAblationResult is experiment E9's output.
type CostAblationResult struct {
	Config ReplacementConfig
	Rows   []CostAblationRow
}

// TableData returns the result's header and rows, the shared
// source for the text-table and CSV renderings.
func (r CostAblationResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Config, fmtPct(row.HitRatio), fmtMS(row.MeanRead)})
	}
	return []string{"cost signal", "hit ratio", "mean read (ms)"}, rows
}

// Table renders the result as an aligned text table.
func (r CostAblationResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r CostAblationResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// RunCostAblation isolates the paper's design decision to feed
// property-supplied costs into Greedy-Dual-Size: the same workload as
// E2 runs under GDS with the full accumulated cost (retrieval +
// property execution) and with a constant cost (reducing GDS to a
// size/recency policy). If the paper's mechanism matters, the full
// signal must win on mean latency.
func RunCostAblation(cfg ReplacementConfig) (CostAblationResult, error) {
	res := CostAblationResult{Config: cfg}
	accesses := trace.Generate(trace.Config{
		Docs: cfg.Docs, Users: 1, Length: cfg.Reads, Alpha: cfg.Alpha, Seed: cfg.Seed,
	})
	for _, src := range []core.CostSource{core.CostFull, core.CostConstant} {
		w, _, err := buildReplacementWorldWithCost(cfg, replace.NewGDS(), src)
		if err != nil {
			return res, err
		}
		readHist := metrics.NewHistogram()
		for _, a := range accesses {
			d := w.Timed(func() {
				if _, err := w.Cache.Read(a.Doc, "reader"); err != nil {
					panic(err)
				}
			})
			readHist.Observe(d)
		}
		st := w.Cache.Stats()
		res.Rows = append(res.Rows, CostAblationRow{
			Config:   src.String(),
			HitRatio: st.HitRatio(),
			MeanRead: readHist.Mean(),
		})
	}
	return res, nil
}
