// Package experiment implements the reproduction harness: one
// function per table/figure of the paper plus the extension
// experiments DESIGN.md enumerates (E1–E6). Each Run* function builds
// a fresh simulated world on a virtual clock, drives it, and returns a
// result struct that renders the same rows the paper (or the
// experiment index) calls for. The plbench command and the repository
// benchmarks are thin wrappers over these functions.
package experiment

import (
	"fmt"
	"strings"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/metrics"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

// epoch anchors every simulation at the HotOS VII week.
var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

// World is a complete simulated deployment: clock, repositories,
// document space, and a cache, pre-wired the way the paper's prototype
// ran (application-level cache in front of the Placeless middleware).
type World struct {
	Clk     *clock.Virtual
	Local   *repo.Mem
	LAN     *repo.Web
	WAN     *repo.Web
	Feed    *repo.LiveFeed
	Archive *repo.DMS
	Space   *docspace.Space
	Cache   *core.Cache
}

// DefaultCacheOptions returns the cache configuration used across
// experiments unless one overrides it: sub-millisecond local hit
// cost and a small miss-fill overhead, matching the paper's
// observation that notifier installation overhead on a miss is small.
func DefaultCacheOptions() core.Options {
	return core.Options{
		Name:     "appcache",
		HitCost:  200 * time.Microsecond,
		FillCost: 300 * time.Microsecond,
	}
}

// NewWorld builds a World with the canonical network topology: a
// local file store, a campus web server (the paper's parcweb), a far
// web server (www.gatech.edu), and a live feed. seed drives any
// simulated jitter.
func NewWorld(seed int64, cacheOpts core.Options) *World {
	clk := clock.NewVirtual(epoch)
	w := &World{
		Clk:     clk,
		Local:   repo.NewMem("localfs", clk, simnet.Local(seed)),
		LAN:     repo.NewWeb("parcweb", clk, simnet.LAN(seed+1), 30*time.Second, true),
		WAN:     repo.NewWeb("gatech", clk, simnet.WAN(seed+2), 30*time.Second, true),
		Feed:    repo.NewLiveFeed("cam", clk, simnet.LAN(seed+3), 4096),
		Archive: repo.NewDMS("dms", clk, simnet.Local(seed+4)),
	}
	w.Space = docspace.New(clk, w.Archive)
	// Middleware cost of reaching the Placeless servers (paper §3:
	// content flows through one, possibly two, servers per access).
	w.Space.SetAccessOverhead(2 * time.Millisecond)
	w.Cache = core.New(w.Space, cacheOpts)
	return w
}

// AddLocalDoc creates a document backed by the local store.
func (w *World) AddLocalDoc(id, owner string, content []byte) error {
	path := "/" + id
	if err := w.Local.Store(path, content); err != nil {
		return err
	}
	_, err := w.Space.CreateDocument(id, owner, &property.RepoBitProvider{Repo: w.Local, Path: path})
	return err
}

// AddWebDoc creates a document backed by a web origin (TTL-based
// consistency).
func (w *World) AddWebDoc(origin *repo.Web, id, owner string, content []byte) error {
	path := "/" + id
	origin.SetPage(path, content)
	_, err := w.Space.CreateDocument(id, owner, &property.RepoBitProvider{Repo: origin, Path: path})
	return err
}

// Timed runs fn and returns the simulated time it consumed.
func (w *World) Timed(fn func()) time.Duration {
	sw := metrics.NewStopwatch(w.Clk.Now)
	fn()
	return sw.Lap()
}

// Content synthesizes deterministic document content of n bytes.
func Content(id string, n int64) []byte {
	if n <= 0 {
		n = 1
	}
	out := make([]byte, n)
	header := fmt.Sprintf("document %s (%d bytes)\n", id, n)
	copy(out, header)
	filler := "the quick brown fox jumps over teh lazy dog. active properties transform documents. "
	for i := len(header); i < len(out); i++ {
		out[i] = filler[(i-len(header))%len(filler)]
	}
	return out
}

// table renders rows as an aligned text table with a header.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// csvTable renders rows as RFC-4180-ish CSV (quotes around cells
// containing commas or quotes).
func csvTable(header []string, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Result is the interface every experiment result satisfies: a data
// accessor plus the two renderings built from it.
type Result interface {
	TableData() ([]string, [][]string)
	Table() string
	CSV() string
}

// fmtMS renders a duration as milliseconds with two decimals, the unit
// the paper's Table 1 uses.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// fmtPct renders a ratio as a percentage.
func fmtPct(r float64) string { return fmt.Sprintf("%.1f%%", r*100) }
