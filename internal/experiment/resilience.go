package experiment

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/remote"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

// ResilienceConfig parameterizes the connection-resilience experiment
// (E14): a remote cache rides through a server crash/restart under
// each degraded-mode policy, and call deadlines are measured against a
// wedged server. This experiment runs real TCP on the real clock (the
// E11 idiom), so latencies are machine-dependent; compare the counters
// and the deadline-vs-observed ratio, not absolute times.
type ResilienceConfig struct {
	// Docs is the cached working set that rides through the outage.
	Docs int
	// CallTimeout bounds every client call in the crash phases.
	CallTimeout time.Duration
	// BackoffBase and BackoffMax shape the reconnect schedule.
	BackoffBase, BackoffMax time.Duration
	// StaleTTL bounds the serve-stale phase's staleness window; the
	// outage is far shorter, so within-bound hits are expected.
	StaleTTL time.Duration
	// WedgedCalls is how many one-shot calls to aim at a wedged
	// (accepts, never answers) server for the deadline distribution.
	WedgedCalls int
	// WedgedTimeout is the call deadline used for those calls.
	WedgedTimeout time.Duration
	// Seed fixes document contents.
	Seed int64
}

// DefaultResilienceConfig returns the configuration used by plbench.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Docs:          16,
		CallTimeout:   2 * time.Second,
		BackoffBase:   5 * time.Millisecond,
		BackoffMax:    100 * time.Millisecond,
		StaleTTL:      time.Minute,
		WedgedCalls:   20,
		WedgedTimeout: 50 * time.Millisecond,
		Seed:          1,
	}
}

// ResiliencePhase is one policy's trip through the crash/restart
// cycle.
type ResiliencePhase struct {
	// Policy is the degraded-mode policy under test.
	Policy string
	// Reconnects and EpochFlushes are the cache's recovery counters
	// after the restart.
	Reconnects, EpochFlushes int64
	// DegradedErrors counts reads refused while the server was down.
	DegradedErrors int64
	// StaleServed counts hits served during the outage (serve-stale
	// only; fail-fast must report 0).
	StaleServed int64
	// StaleAfterReconnect counts post-reconnect reads that returned
	// content invalidated during the outage — the correctness
	// acceptance criterion; must be 0.
	StaleAfterReconnect int64
	// PostReconnectReads is how many reads verified fresh content
	// after the restart.
	PostReconnectReads int64
}

// ResilienceResult is experiment E14's output.
type ResilienceResult struct {
	Config ResilienceConfig
	// Phases holds one crash/restart cycle per degraded-mode policy.
	Phases []ResiliencePhase
	// WedgedP50 and WedgedP99 are the observed latencies of calls
	// against a server that accepts requests and never answers; with
	// deadlines enforced they sit just above Config.WedgedTimeout
	// instead of hanging forever.
	WedgedP50, WedgedP99 time.Duration
}

// TableData returns the result's header and rows, the shared source
// for the text-table and CSV renderings.
func (r ResilienceResult) TableData() ([]string, [][]string) {
	header := []string{"measurement", "fail-fast", "serve-stale"}
	cell := func(f func(ResiliencePhase) string) []string {
		row := make([]string, 0, 2)
		for _, p := range r.Phases {
			row = append(row, f(p))
		}
		for len(row) < 2 {
			row = append(row, "-")
		}
		return row
	}
	num := func(f func(ResiliencePhase) int64) []string {
		return cell(func(p ResiliencePhase) string { return fmt.Sprintf("%d", f(p)) })
	}
	rows := [][]string{
		append([]string{"reconnects"}, num(func(p ResiliencePhase) int64 { return p.Reconnects })...),
		append([]string{"epoch flushes"}, num(func(p ResiliencePhase) int64 { return p.EpochFlushes })...),
		append([]string{"degraded errors (outage)"}, num(func(p ResiliencePhase) int64 { return p.DegradedErrors })...),
		append([]string{"stale served (outage)"}, num(func(p ResiliencePhase) int64 { return p.StaleServed })...),
		append([]string{"stale after reconnect"}, num(func(p ResiliencePhase) int64 { return p.StaleAfterReconnect })...),
		append([]string{"fresh post-reconnect reads"}, num(func(p ResiliencePhase) int64 { return p.PostReconnectReads })...),
		{"wedged-call p50 (deadline enforced)", r.WedgedP50.String(), ""},
		{"wedged-call p99 (deadline enforced)", r.WedgedP99.String(), ""},
	}
	return header, rows
}

// Table renders the result as an aligned text table.
func (r ResilienceResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r ResilienceResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// resilienceServer is a killable, restartable server over a space that
// survives the crash (durable state), mirroring the chaos test rigs.
type resilienceServer struct {
	space   *docspace.Space
	backing repo.Repository
	addr    string
	srv     *server.Server
	done    chan error
}

func startResilienceServer(seed int64) (*resilienceServer, error) {
	clk := clock.Real{}
	rs := &resilienceServer{
		space:   docspace.New(clk, nil),
		backing: repo.NewMem("srv", clk, simnet.NewPath("free", seed)),
	}
	srv := server.New(rs.space, rs.backing)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	for i := 0; i < 500; i++ {
		if a := srv.Addr(); a != nil {
			rs.addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rs.addr == "" {
		return nil, errors.New("resilience: server did not start")
	}
	rs.srv, rs.done = srv, done
	return rs, nil
}

func (rs *resilienceServer) kill() {
	if rs.srv == nil {
		return
	}
	rs.srv.Close()
	<-rs.done
	rs.srv = nil
}

func (rs *resilienceServer) restart() error {
	rs.kill()
	var ln net.Listener
	var err error
	for i := 0; i < 500; i++ {
		if ln, err = net.Listen("tcp", rs.addr); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("resilience: relisten on %s: %w", rs.addr, err)
	}
	srv := server.New(rs.space, rs.backing)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	rs.srv, rs.done = srv, done
	return nil
}

// waitUntil polls cond for up to d.
func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// runResiliencePhase runs one crash/restart cycle under policy.
func runResiliencePhase(cfg ResilienceConfig, policy remote.DegradedPolicy) (ResiliencePhase, error) {
	phase := ResiliencePhase{Policy: policy.String()}
	rs, err := startResilienceServer(cfg.Seed)
	if err != nil {
		return phase, err
	}
	defer rs.kill()
	client, err := server.Dial(rs.addr,
		server.WithCallTimeout(cfg.CallTimeout),
		server.WithReconnect(cfg.BackoffBase, cfg.BackoffMax))
	if err != nil {
		return phase, err
	}
	defer client.Close()
	cache := remote.New(client, remote.Options{
		DegradedPolicy: policy,
		StaleTTL:       cfg.StaleTTL,
	})

	docID := func(i int) string { return fmt.Sprintf("doc-%03d", i) }
	for i := 0; i < cfg.Docs; i++ {
		if err := client.CreateDocument(docID(i), "u", Content(docID(i)+" v1", 2048)); err != nil {
			return phase, err
		}
		if _, err := cache.Read(docID(i), "u"); err != nil {
			return phase, err
		}
	}

	// Crash. Every doc changes while the server is down; the
	// invalidations are lost with the server-side notifiers.
	rs.kill()
	if !waitUntil(10*time.Second, func() bool { return client.State() == server.StateDisconnected }) {
		return phase, errors.New("resilience: client never noticed the crash")
	}
	for i := 0; i < cfg.Docs; i++ {
		if err := rs.space.WriteDocument(docID(i), "u", Content(docID(i)+" v2", 2048)); err != nil {
			return phase, err
		}
	}
	// Degraded-mode reads over the whole set: fail-fast refuses them
	// all, serve-stale serves the (within-bound) cached copies.
	for i := 0; i < cfg.Docs; i++ {
		if _, err := cache.Read(docID(i), "u"); err != nil && !errors.Is(err, remote.ErrDegraded) {
			return phase, fmt.Errorf("resilience: outage read failed untyped: %w", err)
		}
	}

	// Restart; the client backs off and redials, the cache flushes the
	// old epoch and replays its subscriptions.
	if err := rs.restart(); err != nil {
		return phase, err
	}
	if !waitUntil(10*time.Second, func() bool { return cache.Stats().Reconnects >= 1 }) {
		return phase, errors.New("resilience: cache never observed the reconnect")
	}
	for i := 0; i < cfg.Docs; i++ {
		got, err := cache.Read(docID(i), "u")
		if err != nil {
			return phase, fmt.Errorf("resilience: post-reconnect read: %w", err)
		}
		phase.PostReconnectReads++
		if string(got) != string(Content(docID(i)+" v2", 2048)) {
			phase.StaleAfterReconnect++
		}
	}
	st := cache.Stats()
	phase.Reconnects = st.Reconnects
	phase.EpochFlushes = st.EpochFlushes
	phase.DegradedErrors = st.DegradedErrors
	phase.StaleServed = st.StaleServed
	return phase, nil
}

// measureWedgedCalls aims one-shot calls at a listener that accepts
// connections and never answers, and returns the observed latency
// distribution. Without a call deadline these would hang forever; with
// one they cluster just above the deadline.
func measureWedgedCalls(cfg ResilienceConfig) (p50, p99 time.Duration, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer ln.Close()
	conns := make(chan net.Conn, cfg.WedgedCalls+1)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns <- c // hold: never read, never answer
		}
	}()
	defer func() {
		for {
			select {
			case c := <-conns:
				c.Close()
			default:
				return
			}
		}
	}()

	lat := make([]time.Duration, 0, cfg.WedgedCalls)
	for i := 0; i < cfg.WedgedCalls; i++ {
		client, err := server.Dial(ln.Addr().String(), server.WithCallTimeout(cfg.WedgedTimeout))
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		_, _, rerr := client.Read("d", "u")
		elapsed := time.Since(start)
		client.Close()
		if !errors.Is(rerr, server.ErrTimeout) {
			return 0, 0, fmt.Errorf("resilience: wedged call returned %v, want ErrTimeout", rerr)
		}
		lat = append(lat, elapsed)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) time.Duration {
		idx := int(q * float64(len(lat)-1))
		return lat[idx]
	}
	return quantile(0.50), quantile(0.99), nil
}

// RunResilience measures E14: one crash/restart cycle per degraded-mode
// policy, plus the wedged-server deadline distribution.
func RunResilience(cfg ResilienceConfig) (ResilienceResult, error) {
	res := ResilienceResult{Config: cfg}
	for _, policy := range []remote.DegradedPolicy{remote.FailFast, remote.ServeStale} {
		phase, err := runResiliencePhase(cfg, policy)
		if err != nil {
			return res, err
		}
		res.Phases = append(res.Phases, phase)
	}
	var err error
	res.WedgedP50, res.WedgedP99, err = measureWedgedCalls(cfg)
	if err != nil {
		return res, err
	}
	return res, nil
}
