package experiment

import (
	"reflect"
	"strings"
	"testing"
)

// testSwarmConfig shrinks E18 to CI-test scale while keeping every
// phase's cells live.
func testSwarmConfig() SwarmConfig {
	cfg := DefaultSwarmConfig()
	cfg.Users = 2000
	cfg.Docs = 60
	cfg.Ops = 5000
	cfg.WritebackOps = 1500
	return cfg
}

// TestSwarmPhasesLive runs the scaled-down E18 and checks each phase
// reports a live frontier: the write-through rows have hits, memo
// savings and misses, and the write-back row a nonzero staleness
// column.
func TestSwarmPhasesLive(t *testing.T) {
	res, err := RunSwarm(testSwarmConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(res.Phases))
	}
	for _, p := range res.Phases {
		if p.Hits == 0 || p.Misses == 0 || p.SegmentRunsSaved == 0 {
			t.Fatalf("phase %s has dead cells: %+v", p.Phase, p)
		}
		if p.Hits+p.Misses != p.Reads {
			t.Fatalf("phase %s: hits+misses != reads: %+v", p.Phase, p)
		}
	}
	single, clustered, wb := res.Phases[0], res.Phases[1], res.Phases[2]
	if single.Phase != "single/wt" || clustered.Phase != "cluster/wt" || wb.Phase != "single/wb" {
		t.Fatalf("phase order wrong: %s %s %s", single.Phase, clustered.Phase, wb.Phase)
	}
	if clustered.Nodes != 3 || clustered.RouterReads != clustered.Reads {
		t.Fatalf("cluster phase not routed: %+v", clustered)
	}
	if single.StaleReads != 0 || clustered.StaleReads != 0 {
		t.Fatal("write-through phases must be staleness-free")
	}
	if wb.StaleReads == 0 {
		t.Fatalf("write-back phase reported no stale reads: %+v", wb)
	}
	if wb.Workers != 1 {
		t.Fatalf("write-back phase ran %d workers, want 1", wb.Workers)
	}
}

// TestSwarmDeterministicCounts pins that two runs of the same seed
// produce identical frontier counts in every phase (latency and
// elapsed columns excluded — they are wall-clock).
func TestSwarmDeterministicCounts(t *testing.T) {
	cfg := testSwarmConfig()
	a, err := RunSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		pa.P50Micros, pa.P99Micros, pa.ElapsedMS = 0, 0, 0
		pb.P50Micros, pb.P99Micros, pb.ElapsedMS = 0, 0, 0
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("phase %s counts differ across identical seeds:\n%+v\n%+v", pa.Phase, pa, pb)
		}
	}
}

// TestSwarmRenders checks the table and CSV renderings carry the
// frontier columns.
func TestSwarmRenders(t *testing.T) {
	cfg := testSwarmConfig()
	cfg.Ops, cfg.WritebackOps = 800, 400
	res, err := RunSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{res.Table(), res.CSV()} {
		for _, col := range []string{"phase", "hit%", "memo_saved", "stale", "p99_us"} {
			if !strings.Contains(out, col) {
				t.Fatalf("rendering missing column %q:\n%s", col, out)
			}
		}
		for _, phase := range []string{"single/wt", "cluster/wt", "single/wb"} {
			if !strings.Contains(out, phase) {
				t.Fatalf("rendering missing phase %q:\n%s", phase, out)
			}
		}
	}
}
